// Application-aware memcached proxy (§5.4): an NF parses L7 memcached get
// requests, shards keys across backends with a hash, rewrites the packet's
// destination, and sends it straight out — zero-copy, no kernel sockets,
// one-sided (responses bypass the proxy entirely). The proxy is a native
// batch NF (SDK v2): the engine hands it whole request bursts, so the
// per-packet path is a header rewrite and one decision write, nothing
// more.
//
//	go run ./examples/memcached
package main

import (
	"fmt"
	"log"
	"time"

	"sdnfv/internal/dataplane"
	"sdnfv/internal/flowtable"
	"sdnfv/internal/nfs"
	"sdnfv/internal/packet"
	"sdnfv/internal/traffic"
)

const svcProxy flowtable.ServiceID = 1

func main() {
	backends := []nfs.Backend{
		{IP: packet.IPv4(10, 50, 0, 1), Port: 11211},
		{IP: packet.IPv4(10, 50, 0, 2), Port: 11211},
		{IP: packet.IPv4(10, 50, 0, 3), Port: 11211},
	}
	proxy := &nfs.MemcachedProxy{Servers: backends, OutPort: 1}

	host := dataplane.NewHost(dataplane.Config{PoolSize: 2048, TXThreads: 1})
	if _, err := host.AddNF(svcProxy, proxy, 0); err != nil {
		log.Fatal(err)
	}
	// One rule: everything arriving on port 0 goes to the proxy; the
	// proxy emits rewritten requests itself (VerbOut).
	if _, err := host.Table().Add(flowtable.Rule{
		Scope: flowtable.Port(0), Match: flowtable.MatchAll,
		Actions: []flowtable.Action{flowtable.Forward(svcProxy)},
	}); err != nil {
		log.Fatal(err)
	}
	if _, err := host.Table().Add(flowtable.Rule{
		Scope: svcProxy, Match: flowtable.MatchAll,
		Actions: []flowtable.Action{flowtable.Out(1)},
	}); err != nil {
		log.Fatal(err)
	}

	perBackend := map[packet.IP]int{}
	host.BindDefault(func(port int, data []byte, _ *dataplane.Desc) {
		if v, err := packet.Parse(data); err == nil {
			perBackend[v.DstIP()]++
		}
	})
	if err := host.Start(); err != nil {
		log.Fatal(err)
	}
	defer host.Stop()

	// Offer 20k get requests with Zipf-popular keys.
	factory := traffic.NewFactory()
	keys := traffic.NewZipfKeys(7, 1.2, 10000)
	client := packet.IPv4(10, 9, 0, 1)
	const n = 20000
	startT := time.Now()
	for i := 0; i < n; i++ {
		frame, err := traffic.MemcachedRequest(factory, client, uint16(4000+i%1000), packet.IPv4(10, 40, 0, 1), keys.Next())
		if err != nil {
			log.Fatal(err)
		}
		for {
			if err := host.Inject(0, frame); err == nil {
				break
			}
			time.Sleep(5 * time.Microsecond)
		}
	}
	host.WaitIdle(10 * time.Second)
	elapsed := time.Since(startT)

	fmt.Printf("proxied %d requests in %v (%.0f req/s end to end, single core)\n",
		proxy.Proxied(), elapsed.Round(time.Millisecond), float64(n)/elapsed.Seconds())
	fmt.Printf("malformed: %d\n", proxy.Malformed())
	fmt.Println("backend shard distribution:")
	for _, b := range backends {
		fmt.Printf("  %s: %d\n", b.IP, perBackend[b.IP])
	}
}
