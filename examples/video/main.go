// Video optimization (§2.2 use case 2, §5.3): Video Detector -> Policy
// Engine -> {Transcoder | out}, with the policy flipped mid-run.
//
// Because every packet of a video flow passes through the Policy Engine NF
// (not just the first packets of new flows, as in a classic SDN), flipping
// the policy redirects existing flows immediately — the property Fig. 11
// measures.
//
//	go run ./examples/video
package main

import (
	"fmt"
	"log"
	"time"

	"sdnfv/internal/dataplane"
	"sdnfv/internal/flowtable"
	"sdnfv/internal/graph"
	"sdnfv/internal/nfs"
	"sdnfv/internal/packet"
	"sdnfv/internal/traffic"
)

const (
	svcDetector   flowtable.ServiceID = 1
	svcPolicy     flowtable.ServiceID = 2
	svcTranscoder flowtable.ServiceID = 3
)

func main() {
	g := graph.New("video")
	for _, v := range []graph.Vertex{
		{Service: svcDetector, Name: "video-detector", ReadOnly: true},
		{Service: svcPolicy, Name: "policy-engine", ReadOnly: true},
		{Service: svcTranscoder, Name: "transcoder", ReadOnly: false},
	} {
		if err := g.AddVertex(v); err != nil {
			log.Fatal(err)
		}
	}
	must(g.AddEdge(graph.Source, svcDetector, true))
	must(g.AddEdge(svcDetector, svcPolicy, true))
	must(g.AddEdge(svcDetector, graph.Sink, false)) // non-video bypass
	must(g.AddEdge(svcPolicy, graph.Sink, true))    // default: no transcoding
	must(g.AddEdge(svcPolicy, svcTranscoder, false))
	must(g.AddEdge(svcTranscoder, graph.Sink, true))
	fmt.Print(g)

	host := dataplane.NewHost(dataplane.Config{PoolSize: 2048, TXThreads: 1})
	policy := &nfs.PolicyState{}
	detector := &nfs.VideoDetector{PolicyEngine: svcPolicy, Bypass: flowtable.Port(1)}
	engine := &nfs.PolicyEngine{State: policy, Transcoder: svcTranscoder, Bypass: flowtable.Port(1)}
	transcoder := &nfs.Transcoder{DropRatio: 0.5}
	mustNF(host.AddNF(svcDetector, detector, 0))
	mustNF(host.AddNF(svcPolicy, engine, 0))
	mustNF(host.AddNF(svcTranscoder, transcoder, 0))
	if err := host.InstallGraph(g, 0, 1); err != nil {
		log.Fatal(err)
	}

	var delivered int
	host.BindDefault(func(int, []byte, *dataplane.Desc) { delivered++ })
	if err := host.Start(); err != nil {
		log.Fatal(err)
	}
	defer host.Stop()

	factory := traffic.NewFactory()
	videoFlow := traffic.FlowSpec{Key: packet.FlowKey{
		SrcIP: packet.IPv4(10, 3, 0, 1), DstIP: packet.IPv4(10, 4, 0, 1),
		SrcPort: 8080, DstPort: 52000, Proto: packet.ProtoTCP,
	}}
	htmlFlow := traffic.FlowSpec{Key: packet.FlowKey{
		SrcIP: packet.IPv4(10, 3, 0, 2), DstIP: packet.IPv4(10, 4, 0, 2),
		SrcPort: 80, DstPort: 52001, Proto: packet.ProtoTCP,
	}}
	send := func(spec traffic.FlowSpec, payload []byte, n int) {
		for i := 0; i < n; i++ {
			frame, err := factory.PayloadFrame(spec, payload)
			if err != nil {
				log.Fatal(err)
			}
			for {
				if err := host.Inject(0, frame); err == nil {
					break
				}
				time.Sleep(10 * time.Microsecond)
			}
		}
	}

	// Phase 1: policy off — video passes untouched.
	send(videoFlow, traffic.HTTPVideoResponse(4000), 500)
	send(htmlFlow, traffic.HTTPPlainResponse(), 500)
	host.WaitIdle(5 * time.Second)
	phase1 := delivered

	// Phase 2: flip the policy — the SAME video flow now transcodes
	// (half its packets dropped); the html flow is untouched.
	policy.SetThrottle(true)
	send(videoFlow, traffic.HTTPVideoResponse(4000), 500)
	send(htmlFlow, traffic.HTTPPlainResponse(), 500)
	host.WaitIdle(5 * time.Second)
	phase2 := delivered - phase1

	fmt.Printf("\nphase 1 (policy off): delivered %d of 1000\n", phase1)
	fmt.Printf("phase 2 (policy on):  delivered %d of 1000 (video halved by transcoder)\n", phase2)
	fmt.Printf("detector: video=%d other=%d flows\n", detector.VideoFlows(), detector.OtherFlows())
	fmt.Printf("policy engine: passed=%d throttled=%d\n", engine.Passed(), engine.Throttled())
	fmt.Printf("transcoder: emitted=%d dropped=%d\n", transcoder.Emitted(), transcoder.Dropped())
	// SDK v2: the detector's per-flow classifications live in the
	// engine-owned flow store, inspectable from the manager side.
	fmt.Printf("detector flow store holds %d classified flows\n",
		host.FlowState(svcDetector, 0).Len())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func mustNF(_ *dataplane.Instance, err error) {
	if err != nil {
		log.Fatal(err)
	}
}
