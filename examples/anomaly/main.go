// Anomaly detection (§2.2 use case 1): Firewall -> Sampler -> (DDoS ‖ IDS,
// a read-only parallel segment) -> out, with a Scrubber on standby.
//
// The IDS scans payloads with an Aho–Corasick signature set; on a hit it
// diverts the packet to the Scrubber with SendTo and rewrites the flow's
// default with a ChangeDefault cross-layer message, so every later packet
// of the malicious flow is scrubbed without touching the controller
// (§3.4).
//
//	go run ./examples/anomaly
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"sdnfv/internal/app"
	"sdnfv/internal/autoscale"
	"sdnfv/internal/controller"
	"sdnfv/internal/dataplane"
	"sdnfv/internal/flowtable"
	"sdnfv/internal/graph"
	"sdnfv/internal/nf"
	"sdnfv/internal/nfs"
	"sdnfv/internal/orchestrator"
	"sdnfv/internal/packet"
	"sdnfv/internal/traffic"
)

// slowNF wraps an NF with a fixed per-packet service time (one sleep per
// burst), modeling a scrubber whose deep inspection is the expensive hop
// worth scaling.
type slowNF struct {
	inner       nf.BatchFunction
	perPacketNs int64
}

// Name implements nf.BatchFunction.
func (s *slowNF) Name() string { return s.inner.Name() }

// ReadOnly implements nf.BatchFunction.
func (s *slowNF) ReadOnly() bool { return s.inner.ReadOnly() }

// ProcessBatch implements nf.BatchFunction.
func (s *slowNF) ProcessBatch(ctx *nf.Context, batch []nf.Packet, out []nf.Decision) {
	s.inner.ProcessBatch(ctx, batch, out)
	time.Sleep(time.Duration(int64(len(batch)) * s.perPacketNs))
}

const (
	svcFirewall flowtable.ServiceID = 1
	svcSampler  flowtable.ServiceID = 2
	svcDDoS     flowtable.ServiceID = 3
	svcIDS      flowtable.ServiceID = 4
	svcScrubber flowtable.ServiceID = 5
)

func main() {
	// Service graph: the DDoS detector and IDS are read-only and
	// adjacent, so the graph compiler collapses them into one parallel
	// segment — both analyze the same shared packet copy (§3.3).
	g := graph.New("anomaly")
	for _, v := range []graph.Vertex{
		{Service: svcFirewall, Name: "firewall", ReadOnly: true},
		{Service: svcSampler, Name: "sampler", ReadOnly: true},
		{Service: svcDDoS, Name: "ddos", ReadOnly: true},
		{Service: svcIDS, Name: "ids", ReadOnly: true},
		{Service: svcScrubber, Name: "scrubber", ReadOnly: true},
	} {
		if err := g.AddVertex(v); err != nil {
			log.Fatal(err)
		}
	}
	must(g.AddEdge(graph.Source, svcFirewall, true))
	must(g.AddEdge(svcFirewall, svcSampler, true))
	must(g.AddEdge(svcSampler, svcDDoS, true))
	must(g.AddEdge(svcDDoS, svcIDS, true))
	must(g.AddEdge(svcIDS, graph.Sink, true))
	must(g.AddEdge(svcIDS, svcScrubber, false)) // IDS may divert
	must(g.AddEdge(svcScrubber, graph.Sink, true))
	fmt.Print(g)
	if segs := g.ParallelSegments(); len(segs) > 0 {
		fmt.Printf("parallel segment detected: %v -> %v\n\n", segs[0].Members, segs[0].Next)
	}

	// The full control hierarchy, in process: the SDNFV Application owns
	// the graph, the controller compiles it on the first miss (wildcard
	// pre-population), and the host resolves misses and forwards NF
	// messages through the typed control API.
	a := app.New(app.Config{IngressPort: 0, EgressPort: 1, WildcardRules: true})
	if err := a.RegisterGraph(g); err != nil {
		log.Fatal(err)
	}
	ctl := controller.New(controller.Config{})
	ctl.SetNorthbound(a)
	ctl.Start()
	defer ctl.Stop()

	host := dataplane.NewHost(dataplane.Config{PoolSize: 2048, TXThreads: 1, Control: ctl})
	start := time.Now()
	fw := &nfs.Firewall{DefaultAllow: true}
	sampler := &nfs.Sampler{Rate: 1.0} // sample everything in the demo
	ddos := &nfs.DDoSDetector{
		ThresholdBps: 1e9, WindowSec: 1,
		Now: func() float64 { return time.Since(start).Seconds() },
	}
	ids := &nfs.IDS{Matcher: nfs.DefaultIDSSignatures(), Scrubber: svcScrubber}
	scrubber := &nfs.Scrubber{Malicious: func(p *nf.Packet) bool {
		return ids.Matcher.Contains(p.View.Payload())
	}}
	// Scrubbing is the expensive hop (~50 µs/packet): the service the
	// autoscaler will grow when attack volume ramps.
	newScrubber := func() nf.BatchFunction {
		return &slowNF{inner: &nfs.Scrubber{Malicious: func(p *nf.Packet) bool {
			return ids.Matcher.Contains(p.View.Payload())
		}}, perPacketNs: 50_000}
	}
	mustNF(host.AddNF(svcFirewall, fw, 0))
	mustNF(host.AddNF(svcSampler, sampler, 0))
	mustNF(host.AddNF(svcDDoS, ddos, 0))
	mustNF(host.AddNF(svcIDS, ids, 1)) // IDS outranks DDoS in conflicts
	mustNF(host.AddNF(svcScrubber, &slowNF{inner: scrubber, perPacketNs: 50_000}, 0))

	var delivered int
	host.BindDefault(func(int, []byte, *dataplane.Desc) { delivered++ })
	if err := host.Start(); err != nil {
		log.Fatal(err)
	}
	defer host.Stop()

	factory := traffic.NewFactory()
	cleanFlow := traffic.FlowSpec{Key: packet.FlowKey{
		SrcIP: packet.IPv4(10, 1, 0, 1), DstIP: packet.IPv4(10, 2, 0, 1),
		SrcPort: 40000, DstPort: 80, Proto: packet.ProtoTCP,
	}}
	evilFlow := traffic.FlowSpec{Key: packet.FlowKey{
		SrcIP: packet.IPv4(10, 66, 6, 6), DstIP: packet.IPv4(10, 2, 0, 1),
		SrcPort: 41000, DstPort: 80, Proto: packet.ProtoTCP,
	}}

	send := func(spec traffic.FlowSpec, payload []byte, n int) {
		for i := 0; i < n; i++ {
			frame, err := factory.PayloadFrame(spec, payload)
			if err != nil {
				log.Fatal(err)
			}
			for {
				if err := host.Inject(0, frame); err == nil {
					break
				}
				time.Sleep(10 * time.Microsecond)
			}
		}
	}

	// 200 clean requests, then a flow carrying a SQL injection, then more
	// packets of the now-flagged flow with innocent-looking payloads.
	send(cleanFlow, traffic.BenignPayload(), 200)
	send(evilFlow, traffic.ExploitPayload(), 1)
	time.Sleep(50 * time.Millisecond) // let the ChangeDefault land
	send(evilFlow, traffic.BenignPayload(), 99)
	host.WaitIdle(5 * time.Second)

	st := host.Stats()
	cst, _ := ctl.Stats(context.Background())
	fmt.Printf("delivered=%d drops=%d ctrlMsgs=%d misses=%d ctl[requests=%d flowmods=%d nfmsgs=%d]\n",
		delivered, st.Drops, st.CtrlMessages, st.Misses, cst.Requests, cst.FlowMods, cst.NFMsgs)
	for _, lm := range a.Messages() {
		fmt.Printf("app log: src=%s accepted=%v %s\n", lm.Src, lm.Accepted, lm.Msg)
	}
	fmt.Printf("ids: scanned=%d alerts=%d\n", ids.Scanned(), ids.Alerts())
	fmt.Printf("scrubber: passed=%d dropped=%d (flagged flow diverted after 1 exploit)\n",
		scrubber.Passed(), scrubber.Dropped())
	// The IDS keeps its quarantine set in the engine-owned flow store
	// (SDK v2), so the manager can enumerate flagged flows without any
	// NF-specific API.
	fmt.Println("quarantined flows (read via host.FlowState):")
	host.FlowState(svcIDS, 0).Range(func(k packet.FlowKey, _ any) bool {
		fmt.Printf("  %s\n", k)
		return true
	})
	fmt.Println("\nfinal flow table (note the per-flow rule installed by the IDS):")
	fmt.Println(host.Table().Dump())

	// Act 2 — dynamic scaling (§3.3/§5.2): the flagged flow's volume
	// ramps; everything it sends is diverted to the scrubber, whose
	// backlog telemetry drives the autoscale loop. The orchestrator adds
	// a second scrubber replica at runtime, and once the burst subsides
	// the extra replica is retired through the flow-state-safe drain.
	fmt.Println("— dynamic scaling: attack volume ramps, the scrubber pool follows —")
	clock := autoscale.NewRealClock()
	orch := orchestrator.New(orchestrator.Config{
		BootDelaySec: 0.5, StandbyDelaySec: 0.02, Standby: 2,
	}, clock)
	orch.AddHost(dataplane.NamedHost{Name: "edge", Host: host})
	scaler := autoscale.New(autoscale.Config{
		Min: 1, Max: 2, UpStreak: 1, DownStreak: 5,
		IntervalSec: 0.02, CooldownSec: 0.1,
	},
		autoscale.ServiceSource{Host: host, Service: svcScrubber, Orch: orch},
		autoscale.OrchestratorActuator{
			Orch: orch, HostName: "edge", Host: host,
			Service: svcScrubber, NewNF: newScrubber,
		}, clock)
	scaler.Start()

	send(evilFlow, traffic.BenignPayload(), 4000)
	host.WaitIdle(30 * time.Second)
	for i := 0; i < 300 && len(host.ReplicaStats(svcScrubber)) > 1; i++ {
		time.Sleep(10 * time.Millisecond)
	}
	scaler.Stop()

	for _, ev := range scaler.Events() {
		fmt.Printf("autoscale: %s at t=%.2fs (replicas=%d backlog=%d)\n",
			ev.Decision, ev.At, ev.Replicas, ev.Backlog)
	}
	fmt.Printf("scrubber replicas after the burst: %d (retired replicas drained, VM back in standby pool: %d slots)\n",
		len(host.ReplicaStats(svcScrubber)), len(orch.Retirements()))
	fmt.Println("quarantined flows after scaling (state intact):")
	host.FlowState(svcIDS, 0).Range(func(k packet.FlowKey, _ any) bool {
		fmt.Printf("  %s\n", k)
		return true
	})
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func mustNF(_ *dataplane.Instance, err error) {
	if err != nil {
		log.Fatal(err)
	}
}
