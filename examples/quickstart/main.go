// Quickstart: build a three-NF service chain on one SDNFV host, push
// traffic through it, and print the counters.
//
// The chain is Firewall -> Counter -> Shaper, compiled from a service
// graph exactly as the SDNFV Application would do it (§3.2–3.3), running
// on the real concurrent data-plane engine.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"sdnfv/internal/dataplane"
	"sdnfv/internal/flowtable"
	"sdnfv/internal/graph"
	"sdnfv/internal/nfs"
	"sdnfv/internal/traffic"
)

const (
	svcFirewall flowtable.ServiceID = 1
	svcCounter  flowtable.ServiceID = 2
	svcShaper   flowtable.ServiceID = 3
)

func main() {
	// 1. Describe the application as a service graph.
	g, err := graph.Chain("quickstart",
		graph.Vertex{Service: svcFirewall, Name: "firewall", ReadOnly: true},
		graph.Vertex{Service: svcCounter, Name: "counter", ReadOnly: true},
		graph.Vertex{Service: svcShaper, Name: "shaper", ReadOnly: false},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(g)

	// 2. Build a host, register the NFs, and install the compiled rules.
	host := dataplane.NewHost(dataplane.Config{PoolSize: 1024, TXThreads: 1})
	fw := &nfs.Firewall{DefaultAllow: true}
	counter := &nfs.Counter{}
	start := time.Now()
	shaper := &nfs.Shaper{
		RateBps:    50e6,
		BurstBytes: 16e3,
		Now:        func() float64 { return time.Since(start).Seconds() },
	}
	if _, err := host.AddNF(svcFirewall, fw, 0); err != nil {
		log.Fatal(err)
	}
	if _, err := host.AddNF(svcCounter, counter, 0); err != nil {
		log.Fatal(err)
	}
	if _, err := host.AddNF(svcShaper, shaper, 0); err != nil {
		log.Fatal(err)
	}
	if err := host.InstallGraph(g, 0, 1); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nflow table:")
	fmt.Println(host.Table().Dump())

	// 3. Count transmitted packets at the egress port.
	done := make(chan struct{})
	var out int
	host.SetOutput(func(port int, data []byte, _ *dataplane.Desc) {
		out++
		if out == 2000 {
			close(done)
		}
	})
	if err := host.Start(); err != nil {
		log.Fatal(err)
	}
	defer host.Stop()

	// 4. Offer 2000 packets from a synthetic flow, paced under the
	// shaper's 50 Mbps rate (bursts of 20 every 2 ms ≈ 41 Mbps).
	factory := traffic.NewFactory()
	spec := traffic.Flow(1, 512, 0)
	for i := 0; i < 2000; i++ {
		frame, err := factory.Frame(spec, time.Now().UnixNano())
		if err != nil {
			log.Fatal(err)
		}
		for {
			if err := host.Inject(0, frame); err == nil {
				break
			}
			time.Sleep(10 * time.Microsecond) // NIC ring momentarily full
		}
		if i%20 == 19 {
			time.Sleep(2 * time.Millisecond)
		}
	}

	select {
	case <-done:
	case <-time.After(10 * time.Second):
		fmt.Println("timed out waiting for packets (shaper may be dropping)")
	}
	host.WaitIdle(2 * time.Second)

	st := host.Stats()
	fmt.Printf("\nrx=%d tx=%d drops=%d\n", st.RxPackets, st.TxPackets, st.Drops)
	fmt.Printf("firewall: allowed=%d denied=%d\n", fw.Allowed(), fw.Denied())
	fmt.Printf("counter:  %d packets, %d bytes\n", counter.Packets(), counter.Bytes())
	fmt.Printf("shaper:   passed=%d shaped=%d\n", shaper.Passed(), shaper.Shaped())
}
