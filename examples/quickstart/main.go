// Quickstart: build a service chain on one SDNFV host with NF SDK v2,
// push traffic through it, and print the counters.
//
// The chain is Firewall -> Counter -> FlowTally -> Shaper, compiled from
// a service graph exactly as the SDNFV Application would do it
// (§3.2–3.3), running on the real concurrent data-plane engine.
// FlowTally is written here from scratch to show the v2 SDK surface: the
// batch-first ProcessBatch interface, the Init/Close lifecycle hooks, and
// the engine-owned per-flow state store that the host can inspect from
// outside the NF.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"sdnfv/internal/dataplane"
	"sdnfv/internal/flowtable"
	"sdnfv/internal/graph"
	"sdnfv/internal/nf"
	"sdnfv/internal/nfs"
	"sdnfv/internal/packet"
	"sdnfv/internal/traffic"
)

const (
	svcFirewall flowtable.ServiceID = 1
	svcCounter  flowtable.ServiceID = 2
	svcTally    flowtable.ServiceID = 3
	svcShaper   flowtable.ServiceID = 4
)

// flowTally is a complete SDK v2 network function: it counts packets per
// flow in the engine-owned flow store. The engine hands it whole bursts;
// decisions default to "follow the flow table", so a monitoring NF writes
// none. State put into ctx.FlowState survives NF restarts and is readable
// by the manager (see the host.FlowState call in main).
type flowTally struct {
	flows *nf.FlowState
}

func (t *flowTally) Name() string   { return "flow-tally" }
func (t *flowTally) ReadOnly() bool { return true }

// Init runs once before any packet; grab the engine-owned store.
func (t *flowTally) Init(ctx *nf.Context) error {
	t.flows = ctx.FlowState()
	return nil
}

// Close runs on Host.Stop and on NF replacement.
func (t *flowTally) Close() error { return nil }

// ProcessBatch handles one burst; batch[i] pairs with out[i] (pre-zeroed
// to Default, so there is nothing to write for pass-through monitoring).
func (t *flowTally) ProcessBatch(_ *nf.Context, batch []nf.Packet, _ []nf.Decision) {
	for i := range batch {
		n := uint64(0)
		if v, ok := t.flows.Get(batch[i].Key); ok {
			n = v.(uint64)
		}
		t.flows.Set(batch[i].Key, n+1)
	}
}

func main() {
	// 1. Describe the application as a service graph.
	g, err := graph.Chain("quickstart",
		graph.Vertex{Service: svcFirewall, Name: "firewall", ReadOnly: true},
		graph.Vertex{Service: svcCounter, Name: "counter", ReadOnly: true},
		graph.Vertex{Service: svcTally, Name: "flow-tally", ReadOnly: true},
		graph.Vertex{Service: svcShaper, Name: "shaper", ReadOnly: false},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(g)

	// 2. Build a host, register the NFs, and install the compiled rules.
	host := dataplane.NewHost(dataplane.Config{PoolSize: 1024, TXThreads: 1})
	fw := &nfs.Firewall{DefaultAllow: true}
	counter := &nfs.Counter{}
	tally := &flowTally{}
	start := time.Now()
	shaper := &nfs.Shaper{
		RateBps:    50e6,
		BurstBytes: 16e3,
		Now:        func() float64 { return time.Since(start).Seconds() },
	}
	if _, err := host.AddNF(svcFirewall, fw, 0); err != nil {
		log.Fatal(err)
	}
	if _, err := host.AddNF(svcCounter, counter, 0); err != nil {
		log.Fatal(err)
	}
	if _, err := host.AddNF(svcTally, tally, 0); err != nil {
		log.Fatal(err)
	}
	if _, err := host.AddNF(svcShaper, shaper, 0); err != nil {
		log.Fatal(err)
	}
	if err := host.InstallGraph(g, 0, 1); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nflow table:")
	fmt.Println(host.Table().Dump())

	// 3. Count transmitted packets at the egress port.
	done := make(chan struct{})
	var out int
	host.BindDefault(func(port int, data []byte, _ *dataplane.Desc) {
		out++
		if out == 2000 {
			close(done)
		}
	})
	if err := host.Start(); err != nil {
		log.Fatal(err)
	}
	defer host.Stop()

	// 4. Offer 2000 packets across two synthetic flows, paced under the
	// shaper's 50 Mbps rate (bursts of 20 every 2 ms ≈ 41 Mbps).
	factory := traffic.NewFactory()
	specs := []traffic.FlowSpec{traffic.Flow(1, 512, 0), traffic.Flow(2, 512, 0)}
	for i := 0; i < 2000; i++ {
		frame, err := factory.Frame(specs[i%len(specs)], time.Now().UnixNano())
		if err != nil {
			log.Fatal(err)
		}
		for {
			if err := host.Inject(0, frame); err == nil {
				break
			}
			time.Sleep(10 * time.Microsecond) // NIC ring momentarily full
		}
		if i%20 == 19 {
			time.Sleep(2 * time.Millisecond)
		}
	}

	select {
	case <-done:
	case <-time.After(10 * time.Second):
		fmt.Println("timed out waiting for packets (shaper may be dropping)")
	}
	host.WaitIdle(2 * time.Second)

	st := host.Stats()
	fmt.Printf("\nrx=%d tx=%d drops=%d\n", st.RxPackets, st.TxPackets, st.Drops)
	fmt.Printf("firewall: allowed=%d denied=%d\n", fw.Allowed(), fw.Denied())
	fmt.Printf("counter:  %d packets, %d bytes\n", counter.Packets(), counter.Bytes())
	fmt.Printf("shaper:   passed=%d shaped=%d\n", shaper.Passed(), shaper.Shaped())

	// 5. The manager side of §3.4: inspect the NF's per-flow state through
	// the engine-owned store, without touching the NF itself.
	fmt.Println("flow tally (read via host.FlowState):")
	host.FlowState(svcTally, 0).Range(func(k packet.FlowKey, v any) bool {
		fmt.Printf("  %s: %d packets\n", k, v.(uint64))
		return true
	})
}
