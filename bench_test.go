// Package bench is the reproduction harness: one testing.B per table and
// figure of the paper's evaluation (§5), plus the ablation benchmarks for
// the §4.2 design choices. Run with:
//
//	go test -bench=. -benchmem
//
// Figure/table benchmarks execute the full experiment per iteration and
// report the headline quantity as a custom metric, so `-benchtime=1x`
// regenerates every result once. EXPERIMENTS.md records paper-vs-measured
// values.
package bench

import (
	"encoding/json"
	"os"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"sdnfv/internal/dataplane"
	"sdnfv/internal/experiments"
	"sdnfv/internal/flowtable"
	"sdnfv/internal/nf"
	"sdnfv/internal/packet"
	"sdnfv/internal/portio"
	"sdnfv/internal/traffic"
)

const benchSeed = 42

// BenchmarkFig1ControllerBottleneck regenerates Figure 1: max throughput
// vs % of packets punted to the SDN controller.
func BenchmarkFig1ControllerBottleneck(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig1(benchSeed)
		b.ReportMetric(r.Gbps1000[0], "Gbps-at-0pct")
		b.ReportMetric(r.Gbps1000[len(r.Gbps1000)-1], "Gbps-at-25pct")
	}
}

// BenchmarkFig5Placement regenerates Figure 5: greedy vs ILP-division
// placement on the Rocketfuel-scale topology.
func BenchmarkFig5Placement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig5(benchSeed)
		b.ReportMetric(float64(r.GreedyFlows[0]), "greedy-flows")
		b.ReportMetric(float64(r.ILPFlows[0]), "division-flows")
	}
}

// BenchmarkTable2LatencyNoop regenerates Table 2: RTT for no-op NF chains.
func BenchmarkTable2LatencyNoop(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Table2(benchSeed)
		b.ReportMetric(r.Rows[0].Avg, "dpdk-us")
		b.ReportMetric(r.Rows[5].Avg, "3vmseq-us")
	}
}

// BenchmarkFig6LatencyCDF regenerates Figure 6: latency CDFs with
// compute-intensive NFs.
func BenchmarkFig6LatencyCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig6(benchSeed)
		med := func(label string) float64 {
			for li, l := range r.Labels {
				if l != label {
					continue
				}
				for fi, f := range r.Fractions {
					if f == 0.5 {
						return r.CDFs[li][fi]
					}
				}
			}
			return 0
		}
		b.ReportMetric(med("3VM(parallel)"), "p50-3par-us")
		b.ReportMetric(med("3VM(sequential)"), "p50-3seq-us")
	}
}

// BenchmarkFig7Throughput regenerates Figure 7: throughput vs packet size.
func BenchmarkFig7Throughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig7(benchSeed)
		b.ReportMetric(r.OneVM[0], "1vm-64B-Mbps")
		b.ReportMetric(r.TwoSeq[0], "2seq-64B-Mbps")
	}
}

// BenchmarkFig8AntFlow regenerates Figure 8: ant-flow reclassification.
func BenchmarkFig8AntFlow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig8(benchSeed)
		b.ReportMetric(r.AntWindow[0], "ant-start-s")
	}
}

// BenchmarkFig9DDoS regenerates Figure 9: DDoS detection and scrubbing.
func BenchmarkFig9DDoS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig9(benchSeed)
		b.ReportMetric(r.ScrubberAt-r.DetectedAt, "boot-delay-s")
	}
}

// BenchmarkFig10FlowSetup regenerates Figure 10: flow setups/s, SDNFV vs
// SDN.
func BenchmarkFig10FlowSetup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig10(benchSeed)
		maxSDN, maxSDNFV := 0.0, 0.0
		for j := range r.OfferedPerSec {
			if r.SDNOut[j] > maxSDN {
				maxSDN = r.SDNOut[j]
			}
			if r.SDNFVOut[j] > maxSDNFV {
				maxSDNFV = r.SDNFVOut[j]
			}
		}
		b.ReportMetric(maxSDNFV/maxSDN, "sdnfv/sdn-ratio")
	}
}

// BenchmarkFig11PolicyChange regenerates Figure 11: reaction to a policy
// change.
func BenchmarkFig11PolicyChange(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig11(benchSeed)
		at := func(series []float64, tm float64) float64 {
			for j, tt := range r.Times {
				if tt >= tm {
					return series[j]
				}
			}
			return series[len(series)-1]
		}
		b.ReportMetric(at(r.SDNFVOut, 70), "sdnfv-pps-t70")
		b.ReportMetric(at(r.SDNOut, 70), "sdn-pps-t70")
	}
}

// BenchmarkFig12Memcached regenerates Figure 12: memcached RTT vs request
// rate, TwemProxy vs the SDNFV NF proxy.
func BenchmarkFig12Memcached(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig12(benchSeed)
		var twemMax, sdnfvMax float64
		for j, rate := range r.RatePerSec {
			if r.TwemRTTus[j] > 0 {
				twemMax = rate
			}
			if r.SDNFVRTTus[j] > 0 {
				sdnfvMax = rate
			}
		}
		b.ReportMetric(sdnfvMax/twemMax, "speedup-x")
	}
}

// BenchmarkFlowTableLookup measures the §5.1 flow-table lookup cost on the
// real table (paper: ≈30 ns).
func BenchmarkFlowTableLookup(b *testing.B) {
	t := flowtable.New()
	keys := make([]packet.FlowKey, 1024)
	for i := range keys {
		keys[i] = packet.FlowKey{
			SrcIP:   packet.IPv4(10, 0, byte(i>>8), byte(i)),
			DstIP:   packet.IPv4(10, 1, 0, 1),
			SrcPort: uint16(i), DstPort: 80, Proto: packet.ProtoUDP,
		}
		_, _ = t.Add(flowtable.Rule{
			Scope: flowtable.Port(0), Match: flowtable.ExactMatch(keys[i]),
			Actions: []flowtable.Action{flowtable.Forward(1)},
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := t.Lookup(flowtable.Port(0), keys[i&1023]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFlowTableLookupBatch measures the amortized per-packet cost of
// the batched resolver the RX loop uses: one table pass per 64-descriptor
// burst.
func BenchmarkFlowTableLookupBatch(b *testing.B) {
	t := flowtable.New()
	keys := make([]packet.FlowKey, 1024)
	for i := range keys {
		keys[i] = packet.FlowKey{
			SrcIP:   packet.IPv4(10, 0, byte(i>>8), byte(i)),
			DstIP:   packet.IPv4(10, 1, 0, 1),
			SrcPort: uint16(i), DstPort: 80, Proto: packet.ProtoUDP,
		}
		_, _ = t.Add(flowtable.Rule{
			Scope: flowtable.Port(0), Match: flowtable.ExactMatch(keys[i]),
			Actions: []flowtable.Action{flowtable.Forward(1)},
		})
	}
	const burst = 64
	scopes := make([]flowtable.ServiceID, burst)
	bkeys := make([]packet.FlowKey, burst)
	out := make([]*flowtable.Entry, burst)
	for i := range scopes {
		scopes[i] = flowtable.Port(0)
		bkeys[i] = keys[i]
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += burst {
		if hits := t.LookupBatch(scopes, bkeys, out); hits != burst {
			b.Fatalf("hits = %d", hits)
		}
	}
}

// BenchmarkFlowTableLookupContended measures the lock-free lookup with all
// CPUs reading one table while a writer churns rules — the seed's RWMutex
// design serialized the counter writes here.
func BenchmarkFlowTableLookupContended(b *testing.B) {
	t := flowtable.New()
	keys := make([]packet.FlowKey, 1024)
	for i := range keys {
		keys[i] = packet.FlowKey{
			SrcIP:   packet.IPv4(10, 0, byte(i>>8), byte(i)),
			DstIP:   packet.IPv4(10, 1, 0, 1),
			SrcPort: uint16(i), DstPort: 80, Proto: packet.ProtoUDP,
		}
		_, _ = t.Add(flowtable.Rule{
			Scope: flowtable.Port(0), Match: flowtable.ExactMatch(keys[i]),
			Actions: []flowtable.Action{flowtable.Forward(1)},
		})
	}
	churnKey := keys[0]
	stop := make(chan struct{})
	go func() {
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			t.UpdateDefault(flowtable.ServiceID(1), flowtable.MatchAll,
				flowtable.Forward(2), false)
			// Exact add replaces in place (same key ⇒ same rule identity),
			// so the table stays bounded for the whole benchmark.
			_, _ = t.Add(flowtable.Rule{
				Scope: flowtable.ServiceID(1), Match: flowtable.ExactMatch(churnKey),
				Actions: []flowtable.Action{flowtable.Forward(2)},
			})
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := t.Lookup(flowtable.Port(0), keys[i&1023]); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
	b.StopTimer()
	close(stop)
}

// BenchmarkMinQueueSelect measures the §5.1 queue-depth replica pick
// (paper: ≈15 ns).
func BenchmarkMinQueueSelect(b *testing.B) {
	lens := [4]int{5, 7, 2, 9}
	sink := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		best, bestLen := 0, lens[0]
		for j := 1; j < len(lens); j++ {
			if lens[j] < bestLen {
				best, bestLen = j, lens[j]
			}
		}
		sink += best
		lens[i&3] = (lens[i&3] + i) & 15
	}
	_ = sink
}

// engineThroughput pushes n packets through a 1-NF chain on the real
// engine and returns packets/second.
func engineThroughput(b *testing.B, cfg dataplane.Config, n int) float64 {
	b.Helper()
	cfg.PoolSize = 2048
	cfg.TXThreads = 1
	h := dataplane.NewHost(cfg)
	var done atomic.Int64
	_, _ = h.AddNF(10, &nf.BatchAdapter{FnName: "noop", RO: true}, 0)
	_, _ = h.Table().Add(flowtable.Rule{Scope: flowtable.Port(0), Match: flowtable.MatchAll,
		Actions: []flowtable.Action{flowtable.Forward(10)}})
	_, _ = h.Table().Add(flowtable.Rule{Scope: flowtable.ServiceID(10), Match: flowtable.MatchAll,
		Actions: []flowtable.Action{flowtable.Out(1)}})
	h.BindDefault(func(int, []byte, *dataplane.Desc) { done.Add(1) })
	if err := h.Start(); err != nil {
		b.Fatal(err)
	}
	defer h.Stop()
	factory := traffic.NewFactory()
	frame, _ := factory.Frame(traffic.Flow(1, 256, 0), 0)
	start := time.Now()
	for i := 0; i < n; i++ {
		for h.Inject(0, frame) != nil {
			time.Sleep(time.Microsecond)
		}
	}
	// Packets can legitimately drop inside the pipeline when an NF input
	// ring fills; wait until every injected packet is accounted for
	// (delivered or dropped), then rate the deliveries.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if done.Load()+int64(h.Stats().Drops) >= int64(n) {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	return float64(done.Load()) / time.Since(start).Seconds()
}

// BenchmarkAblationLookupCache compares the real engine with and without
// descriptor-carried flow-entry caching (§4.2 "Caching flow table
// lookups").
func BenchmarkAblationLookupCache(b *testing.B) {
	for _, tc := range []struct {
		name    string
		disable bool
	}{{"cached", false}, {"uncached", true}} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pps := engineThroughput(b, dataplane.Config{DisableLookupCache: tc.disable}, 20000)
				b.ReportMetric(pps, "pkts/s")
			}
		})
	}
}

// BenchmarkAblationLoadBalance compares the replica load-balancing
// policies of §4.2 on the real engine.
func BenchmarkAblationLoadBalance(b *testing.B) {
	for _, tc := range []struct {
		name   string
		policy dataplane.LBPolicy
	}{
		{"roundrobin", dataplane.LBRoundRobin},
		{"queuedepth", dataplane.LBQueueDepth},
		{"flowhash", dataplane.LBFlowHash},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pps := engineThroughput(b, dataplane.Config{LoadBalancer: tc.policy}, 20000)
				b.ReportMetric(pps, "pkts/s")
			}
		})
	}
}

// benchResult is one workload's measurement in a BENCH_*.json snapshot
// (same schema as internal/flowtable's BENCH_flowtable.json).
type benchResult struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
	Ops     int     `json:"ops"`
}

// benchSnapshot is the BENCH_portio.json schema.
type benchSnapshot struct {
	Package   string        `json:"package"`
	Timestamp time.Time     `json:"timestamp"`
	Results   []benchResult `json:"results"`
}

// benchIngress is a peer-side counting Ingress for the portio backends:
// it stands in for the receiving host so the bench measures the wire,
// not a second engine.
type benchIngress struct{ delivered *atomic.Int64 }

func (s *benchIngress) Ingest([]byte) error { s.delivered.Add(1); return nil }
func (s *benchIngress) IngestBurst(fs [][]byte) (int, int) {
	s.delivered.Add(int64(len(fs)))
	return len(fs), len(fs)
}
func (s *benchIngress) FrameCap() int { return 2048 }

// portIOThroughput pushes n packets through a 1-NF chain whose egress
// port is wired by attach, and returns delivered packets/second.
// attach binds a backend behind port 1 and returns (flush, cleanup):
// flush drains the sending side onto the wire (Binding.Close), cleanup
// tears down the receiving side. Timing stops at the last delivery, so
// the drain tail is measured, not the stabilization polling.
func portIOThroughput(b *testing.B, n int,
	attach func(*testing.B, *dataplane.Host, *atomic.Int64) (flush, cleanup func())) float64 {
	b.Helper()
	h := dataplane.NewHost(dataplane.Config{PoolSize: 2048, TXThreads: 1})
	var delivered atomic.Int64
	_, _ = h.AddNF(10, &nf.BatchAdapter{FnName: "noop", RO: true}, 0)
	_, _ = h.Table().Add(flowtable.Rule{Scope: flowtable.Port(0), Match: flowtable.MatchAll,
		Actions: []flowtable.Action{flowtable.Forward(10)}})
	_, _ = h.Table().Add(flowtable.Rule{Scope: flowtable.ServiceID(10), Match: flowtable.MatchAll,
		Actions: []flowtable.Action{flowtable.Out(1)}})
	if err := h.Start(); err != nil {
		b.Fatal(err)
	}
	defer h.Stop()
	flush, cleanup := attach(b, h, &delivered)
	defer cleanup()
	factory := traffic.NewFactory()
	frame, _ := factory.Frame(traffic.Flow(1, 256, 0), 0)
	start := time.Now()
	for i := 0; i < n; i++ {
		for h.Inject(0, frame) != nil {
			time.Sleep(time.Microsecond)
		}
	}
	h.WaitIdle(5 * time.Second)
	flush()
	// Socket backends may still be pumping the wire tail; rate against
	// the moment deliveries stop, not the moment we notice they stopped.
	last, lastChange := delivered.Load(), time.Now()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cur := delivered.Load(); cur != last {
			last, lastChange = cur, time.Now()
		}
		if time.Since(lastChange) > 100*time.Millisecond {
			break
		}
		time.Sleep(time.Millisecond)
	}
	return float64(last) / lastChange.Sub(start).Seconds()
}

// BenchmarkPortIOSnapshot measures egress throughput per port backend —
// the pre-portio closure bind as baseline, then each driver — and
// writes BENCH_portio.json next to BENCH_flowtable.json for the
// recorded perf trajectory. ChanSync vs DirectBind is the acceptance
// check that the driver seam adds no cost to the in-process path.
func BenchmarkPortIOSnapshot(b *testing.B) {
	const n = 20000
	results := map[string]benchResult{}
	record := func(name string, attach func(*testing.B, *dataplane.Host, *atomic.Int64) (func(), func())) {
		b.Run(name, func(b *testing.B) {
			var pps float64
			for i := 0; i < b.N; i++ {
				pps = portIOThroughput(b, n, attach)
			}
			b.ReportMetric(pps, "pkts/s")
			results[name] = benchResult{Name: name, NsPerOp: 1e9 / pps, Ops: n}
		})
	}

	record("DirectBind", func(b *testing.B, h *dataplane.Host, delivered *atomic.Int64) (func(), func()) {
		h.BindPort(1, func(int, []byte, *dataplane.Desc) { delivered.Add(1) })
		return func() {}, func() {}
	})

	chanAttach := func(depth int) func(*testing.B, *dataplane.Host, *atomic.Int64) (func(), func()) {
		return func(b *testing.B, h *dataplane.Host, delivered *atomic.Int64) (func(), func()) {
			da, db := portio.NewChanPair(depth)
			if err := db.Open(&benchIngress{delivered: delivered}); err != nil {
				b.Fatal(err)
			}
			bind, err := portio.Bind(h, 1, da)
			if err != nil {
				b.Fatal(err)
			}
			return func() { bind.Close() }, func() { db.Close() }
		}
	}
	record("ChanSync", chanAttach(0))
	record("ChanQueued", chanAttach(1024))

	record("UDPLoopback", func(b *testing.B, h *dataplane.Host, delivered *atomic.Int64) (func(), func()) {
		recv := portio.NewUDP(portio.UDPConfig{Listen: "127.0.0.1:0"})
		if err := recv.Open(&benchIngress{delivered: delivered}); err != nil {
			b.Fatal(err)
		}
		send := portio.NewUDP(portio.UDPConfig{
			Listen: "127.0.0.1:0", Peer: recv.LocalAddr().String(), QueueDepth: 1024,
		})
		bind, err := portio.Bind(h, 1, send)
		if err != nil {
			recv.Close()
			b.Fatal(err)
		}
		return func() { bind.Close() }, func() { recv.Close() }
	})

	snap := benchSnapshot{Package: "portio", Timestamp: time.Now().UTC()}
	for _, name := range []string{"DirectBind", "ChanSync", "ChanQueued", "UDPLoopback"} {
		if r, ok := results[name]; ok {
			snap.Results = append(snap.Results, r)
		}
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_portio.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkDataplaneSnapshot records the dataplane perf trajectory:
// full-pipeline throughput (lookup cache on and off) plus the two
// portio reference points (in-process channel, real UDP socket), written
// to BENCH_dataplane.json alongside BENCH_portio.json so CI archives a
// per-PR snapshot of both the engine and the wire seam.
func BenchmarkDataplaneSnapshot(b *testing.B) {
	const n = 20000
	results := map[string]benchResult{}
	record := func(name string, run func() float64) {
		b.Run(name, func(b *testing.B) {
			var pps float64
			for i := 0; i < b.N; i++ {
				pps = run()
			}
			b.ReportMetric(pps, "pkts/s")
			results[name] = benchResult{Name: name, NsPerOp: 1e9 / pps, Ops: n}
		})
	}

	record("PipelineCached", func() float64 {
		return engineThroughput(b, dataplane.Config{}, n)
	})
	record("PipelineUncached", func() float64 {
		return engineThroughput(b, dataplane.Config{DisableLookupCache: true}, n)
	})
	record("PortioChanSync", func() float64 {
		return portIOThroughput(b, n, func(b *testing.B, h *dataplane.Host, delivered *atomic.Int64) (func(), func()) {
			da, db := portio.NewChanPair(0)
			if err := db.Open(&benchIngress{delivered: delivered}); err != nil {
				b.Fatal(err)
			}
			bind, err := portio.Bind(h, 1, da)
			if err != nil {
				b.Fatal(err)
			}
			return func() { bind.Close() }, func() { db.Close() }
		})
	})
	record("PortioUDPLoopback", func() float64 {
		return portIOThroughput(b, n, func(b *testing.B, h *dataplane.Host, delivered *atomic.Int64) (func(), func()) {
			recv := portio.NewUDP(portio.UDPConfig{Listen: "127.0.0.1:0"})
			if err := recv.Open(&benchIngress{delivered: delivered}); err != nil {
				b.Fatal(err)
			}
			send := portio.NewUDP(portio.UDPConfig{
				Listen: "127.0.0.1:0", Peer: recv.LocalAddr().String(), QueueDepth: 1024,
			})
			bind, err := portio.Bind(h, 1, send)
			if err != nil {
				recv.Close()
				b.Fatal(err)
			}
			return func() { bind.Close() }, func() { recv.Close() }
		})
	})

	snap := benchSnapshot{Package: "dataplane", Timestamp: time.Now().UTC()}
	for _, name := range []string{"PipelineCached", "PipelineUncached", "PortioChanSync", "PortioUDPLoopback"} {
		if r, ok := results[name]; ok {
			snap.Results = append(snap.Results, r)
		}
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_dataplane.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// churnFlow returns the unique key and scope of churn-flow i. The low
// 32 bits of i are embedded verbatim (uniqueness), the mixed bits give
// the shard hash and port spread, and flows fan out over many service
// scopes so copy-on-write clones stay per-scope-sized.
func churnFlow(i uint64) (flowtable.ServiceID, packet.FlowKey) {
	x := (i + 1) * 0x9E3779B97F4A7C15
	x ^= x >> 29
	return flowtable.ServiceID(1 + i%256), packet.FlowKey{
		SrcIP:   packet.IPv4(10, byte(i>>16), byte(i>>8), byte(i)),
		DstIP:   packet.IPv4(10, 2, byte(i>>24), 1),
		SrcPort: uint16(x >> 32), DstPort: 80, Proto: packet.ProtoUDP,
	}
}

// BenchmarkFlowChurn holds the table at a steady state of >=1M live
// flows with idle expiry armed and measures the churn cycle: a Zipf-ish
// lookup phase keeps the popular head hot, the coarse clock advances,
// the sweeper reaps the cold tail, and fresh flows replace the evicted
// ones exactly — live count is invariant across rounds. After the
// measured rounds the whole population is mass-expired and the heap
// must shrink (right-sized map rebuilds), which is the bounded-memory
// claim of the lifecycle design. Writes BENCH_flowchurn.json.
func BenchmarkFlowChurn(b *testing.B) {
	const (
		liveFlows = 1 << 20 // steady-state live population (>=1M)
		idle      = time.Second
		tick      = idle / 4 // flows untouched for 4 rounds expire
		touches   = 1 << 18  // Zipf-ish lookups per round
		batch     = 8192
	)
	tb := flowtable.New()
	tb.SetDefaultTimeouts(idle, 0)

	addRange := func(from, to uint64) {
		rules := make([]flowtable.Rule, 0, batch)
		for i := from; i < to; i++ {
			scope, key := churnFlow(i)
			rules = append(rules, flowtable.Rule{
				Scope: scope, Match: flowtable.ExactMatch(key),
				Actions: []flowtable.Action{flowtable.Forward(1)},
			})
			if len(rules) == batch || i == to-1 {
				if _, err := tb.AddBatch(rules); err != nil {
					b.Fatal(err)
				}
				rules = rules[:0]
			}
		}
	}
	// Seed in quarters with the clock advancing between them, so the
	// population starts age-staggered across the idle window and the
	// cold tail begins expiring on the very first measured round.
	total := uint64(0)
	for q := 0; q < 4; q++ {
		next := uint64(liveFlows) * uint64(q+1) / 4
		addRange(total, next)
		total = next
		if q < 3 {
			tb.Advance(tick)
		}
	}
	if got := tb.Stats().Rules; got < liveFlows {
		b.Fatalf("seeded %d live flows, want %d", got, liveFlows)
	}
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	heapSteady := ms.HeapAlloc

	var touchNs, sweepNs int64
	var lookups, churned uint64
	rng := uint64(benchSeed)
	b.ReportAllocs()
	b.ResetTimer()
	for r := 0; r < b.N; r++ {
		// Zipf-ish touch phase: squared-uniform rank biased toward the
		// newest flows, so a popular head stays hot while the cold tail
		// ages out. Misses (already-expired tail picks) are legitimate.
		t0 := time.Now()
		for j := 0; j < touches; j++ {
			rng = rng*6364136223846793005 + 1442695040888963407
			u := float64(rng>>11) / float64(1<<53)
			i := total - 1 - uint64(u*u*float64(liveFlows))
			scope, key := churnFlow(i)
			_, _ = tb.Lookup(scope, key)
		}
		touchNs += time.Since(t0).Nanoseconds()
		lookups += touches

		tb.Advance(tick)
		t0 = time.Now()
		evicted := tb.Sweep()
		sweepNs += time.Since(t0).Nanoseconds()

		// Exact replacement: the live population is invariant.
		addRange(total, total+uint64(len(evicted)))
		total += uint64(len(evicted))
		churned += 2 * uint64(len(evicted))
	}
	b.StopTimer()
	live := tb.Stats().Rules
	if live < liveFlows {
		b.Fatalf("steady state slipped to %d live flows", live)
	}
	b.ReportMetric(float64(live), "live-flows")
	if lookups > 0 {
		b.ReportMetric(float64(touchNs)/float64(lookups), "lookup-ns")
	}
	if churned > 0 {
		b.ReportMetric(float64(churned)/float64(b.N), "churned/round")
	}

	// Mass expiry: everything idles out, the sweeper rebuilds shard maps
	// right-sized, and the heap must come back down.
	tb.Advance(2 * idle)
	for len(tb.Sweep()) > 0 {
	}
	if got := tb.Stats().Rules; got != 0 {
		b.Fatalf("drain left %d rules", got)
	}
	runtime.GC()
	runtime.ReadMemStats(&ms)
	heapDrained := ms.HeapAlloc
	if heapDrained > heapSteady/2 {
		b.Fatalf("heap did not shrink after mass expiry: steady=%dMB drained=%dMB",
			heapSteady>>20, heapDrained>>20)
	}
	st := tb.Stats()
	if st.Adds != uint64(st.Rules)+st.Deleted+st.Evicted() {
		b.Fatalf("lifecycle identity broken: %+v", st)
	}

	snap := benchSnapshot{Package: "flowchurn", Timestamp: time.Now().UTC(),
		Results: []benchResult{
			{Name: "LookupUnderChurn", NsPerOp: float64(touchNs) / float64(lookups), Ops: int(lookups)},
			{Name: "SweepPerLiveFlow", NsPerOp: float64(sweepNs) / float64(uint64(b.N)*liveFlows), Ops: liveFlows},
			{Name: "HeapBytesPerLiveFlow", NsPerOp: float64(heapSteady) / float64(liveFlows), Ops: liveFlows},
		}}
	if churned > 0 {
		snap.Results = append(snap.Results, benchResult{
			Name: "ChurnPerFlow", NsPerOp: float64(touchNs+sweepNs) / float64(churned), Ops: int(churned)})
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_flowchurn.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkMicroCosts regenerates the §5.1 micro-cost table.
func BenchmarkMicroCosts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Micro(benchSeed)
		b.ReportMetric(r.LookupNs, "lookup-ns")
		b.ReportMetric(r.MinQueueNs, "minqueue-ns")
	}
}
