// Command sdnfv-experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	sdnfv-experiments [-seed N] [-list] [name ...]
//
// With no names it runs every registered experiment in order.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"sdnfv/internal/experiments"
)

func main() {
	// Child role for the two-process wire experiment: serve host B over
	// stdio (see experiments.RunWirePeer), no flags involved.
	if os.Getenv("SDNFV_WIRE_ROLE") == "peer" {
		if err := experiments.RunWirePeer(); err != nil {
			fmt.Fprintf(os.Stderr, "wire peer: %v\n", err)
			os.Exit(1)
		}
		return
	}

	seed := flag.Int64("seed", 42, "random seed (experiments are deterministic per seed)")
	list := flag.Bool("list", false, "list experiment names and exit")
	flag.Parse()

	// The wire experiment re-executes this binary as its peer process.
	if os.Getenv("SDNFV_WIRE_EXEC") == "" {
		if exe, err := os.Executable(); err == nil {
			os.Setenv("SDNFV_WIRE_EXEC", exe)
		}
	}

	if *list {
		for _, n := range experiments.Names() {
			fmt.Println(n)
		}
		return
	}

	names := flag.Args()
	if len(names) == 0 {
		names = experiments.Names()
	}
	exit := 0
	for _, name := range names {
		start := time.Now()
		res, err := experiments.Run(name, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			exit = 1
			continue
		}
		fmt.Printf("=== %s (%.1fs) ===\n%s\n", res.Name(), time.Since(start).Seconds(), res.Render())
	}
	os.Exit(exit)
}
