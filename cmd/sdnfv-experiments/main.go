// Command sdnfv-experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	sdnfv-experiments [-seed N] [-list] [name ...]
//
// With no names it runs every registered experiment in order.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"sdnfv/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", 42, "random seed (experiments are deterministic per seed)")
	list := flag.Bool("list", false, "list experiment names and exit")
	flag.Parse()

	if *list {
		for _, n := range experiments.Names() {
			fmt.Println(n)
		}
		return
	}

	names := flag.Args()
	if len(names) == 0 {
		names = experiments.Names()
	}
	exit := 0
	for _, name := range names {
		start := time.Now()
		res, err := experiments.Run(name, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			exit = 1
			continue
		}
		fmt.Printf("=== %s (%.1fs) ===\n%s\n", res.Name(), time.Since(start).Seconds(), res.Render())
	}
	os.Exit(exit)
}
