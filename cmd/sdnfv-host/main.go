// Command sdnfv-host runs one SDNFV NF host: the NF Manager data plane
// with a set of demo NFs, connected to an sdnfv-ctl controller over TCP
// through the typed control API. Flow-table misses are pipelined to the
// controller by the Flow Controller thread (whole bursts of PACKET_INs
// in flight at once, §4.1); returned FLOW_MODs are batch-installed and
// traffic proceeds locally. Cross-layer NF messages are forwarded
// upstream as NF_MESSAGEs.
//
// Without a reachable controller the host still runs, using a
// pre-populated local chain. A built-in traffic generator exercises the
// path. SIGINT/SIGTERM stop the generator, drain the data plane, and
// exit 0.
//
// Real packet I/O: -port binds a pluggable transport behind a NIC port
// (repeatable), so two hosts can exchange frames over actual sockets —
//
//	sdnfv-host -port 1=udp:127.0.0.1:7001/127.0.0.1:7002 -packets 10000
//	sdnfv-host -port 0=udp:127.0.0.1:7002 -packets 0
//
// runs a sender whose chain egresses over UDP loopback into a second
// process serving until SIGINT. -packets 0 means serve mode: no local
// generator, traffic comes in off the wire.
//
// Observability: -telemetry ADDR serves the Prometheus exporter at
// /metrics and the show/state API under /state/ (query it with
// `sdnfv-ctl show`); on shutdown the host prints one final exporter
// snapshot from the same registry.
//
//	sdnfv-host -controller 127.0.0.1:6653 -telemetry 127.0.0.1:9464 -packets 10000
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sdnfv/internal/autoscale"
	"sdnfv/internal/control"
	"sdnfv/internal/dataplane"
	"sdnfv/internal/flowtable"
	"sdnfv/internal/nf"
	"sdnfv/internal/nfs"
	"sdnfv/internal/orchestrator"
	"sdnfv/internal/portio"
	"sdnfv/internal/telemetry"
	"sdnfv/internal/traffic"
)

func main() {
	ctlAddr := flag.String("controller", "", "controller address (empty = standalone with local rules)")
	datapath := flag.Uint64("datapath", 0, "datapath id announced to the controller (0 = anonymous); rules resolve scoped to this host")
	packets := flag.Int("packets", 10000, "packets to generate")
	flows := flag.Int("flows", 8, "concurrent synthetic flows")
	autoScale := flag.Bool("autoscale", true, "autoscale the counter service from its queue telemetry")
	scaleMin := flag.Int("scale-min", 1, "autoscale: minimum replicas")
	scaleMax := flag.Int("scale-max", 3, "autoscale: maximum replicas")
	flowIdle := flag.Duration("flow-idle", 0, "evict flow rules idle for this long (0 = never); starts the table sweeper")
	flowHard := flag.Duration("flow-hard", 0, "evict flow rules this long after install regardless of traffic (0 = never)")
	telemetryAddr := flag.String("telemetry", "", "serve /metrics and /state/... on this address (e.g. 127.0.0.1:9464; empty = off)")
	specPath := flag.String("spec", "", "declarative deployment spec (JSON); boots the declared cluster under the reconcile loop instead of the imperative single-host setup")
	var ports portio.PortFlags
	flag.Var(&ports, "port", "bind a port driver, N=udp:LADDR[/RADDR] | N=tcp:ADDR | N=tcp-listen:ADDR | N=afpacket:IFACE (repeatable)")
	flag.Parse()

	if *specPath != "" {
		// In spec mode replica bounds, placement, and wiring all come
		// from the spec; flags that would contradict it are refused
		// rather than silently ignored.
		conflicts := map[string]string{
			"scale-min":  "autoscale bounds come from the spec's per-service scale stanza",
			"scale-max":  "autoscale bounds come from the spec's per-service scale stanza",
			"autoscale":  "the reconciler owns the autoscalers in spec mode",
			"controller": "spec mode runs its own in-process controller",
			"port":       "spec mode wires ports from the spec's links",
			"datapath":   "datapath ids come from the spec's host stanzas",
			"flow-idle":  "flow timeouts come from the spec's flow_timeouts stanza",
			"flow-hard":  "flow timeouts come from the spec's flow_timeouts stanza",
		}
		var conflict error
		flag.Visit(func(f *flag.Flag) {
			if why, ok := conflicts[f.Name]; ok && conflict == nil {
				conflict = fmt.Errorf("sdnfv-host: -%s conflicts with -spec: %s", f.Name, why)
			}
		})
		if conflict != nil {
			log.Fatal(conflict)
		}
		runSpec(*specPath, *packets, *flows, *telemetryAddr)
		return
	}

	cfg := dataplane.Config{
		PoolSize: 4096, TXThreads: 1,
		FlowIdleTimeout: *flowIdle, FlowHardTimeout: *flowHard,
	}
	if *ctlAddr != "" {
		dialCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		client, err := control.DialAs(dialCtx, *ctlAddr, control.DatapathID(*datapath))
		cancel()
		if err != nil {
			log.Fatalf("dial controller: %v", err)
		}
		defer client.Close()
		// The Flow Controller thread resolves misses over this channel
		// with pipelined XID-correlated PacketIns; the HELLO announced
		// our datapath id, so the controller registers this host's
		// session and scopes every FLOW_MOD to it.
		cfg.Control = client
		if f, err := client.Features(context.Background()); err == nil {
			log.Printf("sdnfv-host: control channel to %s up as datapath %#x (controller %#x)",
				*ctlAddr, *datapath, f.DatapathID)
		} else {
			log.Printf("sdnfv-host: control channel to %s up", *ctlAddr)
		}
	}

	host := dataplane.NewHost(cfg)
	start := time.Now()
	mustNF(host.AddNF(1, &nfs.Firewall{DefaultAllow: true}, 0))
	mustNF(host.AddNF(2, &nfs.Counter{}, 0))
	mustNF(host.AddNF(3, &nfs.Shaper{
		RateBps: 1e9, BurstBytes: 1e6,
		Now: func() float64 { return time.Since(start).Seconds() },
	}, 0))
	if cfg.Control == nil {
		// Standalone: pre-populate the chain locally.
		mustRule(host, flowtable.Rule{Scope: flowtable.Port(0), Match: flowtable.MatchAll,
			Actions: []flowtable.Action{flowtable.Forward(1)}})
		mustRule(host, flowtable.Rule{Scope: 1, Match: flowtable.MatchAll,
			Actions: []flowtable.Action{flowtable.Forward(2)}})
		mustRule(host, flowtable.Rule{Scope: 2, Match: flowtable.MatchAll,
			Actions: []flowtable.Action{flowtable.Forward(3)}})
		mustRule(host, flowtable.Rule{Scope: 3, Match: flowtable.MatchAll,
			Actions: []flowtable.Action{flowtable.Out(1)}})
	}

	var delivered int
	doneCh := make(chan struct{})
	host.BindDefault(func(int, []byte, *dataplane.Desc) {
		delivered++
		if delivered == *packets {
			close(doneCh)
		}
	})
	// Driver teardown runs after host.Stop (LIFO defers): the engine
	// drains through the sinks first, then each driver flushes its
	// egress queue onto the wire and closes its socket.
	var bindings []*portio.Binding
	defer func() {
		for _, b := range bindings {
			if err := b.Close(); err != nil {
				log.Printf("sdnfv-host: close port %d: %v", b.Port(), err)
			}
		}
	}()
	if err := host.Start(); err != nil {
		log.Fatal(err)
	}
	defer host.Stop()
	for _, ps := range ports.Ports {
		b, err := portio.Bind(host, ps.Port, ps.Driver)
		if err != nil {
			log.Fatalf("bind %s: %v", ps.Spec, err)
		}
		bindings = append(bindings, b)
		log.Printf("sdnfv-host: port %d bound to %s (%s)", ps.Port, ps.Driver.Name(), ps.Spec)
	}

	// Observability plane: the same registry backs the live exporter
	// (-telemetry) and the final shutdown snapshot, so what an operator
	// scrapes mid-run and what the host prints on exit come from one
	// code path.
	reg := telemetry.NewRegistry()
	telemetry.RegisterHost(reg, "host1", control.DatapathID(*datapath), host)

	// Elasticity loop (§3.3/§5 dynamic scaling): the counter service
	// scales between -scale-min and -scale-max replicas from its own
	// queue/overflow telemetry, actuating through the orchestrator
	// (standby VMs make boots fast; Retire drains flow-state-safely).
	var scaler *autoscale.Controller
	if *autoScale {
		clock := autoscale.NewRealClock()
		orch := orchestrator.New(orchestrator.Config{
			BootDelaySec: 0.5, StandbyDelaySec: 0.05, Standby: *scaleMax,
		}, clock)
		orch.AddHost(dataplane.NamedHost{Name: "host1", Host: host})
		scaler = autoscale.New(autoscale.Config{
			Min: *scaleMin, Max: *scaleMax,
			IntervalSec: 0.05, CooldownSec: 0.25,
		},
			autoscale.ServiceSource{Host: host, Service: 2, Orch: orch},
			autoscale.OrchestratorActuator{
				Orch: orch, HostName: "host1", Host: host, Service: 2,
				NewNF: func() nf.BatchFunction { return &nfs.Counter{} },
			}, clock)
		scaler.Start()
		defer scaler.Stop()
		telemetry.RegisterAutoscale(reg, flowtable.ServiceID(2).String(), scaler)
	}

	if *telemetryAddr != "" {
		srv, err := telemetry.Serve(*telemetryAddr, reg)
		if err != nil {
			log.Fatalf("telemetry: %v", err)
		}
		defer srv.Close()
		log.Printf("sdnfv-host: telemetry on http://%s/metrics (state index at /state)", srv.Addr())
	}

	// Graceful shutdown: a signal stops the generator loop and falls
	// through to the drain + stats path below.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	interrupted := false

	if *packets == 0 {
		// Serve mode: no local generator — traffic arrives off the wire
		// through the bound port drivers until a signal stops us.
		log.Printf("sdnfv-host: serving (%d port driver(s) bound), ^C to stop", len(bindings))
		s := <-sigs
		log.Printf("sdnfv-host: %s received, draining", s)
	} else {
		factory := traffic.NewFactory()
	gen:
		for i := 0; i < *packets; i++ {
			select {
			case s := <-sigs:
				log.Printf("sdnfv-host: %s received, stopping generator", s)
				interrupted = true
				break gen
			default:
			}
			spec := traffic.Flow(i%*flows, 512, 0)
			frame, err := factory.Frame(spec, time.Now().UnixNano())
			if err != nil {
				log.Fatal(err)
			}
			for {
				if err := host.Inject(0, frame); err == nil {
					break
				}
				time.Sleep(5 * time.Microsecond)
			}
		}
		// With port drivers bound, deliveries happen on the far side of
		// the wire — fall through to the idle drain instead of waiting
		// for a local delivery count that will never be reached.
		if !interrupted && len(bindings) == 0 {
			select {
			case <-doneCh:
			case s := <-sigs:
				log.Printf("sdnfv-host: %s received, draining", s)
			case <-time.After(30 * time.Second):
				log.Printf("sdnfv-host: timed out waiting for deliveries")
			}
		}
	}
	host.WaitIdle(5 * time.Second)

	// Ordered shutdown before the final stats read so the wire counters
	// reconcile: engine drained through the sinks, then every driver
	// flushes its egress queue and closes. The deferred copies of these
	// calls are idempotent no-ops after this.
	if scaler != nil {
		scaler.Stop()
	}
	host.Stop()
	for _, b := range bindings {
		if err := b.Close(); err != nil {
			log.Printf("sdnfv-host: close port %d: %v", b.Port(), err)
		}
	}

	st := host.Stats()
	log.Printf("sdnfv-host: rx=%d tx=%d drops=%d overflows=%d txdrops=%d rxdrops=%d misses=%d rules=%d",
		st.RxPackets, st.TxPackets, st.Drops, st.Overflows, st.TxDrops, st.RxDrops, st.Misses, st.Table.Rules)
	// Final snapshot through the exporter itself: the same families a
	// live scrape would see, per-port and per-replica counters included.
	if err := reg.WritePrometheus(os.Stdout); err != nil {
		log.Printf("sdnfv-host: final snapshot: %v", err)
	}
	if scaler != nil {
		for _, ev := range scaler.Events() {
			log.Printf("sdnfv-host: autoscale %s at t=%.2fs (replicas=%d backlog=%d err=%v)",
				ev.Decision, ev.At, ev.Replicas, ev.Backlog, ev.Err)
		}
	}
	fmt.Println(host.Table().Dump())
}

func mustNF(_ *dataplane.Instance, err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func mustRule(h *dataplane.Host, r flowtable.Rule) {
	if _, err := h.Table().Add(r); err != nil {
		log.Fatal(err)
	}
}
