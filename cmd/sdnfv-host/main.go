// Command sdnfv-host runs one SDNFV NF host: the NF Manager data plane
// with a set of demo NFs, connected to an sdnfv-ctl controller over TCP.
// Flow-table misses are punted to the controller as PACKET_INs by the Flow
// Controller thread (§4.1); returned FLOW_MODs are installed and traffic
// proceeds locally. Cross-layer NF messages are forwarded upstream as
// NF_MESSAGEs.
//
// Without a reachable controller the host still runs, using a
// pre-populated local chain. A built-in traffic generator exercises the
// path.
//
//	sdnfv-host -controller 127.0.0.1:6653 -packets 10000
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"sdnfv/internal/dataplane"
	"sdnfv/internal/flowtable"
	"sdnfv/internal/nf"
	"sdnfv/internal/nfs"
	"sdnfv/internal/openflow"
	"sdnfv/internal/packet"
	"sdnfv/internal/traffic"
)

func main() {
	ctlAddr := flag.String("controller", "", "controller address (empty = standalone with local rules)")
	packets := flag.Int("packets", 10000, "packets to generate")
	flows := flag.Int("flows", 8, "concurrent synthetic flows")
	flag.Parse()

	var (
		mu   sync.Mutex
		conn *openflow.Conn
	)
	if *ctlAddr != "" {
		raw, err := net.DialTimeout("tcp", *ctlAddr, 5*time.Second)
		if err != nil {
			log.Fatalf("dial controller: %v", err)
		}
		defer raw.Close()
		conn = openflow.NewConn(raw)
		if _, err := conn.Send(openflow.Hello{}); err != nil {
			log.Fatal(err)
		}
		log.Printf("sdnfv-host: control channel to %s up", *ctlAddr)
	}

	cfg := dataplane.Config{PoolSize: 4096, TXThreads: 1}
	if conn != nil {
		// The Flow Controller thread resolves misses over the wire:
		// PACKET_IN, then FLOW_MODs until the barrier.
		cfg.MissHandler = func(scope flowtable.ServiceID, key packet.FlowKey) ([]flowtable.Rule, error) {
			mu.Lock()
			defer mu.Unlock()
			if _, err := conn.Send(openflow.PacketIn{Scope: scope, Key: key}); err != nil {
				return nil, err
			}
			var rules []flowtable.Rule
			for {
				msg, _, err := conn.Recv()
				if err != nil {
					return nil, err
				}
				switch m := msg.(type) {
				case openflow.Hello:
					// Greeting may still be in flight; skip it.
				case openflow.FlowMod:
					rules = append(rules, m.Rule)
				case openflow.Barrier:
					return rules, nil
				case openflow.ErrorMsg:
					return nil, fmt.Errorf("controller error %d: %s", m.Code, m.Text)
				}
			}
		}
		cfg.MsgHandler = func(src flowtable.ServiceID, m nf.Message) {
			mu.Lock()
			defer mu.Unlock()
			_, _ = conn.Send(openflow.NFMessage{Src: src, Msg: m})
		}
	}

	host := dataplane.NewHost(cfg)
	start := time.Now()
	mustNF(host.AddNF(1, &nfs.Firewall{DefaultAllow: true}, 0))
	mustNF(host.AddNF(2, &nfs.Counter{}, 0))
	mustNF(host.AddNF(3, &nfs.Shaper{
		RateBps: 1e9, BurstBytes: 1e6,
		Now: func() float64 { return time.Since(start).Seconds() },
	}, 0))
	if conn == nil {
		// Standalone: pre-populate the chain locally.
		mustRule(host, flowtable.Rule{Scope: flowtable.Port(0), Match: flowtable.MatchAll,
			Actions: []flowtable.Action{flowtable.Forward(1)}})
		mustRule(host, flowtable.Rule{Scope: 1, Match: flowtable.MatchAll,
			Actions: []flowtable.Action{flowtable.Forward(2)}})
		mustRule(host, flowtable.Rule{Scope: 2, Match: flowtable.MatchAll,
			Actions: []flowtable.Action{flowtable.Forward(3)}})
		mustRule(host, flowtable.Rule{Scope: 3, Match: flowtable.MatchAll,
			Actions: []flowtable.Action{flowtable.Out(1)}})
	}

	var delivered int
	doneCh := make(chan struct{})
	host.SetOutput(func(int, []byte, *dataplane.Desc) {
		delivered++
		if delivered == *packets {
			close(doneCh)
		}
	})
	if err := host.Start(); err != nil {
		log.Fatal(err)
	}
	defer host.Stop()

	factory := traffic.NewFactory()
	for i := 0; i < *packets; i++ {
		spec := traffic.Flow(i%*flows, 512, 0)
		frame, err := factory.Frame(spec, time.Now().UnixNano())
		if err != nil {
			log.Fatal(err)
		}
		for {
			if err := host.Inject(0, frame); err == nil {
				break
			}
			time.Sleep(5 * time.Microsecond)
		}
	}
	select {
	case <-doneCh:
	case <-time.After(30 * time.Second):
		log.Printf("sdnfv-host: timed out waiting for deliveries")
	}
	host.WaitIdle(5 * time.Second)

	st := host.Stats()
	log.Printf("sdnfv-host: rx=%d tx=%d drops=%d misses=%d rules=%d",
		st.RxPackets, st.TxPackets, st.Drops, st.Misses, st.Table.Rules)
	fmt.Println(host.Table().Dump())
}

func mustNF(_ *dataplane.Instance, err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func mustRule(h *dataplane.Host, r flowtable.Rule) {
	if _, err := h.Table().Add(r); err != nil {
		log.Fatal(err)
	}
}
