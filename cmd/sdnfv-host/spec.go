package main

// Spec mode (-spec FILE): instead of the imperative single-host setup,
// the process boots the entire declared cluster in-process — one
// dataplane host per spec host wired through a cluster fabric — and
// hands desired state to the reconcile loop. NFs boot through the
// orchestrator, rules install through the incremental recompile path,
// and autoscale bounds come from the spec (which is why -scale-min and
// -scale-max conflict with -spec). The telemetry surface gains
// /state/spec, /state/reconcile, and POST /apply/spec, so a new spec
// generation can be applied to the running process with
// `sdnfv-ctl apply`.

import (
	"fmt"
	"log"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"sdnfv/internal/app"
	"sdnfv/internal/autoscale"
	"sdnfv/internal/cluster"
	"sdnfv/internal/controller"
	"sdnfv/internal/dataplane"
	"sdnfv/internal/flowtable"
	"sdnfv/internal/nf"
	"sdnfv/internal/nfs"
	"sdnfv/internal/orchestrator"
	"sdnfv/internal/reconcile"
	"sdnfv/internal/spec"
	"sdnfv/internal/telemetry"
	"sdnfv/internal/traffic"
)

// builtinNFs is the registry of NF implementations this binary ships;
// spec `nf` bindings resolve against these names.
func builtinNFs() *spec.NFRegistry {
	start := time.Now()
	reg := spec.NewNFRegistry()
	for name, factory := range map[string]func() nf.BatchFunction{
		"firewall": func() nf.BatchFunction { return &nfs.Firewall{DefaultAllow: true} },
		"counter":  func() nf.BatchFunction { return &nfs.Counter{} },
		"shaper": func() nf.BatchFunction {
			return &nfs.Shaper{
				RateBps: 1e9, BurstBytes: 1e6,
				Now: func() float64 { return time.Since(start).Seconds() },
			}
		},
	} {
		if err := reg.Register(name, factory); err != nil {
			log.Fatal(err)
		}
	}
	return reg
}

// runSpec is the -spec entrypoint. It blocks until the generator
// finishes (or a signal arrives), then drains and prints per-host
// stats plus the final reconcile status.
func runSpec(path string, packets, flows int, telemetryAddr string) {
	sp, err := spec.Load(path)
	if err != nil {
		log.Fatalf("sdnfv-host: %v", err)
	}
	nfReg := builtinNFs()
	if err := sp.BindCheck(nfReg); err != nil {
		log.Fatalf("sdnfv-host: %v (built-ins: firewall, counter, shaper)", err)
	}
	dps := reconcile.DatapathsOf(sp)

	ctl := controller.New(controller.Config{Workers: 2})
	ctl.Start()
	defer ctl.Stop()

	fab := cluster.New()
	hosts := map[string]*dataplane.Host{}
	// Lifecycle: the spec-wide flow_timeouts stanza becomes every host
	// table's install-time default; per-service stanzas override at that
	// scope. Any stanza at all turns the background sweeper on.
	flowIdle, flowHard := sp.FlowTimeouts.Durations()
	var sweep time.Duration
	if sp.HasFlowLifecycle() {
		sweep = flowtable.DefaultSweepInterval
	}
	for _, name := range sp.HostNames() {
		h := dataplane.NewHost(dataplane.Config{
			PoolSize: 4096, RingSize: 1024, TXThreads: 1,
			Control:         ctl.Session(dps[name]),
			FlowIdleTimeout: flowIdle, FlowHardTimeout: flowHard,
			FlowSweepInterval: sweep,
		})
		for i := range sp.Services {
			if ft := sp.Services[i].FlowTimeouts; ft != nil {
				idle, hard := ft.Durations()
				h.Table().SetScopeTimeouts(sp.Services[i].ID, idle, hard)
			}
		}
		hosts[name] = h
		if err := fab.AddHost(dps[name], name, h); err != nil {
			log.Fatal(err)
		}
	}
	if err := reconcile.WireLinks(fab, sp, cluster.LinkConfig{}); err != nil {
		log.Fatal(err)
	}

	g, err := sp.Graph()
	if err != nil {
		log.Fatal(err)
	}
	a := app.New(app.Config{IngressPort: sp.Ingress.Port, EgressPort: sp.EgressPort, WildcardRules: true})
	if err := a.RegisterGraph(g); err != nil {
		log.Fatal(err)
	}
	a.SetDownstream(fab)
	ctl.SetNorthbound(a)

	clock := autoscale.NewRealClock()
	orch := orchestrator.New(orchestrator.Config{BootDelaySec: 0.05, StandbyDelaySec: 0.05, Standby: 1}, clock)
	for name, h := range hosts {
		orch.AddHost(dataplane.NamedHost{Name: name, Host: h})
	}
	act := &reconcile.ClusterActuators{
		Fabric: fab, App: a, Orch: orch, NFs: nfReg, Clock: clock,
		Scale:     autoscale.Config{IntervalSec: 0.05, CooldownSec: 0.25},
		Datapaths: dps,
	}
	defer act.Close()
	rec := reconcile.New(reconcile.Config{IntervalSec: 0.05}, reconcile.ClusterObserver{Fabric: fab, Datapaths: dps}, act, clock)

	reg := telemetry.NewRegistry()
	for name, h := range hosts {
		telemetry.RegisterHost(reg, name, dps[name], h)
	}
	telemetry.RegisterReconcile(reg, rec)

	gen, _, err := rec.Apply(sp)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("sdnfv-host: spec %q generation %d applied (%d hosts, %d services)",
		sp.Name, gen, len(sp.Hosts), len(sp.Services))

	var delivered atomic.Uint64
	for _, h := range hosts {
		h.BindDefault(func(int, []byte, *dataplane.Desc) { delivered.Add(1) })
	}
	if err := fab.Start(); err != nil {
		log.Fatal(err)
	}
	defer fab.Stop()
	rec.Start()
	defer rec.Stop()

	// Converge before generating: every placement up, routing in force.
	deadline := time.Now().Add(10 * time.Second)
	for !rec.Status().Converged {
		if time.Now().After(deadline) {
			log.Fatalf("sdnfv-host: spec never converged: %+v", rec.Status())
		}
		time.Sleep(20 * time.Millisecond)
	}
	st := rec.Status()
	log.Printf("sdnfv-host: converged after %d ticks, placement %v", st.Ticks, st.Placement)

	if telemetryAddr != "" {
		srv, err := telemetry.Serve(telemetryAddr, reg)
		if err != nil {
			log.Fatalf("telemetry: %v", err)
		}
		defer srv.Close()
		log.Printf("sdnfv-host: telemetry on http://%s/metrics (apply specs at /apply/spec)", srv.Addr())
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)

	ingress := hosts[sp.Ingress.Host]
	if packets == 0 {
		log.Printf("sdnfv-host: serving declared cluster, ^C to stop")
		s := <-sigs
		log.Printf("sdnfv-host: %s received, draining", s)
	} else {
		factory := traffic.NewFactory()
	gen:
		for i := 0; i < packets; i++ {
			select {
			case s := <-sigs:
				log.Printf("sdnfv-host: %s received, stopping generator", s)
				break gen
			default:
			}
			fs := traffic.Flow(i%flows, 512, 0)
			frame, err := factory.Frame(fs, time.Now().UnixNano())
			if err != nil {
				log.Fatal(err)
			}
			for {
				if err := ingress.Inject(sp.Ingress.Port, frame); err == nil {
					break
				}
				time.Sleep(5 * time.Microsecond)
			}
		}
	}
	if !fab.WaitIdle(10 * time.Second) {
		log.Printf("sdnfv-host: drain timed out — packets still in flight")
	}

	rec.Stop()
	fab.Stop()
	final := rec.Status()
	for _, name := range sp.HostNames() {
		hs := hosts[name].Stats()
		log.Printf("sdnfv-host: %s rx=%d tx=%d drops=%d overflows=%d txdrops=%d rxdrops=%d misses=%d",
			name, hs.RxPackets, hs.TxPackets, hs.Drops, hs.Overflows, hs.TxDrops, hs.RxDrops, hs.Misses)
	}
	log.Printf("sdnfv-host: delivered=%d generation=%d converged=%v drift=%d actions ok=%d failed=%d",
		delivered.Load(), final.Generation, final.Converged, len(final.Drift), final.ActionsOK, final.ActionsFailed)
	fmt.Printf("spec mode: generation=%d converged=%v delivered=%d\n",
		final.Generation, final.Converged, delivered.Load())
}
