// Command sdnfv-bench-diff compares two directories of committed
// BENCH_*.json snapshots (see bench/README.md) and prints per-metric
// deltas, so a PR's perf trajectory is reviewable as text instead of
// eyeballed from raw -bench output:
//
//	sdnfv-bench-diff bench/pr9 bench/pr10
//
// Metrics are matched by (package, workload name). Workloads present on
// only one side are listed as added/removed rather than failing the
// run. The exit code reflects usage errors only — deltas never gate; CI
// runs this as a non-blocking report step because absolute numbers move
// with the runner hardware.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// benchResult mirrors the snapshot schema the bench harnesses emit.
type benchResult struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
	Ops     int     `json:"ops"`
}

type benchSnapshot struct {
	Package   string        `json:"package"`
	Timestamp time.Time     `json:"timestamp"`
	Results   []benchResult `json:"results"`
}

// metricKey identifies one workload across snapshot generations.
type metricKey struct{ pkg, name string }

// loadDir reads every BENCH_*.json under dir into a key→ns/op map.
func loadDir(dir string) (map[metricKey]float64, error) {
	files, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no BENCH_*.json snapshots in %s", dir)
	}
	out := map[metricKey]float64{}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		var snap benchSnapshot
		if err := json.Unmarshal(data, &snap); err != nil {
			return nil, fmt.Errorf("%s: %w", f, err)
		}
		for _, r := range snap.Results {
			out[metricKey{snap.Package, r.Name}] = r.NsPerOp
		}
	}
	return out, nil
}

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: sdnfv-bench-diff OLDDIR NEWDIR")
		os.Exit(2)
	}
	oldM, err := loadDir(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdnfv-bench-diff:", err)
		os.Exit(1)
	}
	newM, err := loadDir(os.Args[2])
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdnfv-bench-diff:", err)
		os.Exit(1)
	}

	keys := map[metricKey]bool{}
	for k := range oldM {
		keys[k] = true
	}
	for k := range newM {
		keys[k] = true
	}
	ordered := make([]metricKey, 0, len(keys))
	for k := range keys {
		ordered = append(ordered, k)
	}
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].pkg != ordered[j].pkg {
			return ordered[i].pkg < ordered[j].pkg
		}
		return ordered[i].name < ordered[j].name
	})

	fmt.Printf("%-12s %-24s %12s %12s %9s\n", "package", "workload", "old ns/op", "new ns/op", "delta")
	for _, k := range ordered {
		ov, haveOld := oldM[k]
		nv, haveNew := newM[k]
		switch {
		case !haveOld:
			fmt.Printf("%-12s %-24s %12s %12.1f %9s\n", k.pkg, k.name, "-", nv, "added")
		case !haveNew:
			fmt.Printf("%-12s %-24s %12.1f %12s %9s\n", k.pkg, k.name, ov, "-", "removed")
		default:
			delta := "0.0%"
			if ov != 0 {
				delta = fmt.Sprintf("%+.1f%%", (nv-ov)/ov*100)
			}
			fmt.Printf("%-12s %-24s %12.1f %12.1f %9s\n", k.pkg, k.name, ov, nv, delta)
		}
	}
}
