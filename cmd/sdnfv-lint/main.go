// Command sdnfv-lint runs the sdnfv static-analysis suite — the
// mechanical enforcement of the packet-path invariants (hotpath,
// refcount, atomicsnapshot, sentinelerr) — over Go package patterns.
//
// Usage:
//
//	sdnfv-lint [-run name[,name...]] [-list] [packages]
//
// With no patterns it checks ./... relative to the current directory.
// Diagnostics print as file:line:col: [analyzer] message; the exit code
// is 1 if any diagnostic was reported, 2 on usage or load errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"sdnfv/internal/lint"
	"sdnfv/internal/lint/analysis"
	"sdnfv/internal/lint/analyzers"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("sdnfv-lint", flag.ContinueOnError)
	list := fs.Bool("list", false, "list the analyzers and exit")
	runFilter := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	dir := fs.String("C", ".", "directory to resolve package patterns in")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	suite := analyzers.All()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *runFilter != "" {
		want := map[string]bool{}
		for _, name := range strings.Split(*runFilter, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var picked []*analysis.Analyzer
		for _, a := range suite {
			if want[a.Name] {
				picked = append(picked, a)
				delete(want, a.Name)
			}
		}
		if len(want) > 0 {
			for name := range want {
				fmt.Fprintf(os.Stderr, "sdnfv-lint: unknown analyzer %q\n", name)
			}
			return 2
		}
		suite = picked
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := lint.Run(*dir, patterns, suite)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sdnfv-lint: %v\n", err)
		return 2
	}
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Printf("%s: [%s] %s\n", d.Position, d.Analyzer, d.Message)
	}
	fmt.Fprintf(os.Stderr, "sdnfv-lint: %d diagnostic(s)\n", len(diags))
	return 1
}
