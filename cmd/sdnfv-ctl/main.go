// Command sdnfv-ctl runs the SDN controller + SDNFV Application pair: it
// listens for NF Manager control channels (the openflow package's wire
// protocol over TCP), compiles a service graph into flow rules on demand
// (PACKET_IN → FLOW_MODs), and logs cross-layer NF messages.
//
// Pair it with cmd/sdnfv-host:
//
//	sdnfv-ctl  -listen 127.0.0.1:6653 &
//	sdnfv-host -controller 127.0.0.1:6653
package main

import (
	"flag"
	"log"
	"net"
	"time"

	"sdnfv/internal/app"
	"sdnfv/internal/controller"
	"sdnfv/internal/flowtable"
	"sdnfv/internal/graph"
	"sdnfv/internal/nf"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:6653", "southbound listen address")
	service := flag.Duration("service-time", 0, "artificial per-request controller delay (e.g. 31ms to mimic POX)")
	exact := flag.Bool("exact", true, "install per-flow exact-match rules (false = wildcard pre-population)")
	flag.Parse()

	// The demo application: a three-service chain. A real deployment
	// would register the anomaly/video graphs of §2.2.
	g, err := graph.Chain("default-chain",
		graph.Vertex{Service: 1, Name: "firewall", ReadOnly: true},
		graph.Vertex{Service: 2, Name: "monitor", ReadOnly: true},
		graph.Vertex{Service: 3, Name: "shaper", ReadOnly: false},
	)
	if err != nil {
		log.Fatal(err)
	}
	a := app.New(app.Config{IngressPort: 0, EgressPort: 1})
	if err := a.RegisterGraph(g); err != nil {
		log.Fatal(err)
	}
	a.Subscribe(func(src flowtable.ServiceID, m nf.Message) {
		log.Printf("app: accepted NF message from %s: %s", src, m)
	})

	c := controller.New(controller.Config{ServiceTime: *service})
	c.SetCompiler(a.Compiler(*exact))
	c.SetNFMessageHandler(func(src flowtable.ServiceID, m nf.Message) {
		if !a.HandleNFMessage(src, m) {
			log.Printf("app: REJECTED NF message from %s: %s", src, m)
		}
	})
	c.Start()
	defer c.Stop()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("sdnfv-ctl: serving graph %q on %s (exact=%v)", g.Name, *listen, *exact)
	go func() {
		for {
			st := c.Stats()
			log.Printf("sdnfv-ctl: requests=%d flowmods=%d nfmsgs=%d rejected=%d",
				st.Requests, st.FlowMods, st.NFMsgs, st.Rejected)
			time.Sleep(10 * time.Second)
		}
	}()
	if err := c.Serve(ln); err != nil {
		log.Fatal(err)
	}
}
