// Command sdnfv-ctl runs the SDN controller + SDNFV Application pair: it
// listens for NF Manager control channels (the openflow package's wire
// protocol over TCP), compiles a service graph into flow rules on demand
// (pipelined PACKET_IN → FLOW_MODs), answers FEATURES/STATS requests,
// and validates cross-layer NF messages through the typed control API.
//
// SIGINT/SIGTERM shut it down gracefully: the listener closes, in-flight
// requests drain via Controller.Stop, and the process exits 0.
//
// Pair it with cmd/sdnfv-host:
//
//	sdnfv-ctl  -listen 127.0.0.1:6653 &
//	sdnfv-host -controller 127.0.0.1:6653
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sdnfv/internal/app"
	"sdnfv/internal/control"
	"sdnfv/internal/controller"
	"sdnfv/internal/flowtable"
	"sdnfv/internal/graph"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:6653", "southbound listen address")
	service := flag.Duration("service-time", 0, "artificial per-request controller delay (e.g. 31ms to mimic POX)")
	workers := flag.Int("workers", 1, "concurrent request processors (1 = POX-like single thread)")
	exact := flag.Bool("exact", true, "install per-flow exact-match rules (false = wildcard pre-population)")
	flag.Parse()

	// The demo application: a three-service chain. A real deployment
	// would register the anomaly/video graphs of §2.2.
	g, err := graph.Chain("default-chain",
		graph.Vertex{Service: 1, Name: "firewall", ReadOnly: true},
		graph.Vertex{Service: 2, Name: "monitor", ReadOnly: true},
		graph.Vertex{Service: 3, Name: "shaper", ReadOnly: false},
	)
	if err != nil {
		log.Fatal(err)
	}
	a := app.New(app.Config{IngressPort: 0, EgressPort: 1, WildcardRules: !*exact})
	if err := a.RegisterGraph(g); err != nil {
		log.Fatal(err)
	}
	a.Subscribe(func(dp control.DatapathID, src flowtable.ServiceID, m control.Message) {
		log.Printf("app: accepted NF message from %s on %s: %s", src, dp, m)
	})

	c := controller.New(controller.Config{ServiceTime: *service, Workers: *workers})
	c.SetNorthbound(a)
	c.Start()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("sdnfv-ctl: serving graph %q on %s (exact=%v workers=%d)", g.Name, *listen, *exact, *workers)

	stats := func() {
		st, _ := c.Stats(context.Background())
		log.Printf("sdnfv-ctl: requests=%d flowmods=%d nfmsgs=%d rejected=%d",
			st.Requests, st.FlowMods, st.NFMsgs, st.Rejected)
	}
	ticker := time.NewTicker(10 * time.Second)
	defer ticker.Stop()
	go func() {
		for range ticker.C {
			stats()
		}
	}()

	// Graceful shutdown: a signal closes the listener, which unblocks
	// Serve; then Stop drains in-flight requests and closes the
	// remaining control channels.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	shuttingDown := make(chan struct{})
	go func() {
		s := <-sigs
		log.Printf("sdnfv-ctl: %s received, shutting down", s)
		close(shuttingDown)
		_ = ln.Close()
	}()

	err = c.Serve(ln)
	c.Stop()
	stats()
	select {
	case <-shuttingDown:
		log.Printf("sdnfv-ctl: drained, bye")
	default:
		if err != nil && !errors.Is(err, net.ErrClosed) {
			log.Fatal(err)
		}
	}
}
