// Command sdnfv-ctl runs the SDN controller + SDNFV Application pair: it
// listens for NF Manager control channels (the openflow package's wire
// protocol over TCP), compiles a service graph into flow rules on demand
// (pipelined PACKET_IN → FLOW_MODs), answers FEATURES/STATS requests,
// and validates cross-layer NF messages through the typed control API.
//
// SIGINT/SIGTERM shut it down gracefully: the listener closes, in-flight
// requests drain via Controller.Stop, and the process exits 0.
//
// Pair it with cmd/sdnfv-host:
//
//	sdnfv-ctl  -listen 127.0.0.1:6653 &
//	sdnfv-host -controller 127.0.0.1:6653
//
// The show subcommand queries a running host's telemetry endpoint
// (sdnfv-host -telemetry ADDR) by state path — or fetches and
// conformance-checks the raw exporter output:
//
//	sdnfv-ctl show -host 127.0.0.1:9464                  # list state paths
//	sdnfv-ctl show -host 127.0.0.1:9464 dataplane/hosts  # one JSON snapshot
//	sdnfv-ctl show -host 127.0.0.1:9464 metrics          # validated /metrics
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sdnfv/internal/app"
	"sdnfv/internal/control"
	"sdnfv/internal/controller"
	"sdnfv/internal/flowtable"
	"sdnfv/internal/graph"
	"sdnfv/internal/spec"
	"sdnfv/internal/telemetry"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "show":
			if err := runShow(os.Args[2:]); err != nil {
				log.Fatalf("sdnfv-ctl show: %v", err)
			}
			return
		case "diff":
			if err := runDiff(os.Args[2:]); err != nil {
				log.Fatalf("sdnfv-ctl diff: %v", err)
			}
			return
		case "apply":
			if err := runApply(os.Args[2:]); err != nil {
				log.Fatalf("sdnfv-ctl apply: %v", err)
			}
			return
		}
	}
	runController()
}

// runDiff loads and validates two spec files offline and prints the
// typed change set between them — what a reconciler holding OLD would
// do when handed NEW.
func runDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: sdnfv-ctl diff OLD.json NEW.json")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return errors.New("expected exactly two spec files")
	}
	old, err := spec.Load(fs.Arg(0))
	if err != nil {
		return err
	}
	next, err := spec.Load(fs.Arg(1))
	if err != nil {
		return err
	}
	cs := spec.Diff(old, next)
	if cs.Empty() {
		fmt.Println("no changes")
		return nil
	}
	for _, line := range cs.Summary() {
		fmt.Println(line)
	}
	return nil
}

// runApply validates a spec file locally, POSTs it to a running host's
// /apply/spec action, and prints the applied generation and change set.
func runApply(args []string) error {
	fs := flag.NewFlagSet("apply", flag.ExitOnError)
	host := fs.String("host", "127.0.0.1:9464", "telemetry address of a running sdnfv-host")
	timeout := fs.Duration("timeout", 5*time.Second, "request timeout")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: sdnfv-ctl apply [-host ADDR] SPEC.json")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return errors.New("expected exactly one spec file")
	}
	// Validate locally first: a bad spec fails here with the full
	// validation error instead of a remote 422.
	sp, err := spec.Load(fs.Arg(0))
	if err != nil {
		return err
	}
	data, err := sp.Marshal()
	if err != nil {
		return err
	}
	client := &http.Client{Timeout: *timeout}
	resp, err := client.Post("http://"+*host+"/apply/spec", "application/json", bytes.NewReader(data))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/apply/spec: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	var pretty bytes.Buffer
	if err := json.Indent(&pretty, bytes.TrimSpace(body), "", "  "); err != nil {
		return fmt.Errorf("/apply/spec returned non-JSON: %w", err)
	}
	fmt.Println(pretty.String())
	return nil
}

// runShow queries a running host's telemetry server: no argument lists
// the registered state paths, "metrics" fetches /metrics and runs the
// conformance parser over it, anything else is resolved as a /state
// path ("ports" and "/state/ports" are equivalent).
func runShow(args []string) error {
	fs := flag.NewFlagSet("show", flag.ExitOnError)
	host := fs.String("host", "127.0.0.1:9464", "telemetry address of a running sdnfv-host")
	timeout := fs.Duration("timeout", 5*time.Second, "request timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	client := &http.Client{Timeout: *timeout}
	get := func(path string) ([]byte, error) {
		resp, err := client.Get("http://" + *host + path)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("%s: %s: %s", path, resp.Status, strings.TrimSpace(string(body)))
		}
		return body, nil
	}

	path := fs.Arg(0)
	if path == "metrics" || path == "/metrics" {
		body, err := get("/metrics")
		if err != nil {
			return err
		}
		if _, err := telemetry.ParseText(bytes.NewReader(body)); err != nil {
			return fmt.Errorf("exposition output failed conformance: %w", err)
		}
		_, err = os.Stdout.Write(body)
		return err
	}
	switch {
	case path == "":
		path = "/state"
	case strings.HasPrefix(path, "/state/"):
	case strings.HasPrefix(path, "/"):
		path = "/state" + path
	default:
		path = "/state/" + path
	}
	body, err := get(path)
	if err != nil {
		return err
	}
	var pretty bytes.Buffer
	if err := json.Indent(&pretty, bytes.TrimSpace(body), "", "  "); err != nil {
		return fmt.Errorf("%s returned non-JSON: %w", path, err)
	}
	fmt.Println(pretty.String())
	return nil
}

func runController() {
	listen := flag.String("listen", "127.0.0.1:6653", "southbound listen address")
	service := flag.Duration("service-time", 0, "artificial per-request controller delay (e.g. 31ms to mimic POX)")
	workers := flag.Int("workers", 1, "concurrent request processors (1 = POX-like single thread)")
	exact := flag.Bool("exact", true, "install per-flow exact-match rules (false = wildcard pre-population)")
	flag.Parse()

	// The demo application: a three-service chain. A real deployment
	// would register the anomaly/video graphs of §2.2.
	g, err := graph.Chain("default-chain",
		graph.Vertex{Service: 1, Name: "firewall", ReadOnly: true},
		graph.Vertex{Service: 2, Name: "monitor", ReadOnly: true},
		graph.Vertex{Service: 3, Name: "shaper", ReadOnly: false},
	)
	if err != nil {
		log.Fatal(err)
	}
	a := app.New(app.Config{IngressPort: 0, EgressPort: 1, WildcardRules: !*exact})
	if err := a.RegisterGraph(g); err != nil {
		log.Fatal(err)
	}
	a.Subscribe(func(dp control.DatapathID, src flowtable.ServiceID, m control.Message) {
		log.Printf("app: accepted NF message from %s on %s: %s", src, dp, m)
	})

	c := controller.New(controller.Config{ServiceTime: *service, Workers: *workers})
	c.SetNorthbound(a)
	c.Start()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("sdnfv-ctl: serving graph %q on %s (exact=%v workers=%d)", g.Name, *listen, *exact, *workers)

	stats := func() {
		st, _ := c.Stats(context.Background())
		log.Printf("sdnfv-ctl: requests=%d flowmods=%d nfmsgs=%d rejected=%d",
			st.Requests, st.FlowMods, st.NFMsgs, st.Rejected)
	}
	ticker := time.NewTicker(10 * time.Second)
	defer ticker.Stop()
	go func() {
		for range ticker.C {
			stats()
		}
	}()

	// Graceful shutdown: a signal closes the listener, which unblocks
	// Serve; then Stop drains in-flight requests and closes the
	// remaining control channels.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	shuttingDown := make(chan struct{})
	go func() {
		s := <-sigs
		log.Printf("sdnfv-ctl: %s received, shutting down", s)
		close(shuttingDown)
		_ = ln.Close()
	}()

	err = c.Serve(ln)
	c.Stop()
	stats()
	select {
	case <-shuttingDown:
		log.Printf("sdnfv-ctl: drained, bye")
	default:
		if err != nil && !errors.Is(err, net.ErrClosed) {
			log.Fatal(err)
		}
	}
}
