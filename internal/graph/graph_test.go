package graph

import (
	"errors"
	"testing"

	"sdnfv/internal/flowtable"
)

const (
	sA flowtable.ServiceID = 1
	sB flowtable.ServiceID = 2
	sC flowtable.ServiceID = 3
	sD flowtable.ServiceID = 4
)

func chainOf(t *testing.T, ro ...bool) *Graph {
	t.Helper()
	vs := make([]Vertex, len(ro))
	for i, r := range ro {
		vs[i] = Vertex{Service: flowtable.ServiceID(i + 1), ReadOnly: r}
	}
	g, err := Chain("chain", vs...)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestChainValidates(t *testing.T) {
	g := chainOf(t, false, false, false)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	path := g.DefaultPath()
	if len(path) != 3 || path[0] != sA || path[2] != sC {
		t.Fatalf("default path = %v", path)
	}
}

func TestValidationErrors(t *testing.T) {
	g := New("bad")
	_ = g.AddVertex(Vertex{Service: sA})
	_ = g.AddEdge(Source, sA, true)
	// sA has no default edge to sink.
	if err := g.Validate(); !errors.Is(err, ErrNoDefault) {
		t.Fatalf("want ErrNoDefault, got %v", err)
	}
	_ = g.AddEdge(sA, Sink, true)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Unreachable vertex.
	_ = g.AddVertex(Vertex{Service: sB})
	_ = g.AddEdge(sB, Sink, true)
	if err := g.Validate(); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("want ErrUnreachable, got %v", err)
	}
}

func TestCycleDetection(t *testing.T) {
	g := New("cyclic")
	_ = g.AddVertex(Vertex{Service: sA})
	_ = g.AddVertex(Vertex{Service: sB})
	_ = g.AddEdge(Source, sA, true)
	_ = g.AddEdge(sA, sB, true)
	_ = g.AddEdge(sB, sA, true)
	if err := g.Validate(); !errors.Is(err, ErrCycle) {
		t.Fatalf("want ErrCycle, got %v", err)
	}
}

func TestMultipleDefaults(t *testing.T) {
	g := New("multi")
	_ = g.AddVertex(Vertex{Service: sA})
	_ = g.AddEdge(Source, sA, true)
	_ = g.AddEdge(sA, Sink, true)
	_ = g.AddVertex(Vertex{Service: sB})
	_ = g.AddEdge(sA, sB, true) // second default from sA
	_ = g.AddEdge(sB, Sink, true)
	if err := g.Validate(); !errors.Is(err, ErrMultipleDefault) {
		t.Fatalf("want ErrMultipleDefault, got %v", err)
	}
}

func TestDuplicates(t *testing.T) {
	g := New("dup")
	if err := g.AddVertex(Vertex{Service: sA}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddVertex(Vertex{Service: sA}); !errors.Is(err, ErrDuplicateVertex) {
		t.Fatalf("want ErrDuplicateVertex, got %v", err)
	}
	if err := g.AddVertex(Vertex{Service: Source}); !errors.Is(err, ErrDuplicateVertex) {
		t.Fatal("reserved id accepted")
	}
	_ = g.AddEdge(Source, sA, true)
	if err := g.AddEdge(Source, sA, false); !errors.Is(err, ErrDuplicateEdge) {
		t.Fatalf("want ErrDuplicateEdge, got %v", err)
	}
	if err := g.AddEdge(sA, 99, true); !errors.Is(err, ErrUnknownVertex) {
		t.Fatalf("want ErrUnknownVertex, got %v", err)
	}
}

func TestParallelSegmentDetection(t *testing.T) {
	// fw(ro) -> ids(ro) -> ddos(ro) -> scrub(rw): the read-only run
	// [fw ids ddos]… fw is head only if the whole run qualifies; the
	// paper's example pairs DDoS and IDS.
	g := chainOf(t, true, true, true, false)
	segs := g.ParallelSegments()
	if len(segs) != 1 {
		t.Fatalf("segments = %v", segs)
	}
	if len(segs[0].Members) != 3 || segs[0].Next != sD {
		t.Fatalf("segment = %+v", segs[0])
	}
}

func TestParallelSegmentsRespectWriters(t *testing.T) {
	g := chainOf(t, true, false, true, true)
	segs := g.ParallelSegments()
	// sA alone can't parallelize (run length 1); sC+sD can.
	if len(segs) != 1 || len(segs[0].Members) != 2 || segs[0].Members[0] != sC {
		t.Fatalf("segments = %+v", segs)
	}
	if segs[0].Next != Sink {
		t.Fatalf("next = %v", segs[0].Next)
	}
}

func TestParallelSegmentsBranchingBlocks(t *testing.T) {
	// A read-only vertex with two out-edges cannot join a segment.
	g := New("branch")
	_ = g.AddVertex(Vertex{Service: sA, ReadOnly: true})
	_ = g.AddVertex(Vertex{Service: sB, ReadOnly: true})
	_ = g.AddEdge(Source, sA, true)
	_ = g.AddEdge(sA, sB, true)
	_ = g.AddEdge(sA, Sink, false) // alternative edge
	_ = g.AddEdge(sB, Sink, true)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if segs := g.ParallelSegments(); len(segs) != 0 {
		t.Fatalf("branching vertex joined a segment: %v", segs)
	}
}

func TestRulesSequential(t *testing.T) {
	g := chainOf(t, false, false)
	rules, err := g.Rules(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	byScope := map[flowtable.ServiceID]flowtable.Rule{}
	for _, r := range rules {
		byScope[r.Scope] = r
	}
	if d, _ := byScope[flowtable.Port(0)].Default(); d != flowtable.Forward(sA) {
		t.Fatalf("ingress rule: %v", d)
	}
	if d, _ := byScope[sA].Default(); d != flowtable.Forward(sB) {
		t.Fatalf("sA rule: %v", d)
	}
	if d, _ := byScope[sB].Default(); d != flowtable.Out(1) {
		t.Fatalf("sB rule: %v", d)
	}
}

func TestRulesParallel(t *testing.T) {
	g := chainOf(t, true, true)
	rules, err := g.Rules(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	var entry *flowtable.Rule
	exits := 0
	for i := range rules {
		r := rules[i]
		if r.Scope == flowtable.Port(0) {
			entry = &rules[i]
		}
		if r.Scope == sA || r.Scope == sB {
			if d, _ := r.Default(); d != flowtable.Out(1) {
				t.Fatalf("member exit rule: %v", d)
			}
			exits++
		}
	}
	if entry == nil || !entry.Parallel || len(entry.Actions) != 2 {
		t.Fatalf("entry rule = %+v", entry)
	}
	if exits != 2 {
		t.Fatalf("exits = %d", exits)
	}
}

func TestRulesAlternativesListed(t *testing.T) {
	// sA has default to sB and an alternative straight to sink.
	g := New("alt")
	_ = g.AddVertex(Vertex{Service: sA})
	_ = g.AddVertex(Vertex{Service: sB})
	_ = g.AddEdge(Source, sA, true)
	_ = g.AddEdge(sA, sB, true)
	_ = g.AddEdge(sA, Sink, false)
	_ = g.AddEdge(sB, Sink, true)
	rules, err := g.Rules(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rules {
		if r.Scope == sA {
			if len(r.Actions) != 2 {
				t.Fatalf("sA actions = %v", r.Actions)
			}
			if d, _ := r.Default(); d != flowtable.Forward(sB) {
				t.Fatalf("default must be first: %v", r.Actions)
			}
			if !r.Allows(flowtable.Out(1)) {
				t.Fatal("alternative missing")
			}
		}
	}
}

func TestRulesDeterministic(t *testing.T) {
	g := chainOf(t, true, true, false)
	a, _ := g.Rules(0, 1)
	for i := 0; i < 10; i++ {
		b, _ := g.Rules(0, 1)
		if len(a) != len(b) {
			t.Fatal("rule count varies")
		}
		for j := range a {
			if a[j].Scope != b[j].Scope || a[j].Parallel != b[j].Parallel ||
				len(a[j].Actions) != len(b[j].Actions) {
				t.Fatalf("rules vary across compilations: %v vs %v", a[j], b[j])
			}
		}
	}
}

func TestStringRendering(t *testing.T) {
	g := chainOf(t, false)
	if s := g.String(); s == "" {
		t.Fatal("empty String()")
	}
	if _, ok := g.Vertex(sA); !ok {
		t.Fatal("vertex lookup failed")
	}
	if vs := g.Vertices(); len(vs) != 1 {
		t.Fatalf("vertices = %v", vs)
	}
	if es := g.In(Sink); len(es) != 1 {
		t.Fatalf("In(Sink) = %v", es)
	}
}
