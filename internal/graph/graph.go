// Package graph implements SDNFV service graphs (§3.2): a network
// application is a DAG whose vertices are abstract services and whose edges
// are the possible next hops an NF may select. One outgoing edge per vertex
// is marked as the default path.
//
// The package also implements the parallel-segment detection of §3.3: a run
// of adjacent read-only services on the default path whose packets all flow
// to the same successor can safely share one packet copy.
package graph

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"sdnfv/internal/flowtable"
)

// Source and Sink are the reserved pseudo-vertices bounding every graph.
// Source represents packet ingress (a NIC port) and Sink packet egress.
const (
	Source flowtable.ServiceID = 0
	Sink   flowtable.ServiceID = 0x7fff
)

// Vertex describes one service in the graph.
type Vertex struct {
	Service flowtable.ServiceID
	Name    string
	// ReadOnly mirrors the NF's advertisement at registration (§3.3); the
	// graph uses it to find parallelizable segments.
	ReadOnly bool
}

// Edge is a directed logical link between services.
type Edge struct {
	From, To flowtable.ServiceID
	// Default marks this edge as the vertex's default path.
	Default bool
}

// Graph is a service graph under construction or validated. The zero value
// is an empty graph ready for AddVertex/AddEdge.
type Graph struct {
	Name     string
	vertices map[flowtable.ServiceID]Vertex
	out      map[flowtable.ServiceID][]Edge
	in       map[flowtable.ServiceID][]Edge
}

// New returns an empty named service graph containing only Source and Sink.
func New(name string) *Graph {
	g := &Graph{
		Name:     name,
		vertices: make(map[flowtable.ServiceID]Vertex),
		out:      make(map[flowtable.ServiceID][]Edge),
		in:       make(map[flowtable.ServiceID][]Edge),
	}
	g.vertices[Source] = Vertex{Service: Source, Name: "source"}
	g.vertices[Sink] = Vertex{Service: Sink, Name: "sink"}
	return g
}

// Errors returned during construction and validation.
var (
	ErrDuplicateVertex = errors.New("graph: duplicate vertex")
	ErrUnknownVertex   = errors.New("graph: unknown vertex")
	ErrDuplicateEdge   = errors.New("graph: duplicate edge")
	ErrCycle           = errors.New("graph: cycle detected")
	ErrNoDefault       = errors.New("graph: vertex lacks a default edge")
	ErrMultipleDefault = errors.New("graph: vertex has multiple default edges")
	ErrUnreachable     = errors.New("graph: vertex unreachable from source")
	ErrDeadEnd         = errors.New("graph: default path does not reach sink")
)

// AddVertex registers a service vertex.
func (g *Graph) AddVertex(v Vertex) error {
	if v.Service == Source || v.Service == Sink {
		return fmt.Errorf("%w: reserved id %s", ErrDuplicateVertex, v.Service)
	}
	if _, ok := g.vertices[v.Service]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicateVertex, v.Service)
	}
	g.vertices[v.Service] = v
	return nil
}

// AddEdge adds a directed edge. Set def on exactly one outgoing edge per
// vertex.
func (g *Graph) AddEdge(from, to flowtable.ServiceID, def bool) error {
	if _, ok := g.vertices[from]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownVertex, from)
	}
	if _, ok := g.vertices[to]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownVertex, to)
	}
	for _, e := range g.out[from] {
		if e.To == to {
			return fmt.Errorf("%w: %s->%s", ErrDuplicateEdge, from, to)
		}
	}
	e := Edge{From: from, To: to, Default: def}
	g.out[from] = append(g.out[from], e)
	g.in[to] = append(g.in[to], e)
	return nil
}

// Chain is a convenience constructor: it builds a linear service chain
// source -> services[0] -> ... -> services[n-1] -> sink with every edge
// marked default.
func Chain(name string, services ...Vertex) (*Graph, error) {
	g := New(name)
	prev := Source
	for _, v := range services {
		if err := g.AddVertex(v); err != nil {
			return nil, err
		}
		if err := g.AddEdge(prev, v.Service, true); err != nil {
			return nil, err
		}
		prev = v.Service
	}
	if err := g.AddEdge(prev, Sink, true); err != nil {
		return nil, err
	}
	return g, nil
}

// Vertex returns the vertex for id.
func (g *Graph) Vertex(id flowtable.ServiceID) (Vertex, bool) {
	v, ok := g.vertices[id]
	return v, ok
}

// Vertices returns all service vertices (excluding Source/Sink), sorted.
func (g *Graph) Vertices() []Vertex {
	out := make([]Vertex, 0, len(g.vertices))
	for id, v := range g.vertices {
		if id == Source || id == Sink {
			continue
		}
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Service < out[j].Service })
	return out
}

// Out returns the outgoing edges of id with the default edge first.
func (g *Graph) Out(id flowtable.ServiceID) []Edge {
	es := append([]Edge(nil), g.out[id]...)
	sort.SliceStable(es, func(i, j int) bool { return es[i].Default && !es[j].Default })
	return es
}

// In returns the incoming edges of id.
func (g *Graph) In(id flowtable.ServiceID) []Edge {
	return append([]Edge(nil), g.in[id]...)
}

// DefaultNext returns the default successor of id.
func (g *Graph) DefaultNext(id flowtable.ServiceID) (flowtable.ServiceID, bool) {
	for _, e := range g.out[id] {
		if e.Default {
			return e.To, true
		}
	}
	return 0, false
}

// Validate checks the structural invariants: the graph is a DAG, every
// vertex except Sink has exactly one default edge, every vertex is
// reachable from Source, and following default edges from any vertex
// reaches Sink.
func (g *Graph) Validate() error {
	// Exactly one default edge per non-sink vertex.
	for id := range g.vertices {
		if id == Sink {
			continue
		}
		n := 0
		for _, e := range g.out[id] {
			if e.Default {
				n++
			}
		}
		switch {
		case n == 0:
			return fmt.Errorf("%w: %s", ErrNoDefault, id)
		case n > 1:
			return fmt.Errorf("%w: %s", ErrMultipleDefault, id)
		}
	}
	// Acyclicity via DFS coloring.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[flowtable.ServiceID]int, len(g.vertices))
	var visit func(id flowtable.ServiceID) error
	visit = func(id flowtable.ServiceID) error {
		color[id] = gray
		for _, e := range g.out[id] {
			switch color[e.To] {
			case gray:
				return fmt.Errorf("%w: through %s->%s", ErrCycle, e.From, e.To)
			case white:
				if err := visit(e.To); err != nil {
					return err
				}
			}
		}
		color[id] = black
		return nil
	}
	for id := range g.vertices {
		if color[id] == white {
			if err := visit(id); err != nil {
				return err
			}
		}
	}
	// Reachability from Source.
	reach := map[flowtable.ServiceID]bool{Source: true}
	queue := []flowtable.ServiceID{Source}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		for _, e := range g.out[id] {
			if !reach[e.To] {
				reach[e.To] = true
				queue = append(queue, e.To)
			}
		}
	}
	for id := range g.vertices {
		if !reach[id] {
			return fmt.Errorf("%w: %s", ErrUnreachable, id)
		}
	}
	// Default path from every vertex reaches Sink (guaranteed by DAG +
	// one default each, but verify for defense in depth).
	for id := range g.vertices {
		cur := id
		for cur != Sink {
			next, ok := g.DefaultNext(cur)
			if !ok {
				return fmt.Errorf("%w: from %s stuck at %s", ErrDeadEnd, id, cur)
			}
			cur = next
		}
	}
	return nil
}

// Segment is a maximal run of services eligible for parallel dispatch: all
// members are read-only, each member's default edge leads to the next, and
// the run has a single exit. The NF Manager fans one shared packet copy out
// to every member (§3.3, §4.2).
type Segment struct {
	Members []flowtable.ServiceID
	// Next is the service (or Sink) packets proceed to after the segment.
	Next flowtable.ServiceID
}

// ParallelSegments finds maximal parallelizable runs along the default
// path from Source to Sink. A run extends while the current service is
// read-only, has exactly one outgoing edge (its default), and its successor
// (also read-only, single-in, single-out) receives packets only from the
// run — the paper's example: all packets leaving DDoS go to IDS, both are
// read-only, so both may analyze the same packet simultaneously.
func (g *Graph) ParallelSegments() []Segment {
	var segs []Segment
	cur, _ := g.DefaultNext(Source)
	for cur != Sink && cur != 0 {
		v := g.vertices[cur]
		next, _ := g.DefaultNext(cur)
		if v.ReadOnly && len(g.out[cur]) == 1 {
			members := []flowtable.ServiceID{cur}
			probe := next
			for probe != Sink {
				pv := g.vertices[probe]
				if !pv.ReadOnly || len(g.out[probe]) != 1 || len(g.in[probe]) != 1 {
					break
				}
				members = append(members, probe)
				probe, _ = g.DefaultNext(probe)
			}
			if len(members) > 1 {
				segs = append(segs, Segment{Members: members, Next: probe})
				cur = probe
				continue
			}
		}
		cur = next
	}
	return segs
}

// DefaultPath returns the service sequence on the default path from Source
// to Sink, excluding the endpoints.
func (g *Graph) DefaultPath() []flowtable.ServiceID {
	var path []flowtable.ServiceID
	cur, ok := g.DefaultNext(Source)
	for ok && cur != Sink {
		path = append(path, cur)
		cur, ok = g.DefaultNext(cur)
	}
	return path
}

// Rules compiles the graph into flow-table rules for a single host hosting
// every service, with ingress on inPort and egress on outPort. The rule at
// each scope lists the default action first followed by the alternative
// next hops, exactly as §3.3 "NF Manager Flow Tables" describes.
//
// A parallel segment collapses into one parallel-flagged fan-out rule at
// each predecessor of its head, but only when every such predecessor has
// the segment as its sole next hop — a rule cannot mix a parallel fan-out
// with alternative actions. Segment members get exit rules pointing at the
// segment's successor; the manager's join logic moves the packet on once.
func (g *Graph) Rules(inPort, outPort int) ([]flowtable.Rule, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	segs := g.ParallelSegments()
	memberOf := map[flowtable.ServiceID]*Segment{}
	headOf := map[flowtable.ServiceID]*Segment{}
	for i := range segs {
		seg := &segs[i]
		// Usable only if every predecessor of the head enters by a pure
		// default (single out-edge).
		head := seg.Members[0]
		usable := true
		for _, e := range g.in[head] {
			if len(g.out[e.From]) != 1 {
				usable = false
				break
			}
		}
		if !usable {
			continue
		}
		headOf[head] = seg
		for _, m := range seg.Members {
			memberOf[m] = seg
		}
	}

	toAction := func(to flowtable.ServiceID) flowtable.Action {
		if to == Sink {
			return flowtable.Out(outPort)
		}
		return flowtable.Forward(to)
	}
	scopeFor := func(id flowtable.ServiceID) flowtable.ServiceID {
		if id == Source {
			return flowtable.Port(inPort)
		}
		return id
	}

	// Deterministic vertex order: Source, then services ascending.
	ids := []flowtable.ServiceID{Source}
	for _, v := range g.Vertices() {
		ids = append(ids, v.Service)
	}

	var rules []flowtable.Rule
	for _, id := range ids {
		if memberOf[id] != nil {
			continue // members get exit rules below
		}
		edges := g.Out(id)
		if len(edges) == 0 {
			continue
		}
		var acts []flowtable.Action
		parallel := false
		if seg, ok := headOf[edges[0].To]; ok && len(edges) == 1 {
			for _, m := range seg.Members {
				acts = append(acts, flowtable.Forward(m))
			}
			parallel = true
		} else {
			for _, e := range edges {
				acts = append(acts, toAction(e.To))
			}
		}
		rules = append(rules, flowtable.Rule{
			Scope:    scopeFor(id),
			Match:    flowtable.MatchAll,
			Actions:  acts,
			Parallel: parallel,
		})
	}
	for i := range segs {
		seg := &segs[i]
		if headOf[seg.Members[0]] != seg {
			continue // segment was not usable
		}
		for _, m := range seg.Members {
			rules = append(rules, flowtable.Rule{
				Scope:   m,
				Match:   flowtable.MatchAll,
				Actions: []flowtable.Action{toAction(seg.Next)},
			})
		}
	}
	return rules, nil
}

// String renders the graph in a compact adjacency form.
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %q:\n", g.Name)
	ids := make([]flowtable.ServiceID, 0, len(g.vertices))
	for id := range g.vertices {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		v := g.vertices[id]
		name := v.Name
		if name == "" {
			name = id.String()
		}
		for _, e := range g.Out(id) {
			marker := ""
			if e.Default {
				marker = " [default]"
			}
			tv := g.vertices[e.To]
			tn := tv.Name
			if tn == "" {
				tn = e.To.String()
			}
			fmt.Fprintf(&b, "  %s -> %s%s\n", name, tn, marker)
		}
	}
	return b.String()
}
