package control

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"sdnfv/internal/flowtable"
	"sdnfv/internal/openflow"
	"sdnfv/internal/packet"
)

// Client is the wire Southbound backend: it speaks the openflow
// package's protocol to a remote controller over one control channel
// and keeps any number of requests in flight at once, correlating
// replies by transaction id (XID). A PacketIn's answer is the stream of
// FlowMods sharing its XID terminated by a Barrier reply; Stats and
// Features are single-frame request/response pairs.
//
// This is what makes the southbound path pipelined: the Flow Controller
// thread hands ResolveBatch a whole burst of misses and the client
// writes every PacketIn back to back before the first answer returns,
// instead of blocking one controller round trip per miss.
//
// Client is safe for concurrent use.
type Client struct {
	raw net.Conn
	oc  *openflow.Conn

	sendMu sync.Mutex
	xid    atomic.Uint32

	mu       sync.Mutex
	pending  map[uint32]*pendingOp
	closeErr error

	rejected atomic.Uint64
}

type opKind uint8

const (
	opResolve opKind = iota
	opStats
	opFeatures
)

type pendingOp struct {
	kind  opKind
	rules []flowtable.Rule
	done  chan opResult
}

type opResult struct {
	rules    []flowtable.Rule
	stats    Stats
	features Features
	err      error
}

// Dial connects to a controller's southbound listener as the anonymous
// datapath and performs the HELLO exchange asynchronously.
func Dial(ctx context.Context, addr string) (*Client, error) {
	return DialAs(ctx, addr, 0)
}

// DialAs connects to a controller's southbound listener identifying the
// local NF host as datapath dp; the controller registers the session
// under that id and scopes resolutions and FLOW_MODs to it.
func DialAs(ctx context.Context, addr string, dp DatapathID) (*Client, error) {
	var d net.Dialer
	raw, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClientAs(raw, dp)
}

// NewClient wraps an established control-channel connection as the
// anonymous datapath. It sends the client HELLO and starts the reader;
// the peer's HELLO is consumed asynchronously.
func NewClient(raw net.Conn) (*Client, error) {
	return NewClientAs(raw, 0)
}

// NewClientAs wraps an established control-channel connection,
// announcing dp as the local datapath identity in the client HELLO.
func NewClientAs(raw net.Conn, dp DatapathID) (*Client, error) {
	c := &Client{
		raw:     raw,
		oc:      openflow.NewConn(raw),
		pending: make(map[uint32]*pendingOp),
	}
	if err := c.send(openflow.Hello{DatapathID: uint64(dp)}, c.nextXID()); err != nil {
		return nil, err
	}
	go c.readLoop()
	return c, nil
}

// Close tears down the channel; in-flight requests fail with ErrStopped.
func (c *Client) Close() error {
	c.fail(ErrStopped)
	return c.raw.Close()
}

// Rejected returns the number of asynchronous northbound refusals
// (ErrorMsg frames answering fire-and-forget NF messages).
func (c *Client) Rejected() uint64 { return c.rejected.Load() }

func (c *Client) nextXID() uint32 { return c.xid.Add(1) }

func (c *Client) send(msg openflow.Message, xid uint32) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	return c.oc.SendXID(msg, xid)
}

// register files a pending operation under a fresh XID. It must happen
// before the request frame is written, or a fast reply could race the
// bookkeeping.
func (c *Client) register(kind opKind) (uint32, *pendingOp, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closeErr != nil {
		return 0, nil, c.closeErr
	}
	xid := c.nextXID()
	op := &pendingOp{kind: kind, done: make(chan opResult, 1)}
	c.pending[xid] = op
	return xid, op, nil
}

func (c *Client) unregister(xid uint32) {
	c.mu.Lock()
	delete(c.pending, xid)
	c.mu.Unlock()
}

// complete resolves the pending operation for xid, if any.
func (c *Client) complete(xid uint32, res opResult) bool {
	c.mu.Lock()
	op, ok := c.pending[xid]
	if ok {
		delete(c.pending, xid)
	}
	c.mu.Unlock()
	if !ok {
		return false
	}
	if res.err == nil && op.kind == opResolve {
		res.rules = op.rules
	}
	op.done <- res
	return true
}

// fail terminates every in-flight operation and refuses new ones.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.closeErr == nil {
		c.closeErr = fmt.Errorf("%w: %v", ErrStopped, err)
	}
	failed := c.pending
	c.pending = make(map[uint32]*pendingOp)
	closeErr := c.closeErr
	c.mu.Unlock()
	for _, op := range failed {
		op.done <- opResult{err: closeErr}
	}
}

func (c *Client) readLoop() {
	for {
		msg, hdr, err := c.oc.Recv()
		if err != nil {
			c.fail(err)
			return
		}
		switch m := msg.(type) {
		case openflow.Hello:
			// Peer greeting; nothing to do.
		case openflow.Echo:
			if !m.Reply {
				_ = c.send(openflow.Echo{Reply: true, Data: m.Data}, hdr.XID)
			}
		case openflow.FlowMod:
			c.mu.Lock()
			if op, ok := c.pending[hdr.XID]; ok && op.kind == opResolve {
				op.rules = append(op.rules, m.Rule)
			}
			c.mu.Unlock()
		case openflow.Barrier:
			if m.Reply {
				c.complete(hdr.XID, opResult{})
			}
		case openflow.ErrorMsg:
			if !c.complete(hdr.XID, opResult{err: mapWireError(m)}) &&
				(m.Code == openflow.ErrCodeRejected || m.Code == openflow.ErrCodeInvalid) {
				// Asynchronous refusal of a fire-and-forget NF message.
				c.rejected.Add(1)
			}
		case openflow.StatsReply:
			c.complete(hdr.XID, opResult{stats: replyToStats(m)})
		case openflow.FeaturesReply:
			c.complete(hdr.XID, opResult{features: Features{
				DatapathID: m.DatapathID,
				NumPorts:   int(m.NumPorts),
				Services:   m.Services,
			}})
		}
	}
}

// mapWireError lifts a protocol error frame back onto the sentinel
// taxonomy so errors.Is matches across backends.
func mapWireError(e openflow.ErrorMsg) error {
	switch e.Code {
	case openflow.ErrCodeQueueFull:
		return fmt.Errorf("%w (remote: %s)", ErrQueueFull, e.Text)
	case openflow.ErrCodeNoCompiler:
		return fmt.Errorf("%w (remote: %s)", ErrNoCompiler, e.Text)
	case openflow.ErrCodeStopped:
		return fmt.Errorf("%w (remote: %s)", ErrStopped, e.Text)
	case openflow.ErrCodeRejected:
		return fmt.Errorf("%w (remote: %s)", ErrRejected, e.Text)
	case openflow.ErrCodeInvalid:
		return fmt.Errorf("%w (remote: %s)", ErrInvalidMessage, e.Text)
	default:
		return fmt.Errorf("%w %d: %s", ErrRemote, e.Code, e.Text)
	}
}

// replyToStats undoes the StatsReply field mapping the controller's
// serveConn applies (see controller.Controller.serveConn): the reply
// frame's host-counter slots carry the controller's control-plane
// counters on this channel.
func replyToStats(r openflow.StatsReply) Stats {
	return Stats{
		Requests: r.RxPackets,
		FlowMods: r.TxPackets,
		Rejected: r.Drops,
		NFMsgs:   r.Misses,
	}
}

// start registers and writes one PacketIn without waiting for the
// answer; the returned operation completes when the Barrier or an
// ErrorMsg for its XID arrives.
func (c *Client) start(scope flowtable.ServiceID, key packet.FlowKey) (uint32, *pendingOp, error) {
	xid, op, err := c.register(opResolve)
	if err != nil {
		return 0, nil, err
	}
	if err := c.send(openflow.PacketIn{Scope: scope, Key: key}, xid); err != nil {
		c.unregister(xid)
		return 0, nil, fmt.Errorf("%w: %v", ErrStopped, err)
	}
	return xid, op, nil
}

func (c *Client) wait(ctx context.Context, xid uint32, op *pendingOp) opResult {
	select {
	case res := <-op.done:
		return res
	case <-ctx.Done():
		c.unregister(xid)
		return opResult{err: ctx.Err()}
	}
}

// Resolve implements Southbound.
func (c *Client) Resolve(ctx context.Context, scope flowtable.ServiceID, key packet.FlowKey) ([]flowtable.Rule, error) {
	xid, op, err := c.start(scope, key)
	if err != nil {
		return nil, err
	}
	res := c.wait(ctx, xid, op)
	return res.rules, res.err
}

// ResolveBatch implements Southbound: every PacketIn is written before
// the first answer is awaited, so the whole batch shares one round trip
// plus the controller's (possibly overlapped) service times.
func (c *Client) ResolveBatch(ctx context.Context, reqs []ResolveRequest, out []ResolveResult) {
	xids := make([]uint32, len(reqs))
	ops := make([]*pendingOp, len(reqs))
	for i, r := range reqs {
		xid, op, err := c.start(r.Scope, r.Key)
		if err != nil {
			out[i] = ResolveResult{Err: err}
			continue
		}
		xids[i], ops[i] = xid, op
	}
	for i, op := range ops {
		if op == nil {
			continue
		}
		res := c.wait(ctx, xids[i], op)
		out[i] = ResolveResult{Rules: res.rules, Err: res.err}
	}
}

// SendNFMessage implements Southbound. Delivery is asynchronous: the
// message is validated, framed, and written, and any northbound refusal
// comes back later as an ErrorMsg counted in Rejected.
func (c *Client) SendNFMessage(_ context.Context, src flowtable.ServiceID, m Message) error {
	if err := m.Validate(); err != nil {
		return err
	}
	if err := c.send(openflow.NFMessage{Src: src, Msg: m.Union()}, c.nextXID()); err != nil {
		return fmt.Errorf("%w: %v", ErrStopped, err)
	}
	return nil
}

// NotifyFlowRemoved implements Southbound. Like SendNFMessage it is
// fire-and-forget: the removals are framed and written in one batch and
// no reply is awaited — eviction notices are advisory, and blocking the
// sweeper goroutine on a controller round trip would stall eviction.
func (c *Client) NotifyFlowRemoved(_ context.Context, removals []FlowRemoved) error {
	if len(removals) == 0 {
		return nil
	}
	var m openflow.FlowRemoved
	m.Removals = make([]openflow.FlowRemovedEntry, len(removals))
	for i, r := range removals {
		m.Removals[i] = openflow.FlowRemovedEntry{
			Scope:  r.Scope,
			Match:  r.Match,
			RuleID: r.RuleID,
			Reason: uint8(r.Reason),
		}
	}
	if err := c.send(m, c.nextXID()); err != nil {
		return fmt.Errorf("%w: %v", ErrStopped, err)
	}
	return nil
}

// Stats implements Southbound with a StatsRequest round trip.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	xid, op, err := c.register(opStats)
	if err != nil {
		return Stats{}, err
	}
	if err := c.send(openflow.StatsRequest{}, xid); err != nil {
		c.unregister(xid)
		return Stats{}, fmt.Errorf("%w: %v", ErrStopped, err)
	}
	res := c.wait(ctx, xid, op)
	return res.stats, res.err
}

// Features implements Southbound with a FeaturesRequest round trip.
func (c *Client) Features(ctx context.Context) (Features, error) {
	xid, op, err := c.register(opFeatures)
	if err != nil {
		return Features{}, err
	}
	if err := c.send(openflow.FeaturesRequest{}, xid); err != nil {
		c.unregister(xid)
		return Features{}, fmt.Errorf("%w: %v", ErrStopped, err)
	}
	res := c.wait(ctx, xid, op)
	return res.features, res.err
}

var _ Southbound = (*Client)(nil)
