// Package control is the single typed, asynchronous API for all
// cross-tier communication in the SDNFV control hierarchy (Fig. 2):
//
//	NF  →  NF Manager  →  SDN Controller  →  SDNFV Application
//
// It replaces the ad-hoc function hooks the tiers used to be wired with
// (dataplane miss/message callbacks, controller compiler setters) by two
// interfaces and one message taxonomy:
//
//   - Southbound is what an NF Manager sees of its SDN controller: flow
//     resolution (single and pipelined batch), cross-layer message
//     forwarding, and counter/feature introspection. Two interchangeable
//     backends exist: the in-process controller.Controller implements
//     Southbound directly, and Client speaks the openflow wire protocol
//     with pipelined XID-correlated PacketIns.
//
//   - Northbound is what the SDN controller sees of the SDNFV
//     Application: rule compilation for new flows, validation and
//     recording of cross-layer messages, and the policy key/value store.
//     app.App implements it.
//
// All requests carry a context.Context for deadlines/cancellation and
// fail with the sentinel error taxonomy below instead of stringly-typed
// errors, so callers can branch with errors.Is across backends.
package control

import (
	"context"
	"errors"
	"fmt"

	"sdnfv/internal/flowtable"
	"sdnfv/internal/packet"
)

// Sentinel errors shared by every control-plane backend. Wire backends
// map protocol error codes back onto these values, so errors.Is works
// identically for in-process and remote controllers.
var (
	// ErrQueueFull reports a request refused at admission because the
	// controller's bounded event queue was full (the saturation regime
	// of Fig. 1). The request was never counted in Stats.Requests.
	ErrQueueFull = errors.New("control: request queue full")
	// ErrStopped reports an endpoint that has shut down (or a channel
	// that closed) before the request completed.
	ErrStopped = errors.New("control: endpoint stopped")
	// ErrNoCompiler reports a controller with no northbound tier
	// attached: there is nothing to compile flow rules.
	ErrNoCompiler = errors.New("control: no rule compiler installed")
	// ErrRejected reports a cross-layer message refused by northbound
	// policy validation (§3.4: untrusted NFs may only steer flows along
	// edges of the original service graph).
	ErrRejected = errors.New("control: message rejected by policy")
	// ErrInvalidMessage reports a cross-layer message that failed its
	// per-variant structural validation before any policy was consulted.
	ErrInvalidMessage = errors.New("control: invalid message")
	// ErrRemote reports a protocol error frame whose code maps onto no
	// other sentinel — a backend newer (or buggier) than this client.
	// Wrapping it keeps even unknown failures classifiable by errors.Is.
	ErrRemote = errors.New("control: remote error")
)

// DatapathID identifies one NF host (datapath) within the controller's
// domain. The paper's architecture (Fig. 2) has one SDN controller
// managing a *set* of NF hosts; the datapath id is how the control plane
// tells their flow tables apart: southbound sessions are registered under
// it and every northbound request carries it, so compiled rules and
// policy verdicts are scoped to the requesting host. Zero is the
// anonymous datapath used by single-host deployments that never name
// themselves.
type DatapathID uint64

// String renders the id in the conventional OpenFlow hex form.
func (d DatapathID) String() string { return fmt.Sprintf("dp:%#x", uint64(d)) }

// ResolveRequest asks the controller for the rules governing a new flow
// first seen at Scope.
type ResolveRequest struct {
	Scope flowtable.ServiceID
	Key   packet.FlowKey
}

// ResolveResult is the per-request outcome of a ResolveBatch.
type ResolveResult struct {
	Rules []flowtable.Rule
	Err   error
}

// Stats is a snapshot of a controller's southbound activity. The
// counters partition cleanly so experiment arithmetic stays meaningful:
//
//   - Requests counts resolve requests admitted to the event queue. A
//     request refused at admission is counted in Rejected only, never
//     in Requests, so offered load = Requests + Rejected and the
//     admitted/offered acceptance ratio is Requests/(Requests+Rejected).
//   - Rejected counts resolve requests refused with ErrQueueFull.
//   - FlowMods counts rules compiled and shipped in response to
//     admitted requests (≥ Requests when graphs compile to multi-rule
//     chains; 0 for failed compilations).
//   - NFMsgs counts cross-layer messages routed to the northbound tier,
//     whether or not policy validation accepted them.
type Stats struct {
	Requests uint64
	Rejected uint64
	FlowMods uint64
	NFMsgs   uint64
}

// Features advertises a control-channel peer's identity: its datapath
// id, NIC port count, and hosted services (NF instances registered with
// the manager are exposed as logical ports, §4.1).
type Features struct {
	DatapathID uint64
	NumPorts   int
	Services   []flowtable.ServiceID
}

// Southbound is the NF Manager's typed, asynchronous view of its SDN
// controller. Implementations must be safe for concurrent use: the Flow
// Controller thread pipelines batches while the manager loop forwards
// messages.
// FlowRemovedReason says which timeout evicted a flow rule.
type FlowRemovedReason uint8

const (
	// RemovedIdleTimeout: no packet hit the rule within its idle window.
	RemovedIdleTimeout FlowRemovedReason = iota
	// RemovedHardTimeout: the rule outlived its hard lifetime.
	RemovedHardTimeout
)

// String renders the reason as its telemetry label.
func (r FlowRemovedReason) String() string {
	if r == RemovedHardTimeout {
		return "hard"
	}
	return "idle"
}

// FlowRemoved describes one flow rule a datapath evicted by timeout —
// the OpenFlow flow-removed notification, batched per sweep. The tuple
// (Scope, Match) identifies which state to drop; RuleID is the
// datapath-local rule identity for logging and correlation.
type FlowRemoved struct {
	Scope  flowtable.ServiceID
	Match  flowtable.Match
	RuleID uint64
	Reason FlowRemovedReason
}

type Southbound interface {
	// Resolve requests the rules for one new flow and blocks until the
	// controller answers, ctx expires, or the endpoint stops.
	Resolve(ctx context.Context, scope flowtable.ServiceID, key packet.FlowKey) ([]flowtable.Rule, error)
	// ResolveBatch resolves reqs with all requests in flight at once
	// (pipelined over the wire; fanned across workers in process) and
	// writes one ResolveResult per request into out, which must be at
	// least len(reqs) long. It returns when every slot is filled.
	ResolveBatch(ctx context.Context, reqs []ResolveRequest, out []ResolveResult)
	// SendNFMessage forwards a validated cross-layer message upstream.
	// In-process backends report northbound rejection synchronously via
	// ErrRejected; wire backends deliver asynchronously and may return
	// nil before the verdict is known.
	SendNFMessage(ctx context.Context, src flowtable.ServiceID, m Message) error
	// NotifyFlowRemoved reports a batch of rules the datapath evicted by
	// timeout (OpenFlow flow-removed), so the controller and application
	// tiers can drop their side of the per-flow state. Notifications are
	// fire-and-forget: wire backends may return nil before delivery.
	NotifyFlowRemoved(ctx context.Context, removals []FlowRemoved) error
	// Stats fetches the controller's counter snapshot.
	Stats(ctx context.Context) (Stats, error)
	// Features fetches the peer's identity.
	Features(ctx context.Context) (Features, error)
}

// Northbound is the SDN controller's typed view of the SDNFV
// Application tier: the service-graph registry compiled into rules, the
// cross-layer message validator, and the policy key/value store fed by
// AppData messages. Every request names the datapath (NF host) it
// concerns, so a multi-host application can compile per-host rule sets
// and attribute messages to the emitting host; single-host applications
// may ignore it.
type Northbound interface {
	// CompileFlow produces the rules to install on datapath dp for a new
	// flow first seen at scope, compiled from the application's service
	// graphs (and, for multi-host deployments, its placement).
	CompileFlow(ctx context.Context, dp DatapathID, scope flowtable.ServiceID, key packet.FlowKey) ([]flowtable.Rule, error)
	// HandleNFMessage validates and records a cross-layer message
	// emitted by an NF of service src on datapath dp. A policy refusal
	// is reported as an error wrapping ErrRejected.
	HandleNFMessage(ctx context.Context, dp DatapathID, src flowtable.ServiceID, m Message) error
	// HandleFlowRemoved records a batch of timeout evictions reported by
	// datapath dp, letting the application release per-flow bookkeeping.
	HandleFlowRemoved(ctx context.Context, dp DatapathID, removals []FlowRemoved) error
	// Policy returns the value stored for key by AppData messages.
	Policy(key string) (any, bool)
}

// SouthboundFuncs adapts plain functions to Southbound; handy in tests
// and simulations. Nil fields degrade gracefully: Resolve reports
// ErrNoCompiler, SendNFMessage discards, Stats/Features return zeros.
type SouthboundFuncs struct {
	ResolveFunc           func(ctx context.Context, scope flowtable.ServiceID, key packet.FlowKey) ([]flowtable.Rule, error)
	SendNFMessageFun      func(ctx context.Context, src flowtable.ServiceID, m Message) error
	NotifyFlowRemovedFunc func(ctx context.Context, removals []FlowRemoved) error
	StatsFunc             func(ctx context.Context) (Stats, error)
	FeaturesFunc          func(ctx context.Context) (Features, error)
}

// Resolve implements Southbound.
func (s SouthboundFuncs) Resolve(ctx context.Context, scope flowtable.ServiceID, key packet.FlowKey) ([]flowtable.Rule, error) {
	if s.ResolveFunc == nil {
		return nil, ErrNoCompiler
	}
	return s.ResolveFunc(ctx, scope, key)
}

// ResolveBatch implements Southbound by resolving sequentially.
func (s SouthboundFuncs) ResolveBatch(ctx context.Context, reqs []ResolveRequest, out []ResolveResult) {
	for i, r := range reqs {
		rules, err := s.Resolve(ctx, r.Scope, r.Key)
		out[i] = ResolveResult{Rules: rules, Err: err}
	}
}

// SendNFMessage implements Southbound.
func (s SouthboundFuncs) SendNFMessage(ctx context.Context, src flowtable.ServiceID, m Message) error {
	if s.SendNFMessageFun == nil {
		return nil
	}
	return s.SendNFMessageFun(ctx, src, m)
}

// NotifyFlowRemoved implements Southbound; nil func discards.
func (s SouthboundFuncs) NotifyFlowRemoved(ctx context.Context, removals []FlowRemoved) error {
	if s.NotifyFlowRemovedFunc == nil {
		return nil
	}
	return s.NotifyFlowRemovedFunc(ctx, removals)
}

// Stats implements Southbound.
func (s SouthboundFuncs) Stats(ctx context.Context) (Stats, error) {
	if s.StatsFunc == nil {
		return Stats{}, nil
	}
	return s.StatsFunc(ctx)
}

// Features implements Southbound.
func (s SouthboundFuncs) Features(ctx context.Context) (Features, error) {
	if s.FeaturesFunc == nil {
		return Features{}, nil
	}
	return s.FeaturesFunc(ctx)
}

// NorthboundFuncs adapts plain functions to Northbound. Nil fields
// degrade gracefully: CompileFlow reports ErrNoCompiler, HandleNFMessage
// accepts, Policy misses.
type NorthboundFuncs struct {
	CompileFlowFunc       func(ctx context.Context, dp DatapathID, scope flowtable.ServiceID, key packet.FlowKey) ([]flowtable.Rule, error)
	HandleNFMessageFunc   func(ctx context.Context, dp DatapathID, src flowtable.ServiceID, m Message) error
	HandleFlowRemovedFunc func(ctx context.Context, dp DatapathID, removals []FlowRemoved) error
	PolicyFunc            func(key string) (any, bool)
}

// CompileFlow implements Northbound.
func (n NorthboundFuncs) CompileFlow(ctx context.Context, dp DatapathID, scope flowtable.ServiceID, key packet.FlowKey) ([]flowtable.Rule, error) {
	if n.CompileFlowFunc == nil {
		return nil, ErrNoCompiler
	}
	return n.CompileFlowFunc(ctx, dp, scope, key)
}

// HandleNFMessage implements Northbound.
func (n NorthboundFuncs) HandleNFMessage(ctx context.Context, dp DatapathID, src flowtable.ServiceID, m Message) error {
	if n.HandleNFMessageFunc == nil {
		return nil
	}
	return n.HandleNFMessageFunc(ctx, dp, src, m)
}

// HandleFlowRemoved implements Northbound; nil func accepts.
func (n NorthboundFuncs) HandleFlowRemoved(ctx context.Context, dp DatapathID, removals []FlowRemoved) error {
	if n.HandleFlowRemovedFunc == nil {
		return nil
	}
	return n.HandleFlowRemovedFunc(ctx, dp, removals)
}

// Policy implements Northbound.
func (n NorthboundFuncs) Policy(key string) (any, bool) {
	if n.PolicyFunc == nil {
		return nil, false
	}
	return n.PolicyFunc(key)
}

var (
	_ Southbound = SouthboundFuncs{}
	_ Northbound = NorthboundFuncs{}
)
