package control

import (
	"fmt"

	"sdnfv/internal/flowtable"
	"sdnfv/internal/graph"
	"sdnfv/internal/nf"
)

// Message is a typed cross-layer control message (§3.4). The four
// variants — SkipMe, RequestMe, ChangeDefault, AppData — subsume the
// legacy nf.Message field-union: each carries only the fields its kind
// defines and validates them structurally before any tier acts on it.
//
// NFs keep emitting the compact nf.Message record through their §4.3
// library context; the NF Manager lifts it into a typed Message with
// FromUnion at the control boundary, and Union lowers a typed Message
// back to the record for wire encoding.
type Message interface {
	// Kind returns the legacy discriminator for wire encoding and logs.
	Kind() nf.MsgKind
	// Validate checks the variant's structural invariants. Violations
	// are reported as errors wrapping ErrInvalidMessage.
	Validate() error
	// Union lowers the message to the legacy wire record.
	Union() nf.Message
	// String renders the message for logs.
	String() string
}

// validService checks that s names a plain NF service: not the zero
// value (which doubles as the graph Source), not the graph Sink, and
// not a NIC-port encoding.
func validService(field string, s flowtable.ServiceID) error {
	switch {
	case s == graph.Source:
		return fmt.Errorf("%w: %s must name a service, got source/zero", ErrInvalidMessage, field)
	case s == graph.Sink:
		return fmt.Errorf("%w: %s must name a service, got sink", ErrInvalidMessage, field)
	case s.IsPort():
		return fmt.Errorf("%w: %s must name a service, got %s", ErrInvalidMessage, field, s)
	}
	return nil
}

// SkipMe asks that NFs whose default edge leads to Service bypass it
// for the flows matching Flows: their default becomes Service's own
// default action.
type SkipMe struct {
	Flows   flowtable.Match
	Service flowtable.ServiceID
}

// NewSkipMe builds a validated SkipMe.
func NewSkipMe(flows flowtable.Match, service flowtable.ServiceID) (SkipMe, error) {
	m := SkipMe{Flows: flows, Service: service}
	return m, m.Validate()
}

// Kind implements Message.
func (SkipMe) Kind() nf.MsgKind { return nf.MsgSkipMe }

// Validate implements Message.
func (m SkipMe) Validate() error { return validService("SkipMe.Service", m.Service) }

// Union implements Message.
func (m SkipMe) Union() nf.Message {
	return nf.Message{Kind: nf.MsgSkipMe, Flows: m.Flows, S: m.Service}
}

// String implements Message.
func (m SkipMe) String() string { return fmt.Sprintf("SkipMe(%s, %s)", m.Flows, m.Service) }

// RequestMe asks that all nodes with an edge to Service make it their
// default for the flows matching Flows.
type RequestMe struct {
	Flows   flowtable.Match
	Service flowtable.ServiceID
}

// NewRequestMe builds a validated RequestMe.
func NewRequestMe(flows flowtable.Match, service flowtable.ServiceID) (RequestMe, error) {
	m := RequestMe{Flows: flows, Service: service}
	return m, m.Validate()
}

// Kind implements Message.
func (RequestMe) Kind() nf.MsgKind { return nf.MsgRequestMe }

// Validate implements Message.
func (m RequestMe) Validate() error { return validService("RequestMe.Service", m.Service) }

// Union implements Message.
func (m RequestMe) Union() nf.Message {
	return nf.Message{Kind: nf.MsgRequestMe, Flows: m.Flows, S: m.Service}
}

// String implements Message.
func (m RequestMe) String() string { return fmt.Sprintf("RequestMe(%s, %s)", m.Flows, m.Service) }

// ChangeDefault sets the default rule for flows matching Flows at
// Service to Target. Target may be another service or a port-encoded
// egress link (Fig. 8's reroute case).
type ChangeDefault struct {
	Flows   flowtable.Match
	Service flowtable.ServiceID
	Target  flowtable.ServiceID
}

// NewChangeDefault builds a validated ChangeDefault.
func NewChangeDefault(flows flowtable.Match, service, target flowtable.ServiceID) (ChangeDefault, error) {
	m := ChangeDefault{Flows: flows, Service: service, Target: target}
	return m, m.Validate()
}

// Kind implements Message.
func (ChangeDefault) Kind() nf.MsgKind { return nf.MsgChangeDefault }

// Validate implements Message.
func (m ChangeDefault) Validate() error {
	if err := validService("ChangeDefault.Service", m.Service); err != nil {
		return err
	}
	if !m.Target.IsPort() {
		if err := validService("ChangeDefault.Target", m.Target); err != nil {
			return err
		}
		if m.Target == m.Service {
			return fmt.Errorf("%w: ChangeDefault %s -> itself", ErrInvalidMessage, m.Service)
		}
	}
	return nil
}

// Union implements Message.
func (m ChangeDefault) Union() nf.Message {
	return nf.Message{Kind: nf.MsgChangeDefault, Flows: m.Flows, S: m.Service, T: m.Target}
}

// String implements Message.
func (m ChangeDefault) String() string {
	return fmt.Sprintf("ChangeDefault(%s, %s -> %s)", m.Flows, m.Service, m.Target)
}

// AppData carries arbitrary application (key, value) data up to the NF
// Manager and SDNFV Application, which stores it in the policy KV.
type AppData struct {
	Key   string
	Value any
}

// NewAppData builds a validated AppData.
func NewAppData(key string, value any) (AppData, error) {
	m := AppData{Key: key, Value: value}
	return m, m.Validate()
}

// Kind implements Message.
func (AppData) Kind() nf.MsgKind { return nf.MsgData }

// Validate implements Message.
func (m AppData) Validate() error {
	if m.Key == "" {
		return fmt.Errorf("%w: AppData with empty key", ErrInvalidMessage)
	}
	return nil
}

// Union implements Message.
func (m AppData) Union() nf.Message {
	return nf.Message{Kind: nf.MsgData, Key: m.Key, Value: m.Value}
}

// String implements Message.
func (m AppData) String() string { return fmt.Sprintf("AppData(%q=%v)", m.Key, m.Value) }

// FromUnion lifts a legacy nf.Message record into its typed variant and
// validates it. Unknown kinds and structural violations are reported as
// errors wrapping ErrInvalidMessage.
func FromUnion(u nf.Message) (Message, error) {
	var m Message
	switch u.Kind {
	case nf.MsgSkipMe:
		m = SkipMe{Flows: u.Flows, Service: u.S}
	case nf.MsgRequestMe:
		m = RequestMe{Flows: u.Flows, Service: u.S}
	case nf.MsgChangeDefault:
		m = ChangeDefault{Flows: u.Flows, Service: u.S, Target: u.T}
	case nf.MsgData:
		m = AppData{Key: u.Key, Value: u.Value}
	default:
		return nil, fmt.Errorf("%w: unknown kind %d", ErrInvalidMessage, uint8(u.Kind))
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

var (
	_ Message = SkipMe{}
	_ Message = RequestMe{}
	_ Message = ChangeDefault{}
	_ Message = AppData{}
)
