package control_test

// Benchmarks for the ISSUE 2 acceptance criterion: with a 1 ms
// controller service time and ≥ 8 in-flight misses, pipelined southbound
// resolution must beat the serial blocking path by ≥ 4× in aggregate
// new-flow setup throughput. Both benchmarks run against the same
// controller configuration (1 ms service, 8 workers) over real TCP
// loopback; the only difference is how many PacketIns the client keeps
// in flight. Run with:
//
//	go test -bench Southbound -benchtime 2s ./internal/control
//
// and compare the flows/s metric (README "Control plane" records the
// measured numbers).

import (
	"context"
	"net"
	"testing"
	"time"

	"sdnfv/internal/app"
	"sdnfv/internal/control"
	"sdnfv/internal/controller"
	"sdnfv/internal/flowtable"
	"sdnfv/internal/graph"
)

const benchInflight = 8

func benchClient(b *testing.B) *control.Client {
	b.Helper()
	g, err := graph.Chain("bench", graph.Vertex{Service: 1, Name: "fw", ReadOnly: true})
	if err != nil {
		b.Fatal(err)
	}
	a := app.New(app.Config{IngressPort: 0, EgressPort: 1})
	if err := a.RegisterGraph(g); err != nil {
		b.Fatal(err)
	}
	ctl := controller.New(controller.Config{
		ServiceTime: time.Millisecond,
		Workers:     benchInflight,
		QueueDepth:  4096,
	})
	ctl.SetNorthbound(a)
	ctl.Start()
	b.Cleanup(ctl.Stop)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = ln.Close() })
	go func() { _ = ctl.Serve(ln) }()
	client, err := control.Dial(context.Background(), ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = client.Close() })
	return client
}

// BenchmarkSouthboundSerial is the old MissHandler discipline: one
// blocking controller round trip per miss.
func BenchmarkSouthboundSerial(b *testing.B) {
	client := benchClient(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Resolve(ctx, flowtable.Port(0), testKey(uint16(i))); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "flows/s")
}

// BenchmarkSouthboundPipelined keeps benchInflight misses in flight per
// ResolveBatch, the way the Flow Controller thread drains a burst.
func BenchmarkSouthboundPipelined(b *testing.B) {
	client := benchClient(b)
	ctx := context.Background()
	reqs := make([]control.ResolveRequest, benchInflight)
	out := make([]control.ResolveResult, benchInflight)
	b.ResetTimer()
	for done := 0; done < b.N; {
		n := benchInflight
		if b.N-done < n {
			n = b.N - done
		}
		for i := 0; i < n; i++ {
			reqs[i] = control.ResolveRequest{Scope: flowtable.Port(0), Key: testKey(uint16(done + i))}
		}
		client.ResolveBatch(ctx, reqs[:n], out[:n])
		for i := 0; i < n; i++ {
			if out[i].Err != nil {
				b.Fatal(out[i].Err)
			}
		}
		done += n
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "flows/s")
}
