package control_test

// End-to-end tests of the wire Southbound backend: control.Client
// dialing a served controller.Controller over TCP loopback, with an
// app.App northbound on top — the full Fig. 2 hierarchy across a real
// socket.

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"sdnfv/internal/app"
	"sdnfv/internal/control"
	"sdnfv/internal/controller"
	"sdnfv/internal/flowtable"
	"sdnfv/internal/graph"
	"sdnfv/internal/packet"
)

func testKey(srcPort uint16) packet.FlowKey {
	return packet.FlowKey{
		SrcIP: packet.IPv4(10, 0, 0, 1), DstIP: packet.IPv4(10, 0, 0, 2),
		SrcPort: srcPort, DstPort: 80, Proto: packet.ProtoUDP,
	}
}

// startWire serves ctl on loopback and dials a Client to it.
func startWire(t *testing.T, ctl *controller.Controller) *control.Client {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	ctl.Start()
	t.Cleanup(ctl.Stop)
	go func() { _ = ctl.Serve(ln) }()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	client, err := control.Dial(ctx, ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = client.Close() })
	return client
}

func testApp(t *testing.T) *app.App {
	t.Helper()
	g, err := graph.Chain("wire",
		graph.Vertex{Service: 1, Name: "fw", ReadOnly: true},
		graph.Vertex{Service: 2, Name: "mon", ReadOnly: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	a := app.New(app.Config{IngressPort: 0, EgressPort: 1})
	if err := a.RegisterGraph(g); err != nil {
		t.Fatal(err)
	}
	return a
}

func TestClientResolve(t *testing.T) {
	ctl := controller.New(controller.Config{})
	ctl.SetNorthbound(testApp(t))
	client := startWire(t, ctl)

	rules, err := client.Resolve(context.Background(), flowtable.Port(0), testKey(1000))
	if err != nil {
		t.Fatal(err)
	}
	// The chain compiles to ingress + 2 services + egress scopes.
	if len(rules) < 3 {
		t.Fatalf("rules = %v", rules)
	}
	for _, r := range rules {
		if !r.Match.IsExact() {
			t.Fatalf("expected per-flow exact rules, got %v", r.Match)
		}
	}
}

func TestClientResolveBatchPipelined(t *testing.T) {
	// 8 workers, real service time: a pipelined batch of 8 should
	// complete in roughly one service time, not eight.
	const svc = 20 * time.Millisecond
	ctl := controller.New(controller.Config{ServiceTime: svc, Workers: 8})
	ctl.SetNorthbound(testApp(t))
	client := startWire(t, ctl)

	const n = 8
	reqs := make([]control.ResolveRequest, n)
	out := make([]control.ResolveResult, n)
	for i := range reqs {
		reqs[i] = control.ResolveRequest{Scope: flowtable.Port(0), Key: testKey(uint16(2000 + i))}
	}
	start := time.Now()
	client.ResolveBatch(context.Background(), reqs, out)
	elapsed := time.Since(start)
	for i, r := range out {
		if r.Err != nil || len(r.Rules) == 0 {
			t.Fatalf("slot %d: %+v", i, r)
		}
	}
	if elapsed > 4*svc {
		t.Fatalf("batch took %v; pipelining should overlap the %v serial cost", elapsed, n*svc)
	}
}

func TestClientErrorMapping(t *testing.T) {
	// No northbound attached: every resolve must surface ErrNoCompiler
	// across the wire.
	ctl := controller.New(controller.Config{})
	client := startWire(t, ctl)

	if _, err := client.Resolve(context.Background(), flowtable.Port(0), testKey(1)); !errors.Is(err, control.ErrNoCompiler) {
		t.Fatalf("err = %v", err)
	}
}

func TestClientStatsAndFeatures(t *testing.T) {
	ctl := controller.New(controller.Config{DatapathID: 0xabc})
	ctl.SetNorthbound(testApp(t))
	client := startWire(t, ctl)

	if _, err := client.Resolve(context.Background(), flowtable.Port(0), testKey(7)); err != nil {
		t.Fatal(err)
	}
	st, err := client.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != 1 || st.FlowMods == 0 || st.Rejected != 0 {
		t.Fatalf("stats = %+v", st)
	}
	f, err := client.Features(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if f.DatapathID != 0xabc {
		t.Fatalf("features = %+v", f)
	}
}

func TestClientNFMessages(t *testing.T) {
	a := testApp(t)
	ctl := controller.New(controller.Config{})
	ctl.SetNorthbound(a)
	client := startWire(t, ctl)

	// Legal: 1->2 is a graph edge. Delivery is async; poll the app log.
	if err := client.SendNFMessage(context.Background(), 1, control.ChangeDefault{
		Flows: flowtable.MatchAll, Service: 1, Target: 2,
	}); err != nil {
		t.Fatal(err)
	}
	// Illegal: 2->1 is not an edge; the refusal comes back as a counted
	// ErrorMsg.
	if err := client.SendNFMessage(context.Background(), 2, control.ChangeDefault{
		Flows: flowtable.MatchAll, Service: 2, Target: 1,
	}); err != nil {
		t.Fatal(err)
	}
	// Structurally invalid messages never leave the host.
	if err := client.SendNFMessage(context.Background(), 1, control.AppData{}); !errors.Is(err, control.ErrInvalidMessage) {
		t.Fatalf("invalid message: %v", err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(a.Messages()) >= 2 && client.Rejected() >= 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	log := a.Messages()
	if len(log) != 2 {
		t.Fatalf("app log = %+v", log)
	}
	if !log[0].Accepted || log[1].Accepted {
		t.Fatalf("verdicts = %+v", log)
	}
	if client.Rejected() != 1 {
		t.Fatalf("rejected counter = %d", client.Rejected())
	}
}

func TestClientFlowRemovedWire(t *testing.T) {
	// Full eviction-notice path across a real socket: Client
	// NotifyFlowRemoved → controller serveConn → Session →
	// app.HandleFlowRemoved, with the payload intact.
	a := testApp(t)
	ctl := controller.New(controller.Config{})
	ctl.SetNorthbound(a)

	type seen struct {
		dp       control.DatapathID
		removals []control.FlowRemoved
	}
	got := make(chan seen, 1)
	a.SubscribeFlowRemoved(func(dp control.DatapathID, removals []control.FlowRemoved) {
		got <- seen{dp, removals}
	})
	client := startWire(t, ctl)

	sent := []control.FlowRemoved{
		{Scope: 1, Match: flowtable.ExactMatch(testKey(4000)), RuleID: 77, Reason: control.RemovedIdleTimeout},
		{Scope: 2, Match: flowtable.ExactMatch(testKey(4001)), RuleID: 78, Reason: control.RemovedHardTimeout},
	}
	if err := client.NotifyFlowRemoved(context.Background(), sent); err != nil {
		t.Fatal(err)
	}
	select {
	case s := <-got:
		if s.dp != 0 {
			t.Fatalf("datapath = %v", s.dp)
		}
		if len(s.removals) != 2 {
			t.Fatalf("removals = %+v", s.removals)
		}
		for i, r := range s.removals {
			if r.Scope != sent[i].Scope || r.RuleID != sent[i].RuleID || r.Reason != sent[i].Reason {
				t.Fatalf("removal %d = %+v want %+v", i, r, sent[i])
			}
			if !r.Match.IsExact() {
				t.Fatalf("removal %d lost its match: %+v", i, r.Match)
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("flow-removed notice never reached the app")
	}
	if n := a.FlowsRemoved(); n != 2 {
		t.Fatalf("app FlowsRemoved = %d", n)
	}
	// Empty batches are a no-op, not a frame.
	if err := client.NotifyFlowRemoved(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	if n := a.FlowsRemoved(); n != 2 {
		t.Fatalf("empty batch changed the counter: %d", n)
	}
}

func TestClientCloseUnblocks(t *testing.T) {
	ctl := controller.New(controller.Config{ServiceTime: time.Second})
	ctl.SetNorthbound(testApp(t))
	client := startWire(t, ctl)

	errs := make(chan error, 1)
	go func() {
		_, err := client.Resolve(context.Background(), flowtable.Port(0), testKey(9))
		errs <- err
	}()
	time.Sleep(20 * time.Millisecond)
	_ = client.Close()
	select {
	case err := <-errs:
		if !errors.Is(err, control.ErrStopped) {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Resolve still blocked after Close")
	}
	// New requests refuse immediately.
	if _, err := client.Resolve(context.Background(), flowtable.Port(0), testKey(10)); !errors.Is(err, control.ErrStopped) {
		t.Fatalf("post-close err = %v", err)
	}
}

func TestClientContextCancel(t *testing.T) {
	ctl := controller.New(controller.Config{ServiceTime: time.Second})
	ctl.SetNorthbound(testApp(t))
	client := startWire(t, ctl)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := client.Resolve(ctx, flowtable.Port(0), testKey(11))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	if time.Since(start) > 500*time.Millisecond {
		t.Fatal("Resolve ignored the deadline")
	}
}
