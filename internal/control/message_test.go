package control

import (
	"errors"
	"testing"

	"sdnfv/internal/flowtable"
	"sdnfv/internal/graph"
	"sdnfv/internal/nf"
	"sdnfv/internal/packet"
)

func testKey() packet.FlowKey {
	return packet.FlowKey{
		SrcIP: packet.IPv4(10, 0, 0, 1), DstIP: packet.IPv4(10, 0, 0, 2),
		SrcPort: 1000, DstPort: 80, Proto: packet.ProtoUDP,
	}
}

// TestMessageValidation is the table-driven structural check for every
// typed variant.
func TestMessageValidation(t *testing.T) {
	cases := []struct {
		name string
		msg  Message
		ok   bool
	}{
		{"skipme ok", SkipMe{Flows: flowtable.MatchAll, Service: 7}, true},
		{"skipme zero service", SkipMe{Service: 0}, false},
		{"skipme sink", SkipMe{Service: graph.Sink}, false},
		{"skipme port", SkipMe{Service: flowtable.Port(1)}, false},

		{"requestme ok", RequestMe{Flows: flowtable.MatchAll, Service: 9}, true},
		{"requestme zero service", RequestMe{Service: 0}, false},
		{"requestme port", RequestMe{Service: flowtable.Port(0)}, false},

		{"changedefault service target", ChangeDefault{Service: 1, Target: 2}, true},
		{"changedefault egress port target", ChangeDefault{Service: 1, Target: flowtable.Port(3)}, true},
		{"changedefault zero service", ChangeDefault{Service: 0, Target: 2}, false},
		{"changedefault port service", ChangeDefault{Service: flowtable.Port(0), Target: 2}, false},
		{"changedefault zero target", ChangeDefault{Service: 1, Target: 0}, false},
		{"changedefault sink target", ChangeDefault{Service: 1, Target: graph.Sink}, false},
		{"changedefault self target", ChangeDefault{Service: 4, Target: 4}, false},

		{"appdata ok", AppData{Key: "alarm", Value: "on"}, true},
		{"appdata nil value ok", AppData{Key: "ping"}, true},
		{"appdata empty key", AppData{}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.msg.Validate()
			if tc.ok && err != nil {
				t.Fatalf("want valid, got %v", err)
			}
			if !tc.ok {
				if err == nil {
					t.Fatal("want invalid, got nil error")
				}
				if !errors.Is(err, ErrInvalidMessage) {
					t.Fatalf("error %v does not wrap ErrInvalidMessage", err)
				}
			}
		})
	}
}

// TestConstructorsValidate checks the New* constructors report the same
// verdicts as Validate.
func TestConstructorsValidate(t *testing.T) {
	if _, err := NewSkipMe(flowtable.MatchAll, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := NewSkipMe(flowtable.MatchAll, flowtable.Port(0)); !errors.Is(err, ErrInvalidMessage) {
		t.Fatalf("err = %v", err)
	}
	if _, err := NewRequestMe(flowtable.MatchAll, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := NewChangeDefault(flowtable.MatchAll, 3, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := NewChangeDefault(flowtable.MatchAll, 3, 3); !errors.Is(err, ErrInvalidMessage) {
		t.Fatalf("err = %v", err)
	}
	if _, err := NewAppData("k", 42); err != nil {
		t.Fatal(err)
	}
	if _, err := NewAppData("", nil); !errors.Is(err, ErrInvalidMessage) {
		t.Fatalf("err = %v", err)
	}
}

// TestUnionRoundTrip checks every variant survives lowering to the
// legacy record and lifting back.
func TestUnionRoundTrip(t *testing.T) {
	key := flowtable.ExactMatch(testKey())
	msgs := []Message{
		SkipMe{Flows: key, Service: 7},
		RequestMe{Flows: flowtable.MatchAll, Service: 9},
		ChangeDefault{Flows: key, Service: 1, Target: 2},
		ChangeDefault{Flows: key, Service: 1, Target: flowtable.Port(3)},
		AppData{Key: "alarm", Value: "on"},
	}
	for _, m := range msgs {
		got, err := FromUnion(m.Union())
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if got.String() != m.String() || got.Kind() != m.Kind() {
			t.Fatalf("round trip %s != %s", got, m)
		}
	}
}

// TestFromUnionRejects checks the lifting path applies validation and
// refuses unknown kinds.
func TestFromUnionRejects(t *testing.T) {
	bad := []nf.Message{
		{Kind: nf.MsgKind(99)},
		{Kind: nf.MsgSkipMe, S: flowtable.Port(0)},
		{Kind: nf.MsgChangeDefault, S: 1, T: 1},
		{Kind: nf.MsgData, Key: ""},
	}
	for _, u := range bad {
		if _, err := FromUnion(u); !errors.Is(err, ErrInvalidMessage) {
			t.Fatalf("%v: err = %v", u, err)
		}
	}
}
