// Package spec is the declarative half of the SDNFV management plane: a
// versioned deployment specification describing the desired state of a
// cluster — the service graph, which NF implementation backs each
// service, where each service may be placed, per-service autoscale
// bounds, and the inter-host link wiring. A Spec is loadable from JSON,
// validated as a whole, and diffable: two generations produce a typed
// change set, which is what the reconcile loop (internal/reconcile) and
// the operator surfaces (sdnfv-ctl apply/diff) consume.
//
// The paper's management plane (§3) issues imperative calls — boot this
// NF here, install that rule. A spec inverts that: callers describe the
// cluster they want, and the reconciler continuously converges the
// observed cluster onto it, so a dead host or a failed launch is drift
// to be corrected rather than a silently wrong cluster.
package spec

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"sdnfv/internal/control"
	"sdnfv/internal/flowtable"
	"sdnfv/internal/graph"
	"sdnfv/internal/nf"
)

// Version is the spec schema version this package reads and writes.
const Version = 1

// Reserved edge endpoint names: "ingress" is the traffic entry (the
// graph's Source pseudo-vertex), "egress" the exit (Sink).
const (
	EndpointIngress = "ingress"
	EndpointEgress  = "egress"
)

// Errors returned by spec validation and lookup. Validate wraps each
// finding's detail around one of these sentinels so rejection causes
// stay matchable.
var (
	ErrVersion   = errors.New("spec: unsupported version")
	ErrInvalid   = errors.New("spec: invalid")
	ErrDangling  = errors.New("spec: dangling reference")
	ErrDuplicate = errors.New("spec: duplicate")
	ErrBounds    = errors.New("spec: bad autoscale bounds")
	ErrPortClash = errors.New("spec: overlapping port binds")
	ErrUnknownNF = errors.New("spec: unknown NF binding")
	ErrUnplaced  = errors.New("spec: no live placement candidate")
)

// Host names one NF host of the cluster and the datapath id it
// announces on its control channel.
type Host struct {
	Name     string `json:"name"`
	Datapath uint64 `json:"datapath"`
}

// Bounds are a service's autoscale replica bounds. The zero value means
// "exactly one replica, no autoscaling"; Validate normalizes it to
// {1, 1}.
type Bounds struct {
	Min int `json:"min"`
	Max int `json:"max"`
}

// Scaled reports whether the bounds leave the autoscaler room to act.
func (b Bounds) Scaled() bool { return b.Max > b.Min }

// FlowTimeouts are declarative flow-rule lifecycle defaults, in
// milliseconds. They apply at install time to exact-match rules whose
// FlowMods carry no explicit timeouts (see
// flowtable.Table.SetDefaultTimeouts): idle_ms expires a rule that saw
// no packet for the window, hard_ms expires it regardless of traffic.
// Zero means unset (inherit, or never expire); -1 is the explicit
// never-expire opt-out a per-service stanza uses to shadow a
// table-wide default.
type FlowTimeouts struct {
	IdleMs int `json:"idle_ms,omitempty"`
	HardMs int `json:"hard_ms,omitempty"`
}

// Durations converts the millisecond stanza to the flowtable's
// duration-typed defaults, mapping the -1 opt-out to the negative
// duration the table recognizes.
func (f *FlowTimeouts) Durations() (idle, hard time.Duration) {
	if f == nil {
		return 0, 0
	}
	conv := func(ms int) time.Duration {
		if ms < 0 {
			return -time.Millisecond
		}
		return time.Duration(ms) * time.Millisecond
	}
	return conv(f.IdleMs), conv(f.HardMs)
}

func (f *FlowTimeouts) validate(where string) error {
	if f == nil {
		return nil
	}
	for _, v := range []struct {
		name string
		ms   int
	}{{"idle_ms", f.IdleMs}, {"hard_ms", f.HardMs}} {
		if v.ms < -1 {
			return fmt.Errorf("%w: %s flow_timeouts.%s = %d (want >= -1; -1 opts out)", ErrInvalid, where, v.name, v.ms)
		}
	}
	return nil
}

// Service is one vertex of the service graph: the Service-ID scope it
// owns in the flow tables, the NF registry binding that implements it,
// the hosts it may be placed on (preference order — the reconciler
// places it on the first live candidate), and its autoscale bounds.
type Service struct {
	Name      string              `json:"name"`
	ID        flowtable.ServiceID `json:"id"`
	NF        string              `json:"nf"`
	ReadOnly  bool                `json:"read_only,omitempty"`
	Placement []string            `json:"placement"`
	Scale     Bounds              `json:"scale,omitempty"`
	// FlowTimeouts overrides the spec-wide lifecycle defaults for rules
	// installed at this service's scope.
	FlowTimeouts *FlowTimeouts `json:"flow_timeouts,omitempty"`
}

// Edge is one service-graph edge by endpoint name. From/To may name a
// service or the reserved endpoints "ingress"/"egress". Default marks
// the edge taken when no per-flow steering overrides it.
type Edge struct {
	From    string `json:"from"`
	To      string `json:"to"`
	Default bool   `json:"default,omitempty"`
}

// Endpoint is one end of a link: a NIC port on a named host.
type Endpoint struct {
	Host string `json:"host"`
	Port int    `json:"port"`
}

// Link is one bidirectional inter-host wire. Each direction is a fabric
// channel the deployment compiler may route a crossing chain hop over.
type Link struct {
	A Endpoint `json:"a"`
	B Endpoint `json:"b"`
}

// IngressSpec names where traffic enters the deployment.
type IngressSpec struct {
	Host string `json:"host"`
	Port int    `json:"port"`
}

// Spec is one generation of desired cluster state.
type Spec struct {
	Version    int         `json:"version"`
	Name       string      `json:"name"`
	Hosts      []Host      `json:"hosts"`
	Services   []Service   `json:"services"`
	Edges      []Edge      `json:"edges"`
	Ingress    IngressSpec `json:"ingress"`
	EgressPort int         `json:"egress_port"`
	Links      []Link      `json:"links,omitempty"`
	// FlowTimeouts are the cluster-wide flow-rule lifecycle defaults
	// applied to every host's table; per-service stanzas override them.
	FlowTimeouts *FlowTimeouts `json:"flow_timeouts,omitempty"`
}

// HasFlowLifecycle reports whether any lifecycle stanza (spec-wide or
// per-service) is present — hosts booted from such a spec must run the
// background eviction sweeper.
func (s *Spec) HasFlowLifecycle() bool {
	if s.FlowTimeouts != nil {
		return true
	}
	for i := range s.Services {
		if s.Services[i].FlowTimeouts != nil {
			return true
		}
	}
	return false
}

// Parse decodes a spec from JSON and validates it. Unknown fields are
// rejected, so a typo'd key fails loudly instead of silently deploying
// something else.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	if err := checkTrailing(dec); err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load reads and parses a spec file.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

func checkTrailing(dec *json.Decoder) error {
	if _, err := dec.Token(); err != io.EOF {
		return fmt.Errorf("%w: trailing data after spec document", ErrInvalid)
	}
	return nil
}

// Marshal renders the spec as indented JSON (the canonical on-disk
// form; Parse(Marshal(s)) round-trips).
func (s *Spec) Marshal() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// Validate checks the spec as a whole. It normalizes zero autoscale
// bounds to {1, 1} and rejects, among others: unsupported versions,
// duplicate host/service names or ids, dangling service references in
// edges and placements, min > max bounds, overlapping port binds, and
// service graphs the graph validator refuses (unreachable services, no
// default path, cycles on the default path).
func (s *Spec) Validate() error {
	if s.Version != Version {
		return fmt.Errorf("%w: %d (want %d)", ErrVersion, s.Version, Version)
	}
	if s.Name == "" {
		return fmt.Errorf("%w: spec has no name", ErrInvalid)
	}
	if len(s.Hosts) == 0 {
		return fmt.Errorf("%w: spec has no hosts", ErrInvalid)
	}
	hostNames := make(map[string]bool, len(s.Hosts))
	dps := make(map[uint64]string, len(s.Hosts))
	for _, h := range s.Hosts {
		if h.Name == "" {
			return fmt.Errorf("%w: host with empty name", ErrInvalid)
		}
		if hostNames[h.Name] {
			return fmt.Errorf("%w: host %q", ErrDuplicate, h.Name)
		}
		hostNames[h.Name] = true
		if prev, clash := dps[h.Datapath]; clash {
			return fmt.Errorf("%w: hosts %q and %q share datapath %d", ErrDuplicate, prev, h.Name, h.Datapath)
		}
		dps[h.Datapath] = h.Name
	}

	if len(s.Services) == 0 {
		return fmt.Errorf("%w: spec has no services", ErrInvalid)
	}
	svcNames := make(map[string]bool, len(s.Services))
	svcIDs := make(map[flowtable.ServiceID]string, len(s.Services))
	for i := range s.Services {
		sv := &s.Services[i]
		if sv.Name == "" {
			return fmt.Errorf("%w: service with empty name", ErrInvalid)
		}
		if sv.Name == EndpointIngress || sv.Name == EndpointEgress {
			return fmt.Errorf("%w: service name %q is reserved", ErrInvalid, sv.Name)
		}
		if svcNames[sv.Name] {
			return fmt.Errorf("%w: service %q", ErrDuplicate, sv.Name)
		}
		svcNames[sv.Name] = true
		if sv.ID == graph.Source || sv.ID >= graph.Sink {
			return fmt.Errorf("%w: service %q id %d is reserved", ErrInvalid, sv.Name, sv.ID)
		}
		if prev, clash := svcIDs[sv.ID]; clash {
			return fmt.Errorf("%w: services %q and %q share id %d", ErrDuplicate, prev, sv.Name, sv.ID)
		}
		svcIDs[sv.ID] = sv.Name
		if sv.NF == "" {
			return fmt.Errorf("%w: service %q has no NF binding", ErrInvalid, sv.Name)
		}
		if len(sv.Placement) == 0 {
			return fmt.Errorf("%w: service %q has no placement candidates", ErrInvalid, sv.Name)
		}
		seen := map[string]bool{}
		for _, host := range sv.Placement {
			if !hostNames[host] {
				return fmt.Errorf("%w: service %q placed on unknown host %q", ErrDangling, sv.Name, host)
			}
			if seen[host] {
				return fmt.Errorf("%w: service %q lists host %q twice", ErrDuplicate, sv.Name, host)
			}
			seen[host] = true
		}
		// Zero bounds mean "one fixed replica".
		if sv.Scale == (Bounds{}) {
			sv.Scale = Bounds{Min: 1, Max: 1}
		}
		if sv.Scale.Min < 1 || sv.Scale.Max < sv.Scale.Min {
			return fmt.Errorf("%w: service %q min=%d max=%d", ErrBounds, sv.Name, sv.Scale.Min, sv.Scale.Max)
		}
		if err := sv.FlowTimeouts.validate(fmt.Sprintf("service %q", sv.Name)); err != nil {
			return err
		}
	}
	if err := s.FlowTimeouts.validate("spec"); err != nil {
		return err
	}

	if !hostNames[s.Ingress.Host] {
		return fmt.Errorf("%w: ingress host %q", ErrDangling, s.Ingress.Host)
	}
	if s.Ingress.Port < 0 || s.EgressPort < 0 {
		return fmt.Errorf("%w: negative ingress/egress port", ErrInvalid)
	}
	if s.Ingress.Port == s.EgressPort {
		return fmt.Errorf("%w: ingress port %d and egress port %d coincide on %q",
			ErrPortClash, s.Ingress.Port, s.EgressPort, s.Ingress.Host)
	}

	// Links: every endpoint on a known host, and no NIC port bound
	// twice — by another link, by the ingress port on the ingress host,
	// or by the egress port (reserved on every host).
	bound := map[Endpoint]string{
		{Host: s.Ingress.Host, Port: s.Ingress.Port}: "ingress",
	}
	for _, h := range s.Hosts {
		bound[Endpoint{Host: h.Name, Port: s.EgressPort}] = "egress"
	}
	for _, l := range s.Links {
		if l.A == l.B {
			return fmt.Errorf("%w: link endpoints coincide at %s:%d", ErrInvalid, l.A.Host, l.A.Port)
		}
		for _, ep := range []Endpoint{l.A, l.B} {
			if !hostNames[ep.Host] {
				return fmt.Errorf("%w: link endpoint on unknown host %q", ErrDangling, ep.Host)
			}
			if ep.Port < 0 {
				return fmt.Errorf("%w: negative link port on %q", ErrInvalid, ep.Host)
			}
			if holder, clash := bound[ep]; clash {
				return fmt.Errorf("%w: %s:%d already bound by %s", ErrPortClash, ep.Host, ep.Port, holder)
			}
			bound[ep] = "link"
		}
	}

	// Edges: endpoints resolve, directionality respects the reserved
	// endpoints, at most one default per source. Reachability, default
	// paths, and cycles are the graph validator's business — build the
	// graph and let it judge.
	defaults := map[string]bool{}
	edgeSeen := map[[2]string]bool{}
	for _, e := range s.Edges {
		for _, name := range []string{e.From, e.To} {
			if name != EndpointIngress && name != EndpointEgress && !svcNames[name] {
				return fmt.Errorf("%w: edge %s->%s names unknown service %q", ErrDangling, e.From, e.To, name)
			}
		}
		if e.From == EndpointEgress {
			return fmt.Errorf("%w: edge out of egress", ErrInvalid)
		}
		if e.To == EndpointIngress {
			return fmt.Errorf("%w: edge into ingress", ErrInvalid)
		}
		if e.From == e.To {
			return fmt.Errorf("%w: self-edge on %q", ErrInvalid, e.From)
		}
		key := [2]string{e.From, e.To}
		if edgeSeen[key] {
			return fmt.Errorf("%w: edge %s->%s", ErrDuplicate, e.From, e.To)
		}
		edgeSeen[key] = true
		if e.Default {
			if defaults[e.From] {
				return fmt.Errorf("%w: two default edges out of %q", ErrDuplicate, e.From)
			}
			defaults[e.From] = true
		}
	}
	g, err := s.Graph()
	if err != nil {
		return err
	}
	if err := g.Validate(); err != nil {
		return fmt.Errorf("%w: service graph: %v", ErrInvalid, err)
	}
	return nil
}

// Graph builds the service graph the spec describes, with "ingress"
// and "egress" mapped to the Source and Sink pseudo-vertices.
func (s *Spec) Graph() (*graph.Graph, error) {
	g := graph.New(s.Name)
	for _, sv := range s.Services {
		if err := g.AddVertex(graph.Vertex{Service: sv.ID, Name: sv.Name, ReadOnly: sv.ReadOnly}); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrInvalid, err)
		}
	}
	resolve := func(name string) (flowtable.ServiceID, error) {
		switch name {
		case EndpointIngress:
			return graph.Source, nil
		case EndpointEgress:
			return graph.Sink, nil
		}
		if sv, ok := s.Service(name); ok {
			return sv.ID, nil
		}
		return 0, fmt.Errorf("%w: edge endpoint %q", ErrDangling, name)
	}
	for _, e := range s.Edges {
		from, err := resolve(e.From)
		if err != nil {
			return nil, err
		}
		to, err := resolve(e.To)
		if err != nil {
			return nil, err
		}
		if err := g.AddEdge(from, to, e.Default); err != nil {
			return nil, fmt.Errorf("%w: edge %s->%s: %v", ErrInvalid, e.From, e.To, err)
		}
	}
	return g, nil
}

// Service returns the named service.
func (s *Spec) Service(name string) (Service, bool) {
	for _, sv := range s.Services {
		if sv.Name == name {
			return sv, true
		}
	}
	return Service{}, false
}

// ServiceByID returns the service owning the given Service-ID scope.
func (s *Spec) ServiceByID(id flowtable.ServiceID) (Service, bool) {
	for _, sv := range s.Services {
		if sv.ID == id {
			return sv, true
		}
	}
	return Service{}, false
}

// Datapath returns the datapath id of the named host.
func (s *Spec) Datapath(host string) (control.DatapathID, bool) {
	for _, h := range s.Hosts {
		if h.Name == host {
			return control.DatapathID(h.Datapath), true
		}
	}
	return 0, false
}

// HostNames lists the spec's hosts in declaration order.
func (s *Spec) HostNames() []string {
	out := make([]string, len(s.Hosts))
	for i, h := range s.Hosts {
		out[i] = h.Name
	}
	return out
}

// Place resolves the desired placement under the given liveness view:
// each service lands on the first candidate host for which alive
// returns true. Services with no live candidate are reported together
// under ErrUnplaced — partial placements are never returned, because a
// partially placed chain black-holes traffic at the gap.
func (s *Spec) Place(alive func(host string) bool) (map[string]string, error) {
	out := make(map[string]string, len(s.Services))
	var stuck []string
	for _, sv := range s.Services {
		placed := false
		for _, host := range sv.Placement {
			if alive(host) {
				out[sv.Name] = host
				placed = true
				break
			}
		}
		if !placed {
			stuck = append(stuck, sv.Name)
		}
	}
	if len(stuck) > 0 {
		sort.Strings(stuck)
		return nil, fmt.Errorf("%w: %v", ErrUnplaced, stuck)
	}
	return out, nil
}

// BindCheck verifies every service's NF binding resolves in reg —
// callers run it before applying a spec so a typo'd NF name fails at
// apply time, not mid-convergence.
func (s *Spec) BindCheck(reg *NFRegistry) error {
	for _, sv := range s.Services {
		if !reg.Has(sv.NF) {
			return fmt.Errorf("%w: service %q wants %q (have %v)", ErrUnknownNF, sv.Name, sv.NF, reg.Names())
		}
	}
	return nil
}

// NFRegistry maps spec NF binding names to the factories that build
// fresh NF instances. It is how a declarative spec names code: the
// process hosting the reconciler registers the implementations it
// ships, and the spec refers to them by name.
type NFRegistry struct {
	mu sync.Mutex
	m  map[string]func() nf.BatchFunction
}

// NewNFRegistry builds an empty registry.
func NewNFRegistry() *NFRegistry {
	return &NFRegistry{m: make(map[string]func() nf.BatchFunction)}
}

// Register binds name to a factory. Re-binding an existing name is an
// error — silently swapping implementations under an active spec is
// exactly the kind of ambient mutation specs exist to remove.
func (r *NFRegistry) Register(name string, factory func() nf.BatchFunction) error {
	if name == "" || factory == nil {
		return fmt.Errorf("%w: empty NF registration", ErrInvalid)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.m[name]; dup {
		return fmt.Errorf("%w: NF binding %q", ErrDuplicate, name)
	}
	r.m[name] = factory
	return nil
}

// Has reports whether name is bound.
func (r *NFRegistry) Has(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.m[name]
	return ok
}

// New builds a fresh NF instance for the named binding.
func (r *NFRegistry) New(name string) (nf.BatchFunction, error) {
	r.mu.Lock()
	factory, ok := r.m[name]
	r.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownNF, name)
	}
	return factory(), nil
}

// Names lists the bound NF names, sorted.
func (r *NFRegistry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.m))
	for n := range r.m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
