package spec

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"sdnfv/internal/nf"
)

// testSpec builds a valid 3-host chain spec (the shape the reconcile
// experiment deploys) that individual tests then mutate.
func testSpec() *Spec {
	return &Spec{
		Version: Version,
		Name:    "chain",
		Hosts: []Host{
			{Name: "host-A", Datapath: 1},
			{Name: "host-B", Datapath: 2},
			{Name: "host-C", Datapath: 3},
		},
		Services: []Service{
			{Name: "firewall", ID: 1, NF: "firewall", Placement: []string{"host-A"}},
			{Name: "ids", ID: 2, NF: "ids", ReadOnly: true, Placement: []string{"host-B"}},
			{Name: "video", ID: 3, NF: "video", ReadOnly: true, Placement: []string{"host-C", "host-A"}, Scale: Bounds{Min: 1, Max: 2}},
		},
		Edges: []Edge{
			{From: "ingress", To: "firewall", Default: true},
			{From: "firewall", To: "ids", Default: true},
			{From: "ids", To: "video", Default: true},
			{From: "video", To: "egress", Default: true},
		},
		Ingress:    IngressSpec{Host: "host-A", Port: 0},
		EgressPort: 1,
		Links: []Link{
			{A: Endpoint{Host: "host-A", Port: 2}, B: Endpoint{Host: "host-B", Port: 2}},
			{A: Endpoint{Host: "host-B", Port: 3}, B: Endpoint{Host: "host-C", Port: 2}},
			{A: Endpoint{Host: "host-B", Port: 4}, B: Endpoint{Host: "host-A", Port: 3}},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	s := testSpec()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	data, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatalf("Parse(Marshal(s)): %v", err)
	}
	if !reflect.DeepEqual(s, back) {
		t.Fatalf("round trip changed the spec:\n%+v\n%+v", s, back)
	}
	// The round-tripped spec diffs empty against the original.
	if c := Diff(s, back); !c.Empty() {
		t.Fatalf("round trip produced a non-empty diff: %s", c)
	}
}

func TestParseRejectsUnknownFieldsAndTrailing(t *testing.T) {
	if _, err := Parse([]byte(`{"version":1,"nam":"typo"}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	data, _ := testSpec().Marshal()
	if _, err := Parse(append(data, []byte("{}")...)); err == nil {
		t.Fatal("trailing document accepted")
	}
}

// TestValidateRejections is the rejection table: every mutation must be
// refused with the matching sentinel.
func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
		want error
	}{
		{"bad version", func(s *Spec) { s.Version = 2 }, ErrVersion},
		{"no name", func(s *Spec) { s.Name = "" }, ErrInvalid},
		{"no hosts", func(s *Spec) { s.Hosts = nil }, ErrInvalid},
		{"dup host name", func(s *Spec) { s.Hosts[1].Name = "host-A" }, ErrDuplicate},
		{"dup datapath", func(s *Spec) { s.Hosts[1].Datapath = 1 }, ErrDuplicate},
		{"no services", func(s *Spec) { s.Services = nil }, ErrInvalid},
		{"dup service name", func(s *Spec) { s.Services[1].Name = "firewall" }, ErrDuplicate},
		{"dup service id", func(s *Spec) { s.Services[1].ID = 1 }, ErrDuplicate},
		{"reserved service name", func(s *Spec) { s.Services[0].Name = "ingress" }, ErrInvalid},
		{"reserved service id", func(s *Spec) { s.Services[0].ID = 0 }, ErrInvalid},
		{"port-range service id", func(s *Spec) { s.Services[0].ID = 0x8001 }, ErrInvalid},
		{"no NF binding", func(s *Spec) { s.Services[0].NF = "" }, ErrInvalid},
		{"no placement", func(s *Spec) { s.Services[0].Placement = nil }, ErrInvalid},
		{"dangling placement host", func(s *Spec) { s.Services[0].Placement = []string{"host-X"} }, ErrDangling},
		{"placement host twice", func(s *Spec) { s.Services[0].Placement = []string{"host-A", "host-A"} }, ErrDuplicate},
		{"min over max", func(s *Spec) { s.Services[2].Scale = Bounds{Min: 3, Max: 2} }, ErrBounds},
		{"zero min with max", func(s *Spec) { s.Services[2].Scale = Bounds{Min: 0, Max: 2} }, ErrBounds},
		{"dangling ingress host", func(s *Spec) { s.Ingress.Host = "host-X" }, ErrDangling},
		{"negative ingress port", func(s *Spec) { s.Ingress.Port = -1 }, ErrInvalid},
		{"ingress equals egress", func(s *Spec) { s.EgressPort = s.Ingress.Port }, ErrPortClash},
		{"dangling link host", func(s *Spec) { s.Links[0].A.Host = "host-X" }, ErrDangling},
		{"link binds ingress port", func(s *Spec) { s.Links[0].A = Endpoint{Host: "host-A", Port: 0} }, ErrPortClash},
		{"link binds egress port", func(s *Spec) { s.Links[0].B = Endpoint{Host: "host-B", Port: 1} }, ErrPortClash},
		{"two links share a port", func(s *Spec) {
			s.Links[1].A = Endpoint{Host: "host-A", Port: 2} // already link 0's A end
		}, ErrPortClash},
		{"link to itself", func(s *Spec) { s.Links[0].B = s.Links[0].A }, ErrInvalid},
		{"dangling edge ref", func(s *Spec) { s.Edges[1].To = "nat" }, ErrDangling},
		{"edge out of egress", func(s *Spec) {
			s.Edges = append(s.Edges, Edge{From: "egress", To: "video"})
		}, ErrInvalid},
		{"edge into ingress", func(s *Spec) {
			s.Edges = append(s.Edges, Edge{From: "video", To: "ingress"})
		}, ErrInvalid},
		{"self edge", func(s *Spec) { s.Edges[1].To = "firewall" }, ErrInvalid},
		{"dup edge", func(s *Spec) {
			s.Edges = append(s.Edges, Edge{From: "firewall", To: "ids"})
		}, ErrDuplicate},
		{"two defaults from one service", func(s *Spec) {
			s.Edges = append(s.Edges, Edge{From: "ids", To: "firewall", Default: true})
		}, ErrDuplicate},
		{"spec flow idle below opt-out", func(s *Spec) {
			s.FlowTimeouts = &FlowTimeouts{IdleMs: -2}
		}, ErrInvalid},
		{"service flow hard below opt-out", func(s *Spec) {
			s.Services[1].FlowTimeouts = &FlowTimeouts{HardMs: -2}
		}, ErrInvalid},
		{"unreachable service", func(s *Spec) {
			// ids loses its inbound edge: the graph validator refuses.
			s.Edges[1].To = "video"
			s.Edges[2] = Edge{From: "video", To: "egress"}
			s.Edges = s.Edges[:3]
		}, ErrInvalid},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := testSpec()
			tc.mut(s)
			err := s.Validate()
			if err == nil {
				t.Fatalf("mutation accepted")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want sentinel %v", err, tc.want)
			}
		})
	}
}

func TestValidateNormalizesZeroBounds(t *testing.T) {
	s := testSpec()
	s.Services[0].Scale = Bounds{}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Services[0].Scale != (Bounds{Min: 1, Max: 1}) {
		t.Fatalf("zero bounds normalized to %+v", s.Services[0].Scale)
	}
}

// TestFlowTimeouts covers the lifecycle stanza end to end: validation,
// the millisecond→duration mapping (including the -1 opt-out), the
// sweeper trigger, JSON round-trip, and diff detection.
func TestFlowTimeouts(t *testing.T) {
	s := testSpec()
	if s.HasFlowLifecycle() {
		t.Fatal("bare spec claims a lifecycle stanza")
	}
	s.FlowTimeouts = &FlowTimeouts{IdleMs: 250, HardMs: 60_000}
	s.Services[1].FlowTimeouts = &FlowTimeouts{IdleMs: -1}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if !s.HasFlowLifecycle() {
		t.Fatal("stanza present but HasFlowLifecycle is false")
	}

	idle, hard := s.FlowTimeouts.Durations()
	if idle != 250*time.Millisecond || hard != time.Minute {
		t.Fatalf("spec durations: idle=%v hard=%v", idle, hard)
	}
	// -1 maps to a negative duration: the table's explicit never-expire
	// opt-out, distinct from 0 (inherit the default).
	if oIdle, oHard := s.Services[1].FlowTimeouts.Durations(); oIdle >= 0 || oHard != 0 {
		t.Fatalf("opt-out durations: idle=%v hard=%v", oIdle, oHard)
	}
	if nilIdle, nilHard := (*FlowTimeouts)(nil).Durations(); nilIdle != 0 || nilHard != 0 {
		t.Fatalf("nil stanza durations: idle=%v hard=%v", nilIdle, nilHard)
	}

	data, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, back) {
		t.Fatalf("flow timeouts did not survive the round trip:\n%+v\n%+v", s, back)
	}
	if c := Diff(s, back); !c.Empty() {
		t.Fatalf("round trip produced a diff: %s", c)
	}

	// Diff flags stanza changes at both levels, and only then.
	plain := testSpec()
	if c := Diff(plain, s); !c.FlowTimeoutsChanged {
		t.Fatalf("adding stanzas not flagged: %s", c)
	}
	tweaked := testSpec()
	tweaked.FlowTimeouts = &FlowTimeouts{IdleMs: 250, HardMs: 60_000}
	tweaked.Services[1].FlowTimeouts = &FlowTimeouts{IdleMs: -1}
	if c := Diff(s, tweaked); c.FlowTimeoutsChanged {
		t.Fatalf("identical stanzas flagged: %s", c)
	}
	tweaked.Services[1].FlowTimeouts = &FlowTimeouts{IdleMs: 500}
	c := Diff(s, tweaked)
	if !c.FlowTimeoutsChanged || c.Empty() {
		t.Fatalf("per-service stanza change not flagged: %s", c)
	}
	found := false
	for _, line := range c.Summary() {
		if line == "~ flow timeouts" {
			found = true
		}
	}
	if !found {
		t.Fatalf("summary missing flow-timeouts line: %v", c.Summary())
	}
}

func TestGraphShape(t *testing.T) {
	s := testSpec()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	g, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	path := g.DefaultPath()
	want := []int{1, 2, 3}
	if len(path) != len(want) {
		t.Fatalf("default path %v", path)
	}
	for i, id := range want {
		if int(path[i]) != id {
			t.Fatalf("default path %v, want services %v", path, want)
		}
	}
}

func TestPlace(t *testing.T) {
	s := testSpec()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	all := func(string) bool { return true }
	got, err := s.Place(all)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{"firewall": "host-A", "ids": "host-B", "video": "host-C"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("placement %v, want %v", got, want)
	}

	// host-C dies: video falls to its second candidate.
	noC := func(h string) bool { return h != "host-C" }
	got, err = s.Place(noC)
	if err != nil {
		t.Fatal(err)
	}
	if got["video"] != "host-A" {
		t.Fatalf("video placed on %q after C died, want host-A", got["video"])
	}

	// host-B dies: ids has no fallback — the whole placement fails, and
	// the error names the stuck service.
	noB := func(h string) bool { return h != "host-B" }
	if _, err := s.Place(noB); !errors.Is(err, ErrUnplaced) {
		t.Fatalf("placement with dead sole candidate: %v", err)
	}
}

func TestNFRegistry(t *testing.T) {
	reg := NewNFRegistry()
	mk := func() nf.BatchFunction { return nil }
	if err := reg.Register("firewall", mk); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("firewall", mk); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("re-registration: %v", err)
	}
	if _, err := reg.New("nat"); !errors.Is(err, ErrUnknownNF) {
		t.Fatalf("unknown binding: %v", err)
	}
	s := testSpec()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := s.BindCheck(reg); !errors.Is(err, ErrUnknownNF) {
		t.Fatalf("BindCheck with missing bindings: %v", err)
	}
	for _, name := range []string{"ids", "video"} {
		if err := reg.Register(name, mk); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.BindCheck(reg); err != nil {
		t.Fatal(err)
	}
}

func TestDiffDeterminism(t *testing.T) {
	oldS := testSpec()
	if err := oldS.Validate(); err != nil {
		t.Fatal(err)
	}

	mkNew := func() *Spec {
		n := testSpec()
		n.Services = append(n.Services, Service{
			Name: "nat", ID: 4, NF: "nat", Placement: []string{"host-B"},
		})
		n.Services[2].Placement = []string{"host-A", "host-C"}
		n.Services[1].Scale = Bounds{Min: 1, Max: 3}
		n.Services[0].NF = "firewall-v2"
		n.Edges = append(n.Edges, Edge{From: "ids", To: "nat"}, Edge{From: "nat", To: "egress", Default: true})
		n.Links = append(n.Links, Link{A: Endpoint{Host: "host-C", Port: 3}, B: Endpoint{Host: "host-A", Port: 4}})
		return n
	}
	newS := mkNew()
	if err := newS.Validate(); err != nil {
		t.Fatal(err)
	}
	c := Diff(oldS, newS)

	if !reflect.DeepEqual(c.AddedServices, []string{"nat"}) {
		t.Fatalf("added services %v", c.AddedServices)
	}
	if len(c.Placement) != 1 || c.Placement[0].Service != "video" {
		t.Fatalf("placement changes %v", c.Placement)
	}
	if len(c.Bounds) != 1 || c.Bounds[0].Service != "ids" || c.Bounds[0].To.Max != 3 {
		t.Fatalf("bounds changes %v", c.Bounds)
	}
	if len(c.NFs) != 1 || c.NFs[0].Service != "firewall" {
		t.Fatalf("nf changes %v", c.NFs)
	}
	if len(c.AddedEdges) != 2 || len(c.AddedLinks) != 1 {
		t.Fatalf("edges %v links %v", c.AddedEdges, c.AddedLinks)
	}

	// Determinism 1: diffing the same pair again yields the identical set.
	if again := Diff(oldS, newS); !reflect.DeepEqual(c, again) {
		t.Fatalf("repeated diff differs:\n%s\nvs\n%s", c, again)
	}

	// Determinism 2: declaration order must not matter. Reverse every
	// slice in both specs and re-validate; the diff is unchanged.
	shuffle := func(s *Spec) *Spec {
		reverse := func(n int, swap func(i, j int)) {
			for i, j := 0, n-1; i < j; i, j = i+1, j-1 {
				swap(i, j)
			}
		}
		reverse(len(s.Hosts), func(i, j int) { s.Hosts[i], s.Hosts[j] = s.Hosts[j], s.Hosts[i] })
		reverse(len(s.Services), func(i, j int) { s.Services[i], s.Services[j] = s.Services[j], s.Services[i] })
		reverse(len(s.Edges), func(i, j int) { s.Edges[i], s.Edges[j] = s.Edges[j], s.Edges[i] })
		reverse(len(s.Links), func(i, j int) { s.Links[i], s.Links[j] = s.Links[j], s.Links[i] })
		// Links may also flip their endpoints — canonicalization absorbs it.
		for i := range s.Links {
			s.Links[i].A, s.Links[i].B = s.Links[i].B, s.Links[i].A
		}
		return s
	}
	oldR := shuffle(testSpec())
	if err := oldR.Validate(); err != nil {
		t.Fatal(err)
	}
	newR := shuffle(mkNew())
	if err := newR.Validate(); err != nil {
		t.Fatal(err)
	}
	if shuffled := Diff(oldR, newR); !reflect.DeepEqual(c, shuffled) {
		t.Fatalf("declaration order changed the diff:\n%s\nvs\n%s", c, shuffled)
	}

	// Empty diff for identical specs (validated so bounds normalize).
	same := testSpec()
	if err := same.Validate(); err != nil {
		t.Fatal(err)
	}
	if c := Diff(oldS, same); !c.Empty() {
		t.Fatalf("identical specs diffed non-empty: %s", c)
	}
	if got := Diff(oldS, same).String(); got != "(no changes)" {
		t.Fatalf("empty diff renders %q", got)
	}
}

func TestDiffHostAndTopologyChanges(t *testing.T) {
	oldS := testSpec()
	newS := testSpec()
	newS.Hosts = append(newS.Hosts, Host{Name: "host-D", Datapath: 4})
	newS.Hosts[2].Datapath = 9 // host-C re-keyed: removed + added
	newS.Ingress.Port = 5
	newS.EgressPort = 6
	c := Diff(oldS, newS)
	if !reflect.DeepEqual(c.AddedHosts, []string{"host-C", "host-D"}) {
		t.Fatalf("added hosts %v", c.AddedHosts)
	}
	if !reflect.DeepEqual(c.RemovedHosts, []string{"host-C"}) {
		t.Fatalf("removed hosts %v", c.RemovedHosts)
	}
	if !c.IngressChanged || !c.EgressChanged {
		t.Fatalf("ingress/egress change not detected: %+v", c)
	}
	if c.Empty() {
		t.Fatal("change set reported empty")
	}
}
