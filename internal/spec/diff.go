package spec

// Diffing two spec generations into a typed change set. The change set
// is what operators review (sdnfv-ctl diff), what apply responses
// report, and what the reconcile loop uses to know which parts of the
// cluster a new generation touches. Output ordering is deterministic
// (sorted by name) regardless of declaration order in either spec, so
// the same pair of specs always renders the same diff.

import (
	"fmt"
	"sort"
	"strings"
)

// PlacementChange records a service whose candidate host list changed.
type PlacementChange struct {
	Service string   `json:"service"`
	From    []string `json:"from"`
	To      []string `json:"to"`
}

// BoundsChange records a service whose autoscale bounds changed.
type BoundsChange struct {
	Service string `json:"service"`
	From    Bounds `json:"from"`
	To      Bounds `json:"to"`
}

// NFChange records a service whose NF binding (or read-only marking)
// changed.
type NFChange struct {
	Service string `json:"service"`
	From    string `json:"from"`
	To      string `json:"to"`
}

// EdgeRef identifies one service-graph edge in a change set.
type EdgeRef struct {
	From    string `json:"from"`
	To      string `json:"to"`
	Default bool   `json:"default,omitempty"`
}

// LinkRef identifies one link in a change set, endpoints in canonical
// order.
type LinkRef struct {
	A Endpoint `json:"a"`
	B Endpoint `json:"b"`
}

// ChangeSet is the typed difference between two spec generations.
type ChangeSet struct {
	AddedHosts      []string          `json:"added_hosts,omitempty"`
	RemovedHosts    []string          `json:"removed_hosts,omitempty"`
	AddedServices   []string          `json:"added_services,omitempty"`
	RemovedServices []string          `json:"removed_services,omitempty"`
	Placement       []PlacementChange `json:"placement,omitempty"`
	Bounds          []BoundsChange    `json:"bounds,omitempty"`
	NFs             []NFChange        `json:"nfs,omitempty"`
	AddedEdges      []EdgeRef         `json:"added_edges,omitempty"`
	RemovedEdges    []EdgeRef         `json:"removed_edges,omitempty"`
	AddedLinks      []LinkRef         `json:"added_links,omitempty"`
	RemovedLinks    []LinkRef         `json:"removed_links,omitempty"`
	IngressChanged  bool              `json:"ingress_changed,omitempty"`
	EgressChanged   bool              `json:"egress_changed,omitempty"`
	// FlowTimeoutsChanged is set when the spec-wide or any surviving
	// service's flow_timeouts stanza differs. Timeouts apply at rule
	// install time, so existing rules keep their old lease until they
	// churn; the reconciler treats this as host-config drift.
	FlowTimeoutsChanged bool `json:"flow_timeouts_changed,omitempty"`
}

// Empty reports whether the change set contains no changes.
func (c *ChangeSet) Empty() bool {
	return len(c.AddedHosts) == 0 && len(c.RemovedHosts) == 0 &&
		len(c.AddedServices) == 0 && len(c.RemovedServices) == 0 &&
		len(c.Placement) == 0 && len(c.Bounds) == 0 && len(c.NFs) == 0 &&
		len(c.AddedEdges) == 0 && len(c.RemovedEdges) == 0 &&
		len(c.AddedLinks) == 0 && len(c.RemovedLinks) == 0 &&
		!c.IngressChanged && !c.EgressChanged && !c.FlowTimeoutsChanged
}

// Summary renders the change set as human-readable lines, one per
// change, in a stable order.
func (c *ChangeSet) Summary() []string {
	var out []string
	for _, h := range c.AddedHosts {
		out = append(out, "+ host "+h)
	}
	for _, h := range c.RemovedHosts {
		out = append(out, "- host "+h)
	}
	for _, s := range c.AddedServices {
		out = append(out, "+ service "+s)
	}
	for _, s := range c.RemovedServices {
		out = append(out, "- service "+s)
	}
	for _, p := range c.Placement {
		out = append(out, fmt.Sprintf("~ placement %s: %v -> %v", p.Service, p.From, p.To))
	}
	for _, b := range c.Bounds {
		out = append(out, fmt.Sprintf("~ scale %s: [%d,%d] -> [%d,%d]",
			b.Service, b.From.Min, b.From.Max, b.To.Min, b.To.Max))
	}
	for _, n := range c.NFs {
		out = append(out, fmt.Sprintf("~ nf %s: %s -> %s", n.Service, n.From, n.To))
	}
	for _, e := range c.AddedEdges {
		out = append(out, "+ edge "+edgeLabel(e))
	}
	for _, e := range c.RemovedEdges {
		out = append(out, "- edge "+edgeLabel(e))
	}
	for _, l := range c.AddedLinks {
		out = append(out, "+ link "+linkLabel(l))
	}
	for _, l := range c.RemovedLinks {
		out = append(out, "- link "+linkLabel(l))
	}
	if c.IngressChanged {
		out = append(out, "~ ingress")
	}
	if c.EgressChanged {
		out = append(out, "~ egress port")
	}
	if c.FlowTimeoutsChanged {
		out = append(out, "~ flow timeouts")
	}
	return out
}

// String renders the summary joined by newlines ("(no changes)" when
// empty).
func (c *ChangeSet) String() string {
	lines := c.Summary()
	if len(lines) == 0 {
		return "(no changes)"
	}
	return strings.Join(lines, "\n")
}

func edgeLabel(e EdgeRef) string {
	l := e.From + "->" + e.To
	if e.Default {
		l += " (default)"
	}
	return l
}

func linkLabel(l LinkRef) string {
	return fmt.Sprintf("%s:%d<->%s:%d", l.A.Host, l.A.Port, l.B.Host, l.B.Port)
}

// canonLink orders a link's endpoints deterministically so the same
// wire declared in either direction diffs as the same link.
func canonLink(l Link) LinkRef {
	a, b := l.A, l.B
	if b.Host < a.Host || (b.Host == a.Host && b.Port < a.Port) {
		a, b = b, a
	}
	return LinkRef{A: a, B: b}
}

// Diff computes the typed change set turning old into new. Both specs
// must already have passed Validate (Diff relies on name uniqueness).
func Diff(oldSpec, newSpec *Spec) *ChangeSet {
	c := &ChangeSet{}

	oldHosts := map[string]Host{}
	for _, h := range oldSpec.Hosts {
		oldHosts[h.Name] = h
	}
	newHosts := map[string]Host{}
	for _, h := range newSpec.Hosts {
		newHosts[h.Name] = h
	}
	for name, nh := range newHosts {
		oh, ok := oldHosts[name]
		if !ok || oh.Datapath != nh.Datapath {
			c.AddedHosts = append(c.AddedHosts, name)
		}
	}
	for name, oh := range oldHosts {
		nh, ok := newHosts[name]
		if !ok || nh.Datapath != oh.Datapath {
			c.RemovedHosts = append(c.RemovedHosts, name)
		}
	}
	sort.Strings(c.AddedHosts)
	sort.Strings(c.RemovedHosts)

	oldSvcs := map[string]Service{}
	for _, sv := range oldSpec.Services {
		oldSvcs[sv.Name] = sv
	}
	newSvcs := map[string]Service{}
	for _, sv := range newSpec.Services {
		newSvcs[sv.Name] = sv
	}
	for name, nsv := range newSvcs {
		osv, ok := oldSvcs[name]
		if !ok || osv.ID != nsv.ID {
			// An id change re-scopes every rule: treat as remove+add.
			c.AddedServices = append(c.AddedServices, name)
			continue
		}
		if !equalStrings(osv.Placement, nsv.Placement) {
			c.Placement = append(c.Placement, PlacementChange{
				Service: name,
				From:    append([]string(nil), osv.Placement...),
				To:      append([]string(nil), nsv.Placement...),
			})
		}
		if osv.Scale != nsv.Scale {
			c.Bounds = append(c.Bounds, BoundsChange{Service: name, From: osv.Scale, To: nsv.Scale})
		}
		if osv.NF != nsv.NF || osv.ReadOnly != nsv.ReadOnly {
			c.NFs = append(c.NFs, NFChange{Service: name, From: nfLabel(osv), To: nfLabel(nsv)})
		}
		if !equalFlowTimeouts(osv.FlowTimeouts, nsv.FlowTimeouts) {
			c.FlowTimeoutsChanged = true
		}
	}
	for name, osv := range oldSvcs {
		nsv, ok := newSvcs[name]
		if !ok || nsv.ID != osv.ID {
			c.RemovedServices = append(c.RemovedServices, name)
		}
	}
	sort.Strings(c.AddedServices)
	sort.Strings(c.RemovedServices)
	sort.Slice(c.Placement, func(i, j int) bool { return c.Placement[i].Service < c.Placement[j].Service })
	sort.Slice(c.Bounds, func(i, j int) bool { return c.Bounds[i].Service < c.Bounds[j].Service })
	sort.Slice(c.NFs, func(i, j int) bool { return c.NFs[i].Service < c.NFs[j].Service })

	oldEdges := map[EdgeRef]bool{}
	for _, e := range oldSpec.Edges {
		oldEdges[EdgeRef(e)] = true
	}
	newEdges := map[EdgeRef]bool{}
	for _, e := range newSpec.Edges {
		newEdges[EdgeRef(e)] = true
	}
	for e := range newEdges {
		if !oldEdges[e] {
			c.AddedEdges = append(c.AddedEdges, e)
		}
	}
	for e := range oldEdges {
		if !newEdges[e] {
			c.RemovedEdges = append(c.RemovedEdges, e)
		}
	}
	sortEdges(c.AddedEdges)
	sortEdges(c.RemovedEdges)

	oldLinks := map[LinkRef]bool{}
	for _, l := range oldSpec.Links {
		oldLinks[canonLink(l)] = true
	}
	newLinks := map[LinkRef]bool{}
	for _, l := range newSpec.Links {
		newLinks[canonLink(l)] = true
	}
	for l := range newLinks {
		if !oldLinks[l] {
			c.AddedLinks = append(c.AddedLinks, l)
		}
	}
	for l := range oldLinks {
		if !newLinks[l] {
			c.RemovedLinks = append(c.RemovedLinks, l)
		}
	}
	sortLinks(c.AddedLinks)
	sortLinks(c.RemovedLinks)

	c.IngressChanged = oldSpec.Ingress != newSpec.Ingress
	c.EgressChanged = oldSpec.EgressPort != newSpec.EgressPort
	if !equalFlowTimeouts(oldSpec.FlowTimeouts, newSpec.FlowTimeouts) {
		c.FlowTimeoutsChanged = true
	}
	return c
}

// equalFlowTimeouts compares two optional stanzas by value; nil equals
// only nil (an explicit all-zero stanza is a deliberate statement).
func equalFlowTimeouts(a, b *FlowTimeouts) bool {
	if a == nil || b == nil {
		return a == b
	}
	return *a == *b
}

func nfLabel(sv Service) string {
	if sv.ReadOnly {
		return sv.NF + " (ro)"
	}
	return sv.NF
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sortEdges(es []EdgeRef) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].From != es[j].From {
			return es[i].From < es[j].From
		}
		if es[i].To != es[j].To {
			return es[i].To < es[j].To
		}
		return !es[i].Default && es[j].Default
	})
}

func sortLinks(ls []LinkRef) {
	sort.Slice(ls, func(i, j int) bool {
		if ls[i].A != ls[j].A {
			return ls[i].A.Host < ls[j].A.Host ||
				(ls[i].A.Host == ls[j].A.Host && ls[i].A.Port < ls[j].A.Port)
		}
		return ls[i].B.Host < ls[j].B.Host ||
			(ls[i].B.Host == ls[j].B.Host && ls[i].B.Port < ls[j].B.Port)
	})
}
