package cluster

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sdnfv/internal/app"
	"sdnfv/internal/control"
	"sdnfv/internal/dataplane"
	"sdnfv/internal/flowtable"
	"sdnfv/internal/graph"
	"sdnfv/internal/nf"
	"sdnfv/internal/traffic"
)

const (
	dpLeft  control.DatapathID  = 1
	dpRight control.DatapathID  = 2
	svcL    flowtable.ServiceID = 10
	svcR    flowtable.ServiceID = 20
)

// tally counts packets per flow in the engine-owned store.
type tally struct{}

func (tally) Name() string   { return "tally" }
func (tally) ReadOnly() bool { return true }
func (tally) ProcessBatch(ctx *nf.Context, batch []nf.Packet, _ []nf.Decision) {
	fs := ctx.FlowState()
	for i := range batch {
		prev, _ := fs.Get(batch[i].Key)
		n, _ := prev.(uint64)
		fs.Set(batch[i].Key, n+1)
	}
}

// twoHostFabric builds left(svcL) → link → right(svcR) → egress with the
// app compiler producing both host tables from one global graph.
func twoHostFabric(t *testing.T) (*Fabric, *app.Deployment, map[control.DatapathID]*dataplane.Host) {
	t.Helper()
	g := graph.New("two-host")
	if err := g.AddVertex(graph.Vertex{Service: svcL, Name: "left", ReadOnly: true}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddVertex(graph.Vertex{Service: svcR, Name: "right", ReadOnly: true}); err != nil {
		t.Fatal(err)
	}
	for _, e := range []struct {
		from, to flowtable.ServiceID
	}{{graph.Source, svcL}, {svcL, svcR}, {svcR, graph.Sink}} {
		if err := g.AddEdge(e.from, e.to, true); err != nil {
			t.Fatal(err)
		}
	}

	f := New()
	hosts := map[control.DatapathID]*dataplane.Host{}
	for _, dp := range []control.DatapathID{dpLeft, dpRight} {
		h := dataplane.NewHost(dataplane.Config{PoolSize: 1024, RingSize: 256, TXThreads: 1})
		hosts[dp] = h
		if err := f.AddHost(dp, "h", h); err != nil {
			t.Fatal(err)
		}
	}
	link, err := f.Connect(dpLeft, 2, dpRight, 2, LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	dep := &app.Deployment{
		Graph:   g,
		Assign:  map[flowtable.ServiceID]control.DatapathID{svcL: dpLeft, svcR: dpRight},
		Ingress: dpLeft, IngressPort: 0, EgressPort: 1,
		Channels: map[app.HostPair][]app.Channel{
			{Src: dpLeft, Dst: dpRight}: {link.Channel()},
		},
	}
	tables, err := dep.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Install(tables); err != nil {
		t.Fatal(err)
	}
	if _, err := hosts[dpLeft].AddNF(svcL, tally{}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := hosts[dpRight].AddNF(svcR, tally{}, 0); err != nil {
		t.Fatal(err)
	}
	return f, dep, hosts
}

// TestTwoHostAccounting drives concurrent traffic through a 2-host
// fabric under the race detector and requires exact packet accounting on
// both hosts: every admitted frame lands in exactly one of tx / drops /
// overflows / txdrops, frames refused between hosts are the link's
// drops, and neither pool leaks a buffer.
func TestTwoHostAccounting(t *testing.T) {
	f, _, hosts := twoHostFabric(t)
	var delivered atomic.Uint64
	hosts[dpRight].BindPort(1, func(_ int, _ []byte, _ *dataplane.Desc) { delivered.Add(1) })
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	defer f.Stop()

	const (
		injectors = 4
		perInj    = 2000
	)
	var sent atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < injectors; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			factory := traffic.NewFactory()
			for i := 0; i < perInj; i++ {
				frame, err := factory.Frame(traffic.Flow(w*64+i%16, 256, 0), 0)
				if err != nil {
					t.Error(err)
					return
				}
				for {
					if err := f.Inject(dpLeft, 0, frame); err == nil {
						sent.Add(1)
						break
					}
					time.Sleep(time.Microsecond)
				}
			}
		}(w)
	}
	wg.Wait()
	if !f.WaitIdle(10 * time.Second) {
		t.Fatalf("cluster not idle: %+v / %+v", hosts[dpLeft].Pool().Stats(), hosts[dpRight].Pool().Stats())
	}

	want := uint64(injectors * perInj)
	if sent.Load() != want {
		t.Fatalf("sent %d, want %d", sent.Load(), want)
	}
	link := f.Links()[0]
	ls := link.Stats()
	for dp, h := range hosts {
		st := h.Stats()
		if st.RxPackets != st.TxPackets+st.Drops+st.Overflows+st.TxDrops {
			t.Fatalf("host %s accounting: rx=%d tx=%d drops=%d overflows=%d txdrops=%d",
				dp, st.RxPackets, st.TxPackets, st.Drops, st.Overflows, st.TxDrops)
		}
		if st.Pool.InUse != 0 {
			t.Fatalf("host %s pool leak: %+v", dp, st.Pool)
		}
	}
	l, r := hosts[dpLeft].Stats(), hosts[dpRight].Stats()
	// Everything admitted on the left either crossed the link or was
	// shed before the link; everything that crossed was admitted on the
	// right (the link counts its own refusals).
	if l.RxPackets != want {
		t.Fatalf("left rx=%d, want %d", l.RxPackets, want)
	}
	crossed := l.TxPackets // left's only egress is the link port
	if ls.TxFrames+ls.Drops != crossed {
		t.Fatalf("link frames %d + drops %d != left tx %d", ls.TxFrames, ls.Drops, crossed)
	}
	if r.RxPackets != ls.TxFrames {
		t.Fatalf("right rx=%d, link delivered %d", r.RxPackets, ls.TxFrames)
	}
	if got := delivered.Load(); got != r.TxPackets {
		t.Fatalf("delivered %d != right tx %d", got, r.TxPackets)
	}
}

// TestShapedLinkDelay checks that a shaped link imposes its propagation
// delay and still delivers everything.
func TestShapedLinkDelay(t *testing.T) {
	f := New()
	h1 := dataplane.NewHost(dataplane.Config{PoolSize: 256, TXThreads: 1})
	h2 := dataplane.NewHost(dataplane.Config{PoolSize: 256, TXThreads: 1})
	if err := f.AddHost(1, "a", h1); err != nil {
		t.Fatal(err)
	}
	if err := f.AddHost(2, "b", h2); err != nil {
		t.Fatal(err)
	}
	const delay = 2 * time.Millisecond
	if _, err := f.Connect(1, 2, 2, 0, LinkConfig{RateBps: 1e9, Delay: delay}); err != nil {
		t.Fatal(err)
	}
	mustAdd := func(h *dataplane.Host, r flowtable.Rule) {
		t.Helper()
		if _, err := h.Table().Add(r); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(h1, flowtable.Rule{Scope: flowtable.Port(0), Match: flowtable.MatchAll,
		Actions: []flowtable.Action{flowtable.Out(2)}})
	mustAdd(h2, flowtable.Rule{Scope: flowtable.Port(0), Match: flowtable.MatchAll,
		Actions: []flowtable.Action{flowtable.Out(1)}})
	var got atomic.Uint64
	h2.BindPort(1, func(_ int, _ []byte, _ *dataplane.Desc) { got.Add(1) })
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	defer f.Stop()

	factory := traffic.NewFactory()
	frame, err := factory.Frame(traffic.Flow(1, 256, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := f.Inject(1, 0, frame); err != nil {
			t.Fatal(err)
		}
	}
	if !f.WaitIdle(10 * time.Second) {
		t.Fatal("not idle")
	}
	elapsed := time.Since(start)
	if got.Load() != n {
		t.Fatalf("delivered %d/%d", got.Load(), n)
	}
	if elapsed < delay {
		t.Fatalf("delivered in %v, faster than the %v propagation delay", elapsed, delay)
	}
	// Propagation pipelines: n frames take ~serialization + one delay,
	// nowhere near n × delay (the serialized-delay regression).
	if elapsed > time.Duration(n)*delay/2 {
		t.Fatalf("delivered in %v — delay is serialized per frame, not pipelined", elapsed)
	}
	if ab := f.Links()[0].Stats(); ab.TxFrames != n || ab.Drops != 0 {
		t.Fatalf("link stats: %+v", ab)
	}
}

// TestUpdateDefaultConstrained verifies the downstream applier refuses
// an action the host's rules do not already list (§3.4).
func TestUpdateDefaultConstrained(t *testing.T) {
	f, _, hosts := twoHostFabric(t)
	_ = hosts
	// svcL's rule lists only the link egress; forwarding to svcR locally
	// is not an installed action on the left host.
	if err := f.UpdateDefault(dpLeft, svcL, flowtable.MatchAll, flowtable.Forward(svcR)); err == nil {
		t.Fatal("constrained update accepted an unlisted action")
	}
	// The listed action is accepted.
	link := f.Links()[0]
	if err := f.UpdateDefault(dpLeft, svcL, flowtable.MatchAll, flowtable.Out(link.OutPort)); err != nil {
		t.Fatal(err)
	}
	if err := f.UpdateDefault(99, svcL, flowtable.MatchAll, flowtable.Drop()); err == nil {
		t.Fatal("unknown datapath accepted")
	}
}

// TestKillHost is the chaos primitive's contract: the victim goes dead
// (Alive false, Start will not revive it), frames wired toward it count
// as link drops instead of vanishing, and the survivor's exact
// accounting still holds.
func TestKillHost(t *testing.T) {
	f, _, hosts := twoHostFabric(t)
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	defer f.Stop()

	if !f.Alive(dpLeft) || !f.Alive(dpRight) {
		t.Fatal("fresh hosts not alive")
	}
	if err := f.KillHost(dpRight); err != nil {
		t.Fatal(err)
	}
	if f.Alive(dpRight) {
		t.Fatal("killed host still alive")
	}
	if err := f.KillHost(dpRight); err == nil {
		t.Fatal("double kill accepted")
	}
	if err := f.KillHost(99); err == nil {
		t.Fatal("unknown victim accepted")
	}

	// Traffic still enters the survivor; the dead peer refuses delivery
	// and the wire counts every refusal.
	factory := traffic.NewFactory()
	const n = 200
	sent := 0
	for i := 0; i < n; i++ {
		frame, err := factory.Frame(traffic.Flow(i%16, 256, 0), 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Inject(dpLeft, 0, frame); err == nil {
			sent++
		}
	}
	if !f.WaitIdle(10 * time.Second) {
		t.Fatalf("survivor not idle: %+v", hosts[dpLeft].Pool().Stats())
	}
	l := hosts[dpLeft].Stats()
	if l.RxPackets != l.TxPackets+l.Drops+l.Overflows+l.TxDrops {
		t.Fatalf("survivor accounting: %+v", l)
	}
	ls := f.Links()[0].Stats()
	if ls.TxFrames != 0 {
		t.Fatalf("dead host accepted %d frames", ls.TxFrames)
	}
	if ls.Drops != l.TxPackets {
		t.Fatalf("link drops %d != survivor tx %d", ls.Drops, l.TxPackets)
	}

	// Start skips the corpse (and must not error on a half-dead fabric).
	hosts[dpLeft].Stop()
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
}

// TestReplaceRules swaps a host's installed rule set atomically enough
// for the reconciler: old ids gone, new rules in force, returned ids
// usable for the next swap.
func TestReplaceRules(t *testing.T) {
	f, _, hosts := twoHostFabric(t)
	tbl := hosts[dpLeft].Table()
	before := tbl.Len()

	ids, err := f.ReplaceRules(dpLeft, nil, []flowtable.Rule{
		{Scope: flowtable.Port(7), Match: flowtable.MatchAll, Actions: []flowtable.Action{flowtable.Forward(svcL)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || tbl.Len() != before+1 {
		t.Fatalf("install: ids=%v len=%d (before %d)", ids, tbl.Len(), before)
	}

	ids2, err := f.ReplaceRules(dpLeft, ids, []flowtable.Rule{
		{Scope: flowtable.Port(8), Match: flowtable.MatchAll, Actions: []flowtable.Action{flowtable.Forward(svcL)}},
		{Scope: flowtable.Port(9), Match: flowtable.MatchAll, Actions: []flowtable.Action{flowtable.Forward(svcL)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids2) != 2 || tbl.Len() != before+2 {
		t.Fatalf("swap: ids=%v len=%d (before %d)", ids2, tbl.Len(), before)
	}
	// Deleting already-deleted ids is tolerated; emptying works.
	if _, err := f.ReplaceRules(dpLeft, append(ids, ids2...), nil); err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != before {
		t.Fatalf("clear left %d rules, want %d", tbl.Len(), before)
	}
	if _, err := f.ReplaceRules(99, nil, nil); err == nil {
		t.Fatal("unknown datapath accepted")
	}
}
