// Package cluster is the fabric tying a set of SDNFV NF hosts into one
// data plane (Fig. 2, §3.2: the controller manages a *set* of NF hosts,
// with service chains spanning them). It provides:
//
//   - a host registry keyed by control.DatapathID, with lifecycle
//     (Start/Stop) and aggregate accounting across members;
//   - Links: the inter-host wires. A link binds (hostA, portA) ↔
//     (hostB, portB) through the hosts' per-port egress bindings, so an
//     ActionOut on one host becomes an Inject on its peer. Unshaped
//     links deliver synchronously in the transmitting host's TX thread
//     (zero extra copies — Inject copies into the peer's pool either
//     way); shaped links model capacity and propagation delay with a
//     store-and-forward pacer, netem-style but in wall time;
//   - rule installation for the per-host tables the application
//     compiles from a deployment, and the app.Downstream applier that
//     lets accepted cross-layer messages re-route deployed chains at
//     runtime.
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sdnfv/internal/app"
	"sdnfv/internal/control"
	"sdnfv/internal/dataplane"
	"sdnfv/internal/flowtable"
	"sdnfv/internal/portio"
)

// Errors returned by fabric operations.
var (
	ErrDuplicateHost = errors.New("cluster: datapath already registered")
	ErrUnknownHost   = errors.New("cluster: unknown datapath")
)

// LinkConfig shapes one direction of a link. The zero value is an
// ideal wire: frames are injected into the peer synchronously from the
// transmitting host's TX thread.
type LinkConfig struct {
	// RateBps bounds the link's serialization rate (0 = infinite).
	RateBps float64
	// Delay is the propagation delay added to every frame.
	Delay time.Duration
	// Queue bounds the shaper's transmit queue (default 1024). Frames
	// beyond it are dropped, like a full NIC ring.
	Queue int
}

func (c LinkConfig) shaped() bool { return c.RateBps > 0 || c.Delay > 0 }

// LinkStats is a snapshot of one link direction's counters.
type LinkStats struct {
	// TxFrames/TxBytes count frames delivered into the peer host.
	TxFrames, TxBytes uint64
	// Drops counts frames lost on the wire: shaper queue overflow or
	// the peer refusing the inject (pool exhausted, NIC ring full,
	// host stopped).
	Drops uint64
}

// Link is one direction of an inter-host wire: egress port OutPort on
// the source host delivers to ingress port InPort on the destination.
type Link struct {
	Src, Dst         control.DatapathID
	OutPort, InPort  int
	cfg              LinkConfig
	dst              *dataplane.Host
	frames           chan []byte
	txFrames, drops  atomic.Uint64
	txBytes, pending atomic.Uint64
	done             chan struct{}
	closeOnce        sync.Once
	wg               sync.WaitGroup
}

// Channel returns the link direction as the app compiler's conduit form.
func (l *Link) Channel() app.Channel { return app.Channel{Out: l.OutPort, In: l.InPort} }

// Stats returns the link direction's counters.
func (l *Link) Stats() LinkStats {
	return LinkStats{
		TxFrames: l.txFrames.Load(),
		TxBytes:  l.txBytes.Load(),
		Drops:    l.drops.Load(),
	}
}

// deliver injects one frame into the destination host, counting the
// outcome.
func (l *Link) deliver(frame []byte) {
	if err := l.dst.Inject(l.InPort, frame); err != nil {
		l.drops.Add(1)
		return
	}
	l.txFrames.Add(1)
	l.txBytes.Add(uint64(len(frame)))
}

// shape is the store-and-forward pacer for a shaped link direction: it
// serializes frames at RateBps on a virtual transmit clock (a burst
// queues behind itself without accumulating drift), while propagation
// Delay is applied per frame OFF the pacing loop — frames pipeline in
// flight, so a long-delay link still sustains its full serialization
// rate. Delivery order is preserved: the transmit clock is monotonic
// and the delay constant, so successive timers fire in enqueue order.
func (l *Link) shape() {
	defer l.wg.Done()
	var txClock time.Time
	for {
		select {
		case frame := <-l.frames:
			now := time.Now()
			if txClock.Before(now) {
				txClock = now
			}
			if l.cfg.RateBps > 0 {
				ser := time.Duration(float64(len(frame)*8) / l.cfg.RateBps * float64(time.Second))
				txClock = txClock.Add(ser)
				// Pace serialization only; the next frame may start
				// serializing while this one propagates.
				if wait := time.Until(txClock); wait > 0 {
					time.Sleep(wait)
				}
			}
			if l.cfg.Delay > 0 {
				l.wg.Add(1)
				time.AfterFunc(l.cfg.Delay, func() {
					defer l.wg.Done()
					l.deliver(frame)
					l.pending.Add(^uint64(0))
				})
			} else {
				l.deliver(frame)
				l.pending.Add(^uint64(0))
			}
		case <-l.done:
			// Frames still queued at teardown are lost on the wire
			// (in-flight propagation timers still deliver; Stop waits
			// for them via the WaitGroup).
			for {
				select {
				case <-l.frames:
					l.drops.Add(1)
					l.pending.Add(^uint64(0))
				default:
					return
				}
			}
		}
	}
}

// member is one registered host.
type member struct {
	name string
	host *dataplane.Host
	// down marks a host killed by KillHost: it stays registered (its
	// links keep counting refused deliveries as drops, its final stats
	// stay readable) but Start/Stop skip it and Alive reports false —
	// the reconcile observer's liveness signal.
	down bool
}

// Fabric is the cluster: registered hosts plus the links between them.
type Fabric struct {
	mu    sync.Mutex
	hosts map[control.DatapathID]*member
	links []*Link
	wires []*portio.Binding
}

// New builds an empty fabric.
func New() *Fabric {
	return &Fabric{hosts: make(map[control.DatapathID]*member)}
}

// AddHost registers h as datapath dp under the given name.
func (f *Fabric) AddHost(dp control.DatapathID, name string, h *dataplane.Host) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.hosts[dp]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicateHost, dp)
	}
	f.hosts[dp] = &member{name: name, host: h}
	return nil
}

// Host returns the registered host for dp.
func (f *Fabric) Host(dp control.DatapathID) (*dataplane.Host, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	m, ok := f.hosts[dp]
	if !ok {
		return nil, false
	}
	return m.host, true
}

// HostName returns the registered name for dp ("" when unknown).
func (f *Fabric) HostName(dp control.DatapathID) string {
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.hosts[dp]; ok {
		return m.name
	}
	return ""
}

// Hosts lists registered datapaths, ascending.
func (f *Fabric) Hosts() []control.DatapathID {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]control.DatapathID, 0, len(f.hosts))
	for dp := range f.hosts {
		out = append(out, dp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// KillHost is the chaos primitive: it stops dp's host and marks the
// member dead. The host stays registered — frames links deliver toward
// it are refused and counted as link drops, and its last counters stay
// readable — but Alive reports false, Start will not revive it, and the
// fabric's idle check no longer consults it. Killing an unknown or
// already-dead host is an error (the caller meant a different victim).
func (f *Fabric) KillHost(dp control.DatapathID) error {
	f.mu.Lock()
	m, ok := f.hosts[dp]
	if ok && m.down {
		f.mu.Unlock()
		return fmt.Errorf("%w: %s already dead", ErrUnknownHost, dp)
	}
	if ok {
		m.down = true
	}
	f.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownHost, dp)
	}
	// Stop outside the lock: it waits for the host's TX threads, which
	// may be mid-delivery into a peer.
	m.host.Stop()
	return nil
}

// Alive reports whether dp is registered and not killed.
func (f *Fabric) Alive(dp control.DatapathID) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	m, ok := f.hosts[dp]
	return ok && !m.down
}

// Connect wires one direction: frames src transmits out outPort arrive
// on dst's inPort. The binding goes through the source host's per-port
// egress table, so its packet path stays lock-free; an unshaped link's
// delivery is the peer's Inject, called synchronously from the
// transmitting TX thread.
func (f *Fabric) Connect(src control.DatapathID, outPort int, dst control.DatapathID, inPort int, cfg LinkConfig) (*Link, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	sm, ok := f.hosts[src]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownHost, src)
	}
	dm, ok := f.hosts[dst]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownHost, dst)
	}
	if cfg.Queue <= 0 {
		cfg.Queue = 1024
	}
	l := &Link{
		Src: src, Dst: dst, OutPort: outPort, InPort: inPort,
		cfg: cfg, dst: dm.host,
	}
	if cfg.shaped() {
		l.frames = make(chan []byte, cfg.Queue)
		l.done = make(chan struct{})
		l.wg.Add(1)
		go l.shape()
		sm.host.BindPort(outPort, func(_ int, data []byte, _ *dataplane.Desc) {
			// The pool buffer is only valid during the sink call; the
			// shaper owns a private copy.
			cp := append([]byte(nil), data...)
			select {
			case l.frames <- cp:
				l.pending.Add(1)
			default:
				l.drops.Add(1)
			}
		})
	} else {
		sm.host.BindPort(outPort, func(_ int, data []byte, _ *dataplane.Desc) {
			l.deliver(data)
		})
	}
	f.links = append(f.links, l)
	return l, nil
}

// BindWire attaches a portio driver behind port on datapath dp: the
// member host's egress out that port goes onto the driver's wire, and
// frames the driver receives enter the host's driver ingress (counted
// under the RxDrops discipline). This is how a fabric member faces a
// peer in ANOTHER process — the in-process Links above stay available
// for co-located hosts. The binding is closed by Stop after the hosts,
// so queued egress drains onto the wire during teardown.
func (f *Fabric) BindWire(dp control.DatapathID, port int, d portio.PortDriver) (*portio.Binding, error) {
	f.mu.Lock()
	m, ok := f.hosts[dp]
	f.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownHost, dp)
	}
	b, err := portio.Bind(m.host, port, d)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	f.wires = append(f.wires, b)
	f.mu.Unlock()
	return b, nil
}

// Link wires both directions of (a, aPort) ↔ (b, bPort) with the same
// shaping and returns the two directions (a→b, b→a).
func (f *Fabric) Link(a control.DatapathID, aPort int, b control.DatapathID, bPort int, cfg LinkConfig) (ab, ba *Link, err error) {
	ab, err = f.Connect(a, aPort, b, bPort, cfg)
	if err != nil {
		return nil, nil, err
	}
	ba, err = f.Connect(b, bPort, a, aPort, cfg)
	if err != nil {
		return nil, nil, err
	}
	return ab, ba, nil
}

// Links returns every link direction in creation order.
func (f *Fabric) Links() []*Link {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]*Link(nil), f.links...)
}

// Install adds each datapath's rules to its host table in one batched
// write per host — the fabric-side half of a compiled app.Deployment.
// Validation runs before any table is touched, so a map naming an
// unregistered datapath mutates nothing (a retry after fixing it does
// not double-install the valid hosts' rules).
func (f *Fabric) Install(tables map[control.DatapathID][]flowtable.Rule) error {
	for dp := range tables {
		if _, ok := f.Host(dp); !ok {
			return fmt.Errorf("%w: %s has compiled rules", ErrUnknownHost, dp)
		}
	}
	for _, dp := range f.Hosts() {
		rules, ok := tables[dp]
		if !ok || len(rules) == 0 {
			continue
		}
		h, _ := f.Host(dp)
		if _, err := h.Table().AddBatch(rules); err != nil {
			return fmt.Errorf("cluster: install on %s: %w", dp, err)
		}
	}
	return nil
}

// UpdateDefault implements app.Downstream: the application's translated
// per-host rule update lands on the named datapath's flow table,
// constrained to actions the rules already list (§3.4).
func (f *Fabric) UpdateDefault(dp control.DatapathID, scope flowtable.ServiceID, flows flowtable.Match, def flowtable.Action) error {
	h, ok := f.Host(dp)
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownHost, dp)
	}
	if n := h.Table().UpdateDefault(scope, flows, def, true); n == 0 {
		return fmt.Errorf("cluster: no rule at %s on %s allows %s", scope, dp, def)
	}
	return nil
}

// Start starts every live host (datapath order). On failure the hosts
// already started are stopped again.
func (f *Fabric) Start() error {
	dps := f.aliveHosts()
	for i, dp := range dps {
		h, _ := f.Host(dp)
		if err := h.Start(); err != nil {
			for _, prev := range dps[:i] {
				ph, _ := f.Host(prev)
				ph.Stop()
			}
			return fmt.Errorf("cluster: start %s: %w", dp, err)
		}
	}
	return nil
}

// Stop tears the cluster down: hosts first, then the link shapers.
// Host.Stop waits for the TX threads, so after it returns no sink can
// enqueue more frames; the shapers then drain — frames still queued at
// that point (and deliveries the stopped peers refuse) are counted as
// link drops, keeping teardown losses visible and the pending counters
// balanced.
func (f *Fabric) Stop() {
	for _, dp := range f.aliveHosts() {
		h, _ := f.Host(dp)
		h.Stop()
	}
	f.mu.Lock()
	links := append([]*Link(nil), f.links...)
	f.mu.Unlock()
	for _, l := range links {
		if l.done != nil {
			l.closeOnce.Do(func() { close(l.done) })
			l.wg.Wait()
		}
	}
	f.mu.Lock()
	wires := append([]*portio.Binding(nil), f.wires...)
	f.mu.Unlock()
	for _, w := range wires {
		// Binding.Close drains queued egress onto the wire first; late
		// arrivals off the wire count in the host's RxDrops.
		_ = w.Close()
	}
}

// Inject delivers a raw frame into datapath dp on port.
func (f *Fabric) Inject(dp control.DatapathID, port int, frame []byte) error {
	h, ok := f.Host(dp)
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownHost, dp)
	}
	return h.Inject(port, frame)
}

// Stats returns each member host's counter snapshot.
func (f *Fabric) Stats() map[control.DatapathID]dataplane.HostStats {
	out := make(map[control.DatapathID]dataplane.HostStats)
	for _, dp := range f.Hosts() {
		h, _ := f.Host(dp)
		out[dp] = h.Stats()
	}
	return out
}

// WaitIdle blocks until no packet is in flight anywhere in the cluster —
// every host's pool drained AND every shaped link's queue empty — or the
// timeout elapses. A frame can be "between hosts" (released by the
// sender, not yet injected into the receiver), so both conditions must
// hold simultaneously.
func (f *Fabric) WaitIdle(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		if f.idle() {
			return true
		}
		if !time.Now().Before(deadline) {
			return f.idle()
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func (f *Fabric) idle() bool {
	for _, dp := range f.aliveHosts() {
		h, _ := f.Host(dp)
		if h.Pool().Stats().InUse != 0 {
			return false
		}
	}
	for _, l := range f.Links() {
		if l.pending.Load() != 0 {
			return false
		}
	}
	return true
}

// aliveHosts lists live datapaths, ascending.
func (f *Fabric) aliveHosts() []control.DatapathID {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]control.DatapathID, 0, len(f.hosts))
	for dp, m := range f.hosts {
		if !m.down {
			out = append(out, dp)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ReplaceRules swaps one datapath's installed rule set: the previously
// installed rule ids are deleted, then the new rules land in one batched
// write. This is the reconciler's reroute primitive — a moved service
// changes a host's action ports outright, which the constrained
// UpdateDefault path (runtime steering within a compiled table) cannot
// express. Flows resolved against the old rules re-miss and re-resolve
// through the controller, whose application already answers for the new
// generation. Unknown ids are skipped (the rule may have been replaced
// by a concurrent generation); the new rules' ids are returned for the
// next swap.
func (f *Fabric) ReplaceRules(dp control.DatapathID, oldIDs []uint64, rules []flowtable.Rule) ([]uint64, error) {
	h, ok := f.Host(dp)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownHost, dp)
	}
	for _, id := range oldIDs {
		_ = h.Table().Delete(id)
	}
	if len(rules) == 0 {
		return nil, nil
	}
	ids, err := h.Table().AddBatch(rules)
	if err != nil {
		return nil, fmt.Errorf("cluster: replace rules on %s: %w", dp, err)
	}
	return ids, nil
}

var _ app.Downstream = (*Fabric)(nil)
