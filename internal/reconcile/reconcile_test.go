package reconcile

import (
	"container/heap"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sdnfv/internal/flowtable"
	"sdnfv/internal/spec"
)

// manualClock drives the loop in virtual time.
type clockEvent struct {
	at float64
	fn func()
}
type eventHeap []clockEvent

func (h eventHeap) Len() int           { return len(h) }
func (h eventHeap) Less(i, j int) bool { return h[i].at < h[j].at }
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(clockEvent)) }
func (h *eventHeap) Pop() any          { e := (*h)[len(*h)-1]; *h = (*h)[:len(*h)-1]; return e }

type manualClock struct {
	now    float64
	events eventHeap
}

func (c *manualClock) Now() float64 { return c.now }
func (c *manualClock) After(delay float64, fn func()) {
	heap.Push(&c.events, clockEvent{at: c.now + delay, fn: fn})
}

// fakeCluster is observer + actuators in one: a map of live hosts and
// replica counts the actuators mutate, so the loop sees its own effect.
type fakeCluster struct {
	hosts   map[string]*HostState
	bounds  map[string]spec.Bounds // per service, as last actuated
	routed  map[string]string
	actions []string
	// boots delays Place visibility: a successful Place increments
	// pendingBoots; Finish moves them into Replicas (async boot model).
	pendingBoots map[string]int // "svc@host" -> count
	failPlace    error
	failReroute  error
}

func newFakeCluster(hosts ...string) *fakeCluster {
	f := &fakeCluster{
		hosts:        map[string]*HostState{},
		bounds:       map[string]spec.Bounds{},
		pendingBoots: map[string]int{},
	}
	for _, h := range hosts {
		f.hosts[h] = &HostState{Alive: true, Replicas: map[flowtable.ServiceID]int{}}
	}
	return f
}

func (f *fakeCluster) Observe() Observation {
	o := Observation{Hosts: map[string]HostState{}}
	for n, hs := range f.hosts {
		reps := map[flowtable.ServiceID]int{}
		for k, v := range hs.Replicas {
			reps[k] = v
		}
		o.Hosts[n] = HostState{Alive: hs.Alive, Replicas: reps}
	}
	return o
}

func (f *fakeCluster) Place(_ context.Context, sp *spec.Spec, svc spec.Service, host string) error {
	f.actions = append(f.actions, "place "+svc.Name+"@"+host)
	if f.failPlace != nil {
		return f.failPlace
	}
	f.pendingBoots[svc.Name+"@"+host]++
	f.bounds[svc.Name] = svc.Scale
	return nil
}

// finishBoots lands every pending boot (the async launch completing).
func (f *fakeCluster) finishBoots(sp *spec.Spec) {
	for k, n := range f.pendingBoots {
		parts := strings.SplitN(k, "@", 2)
		svc, _ := sp.Service(parts[0])
		if hs, ok := f.hosts[parts[1]]; ok && hs.Alive {
			hs.Replicas[svc.ID] += n
		}
		delete(f.pendingBoots, k)
	}
}

func (f *fakeCluster) Retire(_ context.Context, sp *spec.Spec, svc spec.Service, host string) error {
	f.actions = append(f.actions, "retire "+svc.Name+"@"+host)
	if hs, ok := f.hosts[host]; ok && hs.Replicas[svc.ID] > 0 {
		hs.Replicas[svc.ID]--
	}
	return nil
}

func (f *fakeCluster) Reroute(_ context.Context, sp *spec.Spec, assign map[string]string) error {
	f.actions = append(f.actions, "reroute")
	if f.failReroute != nil {
		return f.failReroute
	}
	f.routed = assign
	return nil
}

func (f *fakeCluster) SetBounds(_ context.Context, sp *spec.Spec, svc spec.Service, host string) error {
	f.actions = append(f.actions, "set-bounds "+svc.Name+"@"+host)
	f.bounds[svc.Name] = svc.Scale
	return nil
}

func (f *fakeCluster) kill(host string) {
	hs := f.hosts[host]
	hs.Alive = false
	hs.Replicas = map[flowtable.ServiceID]int{}
}

func chainSpec() *spec.Spec {
	return &spec.Spec{
		Version: spec.Version,
		Name:    "chain",
		Hosts: []spec.Host{
			{Name: "A", Datapath: 1}, {Name: "B", Datapath: 2}, {Name: "C", Datapath: 3},
		},
		Services: []spec.Service{
			{Name: "fw", ID: 1, NF: "fw", Placement: []string{"A"}},
			{Name: "ids", ID: 2, NF: "ids", Placement: []string{"B", "A"}},
			{Name: "video", ID: 3, NF: "video", Placement: []string{"C", "A"}, Scale: spec.Bounds{Min: 1, Max: 2}},
		},
		Edges: []spec.Edge{
			{From: "ingress", To: "fw", Default: true},
			{From: "fw", To: "ids", Default: true},
			{From: "ids", To: "video", Default: true},
			{From: "video", To: "egress", Default: true},
		},
		Ingress:    spec.IngressSpec{Host: "A", Port: 0},
		EgressPort: 1,
		Links: []spec.Link{
			{A: spec.Endpoint{Host: "A", Port: 2}, B: spec.Endpoint{Host: "B", Port: 2}},
			{A: spec.Endpoint{Host: "B", Port: 3}, B: spec.Endpoint{Host: "C", Port: 2}},
			{A: spec.Endpoint{Host: "B", Port: 4}, B: spec.Endpoint{Host: "A", Port: 3}},
		},
	}
}

func newTestLoop(fc *fakeCluster) (*Reconciler, *manualClock) {
	clk := &manualClock{}
	r := New(Config{IntervalSec: 1, BackoffSec: 1, BackoffMaxSec: 8, PendingSec: 2}, fc, fc, clk)
	return r, clk
}

// tick advances virtual time and runs one reconcile cycle.
func tick(r *Reconciler, clk *manualClock, dt float64) {
	clk.now += dt
	r.TickNow()
}

func TestConvergeFromScratch(t *testing.T) {
	fc := newFakeCluster("A", "B", "C")
	r, clk := newTestLoop(fc)

	gen, cs, err := r.Apply(chainSpec())
	if err != nil {
		t.Fatal(err)
	}
	if gen != 1 {
		t.Fatalf("generation %d", gen)
	}
	if cs.Empty() {
		t.Fatal("first generation diffed empty")
	}

	// Tick 1: places all three services; routing waits for replicas.
	tick(r, clk, 1)
	st := r.Status()
	if st.Converged {
		t.Fatal("converged before anything ran")
	}
	if fc.routed != nil {
		t.Fatal("rerouted before replicas stood")
	}
	// Boots land; tick 2 reroutes; tick 3 observes zero drift.
	fc.finishBoots(r.mustSpec())
	tick(r, clk, 1)
	if fc.routed == nil {
		t.Fatal("no reroute after replicas landed")
	}
	if fc.routed["video"] != "C" {
		t.Fatalf("video routed to %q", fc.routed["video"])
	}
	tick(r, clk, 1)
	st = r.Status()
	if !st.Converged {
		t.Fatalf("not converged: drift=%v lastErr=%q", st.Drift, st.LastError)
	}
	if st.Generation != 1 || len(st.Drift) != 0 {
		t.Fatalf("status %+v", st)
	}
	if st.Placement["ids"] != "B" {
		t.Fatalf("placement %v", st.Placement)
	}
	if fc.bounds["video"] != (spec.Bounds{Min: 1, Max: 2}) {
		t.Fatalf("video bounds %+v", fc.bounds["video"])
	}
}

// mustSpec is a test helper: the active spec, panicking when absent.
func (r *Reconciler) mustSpec() *spec.Spec {
	sp, _ := r.Spec()
	if sp == nil {
		panic("no spec")
	}
	return sp
}

func TestHostDeathReplacesAndReroutes(t *testing.T) {
	fc := newFakeCluster("A", "B", "C")
	r, clk := newTestLoop(fc)
	if _, _, err := r.Apply(chainSpec()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		tick(r, clk, 1)
		fc.finishBoots(r.mustSpec())
	}
	if !r.Status().Converged {
		t.Fatal("setup did not converge")
	}

	// C dies: video must re-place on A (its fallback) and the routing
	// must follow.
	fc.kill("C")
	tick(r, clk, 3) // past the pending TTL of the original place
	st := r.Status()
	if st.Converged {
		t.Fatal("still converged after host death")
	}
	if st.DriftEvents != 1 {
		t.Fatalf("drift events %d", st.DriftEvents)
	}
	fc.finishBoots(r.mustSpec())
	tick(r, clk, 1)
	if fc.routed["video"] != "A" {
		t.Fatalf("video routed to %q after failover", fc.routed["video"])
	}
	tick(r, clk, 1)
	st = r.Status()
	if !st.Converged {
		t.Fatalf("not reconverged: drift=%v", st.Drift)
	}
	if st.LastConvergeSec <= 0 {
		t.Fatalf("convergence latency %v", st.LastConvergeSec)
	}
	if fc.hosts["A"].Replicas[3] != 1 {
		t.Fatalf("video replicas on A = %d", fc.hosts["A"].Replicas[3])
	}
}

func TestPendingSuppressesDoubleBoot(t *testing.T) {
	fc := newFakeCluster("A", "B", "C")
	r, clk := newTestLoop(fc)
	if _, _, err := r.Apply(chainSpec()); err != nil {
		t.Fatal(err)
	}
	tick(r, clk, 1)
	places := 0
	for _, a := range fc.actions {
		if strings.HasPrefix(a, "place") {
			places++
		}
	}
	if places != 3 {
		t.Fatalf("%d places on first tick", places)
	}
	afterFirst := len(fc.actions)
	// Boots have not landed; within the pending TTL no re-place fires.
	tick(r, clk, 1)
	for _, a := range fc.actions[afterFirst:] {
		if strings.HasPrefix(a, "place") {
			t.Fatalf("double boot: %v", fc.actions)
		}
	}
	afterSecond := len(fc.actions)
	// Past the TTL with still no replicas, the place retries.
	tick(r, clk, 2)
	retried := false
	for _, a := range fc.actions[afterSecond:] {
		if strings.HasPrefix(a, "place") {
			retried = true
		}
	}
	if !retried {
		t.Fatalf("no retry after pending TTL: %v", fc.actions)
	}
}

func TestBackoffSchedule(t *testing.T) {
	fc := newFakeCluster("A", "B", "C")
	fc.failPlace = errors.New("no capacity")
	r, clk := newTestLoop(fc)
	if _, _, err := r.Apply(chainSpec()); err != nil {
		t.Fatal(err)
	}

	countPlaces := func() int {
		n := 0
		for _, a := range fc.actions {
			if a == "place fw@A" {
				n++
			}
		}
		return n
	}
	tick(r, clk, 1) // t=1: fails, backoff until t=2
	if countPlaces() != 1 {
		t.Fatalf("places %d", countPlaces())
	}
	tick(r, clk, 0.5) // t=1.5: inside backoff
	if countPlaces() != 1 {
		t.Fatalf("retried inside backoff window: %d", countPlaces())
	}
	tick(r, clk, 1) // t=2.5: retries, fails again, backoff 2s until t=4.5
	if countPlaces() != 2 {
		t.Fatalf("places %d, want 2", countPlaces())
	}
	tick(r, clk, 1.5) // t=4: still inside doubled backoff
	if countPlaces() != 2 {
		t.Fatalf("retried inside doubled window: %d", countPlaces())
	}
	tick(r, clk, 1) // t=5: third try
	if countPlaces() != 3 {
		t.Fatalf("places %d, want 3", countPlaces())
	}
	st := r.Status()
	if st.ActionsFailed != 9 { // 3 services × 3 tries
		t.Fatalf("failed actions %d", st.ActionsFailed)
	}
	if !strings.Contains(st.LastError, "no capacity") {
		t.Fatalf("last error %q", st.LastError)
	}

	// Recovery: clear the failure, let boots land, loop converges and
	// the backoff entries reset.
	fc.failPlace = nil
	tick(r, clk, 4)
	fc.finishBoots(r.mustSpec())
	tick(r, clk, 1)
	tick(r, clk, 1)
	if st := r.Status(); !st.Converged {
		t.Fatalf("no recovery: %+v", st)
	}
}

func TestQueueBound(t *testing.T) {
	fc := newFakeCluster("A", "B", "C")
	clk := &manualClock{}
	// Depth 2: the first tick's drift (3 places + 3 set-bounds deduped
	// into the places... places and bounds are separate keys → 6 raw,
	// reroute withheld) overflows.
	r := New(Config{IntervalSec: 1, QueueDepth: 2, PendingSec: 100}, fc, fc, clk)
	if _, _, err := r.Apply(chainSpec()); err != nil {
		t.Fatal(err)
	}
	tick(r, clk, 1)
	st := r.Status()
	if st.QueueDrops == 0 {
		t.Fatal("no queue drops recorded")
	}
	if len(fc.actions) != 2 {
		t.Fatalf("ran %d actions with depth 2: %v", len(fc.actions), fc.actions)
	}
	// The dropped work is re-derived: subsequent ticks still make
	// progress (places suppressed by pending, bounds actions proceed).
	tick(r, clk, 1)
	if len(fc.actions) <= 2 {
		t.Fatal("dropped drift never re-derived")
	}
}

func TestApplyGenerationBumpAndBoundsDrift(t *testing.T) {
	fc := newFakeCluster("A", "B", "C")
	r, clk := newTestLoop(fc)
	if _, _, err := r.Apply(chainSpec()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		tick(r, clk, 1)
		fc.finishBoots(r.mustSpec())
	}
	if !r.Status().Converged {
		t.Fatal("setup did not converge")
	}

	// Generation 2 widens video's bounds without moving anything: the
	// only drift is a set-bounds, and the loop reconverges.
	s2 := chainSpec()
	s2.Services[2].Scale = spec.Bounds{Min: 1, Max: 4}
	gen, cs, err := r.Apply(s2)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 2 {
		t.Fatalf("generation %d", gen)
	}
	if len(cs.Bounds) != 1 || cs.Bounds[0].Service != "video" {
		t.Fatalf("change set %s", cs)
	}
	if r.Status().Converged {
		t.Fatal("new generation born converged")
	}
	before := len(fc.actions)
	tick(r, clk, 1)
	tick(r, clk, 1)
	st := r.Status()
	if !st.Converged || st.Generation != 2 {
		t.Fatalf("gen 2 not converged: %+v", st)
	}
	if fc.bounds["video"] != (spec.Bounds{Min: 1, Max: 4}) {
		t.Fatalf("bounds not actuated: %+v", fc.bounds["video"])
	}
	for _, a := range fc.actions[before:] {
		if strings.HasPrefix(a, "place") || strings.HasPrefix(a, "retire") {
			t.Fatalf("bounds-only generation moved replicas: %v", fc.actions[before:])
		}
	}

	// An invalid spec is refused without touching the active generation.
	bad := chainSpec()
	bad.Services[0].Placement = []string{"nope"}
	if _, _, err := r.Apply(bad); err == nil {
		t.Fatal("invalid spec applied")
	}
	if _, g := r.Spec(); g != 2 {
		t.Fatalf("generation moved to %d on refused apply", g)
	}
}

func TestStrayReplicasRetired(t *testing.T) {
	fc := newFakeCluster("A", "B", "C")
	r, clk := newTestLoop(fc)
	if _, _, err := r.Apply(chainSpec()); err != nil {
		t.Fatal(err)
	}
	// Seed the desired replicas AND a stray ids replica on C.
	fc.hosts["A"].Replicas[1] = 1
	fc.hosts["B"].Replicas[2] = 1
	fc.hosts["C"].Replicas[3] = 1
	fc.hosts["C"].Replicas[2] = 1
	tick(r, clk, 1)
	if fc.hosts["C"].Replicas[2] != 0 {
		t.Fatalf("stray ids replica survived: %v", fc.hosts["C"].Replicas)
	}
	tick(r, clk, 1)
	if st := r.Status(); !st.Converged {
		t.Fatalf("not converged after stray retire: %+v", st.Drift)
	}
}

func TestStartStopTimerChain(t *testing.T) {
	fc := newFakeCluster("A", "B", "C")
	clk := &manualClock{}
	r := New(Config{IntervalSec: 1}, fc, fc, clk)
	if _, _, err := r.Apply(chainSpec()); err != nil {
		t.Fatal(err)
	}
	r.Start()
	r.Start() // idempotent
	// Fire the scheduled callbacks through virtual time (fixed horizon:
	// each fired tick schedules its successor past it).
	target := clk.now + 3
	for clk.events.Len() > 0 && clk.events[0].at <= target {
		e := heap.Pop(&clk.events).(clockEvent)
		clk.now = e.at
		e.fn()
	}
	if r.Status().Ticks == 0 {
		t.Fatal("timer chain never ticked")
	}
	r.Stop()
	ticks := r.Status().Ticks
	for clk.events.Len() > 0 {
		e := heap.Pop(&clk.events).(clockEvent)
		clk.now = e.at
		e.fn()
	}
	if r.Status().Ticks != ticks {
		t.Fatal("ticks continued after Stop")
	}
}

// TestReconcilerIsColdPath pins the package out of the packet path: no
// file in internal/reconcile may carry the //sdnfv:hotpath directive —
// the loop runs in control-plane time and must never be called per
// packet (the lint fixture set enforces the callgraph side).
func TestReconcilerIsColdPath(t *testing.T) {
	files, err := filepath.Glob("*.go")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			if strings.TrimSpace(line) == "//sdnfv:hotpath" {
				t.Errorf("%s:%d: reconcile code must stay cold-path (found //sdnfv:hotpath)", f, i+1)
			}
		}
	}
}
