// Package reconcile is the controller-style loop that keeps the cluster
// converged on a declarative deployment spec (internal/spec). Where the
// orchestrator's Deploy/Instantiate/Retire are one-shot imperative
// calls, the reconciler owns desired state: each tick it observes the
// cluster (host liveness, per-service replica counts — the same
// registry snapshots telemetry gathers), computes drift against the
// active spec generation, and converges through typed actuators —
// re-placing NFs when a host dies, recompiling the app deployment when
// placement changes, resuming autoscale within spec bounds after
// failover. Failed actions back off exponentially per action key, the
// per-tick work queue is bounded (overflow is dropped and re-derived
// from the next observation, so drops are self-healing), and duplicate
// boots are suppressed while an async launch is still in flight.
package reconcile

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"sdnfv/internal/autoscale"
	"sdnfv/internal/flowtable"
	"sdnfv/internal/spec"
)

// Clock abstracts time for the loop; autoscale's clocks (real and
// virtual) plug in unchanged.
type Clock = autoscale.Clock

// HostState is one host's observed condition.
type HostState struct {
	// Alive reports whether the host is up (dataplane running,
	// reachable). A dead host's replicas are gone with it.
	Alive bool
	// Replicas counts running NF replicas per service scope.
	Replicas map[flowtable.ServiceID]int
}

// Observation is one snapshot of the cluster, keyed by spec host name.
type Observation struct {
	Hosts map[string]HostState
}

// Observer produces cluster snapshots. Implementations read the same
// state telemetry collectors export (cluster fabric membership, host
// Stats) — the reconciler never inspects the data path directly.
type Observer interface {
	Observe() Observation
}

// Actuators is the typed surface the reconciler converges through. All
// calls receive the active spec so implementations can resolve NF
// bindings, link wiring, and autoscale bounds without private copies of
// desired state. Implementations must be safe for repeated invocation:
// the loop re-derives drift every tick and retries failures.
type Actuators interface {
	// Place boots one replica of svc on host (spec bounds configure the
	// service's autoscaler there, resuming it after a failover).
	Place(ctx context.Context, sp *spec.Spec, svc spec.Service, host string) error
	// Retire drains one replica of svc on host (flow-state-safe).
	Retire(ctx context.Context, sp *spec.Spec, svc spec.Service, host string) error
	// Reroute makes the routed topology match assign (service name →
	// host name): recompile the deployment, reinstall changed hosts.
	Reroute(ctx context.Context, sp *spec.Spec, assign map[string]string) error
	// SetBounds applies svc's spec autoscale bounds on host.
	SetBounds(ctx context.Context, sp *spec.Spec, svc spec.Service, host string) error
}

// ActionKind enumerates the reconciler's actuator primitives.
type ActionKind int

// Action kinds, in the order the loop emits them.
const (
	ActionPlace ActionKind = iota
	ActionRetire
	ActionReroute
	ActionSetBounds
)

func (k ActionKind) String() string {
	switch k {
	case ActionPlace:
		return "place"
	case ActionRetire:
		return "retire"
	case ActionReroute:
		return "reroute"
	case ActionSetBounds:
		return "set-bounds"
	}
	return "unknown"
}

// Action is one unit of convergence work.
type Action struct {
	Kind    ActionKind
	Service string // empty for reroute
	Host    string // empty for reroute
	// Assign is the desired routing (reroute only).
	Assign map[string]string
	// Bounds are svc's spec bounds (place / set-bounds).
	Bounds spec.Bounds
}

// Key identifies the action for dedup, backoff, and pending tracking.
func (a Action) Key() string {
	if a.Kind == ActionReroute {
		return "reroute"
	}
	return fmt.Sprintf("%s/%s@%s", a.Kind, a.Service, a.Host)
}

func (a Action) String() string {
	if a.Kind == ActionReroute {
		return "reroute"
	}
	return fmt.Sprintf("%s %s on %s", a.Kind, a.Service, a.Host)
}

// Config tunes the loop. Zero values take the documented defaults.
type Config struct {
	// IntervalSec is the tick period (default 1s).
	IntervalSec float64
	// QueueDepth bounds the per-tick work queue (default 32); excess
	// drift is dropped, counted, and re-derived next tick.
	QueueDepth int
	// BackoffSec is the initial per-action retry delay (default 0.5s),
	// doubling per consecutive failure up to BackoffMaxSec (default 30s).
	BackoffSec    float64
	BackoffMaxSec float64
	// PendingSec suppresses a repeated Place of the same key while an
	// async boot is in flight (default 5s).
	PendingSec float64
}

func (c *Config) fillDefaults() {
	if c.IntervalSec <= 0 {
		c.IntervalSec = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 32
	}
	if c.BackoffSec <= 0 {
		c.BackoffSec = 0.5
	}
	if c.BackoffMaxSec <= 0 {
		c.BackoffMaxSec = 30
	}
	if c.PendingSec <= 0 {
		c.PendingSec = 5
	}
}

type backoffState struct {
	until float64
	delay float64
}

type boundsState struct {
	host string
	b    spec.Bounds
}

// Status is a snapshot of the loop for telemetry (/state/reconcile).
type Status struct {
	// Generation is the active spec generation (0 = none applied).
	Generation uint64 `json:"generation"`
	SpecName   string `json:"spec,omitempty"`
	// Converged reports the last tick observed zero drift.
	Converged bool `json:"converged"`
	// Drift lists the last tick's raw drift actions.
	Drift []string `json:"drift,omitempty"`
	// Pending lists action keys suppressed while a boot is in flight.
	Pending []string `json:"pending,omitempty"`
	// Placement is the routed assignment (service → host) in force.
	Placement map[string]string `json:"placement,omitempty"`
	// LastConvergeSec is how long the last drift episode took to
	// converge (drift first observed → zero drift observed).
	LastConvergeSec float64 `json:"last_converge_sec"`
	LastError       string  `json:"last_error,omitempty"`

	Ticks         uint64 `json:"ticks"`
	DriftEvents   uint64 `json:"drift_events"`
	ActionsOK     uint64 `json:"actions_ok"`
	ActionsFailed uint64 `json:"actions_failed"`
	QueueDrops    uint64 `json:"queue_drops"`
	Generations   uint64 `json:"generations"`
}

// Reconciler runs the loop. Construct with New, Apply a spec, then
// Start (or drive ticks manually with TickNow under a virtual clock).
// Ticks are serial: the timer chain fires one at a time, and manual
// TickNow callers must not overlap calls.
type Reconciler struct {
	cfg   Config
	obs   Observer
	act   Actuators
	clock Clock

	mu       sync.Mutex
	running  bool
	timerGen uint64

	sp  *spec.Spec
	gen uint64

	routed        map[string]string
	appliedBounds map[string]boundsState
	backoff       map[string]backoffState
	pending       map[string]float64

	converged  bool
	driftStart float64
	lastDrift  []string

	ticks         uint64
	driftEvents   uint64
	actionsOK     uint64
	actionsFailed uint64
	queueDrops    uint64
	generations   uint64
	lastConverge  float64
	lastError     string
}

// New builds a reconciler; obs, act, and clock must not be nil.
func New(cfg Config, obs Observer, act Actuators, clock Clock) *Reconciler {
	cfg.fillDefaults()
	return &Reconciler{
		cfg: cfg, obs: obs, act: act, clock: clock,
		appliedBounds: map[string]boundsState{},
		backoff:       map[string]backoffState{},
		pending:       map[string]float64{},
	}
}

// Apply activates a new spec generation. The spec is validated; on
// success the generation number and the typed change set against the
// previous generation are returned, and the loop starts converging the
// cluster toward it from the next tick. Backoff and pending state carry
// over (an in-flight boot is still in flight under the new generation).
func (r *Reconciler) Apply(s *spec.Spec) (uint64, *spec.ChangeSet, error) {
	if err := s.Validate(); err != nil {
		return 0, nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var cs *spec.ChangeSet
	if r.sp != nil {
		cs = spec.Diff(r.sp, s)
	} else {
		cs = spec.Diff(&spec.Spec{Version: spec.Version}, s)
	}
	r.sp = s
	r.gen++
	r.generations++
	// A new generation must prove itself converged.
	r.converged = false
	r.driftStart = r.clock.Now()
	return r.gen, cs, nil
}

// Spec returns the active spec and its generation (nil, 0 before the
// first Apply).
func (r *Reconciler) Spec() (*spec.Spec, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sp, r.gen
}

// Start begins periodic reconciliation every IntervalSec. Stop ends the
// loop; Start may be called again afterwards.
func (r *Reconciler) Start() {
	r.mu.Lock()
	if r.running {
		r.mu.Unlock()
		return
	}
	r.running = true
	r.timerGen++
	gen := r.timerGen
	r.mu.Unlock()
	r.schedule(gen)
}

func (r *Reconciler) schedule(gen uint64) {
	r.clock.After(r.cfg.IntervalSec, func() {
		r.mu.Lock()
		live := r.running && r.timerGen == gen
		r.mu.Unlock()
		if !live {
			return
		}
		r.TickNow()
		r.schedule(gen)
	})
}

// Stop ends the periodic loop (an in-flight tick completes).
func (r *Reconciler) Stop() {
	r.mu.Lock()
	r.running = false
	r.mu.Unlock()
}

// computeDrift derives the raw drift action list from one observation.
// Deterministic: services in spec order, stray hosts sorted. Returns
// the desired assignment alongside (nil when placement is impossible).
func (r *Reconciler) computeDrift(sp *spec.Spec, o Observation) ([]Action, map[string]string, error) {
	alive := func(h string) bool {
		hs, ok := o.Hosts[h]
		return ok && hs.Alive
	}
	assign, err := sp.Place(alive)
	if err != nil {
		return nil, nil, err
	}
	var drift []Action
	for _, svc := range sp.Services {
		h := assign[svc.Name]
		n := o.Hosts[h].Replicas[svc.ID]
		switch {
		case n < svc.Scale.Min:
			drift = append(drift, Action{Kind: ActionPlace, Service: svc.Name, Host: h, Bounds: svc.Scale})
		case n > svc.Scale.Max:
			drift = append(drift, Action{Kind: ActionRetire, Service: svc.Name, Host: h})
		}
		// Strays: replicas on a live host that is not the desired one
		// (a dead host's replicas died with it — nothing to retire).
		var strays []string
		for hn, hs := range o.Hosts {
			if hn != h && hs.Alive && hs.Replicas[svc.ID] > 0 {
				strays = append(strays, hn)
			}
		}
		sort.Strings(strays)
		for _, hn := range strays {
			drift = append(drift, Action{Kind: ActionRetire, Service: svc.Name, Host: hn})
		}
		if ab, ok := r.appliedBounds[svc.Name]; !ok || ab.host != h || ab.b != svc.Scale {
			drift = append(drift, Action{Kind: ActionSetBounds, Service: svc.Name, Host: h, Bounds: svc.Scale})
		}
	}
	if !sameAssign(r.routed, assign) {
		// Reroute is drift the moment the desired routing differs, but
		// it only becomes actionable once every service has a replica
		// standing on its desired host — routing traffic at an empty
		// host would blackhole the chain mid-convergence.
		drift = append(drift, Action{Kind: ActionReroute, Assign: assign})
	}
	return drift, assign, nil
}

// actionable reports whether a drift action may run now (reroute waits
// for replicas; backoff and pending filters are applied by the caller).
func actionable(a Action, sp *spec.Spec, o Observation) bool {
	if a.Kind != ActionReroute {
		return true
	}
	for _, svc := range sp.Services {
		if o.Hosts[a.Assign[svc.Name]].Replicas[svc.ID] < 1 {
			return false
		}
	}
	return true
}

// TickNow runs one observe → diff → converge cycle. Exported so tests
// and experiments can drive the loop deterministically.
func (r *Reconciler) TickNow() {
	o := r.obs.Observe()
	now := r.clock.Now()

	r.mu.Lock()
	r.ticks++
	sp := r.sp
	specGen := r.gen
	if sp == nil {
		r.mu.Unlock()
		return
	}
	drift, _, derr := r.computeDrift(sp, o)
	wasConverged := r.converged
	nowConverged := derr == nil && len(drift) == 0
	if wasConverged && !nowConverged {
		r.driftEvents++
		r.driftStart = now
	}
	if derr != nil {
		r.lastError = derr.Error()
	}
	r.lastDrift = r.lastDrift[:0]
	for _, a := range drift {
		r.lastDrift = append(r.lastDrift, a.String())
	}

	// Build this tick's bounded work queue: dedup by key, skip actions
	// backing off, boots still pending, and the not-yet-actionable
	// reroute; drop (and count) overflow beyond QueueDepth.
	var run []Action
	seen := map[string]bool{}
	for _, a := range drift {
		k := a.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		if b, ok := r.backoff[k]; ok && now < b.until {
			continue
		}
		if exp, ok := r.pending[k]; ok {
			if now < exp {
				continue
			}
			delete(r.pending, k)
		}
		if !actionable(a, sp, o) {
			continue
		}
		if len(run) >= r.cfg.QueueDepth {
			r.queueDrops++
			continue
		}
		run = append(run, a)
	}
	r.mu.Unlock()

	ctx := context.Background()
	for _, a := range run {
		var err error
		switch a.Kind {
		case ActionPlace, ActionRetire, ActionSetBounds:
			svc, ok := sp.Service(a.Service)
			if !ok {
				err = fmt.Errorf("reconcile: unknown service %q", a.Service)
				break
			}
			switch a.Kind {
			case ActionPlace:
				err = r.act.Place(ctx, sp, svc, a.Host)
			case ActionRetire:
				err = r.act.Retire(ctx, sp, svc, a.Host)
			default:
				err = r.act.SetBounds(ctx, sp, svc, a.Host)
			}
		case ActionReroute:
			err = r.act.Reroute(ctx, sp, a.Assign)
		}

		r.mu.Lock()
		k := a.Key()
		if err != nil {
			r.actionsFailed++
			b := r.backoff[k]
			if b.delay == 0 {
				b.delay = r.cfg.BackoffSec
			} else {
				b.delay *= 2
				if b.delay > r.cfg.BackoffMaxSec {
					b.delay = r.cfg.BackoffMaxSec
				}
			}
			b.until = r.clock.Now() + b.delay
			r.backoff[k] = b
			r.lastError = a.String() + ": " + err.Error()
		} else {
			r.actionsOK++
			delete(r.backoff, k)
			switch a.Kind {
			case ActionPlace:
				r.pending[k] = r.clock.Now() + r.cfg.PendingSec
				r.appliedBounds[a.Service] = boundsState{host: a.Host, b: a.Bounds}
			case ActionSetBounds:
				r.appliedBounds[a.Service] = boundsState{host: a.Host, b: a.Bounds}
			case ActionReroute:
				r.routed = a.Assign
			}
		}
		r.mu.Unlock()
	}

	r.mu.Lock()
	if specGen == r.gen {
		r.converged = nowConverged
		if nowConverged {
			r.lastError = ""
			if !wasConverged {
				r.lastConverge = now - r.driftStart
			}
		}
	}
	r.mu.Unlock()
}

// Status snapshots the loop for telemetry.
func (r *Reconciler) Status() Status {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := Status{
		Generation:      r.gen,
		Converged:       r.converged,
		Drift:           append([]string(nil), r.lastDrift...),
		LastConvergeSec: r.lastConverge,
		LastError:       r.lastError,
		Ticks:           r.ticks,
		DriftEvents:     r.driftEvents,
		ActionsOK:       r.actionsOK,
		ActionsFailed:   r.actionsFailed,
		QueueDrops:      r.queueDrops,
		Generations:     r.generations,
	}
	if r.sp != nil {
		st.SpecName = r.sp.Name
	}
	if len(r.routed) > 0 {
		st.Placement = make(map[string]string, len(r.routed))
		for k, v := range r.routed {
			st.Placement[k] = v
		}
	}
	now := r.clock.Now()
	for k, exp := range r.pending {
		if now < exp {
			st.Pending = append(st.Pending, k)
		}
	}
	sort.Strings(st.Pending)
	return st
}

func sameAssign(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}
