package reconcile

// Cluster-backed Observer and Actuators: the reconciler driving the
// real stack — fabric liveness and replica counts in, orchestrator
// boots/retirements, incremental app recompiles, and autoscale bounds
// out. This is the wiring that turns the paper's one-shot management
// calls into continuously converged state.

import (
	"context"
	"fmt"
	"sync"

	"sdnfv/internal/app"
	"sdnfv/internal/autoscale"
	"sdnfv/internal/cluster"
	"sdnfv/internal/control"
	"sdnfv/internal/flowtable"
	"sdnfv/internal/nf"
	"sdnfv/internal/orchestrator"
	"sdnfv/internal/spec"
)

// DatapathsOf maps a spec's host names to their datapath ids.
func DatapathsOf(sp *spec.Spec) map[string]control.DatapathID {
	out := make(map[string]control.DatapathID, len(sp.Hosts))
	for _, h := range sp.Hosts {
		out[h.Name] = control.DatapathID(h.Datapath)
	}
	return out
}

// WireLinks wires every spec link into the fabric (both directions,
// spec ports as NIC ports) with the given shaping.
func WireLinks(fab *cluster.Fabric, sp *spec.Spec, cfg cluster.LinkConfig) error {
	dps := DatapathsOf(sp)
	for _, l := range sp.Links {
		if _, _, err := fab.Link(dps[l.A.Host], l.A.Port, dps[l.B.Host], l.B.Port, cfg); err != nil {
			return err
		}
	}
	return nil
}

// BuildDeployment compiles a spec plus a concrete assignment (service
// name → host name) into the app-layer deployment form: the spec's
// links become fabric channels (one per direction), the spec graph the
// global service graph.
func BuildDeployment(sp *spec.Spec, assign map[string]string) (*app.Deployment, error) {
	g, err := sp.Graph()
	if err != nil {
		return nil, err
	}
	dps := DatapathsOf(sp)
	depAssign := make(map[flowtable.ServiceID]control.DatapathID, len(sp.Services))
	for _, svc := range sp.Services {
		host, ok := assign[svc.Name]
		if !ok {
			return nil, fmt.Errorf("reconcile: service %q unassigned", svc.Name)
		}
		dp, ok := dps[host]
		if !ok {
			return nil, fmt.Errorf("reconcile: service %q assigned to unknown host %q", svc.Name, host)
		}
		depAssign[svc.ID] = dp
	}
	channels := map[app.HostPair][]app.Channel{}
	for _, l := range sp.Links {
		a, b := dps[l.A.Host], dps[l.B.Host]
		channels[app.HostPair{Src: a, Dst: b}] = append(channels[app.HostPair{Src: a, Dst: b}],
			app.Channel{Out: l.A.Port, In: l.B.Port})
		channels[app.HostPair{Src: b, Dst: a}] = append(channels[app.HostPair{Src: b, Dst: a}],
			app.Channel{Out: l.B.Port, In: l.A.Port})
	}
	return &app.Deployment{
		Graph:       g,
		Assign:      depAssign,
		Ingress:     dps[sp.Ingress.Host],
		IngressPort: sp.Ingress.Port,
		EgressPort:  sp.EgressPort,
		Channels:    channels,
	}, nil
}

// ClusterObserver reads the cluster the way telemetry does: fabric
// membership and liveness, per-host instance registries. Cold-path
// only.
type ClusterObserver struct {
	Fabric *cluster.Fabric
	// Datapaths maps spec host names to datapaths (DatapathsOf).
	Datapaths map[string]control.DatapathID
}

// Observe implements Observer.
func (o ClusterObserver) Observe() Observation {
	out := Observation{Hosts: make(map[string]HostState, len(o.Datapaths))}
	for name, dp := range o.Datapaths {
		hs := HostState{Alive: o.Fabric.Alive(dp)}
		if hs.Alive {
			if h, ok := o.Fabric.Host(dp); ok {
				reps := map[flowtable.ServiceID]int{}
				for _, inst := range h.Instances() {
					reps[inst.Service]++
				}
				hs.Replicas = reps
			}
		}
		out.Hosts[name] = hs
	}
	return out
}

type scalerEntry struct {
	host string
	ctl  *autoscale.Controller
}

// ClusterActuators converges the real stack: boots and retirements go
// through the NFV orchestrator (async VM-boot model, standby pool,
// flow-state-safe drains), routing changes through the application's
// incremental recompile plus tracked rule replacement on the fabric,
// and autoscale bounds onto per-service policy loops that it owns —
// recreating a service's loop on its new host after a failover, which
// is how autoscale "resumes within spec bounds".
type ClusterActuators struct {
	Fabric *cluster.Fabric
	App    *app.App
	Orch   *orchestrator.Orchestrator
	NFs    *spec.NFRegistry
	Clock  Clock
	// Scale templates the per-service policy loops (bounds come from
	// the spec per service; Min/Max here are ignored).
	Scale autoscale.Config
	// Datapaths maps spec host names to datapaths (DatapathsOf).
	Datapaths map[string]control.DatapathID

	mu        sync.Mutex
	installed map[control.DatapathID][]uint64
	scalers   map[string]*scalerEntry
}

func (a *ClusterActuators) dp(host string) (control.DatapathID, error) {
	dp, ok := a.Datapaths[host]
	if !ok {
		return 0, fmt.Errorf("reconcile: unknown host %q", host)
	}
	return dp, nil
}

// Place implements Actuators: boot one replica of svc on host through
// the orchestrator, and make sure the service's autoscaler runs there
// with spec bounds.
func (a *ClusterActuators) Place(ctx context.Context, sp *spec.Spec, svc spec.Service, host string) error {
	dp, err := a.dp(host)
	if err != nil {
		return err
	}
	if !a.Fabric.Alive(dp) {
		return fmt.Errorf("reconcile: host %q is dead", host)
	}
	fn, err := a.NFs.New(svc.NF)
	if err != nil {
		return err
	}
	if err := a.Orch.Instantiate(ctx, host, svc.ID, fn, nil); err != nil {
		return err
	}
	return a.ensureScaler(sp, svc, host)
}

// Retire implements Actuators: drain the newest replica of svc on host.
func (a *ClusterActuators) Retire(ctx context.Context, _ *spec.Spec, svc spec.Service, host string) error {
	dp, err := a.dp(host)
	if err != nil {
		return err
	}
	h, ok := a.Fabric.Host(dp)
	if !ok {
		return fmt.Errorf("reconcile: no fabric member for %q", host)
	}
	reps := h.ReplicaStats(svc.ID)
	if len(reps) == 0 {
		return nil // already gone — converged by someone else
	}
	newest := reps[0].Index
	for _, r := range reps[1:] {
		if r.Index > newest {
			newest = r.Index
		}
	}
	return a.Orch.Retire(ctx, host, svc.ID, newest)
}

// Reroute implements Actuators: recompile the deployment incrementally
// for the new assignment and swap rules on exactly the hosts whose
// tables changed (dead hosts are skipped — their rules died with them).
func (a *ClusterActuators) Reroute(_ context.Context, sp *spec.Spec, assign map[string]string) error {
	d, err := BuildDeployment(sp, assign)
	if err != nil {
		return err
	}
	tables, changed, err := a.App.UpdateDeployment(d)
	if err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.installed == nil {
		a.installed = map[control.DatapathID][]uint64{}
	}
	for _, dp := range changed {
		if !a.Fabric.Alive(dp) {
			delete(a.installed, dp)
			continue
		}
		ids, err := a.Fabric.ReplaceRules(dp, a.installed[dp], tables[dp])
		if err != nil {
			return err
		}
		a.installed[dp] = ids
	}
	return nil
}

// SetBounds implements Actuators: apply svc's spec bounds to its policy
// loop on host, creating (or moving) the loop as needed.
func (a *ClusterActuators) SetBounds(_ context.Context, sp *spec.Spec, svc spec.Service, host string) error {
	return a.ensureScaler(sp, svc, host)
}

// ensureScaler guarantees svc's autoscale loop runs on host with spec
// bounds. Services pinned by the spec (Min == Max) get no loop — the
// reconciler itself holds their replica count. A loop on the wrong host
// (failover) is stopped and rebuilt on the new one.
func (a *ClusterActuators) ensureScaler(sp *spec.Spec, svc spec.Service, host string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.scalers == nil {
		a.scalers = map[string]*scalerEntry{}
	}
	ent := a.scalers[svc.Name]
	if !svc.Scale.Scaled() {
		if ent != nil {
			ent.ctl.Stop()
			delete(a.scalers, svc.Name)
		}
		return nil
	}
	if ent != nil && ent.host == host {
		return ent.ctl.SetBounds(svc.Scale.Min, svc.Scale.Max)
	}
	if ent != nil {
		ent.ctl.Stop()
		delete(a.scalers, svc.Name)
	}
	dp, err := a.dp(host)
	if err != nil {
		return err
	}
	h, ok := a.Fabric.Host(dp)
	if !ok {
		return fmt.Errorf("reconcile: no fabric member for %q", host)
	}
	cfg := a.Scale
	cfg.Min, cfg.Max = svc.Scale.Min, svc.Scale.Max
	name, id := svc.NF, svc.ID
	ctl := autoscale.New(cfg,
		autoscale.ServiceSource{Host: h, Service: id, Orch: a.Orch},
		autoscale.OrchestratorActuator{
			Orch: a.Orch, HostName: host, Host: h, Service: id,
			NewNF: func() nf.BatchFunction {
				fn, err := a.NFs.New(name)
				if err != nil {
					return nil
				}
				return fn
			},
		},
		a.Clock)
	ctl.Start()
	a.scalers[svc.Name] = &scalerEntry{host: host, ctl: ctl}
	return nil
}

// Scaler returns svc's policy loop and the host it runs on (nil, ""
// when the service has none).
func (a *ClusterActuators) Scaler(service string) (*autoscale.Controller, string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if ent, ok := a.scalers[service]; ok {
		return ent.ctl, ent.host
	}
	return nil, ""
}

// Close stops every policy loop the actuators own.
func (a *ClusterActuators) Close() {
	a.mu.Lock()
	defer a.mu.Unlock()
	for name, ent := range a.scalers {
		ent.ctl.Stop()
		delete(a.scalers, name)
	}
}

var (
	_ Observer  = ClusterObserver{}
	_ Actuators = (*ClusterActuators)(nil)
)
