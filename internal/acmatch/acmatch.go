// Package acmatch implements Aho–Corasick multi-pattern string matching.
// It is the payload-scanning substrate for the IDS network function: one
// automaton pass over a packet payload finds all signature hits, which is
// what lets the IDS keep up with the data plane.
package acmatch

import (
	"sort"
)

// Match is one pattern occurrence in the scanned input.
type Match struct {
	// Pattern is the index of the matched pattern (in the order given to
	// New).
	Pattern int
	// End is the byte offset just past the match.
	End int
}

// node is one trie state. Children are a dense 256-way table for scan
// speed; the automata built here are small (IDS signature sets), so the
// memory trade-off is acceptable.
type node struct {
	next [256]int32 // 0 = no edge (state 0 is the root; see build)
	fail int32
	out  []int32 // pattern indices terminating here
}

// Matcher is an immutable Aho–Corasick automaton. Build with New; Scan and
// Contains are safe for concurrent use.
type Matcher struct {
	nodes    []node
	patterns [][]byte
}

// New compiles the automaton for the given patterns. Empty patterns are
// ignored. The automaton is case-sensitive; callers wanting
// case-insensitive matching should normalize both patterns and input.
func New(patterns []string) *Matcher {
	m := &Matcher{nodes: make([]node, 1, 64)}
	for i, p := range patterns {
		m.patterns = append(m.patterns, []byte(p))
		if len(p) == 0 {
			continue
		}
		cur := int32(0)
		for j := 0; j < len(p); j++ {
			c := p[j]
			nxt := m.nodes[cur].next[c]
			if nxt == 0 {
				m.nodes = append(m.nodes, node{})
				nxt = int32(len(m.nodes) - 1)
				m.nodes[cur].next[c] = nxt
			}
			cur = nxt
		}
		m.nodes[cur].out = append(m.nodes[cur].out, int32(i))
	}
	// BFS to set failure links and convert the trie to a DFA (goto
	// function totalized).
	queue := make([]int32, 0, len(m.nodes))
	for c := 0; c < 256; c++ {
		if s := m.nodes[0].next[c]; s != 0 {
			m.nodes[s].fail = 0
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for c := 0; c < 256; c++ {
			v := m.nodes[u].next[c]
			if v == 0 {
				// Totalize: missing edge borrows the failure state's edge.
				m.nodes[u].next[c] = m.nodes[m.nodes[u].fail].next[c]
				continue
			}
			f := m.nodes[m.nodes[u].fail].next[c]
			m.nodes[v].fail = f
			m.nodes[v].out = append(m.nodes[v].out, m.nodes[f].out...)
			queue = append(queue, v)
		}
	}
	return m
}

// NumPatterns returns the number of patterns compiled in.
func (m *Matcher) NumPatterns() int { return len(m.patterns) }

// Pattern returns pattern i as a string.
func (m *Matcher) Pattern(i int) string { return string(m.patterns[i]) }

// Contains reports whether any pattern occurs in data. It is the fast path
// used by the IDS (it stops at the first hit).
func (m *Matcher) Contains(data []byte) bool {
	s := int32(0)
	for i := 0; i < len(data); i++ {
		s = m.nodes[s].next[data[i]]
		if len(m.nodes[s].out) > 0 {
			return true
		}
	}
	return false
}

// First returns the first match in data, or ok=false.
func (m *Matcher) First(data []byte) (Match, bool) {
	s := int32(0)
	for i := 0; i < len(data); i++ {
		s = m.nodes[s].next[data[i]]
		if out := m.nodes[s].out; len(out) > 0 {
			best := out[0]
			for _, p := range out[1:] {
				if p < best {
					best = p
				}
			}
			return Match{Pattern: int(best), End: i + 1}, true
		}
	}
	return Match{}, false
}

// Scan returns every match in data, ordered by end offset then pattern
// index.
func (m *Matcher) Scan(data []byte) []Match {
	var out []Match
	s := int32(0)
	for i := 0; i < len(data); i++ {
		s = m.nodes[s].next[data[i]]
		for _, p := range m.nodes[s].out {
			out = append(out, Match{Pattern: int(p), End: i + 1})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].End != out[b].End {
			return out[a].End < out[b].End
		}
		return out[a].Pattern < out[b].Pattern
	})
	return out
}
