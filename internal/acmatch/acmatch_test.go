package acmatch

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestBasicMatching(t *testing.T) {
	m := New([]string{"he", "she", "his", "hers"})
	got := m.Scan([]byte("ushers"))
	// "ushers": she@4, he@4, hers@6.
	want := []Match{{Pattern: 1, End: 4}, {Pattern: 0, End: 4}, {Pattern: 3, End: 6}}
	if len(got) != len(want) {
		t.Fatalf("Scan = %v, want %v", got, want)
	}
	for i := range want {
		if got[i].End != want[i].End {
			t.Errorf("match %d end = %d, want %d", i, got[i].End, want[i].End)
		}
	}
}

func TestContains(t *testing.T) {
	m := New([]string{"UNION SELECT", "DROP TABLE"})
	if !m.Contains([]byte("GET /?q=1 UNION SELECT pw FROM t")) {
		t.Fatal("missed SQL injection")
	}
	if m.Contains([]byte("GET /index.html HTTP/1.1")) {
		t.Fatal("false positive")
	}
}

func TestFirst(t *testing.T) {
	m := New([]string{"bb", "aa"})
	got, ok := m.First([]byte("xxaayybb"))
	if !ok || got.Pattern != 1 || got.End != 4 {
		t.Fatalf("First = %+v ok=%v", got, ok)
	}
	if _, ok := m.First([]byte("zzz")); ok {
		t.Fatal("First matched nothing")
	}
}

func TestOverlappingPatterns(t *testing.T) {
	m := New([]string{"abc", "bcd", "c"})
	got := m.Scan([]byte("abcd"))
	// c@3, abc@3, bcd@4.
	if len(got) != 3 {
		t.Fatalf("Scan = %v", got)
	}
}

func TestEmptyAndEdgeCases(t *testing.T) {
	m := New(nil)
	if m.Contains([]byte("anything")) {
		t.Fatal("empty matcher matched")
	}
	m = New([]string{"", "x"})
	if m.NumPatterns() != 2 {
		t.Fatalf("NumPatterns = %d", m.NumPatterns())
	}
	if !m.Contains([]byte("x")) {
		t.Fatal("missed single byte pattern")
	}
	if m.Contains(nil) {
		t.Fatal("matched empty input")
	}
	if m.Pattern(1) != "x" {
		t.Fatalf("Pattern(1) = %q", m.Pattern(1))
	}
}

// Property: Contains agrees with strings.Contains for every pattern.
func TestAgainstStringsContains(t *testing.T) {
	f := func(text []byte, p1, p2 uint8) bool {
		pats := []string{
			string([]byte{p1}),
			string([]byte{p1, p2}),
			"abc",
		}
		m := New(pats)
		want := false
		for _, p := range pats {
			if p != "" && strings.Contains(string(text), p) {
				want = true
			}
		}
		return m.Contains(text) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: every Scan match is a genuine occurrence at the claimed offset.
func TestScanSound(t *testing.T) {
	f := func(text []byte) bool {
		pats := []string{"ab", "ba", "aba"}
		m := New(pats)
		for _, match := range m.Scan(text) {
			p := pats[match.Pattern]
			start := match.End - len(p)
			if start < 0 || string(text[start:match.End]) != p {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkContainsHTTPPayload(b *testing.B) {
	m := New([]string{
		"UNION SELECT", "' OR '1'='1", "DROP TABLE", "/etc/passwd",
		"<script>alert(", "cmd.exe", "xp_cmdshell",
	})
	payload := []byte("GET /products?id=42&sort=price HTTP/1.1\r\nHost: shop.example.com\r\nUser-Agent: test\r\nAccept: */*\r\n\r\n" + strings.Repeat("benign body content ", 40))
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if m.Contains(payload) {
			b.Fatal("unexpected match")
		}
	}
}
