package autoscale

import (
	"context"
	"errors"
	"time"

	"sdnfv/internal/dataplane"
	"sdnfv/internal/flowtable"
	"sdnfv/internal/nf"
	"sdnfv/internal/orchestrator"
)

// ServiceSource samples one service of a dataplane Host through the
// manager's per-replica telemetry (ReplicaStats).
type ServiceSource struct {
	Host    *dataplane.Host
	Service flowtable.ServiceID
	// Orch, when set, contributes its in-flight boot count as
	// Sample.Pending. (The orchestrator counts boots host-wide; with one
	// autoscaled service per orchestrator the figure is exact, otherwise
	// it overestimates pending capacity — the safe direction.)
	Orch *orchestrator.Orchestrator
}

// Sample implements Source.
func (s ServiceSource) Sample() Sample {
	reps := s.Host.ReplicaStats(s.Service)
	out := Sample{Replicas: len(reps)}
	var svcSum float64
	measured := 0
	for _, r := range reps {
		out.Backlog += r.QueueDepth
		out.Overflows += r.OverflowDrops
		if r.ServiceTimeNs > 0 {
			svcSum += r.ServiceTimeNs
			measured++
		}
	}
	if measured > 0 {
		out.ServiceTimeNs = svcSum / float64(measured)
	}
	if s.Orch != nil {
		out.Pending = s.Orch.Pending()
	}
	return out
}

// OrchestratorActuator scales a service through the NFV orchestrator:
// ScaleUp boots a new replica (Instantiate, standby pool permitting the
// fast-start path), ScaleDown retires the newest replica (Retire, which
// runs the host's flow-state-safe drain and returns the VM to the
// standby pool).
type OrchestratorActuator struct {
	Orch     *orchestrator.Orchestrator
	HostName string
	Host     *dataplane.Host
	Service  flowtable.ServiceID
	// NewNF builds the function backing each new replica.
	NewNF func() nf.BatchFunction
	// OnReady, when set, is forwarded to Instantiate.
	OnReady func(orchestrator.Launch)
}

// ErrNoReplica reports a scale-down with no replica left to retire.
var ErrNoReplica = errors.New("autoscale: no replica to retire")

// ScaleUp implements Actuator.
func (a OrchestratorActuator) ScaleUp(ctx context.Context) error {
	return a.Orch.Instantiate(ctx, a.HostName, a.Service, a.NewNF(), a.OnReady)
}

// ScaleDown implements Actuator: retire the replica with the highest
// stable index (the newest — LIFO keeps the long-lived replicas, which
// own the most flow state, in place).
func (a OrchestratorActuator) ScaleDown(ctx context.Context) error {
	reps := a.Host.ReplicaStats(a.Service)
	if len(reps) == 0 {
		return ErrNoReplica
	}
	newest := reps[0].Index
	for _, r := range reps[1:] {
		if r.Index > newest {
			newest = r.Index
		}
	}
	return a.Orch.Retire(ctx, a.HostName, a.Service, newest)
}

// RealClock implements Clock (and orchestrator.Clock) on the wall clock,
// with time zero at construction.
type RealClock struct {
	start time.Time
}

// NewRealClock returns a wall clock starting at zero now.
func NewRealClock() *RealClock { return &RealClock{start: time.Now()} }

// Now implements Clock.
func (c *RealClock) Now() float64 { return time.Since(c.start).Seconds() }

// After implements Clock.
func (c *RealClock) After(delay float64, fn func()) {
	time.AfterFunc(time.Duration(delay*float64(time.Second)), fn)
}
