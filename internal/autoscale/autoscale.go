// Package autoscale closes the elasticity loop the paper assigns to the
// SDNFV management hierarchy (§3.3 "Automatic Load Balancing", §5 dynamic
// scaling): a policy loop watches the per-replica load signals the NF
// Manager exports (queue backlog, input-ring overflows, EWMA service
// time) and grows or shrinks a service's replica set through the NFV
// orchestrator — Instantiate to scale up, Retire (a flow-state-safe
// drain) to scale down.
//
// The controller is deliberately conservative: scale decisions need a
// streak of consecutive agreeing intervals (hysteresis) and respect a
// cooldown after every action, so a bursty signal cannot flap the replica
// set; boots already in flight count toward capacity, so a slow VM boot
// (the paper measures 7.75 s cold) cannot trigger a boot storm. The loop
// runs on a caller-supplied clock, so the same policy code drives the
// real engine under the wall clock and the discrete-event simulator under
// virtual time.
package autoscale

import (
	"context"
	"fmt"
	"sync"
)

// Clock schedules callbacks in seconds, real or virtual. It is
// structurally identical to orchestrator.Clock, so one implementation
// serves both layers.
type Clock interface {
	// After runs fn once delay seconds have passed.
	After(delay float64, fn func())
	// Now returns the current time in seconds.
	Now() float64
}

// Sample is one observation of a service's load.
type Sample struct {
	// Replicas is the number of live replicas.
	Replicas int
	// Pending is the number of boots in flight (counted as capacity so
	// the controller does not re-trigger while a VM boots).
	Pending int
	// Backlog is the total descriptors queued across the replicas' input
	// rings.
	Backlog int
	// ServiceTimeNs is the mean per-packet NF service time across
	// replicas (EWMA, 0 if none measured).
	ServiceTimeNs float64
	// Overflows is the cumulative count of offers refused because a
	// replica's input rings were full; the controller reacts to its
	// delta between ticks.
	Overflows uint64
}

// Source samples the scaled service's load.
type Source interface {
	Sample() Sample
}

// Actuator executes scale decisions.
type Actuator interface {
	// ScaleUp requests one more replica (may complete asynchronously).
	ScaleUp(ctx context.Context) error
	// ScaleDown retires one replica (synchronous drain).
	ScaleDown(ctx context.Context) error
}

// Config tunes the scaling policy. Zero values select the documented
// defaults.
type Config struct {
	// Min/Max bound the replica count (defaults 1 and 4).
	Min, Max int
	// UpBacklog is the per-replica queued-descriptor level that argues
	// for growth (default 64). Any input-ring overflow since the last
	// tick argues for growth regardless of backlog.
	UpBacklog float64
	// DownBacklog is the per-replica backlog at or below which the
	// service is considered over-provisioned (default 1).
	DownBacklog float64
	// UpServiceTimeNs, when non-zero, also argues for growth once the
	// mean per-packet service time crosses it.
	UpServiceTimeNs float64
	// UpStreak/DownStreak are the consecutive agreeing ticks required
	// before acting (hysteresis; defaults 2 and 4 — scale-down is the
	// disruptive direction, so it needs the longer streak).
	UpStreak, DownStreak int
	// CooldownSec is the minimum time between actions (default
	// 2×IntervalSec), letting the previous action take effect before the
	// signal is trusted again.
	CooldownSec float64
	// IntervalSec is the evaluation period (default 1 s).
	IntervalSec float64
}

func (c *Config) fillDefaults() {
	if c.Min <= 0 {
		c.Min = 1
	}
	if c.Max <= 0 {
		c.Max = 4
	}
	if c.UpBacklog == 0 {
		c.UpBacklog = 64
	}
	if c.DownBacklog == 0 {
		c.DownBacklog = 1
	}
	if c.UpStreak <= 0 {
		c.UpStreak = 2
	}
	if c.DownStreak <= 0 {
		c.DownStreak = 4
	}
	if c.IntervalSec <= 0 {
		c.IntervalSec = 1
	}
	if c.CooldownSec == 0 {
		c.CooldownSec = 2 * c.IntervalSec
	}
}

// Decision is one tick's outcome.
type Decision uint8

// Decisions.
const (
	Hold Decision = iota
	Up
	Down
)

// String names the decision.
func (d Decision) String() string {
	switch d {
	case Up:
		return "up"
	case Down:
		return "down"
	default:
		return "hold"
	}
}

// Event records one non-hold decision (and its actuation error, if any).
type Event struct {
	At       float64
	Decision Decision
	// Replicas/Pending/Backlog are the sample that triggered the action.
	Replicas, Pending, Backlog int
	Err                        error
}

// Controller is the policy loop. Construct with New, then Start (or
// drive it manually with TickNow under a virtual clock).
type Controller struct {
	cfg   Config
	src   Source
	act   Actuator
	clock Clock

	mu      sync.Mutex
	running bool
	// gen numbers the timer chain: Stop/Start cycles would otherwise
	// resurrect the previous chain's pending callback alongside the new
	// one and double the tick rate forever.
	gen           uint64
	upStreak      int
	downStreak    int
	lastActionAt  float64
	haveActed     bool
	lastOverflows uint64
	haveOverflow  bool
	events        []Event

	// Telemetry counters (see Stats).
	ticks        uint64
	ups          uint64
	downs        uint64
	actErrors    uint64
	lastDecision Decision
	lastTickAt   float64
	lastSample   Sample
}

// Stats is a telemetry snapshot of the policy loop: cumulative tick and
// decision counts plus the most recent tick's outcome and load sample.
type Stats struct {
	// Ticks counts policy evaluations; Ups/Downs count actuated scale
	// decisions (including ones whose actuator returned an error);
	// Errors counts actuator failures.
	Ticks, Ups, Downs, Errors uint64
	// LastDecision and LastTickAt describe the most recent tick;
	// Last is the load sample it evaluated.
	LastDecision Decision
	LastTickAt   float64
	Last         Sample
	// Min/Max are the replica bounds currently in force (SetBounds may
	// have changed them since construction).
	Min, Max int
}

// Stats returns a snapshot of the loop's telemetry counters.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Ticks:        c.ticks,
		Ups:          c.ups,
		Downs:        c.downs,
		Errors:       c.actErrors,
		LastDecision: c.lastDecision,
		LastTickAt:   c.lastTickAt,
		Last:         c.lastSample,
		Min:          c.cfg.Min,
		Max:          c.cfg.Max,
	}
}

// SetBounds replaces the replica bounds the policy enforces, taking
// effect from the next tick. This is how a new spec generation adjusts
// a running loop without rebuilding it (losing streak and cooldown
// state): the reconciler applies spec bounds here, and corrects any
// out-of-bounds replica count itself.
func (c *Controller) SetBounds(min, max int) error {
	if min < 1 || max < min {
		return fmt.Errorf("autoscale: bounds [%d,%d] invalid (need 1 <= min <= max)", min, max)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cfg.Min = min
	c.cfg.Max = max
	return nil
}

// New builds a controller; src, act, and clock must not be nil.
func New(cfg Config, src Source, act Actuator, clock Clock) *Controller {
	cfg.fillDefaults()
	return &Controller{cfg: cfg, src: src, act: act, clock: clock}
}

// Start begins periodic evaluation every IntervalSec. Stop ends the
// loop; Start may be called again afterwards.
func (c *Controller) Start() {
	c.mu.Lock()
	if c.running {
		c.mu.Unlock()
		return
	}
	c.running = true
	c.gen++
	gen := c.gen
	c.mu.Unlock()
	c.schedule(gen)
}

func (c *Controller) schedule(gen uint64) {
	c.clock.After(c.cfg.IntervalSec, func() {
		c.mu.Lock()
		live := c.running && c.gen == gen
		c.mu.Unlock()
		if !live {
			return
		}
		c.TickNow()
		c.schedule(gen)
	})
}

// Stop ends the periodic loop (an in-flight tick completes).
func (c *Controller) Stop() {
	c.mu.Lock()
	c.running = false
	c.mu.Unlock()
}

// Events returns a copy of the action log.
func (c *Controller) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// TickNow samples the source, evaluates the policy, and actuates a
// non-hold decision. Exported so tests and virtual-time experiments can
// drive the loop deterministically.
func (c *Controller) TickNow() Decision {
	s := c.src.Sample()
	now := c.clock.Now()

	c.mu.Lock()
	c.ticks++
	c.lastTickAt = now
	c.lastSample = s
	overflowDelta := uint64(0)
	if c.haveOverflow && s.Overflows >= c.lastOverflows {
		overflowDelta = s.Overflows - c.lastOverflows
	}
	c.lastOverflows = s.Overflows
	c.haveOverflow = true

	perReplica := float64(s.Backlog)
	if s.Replicas > 1 {
		perReplica /= float64(s.Replicas)
	}
	pressure := perReplica >= c.cfg.UpBacklog || overflowDelta > 0 ||
		(c.cfg.UpServiceTimeNs > 0 && s.ServiceTimeNs >= c.cfg.UpServiceTimeNs)
	calm := perReplica <= c.cfg.DownBacklog && overflowDelta == 0

	switch {
	case pressure:
		c.upStreak++
		c.downStreak = 0
	case calm:
		c.downStreak++
		c.upStreak = 0
	default:
		c.upStreak = 0
		c.downStreak = 0
	}

	cooled := !c.haveActed || now-c.lastActionAt >= c.cfg.CooldownSec
	capacity := s.Replicas + s.Pending
	decision := Hold
	switch {
	case c.upStreak >= c.cfg.UpStreak && capacity < c.cfg.Max && cooled:
		decision = Up
	case c.downStreak >= c.cfg.DownStreak && s.Replicas > c.cfg.Min && s.Pending == 0 && cooled:
		// Never shrink with a boot in flight: the pending replica would
		// land on a set the policy just judged over-provisioned.
		decision = Down
	}
	prevUp, prevDown := c.upStreak, c.downStreak
	c.lastDecision = decision
	if decision != Hold {
		c.lastActionAt = now
		c.haveActed = true
		c.upStreak = 0
		c.downStreak = 0
		if decision == Up {
			c.ups++
		} else {
			c.downs++
		}
	}
	c.mu.Unlock()

	if decision == Hold {
		return Hold
	}
	var err error
	if decision == Up {
		err = c.act.ScaleUp(context.Background())
	} else {
		err = c.act.ScaleDown(context.Background())
	}
	c.mu.Lock()
	if err != nil {
		c.actErrors++
		// Nothing was actuated: keep the streak memory so the retry only
		// waits out the cooldown (a throttle on failing actuators)
		// instead of rebuilding the whole hysteresis window.
		c.upStreak, c.downStreak = prevUp, prevDown
	}
	c.events = append(c.events, Event{
		At: now, Decision: decision,
		Replicas: s.Replicas, Pending: s.Pending, Backlog: s.Backlog,
		Err: err,
	})
	c.mu.Unlock()
	return decision
}
