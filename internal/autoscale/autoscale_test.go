package autoscale

import (
	"container/heap"
	"context"
	"errors"
	"testing"
)

// manualClock is a deterministic test clock.
type manualClock struct {
	now    float64
	events eventHeap
}

type clockEvent struct {
	at float64
	fn func()
}
type eventHeap []clockEvent

func (h eventHeap) Len() int           { return len(h) }
func (h eventHeap) Less(i, j int) bool { return h[i].at < h[j].at }
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(clockEvent)) }
func (h *eventHeap) Pop() any {
	old := *h
	e := old[len(old)-1]
	*h = old[:len(old)-1]
	return e
}

func (c *manualClock) After(delay float64, fn func()) {
	heap.Push(&c.events, clockEvent{at: c.now + delay, fn: fn})
}
func (c *manualClock) Now() float64 { return c.now }
func (c *manualClock) advance(to float64) {
	for c.events.Len() > 0 && c.events[0].at <= to {
		e := heap.Pop(&c.events).(clockEvent)
		c.now = e.at
		e.fn()
	}
	c.now = to
}

// scriptSource returns canned samples; the fake actuator adjusts the
// replica count so the loop sees its own effects.
type scriptSource struct {
	replicas int
	pending  int
	backlog  int
	svcTime  float64
	overflow uint64
}

func (s *scriptSource) Sample() Sample {
	return Sample{
		Replicas: s.replicas, Pending: s.pending, Backlog: s.backlog,
		ServiceTimeNs: s.svcTime, Overflows: s.overflow,
	}
}

type fakeActuator struct {
	src        *scriptSource
	ups, downs int
	failUp     error
}

func (a *fakeActuator) ScaleUp(context.Context) error {
	if a.failUp != nil {
		return a.failUp
	}
	a.ups++
	a.src.replicas++
	return nil
}

func (a *fakeActuator) ScaleDown(context.Context) error {
	a.downs++
	a.src.replicas--
	return nil
}

func newTestController(cfg Config) (*Controller, *scriptSource, *fakeActuator, *manualClock) {
	src := &scriptSource{replicas: 1}
	act := &fakeActuator{src: src}
	clk := &manualClock{}
	return New(cfg, src, act, clk), src, act, clk
}

func TestScaleUpNeedsStreak(t *testing.T) {
	c, src, act, clk := newTestController(Config{UpBacklog: 10, UpStreak: 2, CooldownSec: 0.001, IntervalSec: 1})
	src.backlog = 100
	if d := c.TickNow(); d != Hold {
		t.Fatalf("tick 1 = %v, want hold (streak not met)", d)
	}
	clk.now = 1
	if d := c.TickNow(); d != Up {
		t.Fatalf("tick 2 = %v, want up", d)
	}
	if act.ups != 1 || src.replicas != 2 {
		t.Fatalf("ups=%d replicas=%d", act.ups, src.replicas)
	}
	ev := c.Events()
	if len(ev) != 1 || ev[0].Decision != Up || ev[0].Err != nil {
		t.Fatalf("events = %+v", ev)
	}
}

func TestOverflowIsImmediatePressure(t *testing.T) {
	c, src, _, clk := newTestController(Config{UpBacklog: 1e9, UpStreak: 2, CooldownSec: 0.001})
	// Tick 1 records the overflow baseline (no delta yet).
	if d := c.TickNow(); d != Hold {
		t.Fatalf("baseline tick = %v", d)
	}
	src.overflow = 50 // drops since last tick
	clk.now = 1
	if d := c.TickNow(); d != Hold {
		t.Fatalf("streak tick = %v", d)
	}
	src.overflow = 80
	clk.now = 2
	if d := c.TickNow(); d != Up {
		t.Fatalf("overflow pressure ignored: %v", d)
	}
}

func TestServiceTimePressure(t *testing.T) {
	c, src, _, clk := newTestController(Config{UpBacklog: 1e9, UpServiceTimeNs: 5000, UpStreak: 1, CooldownSec: 0.001})
	src.svcTime = 6000
	clk.now = 1
	if d := c.TickNow(); d != Up {
		t.Fatalf("service-time pressure ignored: %v", d)
	}
}

func TestMaxBoundsAndPendingCountAsCapacity(t *testing.T) {
	c, src, act, clk := newTestController(Config{Max: 2, UpBacklog: 1, UpStreak: 1, CooldownSec: 0.001})
	src.backlog = 100
	src.pending = 1 // a boot is in flight: capacity 1+1 == Max
	clk.now = 1
	if d := c.TickNow(); d != Hold {
		t.Fatalf("scaled past Max with pending boot: %v", d)
	}
	src.pending = 0
	clk.now = 2
	if d := c.TickNow(); d != Up {
		t.Fatalf("tick = %v, want up", d)
	}
	clk.now = 3
	if d := c.TickNow(); d != Hold {
		t.Fatalf("scaled past Max: %v (replicas=%d)", d, src.replicas)
	}
	if act.ups != 1 {
		t.Fatalf("ups = %d", act.ups)
	}
}

func TestScaleDownHysteresisAndMin(t *testing.T) {
	c, src, act, clk := newTestController(Config{Min: 1, DownBacklog: 2, DownStreak: 3, CooldownSec: 0.001})
	src.replicas = 3
	src.backlog = 0
	for i := 0; i < 2; i++ {
		clk.now = float64(i + 1)
		if d := c.TickNow(); d != Hold {
			t.Fatalf("tick %d = %v before streak met", i, d)
		}
	}
	clk.now = 3
	if d := c.TickNow(); d != Down {
		t.Fatal("down streak met but no scale-down")
	}
	if act.downs != 1 || src.replicas != 2 {
		t.Fatalf("downs=%d replicas=%d", act.downs, src.replicas)
	}
	// Down to Min, then stop.
	for i := 4; i < 12; i++ {
		clk.now = float64(i)
		c.TickNow()
	}
	if src.replicas != 1 {
		t.Fatalf("replicas = %d, want Min 1", src.replicas)
	}
}

func TestNoScaleDownWithPendingBoot(t *testing.T) {
	c, src, _, clk := newTestController(Config{Min: 1, DownBacklog: 5, DownStreak: 1, CooldownSec: 0.001})
	src.replicas = 2
	src.pending = 1
	clk.now = 1
	if d := c.TickNow(); d != Hold {
		t.Fatalf("shrank with a boot in flight: %v", d)
	}
}

func TestCooldownBlocksBackToBackActions(t *testing.T) {
	c, src, act, clk := newTestController(Config{Max: 8, UpBacklog: 1, UpStreak: 1, CooldownSec: 5, IntervalSec: 1})
	src.backlog = 100
	clk.now = 1
	if d := c.TickNow(); d != Up {
		t.Fatal("first action blocked")
	}
	clk.now = 2
	if d := c.TickNow(); d != Hold {
		t.Fatal("cooldown ignored")
	}
	clk.now = 7
	if d := c.TickNow(); d != Up {
		t.Fatal("cooldown never expired")
	}
	if act.ups != 2 {
		t.Fatalf("ups = %d", act.ups)
	}
}

func TestMixedSignalResetsStreaks(t *testing.T) {
	c, src, _, clk := newTestController(Config{UpBacklog: 10, DownBacklog: 1, UpStreak: 2, CooldownSec: 0.001})
	src.backlog = 100
	clk.now = 1
	c.TickNow()     // streak 1
	src.backlog = 5 // neither pressure nor calm
	clk.now = 2
	c.TickNow() // resets
	src.backlog = 100
	clk.now = 3
	if d := c.TickNow(); d != Hold {
		t.Fatalf("streak survived a mixed tick: %v", d)
	}
}

func TestActuatorErrorRecorded(t *testing.T) {
	c, src, act, clk := newTestController(Config{UpBacklog: 1, UpStreak: 1, CooldownSec: 0.001})
	boom := errors.New("boot failed")
	act.failUp = boom
	src.backlog = 100
	clk.now = 1
	if d := c.TickNow(); d != Up {
		t.Fatal("decision suppressed by actuator error path")
	}
	ev := c.Events()
	if len(ev) != 1 || !errors.Is(ev[0].Err, boom) {
		t.Fatalf("events = %+v", ev)
	}
}

func TestPeriodicLoop(t *testing.T) {
	c, src, act, clk := newTestController(Config{UpBacklog: 1, UpStreak: 1, CooldownSec: 0.5, IntervalSec: 1, Max: 3})
	src.backlog = 100
	c.Start()
	clk.advance(2.5)
	if act.ups == 0 {
		t.Fatal("periodic loop never acted")
	}
	c.Stop()
	ups := act.ups
	clk.advance(10)
	if act.ups != ups {
		t.Fatal("loop kept acting after Stop")
	}
}

func TestRestartDoesNotDoubleTickRate(t *testing.T) {
	c, src, act, clk := newTestController(Config{Max: 16, UpBacklog: 1, UpStreak: 1, CooldownSec: 0.001, IntervalSec: 1})
	src.backlog = 100
	c.Start()
	clk.advance(2.5) // old chain has a pending callback at t=3
	c.Stop()
	c.Start()
	base := act.ups
	clk.advance(12.5) // 10 more intervals
	got := act.ups - base
	// One chain acts once per interval; a resurrected second chain would
	// roughly double this.
	if got > 11 {
		t.Fatalf("%d actions in 10 intervals after restart — stale timer chain still ticking", got)
	}
	if got < 9 {
		t.Fatalf("%d actions in 10 intervals — restarted loop not ticking", got)
	}
}

func TestFailedActuationKeepsStreak(t *testing.T) {
	c, src, act, clk := newTestController(Config{UpBacklog: 1, UpStreak: 3, CooldownSec: 2, IntervalSec: 1})
	boom := errors.New("boot failed")
	act.failUp = boom
	src.backlog = 100
	for i := 1; i <= 3; i++ {
		clk.now = float64(i)
		c.TickNow()
	}
	if len(c.Events()) != 1 {
		t.Fatalf("events = %+v, want one failed Up", c.Events())
	}
	// The failure must not force rebuilding the 3-tick streak: once the
	// cooldown expires the very next pressured tick retries.
	act.failUp = nil
	clk.now = 5.01
	if d := c.TickNow(); d != Up {
		t.Fatalf("retry after failed actuation = %v, want up (streak was burned)", d)
	}
}

// TestSetBounds swaps the replica bounds on a live controller: invalid
// bounds are refused, valid ones take effect on the next tick without
// resetting the loop.
func TestSetBounds(t *testing.T) {
	c, src, _, clk := newTestController(Config{Min: 1, Max: 2, UpBacklog: 10, UpStreak: 1, CooldownSec: 0.001, IntervalSec: 1})
	src.replicas = 2
	src.backlog = 1000

	if err := c.SetBounds(0, 2); err == nil {
		t.Fatal("min 0 accepted")
	}
	if err := c.SetBounds(3, 2); err == nil {
		t.Fatal("min > max accepted")
	}
	// At max: pressure holds.
	if d := c.TickNow(); d != Hold {
		t.Fatalf("at max, decision = %v", d)
	}
	// Raise the ceiling: the same pressure now scales up.
	if err := c.SetBounds(1, 4); err != nil {
		t.Fatal(err)
	}
	clk.now = 1
	if d := c.TickNow(); d != Up {
		t.Fatalf("after raise, decision = %v", d)
	}
	st := c.Stats()
	if st.Min != 1 || st.Max != 4 {
		t.Fatalf("stats bounds [%d,%d], want [1,4]", st.Min, st.Max)
	}
}
