package autoscale

import (
	"errors"
	"testing"
)

func TestStatsCountsTicksAndDecisions(t *testing.T) {
	c, src, act, clk := newTestController(Config{
		UpBacklog: 10, UpStreak: 1, DownStreak: 1, DownBacklog: 1,
		CooldownSec: 0.001, IntervalSec: 1, Max: 4,
	})
	if st := c.Stats(); st.Ticks != 0 || st.LastDecision != Hold {
		t.Fatalf("fresh controller stats = %+v", st)
	}

	src.backlog = 100
	clk.now = 1
	if d := c.TickNow(); d != Up {
		t.Fatalf("tick = %v, want up", d)
	}
	st := c.Stats()
	if st.Ticks != 1 || st.Ups != 1 || st.Downs != 0 || st.Errors != 0 {
		t.Fatalf("after up: %+v", st)
	}
	if st.LastDecision != Up || st.LastTickAt != 1 || st.Last.Backlog != 100 {
		t.Fatalf("last-tick snapshot wrong: %+v", st)
	}
	if act.ups != 1 {
		t.Fatalf("actuator ups = %d", act.ups)
	}

	src.backlog = 0
	clk.now = 10
	if d := c.TickNow(); d != Down {
		t.Fatalf("tick = %v, want down", d)
	}
	st = c.Stats()
	if st.Ticks != 2 || st.Downs != 1 || st.LastDecision != Down {
		t.Fatalf("after down: %+v", st)
	}
}

func TestStatsCountsActuatorErrors(t *testing.T) {
	c, src, act, clk := newTestController(Config{
		UpBacklog: 10, UpStreak: 1, CooldownSec: 0.001, IntervalSec: 1, Max: 4,
	})
	act.failUp = errors.New("boot failed")
	src.backlog = 100
	clk.now = 1
	if d := c.TickNow(); d != Up {
		t.Fatalf("tick = %v, want up (decision precedes actuation)", d)
	}
	st := c.Stats()
	if st.Ups != 1 || st.Errors != 1 {
		t.Fatalf("failed actuation: %+v", st)
	}
}
