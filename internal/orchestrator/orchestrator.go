// Package orchestrator implements the NFV Orchestrator (Fig. 2): it boots
// and retires NF instances on hosts on behalf of the SDNFV Application.
//
// Instantiating a VM is slow — the paper measures about 7.75 s to boot a
// new VM, and notes it "can be further reduced by just starting a new
// process in a stand-by VM" (§5.2). The orchestrator models both paths: a
// configurable boot delay for cold starts and a standby pool for fast
// starts. The delay runs on a caller-supplied clock so the same code works
// under the real clock and the discrete-event simulator.
package orchestrator

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"sdnfv/internal/flowtable"
	"sdnfv/internal/nf"
)

// HostHandle abstracts the per-host operations the orchestrator needs; the
// real dataplane.Host and the netem simulator both satisfy it through thin
// adapters. Like the rest of the control API (internal/control), the
// operations are typed and context-aware so callers can bound slow boots.
type HostHandle interface {
	// HostName identifies the host.
	HostName() string
	// Launch makes service svc available backed by fn; called after the
	// boot delay has elapsed. ctx carries the deadline of the
	// Instantiate call that scheduled the boot. Hosts run the outgoing
	// NF's Close hook when a launch replaces an existing instance.
	Launch(ctx context.Context, svc flowtable.ServiceID, fn nf.BatchFunction) error
}

// Clock schedules a callback after a virtual or real delay in seconds.
type Clock interface {
	// After runs fn once delay seconds have passed.
	After(delay float64, fn func())
	// Now returns the current time in seconds.
	Now() float64
}

// Config tunes the orchestrator.
type Config struct {
	// BootDelaySec is the cold-start VM boot time (paper: 7.75 s).
	BootDelaySec float64
	// StandbyDelaySec is the fast-start delay when a standby VM exists.
	StandbyDelaySec float64
	// Standby is the number of pre-booted standby slots per host.
	Standby int
}

// Launch records one instantiation.
type Launch struct {
	Host    string
	Service flowtable.ServiceID
	// RequestedAt/ReadyAt are clock timestamps in seconds.
	RequestedAt float64
	ReadyAt     float64
	// Standby reports whether the fast path was used.
	Standby bool
}

// Orchestrator boots NF instances with realistic delays.
type Orchestrator struct {
	cfg   Config
	clock Clock

	mu          sync.Mutex
	hosts       map[string]HostHandle
	standby     map[string]int
	launches    []Launch
	retirements []Retirement
	pending     int
}

// New builds an orchestrator. clock must not be nil.
func New(cfg Config, clock Clock) *Orchestrator {
	if cfg.BootDelaySec == 0 {
		cfg.BootDelaySec = 7.75
	}
	if cfg.StandbyDelaySec == 0 {
		cfg.StandbyDelaySec = 0.5
	}
	return &Orchestrator{
		cfg:     cfg,
		clock:   clock,
		hosts:   make(map[string]HostHandle),
		standby: make(map[string]int),
	}
}

// AddHost registers a host under the orchestrator's control, seeding its
// standby pool.
func (o *Orchestrator) AddHost(h HostHandle) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.hosts[h.HostName()] = h
	o.standby[h.HostName()] = o.cfg.Standby
}

// Hosts returns the registered host names.
func (o *Orchestrator) Hosts() []string {
	o.mu.Lock()
	defer o.mu.Unlock()
	names := make([]string, 0, len(o.hosts))
	for n := range o.hosts {
		names = append(names, n)
	}
	return names
}

// ErrUnknownHost reports an Instantiate against an unregistered host.
var ErrUnknownHost = errors.New("orchestrator: unknown host")

// Instantiate boots fn as service svc on the named host. onReady (may be
// nil) runs once the NF is launched and registered. The launch completes
// after the cold-boot delay, or the standby delay when a standby slot is
// available. Instantiation is asynchronous: Instantiate returns after
// scheduling the boot, and a ctx cancelled before the boot delay
// elapses aborts the launch.
func (o *Orchestrator) Instantiate(ctx context.Context, host string, svc flowtable.ServiceID, fn nf.BatchFunction, onReady func(Launch)) error {
	return o.instantiate(ctx, host, svc, fn, func(l Launch, err error) {
		if err == nil && onReady != nil {
			onReady(l)
		}
	})
}

// instantiate schedules the boot and reports its outcome — success or
// the host's refusal — to onDone exactly once.
func (o *Orchestrator) instantiate(ctx context.Context, host string, svc flowtable.ServiceID, fn nf.BatchFunction, onDone func(Launch, error)) error {
	o.mu.Lock()
	h, ok := o.hosts[host]
	if !ok {
		o.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownHost, host)
	}
	delay := o.cfg.BootDelaySec
	usedStandby := false
	if o.standby[host] > 0 {
		o.standby[host]--
		delay = o.cfg.StandbyDelaySec
		usedStandby = true
	}
	o.pending++
	now := o.clock.Now()
	o.mu.Unlock()

	o.clock.After(delay, func() {
		l := Launch{
			Host:        host,
			Service:     svc,
			RequestedAt: now,
			ReadyAt:     o.clock.Now(),
			Standby:     usedStandby,
		}
		err := ctx.Err()
		if err == nil {
			err = h.Launch(ctx, svc, fn)
		} else if usedStandby {
			// Aborted before boot: the pre-booted VM was never used,
			// so its standby slot goes back to the pool.
			o.mu.Lock()
			o.standby[host]++
			o.mu.Unlock()
		}
		o.mu.Lock()
		o.pending--
		if err == nil {
			o.launches = append(o.launches, l)
		}
		o.mu.Unlock()
		if onDone != nil {
			onDone(l, err)
		}
	})
	return nil
}

// Placement names one service instantiation of a deployment: the host
// the placement engine chose (§3.5) and the NF implementation backing
// the service there.
type Placement struct {
	Host    string
	Service flowtable.ServiceID
	NF      nf.BatchFunction
}

// Deploy boots a whole placement — each service on the host the
// placement engine assigned it to — and waits until every launch has
// completed or ctx expires. This is the hook that lets a solved
// multi-node placement (placement.Assignment mapped to host names)
// drive the live engine instead of remaining a paper exercise.
//
// Deploy schedules every placement (a host refusal does not stop the
// rest) and returns the subset that actually came up, so a caller — in
// particular the reconciler — can converge or undo the applied set
// instead of guessing which placements a mid-slice failure left booted.
// The error joins every individual failure. On ctx expiry the applied
// set holds the launches that completed before the deadline and the
// error wraps ctx.Err(); late boots still land in Launches as usual.
func (o *Orchestrator) Deploy(ctx context.Context, placements []Placement) ([]Placement, error) {
	type outcome struct {
		p   Placement
		err error
	}
	done := make(chan outcome, len(placements))
	scheduled := 0
	var errs []error
	for _, p := range placements {
		p := p
		err := o.instantiate(ctx, p.Host, p.Service, p.NF, func(_ Launch, err error) {
			done <- outcome{p: p, err: err}
		})
		if err != nil {
			errs = append(errs, fmt.Errorf("orchestrator: deploy %s on %q: %w", p.Service, p.Host, err))
			continue
		}
		scheduled++
	}
	var applied []Placement
	for range scheduled {
		select {
		case oc := <-done:
			if oc.err != nil {
				errs = append(errs, fmt.Errorf("orchestrator: deploy %s on %q: %w", oc.p.Service, oc.p.Host, oc.err))
				continue
			}
			applied = append(applied, oc.p)
		case <-ctx.Done():
			errs = append(errs, ctx.Err())
			return applied, errors.Join(errs...)
		}
	}
	return applied, errors.Join(errs...)
}

// Remover is the optional scale-down capability of a HostHandle: retiring
// one replica of a service with a flow-state-safe drain.
// dataplane.NamedHost satisfies it through Host.RemoveNF.
type Remover interface {
	RemoveNF(svc flowtable.ServiceID, index int) error
}

// Retirement records one completed scale-down.
type Retirement struct {
	Host    string
	Service flowtable.ServiceID
	Index   int
	// At is the clock timestamp in seconds.
	At float64
}

// ErrCannotRetire reports a Retire against a host whose handle has no
// remove capability (e.g. a simulation stub).
var ErrCannotRetire = errors.New("orchestrator: host cannot retire NFs")

// Retire removes replica index of service svc on the named host — the
// scale-down counterpart of Instantiate. The call is synchronous: it
// returns once the host has drained and closed the replica (the paper's
// dynamic scaling scenarios, §3.3/§5.2). The freed VM joins the host's
// standby pool, modeling §5.2's "starting a new process in a stand-by
// VM": a later Instantiate reuses it at the fast-start delay.
func (o *Orchestrator) Retire(ctx context.Context, host string, svc flowtable.ServiceID, index int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	o.mu.Lock()
	h, ok := o.hosts[host]
	o.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownHost, host)
	}
	r, ok := h.(Remover)
	if !ok {
		return fmt.Errorf("%w: %q", ErrCannotRetire, host)
	}
	if err := r.RemoveNF(svc, index); err != nil {
		return err
	}
	o.mu.Lock()
	o.standby[host]++
	o.retirements = append(o.retirements, Retirement{
		Host: host, Service: svc, Index: index, At: o.clock.Now(),
	})
	o.mu.Unlock()
	return nil
}

// Retirements returns a copy of the completed retirement log.
func (o *Orchestrator) Retirements() []Retirement {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]Retirement(nil), o.retirements...)
}

// Launches returns a copy of the completed launch log.
func (o *Orchestrator) Launches() []Launch {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]Launch(nil), o.launches...)
}

// Pending returns the number of in-flight instantiations.
func (o *Orchestrator) Pending() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.pending
}
