package orchestrator

import (
	"container/heap"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"sdnfv/internal/flowtable"
	"sdnfv/internal/nf"
)

// fakeClock is a deterministic manual clock.
type fakeClock struct {
	now    float64
	events eventHeap
}

type clockEvent struct {
	at float64
	fn func()
}
type eventHeap []clockEvent

func (h eventHeap) Len() int           { return len(h) }
func (h eventHeap) Less(i, j int) bool { return h[i].at < h[j].at }
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(clockEvent)) }
func (h *eventHeap) Pop() any {
	old := *h
	e := old[len(old)-1]
	*h = old[:len(old)-1]
	return e
}

func (c *fakeClock) After(delay float64, fn func()) {
	heap.Push(&c.events, clockEvent{at: c.now + delay, fn: fn})
}
func (c *fakeClock) Now() float64 { return c.now }
func (c *fakeClock) advance(to float64) {
	for c.events.Len() > 0 && c.events[0].at <= to {
		e := heap.Pop(&c.events).(clockEvent)
		c.now = e.at
		e.fn()
	}
	c.now = to
}

type fakeHost struct {
	name     string
	launched []flowtable.ServiceID
	fail     error
}

func (h *fakeHost) HostName() string { return h.name }
func (h *fakeHost) Launch(_ context.Context, svc flowtable.ServiceID, _ nf.BatchFunction) error {
	if h.fail != nil {
		return h.fail
	}
	h.launched = append(h.launched, svc)
	return nil
}

type stubNF struct{}

func (stubNF) Name() string                                         { return "stub" }
func (stubNF) ReadOnly() bool                                       { return true }
func (stubNF) ProcessBatch(*nf.Context, []nf.Packet, []nf.Decision) {}

func TestColdBootDelay(t *testing.T) {
	clk := &fakeClock{}
	o := New(Config{BootDelaySec: 7.75}, clk)
	h := &fakeHost{name: "h1"}
	o.AddHost(h)
	var ready []Launch
	if err := o.Instantiate(context.Background(), "h1", 99, stubNF{}, func(l Launch) { ready = append(ready, l) }); err != nil {
		t.Fatal(err)
	}
	clk.advance(7.0)
	if len(h.launched) != 0 {
		t.Fatal("launched before boot completed")
	}
	if o.Pending() != 1 {
		t.Fatalf("pending = %d", o.Pending())
	}
	clk.advance(8.0)
	if len(h.launched) != 1 || h.launched[0] != 99 {
		t.Fatalf("launched = %v", h.launched)
	}
	if len(ready) != 1 || ready[0].ReadyAt != 7.75 || ready[0].Standby {
		t.Fatalf("ready = %+v", ready)
	}
	if got := o.Launches(); len(got) != 1 {
		t.Fatalf("launch log = %v", got)
	}
}

func TestStandbyFastPath(t *testing.T) {
	clk := &fakeClock{}
	o := New(Config{BootDelaySec: 7.75, StandbyDelaySec: 0.5, Standby: 1}, clk)
	h := &fakeHost{name: "h1"}
	o.AddHost(h)
	_ = o.Instantiate(context.Background(), "h1", 1, stubNF{}, nil)
	clk.advance(1.0)
	if len(h.launched) != 1 {
		t.Fatal("standby launch too slow")
	}
	// Second instantiation: pool exhausted, cold boot.
	_ = o.Instantiate(context.Background(), "h1", 2, stubNF{}, nil)
	clk.advance(2.0)
	if len(h.launched) != 1 {
		t.Fatal("cold boot used the standby delay")
	}
	clk.advance(10.0)
	if len(h.launched) != 2 {
		t.Fatal("cold boot never completed")
	}
	ls := o.Launches()
	if !ls[0].Standby || ls[1].Standby {
		t.Fatalf("standby flags = %+v", ls)
	}
}

func TestUnknownHost(t *testing.T) {
	o := New(Config{}, &fakeClock{})
	if err := o.Instantiate(context.Background(), "nope", 1, stubNF{}, nil); !errors.Is(err, ErrUnknownHost) {
		t.Fatalf("err = %v", err)
	}
}

func TestFailedLaunchNotLogged(t *testing.T) {
	clk := &fakeClock{}
	o := New(Config{BootDelaySec: 1}, clk)
	h := &fakeHost{name: "h1", fail: errors.New("no cores")}
	o.AddHost(h)
	called := false
	_ = o.Instantiate(context.Background(), "h1", 1, stubNF{}, func(Launch) { called = true })
	clk.advance(5)
	if called {
		t.Fatal("onReady called for failed launch")
	}
	if len(o.Launches()) != 0 {
		t.Fatal("failed launch logged")
	}
	if o.Pending() != 0 {
		t.Fatal("pending count leaked")
	}
}

func TestCancelledLaunchReturnsStandbySlot(t *testing.T) {
	clk := &fakeClock{}
	o := New(Config{BootDelaySec: 7.75, StandbyDelaySec: 0.5, Standby: 1}, clk)
	h := &fakeHost{name: "h1"}
	o.AddHost(h)
	ctx, cancel := context.WithCancel(context.Background())
	_ = o.Instantiate(ctx, "h1", 1, stubNF{}, nil)
	cancel() // abort before the boot delay elapses
	clk.advance(1.0)
	if len(h.launched) != 0 {
		t.Fatal("cancelled launch still booted")
	}
	if len(o.Launches()) != 0 || o.Pending() != 0 {
		t.Fatal("cancelled launch logged or leaked pending")
	}
	// The unused standby slot is back: the next instantiation must take
	// the fast path again.
	_ = o.Instantiate(context.Background(), "h1", 2, stubNF{}, nil)
	clk.advance(2.0)
	if len(h.launched) != 1 {
		t.Fatal("standby slot not returned after cancelled launch")
	}
	if ls := o.Launches(); len(ls) != 1 || !ls[0].Standby {
		t.Fatalf("launch log = %+v", ls)
	}
}

func TestHostsListing(t *testing.T) {
	o := New(Config{}, &fakeClock{})
	o.AddHost(&fakeHost{name: "a"})
	o.AddHost(&fakeHost{name: "b"})
	if hs := o.Hosts(); len(hs) != 2 {
		t.Fatalf("hosts = %v", hs)
	}
}

// removerHost is a fakeHost with the Remover scale-down capability.
type removerHost struct {
	fakeHost
	removed []int
	failRm  error
}

func (h *removerHost) RemoveNF(_ flowtable.ServiceID, index int) error {
	if h.failRm != nil {
		return h.failRm
	}
	h.removed = append(h.removed, index)
	return nil
}

func TestRetire(t *testing.T) {
	clk := &fakeClock{now: 3}
	o := New(Config{StandbyDelaySec: 0.5}, clk)
	h := &removerHost{fakeHost: fakeHost{name: "h1"}}
	o.AddHost(h)

	if err := o.Retire(context.Background(), "h1", 99, 2); err != nil {
		t.Fatal(err)
	}
	if len(h.removed) != 1 || h.removed[0] != 2 {
		t.Fatalf("removed = %v", h.removed)
	}
	rs := o.Retirements()
	if len(rs) != 1 || rs[0] != (Retirement{Host: "h1", Service: 99, Index: 2, At: 3}) {
		t.Fatalf("retirements = %+v", rs)
	}

	// The freed VM joined the standby pool: the next boot takes the
	// fast-start path even though Config.Standby was zero.
	var got []Launch
	if err := o.Instantiate(context.Background(), "h1", 99, stubNF{}, func(l Launch) { got = append(got, l) }); err != nil {
		t.Fatal(err)
	}
	clk.advance(4.0)
	if len(got) != 1 || !got[0].Standby {
		t.Fatalf("launch after retire = %+v, want standby fast path", got)
	}
}

func TestRetireErrors(t *testing.T) {
	clk := &fakeClock{}
	o := New(Config{}, clk)
	if err := o.Retire(context.Background(), "nope", 1, 0); !errors.Is(err, ErrUnknownHost) {
		t.Fatalf("unknown host: %v", err)
	}
	plain := &fakeHost{name: "plain"}
	o.AddHost(plain)
	if err := o.Retire(context.Background(), "plain", 1, 0); !errors.Is(err, ErrCannotRetire) {
		t.Fatalf("non-remover host: %v", err)
	}
	failing := &removerHost{fakeHost: fakeHost{name: "f"}, failRm: errors.New("boom")}
	o.AddHost(failing)
	if err := o.Retire(context.Background(), "f", 1, 0); err == nil || err.Error() != "boom" {
		t.Fatalf("remove error not propagated: %v", err)
	}
	// A failed retire must not mint a standby slot.
	if o.Retirements() != nil {
		t.Fatalf("failed retire logged: %+v", o.Retirements())
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ok := &removerHost{fakeHost: fakeHost{name: "ok"}}
	o.AddHost(ok)
	if err := o.Retire(ctx, "ok", 1, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ctx: %v", err)
	}
}

// realClock runs callbacks on the wall clock (Deploy blocks, so the
// virtual clock cannot drive it from the same goroutine).
type realClock struct{ start time.Time }

func (c *realClock) After(delay float64, fn func()) {
	time.AfterFunc(time.Duration(delay*float64(time.Second)), fn)
}
func (c *realClock) Now() float64 { return time.Since(c.start).Seconds() }

// lockedHost is a fakeHost safe for the concurrent launches Deploy
// triggers on the real clock.
type lockedHost struct {
	mu sync.Mutex
	fakeHost
}

func (h *lockedHost) Launch(ctx context.Context, svc flowtable.ServiceID, fn nf.BatchFunction) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.fakeHost.Launch(ctx, svc, fn)
}

func (h *lockedHost) setFail(err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.fail = err
}

func (h *lockedHost) services() map[flowtable.ServiceID]bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := map[flowtable.ServiceID]bool{}
	for _, s := range h.launched {
		out[s] = true
	}
	return out
}

// TestDeploy boots a whole placement: each service lands on the host
// the placement chose, and a failing host surfaces as ctx expiry.
func TestDeploy(t *testing.T) {
	clk := &realClock{start: time.Now()}
	o := New(Config{BootDelaySec: 0.01, StandbyDelaySec: 0.01}, clk)
	h1 := &lockedHost{fakeHost: fakeHost{name: "h1"}}
	h2 := &lockedHost{fakeHost: fakeHost{name: "h2"}}
	o.AddHost(h1)
	o.AddHost(h2)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	applied, err := o.Deploy(ctx, []Placement{
		{Host: "h1", Service: 1, NF: stubNF{}},
		{Host: "h2", Service: 2, NF: stubNF{}},
		{Host: "h1", Service: 3, NF: stubNF{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(applied) != 3 {
		t.Fatalf("applied %d placements, want 3", len(applied))
	}
	// Boots on one host complete concurrently; only the set matters.
	got1 := h1.services()
	if len(got1) != 2 || !got1[1] || !got1[3] {
		t.Fatalf("h1 launched %v", got1)
	}
	got2 := h2.services()
	if len(got2) != 1 || !got2[2] {
		t.Fatalf("h2 launched %v", got2)
	}

	// Unknown host fails, and the applied set stays empty.
	applied, err = o.Deploy(ctx, []Placement{{Host: "nope", Service: 4, NF: stubNF{}}})
	if err == nil {
		t.Fatal("unknown host accepted")
	}
	if len(applied) != 0 {
		t.Fatalf("applied %v despite refusal", applied)
	}
	// A host that refuses the launch surfaces its error, naming the
	// placement and carrying the host's own cause.
	h1.setFail(errors.New("boom"))
	_, err = o.Deploy(ctx, []Placement{{Host: "h1", Service: 5, NF: stubNF{}}})
	if err == nil {
		t.Fatal("failed launch not surfaced")
	}
	if !strings.Contains(err.Error(), "boom") || !strings.Contains(err.Error(), "h1") {
		t.Fatalf("deploy error lost the cause: %v", err)
	}
}

// TestDeployPartialFailure is the satellite fix: a mid-slice refusal no
// longer hides which placements came up. The survivors are returned so
// a caller can converge or undo them.
func TestDeployPartialFailure(t *testing.T) {
	clk := &realClock{start: time.Now()}
	o := New(Config{BootDelaySec: 0.01, StandbyDelaySec: 0.01}, clk)
	h1 := &lockedHost{fakeHost: fakeHost{name: "h1"}}
	h2 := &lockedHost{fakeHost: fakeHost{name: "h2"}}
	o.AddHost(h1)
	o.AddHost(h2)
	h2.setFail(errors.New("host full"))

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	applied, err := o.Deploy(ctx, []Placement{
		{Host: "h1", Service: 1, NF: stubNF{}},
		{Host: "h2", Service: 2, NF: stubNF{}}, // refused mid-slice
		{Host: "h1", Service: 3, NF: stubNF{}},
	})
	if err == nil {
		t.Fatal("refusal not surfaced")
	}
	if !strings.Contains(err.Error(), "host full") {
		t.Fatalf("deploy error lost the cause: %v", err)
	}
	got := map[flowtable.ServiceID]bool{}
	for _, p := range applied {
		if p.Host != "h1" {
			t.Fatalf("applied placement on wrong host: %+v", p)
		}
		got[p.Service] = true
	}
	if len(got) != 2 || !got[1] || !got[3] {
		t.Fatalf("applied set %v, want services 1 and 3 on h1", got)
	}
	// The applied set matches what the hosts actually booted.
	if launched := h1.services(); len(launched) != 2 || !launched[1] || !launched[3] {
		t.Fatalf("h1 launched %v", launched)
	}
	if launched := h2.services(); len(launched) != 0 {
		t.Fatalf("h2 launched %v despite refusing", launched)
	}
}
