package placement

import (
	"testing"
	"time"

	"sdnfv/internal/topo"
)

var testSpec = Spec{FlowsPerCore: map[Service]int{1: 10, 2: 10, 3: 4}}

func lineFlows(n int, chain []Service, bw float64) []Flow {
	flows := make([]Flow, n)
	for i := range flows {
		flows[i] = Flow{Ingress: 0, Egress: 3, Chain: chain, BandwidthBps: bw}
	}
	return flows
}

func TestGreedySimpleChain(t *testing.T) {
	top := topo.Line(4, 2, 1e9, 0.001)
	flows := lineFlows(2, []Service{1, 2}, 1e8)
	asg, err := SolveGreedy(top, flows, testSpec)
	if err != nil {
		t.Fatal(err)
	}
	if asg.NumAccepted() != 2 {
		t.Fatalf("accepted %d of 2", asg.NumAccepted())
	}
	for k := range flows {
		if len(asg.Nodes[k]) != 2 {
			t.Fatalf("flow %d placed on %v", k, asg.Nodes[k])
		}
	}
	if asg.U() <= 0 || asg.U() > 1 {
		t.Fatalf("U = %v", asg.U())
	}
}

func TestGreedyRejectsWhenOutOfCores(t *testing.T) {
	top := topo.Line(2, 1, 1e9, 0.001) // 2 nodes, 1 core each
	spec := Spec{FlowsPerCore: map[Service]int{1: 1}}
	flows := []Flow{
		{Ingress: 0, Egress: 1, Chain: []Service{1, 1, 1}, BandwidthBps: 1e6},
	}
	asg, err := SolveGreedy(top, flows, spec)
	if err != nil {
		t.Fatal(err)
	}
	// Chain needs 3 instances but only 2 cores exist.
	if asg.NumAccepted() != 0 {
		t.Fatalf("accepted %d, want 0", asg.NumAccepted())
	}
}

func TestMILPSimpleChain(t *testing.T) {
	top := topo.Line(4, 2, 1e9, 0.001)
	flows := lineFlows(2, []Service{1, 2}, 1e8)
	asg, err := SolveMILP(top, flows, testSpec, MILPOptions{TimeLimit: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if asg.NumAccepted() != 2 {
		t.Fatalf("accepted %d of 2", asg.NumAccepted())
	}
	// Routes must start at ingress and end at egress.
	for k := range flows {
		first := asg.Routes[k][0]
		last := asg.Routes[k][len(asg.Routes[k])-1]
		if first[0] != 0 {
			t.Fatalf("flow %d route starts at %v", k, first[0])
		}
		if last[len(last)-1] != 3 {
			t.Fatalf("flow %d route ends at %v", k, last[len(last)-1])
		}
	}
	if asg.U() > 1+1e-9 {
		t.Fatalf("MILP violated utilization: U=%v", asg.U())
	}
}

func TestMILPBeatsOrMatchesGreedy(t *testing.T) {
	// On a 5-node line with limited cores, the MILP should spread load at
	// least as well as the greedy (lower or equal max utilization).
	top := topo.Line(5, 2, 1e9, 0.001)
	flows := make([]Flow, 4)
	for i := range flows {
		flows[i] = Flow{Ingress: 0, Egress: 4, Chain: []Service{1, 3}, BandwidthBps: 2e8}
	}
	g, err := SolveGreedy(top, flows, testSpec)
	if err != nil {
		t.Fatal(err)
	}
	m, err := SolveMILP(top, flows, testSpec, MILPOptions{TimeLimit: 60 * time.Second, SlackHops: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumAccepted() < g.NumAccepted() {
		t.Fatalf("MILP accepted %d < greedy %d", m.NumAccepted(), g.NumAccepted())
	}
	if m.NumAccepted() == g.NumAccepted() && m.U() > g.U()+1e-6 {
		t.Fatalf("MILP U=%v worse than greedy U=%v", m.U(), g.U())
	}
}

func TestMILPRespectsCoreCapacity(t *testing.T) {
	// 1 core per node, service needs 1 core per flow: 2 flows through a
	// 3-node line need 2 service placements each -> must use distinct
	// nodes; a third flow is infeasible.
	top := topo.Line(3, 1, 1e9, 0.001)
	spec := Spec{FlowsPerCore: map[Service]int{1: 1}}
	flows := []Flow{
		{Ingress: 0, Egress: 2, Chain: []Service{1}, BandwidthBps: 1e6},
		{Ingress: 0, Egress: 2, Chain: []Service{1}, BandwidthBps: 1e6},
		{Ingress: 0, Egress: 2, Chain: []Service{1}, BandwidthBps: 1e6},
		{Ingress: 0, Egress: 2, Chain: []Service{1}, BandwidthBps: 1e6},
	}
	_, err := SolveMILP(top, flows, spec, MILPOptions{TimeLimit: 30 * time.Second})
	if err == nil {
		t.Fatal("4 single-core flows on 3 cores should be infeasible")
	}
	// 3 flows fit exactly.
	asg, err := SolveMILP(top, flows[:3], spec, MILPOptions{TimeLimit: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if asg.NumAccepted() != 3 {
		t.Fatalf("accepted %d of 3", asg.NumAccepted())
	}
	// All three nodes must host exactly one instance.
	total := 0
	for _, m := range asg.Instances {
		for _, c := range m {
			total += c
		}
	}
	if total != 3 {
		t.Fatalf("instances = %d, want 3", total)
	}
}

func TestDivisionHeuristic(t *testing.T) {
	top := topo.Line(4, 2, 1e9, 0.001)
	flows := lineFlows(4, []Service{1, 2}, 1e8)
	asg, err := SolveDivision(top, flows, testSpec, DivisionOptions{
		BatchSize: 2,
		MILP:      MILPOptions{TimeLimit: 30 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	if asg.NumAccepted() != 4 {
		t.Fatalf("accepted %d of 4", asg.NumAccepted())
	}
	if asg.U() > 1+1e-9 {
		t.Fatalf("U = %v", asg.U())
	}
}

func TestDelayBound(t *testing.T) {
	// A flow whose delay budget cannot be met must be infeasible.
	top := topo.Line(4, 2, 1e9, 0.010) // 10 ms per hop, 3 hops minimum
	flows := []Flow{{
		Ingress: 0, Egress: 3, Chain: []Service{1},
		BandwidthBps: 1e6, MaxDelaySec: 0.015, // < 30 ms needed
	}}
	if _, err := SolveMILP(top, flows, testSpec, MILPOptions{TimeLimit: 15 * time.Second}); err == nil {
		t.Fatal("delay-infeasible flow accepted")
	}
	flows[0].MaxDelaySec = 0.050
	if _, err := SolveMILP(top, flows, testSpec, MILPOptions{TimeLimit: 15 * time.Second}); err != nil {
		t.Fatalf("feasible delay rejected: %v", err)
	}
}

func TestValidateFlows(t *testing.T) {
	top := topo.Line(2, 1, 1e9, 0.001)
	flows := []Flow{{Ingress: 0, Egress: 1, Chain: []Service{99}}}
	if _, err := SolveGreedy(top, flows, testSpec); err == nil {
		t.Fatal("unknown service should error")
	}
	if _, err := SolveMILP(top, flows, testSpec, MILPOptions{}); err == nil {
		t.Fatal("unknown service should error")
	}
}
