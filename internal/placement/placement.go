// Package placement implements the SDNFV Placement Engine (§3.5): joint NF
// placement and flow routing that minimizes the maximum utilization of the
// network's links and NFV hosts.
//
// Three solvers reproduce the paper's comparison (Fig. 5):
//
//   - SolveMILP — the mixed-integer formulation of Eqs. (1)–(9), built on
//     the internal/lp branch-and-bound solver. One modeling note: Eq. (9)
//     in the paper divides assigned flows by deployed instances, which is
//     bilinear (U·M). We linearize by charging each flow 1/P_j of a core
//     and bounding node core usage by U·C_i — the same "maximum
//     utilization of cores" semantics with a single linear MILP.
//   - SolveGreedy — the paper's best-effort heuristic: services go to the
//     first available cores on nodes along the flow's shortest path, then
//     on neighboring nodes.
//   - SolveDivision — the paper's Division Heuristic: solve the MILP for
//     small batches of flows (default 5), commit, subtract the residual
//     capacity, and continue.
package placement

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"sdnfv/internal/lp"
	"sdnfv/internal/topo"
)

// Service identifies an abstract service kind in a chain (J1..J5 in the
// paper's experiment).
type Service int

// Spec describes service resource behaviour.
type Spec struct {
	// FlowsPerCore is P_j: how many flows one core of service j sustains.
	FlowsPerCore map[Service]int
}

// Flow is one demand: a chain of services between ingress and egress.
type Flow struct {
	Ingress, Egress topo.NodeID
	// Chain is the ordered service requirement (length L).
	Chain []Service
	// BandwidthBps is B_k.
	BandwidthBps float64
	// MaxDelaySec is T_k (0 = unconstrained).
	MaxDelaySec float64
}

// Assignment is a solved placement for a set of flows.
type Assignment struct {
	// Nodes[k][l] is the node hosting the l-th service of flow k.
	Nodes [][]topo.NodeID
	// Routes[k][l'] is the node path for leg l' (from position l' to
	// l'+1 of [ingress, services..., egress]).
	Routes [][][]topo.NodeID
	// Instances[node][service] counts deployed NF instances.
	Instances map[topo.NodeID]map[Service]int
	// LinkUtil is max link utilization; CoreUtil max node core
	// utilization; U = max of both (the objective of §3.5).
	LinkUtil, CoreUtil float64
	// Accepted flags per-flow success (heuristics may reject flows).
	Accepted []bool
	// Progress records cumulative (accepted, U) after each flow (greedy)
	// or batch (division), for capacity sweeps.
	Progress []ProgressPoint
}

// ProgressPoint is one step of an incremental solve.
type ProgressPoint struct {
	FlowsTried int
	Accepted   int
	U          float64
}

// U returns the combined objective value.
func (a *Assignment) U() float64 { return math.Max(a.LinkUtil, a.CoreUtil) }

// NumAccepted counts accepted flows.
func (a *Assignment) NumAccepted() int {
	n := 0
	for _, ok := range a.Accepted {
		if ok {
			n++
		}
	}
	return n
}

// ErrNoSpec reports a chain service missing from the spec.
var ErrNoSpec = errors.New("placement: service missing from spec")

// state tracks residual capacity while committing placements.
type state struct {
	t         *topo.Topology
	spec      Spec
	coreUsed  []float64                  // fractional cores consumed per node
	linkLoad  map[[2]topo.NodeID]float64 // bps per directed edge
	instances map[topo.NodeID]map[Service]int
	// instance slack: flows still admissible on deployed instances.
	slack map[topo.NodeID]map[Service]int
}

func newState(t *topo.Topology, spec Spec) *state {
	return &state{
		t:         t,
		spec:      spec,
		coreUsed:  make([]float64, t.N()),
		linkLoad:  make(map[[2]topo.NodeID]float64),
		instances: make(map[topo.NodeID]map[Service]int),
		slack:     make(map[topo.NodeID]map[Service]int),
	}
}

// addInstance deploys one instance of svc on node (consumes a whole core).
func (s *state) addInstance(node topo.NodeID, svc Service) {
	if s.instances[node] == nil {
		s.instances[node] = map[Service]int{}
		s.slack[node] = map[Service]int{}
	}
	s.instances[node][svc]++
	s.slack[node][svc] += s.spec.FlowsPerCore[svc]
}

// coresCommitted returns whole cores deployed on node.
func (s *state) coresCommitted(node topo.NodeID) int {
	n := 0
	for _, c := range s.instances[node] {
		n += c
	}
	return n
}

// assignFlowService places one flow's service hop on node, deploying an
// instance when no slack remains. Returns false when the node is out of
// cores.
func (s *state) assignFlowService(node topo.NodeID, svc Service) bool {
	if s.slack[node][svc] == 0 {
		if s.coresCommitted(node) >= s.t.Cores(node) {
			return false
		}
		s.addInstance(node, svc)
	}
	s.slack[node][svc]--
	s.coreUsed[node] += 1 / float64(s.spec.FlowsPerCore[svc])
	return true
}

// unassignFlowService returns a flow slot taken by assignFlowService. The
// instance (and its core) stays deployed; only the flow slot and the
// fractional core usage are refunded.
func (s *state) unassignFlowService(node topo.NodeID, svc Service) {
	s.slack[node][svc]++
	s.coreUsed[node] -= 1 / float64(s.spec.FlowsPerCore[svc])
}

// addRoute charges bw along path.
func (s *state) addRoute(path []topo.NodeID, bw float64) {
	for i := 0; i+1 < len(path); i++ {
		s.linkLoad[[2]topo.NodeID{path[i], path[i+1]}] += bw
	}
}

// utilization computes (linkUtil, coreUtil) for the committed state.
func (s *state) utilization() (float64, float64) {
	linkU := 0.0
	for k, load := range s.linkLoad {
		e, ok := s.t.EdgeBetween(k[0], k[1])
		if !ok || e.CapBps <= 0 {
			continue
		}
		if u := load / e.CapBps; u > linkU {
			linkU = u
		}
	}
	// Core utilization counts deployed (committed) cores against the
	// network's core budget: an instance pins a core whether or not its
	// flow slots are full (the Eq. (9) P_ji·M_ij capacity view). The
	// aggregate fraction makes greedy (no instance sharing, ~one core per
	// service per flow) and the optimizer (shared instances) directly
	// comparable.
	committed, total := 0, 0
	for i := 0; i < s.t.N(); i++ {
		committed += s.coresCommitted(topo.NodeID(i))
		total += s.t.Cores(topo.NodeID(i))
	}
	coreU := 0.0
	if total > 0 {
		coreU = float64(committed) / float64(total)
	}
	return linkU, coreU
}

func validateFlows(flows []Flow, spec Spec) error {
	for k, f := range flows {
		for _, svc := range f.Chain {
			if spec.FlowsPerCore[svc] <= 0 {
				return fmt.Errorf("%w: flow %d service %d", ErrNoSpec, k, svc)
			}
		}
	}
	return nil
}

// SolveGreedy is the paper's greedy baseline: for each flow, walk its
// shortest ingress→egress path assigning each chain service to "the first
// available core" — a fresh core per service per flow, with no instance
// sharing across flows (that sharing is exactly what the optimization
// formulation adds) — spilling to neighbors of path nodes when the path
// is full.
func SolveGreedy(t *topo.Topology, flows []Flow, spec Spec) (*Assignment, error) {
	if err := validateFlows(flows, spec); err != nil {
		return nil, err
	}
	st := newState(t, spec)
	asg := &Assignment{
		Nodes:     make([][]topo.NodeID, len(flows)),
		Routes:    make([][][]topo.NodeID, len(flows)),
		Instances: st.instances,
		Accepted:  make([]bool, len(flows)),
	}
	for k, f := range flows {
		path, _, ok := t.ShortestPath(f.Ingress, f.Egress)
		if !ok {
			asg.recordProgress(st, k+1)
			continue
		}
		// Candidate nodes in greedy order: path nodes, then their
		// neighbors.
		var cands []topo.NodeID
		seen := map[topo.NodeID]bool{}
		for _, n := range path {
			if !seen[n] {
				seen[n] = true
				cands = append(cands, n)
			}
		}
		for _, n := range path {
			for _, e := range t.Neighbors(n) {
				if !seen[e.To] {
					seen[e.To] = true
					cands = append(cands, e.To)
				}
			}
		}
		nodes := make([]topo.NodeID, 0, len(f.Chain))
		ok = true
		for _, svc := range f.Chain {
			placed := false
			for _, n := range cands {
				// "First available cores": a fresh core per service per
				// flow; the greedy never shares instances across flows.
				if st.coresCommitted(n) < t.Cores(n) {
					st.addInstance(n, svc)
					st.slack[n][svc]--
					st.coreUsed[n] += 1 / float64(spec.FlowsPerCore[svc])
					nodes = append(nodes, n)
					placed = true
					break
				}
			}
			if !placed {
				ok = false
				break
			}
		}
		if !ok {
			asg.recordProgress(st, k+1)
			continue
		}
		// Route: ingress → s1 → … → sL → egress on shortest paths.
		waypoints := append([]topo.NodeID{f.Ingress}, nodes...)
		waypoints = append(waypoints, f.Egress)
		var legs [][]topo.NodeID
		for i := 0; i+1 < len(waypoints); i++ {
			leg, _, lok := t.ShortestPath(waypoints[i], waypoints[i+1])
			if !lok {
				ok = false
				break
			}
			st.addRoute(leg, f.BandwidthBps)
			legs = append(legs, leg)
		}
		if !ok {
			asg.recordProgress(st, k+1)
			continue
		}
		asg.Nodes[k] = nodes
		asg.Routes[k] = legs
		asg.Accepted[k] = true
		asg.recordProgress(st, k+1)
	}
	asg.LinkUtil, asg.CoreUtil = st.utilization()
	return asg, nil
}

// recordProgress appends a cumulative progress point.
func (a *Assignment) recordProgress(st *state, tried int) {
	l, c := st.utilization()
	n := 0
	for _, ok := range a.Accepted[:tried] {
		if ok {
			n++
		}
	}
	a.Progress = append(a.Progress, ProgressPoint{FlowsTried: tried, Accepted: n, U: math.Max(l, c)})
}

// dedge is a directed edge of the candidate subgraph.
type dedge struct{ a, b topo.NodeID }

// MILPOptions tunes the exact solver.
type MILPOptions struct {
	// MaxNodes / TimeLimit bound the branch-and-bound search.
	MaxNodes  int
	TimeLimit time.Duration
	// SlackHops widens per-flow candidate node sets: nodes within
	// (shortest-hop-distance + SlackHops) of both endpoints qualify.
	// Default 1. Larger = closer to the unpruned formulation, slower.
	SlackHops int
	// MaxCandidates caps each flow's candidate node set (closest to the
	// endpoints win; ingress and egress always stay). 0 = 8. Dense
	// topologies have many equal-length paths, and the MILP grows with
	// the square of the candidate count.
	MaxCandidates int
	// RoundLP solves only the LP relaxation and derives an integral
	// placement by LP-guided rounding (choose each service hop's node by
	// descending fractional value, subject to residual capacity). It
	// trades optimality for speed — the mode the division heuristic uses
	// at experiment scale. The exact branch-and-bound remains the default.
	RoundLP bool
	// SkipRouting drops the V (per-leg link) variables from the LP; only
	// meaningful with RoundLP. Faster but blind to link utilization.
	SkipRouting bool
	// Verbose prints problem sizes to ease tuning.
	Verbose bool
	// prior carries residual capacity from the division heuristic.
	prior *state
}

// SolveMILP builds and solves Eqs. (1)–(9) for the given flows jointly.
func SolveMILP(t *topo.Topology, flows []Flow, spec Spec, opt MILPOptions) (*Assignment, error) {
	if err := validateFlows(flows, spec); err != nil {
		return nil, err
	}
	if opt.SlackHops == 0 {
		opt.SlackHops = 1
	}
	if opt.MaxNodes == 0 {
		opt.MaxNodes = 2000
	}
	if opt.MaxCandidates == 0 {
		opt.MaxCandidates = 8
	}
	st := opt.prior
	if st == nil {
		st = newState(t, spec)
	}

	// Candidate node sets per flow (pruning; §3.5's post-processing
	// "removes unused switches" similarly shrinks subproblems).
	cands := make([][]topo.NodeID, len(flows))
	diArr := make([][]int, len(flows))
	deArr := make([][]int, len(flows))
	spHopsArr := make([]int, len(flows))
	for k, f := range flows {
		di := t.HopDistances(f.Ingress)
		de := t.HopDistances(f.Egress)
		diArr[k], deArr[k] = di, de
		spPath, _, ok := t.ShortestPath(f.Ingress, f.Egress)
		if !ok {
			return nil, fmt.Errorf("placement: flow %d endpoints disconnected", k)
		}
		onSP := map[topo.NodeID]bool{}
		for _, n := range spPath {
			onSP[n] = true
		}
		spHops := di[f.Egress]
		spHopsArr[k] = spHops
		for i := 0; i < t.N(); i++ {
			n := topo.NodeID(i)
			if di[i] >= 0 && de[i] >= 0 && di[i]+de[i] <= spHops+opt.SlackHops {
				// Only nodes with spare capacity (or already-deployed
				// slack) are candidates.
				cands[k] = append(cands[k], n)
			}
		}
		if len(cands[k]) == 0 {
			return nil, fmt.Errorf("placement: flow %d has no candidate nodes", k)
		}
		if len(cands[k]) > opt.MaxCandidates {
			// Keep endpoints plus the nodes closest to the flow's path.
			// One whole shortest path always survives the cap so the
			// candidate subgraph stays connected.
			sort.Slice(cands[k], func(a, b int) bool {
				na, nb := cands[k][a], cands[k][b]
				pa, pb := boolRank(onSP[na]), boolRank(onSP[nb])
				if pa != pb {
					return pa > pb
				}
				da := di[na] + de[na]
				db := di[nb] + de[nb]
				if da != db {
					return da < db
				}
				return na < nb
			})
			if len(spPath) > opt.MaxCandidates {
				opt.MaxCandidates = len(spPath)
			}
			cands[k] = cands[k][:opt.MaxCandidates]
			sort.Slice(cands[k], func(a, b int) bool { return cands[k][a] < cands[k][b] })
		}
	}
	// Per-flow directed edge sets: each flow may only route within its own
	// candidate subgraph, which keeps the MILP small (the paper's
	// post-processing step similarly "removes unused switches").
	flowEdges := make([][]dedge, len(flows))
	edgeCap := map[dedge]float64{}
	edgeDelay := map[dedge]float64{}
	unionEdges := map[dedge]bool{}
	for k := range flows {
		inSet := map[topo.NodeID]bool{}
		for _, n := range cands[k] {
			inSet[n] = true
		}
		for _, n := range cands[k] {
			for _, e := range t.Neighbors(n) {
				if inSet[e.To] {
					de := dedge{n, e.To}
					flowEdges[k] = append(flowEdges[k], de)
					edgeCap[de] = e.CapBps
					edgeDelay[de] = e.DelaySec
					unionEdges[de] = true
				}
			}
		}
		sort.Slice(flowEdges[k], func(i, j int) bool {
			if flowEdges[k][i].a != flowEdges[k][j].a {
				return flowEdges[k][i].a < flowEdges[k][j].a
			}
			return flowEdges[k][i].b < flowEdges[k][j].b
		})
	}
	var dedges []dedge
	for de := range unionEdges {
		dedges = append(dedges, de)
	}
	sort.Slice(dedges, func(i, j int) bool {
		if dedges[i].a != dedges[j].a {
			return dedges[i].a < dedges[j].a
		}
		return dedges[i].b < dedges[j].b
	})

	prob := lp.NewProblem()
	bigU := prob.AddVar("U", 1, 0, math.Inf(1), false) // minimize U

	// M_ij: instances of service j on node i.
	services := map[Service]bool{}
	for _, f := range flows {
		for _, s := range f.Chain {
			services[s] = true
		}
	}
	var svcList []Service
	for s := range services {
		svcList = append(svcList, s)
	}
	sort.Slice(svcList, func(i, j int) bool { return svcList[i] < svcList[j] })

	candSet := map[topo.NodeID]bool{}
	for k := range flows {
		for _, n := range cands[k] {
			candSet[n] = true
		}
	}
	// Deterministic constraint order: map iteration order would otherwise
	// reshuffle rows (and with them the anti-degeneracy perturbation and
	// rounding tie-breaks) between runs.
	candList := make([]topo.NodeID, 0, len(candSet))
	for n := range candSet {
		candList = append(candList, n)
	}
	sort.Slice(candList, func(i, j int) bool { return candList[i] < candList[j] })
	mVar := map[topo.NodeID]map[Service]lp.Var{}
	for _, n := range candList {
		mVar[n] = map[Service]lp.Var{}
		for _, svc := range svcList {
			v := prob.AddVar(fmt.Sprintf("M_%d_%d", n, svc), 0, 0, float64(t.Cores(n)), true)
			prob.SetBranchPriority(v, 2)
			mVar[n][svc] = v
		}
	}
	// Eq (1): cores per node, accounting prior deployments.
	for _, n := range candList {
		terms := make([]lp.Term, 0, len(svcList))
		for _, svc := range svcList {
			terms = append(terms, lp.Term{Var: mVar[n][svc], Coef: 1})
		}
		avail := float64(t.Cores(n) - st.coresCommitted(n))
		prob.AddConstraint(terms, lp.LE, avail)
	}

	// N_k,l,i: binary placement of flow k's l-th service on node i.
	nVar := make([]map[int]map[topo.NodeID]lp.Var, len(flows))
	for k, f := range flows {
		nVar[k] = map[int]map[topo.NodeID]lp.Var{}
		for l := range f.Chain {
			nVar[k][l] = map[topo.NodeID]lp.Var{}
			for _, n := range cands[k] {
				v := prob.AddVar(fmt.Sprintf("N_%d_%d_%d", k, l, n), 0, 0, 1, true)
				prob.SetBranchPriority(v, 1)
				prob.SetStructuralUpperBound(v) // Eq (3) sums N to 1
				nVar[k][l][n] = v
			}
			// Eq (3): exactly one node per service hop.
			terms := make([]lp.Term, 0, len(cands[k]))
			for _, n := range cands[k] {
				terms = append(terms, lp.Term{Var: nVar[k][l][n], Coef: 1})
			}
			prob.AddConstraint(terms, lp.EQ, 1)
		}
	}

	// Eq (7): per-(node,service) capacity: flows ≤ P_j·(M + prior slack).
	for _, n := range candList {
		for _, svc := range svcList {
			var terms []lp.Term
			for k, f := range flows {
				for l, cs := range f.Chain {
					if cs != svc {
						continue
					}
					if v, ok := nVar[k][l][n]; ok {
						terms = append(terms, lp.Term{Var: v, Coef: 1})
					}
				}
			}
			if len(terms) == 0 {
				continue
			}
			pj := float64(spec.FlowsPerCore[svc])
			terms = append(terms, lp.Term{Var: mVar[n][svc], Coef: -pj})
			prob.AddConstraint(terms, lp.LE, float64(st.slack[n][svc]))
		}
	}

	// Eq (9) linearized: node core usage ≤ U·C_i.
	for _, n := range candList {
		var terms []lp.Term
		for k, f := range flows {
			for l, svc := range f.Chain {
				if v, ok := nVar[k][l][n]; ok {
					terms = append(terms, lp.Term{Var: v, Coef: 1 / float64(spec.FlowsPerCore[svc])})
				}
			}
		}
		if len(terms) == 0 {
			continue
		}
		c := float64(t.Cores(n))
		terms = append(terms, lp.Term{Var: bigU, Coef: -c})
		prob.AddConstraint(terms, lp.LE, -st.coreUsed[n])
	}

	// SkipRouting (RoundLP fast path) omits the V variables; the default
	// keeps the full joint formulation (Eqs. 4–6, 8) so the relaxation
	// sees link loads and detour costs.
	vVar := make([]map[int]map[dedge]lp.Var, len(flows))
	if !opt.SkipRouting {
		// V_k,l',e: leg l' of flow k uses directed edge e (within the flow's
		// own candidate subgraph). Legs go from position l' to l'+1 of
		// F_k = [ingress, services..., egress] (Eqs. 4–5). Routing variables
		// get branch priority 0: once placements are integral the leg
		// subproblems are near-network-flow and rarely fractional.
		for k, f := range flows {
			legs := len(f.Chain) + 1
			vVar[k] = map[int]map[dedge]lp.Var{}
			for l := 0; l < legs; l++ {
				vVar[k][l] = map[dedge]lp.Var{}
				for _, e := range flowEdges[k] {
					// A tiny per-edge cost breaks ties toward short,
					// cycle-free legs.
					v := prob.AddVar(fmt.Sprintf("V_%d_%d_%d_%d", k, l, e.a, e.b), 1e-6, 0, 1, true)
					vVar[k][l][e] = v
				}
			}
			// Eq (5): conservation per leg and node: out − in = F[l'] − F[l'+1].
			for l := 0; l < legs; l++ {
				for _, n := range cands[k] {
					var terms []lp.Term
					for _, e := range flowEdges[k] {
						if e.a == n {
							terms = append(terms, lp.Term{Var: vVar[k][l][e], Coef: 1})
						}
						if e.b == n {
							terms = append(terms, lp.Term{Var: vVar[k][l][e], Coef: -1})
						}
					}
					// Position indicator at l (source of the leg).
					rhs := 0.0
					if l == 0 {
						if n == f.Ingress {
							rhs += 1
						}
					} else if v, ok := nVar[k][l-1][n]; ok {
						terms = append(terms, lp.Term{Var: v, Coef: -1})
					}
					// Position indicator at l+1 (destination of the leg).
					if l == legs-1 {
						if n == f.Egress {
							rhs -= 1
						}
					} else if v, ok := nVar[k][l][n]; ok {
						terms = append(terms, lp.Term{Var: v, Coef: 1})
					}
					prob.AddConstraint(terms, lp.EQ, rhs)
				}
			}
			// Eq (6): delay bound.
			if f.MaxDelaySec > 0 {
				var terms []lp.Term
				for l := 0; l < legs; l++ {
					for _, e := range flowEdges[k] {
						terms = append(terms, lp.Term{Var: vVar[k][l][e], Coef: edgeDelay[e]})
					}
				}
				prob.AddConstraint(terms, lp.LE, f.MaxDelaySec)
			}
		}

		// Eq (8): link utilization ≤ U.
		for _, e := range dedges {
			var terms []lp.Term
			for k, f := range flows {
				if _, ok := vVar[k][0][e]; !ok {
					continue
				}
				legs := len(f.Chain) + 1
				for l := 0; l < legs; l++ {
					terms = append(terms, lp.Term{Var: vVar[k][l][e], Coef: f.BandwidthBps})
				}
			}
			if len(terms) == 0 {
				continue
			}
			cap := edgeCap[e]
			if cap <= 0 {
				continue
			}
			terms = append(terms, lp.Term{Var: bigU, Coef: -cap})
			prior := st.linkLoad[[2]topo.NodeID{e.a, e.b}]
			prob.AddConstraint(terms, lp.LE, -prior)
		}
	}

	if opt.Verbose {
		fmt.Printf("placement MILP: %d vars, %d rows\n", prob.NumVars(), prob.NumRows())
	}

	asg := &Assignment{
		Nodes:    make([][]topo.NodeID, len(flows)),
		Routes:   make([][][]topo.NodeID, len(flows)),
		Accepted: make([]bool, len(flows)),
	}

	if opt.RoundLP {
		sol, err := lp.SolveLP(prob)
		if err != nil {
			return nil, err
		}
		if sol.Status != lp.StatusOptimal {
			return nil, fmt.Errorf("placement: LP relaxation %s", sol.Status)
		}
		for k, f := range flows {
			nodes := make([]topo.NodeID, len(f.Chain))
			okFlow := true
			di, de, spHops := diArr[k], deArr[k], spHopsArr[k]
			prev := f.Ingress
			var placed []struct {
				n topo.NodeID
				s Service
			}
			for l, svc := range f.Chain {
				// Score candidates: LP weight, minus a detour penalty
				// (nodes off the shortest corridor stretch the route),
				// plus a bonus for existing instance slack (a flow slot
				// on a deployed instance is free; a new instance costs a
				// whole core) and for monotone progression along the
				// path (prevents ping-pong legs that double link load).
				score := func(n topo.NodeID) float64 {
					v := sol.Value(nVar[k][l][n])
					detour := float64(di[n] + de[n] - spHops)
					if detour > 0 {
						v -= 1.0 * detour // off-path is last resort
					}
					if st.slack[n][svc] > 0 {
						v += 0.3
					}
					if di[n] < di[prev] {
						v -= 1.0 // going backwards doubles link load
					}
					return v
				}
				order := append([]topo.NodeID(nil), cands[k]...)
				sort.SliceStable(order, func(a, b int) bool {
					return score(order[a]) > score(order[b])
				})
				hopPlaced := false
				for _, n := range order {
					if st.assignFlowService(n, svc) {
						nodes[l] = n
						prev = n
						placed = append(placed, struct {
							n topo.NodeID
							s Service
						}{n, svc})
						hopPlaced = true
						break
					}
				}
				if !hopPlaced {
					okFlow = false
					break
				}
			}
			if !okFlow {
				// Roll back this flow's partial assignments so rejected
				// flows do not strand capacity.
				for _, pl := range placed {
					st.unassignFlowService(pl.n, pl.s)
				}
				continue
			}
			waypoints := append([]topo.NodeID{f.Ingress}, nodes...)
			waypoints = append(waypoints, f.Egress)
			routes := make([][]topo.NodeID, 0, len(waypoints)-1)
			for l := 0; l+1 < len(waypoints); l++ {
				leg, _, lok := t.ShortestPath(waypoints[l], waypoints[l+1])
				if !lok {
					okFlow = false
					break
				}
				st.addRoute(leg, f.BandwidthBps)
				routes = append(routes, leg)
			}
			if !okFlow {
				continue
			}
			asg.Nodes[k] = nodes
			asg.Routes[k] = routes
			asg.Accepted[k] = true
		}
		asg.Instances = st.instances
		asg.LinkUtil, asg.CoreUtil = st.utilization()
		return asg, nil
	}

	sol, err := lp.SolveMILP(prob, lp.MILPOptions{MaxNodes: opt.MaxNodes, TimeLimit: opt.TimeLimit})
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.StatusOptimal && sol.Status != lp.StatusFeasible {
		return nil, fmt.Errorf("placement: MILP %s", sol.Status)
	}

	// Extract and commit onto the state for consistent accounting.
	for k, f := range flows {
		nodes := make([]topo.NodeID, len(f.Chain))
		for l := range f.Chain {
			for _, n := range cands[k] {
				if sol.Value(nVar[k][l][n]) > 0.5 {
					nodes[l] = n
					break
				}
			}
		}
		for l, svc := range f.Chain {
			if !st.assignFlowService(nodes[l], svc) {
				// Should not happen given Eq (1)/(7); be conservative.
				return nil, fmt.Errorf("placement: MILP solution overcommits node %d", nodes[l])
			}
		}
		legs := len(f.Chain) + 1
		routes := make([][]topo.NodeID, 0, legs)
		waypoints := append([]topo.NodeID{f.Ingress}, nodes...)
		waypoints = append(waypoints, f.Egress)
		for l := 0; l < legs; l++ {
			path := walkLeg(waypoints[l], waypoints[l+1], vVar[k][l], sol, dedges)
			if path == nil {
				// Colocated consecutive services: empty leg.
				path = []topo.NodeID{waypoints[l]}
			}
			st.addRoute(path, f.BandwidthBps)
			routes = append(routes, path)
		}
		asg.Nodes[k] = nodes
		asg.Routes[k] = routes
		asg.Accepted[k] = true
	}
	asg.Instances = st.instances
	asg.LinkUtil, asg.CoreUtil = st.utilization()
	return asg, nil
}

// boolRank maps true to 1 for sort keys.
func boolRank(b bool) int {
	if b {
		return 1
	}
	return 0
}

// walkLeg reconstructs the leg's node path from selected edge variables.
func walkLeg(from, to topo.NodeID, vars map[dedge]lp.Var, sol *lp.Solution, dedges []dedge) []topo.NodeID {
	if from == to {
		return []topo.NodeID{from}
	}
	next := map[topo.NodeID]topo.NodeID{}
	for _, e := range dedges {
		if sol.Value(vars[e]) > 0.5 {
			next[e.a] = e.b
		}
	}
	path := []topo.NodeID{from}
	cur := from
	for cur != to {
		n, ok := next[cur]
		if !ok {
			return nil
		}
		path = append(path, n)
		cur = n
		if len(path) > len(dedges)+2 {
			return nil // malformed (cycle)
		}
	}
	return path
}

// DivisionOptions tunes the division heuristic.
type DivisionOptions struct {
	// BatchSize is the number of flows per subproblem (paper: 5).
	BatchSize int
	// MILP carries through to each subproblem solve.
	MILP MILPOptions
}

// SolveDivision is the paper's Division Heuristic: solve small MILP
// subproblems incrementally against residual capacity.
func SolveDivision(t *topo.Topology, flows []Flow, spec Spec, opt DivisionOptions) (*Assignment, error) {
	if err := validateFlows(flows, spec); err != nil {
		return nil, err
	}
	if opt.BatchSize <= 0 {
		opt.BatchSize = 5
	}
	st := newState(t, spec)
	asg := &Assignment{
		Nodes:    make([][]topo.NodeID, len(flows)),
		Routes:   make([][][]topo.NodeID, len(flows)),
		Accepted: make([]bool, len(flows)),
	}
	for start := 0; start < len(flows); start += opt.BatchSize {
		end := start + opt.BatchSize
		if end > len(flows) {
			end = len(flows)
		}
		sub := flows[start:end]
		mo := opt.MILP
		mo.prior = st
		subAsg, err := SolveMILP(t, sub, spec, mo)
		if err != nil {
			// Batch infeasible against residual capacity: reject the batch
			// and keep going (callers read Accepted).
			asg.recordProgress(st, end)
			continue
		}
		for i := range sub {
			asg.Nodes[start+i] = subAsg.Nodes[i]
			asg.Routes[start+i] = subAsg.Routes[i]
			asg.Accepted[start+i] = subAsg.Accepted[i]
		}
		asg.recordProgress(st, end)
	}
	asg.Instances = st.instances
	asg.LinkUtil, asg.CoreUtil = st.utilization()
	return asg, nil
}
