package metrics

import "testing"

func TestHistogramExportEmpty(t *testing.T) {
	h := NewHistogram()
	bounds := []float64{10, 100}
	cum, count, sum := h.Export(bounds)
	if count != 0 || sum != 0 {
		t.Fatalf("empty export: count=%d sum=%v", count, sum)
	}
	for i, c := range cum {
		if c != 0 {
			t.Fatalf("bucket %d = %d, want 0", i, c)
		}
	}
}

func TestHistogramExportCumulative(t *testing.T) {
	h := NewHistogram()
	values := []float64{5, 50, 500, 5000, 50000}
	for _, v := range values {
		h.Observe(v)
	}
	bounds := []float64{10, 100, 1000, 10000}
	cum, count, sum := h.Export(bounds)
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if sum != 55555 {
		t.Fatalf("sum = %v, want 55555", sum)
	}
	// Midpoint attribution carries the histogram's ~4% relative error,
	// but every value here sits a full decade from the nearest bound, so
	// bucket placement must be exact.
	want := []uint64{1, 2, 3, 4}
	for i, w := range want {
		if cum[i] != w {
			t.Fatalf("cum = %v, want %v", cum, want)
		}
	}
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Fatalf("buckets not cumulative: %v", cum)
		}
	}
}

func TestHistogramExportClampsToObservedRange(t *testing.T) {
	h := NewHistogram()
	h.Observe(7)
	// A single observation's midpoint estimate is clamped to min=max=7,
	// so it lands at or below any bound ≥ 7.
	cum, count, _ := h.Export([]float64{7, 1000})
	if count != 1 || cum[0] != 1 || cum[1] != 1 {
		t.Fatalf("cum=%v count=%d, want [1 1] 1", cum, count)
	}
}
