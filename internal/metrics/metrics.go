// Package metrics provides the measurement primitives used across the
// SDNFV reproduction: log-bucketed latency histograms with percentile and
// CDF extraction, exponentially-weighted rate meters, and time-series
// recorders for the paper's time-axis figures (Figs. 8, 9, 11).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Histogram is a log-bucketed histogram of non-negative values (typically
// nanoseconds). Buckets grow geometrically so that relative error is
// bounded (~4%) across nine decades. The zero value is not usable; call
// NewHistogram.
type Histogram struct {
	mu     sync.Mutex
	counts []uint64
	total  uint64
	sum    float64
	min    float64
	max    float64
	growth float64
	logG   float64
}

// NewHistogram returns a histogram with ~4% relative bucket error.
func NewHistogram() *Histogram {
	g := 1.04
	return &Histogram{
		counts: make([]uint64, 1+bucketFor(1e18, g)),
		min:    math.Inf(1),
		max:    math.Inf(-1),
		growth: g,
		logG:   math.Log(g),
	}
}

func bucketFor(v, g float64) int {
	if v < 1 {
		return 0
	}
	return 1 + int(math.Log(v)/math.Log(g))
}

// bucketLow returns the lower bound of bucket i.
func (h *Histogram) bucketLow(i int) float64 {
	if i == 0 {
		return 0
	}
	return math.Exp(float64(i-1) * h.logG)
}

// Observe records v (values below 0 are clamped to 0).
func (h *Histogram) Observe(v float64) {
	if v < 0 {
		v = 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	i := bucketFor(v, h.growth)
	if i >= len(h.counts) {
		i = len(h.counts) - 1
	}
	h.counts[i]++
	h.total++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// ObserveDuration records d in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(float64(d.Nanoseconds())) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Mean returns the arithmetic mean of observations (0 when empty).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	return h.max
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) estimated from buckets.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := uint64(math.Ceil(q * float64(h.total)))
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			lo := h.bucketLow(i)
			hi := h.bucketLow(i + 1)
			v := (lo + hi) / 2
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Export maps the histogram onto caller-supplied ascending upper bounds
// and returns the cumulative count at or below each bound, plus the
// total count and sum — the shape a Prometheus histogram family needs.
// Each internal log bucket is attributed to its midpoint (clamped to
// the observed min/max), consistent with Quantile, so exported bucket
// placement carries the same ~4% relative error as every other readout.
func (h *Histogram) Export(bounds []float64) (cum []uint64, count uint64, sum float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum = make([]uint64, len(bounds))
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		v := (h.bucketLow(i) + h.bucketLow(i+1)) / 2
		if v < h.min {
			v = h.min
		}
		if v > h.max {
			v = h.max
		}
		for bi, ub := range bounds {
			if v <= ub {
				cum[bi] += c
			}
		}
	}
	return cum, h.total, h.sum
}

// CDFPoint is one point on an empirical CDF.
type CDFPoint struct {
	Value    float64
	Fraction float64
}

// CDF extracts up to n evenly spaced CDF points.
func (h *Histogram) CDF(n int) []CDFPoint {
	if n < 2 {
		n = 2
	}
	pts := make([]CDFPoint, 0, n)
	for i := 0; i < n; i++ {
		q := float64(i) / float64(n-1)
		pts = append(pts, CDFPoint{Value: h.Quantile(q), Fraction: q})
	}
	return pts
}

// Summary renders avg/min/max in the unit produced by conv (e.g. 1e-3 for
// ns→µs).
func (h *Histogram) Summary(conv float64) string {
	return fmt.Sprintf("avg=%.2f min=%.2f max=%.2f (n=%d)",
		h.Mean()*conv, h.Min()*conv, h.Max()*conv, h.Count())
}

// EWMA is a lock-free exponentially weighted moving average. The data
// plane records one observation per burst (e.g. per-packet service time),
// so updates must not take a lock; a CAS loop over the float bits keeps
// Observe wait-free in the common uncontended single-writer case while
// Value stays safe for any number of concurrent readers.
type EWMA struct {
	alpha float64
	bits  atomic.Uint64
}

// ewmaEmpty marks an EWMA with no observations yet. It is a NaN payload
// that Observe never stores (averages of finite inputs are finite), so it
// cannot collide with a real value.
const ewmaEmpty = ^uint64(0)

// NewEWMA returns an average with smoothing factor alpha in (0, 1]; higher
// alpha weights recent observations more. Out-of-range alphas are clamped
// to 0.2, a common choice for load signals.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.2
	}
	e := &EWMA{alpha: alpha}
	e.bits.Store(ewmaEmpty)
	return e
}

// Observe folds v into the average. The first observation seeds the
// average directly.
//
//sdnfv:hotpath
func (e *EWMA) Observe(v float64) {
	for {
		old := e.bits.Load()
		var next float64
		if old == ewmaEmpty {
			next = v
		} else {
			cur := math.Float64frombits(old)
			next = cur + e.alpha*(v-cur)
		}
		if e.bits.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// Value returns the current average, or 0 before any observation.
//
//sdnfv:hotpath
func (e *EWMA) Value() float64 {
	b := e.bits.Load()
	if b == ewmaEmpty {
		return 0
	}
	return math.Float64frombits(b)
}

// Counter is a thread-safe monotonically increasing counter.
type Counter struct {
	mu sync.Mutex
	v  uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	c.mu.Lock()
	c.v += n
	c.mu.Unlock()
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Series is a time series of (t, value) samples; t is in seconds on the
// experiment's clock (virtual or real).
type Series struct {
	Name string
	mu   sync.Mutex
	ts   []float64
	vs   []float64
}

// NewSeries returns a named empty series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// Append records a sample. Samples should be appended in time order.
func (s *Series) Append(t, v float64) {
	s.mu.Lock()
	s.ts = append(s.ts, t)
	s.vs = append(s.vs, v)
	s.mu.Unlock()
}

// Len returns the number of samples.
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.ts)
}

// Points returns copies of the sample slices.
func (s *Series) Points() (ts, vs []float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]float64(nil), s.ts...), append([]float64(nil), s.vs...)
}

// At returns the latest value at or before t (0 if none).
func (s *Series) At(t float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	i := sort.SearchFloat64s(s.ts, t)
	if i < len(s.ts) && s.ts[i] == t {
		return s.vs[i]
	}
	if i == 0 {
		return 0
	}
	return s.vs[i-1]
}

// Mean returns the mean of values in [t0, t1].
func (s *Series) Mean(t0, t1 float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var sum float64
	var n int
	for i, t := range s.ts {
		if t >= t0 && t <= t1 {
			sum += s.vs[i]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Max returns the maximum value in [t0, t1].
func (s *Series) Max(t0, t1 float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := math.Inf(-1)
	found := false
	for i, t := range s.ts {
		if t >= t0 && t <= t1 {
			if s.vs[i] > m {
				m = s.vs[i]
			}
			found = true
		}
	}
	if !found {
		return 0
	}
	return m
}

// Table renders a set of series sharing a time axis as an aligned text
// table, one row per distinct time. Missing values render as "-".
func Table(series ...*Series) string {
	times := map[float64]bool{}
	for _, s := range series {
		ts, _ := s.Points()
		for _, t := range ts {
			times[t] = true
		}
	}
	axis := make([]float64, 0, len(times))
	for t := range times {
		axis = append(axis, t)
	}
	sort.Float64s(axis)
	var b strings.Builder
	fmt.Fprintf(&b, "%12s", "t")
	for _, s := range series {
		fmt.Fprintf(&b, " %16s", s.Name)
	}
	b.WriteByte('\n')
	for _, t := range axis {
		fmt.Fprintf(&b, "%12.2f", t)
		for _, s := range series {
			v := s.lookupExact(t)
			if math.IsNaN(v) {
				fmt.Fprintf(&b, " %16s", "-")
			} else {
				fmt.Fprintf(&b, " %16.2f", v)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// lookupExact returns the value at exactly t, or NaN.
func (s *Series) lookupExact(t float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	i := sort.SearchFloat64s(s.ts, t)
	if i < len(s.ts) && s.ts[i] == t {
		return s.vs[i]
	}
	return math.NaN()
}

// RateMeter tracks an event rate over a sliding window on a caller-supplied
// clock (so it works under both real and virtual time).
type RateMeter struct {
	mu      sync.Mutex
	window  float64 // seconds
	events  []float64
	weights []float64
}

// NewRateMeter returns a meter with the given window in seconds.
func NewRateMeter(window float64) *RateMeter {
	if window <= 0 {
		window = 1
	}
	return &RateMeter{window: window}
}

// Mark records weight units (e.g. bytes or packets) at time t seconds.
func (m *RateMeter) Mark(t, weight float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.events = append(m.events, t)
	m.weights = append(m.weights, weight)
	m.gc(t)
}

// Rate returns units/second over the window ending at t.
func (m *RateMeter) Rate(t float64) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.gc(t)
	var sum float64
	for i, et := range m.events {
		if et > t-m.window && et <= t {
			sum += m.weights[i]
		}
	}
	return sum / m.window
}

func (m *RateMeter) gc(t float64) {
	cut := 0
	for cut < len(m.events) && m.events[cut] <= t-m.window {
		cut++
	}
	if cut > 0 {
		m.events = append(m.events[:0], m.events[cut:]...)
		m.weights = append(m.weights[:0], m.weights[cut:]...)
	}
}
