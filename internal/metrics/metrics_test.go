package metrics

import (
	"math"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram not zeroed")
	}
	for _, v := range []float64{10, 20, 30} {
		h.Observe(v)
	}
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Mean()-20) > 1e-9 {
		t.Fatalf("mean = %v", h.Mean())
	}
	if h.Min() != 10 || h.Max() != 30 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	// Log buckets bound relative error ~4%.
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		want := q * 1000
		got := h.Quantile(q)
		if math.Abs(got-want)/want > 0.08 {
			t.Errorf("q%.2f = %v, want ≈%v", q, got, want)
		}
	}
	if h.Quantile(0) != 1 || h.Quantile(1) != 1000 {
		t.Fatalf("extremes = %v %v", h.Quantile(0), h.Quantile(1))
	}
}

func TestHistogramCDF(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 100; i++ {
		h.Observe(float64(i))
	}
	cdf := h.CDF(11)
	if len(cdf) != 11 {
		t.Fatalf("points = %d", len(cdf))
	}
	if !sort.SliceIsSorted(cdf, func(i, j int) bool { return cdf[i].Value < cdf[j].Value }) {
		// Values must be nondecreasing with fraction (allow equal).
		for i := 1; i < len(cdf); i++ {
			if cdf[i].Value < cdf[i-1].Value {
				t.Fatalf("CDF not monotone: %v", cdf)
			}
		}
	}
}

// Property: quantile is monotone in q and bounded by [min, max].
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(vals []uint16) bool {
		if len(vals) == 0 {
			return true
		}
		h := NewHistogram()
		for _, v := range vals {
			h.Observe(float64(v))
		}
		prev := -1.0
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := h.Quantile(q)
			if v < prev || v < h.Min()-1e-9 || v > h.Max()+1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(7)
	if c.Value() != 12 {
		t.Fatalf("value = %d", c.Value())
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries("x")
	for i := 0; i < 10; i++ {
		s.Append(float64(i), float64(i*i))
	}
	if s.Len() != 10 {
		t.Fatalf("len = %d", s.Len())
	}
	if v := s.At(3); v != 9 {
		t.Fatalf("At(3) = %v", v)
	}
	if v := s.At(3.5); v != 9 {
		t.Fatalf("At(3.5) = %v (latest at-or-before)", v)
	}
	if v := s.At(-1); v != 0 {
		t.Fatalf("At(-1) = %v", v)
	}
	if m := s.Mean(0, 2); math.Abs(m-(0+1+4)/3.0) > 1e-9 {
		t.Fatalf("Mean = %v", m)
	}
	if m := s.Max(5, 9); m != 81 {
		t.Fatalf("Max = %v", m)
	}
	ts, vs := s.Points()
	if len(ts) != 10 || len(vs) != 10 {
		t.Fatal("points copy wrong")
	}
}

func TestTableRendering(t *testing.T) {
	a := NewSeries("a")
	b := NewSeries("b")
	a.Append(1, 10)
	a.Append(2, 20)
	b.Append(2, 200)
	out := Table(a, b)
	if out == "" {
		t.Fatal("empty table")
	}
	// The t=1 row must show "-" for series b.
	if !containsLine(out, "1.00") {
		t.Fatalf("missing time row:\n%s", out)
	}
}

func containsLine(s, sub string) bool {
	return len(s) > 0 && len(sub) > 0 && (stringIndex(s, sub) >= 0)
}

func stringIndex(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestRateMeter(t *testing.T) {
	m := NewRateMeter(2)
	m.Mark(0.0, 100)
	m.Mark(1.0, 100)
	// At t=1.5 both events are in-window: 200 units / 2 s = 100/s.
	if r := m.Rate(1.5); math.Abs(r-100) > 1e-9 {
		t.Fatalf("rate = %v", r)
	}
	// At t=3 only the t=1 event remains.
	if r := m.Rate(2.9); math.Abs(r-50) > 1e-9 {
		t.Fatalf("rate = %v", r)
	}
	// Far future: empty window.
	if r := m.Rate(100); r != 0 {
		t.Fatalf("rate = %v", r)
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Value() != 0 {
		t.Fatalf("empty value = %v", e.Value())
	}
	e.Observe(100)
	if e.Value() != 100 {
		t.Fatalf("first observation must seed directly, got %v", e.Value())
	}
	e.Observe(200)
	if v := e.Value(); math.Abs(v-150) > 1e-9 {
		t.Fatalf("after 200: %v, want 150", v)
	}
	// A true zero average is representable (not confused with empty).
	z := NewEWMA(1)
	z.Observe(0)
	z.Observe(0)
	if z.Value() != 0 {
		t.Fatalf("zero average = %v", z.Value())
	}
	// Out-of-range alpha clamps instead of exploding.
	c := NewEWMA(-3)
	c.Observe(10)
	c.Observe(10)
	if c.Value() != 10 {
		t.Fatalf("clamped alpha average = %v", c.Value())
	}
}

func TestEWMAConcurrent(t *testing.T) {
	e := NewEWMA(0.1)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				e.Observe(42)
				_ = e.Value()
			}
		}()
	}
	wg.Wait()
	if v := e.Value(); math.Abs(v-42) > 1e-9 {
		t.Fatalf("converged value = %v, want 42", v)
	}
}
