package lp

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

// max 3x+2y s.t. x+y<=4, x+3y<=6, x,y>=0  → min -3x-2y, optimum x=4,y=0, obj=-12.
func TestLPKnownOptimum(t *testing.T) {
	p := NewProblem()
	x := p.AddVar("x", -3, 0, math.Inf(1), false)
	y := p.AddVar("y", -2, 0, math.Inf(1), false)
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, LE, 4)
	p.AddConstraint([]Term{{x, 1}, {y, 3}}, LE, 6)
	sol, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %s", sol.Status)
	}
	if !almost(sol.Obj, -12) || !almost(sol.Value(x), 4) || !almost(sol.Value(y), 0) {
		t.Fatalf("obj=%v x=%v y=%v, want -12, 4, 0", sol.Obj, sol.Value(x), sol.Value(y))
	}
}

// Classic degenerate + equality + GE mix:
// min x+y s.t. x+y>=2, x-y=0 → x=y=1, obj 2.
func TestLPEqualityAndGE(t *testing.T) {
	p := NewProblem()
	x := p.AddVar("x", 1, 0, math.Inf(1), false)
	y := p.AddVar("y", 1, 0, math.Inf(1), false)
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, GE, 2)
	p.AddConstraint([]Term{{x, 1}, {y, -1}}, EQ, 0)
	sol, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal || !almost(sol.Obj, 2) || !almost(sol.Value(x), 1) {
		t.Fatalf("got %s obj=%v x=%v", sol.Status, sol.Obj, sol.Value(x))
	}
}

func TestLPInfeasible(t *testing.T) {
	p := NewProblem()
	x := p.AddVar("x", 1, 0, math.Inf(1), false)
	p.AddConstraint([]Term{{x, 1}}, GE, 5)
	p.AddConstraint([]Term{{x, 1}}, LE, 3)
	sol, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusInfeasible {
		t.Fatalf("status = %s, want infeasible", sol.Status)
	}
}

func TestLPUnbounded(t *testing.T) {
	p := NewProblem()
	x := p.AddVar("x", -1, 0, math.Inf(1), false)
	p.AddConstraint([]Term{{x, -1}}, LE, 1) // -x <= 1, x unbounded above
	sol, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusUnbounded {
		t.Fatalf("status = %s, want unbounded", sol.Status)
	}
}

func TestLPVariableBounds(t *testing.T) {
	// min -x with 1 <= x <= 3 → x=3.
	p := NewProblem()
	x := p.AddVar("x", -1, 1, 3, false)
	sol, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal || !almost(sol.Value(x), 3) || !almost(sol.Obj, -3) {
		t.Fatalf("got %s x=%v obj=%v", sol.Status, sol.Value(x), sol.Obj)
	}
	// Contradictory bounds are infeasible.
	p2 := NewProblem()
	p2.AddVar("x", 1, 5, 2, false)
	sol2, _ := SolveLP(p2)
	if sol2.Status != StatusInfeasible {
		t.Fatalf("bad bounds: %s", sol2.Status)
	}
}

func TestLPNegativeRHS(t *testing.T) {
	// min x s.t. -x <= -2  (i.e. x >= 2) → x = 2.
	p := NewProblem()
	x := p.AddVar("x", 1, 0, math.Inf(1), false)
	p.AddConstraint([]Term{{x, -1}}, LE, -2)
	sol, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal || !almost(sol.Value(x), 2) {
		t.Fatalf("got %s x=%v", sol.Status, sol.Value(x))
	}
}

// Knapsack: max 10a+6b+4c s.t. a+b+c<=10, 5a+4b+3c<=45, integer.
// LP optimum is fractional; MILP must find integral optimum.
func TestMILPKnapsack(t *testing.T) {
	p := NewProblem()
	a := p.AddVar("a", -10, 0, math.Inf(1), true)
	b := p.AddVar("b", -6, 0, math.Inf(1), true)
	c := p.AddVar("c", -4, 0, math.Inf(1), true)
	p.AddConstraint([]Term{{a, 1}, {b, 1}, {c, 1}}, LE, 10)
	p.AddConstraint([]Term{{a, 5}, {b, 4}, {c, 3}}, LE, 45)
	sol, err := SolveMILP(p, MILPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %s", sol.Status)
	}
	for _, v := range []Var{a, b, c} {
		if f := math.Abs(sol.Value(v) - math.Round(sol.Value(v))); f > 1e-6 {
			t.Fatalf("non-integral %s = %v", p.Name(v), sol.Value(v))
		}
	}
	// Known optimum: obj = -76 (a=5,b=5,c=0? check: a+b=10, 5*5+4*5=45 ok,
	// value 10*5+6*5=80 → -80. Verify against brute force below.)
	best := 0.0
	for ai := 0; ai <= 10; ai++ {
		for bi := 0; bi+ai <= 10; bi++ {
			for ci := 0; ai+bi+ci <= 10; ci++ {
				if 5*ai+4*bi+3*ci <= 45 {
					v := float64(10*ai + 6*bi + 4*ci)
					if v > best {
						best = v
					}
				}
			}
		}
	}
	if !almost(sol.Obj, -best) {
		t.Fatalf("MILP obj = %v, brute force = %v", sol.Obj, -best)
	}
}

func TestMILPBinaryAssignment(t *testing.T) {
	// Assign 2 jobs to 2 machines, each machine ≤1 job, minimize cost.
	// costs: j0m0=4 j0m1=2 j1m0=3 j1m1=5 → optimal j0→m1, j1→m0 = 5.
	p := NewProblem()
	x00 := p.AddVar("x00", 4, 0, 1, true)
	x01 := p.AddVar("x01", 2, 0, 1, true)
	x10 := p.AddVar("x10", 3, 0, 1, true)
	x11 := p.AddVar("x11", 5, 0, 1, true)
	p.AddConstraint([]Term{{x00, 1}, {x01, 1}}, EQ, 1)
	p.AddConstraint([]Term{{x10, 1}, {x11, 1}}, EQ, 1)
	p.AddConstraint([]Term{{x00, 1}, {x10, 1}}, LE, 1)
	p.AddConstraint([]Term{{x01, 1}, {x11, 1}}, LE, 1)
	sol, err := SolveMILP(p, MILPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal || !almost(sol.Obj, 5) {
		t.Fatalf("got %s obj=%v, want optimal 5", sol.Status, sol.Obj)
	}
	if !almost(sol.Value(x01), 1) || !almost(sol.Value(x10), 1) {
		t.Fatalf("assignment x01=%v x10=%v", sol.Value(x01), sol.Value(x10))
	}
}

func TestMILPInfeasible(t *testing.T) {
	p := NewProblem()
	x := p.AddVar("x", 1, 0, 1, true)
	p.AddConstraint([]Term{{x, 2}}, EQ, 1) // x = 0.5 impossible for binary
	sol, err := SolveMILP(p, MILPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusInfeasible {
		t.Fatalf("status = %s", sol.Status)
	}
}

func TestMILPNodeLimitReturnsIncumbent(t *testing.T) {
	// A problem where B&B needs several nodes; with MaxNodes tiny we may
	// get feasible-with-incumbent or iteration-limit, never a wrong
	// "optimal" claim with a worse objective than the true optimum allows.
	p := NewProblem()
	vars := make([]Var, 6)
	for i := range vars {
		vars[i] = p.AddVar("x", -float64(i+1), 0, 1, true)
	}
	terms := make([]Term, len(vars))
	for i, v := range vars {
		terms[i] = Term{v, float64(i%3 + 1)}
	}
	p.AddConstraint(terms, LE, 5)
	sol, err := SolveMILP(p, MILPOptions{MaxNodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status == StatusOptimal {
		// With only 3 nodes optimality is still possible if the relaxation
		// was integral; accept but verify integrality.
		for _, v := range vars {
			if f := math.Abs(sol.Value(v) - math.Round(sol.Value(v))); f > 1e-6 {
				t.Fatalf("claimed optimal with fractional value %v", sol.Value(v))
			}
		}
	}
}

// Property: for random small LPs with box constraints only, the optimum of
// min c·x with lo ≤ x ≤ hi picks lo when c>0 and hi when c<0.
func TestLPBoxProperty(t *testing.T) {
	f := func(cs [4]int8, seed uint8) bool {
		p := NewProblem()
		var vars []Var
		var want float64
		for i, c8 := range cs {
			c := float64(c8)
			lo := float64(i)
			hi := lo + 1 + float64(seed%5)
			vars = append(vars, p.AddVar("v", c, lo, hi, false))
			if c >= 0 {
				want += c * lo
			} else {
				want += c * hi
			}
		}
		sol, err := SolveLP(p)
		if err != nil || sol.Status != StatusOptimal {
			return false
		}
		return math.Abs(sol.Obj-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: MILP objective is never better than the LP relaxation bound.
func TestMILPWeakerThanLP(t *testing.T) {
	f := func(a, b, c int8, r uint8) bool {
		p := NewProblem()
		x := p.AddVar("x", float64(a%5), 0, 10, true)
		y := p.AddVar("y", float64(b%5), 0, 10, true)
		p.AddConstraint([]Term{{x, 1}, {y, 2}}, GE, float64(r%15))
		p.AddConstraint([]Term{{x, 2}, {y, 1}}, LE, 20)
		rel, err1 := SolveLP(p)
		mip, err2 := SolveMILP(p, MILPOptions{})
		if err1 != nil || err2 != nil {
			return false
		}
		if rel.Status != StatusOptimal {
			return true // nothing to compare
		}
		if mip.Status == StatusInfeasible {
			return true
		}
		return mip.Obj >= rel.Obj-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLPMedium(b *testing.B) {
	// 50 vars, 30 constraints dense-ish LP.
	build := func() *Problem {
		p := NewProblem()
		vars := make([]Var, 50)
		for i := range vars {
			vars[i] = p.AddVar("x", float64((i*7)%11)-5, 0, 100, false)
		}
		for r := 0; r < 30; r++ {
			terms := make([]Term, 0, 10)
			for j := 0; j < 10; j++ {
				terms = append(terms, Term{vars[(r*10+j*3)%50], float64((r+j)%7 + 1)})
			}
			p.AddConstraint(terms, LE, float64(50+r))
		}
		return p
	}
	p := build()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveLP(p); err != nil {
			b.Fatal(err)
		}
	}
}
