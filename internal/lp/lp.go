// Package lp is a self-contained linear and mixed-integer linear
// programming solver: a dense two-phase primal simplex with a
// branch-and-bound layer for integrality. It is the optimization substrate
// behind the paper's NF placement engine (§3.5), standing in for the
// commercial MILP solver the authors used.
//
// The solver targets the moderate problem sizes the placement engine's
// division heuristic produces (hundreds of variables); it favors clarity
// and numerical robustness (Bland's rule fallback, explicit tolerances)
// over large-scale performance.
package lp

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Rel is a constraint relation.
type Rel uint8

// Constraint relations.
const (
	LE Rel = iota // ≤
	GE            // ≥
	EQ            // =
)

// Var is an opaque variable index returned by AddVar.
type Var int

// Term is one coefficient in a linear expression.
type Term struct {
	Var  Var
	Coef float64
}

// Status reports the outcome of a solve.
type Status uint8

// Solve statuses.
const (
	StatusOptimal Status = iota
	StatusInfeasible
	StatusUnbounded
	StatusIterLimit
	// StatusFeasible means branch-and-bound hit a limit but carries a
	// valid incumbent.
	StatusFeasible
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	case StatusIterLimit:
		return "iteration-limit"
	case StatusFeasible:
		return "feasible(limit)"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

type row struct {
	terms []Term
	rel   Rel
	rhs   float64
}

// Problem is a minimization problem under construction. Build with
// NewProblem, AddVar, AddConstraint; solve with SolveLP or SolveMILP.
type Problem struct {
	obj        []float64
	lo, hi     []float64
	integer    []bool
	prio       []int
	noBoundRow []bool
	names      []string
	rows       []row
}

// NewProblem returns an empty minimization problem.
func NewProblem() *Problem { return &Problem{} }

// AddVar adds a variable with the given objective coefficient and bounds
// (hi may be math.Inf(1)). integer marks it for branch-and-bound.
func (p *Problem) AddVar(name string, obj, lo, hi float64, integer bool) Var {
	p.obj = append(p.obj, obj)
	p.lo = append(p.lo, lo)
	p.hi = append(p.hi, hi)
	p.integer = append(p.integer, integer)
	p.prio = append(p.prio, 0)
	p.noBoundRow = append(p.noBoundRow, false)
	p.names = append(p.names, name)
	return Var(len(p.obj) - 1)
}

// SetStructuralUpperBound asserts that the constraint system already
// implies v ≤ its upper bound at any optimum (e.g. a binary in a
// sum-to-one row, or a unit-flow arc variable), so the relaxation may skip
// the explicit bound row. Branch-and-bound children that tighten the bound
// below the original still enforce it (fixed variables are substituted
// out). Misuse can only produce alternative optima, not infeasible ones,
// when the assertion holds.
func (p *Problem) SetStructuralUpperBound(v Var) { p.noBoundRow[v] = true }

// SetBranchPriority marks v to be branched before lower-priority variables
// in SolveMILP (default 0). Branching structural decisions (placement)
// before routing variables shrinks the search tree dramatically.
func (p *Problem) SetBranchPriority(v Var, priority int) { p.prio[v] = priority }

// NumVars returns the number of variables.
func (p *Problem) NumVars() int { return len(p.obj) }

// NumRows returns the number of constraints.
func (p *Problem) NumRows() int { return len(p.rows) }

// Name returns the variable's name.
func (p *Problem) Name(v Var) string { return p.names[v] }

// AddConstraint adds sum(terms) rel rhs. Terms may repeat a variable; the
// coefficients accumulate.
func (p *Problem) AddConstraint(terms []Term, rel Rel, rhs float64) {
	t := make([]Term, len(terms))
	copy(t, terms)
	p.rows = append(p.rows, row{terms: t, rel: rel, rhs: rhs})
}

// Solution is a solve result.
type Solution struct {
	Status Status
	// X holds a value per variable (valid for StatusOptimal and
	// StatusFeasible).
	X []float64
	// Obj is the objective value of X.
	Obj float64
	// Nodes is the number of branch-and-bound nodes explored (MILP only).
	Nodes int
}

// Value returns X[v].
func (s *Solution) Value(v Var) float64 { return s.X[v] }

const (
	eps    = 1e-9
	intTol = 1e-6
)

// pivotBudget bounds simplex iterations proportionally to problem size.
func pivotBudget(m, n int) int {
	b := 40 * (m + n)
	if b < 10_000 {
		b = 10_000
	}
	return b
}

// DebugMILP enables branch-and-bound tracing (diagnostics only).
var DebugMILP = false

// Errors returned by the solvers.
var (
	ErrBadBounds = errors.New("lp: variable lower bound exceeds upper bound")
)

// SolveLP solves the LP relaxation (integrality ignored).
func SolveLP(p *Problem) (*Solution, error) {
	return solveRelaxation(p, p.lo, p.hi)
}

// solveRelaxation solves min c·x s.t. rows, lo ≤ x ≤ hi, via two-phase
// dense simplex. Variables fixed by their bounds (hi−lo ≈ 0) are
// substituted out — branch-and-bound children fix binaries, so child LPs
// shrink. Remaining bounds are handled by shifting to x' = x − lo ≥ 0 and
// adding explicit rows for finite upper bounds (skipped for variables
// whose bound is structural and untightened; see SetStructuralUpperBound).
func solveRelaxation(p *Problem, lo, hi []float64) (*Solution, error) {
	nAll := len(p.obj)
	for j := 0; j < nAll; j++ {
		if lo[j] > hi[j]+eps {
			return &Solution{Status: StatusInfeasible}, nil
		}
	}
	// Partition into fixed and active variables.
	active := make([]int, 0, nAll) // active col -> original var
	colOf := make([]int, nAll)     // original var -> active col (-1 = fixed)
	for j := 0; j < nAll; j++ {
		if hi[j]-lo[j] <= eps {
			colOf[j] = -1
		} else {
			colOf[j] = len(active)
			active = append(active, j)
		}
	}
	n := len(active)

	type stdRow struct {
		a   []float64
		rel Rel
		rhs float64
	}
	rows := make([]stdRow, 0, len(p.rows)+n)
	objConst := 0.0
	for j := 0; j < nAll; j++ {
		objConst += p.obj[j] * lo[j]
	}
	for _, r := range p.rows {
		a := make([]float64, n)
		rhs := r.rhs
		touched := false
		for _, t := range r.terms {
			rhs -= t.Coef * lo[t.Var]
			if c := colOf[t.Var]; c >= 0 {
				a[c] += t.Coef
				if t.Coef != 0 {
					touched = true
				}
			}
		}
		if !touched {
			// All variables fixed: the row is a pure feasibility check.
			switch r.rel {
			case LE:
				if rhs < -1e-7 {
					return &Solution{Status: StatusInfeasible}, nil
				}
			case GE:
				if rhs > 1e-7 {
					return &Solution{Status: StatusInfeasible}, nil
				}
			case EQ:
				if rhs < -1e-7 || rhs > 1e-7 {
					return &Solution{Status: StatusInfeasible}, nil
				}
			}
			continue
		}
		rows = append(rows, stdRow{a: a, rel: r.rel, rhs: rhs})
	}
	for c, j := range active {
		if math.IsInf(hi[j], 1) {
			continue
		}
		if p.noBoundRow[j] && hi[j] >= p.hi[j]-eps {
			continue // structural bound, untightened
		}
		a := make([]float64, n)
		a[c] = 1
		rows = append(rows, stdRow{a: a, rel: LE, rhs: hi[j] - lo[j]})
	}
	m := len(rows)
	// Anti-degeneracy: perturb inequality right-hand sides by tiny,
	// distinct amounts (classic lexicographic-style perturbation).
	// Placement LPs are network-like and heavily degenerate; without this
	// the simplex can stall for tens of thousands of pivots. Equality rows
	// stay exact — flow-conservation systems are linearly dependent, and
	// perturbing them would make them inconsistent.
	for i := range rows {
		if rows[i].rel == LE {
			rows[i].rhs += float64(i+1) * 2.5e-10
		} else if rows[i].rel == GE {
			rows[i].rhs -= float64(i+1) * 2.5e-10
		}
	}

	// Standard form: Ax = b with slacks/artificials, b ≥ 0.
	// Column layout: [structural n][slack/surplus s][artificial t]
	nSlack := 0
	for _, r := range rows {
		if r.rel != EQ {
			nSlack++
		}
	}
	total := n + nSlack
	artStart := total
	// Tableau: m rows × (total + artificials) + rhs column; artificials
	// added lazily below.
	type tbl struct {
		a     [][]float64
		b     []float64
		basis []int
	}
	t := tbl{
		a:     make([][]float64, m),
		b:     make([]float64, m),
		basis: make([]int, m),
	}
	nArt := 0
	slackIdx := 0
	artOf := make([]int, m)
	for i := range rows {
		artOf[i] = -1
	}
	for i, r := range rows {
		coef := make([]float64, total)
		copy(coef, r.a)
		rhs := r.rhs
		sign := 1.0
		if rhs < 0 {
			sign = -1
			rhs = -rhs
			for j := range coef {
				coef[j] = -coef[j]
			}
		}
		rel := r.rel
		if sign < 0 {
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		switch rel {
		case LE:
			coef[n+slackIdx] = 1
			t.basis[i] = n + slackIdx
			slackIdx++
		case GE:
			coef[n+slackIdx] = -1
			slackIdx++
			artOf[i] = nArt
			nArt++
			t.basis[i] = -1 // artificial; patched below
		case EQ:
			artOf[i] = nArt
			nArt++
			t.basis[i] = -1
		}
		t.a[i] = coef
		t.b[i] = rhs
	}
	cols := total + nArt
	for i := range t.a {
		grown := make([]float64, cols)
		copy(grown, t.a[i])
		if artOf[i] >= 0 {
			grown[artStart+artOf[i]] = 1
			t.basis[i] = artStart + artOf[i]
		}
		t.a[i] = grown
	}

	pivot := func(r, c int) {
		pr := t.a[r]
		pv := pr[c]
		inv := 1 / pv
		for j := range pr {
			pr[j] *= inv
		}
		t.b[r] *= inv
		for i := range t.a {
			if i == r {
				continue
			}
			f := t.a[i][c]
			if f == 0 {
				continue
			}
			ri := t.a[i]
			for j := range ri {
				ri[j] -= f * pr[j]
			}
			t.b[i] -= f * t.b[r]
		}
		t.basis[r] = c
	}

	// simplex minimizes cost over the current tableau; returns status.
	simplex := func(cost []float64, allowed int) Status {
		// Reduced costs z_j = c_j − c_B·B⁻¹A_j maintained via elimination:
		// build the objective row and eliminate basic columns.
		z := make([]float64, allowed)
		copy(z, cost[:allowed])
		zb := 0.0
		for i, bj := range t.basis {
			cb := 0.0
			if bj < len(cost) {
				cb = cost[bj]
			}
			if cb == 0 {
				continue
			}
			ri := t.a[i]
			for j := 0; j < allowed; j++ {
				z[j] -= cb * ri[j]
			}
			zb += cb * t.b[i]
		}
		degenerate := 0
		budget := pivotBudget(m, allowed)
		for iter := 0; iter < budget; iter++ {
			// Entering column: Dantzig unless cycling suspected, then Bland.
			c := -1
			if degenerate < 50 {
				best := -eps
				for j := 0; j < allowed; j++ {
					if z[j] < best {
						best = z[j]
						c = j
					}
				}
			} else {
				for j := 0; j < allowed; j++ {
					if z[j] < -eps {
						c = j
						break
					}
				}
			}
			if c < 0 {
				return StatusOptimal
			}
			// Ratio test.
			r := -1
			minRatio := math.Inf(1)
			for i := 0; i < m; i++ {
				aic := t.a[i][c]
				if aic > eps {
					ratio := t.b[i] / aic
					if ratio < minRatio-eps || (ratio < minRatio+eps && (r < 0 || t.basis[i] < t.basis[r])) {
						minRatio = ratio
						r = i
					}
				}
			}
			if r < 0 {
				return StatusUnbounded
			}
			if minRatio < eps {
				degenerate++
			} else {
				degenerate = 0
			}
			pivot(r, c)
			// Update objective row.
			f := z[c]
			pr := t.a[r]
			for j := 0; j < allowed; j++ {
				z[j] -= f * pr[j]
			}
			zb -= f * t.b[r]
		}
		return StatusIterLimit
	}

	if nArt > 0 {
		phase1 := make([]float64, cols)
		for j := artStart; j < cols; j++ {
			phase1[j] = 1
		}
		st := simplex(phase1, cols)
		if st == StatusIterLimit {
			return &Solution{Status: StatusIterLimit}, nil
		}
		// Feasible iff all artificials are (numerically) zero.
		sum := 0.0
		for i, bj := range t.basis {
			if bj >= artStart {
				sum += t.b[i]
			}
		}
		if sum > 1e-6 {
			return &Solution{Status: StatusInfeasible}, nil
		}
		// Drive remaining artificials out of the basis where possible.
		for i := 0; i < m; i++ {
			if t.basis[i] >= artStart {
				for j := 0; j < total; j++ {
					if math.Abs(t.a[i][j]) > eps {
						pivot(i, j)
						break
					}
				}
			}
		}
	}

	phase2 := make([]float64, cols)
	for c, j := range active {
		phase2[c] = p.obj[j]
	}
	st := simplex(phase2, total) // artificials excluded from entering
	if st == StatusUnbounded {
		return &Solution{Status: StatusUnbounded}, nil
	}
	if st == StatusIterLimit {
		return &Solution{Status: StatusIterLimit}, nil
	}

	x := make([]float64, nAll)
	copy(x, lo) // fixed variables sit at their (common) bound
	for i, bj := range t.basis {
		if bj < n {
			x[active[bj]] += t.b[i]
		}
	}
	obj := objConst
	for _, j := range active {
		obj += p.obj[j] * (x[j] - lo[j])
	}
	return &Solution{Status: StatusOptimal, X: x, Obj: obj}, nil
}

// MILPOptions bounds the branch-and-bound search.
type MILPOptions struct {
	// MaxNodes caps explored nodes (0 = 100000).
	MaxNodes int
	// TimeLimit caps wall time (0 = none).
	TimeLimit time.Duration
	// Gap stops when (incumbent − bound)/|incumbent| falls below it.
	Gap float64
}

// SolveMILP solves the problem honoring integrality via depth-first
// branch-and-bound over LP relaxations. On hitting a limit it returns the
// best incumbent with StatusFeasible.
func SolveMILP(p *Problem, opt MILPOptions) (*Solution, error) {
	if opt.MaxNodes <= 0 {
		opt.MaxNodes = 100_000
	}
	deadline := time.Time{}
	if opt.TimeLimit > 0 {
		deadline = time.Now().Add(opt.TimeLimit)
	}

	type node struct {
		lo, hi []float64
	}
	root := node{lo: append([]float64(nil), p.lo...), hi: append([]float64(nil), p.hi...)}
	stack := []node{root}

	var best *Solution
	nodes := 0
	limitHit := false

	for len(stack) > 0 {
		if nodes >= opt.MaxNodes || (!deadline.IsZero() && time.Now().After(deadline)) {
			limitHit = true
			break
		}
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nodes++

		sol, err := solveRelaxation(p, nd.lo, nd.hi)
		if err != nil {
			return nil, err
		}
		if DebugMILP {
			fmt.Printf("node %d: %s obj=%v\n", nodes, sol.Status, sol.Obj)
		}
		if sol.Status != StatusOptimal {
			continue // infeasible or pathological subtree
		}
		if best != nil {
			gapOK := sol.Obj >= best.Obj-eps
			if opt.Gap > 0 && best.Obj != 0 {
				gapOK = sol.Obj >= best.Obj*(1-opt.Gap)-eps
			}
			if gapOK {
				continue // bound cannot beat incumbent
			}
		}
		// Most-fractional branching among the highest-priority class with
		// any fractional variable.
		branch := -1
		worst := intTol
		bestPrio := math.MinInt32
		for j := range p.integer {
			if !p.integer[j] {
				continue
			}
			f := math.Abs(sol.X[j] - math.Round(sol.X[j]))
			if f <= intTol {
				continue
			}
			if p.prio[j] > bestPrio || (p.prio[j] == bestPrio && f > worst) {
				bestPrio = p.prio[j]
				worst = f
				branch = j
			}
		}
		if branch < 0 {
			// Integral: candidate incumbent.
			cand := *sol
			cand.X = append([]float64(nil), sol.X...)
			for j := range p.integer {
				if p.integer[j] {
					cand.X[j] = math.Round(cand.X[j])
				}
			}
			if best == nil || cand.Obj < best.Obj-eps {
				best = &cand
			}
			continue
		}
		v := sol.X[branch]
		if DebugMILP {
			fmt.Printf("  branch %s = %v\n", p.names[branch], v)
		}
		// Explore the "round toward relaxation" child last so DFS pops it
		// first (LIFO), finding good incumbents early.
		down := node{lo: append([]float64(nil), nd.lo...), hi: append([]float64(nil), nd.hi...)}
		down.hi[branch] = math.Floor(v)
		up := node{lo: append([]float64(nil), nd.lo...), hi: append([]float64(nil), nd.hi...)}
		up.lo[branch] = math.Ceil(v)
		if v-math.Floor(v) > 0.5 {
			stack = append(stack, down, up)
		} else {
			stack = append(stack, up, down)
		}
	}

	if best == nil {
		st := StatusInfeasible
		if limitHit {
			st = StatusIterLimit
		}
		return &Solution{Status: st, Nodes: nodes}, nil
	}
	best.Nodes = nodes
	if limitHit {
		best.Status = StatusFeasible
	} else {
		best.Status = StatusOptimal
	}
	return best, nil
}
