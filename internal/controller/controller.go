// Package controller implements the SDN controller of the SDNFV
// architecture (Fig. 2). Like the paper's POX deployment it defaults to
// processing control requests one at a time — which is exactly what
// makes it a bottleneck when the data plane punts too much traffic to it
// (Fig. 1, Fig. 10). A configurable per-request service time models the
// controller's processing cost, and Config.Workers widens the event
// loop into a pool for production-style deployments, so pipelined
// southbound channels can keep several requests in service at once.
//
// The controller is the in-process backend of the control package's
// typed API:
//
//   - Southbound: Controller implements control.Southbound directly for
//     same-process NF Managers, and Serve speaks the openflow wire
//     protocol (PACKET_IN → FLOW_MODs, pipelined by XID) for remote
//     ones (control.Client is the matching dialer).
//   - Northbound: the SDNFV Application attaches as a
//     control.Northbound via SetNorthbound (rule compilation and
//     cross-layer message validation, §3.4).
//
// The controller is multi-datapath (Fig. 2 shows one controller managing
// a *set* of NF hosts): each host registers a Session under its
// control.DatapathID — in process via Controller.Session, over the wire
// by announcing the id in its HELLO — and every resolution and
// cross-layer message is scoped to the registering host, so the
// northbound tier compiles per-host rule sets and FLOW_MODs never leak
// across datapaths. The Controller's own Southbound methods are the
// anonymous datapath-0 session, preserving single-host deployments.
package controller

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sdnfv/internal/control"
	"sdnfv/internal/flowtable"
	"sdnfv/internal/openflow"
	"sdnfv/internal/packet"
)

// Config tunes the controller.
type Config struct {
	// ServiceTime is the modeled processing cost per request; the paper's
	// measured SDN lookup is ~31 ms end-to-end with POX. Zero disables
	// the artificial delay.
	ServiceTime time.Duration
	// QueueDepth bounds the event queue; requests beyond it are rejected
	// with control.ErrQueueFull (the saturation behaviour of Fig. 1).
	// Zero means 1024.
	QueueDepth int
	// Workers is the number of concurrent request processors. Zero or
	// one reproduces the paper's single-threaded POX bottleneck; larger
	// values let pipelined southbound channels overlap service times.
	Workers int
	// DatapathID identifies this controller in Features replies.
	DatapathID uint64
}

// Controller is an SDN controller: a bounded request queue drained by
// Config.Workers processors, shared by every registered datapath
// session. It implements control.Southbound for in-process NF Managers
// (as the anonymous datapath-0 session).
type Controller struct {
	cfg Config

	mu       sync.Mutex
	nb       control.Northbound
	conns    map[net.Conn]struct{}
	sessions map[control.DatapathID]*Session
	// anon is the datapath-0 session backing the Controller's own
	// Southbound methods and not-yet-identified wire channels. It lives
	// outside the registry so Datapaths() only reports real hosts, and
	// so the per-miss Resolve path does not take c.mu for a map lookup.
	anon *Session

	queue chan request
	done  chan struct{}
	wg    sync.WaitGroup

	requests atomic.Uint64
	rejected atomic.Uint64
	flowMods atomic.Uint64
	nfMsgs   atomic.Uint64
}

type request struct {
	ctx   context.Context
	sess  *Session
	scope flowtable.ServiceID
	key   packet.FlowKey
	reply func(rules []flowtable.Rule, err error)
}

// New builds a controller; call Start before use.
func New(cfg Config) *Controller {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	c := &Controller{
		cfg:      cfg,
		conns:    make(map[net.Conn]struct{}),
		sessions: make(map[control.DatapathID]*Session),
		queue:    make(chan request, cfg.QueueDepth),
		done:     make(chan struct{}),
	}
	c.anon = &Session{c: c}
	return c
}

// Session registers (or returns) the southbound endpoint for datapath
// dp. Each NF host in the controller's domain gets its own session:
// resolutions submitted through it carry the host's identity to the
// northbound tier, FLOW_MODs compiled for it never leak to another
// host, and its counters are scoped so per-host control load is
// observable. Sessions share the controller's event queue and worker
// pool (the saturation behaviour of Fig. 1 is a property of the
// controller, not of any one host).
func (c *Controller) Session(dp control.DatapathID) *Session {
	if dp == 0 {
		// The anonymous session is shared and unregistered: it backs
		// single-host deployments that never name themselves and must
		// not surface as a phantom datapath in Datapaths().
		return c.anon
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if s, ok := c.sessions[dp]; ok {
		return s
	}
	s := &Session{c: c, dp: dp}
	c.sessions[dp] = s
	return s
}

// Datapaths lists the registered (named) datapath ids in ascending
// order; the anonymous datapath-0 session is never included.
func (c *Controller) Datapaths() []control.DatapathID {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]control.DatapathID, 0, len(c.sessions))
	for dp := range c.sessions {
		out = append(out, dp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SetNorthbound attaches the SDNFV Application tier. Without one, every
// resolve fails with control.ErrNoCompiler and cross-layer messages are
// counted but dropped.
func (c *Controller) SetNorthbound(nb control.Northbound) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nb = nb
}

func (c *Controller) northbound() control.Northbound {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nb
}

// Start launches the worker pool.
func (c *Controller) Start() {
	for w := 0; w < c.cfg.Workers; w++ {
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			for {
				select {
				case <-c.done:
					return
				case req := <-c.queue:
					c.handle(req)
				}
			}
		}()
	}
}

// Stop terminates the workers and closes any live southbound channels;
// queued and in-flight requests fail with control.ErrStopped.
func (c *Controller) Stop() {
	close(c.done)
	c.mu.Lock()
	for conn := range c.conns {
		_ = conn.Close()
	}
	c.mu.Unlock()
	c.wg.Wait()
}

func (c *Controller) handle(req request) {
	if c.cfg.ServiceTime > 0 {
		time.Sleep(c.cfg.ServiceTime)
	}
	nb := c.northbound()
	if nb == nil {
		req.reply(nil, control.ErrNoCompiler)
		return
	}
	rules, err := nb.CompileFlow(req.ctx, req.sess.dp, req.scope, req.key)
	if err == nil {
		c.flowMods.Add(uint64(len(rules)))
		req.sess.flowMods.Add(uint64(len(rules)))
	}
	req.reply(rules, err)
}

// submit admits one request from sess to the event queue; reply runs
// exactly once unless the controller stops first. Only admitted requests
// count in Stats.Requests; a full queue refuses with control.ErrQueueFull
// and counts in Stats.Rejected instead, so Requests+Rejected is the
// offered load (see control.Stats). Both the controller-wide and the
// session-scoped counters are maintained.
func (c *Controller) submit(ctx context.Context, sess *Session, scope flowtable.ServiceID, key packet.FlowKey, reply func([]flowtable.Rule, error)) error {
	select {
	case c.queue <- request{ctx: ctx, sess: sess, scope: scope, key: key, reply: reply}:
		c.requests.Add(1)
		sess.requests.Add(1)
		return nil
	case <-c.done:
		return control.ErrStopped
	default:
		c.rejected.Add(1)
		sess.rejected.Add(1)
		return control.ErrQueueFull
	}
}

// Resolve implements control.Southbound as the anonymous datapath-0
// session; multi-host managers use Session(dp).Resolve instead.
func (c *Controller) Resolve(ctx context.Context, scope flowtable.ServiceID, key packet.FlowKey) ([]flowtable.Rule, error) {
	return c.Session(0).Resolve(ctx, scope, key)
}

// ResolveBatch implements control.Southbound as the anonymous
// datapath-0 session.
func (c *Controller) ResolveBatch(ctx context.Context, reqs []control.ResolveRequest, out []control.ResolveResult) {
	c.Session(0).ResolveBatch(ctx, reqs, out)
}

// SendNFMessage implements control.Southbound as the anonymous
// datapath-0 session.
func (c *Controller) SendNFMessage(ctx context.Context, src flowtable.ServiceID, m control.Message) error {
	return c.Session(0).SendNFMessage(ctx, src, m)
}

// NotifyFlowRemoved implements control.Southbound as the anonymous
// datapath-0 session.
func (c *Controller) NotifyFlowRemoved(ctx context.Context, removals []control.FlowRemoved) error {
	return c.Session(0).NotifyFlowRemoved(ctx, removals)
}

// Stats implements control.Southbound with the controller-wide
// aggregates across all sessions; see control.Stats for the counters'
// exact semantics. Per-host counters live on each Session.
func (c *Controller) Stats(context.Context) (control.Stats, error) {
	return control.Stats{
		Requests: c.requests.Load(),
		Rejected: c.rejected.Load(),
		FlowMods: c.flowMods.Load(),
		NFMsgs:   c.nfMsgs.Load(),
	}, nil
}

// Features implements control.Southbound with the controller's own
// identity (it hosts no NF services).
func (c *Controller) Features(context.Context) (control.Features, error) {
	return control.Features{DatapathID: c.cfg.DatapathID}, nil
}

// Session is one datapath's registered southbound endpoint: the typed
// API an NF Manager uses when its controller manages several hosts.
// Requests submitted through it share the controller's queue and worker
// pool but carry the session's datapath id to the northbound tier, so
// compiled rules are scoped to this host.
type Session struct {
	c  *Controller
	dp control.DatapathID

	requests     atomic.Uint64
	rejected     atomic.Uint64
	flowMods     atomic.Uint64
	nfMsgs       atomic.Uint64
	flowsRemoved atomic.Uint64
}

// DatapathID returns the session's datapath identity.
func (s *Session) DatapathID() control.DatapathID { return s.dp }

// Resolve implements control.Southbound: the southbound path this
// host's Flow Controller thread calls on a miss. It blocks until the
// rules arrive, ctx expires, or the controller stops.
func (s *Session) Resolve(ctx context.Context, scope flowtable.ServiceID, key packet.FlowKey) ([]flowtable.Rule, error) {
	type result struct {
		rules []flowtable.Rule
		err   error
	}
	ch := make(chan result, 1)
	if err := s.c.submit(ctx, s, scope, key, func(rules []flowtable.Rule, err error) {
		ch <- result{rules, err}
	}); err != nil {
		return nil, err
	}
	// Wait for a worker's reply — but never past Stop or the deadline: a
	// request still queued when the pool exits would otherwise strand
	// the calling Flow Controller thread (and the host's Stop) forever.
	select {
	case r := <-ch:
		return r.rules, r.err
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-s.c.done:
		return nil, control.ErrStopped
	}
}

// ResolveBatch implements control.Southbound: all requests are admitted
// before the first answer is awaited, so Config.Workers > 1 overlaps
// their service times.
func (s *Session) ResolveBatch(ctx context.Context, reqs []control.ResolveRequest, out []control.ResolveResult) {
	type slot struct {
		ch chan control.ResolveResult
	}
	slots := make([]slot, len(reqs))
	for i, r := range reqs {
		ch := make(chan control.ResolveResult, 1)
		slots[i] = slot{ch: ch}
		if err := s.c.submit(ctx, s, r.Scope, r.Key, func(rules []flowtable.Rule, err error) {
			ch <- control.ResolveResult{Rules: rules, Err: err}
		}); err != nil {
			out[i] = control.ResolveResult{Err: err}
			slots[i].ch = nil
		}
	}
	for i := range slots {
		if slots[i].ch == nil {
			continue
		}
		select {
		case res := <-slots[i].ch:
			out[i] = res
		case <-ctx.Done():
			out[i] = control.ResolveResult{Err: ctx.Err()}
		case <-s.c.done:
			out[i] = control.ResolveResult{Err: control.ErrStopped}
		}
	}
}

// SendNFMessage implements control.Southbound: the in-process path for
// cross-layer messages routed via the controller (Fig. 2 step 5). The
// message is validated structurally, counted, and handed to the
// northbound tier with this session's host identity; the policy verdict
// (control.ErrRejected) is returned synchronously.
func (s *Session) SendNFMessage(ctx context.Context, src flowtable.ServiceID, m control.Message) error {
	if err := m.Validate(); err != nil {
		return err
	}
	s.c.nfMsgs.Add(1)
	s.nfMsgs.Add(1)
	nb := s.c.northbound()
	if nb == nil {
		return nil
	}
	return nb.HandleNFMessage(ctx, s.dp, src, m)
}

// NotifyFlowRemoved implements control.Southbound: the data plane's
// eviction notices for this host. Each notice is counted against the
// session and handed to the northbound tier so the application drops
// its view of the flows; without a northbound the notices are counted
// and dropped (they are advisory, like NF messages on a bare
// controller).
func (s *Session) NotifyFlowRemoved(ctx context.Context, removals []control.FlowRemoved) error {
	if len(removals) == 0 {
		return nil
	}
	s.flowsRemoved.Add(uint64(len(removals)))
	nb := s.c.northbound()
	if nb == nil {
		return nil
	}
	return nb.HandleFlowRemoved(ctx, s.dp, removals)
}

// FlowsRemoved returns the number of flow-removed notices this session
// has accepted from its host.
func (s *Session) FlowsRemoved() uint64 { return s.flowsRemoved.Load() }

// Stats implements control.Southbound with the session-scoped counters:
// this host's share of the controller's load.
func (s *Session) Stats(context.Context) (control.Stats, error) {
	return control.Stats{
		Requests: s.requests.Load(),
		Rejected: s.rejected.Load(),
		FlowMods: s.flowMods.Load(),
		NFMsgs:   s.nfMsgs.Load(),
	}, nil
}

// Features implements control.Southbound with the controller's identity
// (the session's peer), like Controller.Features.
func (s *Session) Features(ctx context.Context) (control.Features, error) {
	return s.c.Features(ctx)
}

// Serve accepts NF Manager control channels on ln and speaks the
// openflow package's protocol: HELLO exchange, then pipelined PACKET_IN
// → FLOW_MOD resolution, NF_MESSAGE, FEATURES, STATS, ECHO, and BARRIER
// handling. It returns when ln is closed.
func (c *Controller) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			defer conn.Close()
			if err := c.serveConn(conn); err != nil {
				// Connection errors are expected at shutdown; nothing to
				// do beyond closing.
				_ = err
			}
		}()
	}
}

// errCode maps a resolve error to its wire code so control.Client can
// lift it back onto the sentinel taxonomy.
func errCode(err error) uint16 {
	switch {
	case errors.Is(err, control.ErrQueueFull):
		return openflow.ErrCodeQueueFull
	case errors.Is(err, control.ErrNoCompiler):
		return openflow.ErrCodeNoCompiler
	case errors.Is(err, control.ErrStopped):
		return openflow.ErrCodeStopped
	case errors.Is(err, control.ErrRejected):
		return openflow.ErrCodeRejected
	case errors.Is(err, control.ErrInvalidMessage):
		return openflow.ErrCodeInvalid
	default:
		return openflow.ErrCodeResolve
	}
}

func (c *Controller) serveConn(conn net.Conn) error {
	c.mu.Lock()
	c.conns[conn] = struct{}{}
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.conns, conn)
		c.mu.Unlock()
	}()
	oc := openflow.NewConn(conn)
	if _, err := oc.Send(openflow.Hello{}); err != nil {
		return err
	}
	// The channel starts as the anonymous datapath; the peer's HELLO
	// (always its first frame, so it precedes every PacketIn) upgrades
	// the session to its announced identity.
	sess := c.Session(0)
	// Replies are produced concurrently (PacketIns resolve on the worker
	// pool and answer out of order); sendMu serializes frame writes.
	var sendMu sync.Mutex
	sendXID := func(msg openflow.Message, xid uint32) error {
		sendMu.Lock()
		defer sendMu.Unlock()
		return oc.SendXID(msg, xid)
	}
	for {
		msg, hdr, err := oc.Recv()
		if err != nil {
			return err
		}
		switch m := msg.(type) {
		case openflow.Hello:
			// Peer greeting: register the session under the datapath id
			// the NF host announced (zero keeps it anonymous).
			if m.DatapathID != 0 {
				sess = c.Session(control.DatapathID(m.DatapathID))
			}
		case openflow.Echo:
			if !m.Reply {
				if err := sendXID(openflow.Echo{Reply: true, Data: m.Data}, hdr.XID); err != nil {
					return err
				}
			}
		case openflow.Barrier:
			if !m.Reply {
				if err := sendXID(openflow.Barrier{Reply: true}, hdr.XID); err != nil {
					return err
				}
			}
		case openflow.PacketIn:
			// Pipelined: admit the request and return to the read loop
			// immediately; the reply closure ships the XID-correlated
			// FlowMods (terminated by a Barrier) whenever a worker gets
			// to it, possibly interleaved with later XIDs.
			xid := hdr.XID
			err := c.submit(context.Background(), sess, m.Scope, m.Key, func(rules []flowtable.Rule, rerr error) {
				if rerr != nil {
					_ = sendXID(openflow.ErrorMsg{Code: errCode(rerr), Text: rerr.Error()}, xid)
					return
				}
				for _, r := range rules {
					if err := sendXID(openflow.FlowMod{Rule: r}, xid); err != nil {
						return
					}
				}
				_ = sendXID(openflow.Barrier{Reply: true}, xid)
			})
			if err != nil {
				if err := sendXID(openflow.ErrorMsg{Code: errCode(err), Text: err.Error()}, xid); err != nil {
					return err
				}
			}
		case openflow.NFMessage:
			lifted, lerr := control.FromUnion(m.Msg)
			if lerr == nil {
				lerr = sess.SendNFMessage(context.Background(), m.Src, lifted)
			}
			if lerr != nil {
				// Asynchronous refusal: the sender observes it as a
				// counted ErrorMsg, not a blocking round trip. Any
				// northbound failure that is not structural invalidity
				// is a rejection from the sender's point of view, so
				// plain (non-sentinel) errors map to the rejected code
				// — control.Client only counts rejected/invalid.
				code := errCode(lerr)
				if code != openflow.ErrCodeInvalid {
					code = openflow.ErrCodeRejected
				}
				if err := sendXID(openflow.ErrorMsg{Code: code, Text: lerr.Error()}, hdr.XID); err != nil {
					return err
				}
			}
		case openflow.FlowRemoved:
			// Eviction notices from the host's sweeper. Fire-and-forget on
			// the wire (no reply frame), and cold enough to handle inline
			// rather than through the worker pool.
			removals := make([]control.FlowRemoved, len(m.Removals))
			for i, e := range m.Removals {
				removals[i] = control.FlowRemoved{
					Scope:  e.Scope,
					Match:  e.Match,
					RuleID: e.RuleID,
					Reason: control.FlowRemovedReason(e.Reason),
				}
			}
			_ = sess.NotifyFlowRemoved(context.Background(), removals)
		case openflow.FeaturesRequest:
			f, _ := c.Features(context.Background())
			if err := sendXID(openflow.FeaturesReply{
				DatapathID: f.DatapathID,
				NumPorts:   uint16(f.NumPorts),
				Services:   f.Services,
			}, hdr.XID); err != nil {
				return err
			}
		case openflow.StatsRequest:
			// The StatsReply frame predates the control API and carries
			// host-counter slots; on a controller channel they transport
			// the control-plane counters instead (control.Client undoes
			// the mapping): RxPackets=Requests, TxPackets=FlowMods,
			// Drops=Rejected, Misses=NFMsgs.
			st, _ := c.Stats(context.Background())
			if err := sendXID(openflow.StatsReply{
				RxPackets: st.Requests,
				TxPackets: st.FlowMods,
				Drops:     st.Rejected,
				Misses:    st.NFMsgs,
			}, hdr.XID); err != nil {
				return err
			}
		default:
			if err := sendXID(openflow.ErrorMsg{Code: openflow.ErrCodeUnexpected, Text: fmt.Sprintf("unexpected %s", hdr.Type)}, hdr.XID); err != nil {
				return err
			}
		}
	}
}

var (
	_ control.Southbound = (*Controller)(nil)
	_ control.Southbound = (*Session)(nil)
)
