// Package controller implements the SDN controller of the SDNFV
// architecture (Fig. 2). Like the paper's POX deployment it processes
// control requests on a single-threaded event loop — which is exactly what
// makes it a bottleneck when the data plane punts too much traffic to it
// (Fig. 1, Fig. 10). A configurable per-request service time models the
// controller's processing cost.
//
// The controller serves two interfaces:
//
//   - Southbound: an openflow.Conn server accepting NF Manager channels
//     (PacketIn → FlowMod), see Serve.
//   - Northbound: the SDNFV Application installs per-graph rule compilers
//     and receives NF messages (§3.4).
package controller

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"sdnfv/internal/flowtable"
	"sdnfv/internal/nf"
	"sdnfv/internal/openflow"
	"sdnfv/internal/packet"
)

// RuleCompiler produces the flow rules to install for a new flow first
// seen at scope. The SDNFV Application provides one (compiled from its
// service graphs) via SetCompiler.
type RuleCompiler func(scope flowtable.ServiceID, key packet.FlowKey) ([]flowtable.Rule, error)

// Config tunes the controller.
type Config struct {
	// ServiceTime is the modeled processing cost per request; the paper's
	// measured SDN lookup is ~31 ms end-to-end with POX. Zero disables
	// the artificial delay.
	ServiceTime time.Duration
	// QueueDepth bounds the single-threaded event queue; requests beyond
	// it are rejected (the saturation behaviour of Fig. 1). Zero means
	// 1024.
	QueueDepth int
}

// Stats is a snapshot of controller activity.
type Stats struct {
	Requests uint64
	Rejected uint64
	FlowMods uint64
	NFMsgs   uint64
}

// Controller is a single-threaded SDN controller.
type Controller struct {
	cfg Config

	mu       sync.Mutex
	compiler RuleCompiler
	onNFMsg  func(src flowtable.ServiceID, m nf.Message)

	queue chan request
	done  chan struct{}
	wg    sync.WaitGroup

	requests atomic.Uint64
	rejected atomic.Uint64
	flowMods atomic.Uint64
	nfMsgs   atomic.Uint64
}

type request struct {
	scope flowtable.ServiceID
	key   packet.FlowKey
	reply func(rules []flowtable.Rule, err error)
}

// New builds a controller; call Start before use.
func New(cfg Config) *Controller {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	return &Controller{
		cfg:   cfg,
		queue: make(chan request, cfg.QueueDepth),
		done:  make(chan struct{}),
	}
}

// SetCompiler installs the northbound rule compiler.
func (c *Controller) SetCompiler(rc RuleCompiler) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.compiler = rc
}

// SetNFMessageHandler installs the northbound cross-layer message sink.
func (c *Controller) SetNFMessageHandler(fn func(src flowtable.ServiceID, m nf.Message)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onNFMsg = fn
}

// Start launches the single-threaded event loop.
func (c *Controller) Start() {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		for {
			select {
			case <-c.done:
				return
			case req := <-c.queue:
				c.handle(req)
			}
		}
	}()
}

// Stop terminates the event loop.
func (c *Controller) Stop() {
	close(c.done)
	c.wg.Wait()
}

func (c *Controller) handle(req request) {
	if c.cfg.ServiceTime > 0 {
		time.Sleep(c.cfg.ServiceTime)
	}
	c.mu.Lock()
	rc := c.compiler
	c.mu.Unlock()
	if rc == nil {
		req.reply(nil, errors.New("controller: no rule compiler installed"))
		return
	}
	rules, err := rc(req.scope, req.key)
	if err == nil {
		c.flowMods.Add(uint64(len(rules)))
	}
	req.reply(rules, err)
}

// Stats returns a snapshot of counters.
func (c *Controller) Stats() Stats {
	return Stats{
		Requests: c.requests.Load(),
		Rejected: c.rejected.Load(),
		FlowMods: c.flowMods.Load(),
		NFMsgs:   c.nfMsgs.Load(),
	}
}

// Resolve is the in-process southbound path: an NF Manager's Flow
// Controller thread calls it on a miss and blocks for the rules (the
// asynchrony lives in the manager, which calls this off the packet path).
// It returns an error when the controller queue is full.
func (c *Controller) Resolve(scope flowtable.ServiceID, key packet.FlowKey) ([]flowtable.Rule, error) {
	c.requests.Add(1)
	type result struct {
		rules []flowtable.Rule
		err   error
	}
	ch := make(chan result, 1)
	req := request{scope: scope, key: key, reply: func(rules []flowtable.Rule, err error) {
		ch <- result{rules, err}
	}}
	select {
	case c.queue <- req:
	case <-c.done:
		return nil, errors.New("controller: stopped")
	default:
		c.rejected.Add(1)
		return nil, errors.New("controller: request queue full")
	}
	// Wait for the event loop's reply — but never past Stop: a request
	// still queued when the loop exits would otherwise strand the calling
	// Flow Controller thread (and the host's Stop) forever.
	select {
	case r := <-ch:
		return r.rules, r.err
	case <-c.done:
		return nil, errors.New("controller: stopped")
	}
}

// HandleNFMessage is the in-process path for cross-layer messages routed
// via the controller (Fig. 2 step 5).
func (c *Controller) HandleNFMessage(src flowtable.ServiceID, m nf.Message) {
	c.nfMsgs.Add(1)
	c.mu.Lock()
	fn := c.onNFMsg
	c.mu.Unlock()
	if fn != nil {
		fn(src, m)
	}
}

// Serve accepts NF Manager control channels on ln and speaks the openflow
// package's protocol: HELLO exchange, then PACKET_IN → FLOW_MOD and
// NF_MESSAGE handling, ECHO and BARRIER support. It returns when ln is
// closed.
func (c *Controller) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			defer conn.Close()
			if err := c.serveConn(conn); err != nil {
				// Connection errors are expected at shutdown; nothing to
				// do beyond closing.
				_ = err
			}
		}()
	}
}

func (c *Controller) serveConn(conn net.Conn) error {
	oc := openflow.NewConn(conn)
	if _, err := oc.Send(openflow.Hello{}); err != nil {
		return err
	}
	var sendMu sync.Mutex
	for {
		msg, hdr, err := oc.Recv()
		if err != nil {
			return err
		}
		switch m := msg.(type) {
		case openflow.Hello:
			// Peer greeting; nothing to do.
		case openflow.Echo:
			if !m.Reply {
				sendMu.Lock()
				err = oc.SendXID(openflow.Echo{Reply: true, Data: m.Data}, hdr.XID)
				sendMu.Unlock()
				if err != nil {
					return err
				}
			}
		case openflow.Barrier:
			sendMu.Lock()
			err = oc.SendXID(openflow.Barrier{Reply: true}, hdr.XID)
			sendMu.Unlock()
			if err != nil {
				return err
			}
		case openflow.PacketIn:
			rules, rerr := c.Resolve(m.Scope, m.Key)
			sendMu.Lock()
			if rerr != nil {
				err = oc.SendXID(openflow.ErrorMsg{Code: 1, Text: rerr.Error()}, hdr.XID)
			} else {
				for _, r := range rules {
					if err = oc.SendXID(openflow.FlowMod{Rule: r}, hdr.XID); err != nil {
						break
					}
				}
				if err == nil {
					err = oc.SendXID(openflow.Barrier{Reply: true}, hdr.XID)
				}
			}
			sendMu.Unlock()
			if err != nil {
				return err
			}
		case openflow.NFMessage:
			c.HandleNFMessage(m.Src, m.Msg)
		default:
			sendMu.Lock()
			err = oc.SendXID(openflow.ErrorMsg{Code: 2, Text: fmt.Sprintf("unexpected %s", hdr.Type)}, hdr.XID)
			sendMu.Unlock()
			if err != nil {
				return err
			}
		}
	}
}
