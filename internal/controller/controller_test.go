package controller

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"sdnfv/internal/control"
	"sdnfv/internal/flowtable"
	"sdnfv/internal/nf"
	"sdnfv/internal/openflow"
	"sdnfv/internal/packet"
)

func testKey() packet.FlowKey {
	return packet.FlowKey{
		SrcIP: packet.IPv4(10, 0, 0, 1), DstIP: packet.IPv4(10, 0, 0, 2),
		SrcPort: 1000, DstPort: 80, Proto: packet.ProtoUDP,
	}
}

// chainNB is a minimal northbound compiling every flow to a one-rule
// chain at the requesting scope.
func chainNB() control.Northbound {
	return control.NorthboundFuncs{
		CompileFlowFunc: func(_ context.Context, _ control.DatapathID, scope flowtable.ServiceID, key packet.FlowKey) ([]flowtable.Rule, error) {
			return []flowtable.Rule{{
				Scope:   scope,
				Match:   flowtable.ExactMatch(key),
				Actions: []flowtable.Action{flowtable.Forward(10)},
			}}, nil
		},
	}
}

func TestResolveInProcess(t *testing.T) {
	c := New(Config{})
	c.SetNorthbound(chainNB())
	c.Start()
	defer c.Stop()
	rules, err := c.Resolve(context.Background(), flowtable.Port(0), testKey())
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 1 || rules[0].Scope != flowtable.Port(0) {
		t.Fatalf("rules = %v", rules)
	}
	st, _ := c.Stats(context.Background())
	if st.Requests != 1 || st.FlowMods != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestResolveNoCompiler(t *testing.T) {
	c := New(Config{})
	c.Start()
	defer c.Stop()
	if _, err := c.Resolve(context.Background(), flowtable.Port(0), testKey()); !errors.Is(err, control.ErrNoCompiler) {
		t.Fatalf("resolve without northbound: %v", err)
	}
}

func TestResolveContextDeadline(t *testing.T) {
	c := New(Config{ServiceTime: time.Second})
	c.SetNorthbound(chainNB())
	c.Start()
	defer c.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Resolve(ctx, flowtable.Port(0), testKey())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	if time.Since(start) > 500*time.Millisecond {
		t.Fatal("Resolve ignored the deadline")
	}
}

// TestResolveUnblocksOnStop pins the shutdown bug where a Resolve caller
// (the host's Flow Controller thread) whose request was still queued when
// the event loop exited blocked forever, wedging host.Stop.
func TestResolveUnblocksOnStop(t *testing.T) {
	c := New(Config{ServiceTime: time.Second, QueueDepth: 4})
	c.SetNorthbound(chainNB())
	c.Start()
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := c.Resolve(context.Background(), flowtable.Port(0), testKey())
			errs <- err
		}()
	}
	time.Sleep(20 * time.Millisecond) // let both requests enqueue
	go c.Stop()
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			if err == nil {
				t.Fatal("resolve after stop should fail")
			}
		case <-time.After(5 * time.Second):
			t.Fatal("Resolve still blocked after Stop")
		}
	}
}

func TestQueueOverflowRejected(t *testing.T) {
	c := New(Config{ServiceTime: 50 * time.Millisecond, QueueDepth: 1})
	c.SetNorthbound(chainNB())
	c.Start()
	defer c.Stop()
	// Fire several concurrent requests; with depth 1 and slow service,
	// some must be rejected with the typed sentinel.
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			_, err := c.Resolve(context.Background(), flowtable.Port(0), testKey())
			errs <- err
		}()
	}
	rejected := 0
	for i := 0; i < 8; i++ {
		if err := <-errs; err != nil {
			if !errors.Is(err, control.ErrQueueFull) {
				t.Fatalf("unexpected error: %v", err)
			}
			rejected++
		}
	}
	if rejected == 0 {
		t.Fatal("no requests rejected under overload")
	}
	st, _ := c.Stats(context.Background())
	if st.Rejected == 0 {
		t.Fatal("rejection counter not incremented")
	}
	// Rejected requests are not admitted: offered = Requests + Rejected.
	if st.Requests+st.Rejected != 8 {
		t.Fatalf("requests=%d rejected=%d, want them to partition 8 offered", st.Requests, st.Rejected)
	}
}

func TestResolveBatchOverlapsServiceTimes(t *testing.T) {
	const svc = 20 * time.Millisecond
	c := New(Config{ServiceTime: svc, Workers: 8})
	c.SetNorthbound(chainNB())
	c.Start()
	defer c.Stop()
	reqs := make([]control.ResolveRequest, 8)
	out := make([]control.ResolveResult, 8)
	for i := range reqs {
		k := testKey()
		k.SrcPort = uint16(3000 + i)
		reqs[i] = control.ResolveRequest{Scope: flowtable.Port(0), Key: k}
	}
	start := time.Now()
	c.ResolveBatch(context.Background(), reqs, out)
	elapsed := time.Since(start)
	for i, r := range out {
		if r.Err != nil || len(r.Rules) != 1 {
			t.Fatalf("slot %d: %+v", i, r)
		}
	}
	// Serially this would take 8×20 ms; pipelined across 8 workers it
	// should land near one service time.
	if elapsed > 4*svc {
		t.Fatalf("batch took %v, not overlapped (serial would be %v)", elapsed, 8*svc)
	}
}

func TestSendNFMessageRoutesNorthbound(t *testing.T) {
	c := New(Config{})
	got := make(chan control.Message, 1)
	c.SetNorthbound(control.NorthboundFuncs{
		HandleNFMessageFunc: func(_ context.Context, _ control.DatapathID, src flowtable.ServiceID, m control.Message) error {
			got <- m
			return nil
		},
	})
	if err := c.SendNFMessage(context.Background(), 50, control.RequestMe{Service: 50}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if _, ok := m.(control.RequestMe); !ok {
			t.Fatalf("message = %v", m)
		}
	default:
		t.Fatal("northbound not invoked")
	}
	if err := c.SendNFMessage(context.Background(), 50, control.AppData{}); !errors.Is(err, control.ErrInvalidMessage) {
		t.Fatalf("invalid message: %v", err)
	}
	st, _ := c.Stats(context.Background())
	if st.NFMsgs != 1 {
		t.Fatalf("nfMsgs = %d", st.NFMsgs)
	}
}

// dialTest connects a raw openflow.Conn to a served controller and
// completes the HELLO exchange.
func dialTest(t *testing.T, c *Controller) *openflow.Conn {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() { _ = c.Serve(ln) }()

	conn, err := net.DialTimeout("tcp", ln.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	oc := openflow.NewConn(conn)

	// Controller greets first.
	msg, _, err := oc.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := msg.(openflow.Hello); !ok {
		t.Fatalf("greeting = %T", msg)
	}
	if _, err := oc.Send(openflow.Hello{}); err != nil {
		t.Fatal(err)
	}
	return oc
}

// TestServeOverTCP exercises the full southbound wire path: HELLO,
// PACKET_IN → FLOW_MODs + barrier, ECHO, and NF_MESSAGE.
func TestServeOverTCP(t *testing.T) {
	c := New(Config{})
	nfMsgs := make(chan control.Message, 1)
	c.SetNorthbound(control.NorthboundFuncs{
		CompileFlowFunc: func(_ context.Context, _ control.DatapathID, scope flowtable.ServiceID, key packet.FlowKey) ([]flowtable.Rule, error) {
			return []flowtable.Rule{
				{Scope: scope, Match: flowtable.ExactMatch(key),
					Actions: []flowtable.Action{flowtable.Forward(10)}},
				{Scope: flowtable.ServiceID(10), Match: flowtable.ExactMatch(key),
					Actions: []flowtable.Action{flowtable.Out(1)}},
			}, nil
		},
		HandleNFMessageFunc: func(_ context.Context, _ control.DatapathID, _ flowtable.ServiceID, m control.Message) error {
			nfMsgs <- m
			return nil
		},
	})
	c.Start()
	defer c.Stop()
	oc := dialTest(t, c)

	// Echo.
	if _, err := oc.Send(openflow.Echo{Data: []byte("hi")}); err != nil {
		t.Fatal(err)
	}
	msg, _, err := oc.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if e, ok := msg.(openflow.Echo); !ok || !e.Reply || string(e.Data) != "hi" {
		t.Fatalf("echo reply = %+v", msg)
	}

	// PacketIn → two FlowMods then a barrier.
	if _, err := oc.Send(openflow.PacketIn{Scope: flowtable.Port(0), Key: testKey()}); err != nil {
		t.Fatal(err)
	}
	var mods int
	for {
		msg, _, err = oc.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := msg.(openflow.FlowMod); ok {
			mods++
			continue
		}
		if b, ok := msg.(openflow.Barrier); ok && b.Reply {
			break
		}
		t.Fatalf("unexpected %T", msg)
	}
	if mods != 2 {
		t.Fatalf("flow mods = %d", mods)
	}

	// NF message propagates to the northbound handler.
	if _, err := oc.Send(openflow.NFMessage{Src: 50, Msg: nf.Message{Kind: nf.MsgSkipMe, S: 50}}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-nfMsgs:
		if _, ok := m.(control.SkipMe); !ok {
			t.Fatalf("nf msg = %v", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("NF message never reached the northbound handler")
	}
}

// TestServeFeaturesAndStats covers the request/reply pairs serveConn
// used to bounce as "unexpected message".
func TestServeFeaturesAndStats(t *testing.T) {
	c := New(Config{DatapathID: 0xfeed})
	c.SetNorthbound(chainNB())
	c.Start()
	defer c.Stop()
	oc := dialTest(t, c)

	if _, err := oc.Send(openflow.FeaturesRequest{}); err != nil {
		t.Fatal(err)
	}
	msg, _, err := oc.Recv()
	if err != nil {
		t.Fatal(err)
	}
	fr, ok := msg.(openflow.FeaturesReply)
	if !ok || fr.DatapathID != 0xfeed {
		t.Fatalf("features reply = %+v", msg)
	}

	// Drive one resolve so the stats are non-trivial.
	if _, err := oc.Send(openflow.PacketIn{Scope: flowtable.Port(0), Key: testKey()}); err != nil {
		t.Fatal(err)
	}
	for {
		msg, _, err = oc.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if b, ok := msg.(openflow.Barrier); ok && b.Reply {
			break
		}
	}
	if _, err := oc.Send(openflow.StatsRequest{}); err != nil {
		t.Fatal(err)
	}
	msg, _, err = oc.Recv()
	if err != nil {
		t.Fatal(err)
	}
	sr, ok := msg.(openflow.StatsReply)
	if !ok {
		t.Fatalf("stats reply = %+v", msg)
	}
	// serveConn maps Requests→RxPackets and FlowMods→TxPackets.
	if sr.RxPackets != 1 || sr.TxPackets != 1 {
		t.Fatalf("mapped stats = %+v", sr)
	}
}

// TestServePipelinedPacketIns sends a burst of PacketIns without waiting
// and checks every one is answered with its own XID-correlated
// FlowMod+Barrier pair.
func TestServePipelinedPacketIns(t *testing.T) {
	c := New(Config{ServiceTime: 5 * time.Millisecond, Workers: 8})
	c.SetNorthbound(chainNB())
	c.Start()
	defer c.Stop()
	oc := dialTest(t, c)

	const n = 8
	sent := make(map[uint32]bool, n)
	for i := 0; i < n; i++ {
		k := testKey()
		k.SrcPort = uint16(4000 + i)
		xid, err := oc.Send(openflow.PacketIn{Scope: flowtable.Port(0), Key: k})
		if err != nil {
			t.Fatal(err)
		}
		sent[xid] = true
	}
	mods := make(map[uint32]int, n)
	done := make(map[uint32]bool, n)
	for len(done) < n {
		msg, hdr, err := oc.Recv()
		if err != nil {
			t.Fatal(err)
		}
		switch m := msg.(type) {
		case openflow.FlowMod:
			if !sent[hdr.XID] {
				t.Fatalf("FlowMod for unknown xid %d", hdr.XID)
			}
			mods[hdr.XID]++
		case openflow.Barrier:
			if m.Reply {
				done[hdr.XID] = true
			}
		default:
			t.Fatalf("unexpected %T", msg)
		}
	}
	for xid := range sent {
		if mods[xid] != 1 || !done[xid] {
			t.Fatalf("xid %d: mods=%d done=%v", xid, mods[xid], done[xid])
		}
	}
}

// dpNB is a northbound that compiles a rule tagged with the requesting
// datapath (Dest = dp), so tests can see which host a compilation was
// scoped to.
func dpNB() control.Northbound {
	return control.NorthboundFuncs{
		CompileFlowFunc: func(_ context.Context, dp control.DatapathID, scope flowtable.ServiceID, key packet.FlowKey) ([]flowtable.Rule, error) {
			return []flowtable.Rule{{
				Scope:   scope,
				Match:   flowtable.ExactMatch(key),
				Actions: []flowtable.Action{flowtable.Forward(flowtable.ServiceID(dp))},
			}}, nil
		},
	}
}

// TestSessionsScopeResolutionsPerDatapath registers two datapath
// sessions and checks each resolution carries its host's identity to
// the northbound tier, with per-session counters kept apart.
func TestSessionsScopeResolutionsPerDatapath(t *testing.T) {
	c := New(Config{Workers: 2})
	c.SetNorthbound(dpNB())
	c.Start()
	defer c.Stop()

	s7, s9 := c.Session(7), c.Session(9)
	if s7 != c.Session(7) {
		t.Fatal("session registry returned a fresh session for a registered id")
	}
	rules7, err := s7.Resolve(context.Background(), flowtable.Port(0), testKey())
	if err != nil {
		t.Fatal(err)
	}
	if got := rules7[0].Actions[0].Dest; got != 7 {
		t.Fatalf("dp7 compilation scoped to %v", got)
	}
	reqs := []control.ResolveRequest{{Scope: flowtable.Port(0), Key: testKey()}}
	out := make([]control.ResolveResult, 1)
	s9.ResolveBatch(context.Background(), reqs, out)
	if out[0].Err != nil {
		t.Fatal(out[0].Err)
	}
	if got := out[0].Rules[0].Actions[0].Dest; got != 9 {
		t.Fatalf("dp9 compilation scoped to %v", got)
	}

	st7, _ := s7.Stats(context.Background())
	st9, _ := s9.Stats(context.Background())
	if st7.Requests != 1 || st9.Requests != 1 {
		t.Fatalf("per-session requests: dp7=%d dp9=%d", st7.Requests, st9.Requests)
	}
	if st7.FlowMods != 1 || st9.FlowMods != 1 {
		t.Fatalf("per-session flowmods: dp7=%d dp9=%d", st7.FlowMods, st9.FlowMods)
	}
	agg, _ := c.Stats(context.Background())
	if agg.Requests != 2 || agg.FlowMods != 2 {
		t.Fatalf("aggregate stats: %+v", agg)
	}
	dps := c.Datapaths()
	if len(dps) != 2 || dps[0] != 7 || dps[1] != 9 {
		t.Fatalf("datapaths = %v", dps)
	}
}

// TestWireSessionFromHello connects a wire client that announces its
// datapath in the HELLO and checks the server scopes its PacketIns to
// that session.
func TestWireSessionFromHello(t *testing.T) {
	c := New(Config{})
	c.SetNorthbound(dpNB())
	c.Start()
	defer c.Stop()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() { _ = c.Serve(ln) }()

	cl, err := control.DialAs(context.Background(), ln.Addr().String(), 0x2a)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	rules, err := cl.Resolve(context.Background(), flowtable.Port(0), testKey())
	if err != nil {
		t.Fatal(err)
	}
	if got := rules[0].Actions[0].Dest; got != 0x2a {
		t.Fatalf("wire compilation scoped to %v, want dp 0x2a", got)
	}
	found := false
	for _, dp := range c.Datapaths() {
		if dp == 0x2a {
			found = true
		}
	}
	if !found {
		t.Fatalf("hello did not register the session: %v", c.Datapaths())
	}
	st, err := c.Session(0x2a).Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != 1 {
		t.Fatalf("wire session requests = %d", st.Requests)
	}
}
