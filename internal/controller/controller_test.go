package controller

import (
	"net"
	"testing"
	"time"

	"sdnfv/internal/flowtable"
	"sdnfv/internal/nf"
	"sdnfv/internal/openflow"
	"sdnfv/internal/packet"
)

func testKey() packet.FlowKey {
	return packet.FlowKey{
		SrcIP: packet.IPv4(10, 0, 0, 1), DstIP: packet.IPv4(10, 0, 0, 2),
		SrcPort: 1000, DstPort: 80, Proto: packet.ProtoUDP,
	}
}

func TestResolveInProcess(t *testing.T) {
	c := New(Config{})
	c.SetCompiler(func(scope flowtable.ServiceID, key packet.FlowKey) ([]flowtable.Rule, error) {
		return []flowtable.Rule{{
			Scope:   scope,
			Match:   flowtable.ExactMatch(key),
			Actions: []flowtable.Action{flowtable.Forward(10)},
		}}, nil
	})
	c.Start()
	defer c.Stop()
	rules, err := c.Resolve(flowtable.Port(0), testKey())
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 1 || rules[0].Scope != flowtable.Port(0) {
		t.Fatalf("rules = %v", rules)
	}
	st := c.Stats()
	if st.Requests != 1 || st.FlowMods != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestResolveNoCompiler(t *testing.T) {
	c := New(Config{})
	c.Start()
	defer c.Stop()
	if _, err := c.Resolve(flowtable.Port(0), testKey()); err == nil {
		t.Fatal("resolve without compiler should fail")
	}
}

// TestResolveUnblocksOnStop pins the shutdown bug where a Resolve caller
// (the host's Flow Controller thread) whose request was still queued when
// the event loop exited blocked forever, wedging host.Stop.
func TestResolveUnblocksOnStop(t *testing.T) {
	c := New(Config{ServiceTime: time.Second, QueueDepth: 4})
	c.SetCompiler(func(flowtable.ServiceID, packet.FlowKey) ([]flowtable.Rule, error) {
		return nil, nil
	})
	c.Start()
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := c.Resolve(flowtable.Port(0), testKey())
			errs <- err
		}()
	}
	time.Sleep(20 * time.Millisecond) // let both requests enqueue
	go c.Stop()
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			if err == nil {
				t.Fatal("resolve after stop should fail")
			}
		case <-time.After(5 * time.Second):
			t.Fatal("Resolve still blocked after Stop")
		}
	}
}

func TestQueueOverflowRejected(t *testing.T) {
	c := New(Config{ServiceTime: 50 * time.Millisecond, QueueDepth: 1})
	c.SetCompiler(func(flowtable.ServiceID, packet.FlowKey) ([]flowtable.Rule, error) {
		return nil, nil
	})
	c.Start()
	defer c.Stop()
	// Fire several concurrent requests; with depth 1 and slow service,
	// some must be rejected.
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			_, err := c.Resolve(flowtable.Port(0), testKey())
			errs <- err
		}()
	}
	rejected := 0
	for i := 0; i < 8; i++ {
		if err := <-errs; err != nil {
			rejected++
		}
	}
	if rejected == 0 {
		t.Fatal("no requests rejected under overload")
	}
	if c.Stats().Rejected == 0 {
		t.Fatal("rejection counter not incremented")
	}
}

func TestNFMessageHandler(t *testing.T) {
	c := New(Config{})
	got := make(chan nf.Message, 1)
	c.SetNFMessageHandler(func(src flowtable.ServiceID, m nf.Message) {
		got <- m
	})
	c.HandleNFMessage(50, nf.Message{Kind: nf.MsgRequestMe, S: 50})
	select {
	case m := <-got:
		if m.Kind != nf.MsgRequestMe {
			t.Fatalf("message = %v", m)
		}
	default:
		t.Fatal("handler not invoked")
	}
}

// TestServeOverTCP exercises the full southbound wire path: HELLO,
// PACKET_IN → FLOW_MODs + barrier, ECHO, and NF_MESSAGE.
func TestServeOverTCP(t *testing.T) {
	c := New(Config{})
	c.SetCompiler(func(scope flowtable.ServiceID, key packet.FlowKey) ([]flowtable.Rule, error) {
		return []flowtable.Rule{
			{Scope: scope, Match: flowtable.ExactMatch(key),
				Actions: []flowtable.Action{flowtable.Forward(10)}},
			{Scope: flowtable.ServiceID(10), Match: flowtable.ExactMatch(key),
				Actions: []flowtable.Action{flowtable.Out(1)}},
		}, nil
	})
	nfMsgs := make(chan nf.Message, 1)
	c.SetNFMessageHandler(func(_ flowtable.ServiceID, m nf.Message) { nfMsgs <- m })
	c.Start()
	defer c.Stop()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() { _ = c.Serve(ln) }()

	conn, err := net.DialTimeout("tcp", ln.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	oc := openflow.NewConn(conn)

	// Controller greets first.
	msg, _, err := oc.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := msg.(openflow.Hello); !ok {
		t.Fatalf("greeting = %T", msg)
	}
	if _, err := oc.Send(openflow.Hello{}); err != nil {
		t.Fatal(err)
	}

	// Echo.
	if _, err := oc.Send(openflow.Echo{Data: []byte("hi")}); err != nil {
		t.Fatal(err)
	}
	msg, _, err = oc.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if e, ok := msg.(openflow.Echo); !ok || !e.Reply || string(e.Data) != "hi" {
		t.Fatalf("echo reply = %+v", msg)
	}

	// PacketIn → two FlowMods then a barrier.
	if _, err := oc.Send(openflow.PacketIn{Scope: flowtable.Port(0), Key: testKey()}); err != nil {
		t.Fatal(err)
	}
	var mods int
	for {
		msg, _, err = oc.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := msg.(openflow.FlowMod); ok {
			mods++
			continue
		}
		if b, ok := msg.(openflow.Barrier); ok && b.Reply {
			break
		}
		t.Fatalf("unexpected %T", msg)
	}
	if mods != 2 {
		t.Fatalf("flow mods = %d", mods)
	}

	// NF message propagates to the northbound handler.
	if _, err := oc.Send(openflow.NFMessage{Src: 50, Msg: nf.Message{Kind: nf.MsgSkipMe, S: 50}}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-nfMsgs:
		if m.Kind != nf.MsgSkipMe {
			t.Fatalf("nf msg = %v", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("NF message never reached the northbound handler")
	}
}
