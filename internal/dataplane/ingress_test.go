package dataplane

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"sdnfv/internal/flowtable"
)

// TestIngestUnboundPort: wire frames for a port no driver has bound are
// refused with ErrPortUnbound and counted in RxPackets+RxDrops — the
// wire delivered them, so unlike a refused Inject they are this host's
// loss.
func TestIngestUnboundPort(t *testing.T) {
	h := NewHost(Config{PoolSize: 16})
	frame := buildFrame(t, 1000, nil)
	if err := h.Ingest(5, frame); !errors.Is(err, ErrPortUnbound) {
		t.Fatalf("Ingest on unbound port: err = %v, want ErrPortUnbound", err)
	}
	st := h.Stats()
	if st.RxPackets != 1 || st.RxDrops != 1 {
		t.Fatalf("rx=%d rxdrops=%d, want 1/1", st.RxPackets, st.RxDrops)
	}
	// Binding then unbinding restores the refusal.
	h.BindIngress(5)
	h.UnbindIngress(5)
	if err := h.Ingest(5, frame); !errors.Is(err, ErrPortUnbound) {
		t.Fatalf("Ingest after unbind: err = %v, want ErrPortUnbound", err)
	}
}

// TestIngestHardening is the malformed-wire regression test: oversize,
// truncated-garbage, and empty frames arriving through the driver
// boundary are classified, counted in RxDrops, and never admitted to
// the packet path (no pool buffer leaks, no zero-key descriptors).
func TestIngestHardening(t *testing.T) {
	h := NewHost(Config{PoolSize: 16, BufSize: 256})
	h.BindIngress(0)

	oversize := make([]byte, 257)
	if err := h.Ingest(0, oversize); !errors.Is(err, ErrFrameOversize) {
		t.Fatalf("oversize: err = %v, want ErrFrameOversize", err)
	}
	// Garbage shorter than an Ethernet header: packet.Parse must reject
	// it at the boundary instead of admitting a zero-key descriptor.
	if err := h.Ingest(0, []byte{0xde, 0xad, 0xbe, 0xef}); !errors.Is(err, ErrMalformedFrame) {
		t.Fatalf("short garbage: err = %v, want ErrMalformedFrame", err)
	}
	if err := h.Ingest(0, nil); !errors.Is(err, ErrMalformedFrame) {
		t.Fatalf("empty frame: err = %v, want ErrMalformedFrame", err)
	}
	// Host not started: even a well-formed frame is refused (stopped).
	// NewHost leaves stop unlatched until the first Stop, so start/stop
	// to latch it.
	st := h.Stats()
	if st.RxPackets != 3 || st.RxDrops != 3 {
		t.Fatalf("rx=%d rxdrops=%d, want 3/3", st.RxPackets, st.RxDrops)
	}
	if st.Pool.InUse != 0 {
		t.Fatalf("refused frames leaked %d pool buffers", st.Pool.InUse)
	}
}

// TestIngestAccountingIdentity runs valid and malformed frames through
// Ingest on a live host and requires the extended conservation identity
// rx == tx + drops + overflows + txdrops + rxdrops to balance exactly.
func TestIngestAccountingIdentity(t *testing.T) {
	h := NewHost(Config{PoolSize: 128, RingSize: 64, TXThreads: 1})
	if _, err := h.Table().Add(flowtable.Rule{
		Scope:   flowtable.Port(0),
		Match:   flowtable.MatchAll,
		Actions: []flowtable.Action{flowtable.Out(1)},
	}); err != nil {
		t.Fatal(err)
	}
	var delivered atomic.Int64
	h.BindDefault(func(int, []byte, *Desc) { delivered.Add(1) })
	h.BindIngress(0)
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	defer h.Stop()

	valid := buildFrame(t, 4000, nil)
	garbage := []byte{1, 2, 3}
	const n = 500
	for i := 0; i < n; i++ {
		if i%5 == 4 {
			if err := h.Ingest(0, garbage); err == nil {
				t.Fatal("garbage frame admitted")
			}
			continue
		}
		for {
			err := h.Ingest(0, valid)
			if err == nil {
				break
			}
			if !errors.Is(err, ErrIngestRefused) {
				t.Fatalf("valid frame refused with %v", err)
			}
			time.Sleep(time.Microsecond)
		}
	}
	if !h.WaitIdle(10 * time.Second) {
		t.Fatalf("not idle: %+v", h.Pool().Stats())
	}
	st := h.Stats()
	sum := st.TxPackets + st.Drops + st.Overflows + st.TxDrops + st.RxDrops
	t.Logf("rx=%d tx=%d drops=%d overflows=%d txdrops=%d rxdrops=%d delivered=%d",
		st.RxPackets, st.TxPackets, st.Drops, st.Overflows, st.TxDrops, st.RxDrops, delivered.Load())
	if st.RxPackets != sum {
		t.Fatalf("identity broken: rx=%d sum=%d", st.RxPackets, sum)
	}
	if st.RxDrops < n/5 {
		t.Fatalf("rxdrops=%d, want >= %d (garbage frames + retried refusals)", st.RxDrops, n/5)
	}
}

// TestIngestBurstAccounting mixes valid and malformed frames in one
// burst and checks admitted-count plus RxDrops classification.
func TestIngestBurstAccounting(t *testing.T) {
	h := NewHost(Config{PoolSize: 256, RingSize: 256, TXThreads: 1})
	h.BindIngress(2)
	valid := buildFrame(t, 4100, nil)
	frames := [][]byte{valid, {0xff}, valid, nil, valid}
	// Host not started: the NIC ring still accepts (stop flag is only
	// latched by Stop), so admitted frames sit in nicIn. Use a started
	// host to keep the pool balanced instead.
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	defer h.Stop()
	var delivered atomic.Int64
	h.BindDefault(func(int, []byte, *Desc) { delivered.Add(1) })
	if _, err := h.Table().Add(flowtable.Rule{
		Scope:   flowtable.Port(2),
		Match:   flowtable.MatchAll,
		Actions: []flowtable.Action{flowtable.Out(1)},
	}); err != nil {
		t.Fatal(err)
	}
	got, cons := h.IngestBurst(2, frames)
	if got != 3 || cons != len(frames) {
		t.Fatalf("IngestBurst = (%d, %d), want (3, %d)", got, cons, len(frames))
	}
	if !h.WaitIdle(5 * time.Second) {
		t.Fatal("not idle")
	}
	st := h.Stats()
	if st.RxDrops != 2 {
		t.Fatalf("rxdrops=%d, want 2 (the malformed frames)", st.RxDrops)
	}
	sum := st.TxPackets + st.Drops + st.Overflows + st.TxDrops + st.RxDrops
	if st.RxPackets != sum {
		t.Fatalf("identity broken: rx=%d sum=%d", st.RxPackets, sum)
	}
	// Unbound-port burst: every frame counted and consumed, none
	// admitted — retrying a dead port is pointless.
	if n, c := h.IngestBurst(9, frames); n != 0 || c != len(frames) {
		t.Fatalf("unbound burst = (%d, %d), want (0, %d)", n, c, len(frames))
	}
	if d := h.Stats().RxDrops; d != 2+uint64(len(frames)) {
		t.Fatalf("rxdrops=%d after unbound burst, want %d", d, 2+len(frames))
	}
}

// TestIngestBurstCapacityStop: a capacity refusal mid-burst stops
// consumption at the refused frame — the tail touches no counter and
// stays retryable by the driver, instead of being dropped wholesale.
func TestIngestBurstCapacityStop(t *testing.T) {
	// Pool of 4, host never started: nothing drains, so the 5th valid
	// frame hits pool exhaustion.
	h := NewHost(Config{PoolSize: 4, RingSize: 64})
	h.BindIngress(0)
	valid := buildFrame(t, 4200, nil)
	frames := [][]byte{valid, valid, {0xbad & 0xff}, valid, valid, valid, valid}
	adm, cons := h.IngestBurst(0, frames)
	if adm != 4 || cons != 5 {
		t.Fatalf("IngestBurst = (%d, %d), want (4, 5)", adm, cons)
	}
	st := h.Stats()
	// Consumed prefix: 4 admitted (counted at dequeue, not yet) + 1
	// malformed (counted now). The unconsumed tail is invisible.
	if st.RxPackets != 1 || st.RxDrops != 1 {
		t.Fatalf("rx=%d rxdrops=%d, want 1/1", st.RxPackets, st.RxDrops)
	}
	// Re-offering the tail with no space consumes nothing.
	if adm, cons := h.IngestBurst(0, frames[5:]); adm != 0 || cons != 0 {
		t.Fatalf("retry = (%d, %d), want (0, 0)", adm, cons)
	}
	if st := h.Stats(); st.RxPackets != 1 || st.RxDrops != 1 {
		t.Fatalf("retry moved counters: rx=%d rxdrops=%d", st.RxPackets, st.RxDrops)
	}
}
