package dataplane_test

// Engine-level flow-lifecycle tests: per-flow rules installed by the
// real control hierarchy expire by idle timeout, the background sweeper
// evicts them, the eviction releases the engine-owned nf.FlowState of
// the flow, and exactly one flow-removed notification per evicted rule
// climbs to the application tier.

import (
	"testing"
	"time"

	"sdnfv/internal/app"
	"sdnfv/internal/controller"
	"sdnfv/internal/dataplane"
	"sdnfv/internal/flowtable"
	"sdnfv/internal/graph"
	"sdnfv/internal/nf"
	"sdnfv/internal/traffic"
)

// flowLifeRig is the full in-process hierarchy with lifecycle defaults:
// app (per-flow exact compilation) → controller → host whose table
// expires idle flows and sweeps frequently.
type flowLifeRig struct {
	app  *app.App
	ctl  *controller.Controller
	host *dataplane.Host
	svc  flowtable.ServiceID
}

func startFlowLifeRig(t *testing.T, idle time.Duration) *flowLifeRig {
	t.Helper()
	const svcMon flowtable.ServiceID = 21
	g, err := graph.Chain("life", graph.Vertex{Service: svcMon, Name: "mon", ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	a := app.New(app.Config{IngressPort: 0, EgressPort: 1})
	if err := a.RegisterGraph(g); err != nil {
		t.Fatal(err)
	}
	ctl := controller.New(controller.Config{Workers: 4})
	ctl.SetNorthbound(a)
	ctl.Start()
	t.Cleanup(ctl.Stop)

	h := dataplane.NewHost(dataplane.Config{
		PoolSize:  512,
		TXThreads: 1,
		Control:   ctl,
		// Short lease, fast sweep: evictions happen within tens of
		// milliseconds once a flow goes quiet.
		FlowIdleTimeout:   idle,
		FlowSweepInterval: 2 * time.Millisecond,
	})
	// The monitor NF pins per-flow state, so an eviction that fails to
	// release it is observable as a leak.
	mon := &nf.BatchAdapter{FnName: "mon", RO: true,
		ProcessBatchF: func(ctx *nf.Context, batch []nf.Packet, _ []nf.Decision) {
			for i := range batch {
				ctx.FlowState().Set(batch[i].Key, struct{}{})
			}
		}}
	if _, err := h.AddNF(svcMon, mon, 0); err != nil {
		t.Fatal(err)
	}
	h.BindDefault(func(int, []byte, *dataplane.Desc) {})
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Stop)
	return &flowLifeRig{app: a, ctl: ctl, host: h, svc: svcMon}
}

// inject pushes one frame of flow id, retrying while the NIC ring is
// full.
func (r *flowLifeRig) inject(t *testing.T, factory *traffic.Factory, id int) {
	t.Helper()
	frame, err := factory.Frame(traffic.Flow(id, 128, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	for r.host.Inject(0, frame) != nil {
		time.Sleep(5 * time.Microsecond)
	}
}

// TestFlowEvictionReleasesStateAndNotifies drives flows through the
// full hierarchy, lets them go idle, and checks the whole eviction
// contract: table rules drop, nf.FlowState is released, and the
// application receives exactly one flow-removed notice per evicted rule
// (identity against the table's own eviction counters).
func TestFlowEvictionReleasesStateAndNotifies(t *testing.T) {
	rig := startFlowLifeRig(t, 40*time.Millisecond)
	factory := traffic.NewFactory()

	const flows = 32
	for i := 1; i <= flows; i++ {
		rig.inject(t, factory, i)
	}
	fs := rig.host.FlowState(rig.svc, 0)
	waitCond(t, func() bool { return fs.Len() == flows }, "per-flow NF state for every flow")
	if rules := rig.host.Stats().Table.Rules; rules < flows {
		t.Fatalf("table has %d rules, want >= %d", rules, flows)
	}

	// Quiesce: every per-flow rule (port scope and service scope) must
	// idle out, the sweeper must reap it, and the state must follow.
	waitCond(t, func() bool { return rig.host.Stats().Table.Rules == 0 }, "all rules evicted")
	waitCond(t, func() bool { return fs.Len() == 0 }, "per-flow NF state released")

	st := rig.host.Stats().Table
	if st.EvictedIdle == 0 || st.EvictedHard != 0 {
		t.Fatalf("eviction reasons: %+v", st)
	}
	// Exactly one notification per eviction, no duplicates, no loss.
	waitCond(t, func() bool { return rig.app.FlowsRemoved() == st.Evicted() }, "flow-removed notices")
	if got := rig.app.FlowsRemoved(); got != st.Evicted() {
		t.Fatalf("app saw %d removals, table evicted %d", got, st.Evicted())
	}
	// Lifecycle accounting identity holds at the engine level too.
	if st.Adds != uint64(st.Rules)+st.Deleted+st.Evicted() {
		t.Fatalf("identity broken: %+v", st)
	}

	// A returning flow is a fresh miss: it recompiles and works.
	rig.inject(t, factory, 1)
	waitCond(t, func() bool { return fs.Len() == 1 }, "returning flow reinstalled")
}

// TestFlowStateChurnNoLeak is the leak regression: waves of unique
// flows churn through install → idle-expire → evict, and after each
// wave drains the engine-owned FlowState must return to zero. Any
// eviction path that forgets to release state turns into monotonic
// growth and fails the final bound.
func TestFlowStateChurnNoLeak(t *testing.T) {
	total := 10_000
	if testing.Short() || raceEnabled {
		total = 1_000 // race scheduling makes full churn needlessly slow
	}
	rig := startFlowLifeRig(t, 15*time.Millisecond)
	factory := traffic.NewFactory()
	fs := rig.host.FlowState(rig.svc, 0)

	const wave = 250
	for base := 0; base < total; base += wave {
		for i := 1; i <= wave; i++ {
			rig.inject(t, factory, base+i)
		}
		// Every wave must drain completely: rules evicted, state freed.
		waitCond(t, func() bool { return rig.host.Stats().Table.Rules == 0 }, "wave evicted")
		waitCond(t, func() bool { return fs.Len() == 0 }, "wave state released")
	}
	st := rig.host.Stats().Table
	if st.Evicted() == 0 {
		t.Fatal("churn produced no evictions")
	}
	if st.Adds != uint64(st.Rules)+st.Deleted+st.Evicted() {
		t.Fatalf("identity broken after churn: %+v", st)
	}
	waitCond(t, func() bool { return rig.app.FlowsRemoved() == st.Evicted() }, "all notices delivered")
}
