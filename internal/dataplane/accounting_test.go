package dataplane

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"sdnfv/internal/control"
	"sdnfv/internal/controller"
	"sdnfv/internal/flowtable"
	"sdnfv/internal/nf"
	"sdnfv/internal/packet"
)

// TestAccountingIdentityUnderMissOverload saturates the miss path — a
// slow single-worker controller with a tiny queue (ErrQueueFull drops),
// small rings, a slow NF — and requires the per-host conservation
// identity rx == tx + drops + overflows + txdrops to balance exactly
// once idle. Guards the Inject/transmit accounting semantics: refused
// injects stay out of Drops, undeliverable egress lands in TxDrops.
func TestAccountingIdentityUnderMissOverload(t *testing.T) {
	ctl := controller.New(controller.Config{Workers: 1, ServiceTime: 2 * time.Millisecond, QueueDepth: 8})
	ctl.SetNorthbound(control.NorthboundFuncs{
		CompileFlowFunc: func(_ context.Context, _ control.DatapathID, _ flowtable.ServiceID, key packet.FlowKey) ([]flowtable.Rule, error) {
			return []flowtable.Rule{
				{Scope: flowtable.Port(0), Match: flowtable.ExactMatch(key), Actions: []flowtable.Action{flowtable.Forward(41)}},
				{Scope: 41, Match: flowtable.ExactMatch(key), Actions: []flowtable.Action{flowtable.Out(1)}},
			}, nil
		},
	})
	ctl.Start()
	defer ctl.Stop()
	h := NewHost(Config{PoolSize: 512, RingSize: 64, TXThreads: 1, Control: ctl})
	slow := &slowNF{d: 20 * time.Microsecond}
	if _, err := h.AddNF(41, slow, 0); err != nil {
		t.Fatal(err)
	}
	var out atomic.Int64
	h.BindDefault(func(int, []byte, *Desc) { out.Add(1) })
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	defer h.Stop()
	const n = 5000
	// 64 distinct flows to force many misses.
	frames := make([][]byte, 64)
	for i := range frames {
		frames[i] = buildFrame(t, uint16(2000+i), nil)
	}
	for i := 0; i < n; i++ {
		for {
			if err := h.Inject(0, frames[i%64]); err == nil {
				break
			}
			time.Sleep(time.Microsecond)
		}
	}
	if !h.WaitIdle(20 * time.Second) {
		t.Fatalf("not idle: %+v", h.Pool().Stats())
	}
	st := h.Stats()
	sum := st.TxPackets + st.Drops + st.Overflows + st.TxDrops
	t.Logf("rx=%d tx=%d drops=%d overflows=%d txdrops=%d misses=%d sum=%d out=%d",
		st.RxPackets, st.TxPackets, st.Drops, st.Overflows, st.TxDrops, st.Misses, sum, out.Load())
	if st.RxPackets != sum {
		t.Fatalf("identity broken: rx=%d sum=%d (+%d)", st.RxPackets, sum, int64(sum)-int64(st.RxPackets))
	}
}

type slowNF struct{ d time.Duration }

func (s *slowNF) Name() string   { return "slow" }
func (s *slowNF) ReadOnly() bool { return true }
func (s *slowNF) ProcessBatch(_ *nf.Context, batch []nf.Packet, _ []nf.Decision) {
	time.Sleep(time.Duration(len(batch)) * s.d)
}

// TestReleaseErrsCounted forces a stale-handle release and requires the
// failure to surface in HostStats.ReleaseErrs instead of vanishing: a
// failed Release means a descriptor outlived its buffer's generation —
// a refcounting bug — and silently discarding the error (the old
// `_ = h.pool.Release(...)` idiom) is exactly what the refcount
// analyzer now forbids.
func TestReleaseErrsCounted(t *testing.T) {
	h := NewHost(Config{PoolSize: 8})
	hd, err := h.pool.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	h.release(hd) // valid release: refcount reaches zero, slot recycled
	if got := h.Stats().ReleaseErrs; got != 0 {
		t.Fatalf("ReleaseErrs after valid release = %d, want 0", got)
	}
	h.release(hd) // stale handle: generation mismatch must be counted
	if got := h.Stats().ReleaseErrs; got != 1 {
		t.Fatalf("ReleaseErrs after stale release = %d, want 1", got)
	}
}
