//go:build !race

package dataplane

// Zero-allocation budget tests for the manager dispatch/transmit path —
// the measured counterpart of the hotpath analyzer's static no-alloc
// proof. White-box: they drive dispatchEntry/transmit directly, the way
// the RX and TX threads do, without starting the manager goroutines.
// Excluded under the race detector, whose instrumentation changes
// allocation behavior.

import (
	"testing"

	"sdnfv/internal/flowtable"
	"sdnfv/internal/packet"
)

func TestTransmitZeroAlloc(t *testing.T) {
	h := NewHost(Config{PoolSize: 64})
	h.BindDefault(func(int, []byte, *Desc) {})
	// The descriptor lives outside the measured closure, like the
	// engine's preallocated burst arrays: transmit hands *Desc to an
	// indirect sink, so a closure-local Desc would escape and charge the
	// test (not the engine) one allocation per run.
	var d Desc
	if n := testing.AllocsPerRun(200, func() {
		hd, err := h.pool.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if err := h.pool.SetLength(hd, 64); err != nil {
			t.Fatal(err)
		}
		d = Desc{H: hd}
		h.transmit(&d, 0)
	}); n != 0 {
		t.Errorf("transmit allocates %.1f/op, want 0", n)
	}
	if got := h.Stats().ReleaseErrs; got != 0 {
		t.Fatalf("transmit leaked %d release errors", got)
	}
}

func TestDispatchEntryZeroAlloc(t *testing.T) {
	h := NewHost(Config{PoolSize: 64})
	h.BindDefault(func(int, []byte, *Desc) {})
	key := packet.FlowKey{
		SrcIP:   packet.IPv4(10, 0, 0, 1),
		DstIP:   packet.IPv4(10, 0, 0, 2),
		SrcPort: 4000, DstPort: 80, Proto: packet.ProtoUDP,
	}
	if _, err := h.table.Add(flowtable.Rule{
		Scope:   flowtable.Port(0),
		Match:   flowtable.ExactMatch(key),
		Actions: []flowtable.Action{flowtable.Out(1)},
	}); err != nil {
		t.Fatal(err)
	}
	e, err := h.table.Lookup(flowtable.Port(0), key)
	if err != nil || e == nil {
		t.Fatal("lookup missed the installed rule")
	}
	snap := h.snap.Load()
	var rr uint64
	var d Desc // outside the closure, like the engine's burst arrays
	if n := testing.AllocsPerRun(200, func() {
		hd, err := h.pool.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		d = Desc{H: hd, Key: key, Scope: flowtable.Port(0)}
		h.dispatchEntry(snap, &d, e, 0, &rr)
	}); n != 0 {
		t.Errorf("dispatchEntry(out) allocates %.1f/op, want 0", n)
	}
}
