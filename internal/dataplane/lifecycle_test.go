package dataplane_test

// Lifecycle tests for NF SDK v2: Init aborting a launch with a typed
// error, Close running on Host.Stop and on NF replacement through the
// orchestrator, flow state surviving restarts and replacement, and the
// instance stop path releasing a wedged burst exactly once.

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sdnfv/internal/dataplane"
	"sdnfv/internal/flowtable"
	"sdnfv/internal/nf"
	"sdnfv/internal/nfs"
	"sdnfv/internal/orchestrator"
	"sdnfv/internal/packet"
	"sdnfv/internal/traffic"
)

const lcSvc flowtable.ServiceID = 21

// syncClock runs orchestrator boots synchronously (delay elapses
// immediately), so Instantiate completes before it returns.
type syncClock struct{ now float64 }

func (c *syncClock) After(delay float64, fn func()) { c.now += delay; fn() }
func (c *syncClock) Now() float64                   { return c.now }

func chainRules(t *testing.T, h *dataplane.Host, svc flowtable.ServiceID) {
	t.Helper()
	for _, r := range []flowtable.Rule{
		{Scope: flowtable.Port(0), Match: flowtable.MatchAll,
			Actions: []flowtable.Action{flowtable.Forward(svc)}},
		{Scope: svc, Match: flowtable.MatchAll,
			Actions: []flowtable.Action{flowtable.Out(1)}},
	} {
		if _, err := h.Table().Add(r); err != nil {
			t.Fatal(err)
		}
	}
}

func TestInitErrorAbortsStartWithTypedError(t *testing.T) {
	h := dataplane.NewHost(dataplane.Config{PoolSize: 64, TXThreads: 1})
	boom := errors.New("no licence")
	var firstClosed atomic.Int32
	// First NF inits fine and announces itself; its Close must run when
	// the second NF's Init aborts the start (unwind), and its stranded
	// announcement must not survive into the retry.
	if _, err := h.AddNF(lcSvc, &nf.BatchAdapter{FnName: "ok", RO: true,
		InitF: func(ctx *nf.Context) error {
			ctx.Send(nf.Message{Kind: nf.MsgRequestMe, Flows: flowtable.MatchAll, S: ctx.Service})
			return nil
		},
		CloseF: func() error { firstClosed.Add(1); return nil }}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := h.AddNF(lcSvc+1, &nf.BatchAdapter{FnName: "bad", RO: true,
		InitF: func(ctx *nf.Context) error {
			// Buffered but never flushed: must be dropped, not delivered
			// by the next successful Start.
			ctx.Send(nf.Message{Kind: nf.MsgRequestMe, Flows: flowtable.MatchAll, S: ctx.Service})
			return boom
		}}, 0); err != nil {
		t.Fatal(err)
	}
	err := h.Start()
	if err == nil {
		h.Stop()
		t.Fatal("Start succeeded despite failing Init")
	}
	var ie *dataplane.NFInitError
	if !errors.As(err, &ie) {
		t.Fatalf("Start error %T is not *NFInitError: %v", err, err)
	}
	if ie.Service != lcSvc+1 || ie.Instance != 0 || !errors.Is(err, boom) {
		t.Fatalf("NFInitError = %+v", ie)
	}
	if firstClosed.Load() != 1 {
		t.Fatalf("already-initialized NF closed %d times during unwind, want 1", firstClosed.Load())
	}
	if got := h.Stats().CtrlMessages; got != 0 {
		t.Fatalf("aborted Start left %d cross-layer messages accounted", got)
	}
	// Replacing the never-initialized broken NF must not close it, and the
	// already-closed first NF must stay closed exactly once.
	if err := h.ReplaceNF(lcSvc+1, 0, &nf.BatchAdapter{FnName: "fixed", RO: true}); err != nil {
		t.Fatal(err)
	}
	if firstClosed.Load() != 1 {
		t.Fatalf("unwound NF closed again: %d", firstClosed.Load())
	}
	// The host is startable now; only the fresh announcement is delivered.
	if err := h.Start(); err != nil {
		t.Fatalf("Start after ReplaceNF: %v", err)
	}
	waitCond(t, func() bool { return h.Stats().CtrlMessages == 1 }, "fresh announcement delivered")
	h.Stop()
	if got := h.Stats().CtrlMessages; got != 1 {
		t.Fatalf("messages after retry = %d, want 1 (stale announcements replayed?)", got)
	}
}

func TestCloseRunsOnHostStop(t *testing.T) {
	h := dataplane.NewHost(dataplane.Config{PoolSize: 64, TXThreads: 1})
	var inits, closes atomic.Int32
	fn := &nf.BatchAdapter{FnName: "lc", RO: true,
		InitF:  func(*nf.Context) error { inits.Add(1); return nil },
		CloseF: func() error { closes.Add(1); return nil },
	}
	if _, err := h.AddNF(lcSvc, fn, 0); err != nil {
		t.Fatal(err)
	}
	for cycle := 1; cycle <= 2; cycle++ {
		if err := h.Start(); err != nil {
			t.Fatal(err)
		}
		h.Stop()
		if inits.Load() != int32(cycle) || closes.Load() != int32(cycle) {
			t.Fatalf("cycle %d: inits=%d closes=%d", cycle, inits.Load(), closes.Load())
		}
	}
}

func TestCloseOnReplacementViaOrchestrator(t *testing.T) {
	h := dataplane.NewHost(dataplane.Config{PoolSize: 64, TXThreads: 1})
	var oldClosed atomic.Int32
	if _, err := h.AddNF(lcSvc, &nf.BatchAdapter{FnName: "v1", RO: true,
		CloseF: func() error { oldClosed.Add(1); return nil }}, 0); err != nil {
		t.Fatal(err)
	}
	chainRules(t, h, lcSvc)
	// Run v1 once so its lifecycle is live, then stop (the paper's VM
	// replacement model: boots land on a stopped slot).
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	h.Stop()
	if oldClosed.Load() != 1 {
		t.Fatalf("v1 closed %d times by Stop, want 1", oldClosed.Load())
	}
	orch := orchestrator.New(orchestrator.Config{BootDelaySec: 7.75}, &syncClock{})
	orch.AddHost(dataplane.NamedHost{Name: "h1", Host: h})
	var ready atomic.Int32
	err := orch.Instantiate(context.Background(), "h1", lcSvc,
		&nf.BatchAdapter{FnName: "v2", RO: true}, func(orchestrator.Launch) { ready.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	// Close runs once per successful Init: by the time the orchestrated
	// replacement lands, the outgoing NF has been closed exactly once —
	// and the replacement must not close it a second time.
	if oldClosed.Load() != 1 {
		t.Fatalf("outgoing NF closed %d times after orchestrated replacement, want exactly 1", oldClosed.Load())
	}
	if ready.Load() != 1 || len(orch.Launches()) != 1 {
		t.Fatalf("launch not recorded: ready=%d launches=%d", ready.Load(), len(orch.Launches()))
	}
	// The replacement is live: the host runs with the new NF.
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	defer h.Stop()
	var out atomic.Int64
	h.BindDefault(func(int, []byte, *dataplane.Desc) { out.Add(1) })
	factory := traffic.NewFactory()
	frame, _ := factory.Frame(traffic.Flow(1, 256, 0), 0)
	if err := h.Inject(0, frame); err != nil {
		t.Fatal(err)
	}
	waitCond(t, func() bool { return out.Load() == 1 }, "packet through replaced NF")
}

func TestFlowStateSurvivesRestartAndReplacement(t *testing.T) {
	h := dataplane.NewHost(dataplane.Config{PoolSize: 64, TXThreads: 1})
	marker := packet.FlowKey{SrcIP: packet.IPv4(9, 9, 9, 9)}
	// v1 writes a marker into its engine-owned flow store at Init. The
	// upgrade below keeps the same NF name: state survival is promised
	// for same-implementation upgrades.
	if _, err := h.AddNF(lcSvc, &nf.BatchAdapter{FnName: "state-nf", RO: true,
		InitF: func(ctx *nf.Context) error {
			ctx.FlowState().Set(marker, "from-v1")
			return nil
		}}, 0); err != nil {
		t.Fatal(err)
	}
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	h.Stop()
	// The manager can inspect the store directly.
	fs := h.FlowState(lcSvc, 0)
	if fs == nil {
		t.Fatal("no flow store for the replica")
	}
	if v, ok := fs.Get(marker); !ok || v.(string) != "from-v1" {
		t.Fatalf("state after stop = %v,%v", v, ok)
	}
	// Replacement keeps the store: v2 reads what v1 wrote.
	var got atomic.Value
	if err := h.ReplaceNF(lcSvc, 0, &nf.BatchAdapter{FnName: "state-nf", RO: true,
		InitF: func(ctx *nf.Context) error {
			if v, ok := ctx.FlowState().Get(marker); ok {
				got.Store(v.(string))
			}
			return nil
		}}); err != nil {
		t.Fatal(err)
	}
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	h.Stop()
	if got.Load() != "from-v1" {
		t.Fatalf("replacement NF saw %v, want v1's state", got.Load())
	}
	// Replacing with a different NF implementation clears the store: one
	// NF's state values would only poison another implementation.
	if err := h.ReplaceNF(lcSvc, 0, nfs.NoOp{}); err != nil {
		t.Fatal(err)
	}
	if n := h.FlowState(lcSvc, 0).Len(); n != 0 {
		t.Fatalf("cross-implementation replacement kept %d flow entries", n)
	}
}

// TestConcurrentStopSafe: Stop consumes the rings during its drain, so
// two racing Stops must serialize instead of double-consuming (and
// double-releasing) descriptors. Run under -race in CI.
func TestConcurrentStopSafe(t *testing.T) {
	h := dataplane.NewHost(dataplane.Config{PoolSize: 64, TXThreads: 1})
	if _, err := h.AddNF(lcSvc, &nf.BatchAdapter{FnName: "noop", RO: true}, 0); err != nil {
		t.Fatal(err)
	}
	chainRules(t, h, lcSvc)
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	factory := traffic.NewFactory()
	frame, _ := factory.Frame(traffic.Flow(1, 256, 0), 0)
	for i := 0; i < 20; i++ {
		_ = h.Inject(0, frame)
	}
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); h.Stop() }()
	}
	wg.Wait()
	if got := h.Pool().Stats().InUse; got != 0 {
		t.Fatalf("pool InUse = %d after concurrent Stop", got)
	}
}

// TestStopMidBurstReleasesDescriptorsOnce wedges an NF instance on a full
// out ring (TX thread blocked in the output callback), stops the host
// mid-burst, and verifies every pool buffer is accounted for exactly once
// — no leak (InUse > 0) and no double release (mempool would reject it
// and InUse would go negative). Run under -race in CI.
func TestStopMidBurstReleasesDescriptorsOnce(t *testing.T) {
	h := dataplane.NewHost(dataplane.Config{
		PoolSize: 64, RingSize: 4, TXThreads: 1, SpinLimit: 16,
	})
	gate := make(chan struct{})
	var entered atomic.Int32
	var once sync.Once
	h.BindDefault(func(int, []byte, *dataplane.Desc) {
		entered.Add(1)
		once.Do(func() { <-gate }) // block the TX thread on first delivery
	})
	if _, err := h.AddNF(lcSvc, &nf.BatchAdapter{FnName: "noop", RO: true}, 0); err != nil {
		t.Fatal(err)
	}
	chainRules(t, h, lcSvc)
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	factory := traffic.NewFactory()
	frame, _ := factory.Frame(traffic.Flow(1, 256, 0), 0)
	// Offer packets best-effort until the pipeline is saturated: with the
	// TX thread blocked, the out ring (cap 4), input rings, and NIC ring
	// all fill and the NF goroutine wedges spinning on EnqueueBatch.
	injected := 0
	deadline := time.Now().Add(2 * time.Second)
	for injected < 24 && time.Now().Before(deadline) {
		if err := h.Inject(0, frame); err != nil {
			if entered.Load() > 0 {
				break // TX blocked and everything downstream is full
			}
			time.Sleep(100 * time.Microsecond)
			continue
		}
		injected++
	}
	waitCond(t, func() bool { return entered.Load() > 0 }, "TX thread to block")
	time.Sleep(20 * time.Millisecond) // let the instance wedge mid-burst

	stopDone := make(chan struct{})
	go func() { h.Stop(); close(stopDone) }()
	time.Sleep(10 * time.Millisecond) // Stop sets the flags, threads see them
	close(gate)                       // release the TX thread
	select {
	case <-stopDone:
	case <-time.After(10 * time.Second):
		t.Fatal("Stop wedged")
	}
	if got := h.Pool().Stats().InUse; got != 0 {
		t.Fatalf("pool InUse = %d after mid-burst stop (leak or double release)", got)
	}
}
