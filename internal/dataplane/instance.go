package dataplane

import (
	"sync/atomic"

	"sdnfv/internal/flowtable"
	"sdnfv/internal/nf"
	"sdnfv/internal/ring"
)

// Instance is one running NF "VM": a network function plus its private
// rings. Each producer thread in the manager (the RX thread and every TX
// thread) gets its own SPSC ring into the instance so that every ring has
// exactly one producer and one consumer, as §4.1 requires.
type Instance struct {
	Service  flowtable.ServiceID
	Index    int // replica number within the service
	Priority uint16
	fn       nf.Function
	readOnly bool

	// in[p] is written by producer p (0 = RX thread, 1+i = TX thread i).
	in []*ring.SPSCOf[Desc]
	// out is written by the NF goroutine, drained by its assigned TX
	// thread.
	out *ring.SPSCOf[Desc]
	// txThread is the TX thread responsible for this instance's out ring.
	txThread int

	ctx nf.Context

	rxCount   atomic.Uint64
	dropCount atomic.Uint64 // ring-full drops into this instance
	stop      atomic.Bool
	done      chan struct{}
}

// Name returns the NF's name.
func (in *Instance) Name() string { return in.fn.Name() }

// ReadOnly reports the NF's read-only advertisement.
func (in *Instance) ReadOnly() bool { return in.readOnly }

// Processed returns the number of packets this instance has handled.
func (in *Instance) Processed() uint64 { return in.rxCount.Load() }

// InputDrops returns packets dropped because the instance's rings were full.
func (in *Instance) InputDrops() uint64 { return in.dropCount.Load() }

// backlog returns the total queued descriptors across input rings.
func (in *Instance) backlog() int {
	n := 0
	for _, r := range in.in {
		n += r.Len()
	}
	return n
}

// offer enqueues d on producer p's ring; false (and a drop count) on full.
func (in *Instance) offer(p int, d Desc) bool {
	if in.in[p].Enqueue(d) {
		return true
	}
	in.dropCount.Add(1)
	return false
}

// run is the NF goroutine: drain each input ring in bursts (amortizing
// the consumer-index atomics, like DPDK's burst dequeue), process, hand
// the descriptors (with the NF's decision recorded) to the out ring.
func (in *Instance) run(h *Host) {
	defer close(in.done)
	pkt := nf.Packet{}
	idle := 0
	batch := make([]Desc, 32)
	for !in.stop.Load() {
		progressed := false
		for _, r := range in.in {
			n := r.DequeueBatch(batch)
			if n == 0 {
				continue
			}
			progressed = true
			in.rxCount.Add(uint64(n))
			for i := 0; i < n; i++ {
				d := batch[i]
				pkt.Handle = d.H
				pkt.View = &d.View
				pkt.Key = d.Key
				pkt.ArrivalNanos = d.ArrivalNanos
				dec := in.fn.Process(&in.ctx, &pkt)

				d.Scope = in.Service
				d.Verb = dec.Verb
				d.Dest = dec.Dest
				for !in.out.Enqueue(d) {
					if in.stop.Load() {
						// Release this descriptor and everything still
						// queued behind it in the burst.
						for j := i; j < n; j++ {
							h.releaseDesc(&batch[j])
						}
						return
					}
					h.pause(&idle)
				}
			}
		}
		if !progressed {
			h.pause(&idle)
		} else {
			idle = 0
		}
	}
}
