package dataplane

import (
	"sync/atomic"
	"time"

	"sdnfv/internal/flowtable"
	"sdnfv/internal/metrics"
	"sdnfv/internal/nf"
	"sdnfv/internal/ring"
)

// nfBatch is the burst size of the NF instance loop: one DequeueBatch →
// ProcessBatch → EnqueueBatch pass moves up to this many descriptors.
const nfBatch = 64

// svcTimeAlpha smooths the per-replica service-time EWMA (one observation
// per burst).
const svcTimeAlpha = 0.2

func newServiceTimeEWMA() *metrics.EWMA { return metrics.NewEWMA(svcTimeAlpha) }

// Instance is one running NF "VM": a network function plus its private
// rings. Each producer thread in the manager (the RX thread and every TX
// thread) gets its own SPSC ring into the instance so that every ring has
// exactly one producer and one consumer, as §4.1 requires.
type Instance struct {
	Service flowtable.ServiceID
	// Index is the replica's stable identity within its service: indices
	// are assigned monotonically and never reused after a removal, so an
	// index keeps naming the same replica across scale-up/down (FlowState,
	// RemoveNF, orchestrator.Retire all address replicas by it).
	Index    int
	Priority uint16
	// seq is the host-wide launch sequence number: stable TX-thread
	// assignment and rendezvous-hash identity.
	seq      uint64
	fn       nf.BatchFunction
	readOnly bool

	// in[p] is written by producer p (0 = RX thread, 1+i = TX thread i).
	in []*ring.SPSCOf[Desc]
	// out is written by the NF goroutine, drained by its assigned TX
	// thread.
	out *ring.SPSCOf[Desc]
	// txThread is the TX thread responsible for this instance's out ring.
	txThread int

	ctx nf.Context

	rxCount   atomic.Uint64
	dropCount atomic.Uint64 // ring-full drops into this instance
	// svcTime tracks the EWMA per-packet NF service time in nanoseconds,
	// one observation per processed burst.
	svcTime *metrics.EWMA

	stop atomic.Bool
	// drain asks the NF goroutine to exit once a full pass over its input
	// rings finds them empty (graceful retirement: every accepted packet
	// is processed and handed to the TX thread first). Set by RemoveNF
	// after producers stopped offering.
	drain atomic.Bool
	// done is closed when the NF goroutine exits; recreated per launch.
	done chan struct{}

	// opened tracks the Init/Close pairing: true between a successful
	// Init and the matching Close (guarded by Host.lifeMu, which
	// serializes all lifecycle operations).
	opened bool
}

// ReplicaStats is a telemetry snapshot of one NF replica — the per-replica
// load signal the manager exports and the autoscale layer consumes
// (§3.3 automatic load balancing, §5 dynamic scaling).
type ReplicaStats struct {
	Service flowtable.ServiceID
	Index   int
	Name    string
	// QueueDepth is the number of descriptors waiting in the replica's
	// input rings (an instantaneous backlog sample).
	QueueDepth int
	// Processed counts packets handed to the NF.
	Processed uint64
	// OverflowDrops counts offers refused because the input rings were
	// full.
	OverflowDrops uint64
	// ServiceTimeNs is the EWMA per-packet NF service time in
	// nanoseconds (0 until the replica has processed a burst).
	ServiceTimeNs float64
}

// Name returns the NF's name.
func (in *Instance) Name() string { return in.fn.Name() }

// ReadOnly reports the NF's read-only advertisement.
func (in *Instance) ReadOnly() bool { return in.readOnly }

// Processed returns the number of packets this instance has handled.
func (in *Instance) Processed() uint64 { return in.rxCount.Load() }

// InputDrops returns packets dropped because the instance's rings were full.
func (in *Instance) InputDrops() uint64 { return in.dropCount.Load() }

// ServiceTimeNs returns the replica's EWMA per-packet service time.
func (in *Instance) ServiceTimeNs() float64 { return in.svcTime.Value() }

// Stats returns the replica's telemetry snapshot.
func (in *Instance) Stats() ReplicaStats {
	return ReplicaStats{
		Service:       in.Service,
		Index:         in.Index,
		Name:          in.fn.Name(),
		QueueDepth:    in.backlog(),
		Processed:     in.rxCount.Load(),
		OverflowDrops: in.dropCount.Load(),
		ServiceTimeNs: in.svcTime.Value(),
	}
}

// Flows exposes the instance's engine-owned per-flow state store, so the
// manager (and tests) can inspect NF flow state for §3.4-style per-flow
// decisions.
func (in *Instance) Flows() *nf.FlowState { return in.ctx.Flows }

// backlog returns the total queued descriptors across input rings.
//
//sdnfv:hotpath
func (in *Instance) backlog() int {
	n := 0
	for _, r := range in.in {
		n += r.Len()
	}
	return n
}

// offer enqueues d on producer p's ring; false (and a drop count) on full.
//
//sdnfv:hotpath
func (in *Instance) offer(p int, d Desc) bool {
	if in.in[p].Enqueue(d) {
		return true
	}
	in.dropCount.Add(1)
	return false
}

// launch starts the NF goroutine (rings must exist); done tracks its exit
// for graceful retirement.
func (in *Instance) launch(h *Host) {
	in.done = make(chan struct{})
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		defer close(in.done)
		in.run(h)
	}()
}

// nfScratch is the NF goroutine's per-thread burst storage, allocated
// once at launch so the burst loop itself stays allocation-free.
type nfScratch struct {
	descs []Desc
	pkts  []nf.Packet
	decs  []nf.Decision
}

func newNFScratch() *nfScratch {
	return &nfScratch{
		descs: make([]Desc, nfBatch),
		pkts:  make([]nf.Packet, nfBatch),
		decs:  make([]nf.Decision, nfBatch),
	}
}

// run is the NF goroutine: one burst pass per input ring — DequeueBatch,
// one ProcessBatch call over the whole burst with a single decision
// array, EnqueueBatch onto the out ring — amortizing the ring atomics and
// the NF interface call across the burst (like DPDK's burst mode, and
// like VPP's vectorized graph nodes). Cross-layer messages buffered
// during the burst are flushed (deduped) once per burst.
//
//sdnfv:hotpath
func (in *Instance) run(h *Host) {
	idle := 0
	//sdnfv:allow(call) scratch construction runs once at thread launch, before the burst loop
	s := newNFScratch()
	descs, pkts, decs := s.descs, s.pkts, s.decs
	for !in.stop.Load() {
		progressed := false
		for _, r := range in.in {
			n := r.DequeueBatch(descs)
			if n == 0 {
				continue
			}
			progressed = true
			in.rxCount.Add(uint64(n))
			for i := 0; i < n; i++ {
				d := &descs[i]
				pkts[i] = nf.Packet{
					Handle:       d.H,
					View:         &d.View,
					Key:          d.Key,
					ArrivalNanos: d.ArrivalNanos,
				}
			}
			// The decision slots arrive zeroed (Default) per the
			// BatchFunction contract.
			clear(decs[:n])
			t0 := time.Now()
			//sdnfv:allow(dyncall) the BatchFunction interface call is the engine's one indirection, amortized over the burst
			in.fn.ProcessBatch(&in.ctx, pkts[:n], decs[:n])
			in.svcTime.Observe(float64(time.Since(t0).Nanoseconds()) / float64(n))
			for i := 0; i < n; i++ {
				descs[i].Scope = in.Service
				descs[i].Verb = decs[i].Verb
				descs[i].Dest = decs[i].Dest
			}
			// Hand the burst to the TX thread; spin when the out ring is
			// full. On stop, every descriptor not yet owned by the ring is
			// released exactly once — EnqueueBatch has already transferred
			// ownership of the first `off`, so only the remainder is ours.
			off := 0
			for off < n {
				k := in.out.EnqueueBatch(descs[off:n])
				off += k
				if off == n {
					break
				}
				if in.stop.Load() {
					for j := off; j < n; j++ {
						h.releaseDesc(&descs[j])
					}
					//sdnfv:allow(call) shutdown path: the final message flush is not per-packet work
					in.ctx.FlushEmits()
					return
				}
				if k == 0 {
					h.pause(&idle)
				}
			}
			//sdnfv:allow(call) cross-layer emission flush runs once per burst, amortized (§3.4)
			in.ctx.FlushEmits()
		}
		if !progressed {
			if in.drain.Load() {
				// Graceful retirement: producers have stopped offering and
				// a full pass found every input ring empty, so all accepted
				// packets are processed and on the out ring. Exit.
				return
			}
			h.pause(&idle)
		} else {
			idle = 0
		}
	}
}
