package dataplane

import (
	"sync/atomic"

	"sdnfv/internal/flowtable"
	"sdnfv/internal/nf"
	"sdnfv/internal/ring"
)

// nfBatch is the burst size of the NF instance loop: one DequeueBatch →
// ProcessBatch → EnqueueBatch pass moves up to this many descriptors.
const nfBatch = 64

// Instance is one running NF "VM": a network function plus its private
// rings. Each producer thread in the manager (the RX thread and every TX
// thread) gets its own SPSC ring into the instance so that every ring has
// exactly one producer and one consumer, as §4.1 requires.
type Instance struct {
	Service  flowtable.ServiceID
	Index    int // replica number within the service
	Priority uint16
	fn       nf.BatchFunction
	readOnly bool

	// in[p] is written by producer p (0 = RX thread, 1+i = TX thread i).
	in []*ring.SPSCOf[Desc]
	// out is written by the NF goroutine, drained by its assigned TX
	// thread.
	out *ring.SPSCOf[Desc]
	// txThread is the TX thread responsible for this instance's out ring.
	txThread int

	ctx nf.Context

	rxCount   atomic.Uint64
	dropCount atomic.Uint64 // ring-full drops into this instance
	stop      atomic.Bool

	// opened tracks the Init/Close pairing: true between a successful
	// Init and the matching Close (guarded by Host.lifeMu, which
	// serializes all lifecycle operations).
	opened bool
}

// Name returns the NF's name.
func (in *Instance) Name() string { return in.fn.Name() }

// ReadOnly reports the NF's read-only advertisement.
func (in *Instance) ReadOnly() bool { return in.readOnly }

// Processed returns the number of packets this instance has handled.
func (in *Instance) Processed() uint64 { return in.rxCount.Load() }

// InputDrops returns packets dropped because the instance's rings were full.
func (in *Instance) InputDrops() uint64 { return in.dropCount.Load() }

// Flows exposes the instance's engine-owned per-flow state store, so the
// manager (and tests) can inspect NF flow state for §3.4-style per-flow
// decisions.
func (in *Instance) Flows() *nf.FlowState { return in.ctx.Flows }

// backlog returns the total queued descriptors across input rings.
func (in *Instance) backlog() int {
	n := 0
	for _, r := range in.in {
		n += r.Len()
	}
	return n
}

// offer enqueues d on producer p's ring; false (and a drop count) on full.
func (in *Instance) offer(p int, d Desc) bool {
	if in.in[p].Enqueue(d) {
		return true
	}
	in.dropCount.Add(1)
	return false
}

// run is the NF goroutine: one burst pass per input ring — DequeueBatch,
// one ProcessBatch call over the whole burst with a single decision
// array, EnqueueBatch onto the out ring — amortizing the ring atomics and
// the NF interface call across the burst (like DPDK's burst mode, and
// like VPP's vectorized graph nodes). Cross-layer messages buffered
// during the burst are flushed (deduped) once per burst.
func (in *Instance) run(h *Host) {
	idle := 0
	descs := make([]Desc, nfBatch)
	pkts := make([]nf.Packet, nfBatch)
	decs := make([]nf.Decision, nfBatch)
	for !in.stop.Load() {
		progressed := false
		for _, r := range in.in {
			n := r.DequeueBatch(descs)
			if n == 0 {
				continue
			}
			progressed = true
			in.rxCount.Add(uint64(n))
			for i := 0; i < n; i++ {
				d := &descs[i]
				pkts[i] = nf.Packet{
					Handle:       d.H,
					View:         &d.View,
					Key:          d.Key,
					ArrivalNanos: d.ArrivalNanos,
				}
			}
			// The decision slots arrive zeroed (Default) per the
			// BatchFunction contract.
			clear(decs[:n])
			in.fn.ProcessBatch(&in.ctx, pkts[:n], decs[:n])
			for i := 0; i < n; i++ {
				descs[i].Scope = in.Service
				descs[i].Verb = decs[i].Verb
				descs[i].Dest = decs[i].Dest
			}
			// Hand the burst to the TX thread; spin when the out ring is
			// full. On stop, every descriptor not yet owned by the ring is
			// released exactly once — EnqueueBatch has already transferred
			// ownership of the first `off`, so only the remainder is ours.
			off := 0
			for off < n {
				k := in.out.EnqueueBatch(descs[off:n])
				off += k
				if off == n {
					break
				}
				if in.stop.Load() {
					for j := off; j < n; j++ {
						h.releaseDesc(&descs[j])
					}
					in.ctx.FlushEmits()
					return
				}
				if k == 0 {
					h.pause(&idle)
				}
			}
			in.ctx.FlushEmits()
		}
		if !progressed {
			h.pause(&idle)
		} else {
			idle = 0
		}
	}
}
