package dataplane

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sdnfv/internal/control"
	"sdnfv/internal/flowtable"
	"sdnfv/internal/graph"
	"sdnfv/internal/nf"
	"sdnfv/internal/packet"
)

// collector is a thread-safe output sink.
type collector struct {
	mu     sync.Mutex
	frames [][]byte
	ports  []int
}

func (c *collector) fn(port int, data []byte, _ *Desc) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.frames = append(c.frames, append([]byte(nil), data...))
	c.ports = append(c.ports, port)
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.frames)
}

func buildFrame(t *testing.T, srcPort uint16, payload []byte) []byte {
	t.Helper()
	b := packet.Builder{
		SrcIP: packet.IPv4(10, 0, 0, 1), DstIP: packet.IPv4(10, 0, 0, 2),
		SrcPort: srcPort, DstPort: 80, Proto: packet.ProtoUDP,
	}
	buf := make([]byte, 2048)
	n, err := b.Build(buf, payload)
	if err != nil {
		t.Fatal(err)
	}
	return buf[:n]
}

// startHost builds, configures, and starts a host; cleanup stops it.
func startHost(t *testing.T, cfg Config, setup func(h *Host)) (*Host, *collector) {
	t.Helper()
	if cfg.PoolSize == 0 {
		cfg.PoolSize = 256
	}
	if cfg.TXThreads == 0 {
		cfg.TXThreads = 1
	}
	h := NewHost(cfg)
	out := &collector{}
	h.BindDefault(out.fn)
	if setup != nil {
		setup(h)
	}
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Stop)
	return h, out
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(200 * time.Microsecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

const (
	svcA flowtable.ServiceID = 10
	svcB flowtable.ServiceID = 11
	svcC flowtable.ServiceID = 12
)

// ppNF builds a read-only per-packet NF through the v1 PerPacket shim, so
// the engine tests cover the shim path end to end (native batch NFs are
// covered by the nfs suite and lifecycle tests).
func ppNF(name string, f func(ctx *nf.Context, p *nf.Packet) nf.Decision) nf.BatchFunction {
	return nf.PerPacket(&nf.FuncAdapter{FnName: name, RO: true, ProcessF: f})
}

func TestSingleNFChain(t *testing.T) {
	var processed atomic.Uint64
	h, out := startHost(t, Config{}, func(h *Host) {
		fn := ppNF("count",
			func(_ *nf.Context, _ *nf.Packet) nf.Decision {
				processed.Add(1)
				return nf.Default()
			})
		if _, err := h.AddNF(svcA, fn, 0); err != nil {
			t.Fatal(err)
		}
		// port0 -> A -> out port1
		mustAdd(t, h, flowtable.Rule{Scope: flowtable.Port(0), Match: flowtable.MatchAll,
			Actions: []flowtable.Action{flowtable.Forward(svcA)}})
		mustAdd(t, h, flowtable.Rule{Scope: svcA, Match: flowtable.MatchAll,
			Actions: []flowtable.Action{flowtable.Out(1)}})
	})
	const n = 50
	frame := buildFrame(t, 1000, []byte("hello"))
	for i := 0; i < n; i++ {
		if err := h.Inject(0, frame); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return out.count() == n }, "all packets out")
	if processed.Load() != n {
		t.Fatalf("NF processed %d, want %d", processed.Load(), n)
	}
	if !h.WaitIdle(5 * time.Second) {
		t.Fatalf("buffers leaked: %+v", h.Pool().Stats())
	}
	st := h.Stats()
	if st.TxPackets != n || st.RxPackets != n {
		t.Fatalf("stats: %+v", st)
	}
}

func mustAdd(t *testing.T, h *Host, r flowtable.Rule) {
	t.Helper()
	if _, err := h.Table().Add(r); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialChainOrder(t *testing.T) {
	var mu sync.Mutex
	var order []string
	mkNF := func(name string) nf.BatchFunction {
		return ppNF(name, func(_ *nf.Context, _ *nf.Packet) nf.Decision {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			return nf.Default()
		})
	}
	h, out := startHost(t, Config{}, func(h *Host) {
		_, _ = h.AddNF(svcA, mkNF("A"), 0)
		_, _ = h.AddNF(svcB, mkNF("B"), 0)
		mustAdd(t, h, flowtable.Rule{Scope: flowtable.Port(0), Match: flowtable.MatchAll,
			Actions: []flowtable.Action{flowtable.Forward(svcA)}})
		mustAdd(t, h, flowtable.Rule{Scope: svcA, Match: flowtable.MatchAll,
			Actions: []flowtable.Action{flowtable.Forward(svcB)}})
		mustAdd(t, h, flowtable.Rule{Scope: svcB, Match: flowtable.MatchAll,
			Actions: []flowtable.Action{flowtable.Out(0)}})
	})
	frame := buildFrame(t, 2000, nil)
	if err := h.Inject(0, frame); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return out.count() == 1 }, "packet out")
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != "A" || order[1] != "B" {
		t.Fatalf("order = %v, want [A B]", order)
	}
}

func TestDiscardVerb(t *testing.T) {
	h, out := startHost(t, Config{}, func(h *Host) {
		drop := ppNF("drop",
			func(_ *nf.Context, _ *nf.Packet) nf.Decision { return nf.Discard() })
		_, _ = h.AddNF(svcA, drop, 0)
		mustAdd(t, h, flowtable.Rule{Scope: flowtable.Port(0), Match: flowtable.MatchAll,
			Actions: []flowtable.Action{flowtable.Forward(svcA)}})
		mustAdd(t, h, flowtable.Rule{Scope: svcA, Match: flowtable.MatchAll,
			Actions: []flowtable.Action{flowtable.Out(0)}})
	})
	frame := buildFrame(t, 3000, nil)
	for i := 0; i < 10; i++ {
		_ = h.Inject(0, frame)
	}
	waitFor(t, func() bool { return h.Stats().Drops == 10 }, "drops")
	if out.count() != 0 {
		t.Fatalf("%d packets escaped a dropping NF", out.count())
	}
	if !h.WaitIdle(5 * time.Second) {
		t.Fatalf("buffers leaked after drops: %+v", h.Pool().Stats())
	}
}

func TestSendToValidation(t *testing.T) {
	// NF at A requests SendTo(C), but only B is an allowed next hop;
	// the manager must fall back to the default (B).
	var cGot atomic.Uint64
	var bGot atomic.Uint64
	h, out := startHost(t, Config{}, func(h *Host) {
		toC := ppNF("toC",
			func(_ *nf.Context, _ *nf.Packet) nf.Decision { return nf.SendTo(svcC) })
		bNF := ppNF("b",
			func(_ *nf.Context, _ *nf.Packet) nf.Decision { bGot.Add(1); return nf.Default() })
		cNF := ppNF("c",
			func(_ *nf.Context, _ *nf.Packet) nf.Decision { cGot.Add(1); return nf.Default() })
		_, _ = h.AddNF(svcA, toC, 0)
		_, _ = h.AddNF(svcB, bNF, 0)
		_, _ = h.AddNF(svcC, cNF, 0)
		mustAdd(t, h, flowtable.Rule{Scope: flowtable.Port(0), Match: flowtable.MatchAll,
			Actions: []flowtable.Action{flowtable.Forward(svcA)}})
		mustAdd(t, h, flowtable.Rule{Scope: svcA, Match: flowtable.MatchAll,
			Actions: []flowtable.Action{flowtable.Forward(svcB)}}) // C not allowed
		mustAdd(t, h, flowtable.Rule{Scope: svcB, Match: flowtable.MatchAll,
			Actions: []flowtable.Action{flowtable.Out(0)}})
		mustAdd(t, h, flowtable.Rule{Scope: svcC, Match: flowtable.MatchAll,
			Actions: []flowtable.Action{flowtable.Out(0)}})
	})
	_ = h.Inject(0, buildFrame(t, 4000, nil))
	waitFor(t, func() bool { return out.count() == 1 }, "packet out")
	if cGot.Load() != 0 {
		t.Fatal("disallowed SendTo was honored")
	}
	if bGot.Load() != 1 {
		t.Fatal("default fallback not taken")
	}
}

func TestSendToAllowed(t *testing.T) {
	var cGot atomic.Uint64
	h, out := startHost(t, Config{}, func(h *Host) {
		toC := ppNF("toC",
			func(_ *nf.Context, _ *nf.Packet) nf.Decision { return nf.SendTo(svcC) })
		cNF := ppNF("c",
			func(_ *nf.Context, _ *nf.Packet) nf.Decision { cGot.Add(1); return nf.Default() })
		_, _ = h.AddNF(svcA, toC, 0)
		_, _ = h.AddNF(svcC, cNF, 0)
		mustAdd(t, h, flowtable.Rule{Scope: flowtable.Port(0), Match: flowtable.MatchAll,
			Actions: []flowtable.Action{flowtable.Forward(svcA)}})
		// Default is out(0), but C is listed as an allowed alternative.
		mustAdd(t, h, flowtable.Rule{Scope: svcA, Match: flowtable.MatchAll,
			Actions: []flowtable.Action{flowtable.Out(0), flowtable.Forward(svcC)}})
		mustAdd(t, h, flowtable.Rule{Scope: svcC, Match: flowtable.MatchAll,
			Actions: []flowtable.Action{flowtable.Out(0)}})
	})
	_ = h.Inject(0, buildFrame(t, 5000, nil))
	waitFor(t, func() bool { return out.count() == 1 }, "packet out")
	if cGot.Load() != 1 {
		t.Fatal("allowed SendTo was not honored")
	}
}

func TestParallelDispatchRefcounts(t *testing.T) {
	var aGot, bGot atomic.Uint64
	h, out := startHost(t, Config{}, func(h *Host) {
		mk := func(c *atomic.Uint64) nf.BatchFunction {
			return ppNF("ro",
				func(_ *nf.Context, _ *nf.Packet) nf.Decision { c.Add(1); return nf.Default() })
		}
		_, _ = h.AddNF(svcA, mk(&aGot), 0)
		_, _ = h.AddNF(svcB, mk(&bGot), 0)
		mustAdd(t, h, flowtable.Rule{Scope: flowtable.Port(0), Match: flowtable.MatchAll,
			Actions:  []flowtable.Action{flowtable.Forward(svcA), flowtable.Forward(svcB)},
			Parallel: true})
		mustAdd(t, h, flowtable.Rule{Scope: svcA, Match: flowtable.MatchAll,
			Actions: []flowtable.Action{flowtable.Out(1)}})
		mustAdd(t, h, flowtable.Rule{Scope: svcB, Match: flowtable.MatchAll,
			Actions: []flowtable.Action{flowtable.Out(1)}})
	})
	const n = 40
	frame := buildFrame(t, 6000, []byte("par"))
	for i := 0; i < n; i++ {
		_ = h.Inject(0, frame)
	}
	// Exactly one copy of each packet exits, both NFs see every packet.
	waitFor(t, func() bool { return out.count() == n }, "join outputs")
	if aGot.Load() != n || bGot.Load() != n {
		t.Fatalf("parallel NFs saw %d/%d, want %d each", aGot.Load(), bGot.Load(), n)
	}
	if !h.WaitIdle(5 * time.Second) {
		t.Fatalf("refcount leak: %+v", h.Pool().Stats())
	}
}

func TestParallelConflictDropWins(t *testing.T) {
	h, out := startHost(t, Config{}, func(h *Host) {
		pass := ppNF("pass",
			func(_ *nf.Context, _ *nf.Packet) nf.Decision { return nf.Default() })
		drop := ppNF("drop",
			func(_ *nf.Context, _ *nf.Packet) nf.Decision { return nf.Discard() })
		_, _ = h.AddNF(svcA, pass, 0)
		_, _ = h.AddNF(svcB, drop, 0)
		mustAdd(t, h, flowtable.Rule{Scope: flowtable.Port(0), Match: flowtable.MatchAll,
			Actions:  []flowtable.Action{flowtable.Forward(svcA), flowtable.Forward(svcB)},
			Parallel: true})
		mustAdd(t, h, flowtable.Rule{Scope: svcA, Match: flowtable.MatchAll,
			Actions: []flowtable.Action{flowtable.Out(1)}})
		mustAdd(t, h, flowtable.Rule{Scope: svcB, Match: flowtable.MatchAll,
			Actions: []flowtable.Action{flowtable.Out(1)}})
	})
	const n = 20
	frame := buildFrame(t, 7000, nil)
	for i := 0; i < n; i++ {
		_ = h.Inject(0, frame)
	}
	waitFor(t, func() bool { return h.Pool().Stats().InUse == 0 && h.Stats().RxPackets == n }, "drain")
	// Drop must win every conflict: nothing exits.
	if out.count() != 0 {
		t.Fatalf("%d packets escaped a drop conflict", out.count())
	}
}

func TestLoadBalancerFlowHashAffinity(t *testing.T) {
	var got [2]atomic.Uint64
	h, out := startHost(t, Config{LoadBalancer: LBFlowHash}, func(h *Host) {
		for i := 0; i < 2; i++ {
			i := i
			fn := ppNF("r",
				func(_ *nf.Context, _ *nf.Packet) nf.Decision { got[i].Add(1); return nf.Default() })
			_, _ = h.AddNF(svcA, fn, 0)
		}
		mustAdd(t, h, flowtable.Rule{Scope: flowtable.Port(0), Match: flowtable.MatchAll,
			Actions: []flowtable.Action{flowtable.Forward(svcA)}})
		mustAdd(t, h, flowtable.Rule{Scope: svcA, Match: flowtable.MatchAll,
			Actions: []flowtable.Action{flowtable.Out(0)}})
	})
	// One flow: all its packets must hit the same replica.
	frame := buildFrame(t, 8000, nil)
	const n = 30
	for i := 0; i < n; i++ {
		_ = h.Inject(0, frame)
	}
	waitFor(t, func() bool { return out.count() == n }, "packets out")
	a, b := got[0].Load(), got[1].Load()
	if !(a == n && b == 0 || a == 0 && b == n) {
		t.Fatalf("flow split across replicas: %d/%d", a, b)
	}
}

func TestLoadBalancerRoundRobinSpreads(t *testing.T) {
	var got [2]atomic.Uint64
	h, out := startHost(t, Config{LoadBalancer: LBRoundRobin}, func(h *Host) {
		for i := 0; i < 2; i++ {
			i := i
			fn := ppNF("r",
				func(_ *nf.Context, _ *nf.Packet) nf.Decision { got[i].Add(1); return nf.Default() })
			_, _ = h.AddNF(svcA, fn, 0)
		}
		mustAdd(t, h, flowtable.Rule{Scope: flowtable.Port(0), Match: flowtable.MatchAll,
			Actions: []flowtable.Action{flowtable.Forward(svcA)}})
		mustAdd(t, h, flowtable.Rule{Scope: svcA, Match: flowtable.MatchAll,
			Actions: []flowtable.Action{flowtable.Out(0)}})
	})
	frame := buildFrame(t, 8100, nil)
	const n = 40
	for i := 0; i < n; i++ {
		_ = h.Inject(0, frame)
	}
	waitFor(t, func() bool { return out.count() == n }, "packets out")
	a, b := got[0].Load(), got[1].Load()
	if a == 0 || b == 0 {
		t.Fatalf("round robin starved a replica: %d/%d", a, b)
	}
}

func TestFlowControllerSouthboundResolve(t *testing.T) {
	var misses atomic.Uint64
	cfg := Config{
		Control: control.SouthboundFuncs{
			ResolveFunc: func(_ context.Context, scope flowtable.ServiceID, key packet.FlowKey) ([]flowtable.Rule, error) {
				misses.Add(1)
				return []flowtable.Rule{
					{Scope: scope, Match: flowtable.ExactMatch(key),
						Actions: []flowtable.Action{flowtable.Out(2)}},
				}, nil
			},
		},
	}
	h, out := startHost(t, cfg, nil) // empty flow table: everything misses
	frame := buildFrame(t, 9000, nil)
	_ = h.Inject(0, frame)
	waitFor(t, func() bool { return out.count() == 1 }, "miss-resolved packet out")
	if misses.Load() != 1 {
		t.Fatalf("miss handler called %d times", misses.Load())
	}
	// Subsequent packets of the flow hit the installed rule (no new miss).
	_ = h.Inject(0, frame)
	waitFor(t, func() bool { return out.count() == 2 }, "second packet out")
	if misses.Load() != 1 {
		t.Fatalf("rule not installed: %d misses", misses.Load())
	}
	if got := out.ports[1]; got != 2 {
		t.Fatalf("packet exited port %d, want 2", got)
	}
}

func TestCrossLayerChangeDefault(t *testing.T) {
	// NF A sends ChangeDefault(flow, A -> C); afterwards the flow's
	// packets leaving A go to C instead of B.
	var bGot, cGot atomic.Uint64
	release := make(chan struct{})
	h, out := startHost(t, Config{}, func(h *Host) {
		first := true
		aNF := ppNF("a",
			func(ctx *nf.Context, p *nf.Packet) nf.Decision {
				if first {
					first = false
					ctx.Send(nf.Message{
						Kind:  nf.MsgChangeDefault,
						Flows: flowtable.ExactMatch(p.Key),
						S:     svcA,
						T:     svcC,
					})
					close(release)
				}
				return nf.Default()
			})
		bNF := ppNF("b",
			func(_ *nf.Context, _ *nf.Packet) nf.Decision { bGot.Add(1); return nf.Default() })
		cNF := ppNF("c",
			func(_ *nf.Context, _ *nf.Packet) nf.Decision { cGot.Add(1); return nf.Default() })
		_, _ = h.AddNF(svcA, aNF, 0)
		_, _ = h.AddNF(svcB, bNF, 0)
		_, _ = h.AddNF(svcC, cNF, 0)
		mustAdd(t, h, flowtable.Rule{Scope: flowtable.Port(0), Match: flowtable.MatchAll,
			Actions: []flowtable.Action{flowtable.Forward(svcA)}})
		mustAdd(t, h, flowtable.Rule{Scope: svcA, Match: flowtable.MatchAll,
			Actions: []flowtable.Action{flowtable.Forward(svcB), flowtable.Forward(svcC)}})
		mustAdd(t, h, flowtable.Rule{Scope: svcB, Match: flowtable.MatchAll,
			Actions: []flowtable.Action{flowtable.Out(0)}})
		mustAdd(t, h, flowtable.Rule{Scope: svcC, Match: flowtable.MatchAll,
			Actions: []flowtable.Action{flowtable.Out(0)}})
	})
	frame := buildFrame(t, 9500, nil)
	_ = h.Inject(0, frame)
	<-release
	waitFor(t, func() bool { return out.count() == 1 }, "first packet")
	// Wait for the control message to be applied (TX thread 0 drains it).
	waitFor(t, func() bool { return h.Stats().CtrlMessages >= 1 && h.Table().Stats().Rules >= 5 }, "rule installed")
	const n = 10
	for i := 0; i < n; i++ {
		_ = h.Inject(0, frame)
	}
	waitFor(t, func() bool { return out.count() == n+1 }, "remaining packets")
	if cGot.Load() == 0 {
		t.Fatal("ChangeDefault had no effect: C never reached")
	}
	if bGot.Load() > 1 {
		t.Fatalf("B still receiving after ChangeDefault: %d", bGot.Load())
	}
}

func TestInstallGraphEndToEnd(t *testing.T) {
	// Anomaly-detection shaped graph: A -> (B ‖ C read-only) -> out.
	g := graph.New("t")
	if err := g.AddVertex(graph.Vertex{Service: svcA, Name: "fw", ReadOnly: true}); err != nil {
		t.Fatal(err)
	}
	_ = g.AddVertex(graph.Vertex{Service: svcB, Name: "ids", ReadOnly: true})
	_ = g.AddVertex(graph.Vertex{Service: svcC, Name: "ddos", ReadOnly: true})
	_ = g.AddEdge(graph.Source, svcA, true)
	_ = g.AddEdge(svcA, svcB, true)
	_ = g.AddEdge(svcB, svcC, true)
	_ = g.AddEdge(svcC, graph.Sink, true)

	var aGot, bGot, cGot atomic.Uint64
	h, out := startHost(t, Config{}, func(h *Host) {
		mk := func(c *atomic.Uint64) nf.BatchFunction {
			return ppNF("x",
				func(_ *nf.Context, _ *nf.Packet) nf.Decision { c.Add(1); return nf.Default() })
		}
		_, _ = h.AddNF(svcA, mk(&aGot), 0)
		_, _ = h.AddNF(svcB, mk(&bGot), 0)
		_, _ = h.AddNF(svcC, mk(&cGot), 0)
		if err := h.InstallGraph(g, 0, 1); err != nil {
			t.Fatal(err)
		}
	})
	const n = 25
	frame := buildFrame(t, 9900, nil)
	for i := 0; i < n; i++ {
		_ = h.Inject(0, frame)
	}
	waitFor(t, func() bool { return out.count() == n }, "graph traversal")
	if aGot.Load() != n || bGot.Load() != n || cGot.Load() != n {
		t.Fatalf("NF counts %d/%d/%d, want %d each", aGot.Load(), bGot.Load(), cGot.Load(), n)
	}
	if !h.WaitIdle(5 * time.Second) {
		t.Fatalf("leak: %+v", h.Pool().Stats())
	}
}

func TestLookupCacheAblation(t *testing.T) {
	for _, disable := range []bool{false, true} {
		h, out := startHost(t, Config{DisableLookupCache: disable}, func(h *Host) {
			_, _ = h.AddNF(svcA, ppNF("n",
				func(_ *nf.Context, _ *nf.Packet) nf.Decision { return nf.Default() }), 0)
			mustAdd(t, h, flowtable.Rule{Scope: flowtable.Port(0), Match: flowtable.MatchAll,
				Actions: []flowtable.Action{flowtable.Forward(svcA)}})
			mustAdd(t, h, flowtable.Rule{Scope: svcA, Match: flowtable.MatchAll,
				Actions: []flowtable.Action{flowtable.Out(0)}})
		})
		frame := buildFrame(t, 9999, []byte("cache"))
		const n = 20
		for i := 0; i < n; i++ {
			_ = h.Inject(0, frame)
		}
		waitFor(t, func() bool { return out.count() == n }, "packets out (cache ablation)")
		h.Stop()
	}
}

func TestHostRestart(t *testing.T) {
	h, out := startHost(t, Config{}, func(h *Host) {
		_, _ = h.AddNF(svcA, ppNF("n",
			func(_ *nf.Context, _ *nf.Packet) nf.Decision { return nf.Default() }), 0)
		mustAdd(t, h, flowtable.Rule{Scope: flowtable.Port(0), Match: flowtable.MatchAll,
			Actions: []flowtable.Action{flowtable.Forward(svcA)}})
		mustAdd(t, h, flowtable.Rule{Scope: svcA, Match: flowtable.MatchAll,
			Actions: []flowtable.Action{flowtable.Out(0)}})
	})
	frame := buildFrame(t, 1234, nil)
	_ = h.Inject(0, frame)
	waitFor(t, func() bool { return out.count() == 1 }, "first run")
	h.Stop()
	if err := h.Start(); err != nil {
		t.Fatalf("restart: %v", err)
	}
	_ = h.Inject(0, frame)
	waitFor(t, func() bool { return out.count() == 2 }, "after restart")
}

func TestAddNFValidation(t *testing.T) {
	h := NewHost(Config{PoolSize: 16})
	if _, err := h.AddNF(flowtable.Port(1), NoopFn(), 0); err == nil {
		t.Fatal("port-range service id accepted")
	}
	if _, err := h.AddNF(graph.Sink, NoopFn(), 0); err == nil {
		t.Fatal("sink service id accepted")
	}
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	defer h.Stop()
	// Runtime scale-up: adding a replica to a started host is a live
	// launch, not an error.
	inst, err := h.AddNF(svcA, NoopFn(), 0)
	if err != nil {
		t.Fatalf("runtime AddNF: %v", err)
	}
	if inst.Index != 0 {
		t.Fatalf("first replica index = %d", inst.Index)
	}
	if _, err := h.AddNF(flowtable.Port(1), NoopFn(), 0); err == nil {
		t.Fatal("port-range service id accepted at runtime")
	}
}

// NoopFn returns a minimal native-batch no-op NF for tests.
func NoopFn() nf.BatchFunction {
	return &nf.BatchAdapter{FnName: "noop", RO: true}
}
