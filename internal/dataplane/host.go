package dataplane

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sdnfv/internal/control"
	"sdnfv/internal/flowtable"
	"sdnfv/internal/graph"
	"sdnfv/internal/mempool"
	"sdnfv/internal/nf"
	"sdnfv/internal/packet"
	"sdnfv/internal/ring"
)

// Config tunes a Host. Zero values select sensible defaults (see
// fillDefaults).
type Config struct {
	// PoolSize is the number of packet buffers (the "huge page" budget).
	PoolSize int
	// BufSize is the byte capacity of each packet buffer.
	BufSize int
	// RingSize is the capacity of every descriptor ring.
	RingSize int
	// TXThreads is the number of TX "cores" draining NF output rings.
	TXThreads int
	// LoadBalancer selects the replica-selection policy.
	LoadBalancer LBPolicy
	// DisableLookupCache turns OFF descriptor-carried flow entries (§4.2
	// "Caching flow table lookups"); used by the ablation benchmark.
	DisableLookupCache bool
	// SpinLimit is how many empty polls a thread performs before yielding.
	SpinLimit int
	// Control is the host's typed southbound endpoint (the control
	// package API). The Flow Controller thread pipelines each burst of
	// flow-table misses through Control.ResolveBatch off the critical
	// path (§4.1), and the manager forwards validated cross-layer
	// messages upstream via Control.SendNFMessage after applying them
	// locally (§3.4). Both the in-process *controller.Controller and the
	// wire *control.Client satisfy it. When nil, miss packets are
	// dropped and messages only take local effect.
	Control control.Southbound
	// ResolveTimeout bounds each southbound resolution batch; zero
	// means 30 s.
	ResolveTimeout time.Duration
	// FlowIdleTimeout / FlowHardTimeout are the table-wide default rule
	// timeouts applied to exact-match rules installed with zero
	// timeouts (see flowtable.SetDefaultTimeouts). Zero keeps the
	// pre-lifecycle behaviour: rules never expire.
	FlowIdleTimeout time.Duration
	FlowHardTimeout time.Duration
	// FlowSweepInterval is the background sweeper's tick. Zero means
	// flowtable.DefaultSweepInterval; the sweeper only runs when at
	// least one of the defaults above is set (per-rule timeouts from
	// the controller still expire lazily on lookup without it).
	FlowSweepInterval time.Duration
}

func (c *Config) fillDefaults() {
	if c.PoolSize == 0 {
		c.PoolSize = 4096
	}
	if c.BufSize == 0 {
		c.BufSize = 2048
	}
	if c.RingSize == 0 {
		c.RingSize = 1024
	}
	if c.TXThreads == 0 {
		c.TXThreads = 2
	}
	if c.SpinLimit == 0 {
		c.SpinLimit = 256
	}
	if c.ResolveTimeout == 0 {
		c.ResolveTimeout = 30 * time.Second
	}
}

// HostStats is a snapshot of host counters.
type HostStats struct {
	RxPackets uint64
	TxPackets uint64
	// Drops counts admitted packets discarded by policy or overload of
	// the manager's own rings (drop rules/verbs, missing services,
	// miss-path overflow). NF input-queue overflows are NOT included —
	// they are capacity pressure, not policy, and live in Overflows so
	// the autoscale layer (and operators) can tell the two apart.
	// Refused Injects are not included either: a refused frame was
	// never admitted (never in RxPackets), so it is the injector's loss
	// to account — the cluster fabric counts such frames as link drops.
	// Under non-parallel dispatch every admitted packet therefore lands
	// in exactly one of TxPackets, Drops, Overflows, or TxDrops; a
	// parallel fan-out additionally counts each refused member OFFER in
	// Overflows while the packet itself continues through the join (see
	// Overflows), so parallel rules can push the sum past RxPackets.
	Drops uint64
	// Overflows counts packets (or parallel fan-out offers) refused
	// because an NF replica's input rings were full — the signal that a
	// service needs more replicas (§3.3, §5 dynamic scaling).
	Overflows uint64
	// TxDrops counts frames that reached egress but could not be
	// delivered: the out port had no sink bound, or the buffer handle
	// went stale before the bytes could be read. They are neither
	// TxPackets (nothing left the host) nor Drops (no policy or
	// overload decided their fate) — keeping them separate means
	// RxPackets = TxPackets + Drops + Overflows + TxDrops + RxDrops
	// holds exactly once the host is idle and no parallel fan-out rule
	// was involved (parallel refusals count offers, not packets — see
	// Drops).
	TxDrops uint64
	// RxDrops counts wire frames refused at the driver ingress boundary
	// (Ingest): oversize for the pool frame cap, unparseable, arriving
	// on a port with no ingress binding, or hitting a capacity refusal
	// (pool/ring/stopped). Each one also counts in RxPackets — the wire
	// delivered it, so unlike a refused Inject it is this host's loss
	// to account (see ingress.go). Inject refusals still appear in
	// neither counter.
	RxDrops uint64
	// ReleaseErrs counts pool.Release calls that failed — a release of a
	// stale or double-freed handle. Any nonzero value is a refcounting
	// bug (a use-after-free caught by the pool's generation tags), so
	// the counter exists to make such bugs visible instead of silently
	// discarding the error on the drop paths.
	ReleaseErrs  uint64
	Misses       uint64
	CtrlMessages uint64
	// MsgsRejected counts cross-layer messages that were refused:
	// structurally invalid ones from NFs (dropped before any effect)
	// plus upstream policy rejections reported synchronously by the
	// southbound backend. Policy rejections arrive after the message
	// has already taken local effect — the NF Manager applies messages
	// autonomously (§3.4 "without touching the controller"); the
	// application's verdict only gates propagation beyond this host.
	MsgsRejected uint64
	Pool         mempool.Stats
	Table        flowtable.Stats
	// Replicas is the per-replica telemetry snapshot (queue depth,
	// processed/overflow counts, EWMA service time), ordered by
	// registration.
	Replicas []ReplicaStats
	// Ports is the wire-boundary telemetry of every registered port
	// driver (RegisterPortStats), ordered by port. These are the
	// drivers' own counters — socket-level drops and reconnects that
	// happen outside the host's conservation identity.
	Ports []PortDriverStats
}

// routeSnap is the immutable routing snapshot the packet-path threads
// read lock-free. Lifecycle operations publish a new snapshot atomically;
// each manager thread records the epoch of the snapshot it last loaded so
// a remover can wait until no thread still dispatches with a stale view.
type routeSnap struct {
	epoch uint64
	svc   map[flowtable.ServiceID][]*Instance
	// inst is every instance whose out ring the TX threads must drain.
	// During a replica drain it still contains the victim (whose queued
	// output must complete) even though svc no longer offers to it.
	inst []*Instance
}

// Host is one NF host: the NF Manager plus its NF instances.
// Construct with NewHost, add NFs and rules, then Start. After Start the
// packet path is lock-free: all routing state lives in immutable snapshots
// published atomically (so replicas can be added and retired at runtime,
// §3.3/§5 dynamic scaling), and all inter-thread traffic flows through
// SPSC rings.
type Host struct {
	cfg   Config
	pool  *mempool.Pool
	table *flowtable.Table

	mu        sync.Mutex
	services  map[flowtable.ServiceID][]*Instance
	instances []*Instance
	started   bool
	// nextIdx assigns stable per-service replica indices: an index is
	// never reused after a removal, so it identifies a replica for its
	// whole life (FlowState, RemoveNF, rendezvous hashing).
	nextIdx map[flowtable.ServiceID]int
	// instSeq is the host-wide instance launch counter (stable TX-thread
	// assignment and rendezvous identity).
	instSeq uint64
	// snapEpoch numbers published routing snapshots (guarded by mu).
	snapEpoch uint64

	// snap is the atomically published routing snapshot (lock-free reads
	// on the fast path).
	snap atomic.Pointer[routeSnap]
	// snapSeen[p] is the epoch of the snapshot producer thread p last
	// loaded (slots follow the producer layout below).
	snapSeen []atomic.Uint64

	// nicIn is the simulated NIC RX queue (producers serialized by
	// injectMu; consumer: RX thread).
	nicIn    *ring.SPSCOf[Desc]
	injectMu sync.Mutex

	// fcIn carries miss descriptors to the Flow Controller thread, one
	// ring per producer thread.
	fcIn []*ring.SPSCOf[Desc]

	// ctrl carries cross-layer messages from NFs to the manager loop.
	ctrl *ring.MPSC

	// egress is the atomically published per-port sink table; the TX
	// path reads it with one atomic load (no locks, matching the rest of
	// the packet path). Bind* methods publish fresh tables copy-on-write.
	egress atomic.Pointer[egressTable]

	// ingress is the atomically published ingress-bound port set:
	// Ingest admits wire frames only on ports a driver has bound
	// (BindIngress), read with one atomic load like egress.
	ingress atomic.Pointer[ingressTable]
	// ports holds the registered per-port driver stats hooks
	// (RegisterPortStats), guarded by mu; lazily allocated.
	ports map[int]registeredPort

	// parallel-join state, indexed by buffer slot.
	parPending []atomic.Int32
	parBest    []atomic.Uint64

	// fanScratch[p] is producer thread p's reusable fan-out target list,
	// so parallel dispatch does not allocate per packet. Each slice is
	// touched only by its owning producer thread.
	fanScratch [][]*Instance

	rxCount         atomic.Uint64
	rxDropCount     atomic.Uint64
	txCount         atomic.Uint64
	txDropCount     atomic.Uint64
	dropCount       atomic.Uint64
	overflowCount   atomic.Uint64
	missCount       atomic.Uint64
	msgCount        atomic.Uint64
	msgRejected     atomic.Uint64
	releaseErrCount atomic.Uint64

	stop atomic.Bool
	wg   sync.WaitGroup
	// lifeMu serializes lifecycle operations (AddNF, ReplaceNF, RemoveNF,
	// Start, Stop, NamedHost.Launch). It keeps Stop's single-consumer ring
	// drain exclusive, and it lets user Init/Close hooks run OUTSIDE h.mu
	// so a hook may call inspection APIs (FlowState, Instances, Stats).
	// Hooks must not call lifecycle methods — that self-deadlocks on
	// lifeMu. For the same reason RemoveNF must not be called from a
	// manager thread (an NF body or the cross-layer message path): its
	// drain waits on those threads.
	lifeMu sync.Mutex
}

// NewHost builds a Host from cfg.
func NewHost(cfg Config) *Host {
	cfg.fillDefaults()
	h := &Host{
		cfg:      cfg,
		pool:     mempool.New(cfg.PoolSize, cfg.BufSize),
		table:    flowtable.New(),
		services: make(map[flowtable.ServiceID][]*Instance),
		nextIdx:  make(map[flowtable.ServiceID]int),
		nicIn:    ring.NewSPSCOf[Desc](cfg.RingSize),
		ctrl:     ring.NewMPSC(4096),
	}
	h.parPending = make([]atomic.Int32, cfg.PoolSize)
	h.parBest = make([]atomic.Uint64, cfg.PoolSize)
	h.fanScratch = make([][]*Instance, h.producerCount())
	for p := range h.fanScratch {
		h.fanScratch[p] = make([]*Instance, 0, 8)
	}
	h.snapSeen = make([]atomic.Uint64, h.producerCount())
	h.snap.Store(&routeSnap{svc: map[flowtable.ServiceID][]*Instance{}})
	if cfg.FlowIdleTimeout != 0 || cfg.FlowHardTimeout != 0 {
		h.table.SetDefaultTimeouts(cfg.FlowIdleTimeout, cfg.FlowHardTimeout)
	}
	return h
}

// sweeperEnabled reports whether Start should run the background
// eviction sweeper: any lifecycle default (or an explicit interval)
// opts the host in.
func (h *Host) sweeperEnabled() bool {
	return h.cfg.FlowIdleTimeout != 0 || h.cfg.FlowHardTimeout != 0 || h.cfg.FlowSweepInterval > 0
}

// Table exposes the host flow table (the NF Manager owns it; the SDN
// controller and cross-layer messages mutate it through this handle).
func (h *Host) Table() *flowtable.Table { return h.table }

// Pool exposes the packet pool for diagnostics and tests.
func (h *Host) Pool() *mempool.Pool { return h.pool }

// PortSink receives frames the host transmits out a NIC port: the
// per-port egress binding (a traffic sink, a measurement probe, or a
// cluster fabric link delivering the frame to a peer host's ingress).
// The sink must not retain data beyond the call — the underlying pool
// buffer is released as soon as the sink returns.
type PortSink func(port int, data []byte, d *Desc)

// egressTable is the immutable per-port sink table the TX path reads
// lock-free. sinks is indexed by port number; def catches ports with no
// specific binding.
type egressTable struct {
	sinks []PortSink
	def   PortSink
}

// sinkFor resolves the sink bound to port (nil when unbound).
//
//sdnfv:hotpath
func (e *egressTable) sinkFor(port int) PortSink {
	if e == nil {
		return nil
	}
	if port >= 0 && port < len(e.sinks) && e.sinks[port] != nil {
		return e.sinks[port]
	}
	return e.def
}

// BindPort binds sink as the egress for NIC port (replacing any previous
// binding; nil unbinds). Per-port bindings are what let one host face
// several next hops at once — e.g. port 1 to the measurement sink and
// port 2 onto a fabric link toward a peer host. The binding is published
// atomically, so it is safe while traffic flows; the packet path itself
// stays lock-free (one atomic load per transmit). Frames egressing an
// unbound port count as TxDrops.
func (h *Host) BindPort(port int, sink PortSink) {
	if port < 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	cur := h.egress.Load()
	next := &egressTable{}
	if cur != nil {
		next.def = cur.def
		next.sinks = append([]PortSink(nil), cur.sinks...)
	}
	for len(next.sinks) <= port {
		next.sinks = append(next.sinks, nil)
	}
	next.sinks[port] = sink
	h.egress.Store(next)
}

// BindDefault binds sink as the egress for every port without a specific
// BindPort binding — the single-sink convenience for hosts whose entire
// output goes one place (tests, examples, single-host tools).
func (h *Host) BindDefault(sink PortSink) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cur := h.egress.Load()
	next := &egressTable{def: sink}
	if cur != nil {
		next.sinks = append([]PortSink(nil), cur.sinks...)
	}
	h.egress.Store(next)
}

// producer thread slot layout: 0 = RX, 1..TXThreads = TX, last = Flow
// Controller.
//
//sdnfv:hotpath
func (h *Host) producerCount() int { return 2 + h.cfg.TXThreads }

//sdnfv:hotpath
func (h *Host) fcProducerSlot() int { return 1 + h.cfg.TXThreads }

// publishSnapLocked publishes a new routing snapshot built from the
// registered services/instances plus any extra instances whose out rings
// must keep draining (a retiring replica). Caller holds h.mu.
func (h *Host) publishSnapLocked(extra ...*Instance) uint64 {
	h.snapEpoch++
	s := &routeSnap{
		epoch: h.snapEpoch,
		svc:   make(map[flowtable.ServiceID][]*Instance, len(h.services)),
		inst:  append(append([]*Instance(nil), h.instances...), extra...),
	}
	for svc, insts := range h.services {
		s.svc[svc] = append([]*Instance(nil), insts...)
	}
	h.snap.Store(s)
	return s.epoch
}

// observeSnap loads the current routing snapshot and records its epoch in
// the calling producer thread's slot. Every manager loop calls it once
// per iteration, so waitSnapObserved can tell when no thread still routes
// with an older snapshot.
//
//sdnfv:hotpath
func (h *Host) observeSnap(producer int) *routeSnap {
	s := h.snap.Load()
	if h.snapSeen[producer].Load() != s.epoch {
		// Store only on change: the seen slots share cache lines across
		// threads, and an unconditional store per poll iteration would
		// ping-pong them.
		h.snapSeen[producer].Store(s.epoch)
	}
	return s
}

// waitSnapObserved blocks until every producer thread has loaded a
// snapshot at least as new as epoch. Caller holds lifeMu with the host
// started, so the threads are guaranteed to keep iterating. A thread
// stuck in a southbound resolution can delay this by up to
// Config.ResolveTimeout.
func (h *Host) waitSnapObserved(epoch uint64) {
	for i := range h.snapSeen {
		for h.snapSeen[i].Load() < epoch {
			runtime.Gosched()
		}
	}
}

// AddNF registers a replica of service svc running fn. priority breaks
// action-conflict ties among parallel NFs (higher wins). On a started
// host this is a live scale-up: the replica's Init hook runs, its rings
// and goroutine launch, per-flow state owned by it under LBFlowHash
// migrates over, and a new routing snapshot makes it eligible for
// traffic. The engine attaches a per-replica flow-state store to the NF's
// context and buffers its cross-layer messages per burst.
func (h *Host) AddNF(svc flowtable.ServiceID, fn nf.BatchFunction, priority uint16) (*Instance, error) {
	h.lifeMu.Lock()
	defer h.lifeMu.Unlock()
	return h.addReplica(svc, fn, priority)
}

// addReplica registers a replica and, when the host is running, brings it
// live. Caller holds lifeMu.
func (h *Host) addReplica(svc flowtable.ServiceID, fn nf.BatchFunction, priority uint16) (*Instance, error) {
	h.mu.Lock()
	inst, err := h.addLocked(svc, fn, priority)
	started := h.started
	h.mu.Unlock()
	if err != nil || !started {
		return inst, err
	}

	// Live scale-up. Init runs outside h.mu (hooks may inspect the host);
	// on failure the registration is rolled back and nothing launched.
	if err := nf.InitNF(inst.fn, &inst.ctx); err != nil {
		inst.ctx.DropEmits()
		h.mu.Lock()
		h.unregisterLocked(inst)
		h.publishSnapLocked()
		h.mu.Unlock()
		return nil, &NFInitError{Service: inst.Service, Instance: inst.Index, Err: err}
	}
	inst.opened = true
	inst.ctx.FlushEmits()

	h.mu.Lock()
	h.buildRingsLocked(inst)
	all := h.services[svc]
	h.mu.Unlock()

	// Under flow hashing some flows now map to the new replica; move
	// their engine-owned state over before the snapshot steers packets at
	// it, so the new owner starts from the predecessor's state. A flow
	// updated by its old owner between the copy and the snapshot flip can
	// lose that last update — full consistency would need OpenNF-style
	// packet buffering; quiesced transitions are exact.
	h.migrateFlowsTo(inst, all)

	inst.launch(h)
	h.mu.Lock()
	h.publishSnapLocked()
	h.mu.Unlock()
	return inst, nil
}

// addLocked registers a replica under h.mu.
func (h *Host) addLocked(svc flowtable.ServiceID, fn nf.BatchFunction, priority uint16) (*Instance, error) {
	if svc.IsPort() || svc == graph.Source || svc == graph.Sink {
		return nil, fmt.Errorf("dataplane: invalid service id %s", svc)
	}
	inst := &Instance{
		Service:  svc,
		Index:    h.nextIdx[svc],
		Priority: priority,
		seq:      h.instSeq,
		fn:       fn,
		readOnly: fn.ReadOnly(),
		svcTime:  newServiceTimeEWMA(),
	}
	h.nextIdx[svc]++
	h.instSeq++
	inst.txThread = int(inst.seq) % h.cfg.TXThreads
	inst.ctx = nf.Context{
		Service:  svc,
		Instance: inst.Index,
		// The flow store belongs to the replica slot, not the function:
		// Stop/Start cycles and same-implementation ReplaceNF keep it,
		// and the manager can inspect it (FlowState) for §3.4-style
		// per-flow decisions.
		Flows: nf.NewFlowState(),
		Emit: func(m nf.Message) {
			if err := h.ctrl.Push(ctrlMsg{src: svc, msg: m}); err == nil {
				h.msgCount.Add(1)
			}
		},
	}
	inst.ctx.BufferEmits(true)
	h.services[svc] = append(h.services[svc], inst)
	h.instances = append(h.instances, inst)
	return inst, nil
}

// unregisterLocked removes inst from the service and instance lists.
// Caller holds h.mu.
func (h *Host) unregisterLocked(inst *Instance) {
	insts := h.services[inst.Service]
	for i, in := range insts {
		if in == inst {
			h.services[inst.Service] = append(append([]*Instance(nil), insts[:i]...), insts[i+1:]...)
			break
		}
	}
	if len(h.services[inst.Service]) == 0 {
		delete(h.services, inst.Service)
	}
	for i, in := range h.instances {
		if in == inst {
			h.instances = append(append([]*Instance(nil), h.instances[:i]...), h.instances[i+1:]...)
			break
		}
	}
}

// buildRingsLocked allocates an instance's descriptor rings. Caller holds
// h.mu.
func (h *Host) buildRingsLocked(inst *Instance) {
	producers := h.producerCount()
	inst.in = make([]*ring.SPSCOf[Desc], producers)
	for p := range inst.in {
		inst.in[p] = ring.NewSPSCOf[Desc](h.cfg.RingSize)
	}
	inst.out = ring.NewSPSCOf[Desc](h.cfg.RingSize)
}

// findReplica returns the replica of svc with the given stable index, or
// nil. Caller holds h.mu.
func (h *Host) findReplica(svc flowtable.ServiceID, index int) *Instance {
	for _, in := range h.services[svc] {
		if in.Index == index {
			return in
		}
	}
	return nil
}

// RemoveNF retires replica index of service svc with a flow-state-safe
// drain (§3.3/§5 scale-down). On a running host it: (1) publishes a
// routing snapshot that stops offering the replica packets and waits
// until every manager thread has observed it; (2) lets the replica's NF
// goroutine run its input rings dry and exit, so every accepted packet is
// fully processed; (3) waits for the TX thread to drain the replica's out
// ring, then retires it from the TX scan; (4) hands the replica's
// engine-owned per-flow state off to the remaining replicas (the flow's
// new owner under LBFlowHash, a hash-spread otherwise) and runs the NF's
// Close hook. Removing the last replica of a service is allowed; packets
// forwarded to the service then drop.
//
// Handoff semantics under live traffic: packets arriving after step (1)
// already reach the flow's new owner, so by step (4) both replicas may
// hold state for the same flow. The victim's entry (the flow's entire
// history up to the routing flip) overwrites the new owner's (only the
// drain window) — the drain-window updates are lost. Exactly preserving
// both would need OpenNF-style packet buffering; transitions quiesced by
// the caller are exact.
//
// Must not be called from a manager thread or an NF hook (see lifeMu).
func (h *Host) RemoveNF(svc flowtable.ServiceID, index int) error {
	h.lifeMu.Lock()
	defer h.lifeMu.Unlock()
	h.mu.Lock()
	victim := h.findReplica(svc, index)
	if victim == nil {
		h.mu.Unlock()
		return fmt.Errorf("dataplane: no replica %d of service %s", index, svc)
	}
	h.unregisterLocked(victim)
	remaining := append([]*Instance(nil), h.services[svc]...)
	started := h.started
	var epoch uint64
	if started {
		// Stop offering: svc no longer lists the victim, but its out ring
		// stays on the TX threads' scan list until drained.
		epoch = h.publishSnapLocked(victim)
	}
	h.mu.Unlock()

	if started {
		h.waitSnapObserved(epoch)
		// No producer offers to the victim anymore; ask its goroutine to
		// run the input rings dry and exit. The drain flag (checked only
		// when a full pass over the rings found nothing) guarantees the
		// final burst is fully processed and enqueued before exit.
		victim.drain.Store(true)
		<-victim.done
		// Let the TX thread finish the queued output, then retire the out
		// ring from the scan.
		for victim.out.Len() > 0 {
			runtime.Gosched()
		}
		h.mu.Lock()
		epoch = h.publishSnapLocked()
		h.mu.Unlock()
		h.waitSnapObserved(epoch)
	}

	h.handoffFlows(victim, remaining)
	h.closeInst(victim)
	return nil
}

// handoffFlows merges a retired replica's engine-owned per-flow state
// into the remaining replicas: each flow lands on the replica that now
// owns it (rendezvous owner under LBFlowHash, hash-spread otherwise).
// On collision the victim's value wins: it holds the flow's history up
// to the routing flip, while the destination has at most the updates of
// the drain window, which are sacrificed (see RemoveNF).
func (h *Host) handoffFlows(victim *Instance, remaining []*Instance) {
	if len(remaining) == 0 {
		return
	}
	victim.ctx.Flows.Range(func(k packet.FlowKey, v any) bool {
		h.flowOwner(remaining, k).ctx.Flows.Set(k, v)
		return true
	})
	victim.ctx.Flows.Clear()
}

// migrateFlowsTo moves engine-owned per-flow state whose owner under the
// new replica set is the freshly added replica. Only meaningful under
// LBFlowHash, where ownership is deterministic.
func (h *Host) migrateFlowsTo(newInst *Instance, all []*Instance) {
	if h.cfg.LoadBalancer != LBFlowHash || len(all) < 2 {
		return
	}
	for _, r := range all {
		if r == newInst {
			continue
		}
		var keys []packet.FlowKey
		var vals []any
		r.ctx.Flows.Range(func(k packet.FlowKey, v any) bool {
			if ownerOf(all, k) == newInst {
				keys = append(keys, k)
				vals = append(vals, v)
			}
			return true
		})
		for i, k := range keys {
			newInst.ctx.Flows.Set(k, vals[i])
			r.ctx.Flows.Delete(k)
		}
	}
}

// flowOwner returns the replica owning flow k for state placement: the
// rendezvous owner under LBFlowHash (matching pick), a stable hash spread
// otherwise (no policy preserves affinity there; the state just needs a
// deterministic home).
func (h *Host) flowOwner(insts []*Instance, k packet.FlowKey) *Instance {
	if h.cfg.LoadBalancer == LBFlowHash {
		return ownerOf(insts, k)
	}
	return insts[k.Hash()%uint64(len(insts))]
}

// ReplaceNF swaps the function backing replica index of service svc for
// fn, closing the outgoing NF if it is still open (normally Host.Stop
// has closed it already — Close runs once per successful Init). The
// replica's flow-state store is kept when the replacement is the same NF
// implementation, so the §3.4 per-flow decisions accumulated by the old
// NF survive an upgrade; replacing with a different implementation
// clears it. Only valid while the host is stopped.
func (h *Host) ReplaceNF(svc flowtable.ServiceID, index int, fn nf.BatchFunction) error {
	h.lifeMu.Lock()
	defer h.lifeMu.Unlock()
	h.mu.Lock()
	if h.started {
		h.mu.Unlock()
		return errors.New("dataplane: host already started")
	}
	inst := h.findReplica(svc, index)
	if inst == nil {
		h.mu.Unlock()
		return fmt.Errorf("dataplane: no replica %d of service %s", index, svc)
	}
	h.mu.Unlock()
	h.replace(inst, fn)
	return nil
}

// closeInst runs an instance's Close hook if (and only if) a matching
// successful Init ran: Close fires at most once per Init. Caller holds
// lifeMu (which guards opened and keeps the hook outside h.mu).
func (h *Host) closeInst(inst *Instance) {
	if !inst.opened {
		return
	}
	inst.opened = false
	_ = nf.CloseNF(inst.fn)
}

// replace swaps an instance's function; caller holds lifeMu and the host
// is stopped. The outgoing NF is closed if it is still open (an NF
// replaced between Stop and Start has normally been closed by Stop
// already). When the replacement is a different NF implementation, the
// replica's flow store is cleared — the survive-replacement guarantee is
// for upgrades of the same NF, and handing one NF's state values to
// another would only poison it.
func (h *Host) replace(inst *Instance, fn nf.BatchFunction) {
	h.closeInst(inst)
	if !sameNFImpl(inst.fn, fn) {
		inst.ctx.Flows.Clear()
	}
	h.mu.Lock()
	inst.fn = fn
	inst.readOnly = fn.ReadOnly()
	h.mu.Unlock()
}

// sameNFImpl reports whether two functions are the same NF
// implementation for the state-survival check: same concrete type
// (looking through the PerPacket shim, whose wrapper type would conflate
// all v1 NFs) and same name (adapter types like FuncAdapter/BatchAdapter
// would otherwise conflate unrelated NFs built from them).
func sameNFImpl(a, b nf.BatchFunction) bool {
	return nfImplType(a) == nfImplType(b) && a.Name() == b.Name()
}

// nfImplType identifies the implementation type behind fn, unwrapping
// the PerPacket shim.
func nfImplType(fn nf.BatchFunction) reflect.Type {
	if u, ok := fn.(interface{ Unwrap() nf.Function }); ok {
		return reflect.TypeOf(u.Unwrap())
	}
	return reflect.TypeOf(fn)
}

// FlowState returns the engine-owned per-flow store of replica index of
// service svc (nil when the replica does not exist). The manager and
// control layers use it to inspect NF flow state.
func (h *Host) FlowState(svc flowtable.ServiceID, index int) *nf.FlowState {
	h.mu.Lock()
	defer h.mu.Unlock()
	inst := h.findReplica(svc, index)
	if inst == nil {
		return nil
	}
	return inst.ctx.Flows
}

// NamedHost adapts a Host to the orchestrator's HostHandle: Launch makes
// svc available backed by fn. While the host is stopped it adds a first
// replica or replaces replica 0 (which runs the outgoing NF's Close hook
// and keeps its flow state), matching the paper's VM (re)boot model. On a
// started host it is a live scale-up: a new replica joins the service's
// load-balanced set (§3.3, §5.2). The scale-down path is RemoveNF,
// reached through orchestrator.Retire.
type NamedHost struct {
	Name string
	*Host
}

// HostName implements orchestrator.HostHandle.
func (n NamedHost) HostName() string { return n.Name }

// Launch implements orchestrator.HostHandle. The replace-or-add decision
// and the mutation happen in one critical section, so two concurrent
// launches of the same service cannot both add a replica.
func (n NamedHost) Launch(ctx context.Context, svc flowtable.ServiceID, fn nf.BatchFunction) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	h := n.Host
	h.lifeMu.Lock()
	defer h.lifeMu.Unlock()
	h.mu.Lock()
	insts := h.services[svc]
	started := h.started
	h.mu.Unlock()
	if len(insts) > 0 && !started {
		h.replace(insts[0], fn)
		return nil
	}
	_, err := h.addReplica(svc, fn, 0)
	return err
}

type ctrlMsg struct {
	src flowtable.ServiceID
	msg nf.Message
}

// InstallGraph compiles g into rules (ingress inPort, egress outPort) and
// installs them atomically through the batched writer API: each affected
// table shard publishes one new snapshot for the whole graph.
func (h *Host) InstallGraph(g *graph.Graph, inPort, outPort int) error {
	rules, err := g.Rules(inPort, outPort)
	if err != nil {
		return err
	}
	_, err = h.table.AddBatch(rules)
	return err
}

// NFInitError reports an NF whose Init lifecycle hook failed, aborting
// Host.Start.
type NFInitError struct {
	Service  flowtable.ServiceID
	Instance int
	Err      error
}

// Error implements error.
func (e *NFInitError) Error() string {
	return fmt.Sprintf("dataplane: NF init failed for %s replica %d: %v", e.Service, e.Instance, e.Err)
}

// Unwrap exposes the NF's own error for errors.Is/As.
func (e *NFInitError) Unwrap() error { return e.Err }

// Start runs every NF's Init hook, then launches the manager threads and
// all NF instances. An Init error aborts the start: already-initialized
// NFs are closed again, no thread is launched, and the typed *NFInitError
// identifies the failing replica. The host stays stopped and can be
// started again (e.g. after ReplaceNF).
func (h *Host) Start() error {
	h.lifeMu.Lock()
	defer h.lifeMu.Unlock()
	h.mu.Lock()
	if h.started {
		h.mu.Unlock()
		return errors.New("dataplane: already started")
	}
	insts := append([]*Instance(nil), h.instances...)
	h.mu.Unlock()

	// Run the Init hooks outside h.mu, so a hook may use inspection APIs
	// (FlowState, Instances, Stats); lifeMu keeps the instance set and
	// lifecycle state stable meanwhile. Announcements the hooks send stay
	// buffered until every Init has succeeded, so an aborted start leaves
	// no half-started announcements behind (and messages queued by a
	// previous run are untouched).
	for i, inst := range insts {
		if err := nf.InitNF(inst.fn, &inst.ctx); err != nil {
			for _, prev := range insts[:i] {
				prev.ctx.DropEmits()
				h.closeInst(prev)
			}
			inst.ctx.DropEmits()
			return &NFInitError{Service: inst.Service, Instance: inst.Index, Err: err}
		}
		inst.opened = true
	}
	for _, inst := range insts {
		// Deliver the announcement messages the hooks sent (§3.4, e.g. a
		// scrubber's RequestMe); they are drained once TX thread 0 runs.
		inst.ctx.FlushEmits()
	}

	h.mu.Lock()
	defer h.mu.Unlock()
	h.started = true
	// Unlatch the stop flags a previous Stop left set (they gate Inject
	// while the host is down).
	h.stop.Store(false)
	for _, inst := range h.instances {
		inst.stop.Store(false)
		inst.drain.Store(false)
	}

	for _, inst := range h.instances {
		h.buildRingsLocked(inst)
	}
	producers := h.producerCount()
	h.fcIn = make([]*ring.SPSCOf[Desc], producers)
	for p := range h.fcIn {
		h.fcIn[p] = ring.NewSPSCOf[Desc](h.cfg.RingSize)
	}
	// Publish the routing snapshot for lock-free fast-path reads.
	h.publishSnapLocked()

	h.wg.Add(1)
	go func() { defer h.wg.Done(); h.rxLoop() }()
	for t := 0; t < h.cfg.TXThreads; t++ {
		t := t
		h.wg.Add(1)
		go func() { defer h.wg.Done(); h.txLoop(t) }()
	}
	h.wg.Add(1)
	go func() { defer h.wg.Done(); h.fcLoop() }()
	for _, inst := range h.instances {
		inst.launch(h)
	}
	if h.sweeperEnabled() {
		h.table.StartSweeper(flowtable.LifecycleConfig{
			SweepInterval: h.cfg.FlowSweepInterval,
			OnEvict:       h.onFlowEvicted,
		})
	}
	return nil
}

// Stop halts all threads, waits for them to exit, releases every
// descriptor still queued in a ring (so no pool buffer leaks across a
// stop), and runs each NF's Close hook. The host can be started again
// afterwards; per-replica flow state survives. Safe to call
// concurrently: the drain consumes the rings single-threaded, so only
// one Stop runs at a time and late callers return once it is done.
func (h *Host) Stop() {
	h.lifeMu.Lock()
	defer h.lifeMu.Unlock()
	h.mu.Lock()
	if !h.started {
		h.mu.Unlock()
		return
	}
	snap := append([]*Instance(nil), h.instances...)
	h.mu.Unlock()
	// The sweeper goes first: once stopped, no eviction callback can
	// race the ring drain below or fire against a half-stopped host.
	h.table.StopSweeper()
	h.stop.Store(true)
	for _, inst := range snap {
		inst.stop.Store(true)
	}
	h.wg.Wait()
	h.drainRings(snap)
	h.mu.Lock()
	h.started = false
	// h.stop (and the per-instance flags) stay latched until the next
	// Start: an Inject arriving after the drain must keep being refused,
	// or its descriptor would sit in nicIn defeating the no-leak
	// guarantee above.
	h.mu.Unlock()
	// Close hooks run outside h.mu (lifeMu still held), so an NF's Close
	// may use inspection APIs.
	for _, inst := range snap {
		h.closeInst(inst)
	}
}

// drainRings releases descriptors left in flight when the threads
// stopped: packets in the NIC/FC rings, in instance input rings, and in
// instance out rings. Each queued descriptor holds exactly one pool
// reference, so one release each is exact — the instance stop path has
// already released (only) the part of its burst the out ring never
// accepted. Runs with all producer/consumer threads stopped.
func (h *Host) drainRings(insts []*Instance) {
	drain := func(r *ring.SPSCOf[Desc]) {
		for {
			d, ok := r.Dequeue()
			if !ok {
				return
			}
			h.releaseDesc(&d)
		}
	}
	// injectMu pairs with Inject's stop check: any Inject that slipped in
	// before the stop flag enqueued under the lock we now hold, so its
	// descriptor is visible to this drain.
	h.injectMu.Lock()
	drain(h.nicIn)
	h.injectMu.Unlock()
	for _, r := range h.fcIn {
		drain(r)
	}
	for _, inst := range insts {
		for _, r := range inst.in {
			drain(r)
		}
		drain(inst.out)
	}
}

// Stats returns a counter snapshot, including per-replica telemetry.
func (h *Host) Stats() HostStats {
	h.mu.Lock()
	replicas := make([]ReplicaStats, len(h.instances))
	for i, inst := range h.instances {
		replicas[i] = inst.Stats()
	}
	h.mu.Unlock()
	return HostStats{
		RxPackets:    h.rxCount.Load(),
		RxDrops:      h.rxDropCount.Load(),
		TxPackets:    h.txCount.Load(),
		TxDrops:      h.txDropCount.Load(),
		ReleaseErrs:  h.releaseErrCount.Load(),
		Drops:        h.dropCount.Load(),
		Overflows:    h.overflowCount.Load(),
		Misses:       h.missCount.Load(),
		CtrlMessages: h.msgCount.Load(),
		MsgsRejected: h.msgRejected.Load(),
		Pool:         h.pool.Stats(),
		Table:        h.table.Stats(),
		Replicas:     replicas,
		Ports:        h.portDriverStats(),
	}
}

// ReplicaStats returns the telemetry snapshot of every replica of svc —
// the per-service load signal the autoscale policy loop samples.
func (h *Host) ReplicaStats(svc flowtable.ServiceID) []ReplicaStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	insts := h.services[svc]
	out := make([]ReplicaStats, len(insts))
	for i, inst := range insts {
		out[i] = inst.Stats()
	}
	return out
}

// Instances returns the registered instances (tests/diagnostics).
func (h *Host) Instances() []*Instance {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]*Instance(nil), h.instances...)
}

// pause backs off an idle polling loop: spin, then yield, then sleep.
//
//sdnfv:hotpath
func (h *Host) pause(idle *int) {
	*idle++
	switch {
	case *idle < h.cfg.SpinLimit:
		// busy spin
	case *idle < h.cfg.SpinLimit*16:
		runtime.Gosched()
	default:
		time.Sleep(5 * time.Microsecond)
	}
}

// Inject delivers a raw frame into the host NIC on port (the traffic
// generator's DMA, or a fabric link's far end). The frame is copied into
// a pool buffer. A refusal (pool exhausted, NIC ring full, host
// stopped) is reported to the caller and NOT counted in the host's
// Drops: the frame was never admitted, so accounting it is the
// injector's job — like a NIC with no free descriptors back-pressuring
// DMA. Safe for concurrent use.
func (h *Host) Inject(port int, frame []byte) error {
	hd, err := h.pool.Alloc()
	if err != nil {
		return err
	}
	buf, _ := h.pool.Buf(hd)
	if len(frame) > len(buf) {
		h.release(hd)
		return fmt.Errorf("dataplane: frame %dB exceeds buffer %dB", len(frame), len(buf))
	}
	copy(buf, frame)
	_ = h.pool.SetLength(hd, len(frame))
	d := Desc{
		H:            hd,
		Scope:        flowtable.Port(port),
		ArrivalNanos: time.Now().UnixNano(),
	}
	if v, err := packet.Parse(buf[:len(frame)]); err == nil {
		d.View = v
		d.Key = v.FlowKey()
	}
	h.injectMu.Lock()
	if h.stop.Load() {
		// The host is stopping or stopped (the flag stays latched until
		// the next Start): Stop's ring drain (which also takes injectMu)
		// must observe every enqueued descriptor, so refuse frames
		// instead of leaking them past the drain.
		h.injectMu.Unlock()
		h.release(hd)
		return errors.New("dataplane: host stopped")
	}
	ok := h.nicIn.Enqueue(d)
	h.injectMu.Unlock()
	if !ok {
		h.release(hd)
		return errors.New("dataplane: NIC ring full")
	}
	return nil
}

// release returns a buffer reference, counting failures: a failed
// Release means the handle was stale (generation mismatch) — a
// refcounting bug that must surface in HostStats.ReleaseErrs, not vanish.
//
//sdnfv:hotpath
func (h *Host) release(hd mempool.Handle) {
	if err := h.pool.Release(hd); err != nil {
		h.releaseErrCount.Add(1)
	}
}

// releaseDesc returns d's buffer reference.
//
//sdnfv:hotpath
func (h *Host) releaseDesc(d *Desc) {
	h.release(d.H)
}

// rxBatch is the burst size of the RX and Flow Controller loops.
const rxBatch = 64

// burstScratch is a manager thread's per-thread burst storage, allocated
// once at thread launch so the poll loops themselves stay
// allocation-free. The RX thread uses the lookup arrays; the Flow
// Controller additionally uses the southbound request/result arrays.
type burstScratch struct {
	batch   []Desc
	scopes  []flowtable.ServiceID
	keys    []packet.FlowKey
	entries []*flowtable.Entry
	reqs    []control.ResolveRequest
	results []control.ResolveResult
	slot    []int // descriptor -> unique request index
}

func newBurstScratch() *burstScratch {
	return &burstScratch{
		batch:   make([]Desc, rxBatch),
		scopes:  make([]flowtable.ServiceID, rxBatch),
		keys:    make([]packet.FlowKey, rxBatch),
		entries: make([]*flowtable.Entry, rxBatch),
		reqs:    make([]control.ResolveRequest, rxBatch),
		results: make([]control.ResolveResult, rxBatch),
		slot:    make([]int, rxBatch),
	}
}

// rxLoop is the RX thread: drain the NIC ring in bursts, resolve the
// whole burst against the flow table in one LookupBatch pass (one
// snapshot load amortized across the burst, §4.1), then dispatch.
//
//sdnfv:hotpath
func (h *Host) rxLoop() {
	const producer = 0
	var rr uint64
	idle := 0
	//sdnfv:allow(call) scratch construction runs once at thread launch, before the poll loop
	s := newBurstScratch()
	for !h.stop.Load() {
		snap := h.observeSnap(producer)
		n := h.nicIn.DequeueBatch(s.batch)
		if n == 0 {
			h.pause(&idle)
			continue
		}
		idle = 0
		h.rxCount.Add(uint64(n))
		for i := 0; i < n; i++ {
			s.scopes[i] = s.batch[i].Scope
			s.keys[i] = s.batch[i].Key
		}
		h.table.LookupBatch(s.scopes[:n], s.keys[:n], s.entries[:n])
		for i := 0; i < n; i++ {
			d := s.batch[i]
			if s.entries[i] == nil {
				// Flow-table miss: punt to the Flow Controller (§4.1).
				h.missCount.Add(1)
				if !h.fcIn[producer].Enqueue(d) {
					h.dropPacket(&d)
				}
				continue
			}
			h.dispatchEntry(snap, &d, s.entries[i], producer, &rr)
		}
	}
}

// dispatchEntry applies e to d: parallel fan-out or the default action.
//
//sdnfv:hotpath
func (h *Host) dispatchEntry(snap *routeSnap, d *Desc, e *flowtable.Entry, producer int, rr *uint64) {
	if e.Parallel && len(e.Actions) > 1 {
		h.fanOut(snap, d, e, producer, rr)
		return
	}
	def, ok := e.Default()
	if !ok {
		h.dropPacket(d)
		return
	}
	h.applyAction(snap, d, def, producer, rr)
}

// fanOut dispatches one shared packet to every NF in a parallel action
// list (§4.2 "Parallel Packet Processing"). Parallel rules always target
// replica 0 of each member service: replication inside a parallel segment
// would need per-member balancing state that the paper does not define.
//
//sdnfv:hotpath
func (h *Host) fanOut(snap *routeSnap, d *Desc, e *flowtable.Entry, producer int, rr *uint64) {
	targets := h.fanScratch[producer][:0]
	for _, a := range e.Actions {
		if a.Type != flowtable.ActionForward {
			continue
		}
		if insts := snap.svc[a.Dest]; len(insts) > 0 {
			//sdnfv:allow(alloc) amortized: the scratch grows to the peak fan-out width once, then is reused
			targets = append(targets, insts[0])
		}
	}
	h.fanScratch[producer] = targets
	if len(targets) == 0 {
		h.dropPacket(d)
		return
	}
	if len(targets) > 1 {
		// The descriptor already holds one reference; add the rest of the
		// parallelization factor (§4.2) BEFORE any copy is offered. A
		// failed retain (stale handle) means the parallel copies would
		// each release a reference the pool never granted, corrupting the
		// refcount — drop the packet instead.
		if err := h.pool.Retain(d.H, len(targets)-1); err != nil {
			h.dropPacket(d)
			return
		}
	}
	idx := d.H.Index()
	h.parPending[idx].Store(int32(len(targets)))
	h.parBest[idx].Store(0)
	for _, inst := range targets {
		cp := *d
		cp.parallel = true
		cp.Entry = nil
		if !h.cfg.DisableLookupCache {
			if me, err := h.table.Lookup(inst.Service, d.Key); err == nil {
				cp.Entry = me
			}
		}
		if !inst.offer(producer, cp) {
			// Member queue full: overflow pressure on that replica.
			// Account the member as done with the lowest-priority outcome
			// so the join still completes.
			h.overflowCount.Add(1)
			h.parJoin(snap, &cp, packAction(flowtable.Forward(inst.Service), 0), producer, rr)
		}
	}
}

// applyAction delivers d per a (non-parallel path).
//
//sdnfv:hotpath
func (h *Host) applyAction(snap *routeSnap, d *Desc, a flowtable.Action, producer int, rr *uint64) {
	switch a.Type {
	case flowtable.ActionDrop:
		h.dropPacket(d)
	case flowtable.ActionOut:
		h.transmit(d, a.Dest.PortNum())
	case flowtable.ActionForward:
		insts := snap.svc[a.Dest]
		if len(insts) == 0 {
			h.dropPacket(d)
			return
		}
		inst := h.pick(insts, d.Key, rr)
		nd := *d
		nd.parallel = false
		nd.Verb = nf.VerbDefault
		nd.Entry = nil
		if !h.cfg.DisableLookupCache {
			// Look ahead: resolve the entry governing the packet at its
			// next scope and carry it in the descriptor so the TX thread
			// skips the hash lookup (§4.2 "Caching flow table lookups").
			if ne, err := h.table.Lookup(a.Dest, d.Key); err == nil {
				nd.Entry = ne
			}
		}
		if !inst.offer(producer, nd) {
			// NF queue overflow: replica capacity pressure, not policy —
			// counted separately so the autoscale layer sees it (§3.3).
			h.overflowDrop(d)
		}
	}
}

// transmit hands the packet to the egress sink bound to port and
// releases it. A frame only counts in TxPackets when a sink actually
// received its bytes; an unbound port or a stale buffer handle counts in
// TxDrops instead, so packets never vanish from the accounting while the
// stats claim they egressed.
//
//sdnfv:hotpath
func (h *Host) transmit(d *Desc, port int) {
	sink := h.egress.Load().sinkFor(port)
	if sink == nil {
		h.txDropCount.Add(1)
		h.releaseDesc(d)
		return
	}
	data, err := h.pool.Data(d.H)
	if err != nil {
		h.txDropCount.Add(1)
		h.releaseDesc(d)
		return
	}
	h.txCount.Add(1)
	//sdnfv:allow(dyncall) PortSink is the egress indirection point; one indirect call per transmitted frame
	sink(port, data, d)
	h.releaseDesc(d)
}

// dropPacket discards d (policy or manager-ring overload drop).
//
//sdnfv:hotpath
func (h *Host) dropPacket(d *Desc) {
	h.dropCount.Add(1)
	h.releaseDesc(d)
}

// overflowDrop discards d because an NF replica's input rings were full.
//
//sdnfv:hotpath
func (h *Host) overflowDrop(d *Desc) {
	h.overflowCount.Add(1)
	h.releaseDesc(d)
}

// txLoop is TX thread t: drain the out rings of assigned instances in
// bursts, resolve each NF's decision, and act on it. Thread 0
// additionally applies queued cross-layer messages so flow-table rewrites
// are serialized.
//
//sdnfv:hotpath
func (h *Host) txLoop(t int) {
	producer := 1 + t
	var rr uint64
	idle := 0
	//sdnfv:allow(alloc) per-thread burst scratch, allocated once before the poll loop
	batch := make([]Desc, rxBatch)
	for !h.stop.Load() {
		snap := h.observeSnap(producer)
		progressed := false
		for _, inst := range snap.inst {
			if inst.txThread != t {
				continue
			}
			for {
				n := inst.out.DequeueBatch(batch)
				if n == 0 {
					break
				}
				progressed = true
				for i := 0; i < n; i++ {
					h.completeNF(snap, &batch[i], inst, producer, &rr)
				}
			}
		}
		if t == 0 {
			//sdnfv:allow(call) cross-layer messages are control-plane work, cold by design (§3.4)
			if h.pumpControl() {
				progressed = true
			}
		}
		if !progressed {
			h.pause(&idle)
		} else {
			idle = 0
		}
	}
}

// pumpControl drains and applies every queued cross-layer message.
// Control-plane work: it takes the MPSC ring's mutex and rewrites the
// flow table, so it lives outside the hotpath-annotated TX loop body and
// runs only on TX thread 0 to keep table rewrites serialized.
func (h *Host) pumpControl() bool {
	progressed := false
	for {
		m, ok := h.ctrl.Pop()
		if !ok {
			return progressed
		}
		progressed = true
		cm := m.(ctrlMsg)
		h.handleNFMessage(cm.src, cm.msg)
	}
}

// resolveEntry returns the flow-table entry at d's current scope, using
// the descriptor cache when enabled. A nil entry with ok=true means the
// flow has no rule (a miss); ok=false means the packet bytes could not be
// parsed back into a flow key, so no lookup can be trusted — the caller
// must drop rather than dispatch the malformed frame by a stale key.
//
//sdnfv:hotpath
func (h *Host) resolveEntry(d *Desc) (e *flowtable.Entry, ok bool) {
	if !h.cfg.DisableLookupCache && d.Entry != nil {
		if h.table.EntryLive(d.Entry) {
			return d.Entry, true
		}
		// The cached entry's lease expired while the packet was in
		// flight. Its key is still trusted (set at RX), so fall through
		// to a fresh table lookup: a concurrent reinstall may have
		// produced a live replacement, and a true miss returns nil.
		d.Entry = nil
	}
	if h.cfg.DisableLookupCache {
		// Without descriptor caching the TX thread pays the full cost:
		// re-extract the 5-tuple from the packet, then hash-lookup.
		data, err := h.pool.Data(d.H)
		if err != nil {
			return nil, false
		}
		v, err := packet.Parse(data)
		if err != nil {
			return nil, false
		}
		d.Key = v.FlowKey()
	}
	e, err := h.table.Lookup(d.Scope, d.Key)
	if err != nil {
		return nil, true
	}
	return e, true
}

// onFlowEvicted is the sweeper's eviction callback (cold path, sweeper
// goroutine). It releases the engine-owned per-flow NF state of every
// evicted exact-match flow — in per-flow mode each service hop holds a
// rule AT its own scope, so the eviction at scope S names exactly the
// replicas whose state is dead — and forwards the batch upstream as one
// typed flow-removed notification so the controller session and the
// application tier drop their view of the flows.
func (h *Host) onFlowEvicted(evs []flowtable.Evicted) {
	h.mu.Lock()
	for _, ev := range evs {
		if ev.Scope.IsPort() {
			continue // port scopes carry no NF state
		}
		key, ok := ev.Match.ExactKey()
		if !ok {
			continue // wildcard rules are not per-flow state owners
		}
		for _, inst := range h.services[ev.Scope] {
			inst.ctx.Flows.Delete(key)
		}
	}
	h.mu.Unlock()
	if h.cfg.Control == nil {
		return
	}
	removals := make([]control.FlowRemoved, len(evs))
	for i, ev := range evs {
		reason := control.RemovedIdleTimeout
		if ev.Reason == flowtable.EvictHard {
			reason = control.RemovedHardTimeout
		}
		removals[i] = control.FlowRemoved{
			Scope:  ev.Scope,
			Match:  ev.Match,
			RuleID: ev.ID,
			Reason: reason,
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), h.cfg.ResolveTimeout)
	defer cancel()
	_ = h.cfg.Control.NotifyFlowRemoved(ctx, removals)
}

// dropUnparsed discards a descriptor whose packet bytes no longer parse.
// A parallel member must still vote in its join — it votes Drop — or the
// group's pending count would never reach zero.
//
//sdnfv:hotpath
func (h *Host) dropUnparsed(snap *routeSnap, d *Desc, inst *Instance, producer int, rr *uint64) {
	if d.parallel {
		h.parJoin(snap, d, packAction(flowtable.Drop(), inst.Priority), producer, rr)
		return
	}
	h.dropPacket(d)
}

// completeNF handles a descriptor returned by an NF: resolve its verb to a
// concrete action, then either join a parallel group or apply the action.
//
//sdnfv:hotpath
func (h *Host) completeNF(snap *routeSnap, d *Desc, inst *Instance, producer int, rr *uint64) {
	var act flowtable.Action
	switch d.Verb {
	case nf.VerbDiscard:
		act = flowtable.Drop()
	case nf.VerbOut:
		act = flowtable.Action{Type: flowtable.ActionOut, Dest: d.Dest}
	case nf.VerbSendTo:
		e, ok := h.resolveEntry(d)
		if !ok {
			h.dropUnparsed(snap, d, inst, producer, rr)
			return
		}
		req := flowtable.Forward(d.Dest)
		switch {
		case d.parallel || (e != nil && e.Allows(req)):
			act = req
		case e != nil:
			// Disallowed next hop: fall back to the default (§3.4 — only
			// listed next hops are permitted).
			if def, ok := e.Default(); ok {
				act = def
			} else {
				act = flowtable.Drop()
			}
		default:
			h.punt(d, producer)
			return
		}
	default: // VerbDefault
		e, ok := h.resolveEntry(d)
		if !ok {
			h.dropUnparsed(snap, d, inst, producer, rr)
			return
		}
		if e == nil {
			h.punt(d, producer)
			return
		}
		if def, ok := e.Default(); ok {
			act = def
		} else {
			act = flowtable.Drop()
		}
	}

	if d.parallel {
		h.parJoin(snap, d, packAction(act, inst.Priority), producer, rr)
		return
	}
	d.Entry = nil
	h.applyAction(snap, d, act, producer, rr)
}

// punt sends a missing-rule descriptor to the Flow Controller.
//
//sdnfv:hotpath
func (h *Host) punt(d *Desc, producer int) {
	h.missCount.Add(1)
	if !h.fcIn[producer].Enqueue(*d) {
		h.dropPacket(d)
	}
}

// parJoin merges one parallel member's resolved action; the last member to
// arrive continues the packet with the merged action, using the calling
// thread's round-robin state so post-join forwards keep balancing across
// replicas instead of restarting from a zero counter every join.
//
//sdnfv:hotpath
func (h *Host) parJoin(snap *routeSnap, d *Desc, packed mergedAction, producer int, rr *uint64) {
	idx := d.H.Index()
	for {
		cur := h.parBest[idx].Load()
		if uint64(packed) <= cur {
			break
		}
		if h.parBest[idx].CompareAndSwap(cur, uint64(packed)) {
			break
		}
	}
	if h.parPending[idx].Add(-1) > 0 {
		// Another member still holds the packet; drop this reference.
		h.releaseDesc(d)
		return
	}
	merged := mergedAction(h.parBest[idx].Load())
	if !merged.valid() {
		h.dropPacket(d)
		return
	}
	d.parallel = false
	d.Entry = nil
	h.applyAction(snap, d, merged.action(), producer, rr)
}

// fcLoop is the Flow Controller thread (§4.1): it owns flow-table misses
// and resolves each burst through the southbound control API off the
// critical path. Per drained burst it (1) re-checks the table — a miss
// enqueued before an earlier resolution landed is stale and dispatches
// straight away; (2) dedupes the true misses by (scope, key) so a burst
// of one new flow costs one controller request; (3) pipelines the unique
// requests in one ResolveBatch call — N misses in flight at once instead
// of one blocking controller round trip each; (4) installs the returned
// rules through the batched writer API and re-routes the triggering
// packets with one LookupBatch pass.
//
// The loop body itself is hot — every punted descriptor passes through
// the stale-miss filter, and under steady state most of them dispatch
// right there without a controller round trip. The round trip, when one
// is needed, happens in resolveMisses, the cold half.
//
//sdnfv:hotpath
func (h *Host) fcLoop() {
	idle := 0
	var rr uint64
	producer := h.fcProducerSlot()
	//sdnfv:allow(call) scratch construction runs once at thread launch, before the poll loop
	s := newBurstScratch()
	for !h.stop.Load() {
		snap := h.observeSnap(producer)
		progressed := false
		for _, r := range h.fcIn {
			n := r.DequeueBatch(s.batch)
			if n == 0 {
				continue
			}
			progressed = true
			// Stale-miss filter: dispatch descriptors whose rule has
			// arrived since they were punted.
			for i := 0; i < n; i++ {
				s.scopes[i] = s.batch[i].Scope
				s.keys[i] = s.batch[i].Key
			}
			h.table.LookupBatch(s.scopes[:n], s.keys[:n], s.entries[:n])
			miss := 0
			for i := 0; i < n; i++ {
				d := s.batch[i]
				if s.entries[i] != nil {
					h.dispatchEntry(snap, &d, s.entries[i], producer, &rr)
					continue
				}
				s.batch[miss] = d
				miss++
			}
			if miss == 0 {
				continue
			}
			//sdnfv:allow(call) true misses leave the hot path here: the controller round trip is the cold half (§4.1)
			h.resolveMisses(snap, s, miss, producer, &rr)
		}
		if !progressed {
			h.pause(&idle)
		} else {
			idle = 0
		}
	}
}

// resolveMisses is the Flow Controller's cold half: it dedupes a burst
// of true misses, pipelines one southbound ResolveBatch for the unique
// flows, installs the returned rules, and re-routes the survivors. The
// first miss descriptors of s.batch are the misses; the scratch arrays
// are reused as the request/result storage. Deliberately
// NOT hotpath-annotated — it blocks on the controller for up to
// Config.ResolveTimeout and allocates per southbound exchange, which is
// exactly the work the Flow Controller thread exists to keep off the
// RX/TX threads.
func (h *Host) resolveMisses(snap *routeSnap, s *burstScratch, miss, producer int, rr *uint64) {
	if h.cfg.Control == nil {
		for i := 0; i < miss; i++ {
			h.dropPacket(&s.batch[i])
		}
		return
	}
	// Dedupe: one southbound request per distinct (scope, key).
	uniq := 0
	seen := make(map[control.ResolveRequest]int, miss)
	for i := 0; i < miss; i++ {
		req := control.ResolveRequest{Scope: s.batch[i].Scope, Key: s.batch[i].Key}
		j, ok := seen[req]
		if !ok {
			j = uniq
			seen[req] = j
			s.reqs[j] = req
			uniq++
		}
		s.slot[i] = j
	}
	ctx, cancel := context.WithTimeout(context.Background(), h.cfg.ResolveTimeout)
	h.cfg.Control.ResolveBatch(ctx, s.reqs[:uniq], s.results[:uniq])
	cancel()
	// Install every returned rule in one batched write, then re-route the
	// survivors in one table pass.
	var rules []flowtable.Rule
	for i := 0; i < uniq; i++ {
		if s.results[i].Err == nil {
			rules = append(rules, s.results[i].Rules...)
		}
	}
	if _, err := h.table.AddBatch(rules); err != nil {
		// AddBatch is all-or-nothing; a compiler mixing one bad rule into
		// a valid set must not lose the whole set (and livelock the
		// packets), so salvage rule by rule.
		for _, rule := range rules {
			_, _ = h.table.Add(rule)
		}
	}
	live := 0
	for i := 0; i < miss; i++ {
		d := s.batch[i]
		if s.results[s.slot[i]].Err != nil {
			h.dropPacket(&d)
			continue
		}
		s.batch[live] = d
		s.scopes[live] = d.Scope
		s.keys[live] = d.Key
		live++
	}
	if live == 0 {
		return
	}
	h.table.LookupBatch(s.scopes[:live], s.keys[:live], s.entries[:live])
	for i := 0; i < live; i++ {
		d := s.batch[i]
		if s.entries[i] == nil {
			// Still no rule: punt again so the controller gets another
			// chance once more rules arrive.
			h.missCount.Add(1)
			if !h.fcIn[producer].Enqueue(d) {
				h.dropPacket(&d)
			}
			continue
		}
		h.dispatchEntry(snap, &d, s.entries[i], producer, rr)
	}
}

// ApplyMessage validates a typed cross-layer message and executes it
// against the local flow table as if sent by src; exported for the
// controller/application layers, which deliver validated messages
// downward through the same path (§3.4). Unlike the NF emission path it
// does not forward the message back upstream.
func (h *Host) ApplyMessage(src flowtable.ServiceID, m control.Message) error {
	if err := m.Validate(); err != nil {
		return err
	}
	h.applyLocal(src, m)
	return nil
}

// handleNFMessage lifts one NF-emitted record into its typed variant,
// applies it locally, and forwards it upstream through the southbound
// endpoint. Invalid messages and synchronous upstream rejections are
// counted in MsgsRejected.
func (h *Host) handleNFMessage(src flowtable.ServiceID, u nf.Message) {
	m, err := control.FromUnion(u)
	if err != nil {
		h.msgRejected.Add(1)
		return
	}
	h.applyLocal(src, m)
	if h.cfg.Control != nil {
		if err := h.cfg.Control.SendNFMessage(context.Background(), src, m); err != nil {
			h.msgRejected.Add(1)
		}
	}
}

// applyLocal executes a validated cross-layer message against the local
// flow table (§3.4).
func (h *Host) applyLocal(_ flowtable.ServiceID, m control.Message) {
	switch v := m.(type) {
	case control.SkipMe:
		// NFs whose default edge leads to S bypass S: their default
		// becomes S's own default action. The forward(S) edge stays in
		// the action list so a later RequestMe can restore it.
		if e := h.lookupAnyRule(v.Service); e != nil {
			if def, ok := e.Default(); ok {
				for _, sc := range h.table.ScopesWithActionTo(v.Flows, v.Service) {
					h.table.UpdateDefault(sc, v.Flows, def, false)
				}
			}
		}
	case control.RequestMe:
		// All nodes with an edge to S make S their default.
		for _, sc := range h.table.ScopesWithActionTo(v.Flows, v.Service) {
			h.table.UpdateDefault(sc, v.Flows, flowtable.Forward(v.Service), true)
		}
	case control.ChangeDefault:
		// Default rule for service S becomes T (constrained to edges
		// already present, i.e. the original service graph). T may be a
		// port-encoded destination (an egress link, as in Fig. 8).
		newDef := flowtable.Forward(v.Target)
		if v.Target.IsPort() {
			newDef = flowtable.Action{Type: flowtable.ActionOut, Dest: v.Target}
		}
		h.table.UpdateDefault(v.Service, v.Flows, newDef, true)
	case control.AppData:
		// Application data: no local table effect.
	}
}

// lookupAnyRule returns some rule scoped at s (wildcard preferred), used
// to discover s's default action for SkipMe. The zero-key lookup finds
// the governing wildcard cheaply; a scope holding only exact-match rules
// (per-flow compilation mode) answers nothing for the zero key, so fall
// back to scanning the scope's installed rules — otherwise SkipMe would
// silently no-op exactly when rules are specialized.
func (h *Host) lookupAnyRule(s flowtable.ServiceID) *flowtable.Entry {
	if e, err := h.table.Lookup(s, packet.FlowKey{}); err == nil {
		return e
	}
	return h.table.AnyEntry(s)
}

// WaitIdle blocks until the data plane has no packets in flight (pool
// in-use returns to zero) or the timeout elapses.
func (h *Host) WaitIdle(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if h.pool.Stats().InUse == 0 {
			return true
		}
		time.Sleep(50 * time.Microsecond)
	}
	return h.pool.Stats().InUse == 0
}
