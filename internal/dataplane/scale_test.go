package dataplane

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"sdnfv/internal/flowtable"
	"sdnfv/internal/nf"
	"sdnfv/internal/packet"
)

// flowCounter is a native-batch NF that counts packets per flow in the
// engine-owned flow store — the state whose survival the scale paths must
// guarantee.
type flowCounter struct{}

func (flowCounter) Name() string   { return "flowCounter" }
func (flowCounter) ReadOnly() bool { return true }
func (flowCounter) ProcessBatch(ctx *nf.Context, batch []nf.Packet, _ []nf.Decision) {
	fs := ctx.FlowState()
	for i := range batch {
		prev, _ := fs.Get(batch[i].Key)
		n, _ := prev.(uint64)
		fs.Set(batch[i].Key, n+1)
	}
}

// flowTotals sums per-flow counts across all replicas of svc, also
// reporting how many replicas hold state for each flow.
func flowTotals(h *Host, svc flowtable.ServiceID) (totals map[packet.FlowKey]uint64, holders map[packet.FlowKey]int) {
	totals = make(map[packet.FlowKey]uint64)
	holders = make(map[packet.FlowKey]int)
	for _, rs := range h.ReplicaStats(svc) {
		fs := h.FlowState(svc, rs.Index)
		fs.Range(func(k packet.FlowKey, v any) bool {
			totals[k] += v.(uint64)
			holders[k]++
			return true
		})
	}
	return totals, holders
}

func flowFrame(t *testing.T, flow int) []byte {
	t.Helper()
	return buildFrame(t, uint16(20000+flow), []byte("scale"))
}

func addCounterChain(t *testing.T, h *Host, replicas int) {
	t.Helper()
	for i := 0; i < replicas; i++ {
		if _, err := h.AddNF(svcA, flowCounter{}, 0); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(t, h, flowtable.Rule{Scope: flowtable.Port(0), Match: flowtable.MatchAll,
		Actions: []flowtable.Action{flowtable.Forward(svcA)}})
	mustAdd(t, h, flowtable.Rule{Scope: svcA, Match: flowtable.MatchAll,
		Actions: []flowtable.Action{flowtable.Out(1)}})
}

// TestScaleStatePreservedQuiesced is the acceptance check for the scale
// paths: with traffic quiesced around each transition, per-flow NF state
// is preserved EXACTLY across a live scale-up (state migrates to the new
// rendezvous owner) and a live scale-down (state hands off to the
// remaining owners).
func TestScaleStatePreservedQuiesced(t *testing.T) {
	const flows, perRound = 16, 25
	h, out := startHost(t, Config{LoadBalancer: LBFlowHash}, func(h *Host) {
		addCounterChain(t, h, 1)
	})
	inject := func(round int) {
		t.Helper()
		for p := 0; p < perRound; p++ {
			for f := 0; f < flows; f++ {
				frame := flowFrame(t, f)
				waitFor(t, func() bool { return h.Inject(0, frame) == nil }, "inject")
			}
		}
		waitFor(t, func() bool { return out.count() == round*perRound*flows }, "round delivered")
		if !h.WaitIdle(5 * time.Second) {
			t.Fatalf("not idle: %+v", h.Pool().Stats())
		}
	}
	check := func(stage string, replicas int, perFlow uint64) {
		t.Helper()
		if got := len(h.ReplicaStats(svcA)); got != replicas {
			t.Fatalf("%s: %d replicas, want %d", stage, got, replicas)
		}
		totals, holders := flowTotals(h, svcA)
		if len(totals) != flows {
			t.Fatalf("%s: state for %d flows, want %d", stage, len(totals), flows)
		}
		for k, n := range totals {
			if n != perFlow {
				t.Fatalf("%s: flow %s count = %d, want %d", stage, k, n, perFlow)
			}
			if holders[k] != 1 {
				t.Fatalf("%s: flow %s held by %d replicas", stage, k, holders[k])
			}
		}
	}

	inject(1)
	check("baseline", 1, perRound)

	// Live scale-up: the new replica must inherit the state of exactly
	// the flows it now owns.
	if _, err := h.AddNF(svcA, flowCounter{}, 0); err != nil {
		t.Fatalf("scale-up: %v", err)
	}
	check("after scale-up", 2, perRound)

	inject(2)
	check("after round 2", 2, 2*perRound)

	// Live scale-down of the newer replica: its state must merge back.
	if err := h.RemoveNF(svcA, 1); err != nil {
		t.Fatalf("scale-down: %v", err)
	}
	check("after scale-down", 1, 2*perRound)

	inject(3)
	check("after round 3", 1, 3*perRound)
}

// TestRemoveNFDuringTraffic retires replicas under live load: no
// descriptor may leak, every packet must be accounted for, and every
// flow's state must land on the surviving replica.
func TestRemoveNFDuringTraffic(t *testing.T) {
	const flows = 32
	h, out := startHost(t, Config{LoadBalancer: LBFlowHash, PoolSize: 512}, func(h *Host) {
		addCounterChain(t, h, 3)
	})
	frames := make([][]byte, flows)
	for f := range frames {
		frames[f] = flowFrame(t, f)
	}
	var injected atomic.Uint64
	stopGen := make(chan struct{})
	genDone := make(chan struct{})
	go func() {
		defer close(genDone)
		i := 0
		for {
			select {
			case <-stopGen:
				return
			default:
			}
			if h.Inject(0, frames[i%flows]) == nil {
				injected.Add(1)
			}
			i++
		}
	}()

	time.Sleep(20 * time.Millisecond)
	if err := h.RemoveNF(svcA, 2); err != nil {
		t.Fatalf("remove replica 2: %v", err)
	}
	time.Sleep(20 * time.Millisecond)
	if err := h.RemoveNF(svcA, 1); err != nil {
		t.Fatalf("remove replica 1: %v", err)
	}
	time.Sleep(20 * time.Millisecond)
	close(stopGen)
	<-genDone

	// Exact packet accounting: everything injected either exited or was
	// counted as an NF-queue overflow (no policy drops in this setup).
	waitFor(t, func() bool {
		st := h.Stats()
		return uint64(out.count())+st.Overflows == injected.Load()
	}, "packet accounting")
	if !h.WaitIdle(5 * time.Second) {
		t.Fatalf("descriptor leak after removals: %+v", h.Pool().Stats())
	}
	reps := h.ReplicaStats(svcA)
	if len(reps) != 1 || reps[0].Index != 0 {
		t.Fatalf("replicas = %+v, want only index 0", reps)
	}
	// Every flow's state must have been handed off to the survivor.
	totals, _ := flowTotals(h, svcA)
	if len(totals) != flows {
		t.Fatalf("state for %d flows after handoff, want %d", len(totals), flows)
	}
	for k, n := range totals {
		if n == 0 {
			t.Fatalf("flow %s lost its state", k)
		}
	}
	// The host survives a restart cycle after runtime removals.
	h.Stop()
	if err := h.Start(); err != nil {
		t.Fatalf("restart: %v", err)
	}
	pre := out.count()
	waitFor(t, func() bool { return h.Inject(0, frames[0]) == nil }, "inject after restart")
	waitFor(t, func() bool { return out.count() == pre+1 }, "delivery after restart")
}

// TestRuntimeAddNFReceivesTraffic verifies a replica added to a running
// host joins the load-balanced set.
func TestRuntimeAddNFReceivesTraffic(t *testing.T) {
	h, out := startHost(t, Config{}, func(h *Host) {
		addCounterChain(t, h, 1)
	})
	frame := flowFrame(t, 1)
	for i := 0; i < 10; i++ {
		waitFor(t, func() bool { return h.Inject(0, frame) == nil }, "inject")
	}
	waitFor(t, func() bool { return out.count() == 10 }, "first batch")

	inst, err := h.AddNF(svcA, flowCounter{}, 0)
	if err != nil {
		t.Fatalf("runtime add: %v", err)
	}
	if inst.Index != 1 {
		t.Fatalf("new replica index = %d, want 1", inst.Index)
	}
	// Default round-robin: both replicas must now see traffic.
	for i := 0; i < 40; i++ {
		waitFor(t, func() bool { return h.Inject(0, frame) == nil }, "inject")
	}
	waitFor(t, func() bool { return out.count() == 50 }, "second batch")
	for _, rs := range h.ReplicaStats(svcA) {
		if rs.Processed == 0 {
			t.Fatalf("replica %d processed nothing: %+v", rs.Index, rs)
		}
	}
}

// TestRemoveNFStoppedHost covers the cold path: no drain needed, state
// still hands off, and addressing errors are reported.
func TestRemoveNFStoppedHost(t *testing.T) {
	h := NewHost(Config{PoolSize: 16, LoadBalancer: LBFlowHash})
	if _, err := h.AddNF(svcA, flowCounter{}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := h.AddNF(svcA, flowCounter{}, 0); err != nil {
		t.Fatal(err)
	}
	key := packet.FlowKey{SrcIP: packet.IPv4(10, 0, 0, 9), DstIP: packet.IPv4(10, 0, 0, 2), SrcPort: 9, DstPort: 80, Proto: packet.ProtoUDP}
	h.FlowState(svcA, 0).Set(key, uint64(7))
	if err := h.RemoveNF(svcA, 0); err != nil {
		t.Fatal(err)
	}
	if h.FlowState(svcA, 0) != nil {
		t.Fatal("removed replica still addressable")
	}
	v, ok := h.FlowState(svcA, 1).Get(key)
	if !ok || v.(uint64) != 7 {
		t.Fatalf("state not handed off: %v %v", v, ok)
	}
	if err := h.RemoveNF(svcA, 0); err == nil {
		t.Fatal("double remove accepted")
	}
	if err := h.RemoveNF(svcB, 0); err == nil {
		t.Fatal("unknown service accepted")
	}
	// Removing the last replica is allowed.
	if err := h.RemoveNF(svcA, 1); err != nil {
		t.Fatal(err)
	}
	if got := len(h.Instances()); got != 0 {
		t.Fatalf("%d instances left", got)
	}
}

// TestFlowHashStableAcrossScale pins the rendezvous property the
// scale paths rely on: editing the replica set only moves the flows
// owned by the added/removed replica.
func TestFlowHashStableAcrossScale(t *testing.T) {
	mk := func(n int) []*Instance {
		insts := make([]*Instance, n)
		for i := range insts {
			insts[i] = &Instance{Index: i, seq: uint64(i)}
		}
		return insts
	}
	four := mk(4)
	three := four[:3]                                       // replica seq=3 removed
	five := append(four[:4:4], &Instance{Index: 4, seq: 4}) // replica seq=4 added

	const keys = 8192
	moved := 0
	for i := 0; i < keys; i++ {
		k := packet.FlowKey{
			SrcIP:   packet.IPv4(10, byte(i>>16), byte(i>>8), byte(i)),
			DstIP:   packet.IPv4(10, 2, 0, 1),
			SrcPort: uint16(i), DstPort: 80, Proto: packet.ProtoTCP,
		}
		o4 := ownerOf(four, k)
		if o3 := ownerOf(three, k); o4 != four[3] && o3 != o4 {
			t.Fatalf("key %d moved from %d to %d though its owner was not removed", i, o4.seq, o3.seq)
		}
		if o5 := ownerOf(five, k); o5 != o4 && o5 != five[4] {
			t.Fatalf("key %d moved from %d to %d instead of the new replica", i, o4.seq, o5.seq)
		}
		if o4 == four[3] {
			moved++
		}
	}
	// The removed replica owned ~1/4 of flows; allow a generous band.
	if frac := float64(moved) / keys; frac < 0.15 || frac > 0.35 {
		t.Fatalf("removal moves %.2f of flows, want ~0.25", frac)
	}
}

// TestParJoinRoundRobinAfterJoin is the regression test for the post-join
// load-balancing bug: parJoin used a fresh round-robin counter per join,
// so every packet continuing after a parallel merge landed on the same
// replica.
func TestParJoinRoundRobinAfterJoin(t *testing.T) {
	var got [2]atomic.Uint64
	h, out := startHost(t, Config{}, func(h *Host) {
		ro := func(name string) nf.BatchFunction {
			return ppNF(name, func(*nf.Context, *nf.Packet) nf.Decision { return nf.Default() })
		}
		_, _ = h.AddNF(svcA, ro("pa"), 0)
		_, _ = h.AddNF(svcB, ro("pb"), 0)
		for i := 0; i < 2; i++ {
			i := i
			fn := ppNF("after", func(*nf.Context, *nf.Packet) nf.Decision {
				got[i].Add(1)
				return nf.Default()
			})
			_, _ = h.AddNF(svcC, fn, 0)
		}
		mustAdd(t, h, flowtable.Rule{Scope: flowtable.Port(0), Match: flowtable.MatchAll,
			Actions:  []flowtable.Action{flowtable.Forward(svcA), flowtable.Forward(svcB)},
			Parallel: true})
		// Both members continue to C by default; C exits.
		mustAdd(t, h, flowtable.Rule{Scope: svcA, Match: flowtable.MatchAll,
			Actions: []flowtable.Action{flowtable.Forward(svcC)}})
		mustAdd(t, h, flowtable.Rule{Scope: svcB, Match: flowtable.MatchAll,
			Actions: []flowtable.Action{flowtable.Forward(svcC)}})
		mustAdd(t, h, flowtable.Rule{Scope: svcC, Match: flowtable.MatchAll,
			Actions: []flowtable.Action{flowtable.Out(1)}})
	})
	const n = 40
	frame := buildFrame(t, 9100, []byte("join"))
	for i := 0; i < n; i++ {
		waitFor(t, func() bool { return h.Inject(0, frame) == nil }, "inject")
	}
	waitFor(t, func() bool { return out.count() == n }, "joined packets out")
	a, b := got[0].Load(), got[1].Load()
	if a+b != n {
		t.Fatalf("replicas saw %d+%d, want %d", a, b, n)
	}
	if a == 0 || b == 0 {
		t.Fatalf("post-join round robin is skewed: %d/%d", a, b)
	}
}

// TestOverflowCounterDistinct is the regression test for conflating NF
// input-ring overflows with policy drops.
func TestOverflowCounterDistinct(t *testing.T) {
	gate := make(chan struct{})
	released := false
	defer func() {
		if !released {
			close(gate)
		}
	}()
	h, out := startHost(t, Config{PoolSize: 256, RingSize: 16}, func(h *Host) {
		blocker := &nf.BatchAdapter{FnName: "blocker", RO: true,
			ProcessBatchF: func(*nf.Context, []nf.Packet, []nf.Decision) { <-gate }}
		if _, err := h.AddNF(svcA, blocker, 0); err != nil {
			t.Fatal(err)
		}
		mustAdd(t, h, flowtable.Rule{Scope: flowtable.Port(0), Match: flowtable.MatchAll,
			Actions: []flowtable.Action{flowtable.Forward(svcA)}})
		mustAdd(t, h, flowtable.Rule{Scope: svcA, Match: flowtable.MatchAll,
			Actions: []flowtable.Action{flowtable.Out(1)}})
	})
	frame := buildFrame(t, 9200, nil)
	injected := 0
	// Keep offering load until the blocked replica's rings overflow.
	waitFor(t, func() bool {
		if h.Inject(0, frame) == nil {
			injected++
		}
		return h.Stats().Overflows > 0
	}, "overflow pressure")
	st := h.Stats()
	if st.Drops != 0 {
		t.Fatalf("overflow leaked into Drops: %+v", st)
	}
	if len(st.Replicas) != 1 || st.Replicas[0].OverflowDrops != st.Overflows {
		t.Fatalf("per-replica overflow mismatch: %+v vs %d", st.Replicas, st.Overflows)
	}
	close(gate)
	released = true
	waitFor(t, func() bool {
		st := h.Stats()
		return uint64(out.count())+st.Overflows == uint64(injected)
	}, "accounting after release")
	if !h.WaitIdle(5 * time.Second) {
		t.Fatalf("leak: %+v", h.Pool().Stats())
	}
}

// TestMalformedFrameDroppedWithoutCache is the regression test for
// resolveEntry ignoring packet.Parse failures when the lookup cache is
// disabled: a frame whose bytes no longer parse must be dropped, not
// dispatched by the descriptor's stale flow key.
func TestMalformedFrameDroppedWithoutCache(t *testing.T) {
	h := NewHost(Config{PoolSize: 8, DisableLookupCache: true})
	out := &collector{}
	h.BindDefault(out.fn)
	key := packet.FlowKey{SrcIP: packet.IPv4(10, 0, 0, 1), DstIP: packet.IPv4(10, 0, 0, 2), SrcPort: 1234, DstPort: 80, Proto: packet.ProtoUDP}
	if _, err := h.Table().Add(flowtable.Rule{Scope: svcA, Match: flowtable.MatchAll,
		Actions: []flowtable.Action{flowtable.Out(1)}}); err != nil {
		t.Fatal(err)
	}
	hd, err := h.Pool().Alloc()
	if err != nil {
		t.Fatal(err)
	}
	buf, _ := h.Pool().Buf(hd)
	copy(buf, []byte{0xde, 0xad}) // not a parseable frame
	_ = h.Pool().SetLength(hd, 2)
	d := Desc{H: hd, Scope: svcA, Key: key, Verb: nf.VerbDefault}
	inst := &Instance{Service: svcA, fn: NoopFn(), svcTime: newServiceTimeEWMA()}
	var rr uint64
	h.completeNF(h.snap.Load(), &d, inst, 0, &rr)
	st := h.Stats()
	if st.Drops != 1 || out.count() != 0 {
		t.Fatalf("malformed frame dispatched: drops=%d delivered=%d", st.Drops, out.count())
	}
	if st.Pool.InUse != 0 {
		t.Fatalf("buffer leaked: %+v", st.Pool)
	}
}

// TestFanOutStaleHandleDropped is the regression test for fanOut ignoring
// pool.Retain errors: a failed retain must drop the packet instead of
// fanning out copies that each release a reference the pool never
// granted.
func TestFanOutStaleHandleDropped(t *testing.T) {
	h := NewHost(Config{PoolSize: 8})
	if _, err := h.AddNF(svcA, NoopFn(), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := h.AddNF(svcB, NoopFn(), 0); err != nil {
		t.Fatal(err)
	}
	h.mu.Lock()
	h.publishSnapLocked()
	h.mu.Unlock()
	hd, err := h.Pool().Alloc()
	if err != nil {
		t.Fatal(err)
	}
	_ = h.Pool().Release(hd) // handle is now stale: Retain must fail
	e := &flowtable.Entry{Rule: flowtable.Rule{
		Scope:    flowtable.Port(0),
		Actions:  []flowtable.Action{flowtable.Forward(svcA), flowtable.Forward(svcB)},
		Parallel: true,
	}}
	d := Desc{H: hd, Scope: flowtable.Port(0)}
	var rr uint64
	h.fanOut(h.snap.Load(), &d, e, 0, &rr)
	st := h.Stats()
	if st.Drops != 1 {
		t.Fatalf("stale-handle fan-out not dropped: %+v", st)
	}
	if st.Pool.InUse != 0 {
		t.Fatalf("refcount corrupted: %+v", st.Pool)
	}
}

// TestReplicaStatsTelemetry checks the per-replica load signals the
// autoscale layer samples.
func TestReplicaStatsTelemetry(t *testing.T) {
	h, out := startHost(t, Config{}, func(h *Host) {
		addCounterChain(t, h, 2)
	})
	frame := flowFrame(t, 3)
	const n = 64
	for i := 0; i < n; i++ {
		waitFor(t, func() bool { return h.Inject(0, frame) == nil }, "inject")
	}
	waitFor(t, func() bool { return out.count() == n }, "delivered")
	reps := h.ReplicaStats(svcA)
	if len(reps) != 2 {
		t.Fatalf("replicas = %d", len(reps))
	}
	var processed uint64
	for _, rs := range reps {
		if rs.Service != svcA || rs.Name != "flowCounter" {
			t.Fatalf("identity: %+v", rs)
		}
		processed += rs.Processed
		if rs.Processed > 0 && rs.ServiceTimeNs <= 0 {
			t.Fatalf("no service time measured: %+v", rs)
		}
	}
	if processed != n {
		t.Fatalf("processed = %d, want %d", processed, n)
	}
	// Stats() carries the same snapshot.
	st := h.Stats()
	if len(st.Replicas) != 2 {
		t.Fatalf("HostStats.Replicas = %+v", st.Replicas)
	}
}

// TestRuntimeAddInitFailureRollsBack ensures a failed Init during live
// scale-up leaves the replica set untouched.
func TestRuntimeAddInitFailureRollsBack(t *testing.T) {
	h, _ := startHost(t, Config{}, func(h *Host) {
		addCounterChain(t, h, 1)
	})
	bad := &nf.BatchAdapter{FnName: "bad", RO: true,
		InitF: func(*nf.Context) error { return fmt.Errorf("nope") }}
	if _, err := h.AddNF(svcA, bad, 0); err == nil {
		t.Fatal("failed Init accepted")
	}
	if got := len(h.ReplicaStats(svcA)); got != 1 {
		t.Fatalf("replica set changed after failed init: %d", got)
	}
}
