package dataplane_test

// Integration tests wiring the full SDNFV control hierarchy in-process:
// SDNFV Application (service graphs, validation) → SDN Controller (rule
// compilation on PACKET_IN) → NF Manager (flow table, Flow Controller
// thread) → NFs (cross-layer messages back up). This is Fig. 2 of the
// paper end to end.

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"sdnfv/internal/app"
	"sdnfv/internal/control"
	"sdnfv/internal/controller"
	"sdnfv/internal/dataplane"
	"sdnfv/internal/flowtable"
	"sdnfv/internal/graph"
	"sdnfv/internal/nf"
	"sdnfv/internal/nfs"
	"sdnfv/internal/packet"
	"sdnfv/internal/traffic"
)

func waitCond(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(200 * time.Microsecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// TestFullHierarchyMissToFlow exercises: empty host table → first packet
// misses → Flow Controller asks the controller → controller compiles the
// app's service graph → rules installed → traffic flows; an NF's
// cross-layer message is validated by the app.
func TestFullHierarchyMissToFlow(t *testing.T) {
	const (
		svcFW  flowtable.ServiceID = 1
		svcMon flowtable.ServiceID = 2
	)
	g, err := graph.Chain("it",
		graph.Vertex{Service: svcFW, Name: "fw", ReadOnly: true},
		graph.Vertex{Service: svcMon, Name: "mon", ReadOnly: false},
	)
	if err != nil {
		t.Fatal(err)
	}
	a := app.New(app.Config{IngressPort: 0, EgressPort: 1})
	if err := a.RegisterGraph(g); err != nil {
		t.Fatal(err)
	}

	ctl := controller.New(controller.Config{})
	ctl.SetNorthbound(a) // App compiles per-flow exact rules by default
	var appMsgs atomic.Int64
	a.Subscribe(func(control.DatapathID, flowtable.ServiceID, control.Message) { appMsgs.Add(1) })
	ctl.Start()
	defer ctl.Stop()

	cfg := dataplane.Config{
		PoolSize:  512,
		TXThreads: 1,
		// The Flow Controller thread resolves misses through the real
		// controller (in-process southbound backend of the control API).
		Control: ctl,
	}
	h := dataplane.NewHost(cfg)
	fw := &nfs.Firewall{DefaultAllow: true}
	counter := &nfs.Counter{}
	if _, err := h.AddNF(svcFW, fw, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := h.AddNF(svcMon, counter, 0); err != nil {
		t.Fatal(err)
	}
	var out atomic.Int64
	h.BindDefault(func(int, []byte, *dataplane.Desc) { out.Add(1) })
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	defer h.Stop()

	factory := traffic.NewFactory()
	spec := traffic.Flow(1, 256, 0)
	frame, err := factory.Frame(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		for h.Inject(0, frame) != nil {
			time.Sleep(5 * time.Microsecond)
		}
	}
	waitCond(t, func() bool { return out.Load() == n }, "all packets delivered")

	st := h.Stats()
	if st.Misses == 0 {
		t.Fatal("no miss ever reached the controller")
	}
	if counter.Packets() != n {
		t.Fatalf("monitor saw %d, want %d", counter.Packets(), n)
	}
	// Rules are per-flow exact: a second flow misses again.
	spec2 := traffic.Flow(2, 256, 0)
	frame2, _ := factory.Frame(spec2, 0)
	missesBefore := h.Stats().Misses
	for h.Inject(0, frame2) != nil {
		time.Sleep(5 * time.Microsecond)
	}
	waitCond(t, func() bool { return out.Load() == n+1 }, "second flow delivered")
	if h.Stats().Misses <= missesBefore {
		t.Fatal("second flow should have missed (exact rules)")
	}
	cst, _ := ctl.Stats(context.Background())
	if cst.Requests == 0 || cst.FlowMods == 0 {
		t.Fatalf("controller stats = %+v", cst)
	}
}

// TestCrossLayerMessageReachesApp verifies Fig. 2 step 5: an NF emits a
// cross-layer message; the NF Manager applies it locally and forwards it
// via the controller to the SDNFV Application, which validates it against
// the registered graph.
func TestCrossLayerMessageReachesApp(t *testing.T) {
	const (
		svcA flowtable.ServiceID = 1
		svcB flowtable.ServiceID = 2
	)
	g := graph.New("msg")
	_ = g.AddVertex(graph.Vertex{Service: svcA, ReadOnly: true})
	_ = g.AddVertex(graph.Vertex{Service: svcB, ReadOnly: true})
	_ = g.AddEdge(graph.Source, svcA, true)
	_ = g.AddEdge(svcA, graph.Sink, true)
	_ = g.AddEdge(svcA, svcB, false)
	_ = g.AddEdge(svcB, graph.Sink, true)

	a := app.New(app.Config{IngressPort: 0, EgressPort: 1})
	if err := a.RegisterGraph(g); err != nil {
		t.Fatal(err)
	}
	ctl := controller.New(controller.Config{})
	var accepted, rejected atomic.Int64
	ctl.SetNorthbound(control.NorthboundFuncs{
		CompileFlowFunc: func(ctx context.Context, _ control.DatapathID, scope flowtable.ServiceID, key packet.FlowKey) ([]flowtable.Rule, error) {
			return a.CompileRules(scope, key, false) // wildcard pre-population
		},
		HandleNFMessageFunc: func(ctx context.Context, _ control.DatapathID, src flowtable.ServiceID, m control.Message) error {
			err := a.HandleNFMessage(ctx, 0, src, m)
			if err != nil {
				rejected.Add(1)
			} else {
				accepted.Add(1)
			}
			return err
		},
		PolicyFunc: a.Policy,
	})
	ctl.Start()
	defer ctl.Stop()

	h := dataplane.NewHost(dataplane.Config{
		PoolSize: 256, TXThreads: 1,
		Control: ctl,
	})
	sent := false
	nfA := &nf.BatchAdapter{FnName: "a", RO: true,
		ProcessBatchF: func(ctx *nf.Context, batch []nf.Packet, _ []nf.Decision) {
			if !sent && len(batch) > 0 {
				sent = true
				// Legal: A->B is a graph edge.
				ctx.Send(nf.Message{Kind: nf.MsgChangeDefault,
					Flows: flowtable.ExactMatch(batch[0].Key), S: svcA, T: svcB})
				// Illegal: B->A is not a graph edge; the app must log a
				// rejection (the manager is constrained anyway).
				ctx.Send(nf.Message{Kind: nf.MsgChangeDefault,
					Flows: flowtable.ExactMatch(batch[0].Key), S: svcB, T: svcA})
			}
		}}
	nfB := &nf.BatchAdapter{FnName: "b", RO: true}
	if _, err := h.AddNF(svcA, nfA, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := h.AddNF(svcB, nfB, 0); err != nil {
		t.Fatal(err)
	}
	var out atomic.Int64
	h.BindDefault(func(int, []byte, *dataplane.Desc) { out.Add(1) })
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	defer h.Stop()

	b := packet.Builder{
		SrcIP: packet.IPv4(10, 0, 0, 1), DstIP: packet.IPv4(10, 0, 0, 2),
		SrcPort: 999, DstPort: 80, Proto: packet.ProtoUDP,
	}
	buf := make([]byte, 256)
	n, _ := b.Build(buf, []byte("x"))
	for h.Inject(0, buf[:n]) != nil {
		time.Sleep(5 * time.Microsecond)
	}
	waitCond(t, func() bool { return out.Load() >= 1 }, "packet delivered")
	waitCond(t, func() bool { return accepted.Load() >= 1 && rejected.Load() >= 1 },
		"app validated both messages")

	// The app's log carries the rejection reason.
	var sawReject bool
	for _, lm := range a.Messages() {
		if !lm.Accepted && lm.Reason != "" {
			sawReject = true
		}
	}
	if !sawReject {
		t.Fatal("rejection not recorded with a reason")
	}
}

// TestParallelPriorityConflict verifies §4.2 conflict resolution by
// instance priority: two parallel read-only NFs request different forward
// targets; the higher-priority instance wins.
func TestParallelPriorityConflict(t *testing.T) {
	const (
		svcL flowtable.ServiceID = 1
		svcR flowtable.ServiceID = 2
		svcX flowtable.ServiceID = 3
		svcY flowtable.ServiceID = 4
	)
	h := dataplane.NewHost(dataplane.Config{PoolSize: 256, TXThreads: 1})
	var xGot, yGot atomic.Int64
	mk := func(dest flowtable.ServiceID) nf.BatchFunction {
		return &nf.BatchAdapter{FnName: "par", RO: true,
			ProcessBatchF: func(_ *nf.Context, batch []nf.Packet, out []nf.Decision) {
				for i := range batch {
					out[i] = nf.SendTo(dest)
				}
			}}
	}
	sink := func(c *atomic.Int64) nf.BatchFunction {
		return &nf.BatchAdapter{FnName: "sink", RO: true,
			ProcessBatchF: func(_ *nf.Context, batch []nf.Packet, _ []nf.Decision) {
				c.Add(int64(len(batch)))
			}}
	}
	if _, err := h.AddNF(svcL, mk(svcX), 1); err != nil { // low priority
		t.Fatal(err)
	}
	if _, err := h.AddNF(svcR, mk(svcY), 9); err != nil { // high priority
		t.Fatal(err)
	}
	if _, err := h.AddNF(svcX, sink(&xGot), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := h.AddNF(svcY, sink(&yGot), 0); err != nil {
		t.Fatal(err)
	}
	add := func(r flowtable.Rule) {
		if _, err := h.Table().Add(r); err != nil {
			t.Fatal(err)
		}
	}
	add(flowtable.Rule{Scope: flowtable.Port(0), Match: flowtable.MatchAll,
		Actions:  []flowtable.Action{flowtable.Forward(svcL), flowtable.Forward(svcR)},
		Parallel: true})
	for _, s := range []flowtable.ServiceID{svcL, svcR, svcX, svcY} {
		add(flowtable.Rule{Scope: s, Match: flowtable.MatchAll,
			Actions: []flowtable.Action{flowtable.Out(1)}})
	}
	var out atomic.Int64
	h.BindDefault(func(int, []byte, *dataplane.Desc) { out.Add(1) })
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	defer h.Stop()

	factory := traffic.NewFactory()
	frame, _ := factory.Frame(traffic.Flow(5, 256, 0), 0)
	const n = 20
	for i := 0; i < n; i++ {
		for h.Inject(0, frame) != nil {
			time.Sleep(5 * time.Microsecond)
		}
	}
	waitCond(t, func() bool { return out.Load() == n }, "joined packets delivered")
	if yGot.Load() != n {
		t.Fatalf("high-priority target saw %d, want %d", yGot.Load(), n)
	}
	if xGot.Load() != 0 {
		t.Fatalf("low-priority target saw %d, want 0", xGot.Load())
	}
}

// TestSkipMeAndRequestMe verifies the remaining §3.4 cross-layer messages
// against the live engine.
func TestSkipMeAndRequestMe(t *testing.T) {
	const (
		svcA flowtable.ServiceID = 1
		svcB flowtable.ServiceID = 2
		svcC flowtable.ServiceID = 3
	)
	h := dataplane.NewHost(dataplane.Config{PoolSize: 256, TXThreads: 1})
	var bGot, cGot atomic.Int64
	pass := func(c *atomic.Int64) nf.BatchFunction {
		return &nf.BatchAdapter{FnName: "p", RO: true,
			ProcessBatchF: func(_ *nf.Context, batch []nf.Packet, _ []nf.Decision) {
				if c != nil {
					c.Add(int64(len(batch)))
				}
			}}
	}
	if _, err := h.AddNF(svcA, pass(nil), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := h.AddNF(svcB, pass(&bGot), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := h.AddNF(svcC, pass(&cGot), 0); err != nil {
		t.Fatal(err)
	}
	add := func(r flowtable.Rule) {
		if _, err := h.Table().Add(r); err != nil {
			t.Fatal(err)
		}
	}
	// A -> B -> C -> out.
	add(flowtable.Rule{Scope: flowtable.Port(0), Match: flowtable.MatchAll,
		Actions: []flowtable.Action{flowtable.Forward(svcA)}})
	add(flowtable.Rule{Scope: svcA, Match: flowtable.MatchAll,
		Actions: []flowtable.Action{flowtable.Forward(svcB)}})
	add(flowtable.Rule{Scope: svcB, Match: flowtable.MatchAll,
		Actions: []flowtable.Action{flowtable.Forward(svcC)}})
	add(flowtable.Rule{Scope: svcC, Match: flowtable.MatchAll,
		Actions: []flowtable.Action{flowtable.Out(1)}})
	var out atomic.Int64
	h.BindDefault(func(int, []byte, *dataplane.Desc) { out.Add(1) })
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	defer h.Stop()

	factory := traffic.NewFactory()
	frame, _ := factory.Frame(traffic.Flow(6, 256, 0), 0)
	send := func(k int) {
		for i := 0; i < k; i++ {
			for h.Inject(0, frame) != nil {
				time.Sleep(5 * time.Microsecond)
			}
		}
	}
	send(5)
	waitCond(t, func() bool { return out.Load() == 5 }, "baseline")
	if bGot.Load() != 5 || cGot.Load() != 5 {
		t.Fatalf("baseline counts %d/%d", bGot.Load(), cGot.Load())
	}

	// SkipMe(B): A's default forwards straight to C.
	if err := h.ApplyMessage(svcB, control.SkipMe{Flows: flowtable.MatchAll, Service: svcB}); err != nil {
		t.Fatal(err)
	}
	send(5)
	waitCond(t, func() bool { return out.Load() == 10 }, "after SkipMe")
	if bGot.Load() != 5 {
		t.Fatalf("B still on path after SkipMe: %d", bGot.Load())
	}
	if cGot.Load() != 10 {
		t.Fatalf("C missed traffic after SkipMe: %d", cGot.Load())
	}

	// RequestMe(B): every scope with an edge to B makes it the default
	// again.
	if err := h.ApplyMessage(svcB, control.RequestMe{Flows: flowtable.MatchAll, Service: svcB}); err != nil {
		t.Fatal(err)
	}
	send(5)
	waitCond(t, func() bool { return out.Load() == 15 }, "after RequestMe")
	if bGot.Load() != 10 {
		t.Fatalf("B not restored by RequestMe: %d", bGot.Load())
	}
}
