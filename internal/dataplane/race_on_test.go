//go:build race

package dataplane_test

// raceEnabled reports whether the binary was built with the race
// detector, whose instrumentation slows churn-heavy lifecycle tests.
const raceEnabled = true
