package dataplane

// Driver ingress boundary — the seam internal/portio plugs into.
//
// Inject is the in-process generator path: a refusal is the injector's
// loss, returned as an error and kept out of every host counter.
// Ingest is the wire path: a port driver hands the host a frame the
// wire already delivered, so the frame must be accounted whether or
// not it is admitted. Every Ingest-refused frame counts once in
// RxPackets AND once in RxDrops (admitted frames are counted in
// RxPackets by the RX thread when dequeued, like Inject's), which
// extends the conservation identity to
//
//	RxPackets = TxPackets + Drops + Overflows + TxDrops + RxDrops
//
// exactly once the host is idle (non-parallel dispatch, as before).
// IngestBurst refines this for capacity refusals: frames past its
// consumed prefix never touched the host, stay out of every counter,
// and remain the driver's to retry or drop (drivers count such losses
// in their own RxRefused).
//
// Unlike Inject, Ingest is strict about what it admits: a frame larger
// than the pool frame cap, or one that does not parse as an Ethernet
// frame, is counted in RxDrops and never enters the packet path — the
// wire can deliver arbitrary garbage and the old "admit with a zero
// FlowKey" fallback would hand packet.Parse leftovers to the miss path.
// Frames arriving on a port with no ingress binding (a driver that was
// never bound, or already drained) are refused the same way, which
// gives late wire arrivals during driver teardown a meaning instead of
// a silent drop.

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"sdnfv/internal/flowtable"
	"sdnfv/internal/packet"
)

// Sentinel errors the ingest path classifies refusals with. All of them
// are also counted in HostStats.RxDrops.
var (
	// ErrFrameOversize reports a frame larger than FrameCap.
	ErrFrameOversize = errors.New("dataplane: frame exceeds pool frame cap")
	// ErrMalformedFrame reports a frame packet.Parse rejected.
	ErrMalformedFrame = errors.New("dataplane: malformed frame")
	// ErrPortUnbound reports a frame for a port with no ingress binding.
	ErrPortUnbound = errors.New("dataplane: no ingress bound on port")
	// ErrIngestRefused reports a capacity refusal: pool exhausted, NIC
	// ring full, or host stopped.
	ErrIngestRefused = errors.New("dataplane: ingest refused")
)

// DriverStats is a port driver's boundary telemetry: what crossed the
// wire seam, and what died at it. The host merges registered drivers'
// stats into HostStats.Ports; the counters are the driver's own and sit
// outside the host conservation identity (RxRefused frames, for
// example, also appear in HostStats.RxDrops).
type DriverStats struct {
	// RxFrames/RxBytes count frames read off the wire and offered to
	// the host ingress (including ones the host then refused).
	RxFrames uint64
	RxBytes  uint64
	// TxFrames/TxBytes count frames written to the wire.
	TxFrames uint64
	TxBytes  uint64
	// RxOversize counts wire frames larger than the ingress frame cap,
	// dropped by the driver before reaching the host.
	RxOversize uint64
	// RxTruncated counts short reads and truncated framing (a TCP
	// stream cut mid-frame, a datagram shorter than its header).
	RxTruncated uint64
	// RxRefused counts frames read off the wire that never entered the
	// packet path: refused at the boundary (malformed, unbound — those
	// also appear in HostStats.RxDrops) or dropped by the driver after
	// its capacity-retry budget expired (those touched no host counter).
	RxRefused uint64
	// TxDrops counts egress frames never written: link down, egress
	// queue full, or a write error.
	TxDrops uint64
	// Reconnects counts re-established connections (TCP backoff loop).
	Reconnects uint64
}

// PortDriverStats is one port's DriverStats inside a HostStats snapshot.
type PortDriverStats struct {
	Port   int
	Driver string
	DriverStats
}

// FrameCap is the largest frame Ingest admits: the pool buffer size.
// Drivers size their receive buffers from it so oversize wire frames
// are detected at the boundary instead of truncated silently.
func (h *Host) FrameCap() int { return h.cfg.BufSize }

// ingressTable is the immutable ingress-bound port set, published
// atomically like egressTable so Ingest stays lock-free.
type ingressTable struct {
	bound []bool
}

func (t *ingressTable) has(port int) bool {
	return t != nil && port >= 0 && port < len(t.bound) && t.bound[port]
}

// BindIngress marks port as having a driver ingress attached, admitting
// Ingest on it. Drivers bind before opening and unbind after draining
// (portio.Bind handles both), so frames from a half-torn-down wire are
// classified ErrPortUnbound rather than racing the teardown.
func (h *Host) BindIngress(port int) { h.setIngress(port, true) }

// UnbindIngress removes port's ingress binding; subsequent Ingest calls
// on it count in RxDrops and return ErrPortUnbound.
func (h *Host) UnbindIngress(port int) { h.setIngress(port, false) }

func (h *Host) setIngress(port int, bound bool) {
	if port < 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	cur := h.ingress.Load()
	next := &ingressTable{}
	if cur != nil {
		next.bound = append([]bool(nil), cur.bound...)
	}
	for len(next.bound) <= port {
		next.bound = append(next.bound, false)
	}
	next.bound[port] = bound
	h.ingress.Store(next)
}

// registeredPort is one driver's stats hook, keyed by port.
type registeredPort struct {
	port   int
	driver string
	fn     func() DriverStats
}

// RegisterPortStats attaches a driver's stats snapshot function to
// port, so Stats() can merge wire-boundary telemetry into
// HostStats.Ports. Re-registering a port replaces the previous hook.
// The hook must be safe to call concurrently and must not call back
// into host lifecycle or stats methods.
func (h *Host) RegisterPortStats(port int, driver string, fn func() DriverStats) {
	if fn == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.ports == nil {
		h.ports = make(map[int]registeredPort)
	}
	h.ports[port] = registeredPort{port: port, driver: driver, fn: fn}
}

// UnregisterPortStats detaches port's stats hook.
func (h *Host) UnregisterPortStats(port int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.ports, port)
}

// portDriverStats snapshots every registered driver, ordered by port.
// The hooks run outside h.mu so a driver snapshot can never deadlock
// against the host lock.
func (h *Host) portDriverStats() []PortDriverStats {
	h.mu.Lock()
	regs := make([]registeredPort, 0, len(h.ports))
	for _, r := range h.ports {
		regs = append(regs, r)
	}
	h.mu.Unlock()
	if len(regs) == 0 {
		return nil
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i].port < regs[j].port })
	out := make([]PortDriverStats, len(regs))
	for i, r := range regs {
		out[i] = PortDriverStats{Port: r.port, Driver: r.driver, DriverStats: r.fn()}
	}
	return out
}

// Ingest delivers one wire frame into the host NIC on port. Unlike
// Inject, every call is accounted: a refusal counts in both RxPackets
// and RxDrops (see the package comment above for the identity), and
// the returned error classifies it — ErrPortUnbound, ErrFrameOversize,
// ErrMalformedFrame, or ErrIngestRefused. The frame is copied; the
// caller keeps ownership of the slice. Safe for concurrent use.
func (h *Host) Ingest(port int, frame []byte) error {
	if !h.ingress.Load().has(port) {
		h.countRxDrop(1)
		return fmt.Errorf("%w %d", ErrPortUnbound, port)
	}
	d, err := h.admit(port, frame)
	if err != nil {
		h.countRxDrop(1)
		return err
	}
	h.injectMu.Lock()
	if h.stop.Load() {
		// Same latch as Inject: Stop's drain must observe every
		// enqueued descriptor, so frames arriving after the stop flag
		// are refused under injectMu (and, being wire frames, counted).
		h.injectMu.Unlock()
		h.release(d.H)
		h.countRxDrop(1)
		return fmt.Errorf("%w: host stopped", ErrIngestRefused)
	}
	ok := h.nicIn.Enqueue(d)
	h.injectMu.Unlock()
	if !ok {
		h.release(d.H)
		h.countRxDrop(1)
		return fmt.Errorf("%w: NIC ring full", ErrIngestRefused)
	}
	return nil
}

// IngestBurst delivers a burst of wire frames into port in order,
// amortizing the inject lock across ring-sized sub-batches. It returns
// (admitted, consumed): frames[:consumed] are fully accounted — either
// admitted to the packet path or counted in RxPackets+RxDrops
// (malformed, oversize) — while frames[consumed:] were stopped by a
// capacity refusal (pool exhausted, NIC ring full, host stopped) and
// touched no counter at all, so the driver may re-offer them once the
// backlog drains instead of losing a whole burst to a momentary stall.
// An unbound port consumes (and counts) the entire burst: retrying a
// dead port is pointless. Frame slices are copied, not retained.
func (h *Host) IngestBurst(port int, frames [][]byte) (admitted, consumed int) {
	if len(frames) == 0 {
		return 0, 0
	}
	if !h.ingress.Load().has(port) {
		h.countRxDrop(uint64(len(frames)))
		return 0, len(frames)
	}
	var (
		batch [rxBatch]Desc
		idxs  [rxBatch]int
		n     int
		// drops holds malformed-frame indices; they are counted only if
		// they land inside the consumed prefix (a capacity stop hands the
		// tail back to the driver uncounted, malformed frames included).
		drops   []int
		stopped = false
	)
	flush := func(scanned int) {
		if n == 0 {
			if !stopped {
				consumed = scanned
			}
			return
		}
		h.injectMu.Lock()
		q := 0
		if !h.stop.Load() {
			q = h.nicIn.EnqueueBatch(batch[:n])
		}
		h.injectMu.Unlock()
		for i := q; i < n; i++ {
			h.release(batch[i].H)
		}
		admitted += q
		if q < n {
			// Ring refused batch[q:]; the first rejected frame marks the
			// consumed boundary — everything past it is the driver's again.
			stopped = true
			consumed = idxs[q]
		} else {
			consumed = scanned
		}
		n = 0
	}
	for i, f := range frames {
		d, err := h.admit(port, f)
		if err != nil {
			if errors.Is(err, ErrIngestRefused) {
				flush(i)
				if !stopped {
					stopped = true
					consumed = i
				}
				break
			}
			drops = append(drops, i)
			continue
		}
		batch[n], idxs[n] = d, i
		n++
		if n == len(batch) {
			flush(i + 1)
			if stopped {
				break
			}
		}
	}
	if !stopped {
		flush(len(frames))
	}
	nd := uint64(0)
	for _, idx := range drops {
		if idx < consumed {
			nd++
		}
	}
	if nd > 0 {
		h.countRxDrop(nd)
	}
	return admitted, consumed
}

// countRxDrop records a wire frame the boundary refused: once in
// RxPackets (the wire delivered it) and once in RxDrops.
func (h *Host) countRxDrop(n uint64) {
	h.rxCount.Add(n)
	h.rxDropCount.Add(n)
}

// admit copies frame into a pool buffer and builds its descriptor,
// enforcing the strict wire-ingress checks (size cap, parseability).
func (h *Host) admit(port int, frame []byte) (Desc, error) {
	if len(frame) > h.cfg.BufSize {
		return Desc{}, fmt.Errorf("%w: %dB > %dB", ErrFrameOversize, len(frame), h.cfg.BufSize)
	}
	hd, err := h.pool.Alloc()
	if err != nil {
		return Desc{}, fmt.Errorf("%w: %v", ErrIngestRefused, err)
	}
	buf, _ := h.pool.Buf(hd)
	copy(buf, frame)
	_ = h.pool.SetLength(hd, len(frame))
	v, err := packet.Parse(buf[:len(frame)])
	if err != nil {
		h.release(hd)
		return Desc{}, fmt.Errorf("%w: %v", ErrMalformedFrame, err)
	}
	return Desc{
		H:            hd,
		Scope:        flowtable.Port(port),
		View:         v,
		Key:          v.FlowKey(),
		ArrivalNanos: time.Now().UnixNano(),
	}, nil
}
