package dataplane

import (
	"fmt"

	"sdnfv/internal/packet"
)

// LBPolicy selects how the NF Manager spreads packets across replicas of
// the same service (§3.3, §4.2 "Automatic Load Balancing").
type LBPolicy uint8

// Load-balancing policies.
const (
	// LBRoundRobin cycles through replicas.
	LBRoundRobin LBPolicy = iota
	// LBQueueDepth picks the replica with the shortest input queue
	// ("state-based load balancing based on the number of occupied
	// slots"); unusable for NFs with per-flow temporal state.
	LBQueueDepth
	// LBFlowHash hashes the 5-tuple so all packets of a flow hit the same
	// replica, preserving per-thread flow state. Implemented as
	// rendezvous (highest-random-weight) hashing over the replicas'
	// stable identities, so scaling the replica set from n to n±1 moves
	// only the ~1/n of flows owned by the added/removed replica — a plain
	// hash-mod would reshuffle almost every flow on each scaling event
	// and destroy the affinity the policy exists to preserve.
	LBFlowHash
)

// String names the policy.
func (p LBPolicy) String() string {
	switch p {
	case LBRoundRobin:
		return "round-robin"
	case LBQueueDepth:
		return "queue-depth"
	case LBFlowHash:
		return "flow-hash"
	default:
		return fmt.Sprintf("LBPolicy(%d)", uint8(p))
	}
}

// pick selects a replica among insts for the given flow. rrState is the
// calling thread's round-robin counter, kept thread-local so the fast
// path shares no atomic.
//
//sdnfv:hotpath
func (h *Host) pick(insts []*Instance, key packet.FlowKey, rrState *uint64) *Instance {
	n := len(insts)
	if n == 1 {
		return insts[0]
	}
	switch h.cfg.LoadBalancer {
	case LBQueueDepth:
		// Scan all replicas for the minimum backlog; the paper measures
		// this at ~15 ns for typical replica counts.
		best := insts[0]
		bestLen := best.backlog()
		for _, in := range insts[1:] {
			if l := in.backlog(); l < bestLen {
				best, bestLen = in, l
			}
		}
		return best
	case LBFlowHash:
		return ownerOf(insts, key)
	default:
		*rrState++
		return insts[*rrState%uint64(n)]
	}
}

// ownerOf returns the rendezvous owner of a flow among the given replicas:
// the replica whose (flow, replica) weight is highest. Removing a replica
// moves exactly the flows it owned; adding one steals ~1/(n+1) of flows
// from the others; every other flow keeps its owner.
//
//sdnfv:hotpath
func ownerOf(insts []*Instance, key packet.FlowKey) *Instance {
	kh := key.Hash()
	best := insts[0]
	bestW := rendezvousWeight(kh, best.seq)
	for _, in := range insts[1:] {
		if w := rendezvousWeight(kh, in.seq); w > bestW {
			best, bestW = in, w
		}
	}
	return best
}

// rendezvousWeight mixes a flow hash with a replica identity
// (splitmix64-style finalizer: cheap, well distributed, and stable — the
// mapping must not change across runs or replica-set edits).
//
//sdnfv:hotpath
func rendezvousWeight(kh, id uint64) uint64 {
	x := kh ^ (id+1)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
