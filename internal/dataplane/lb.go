package dataplane

import (
	"fmt"

	"sdnfv/internal/packet"
)

// LBPolicy selects how the NF Manager spreads packets across replicas of
// the same service (§3.3, §4.2 "Automatic Load Balancing").
type LBPolicy uint8

// Load-balancing policies.
const (
	// LBRoundRobin cycles through replicas.
	LBRoundRobin LBPolicy = iota
	// LBQueueDepth picks the replica with the shortest input queue
	// ("state-based load balancing based on the number of occupied
	// slots"); unusable for NFs with per-flow temporal state.
	LBQueueDepth
	// LBFlowHash hashes the 5-tuple so all packets of a flow hit the same
	// replica, preserving per-thread flow state.
	LBFlowHash
)

// String names the policy.
func (p LBPolicy) String() string {
	switch p {
	case LBRoundRobin:
		return "round-robin"
	case LBQueueDepth:
		return "queue-depth"
	case LBFlowHash:
		return "flow-hash"
	default:
		return fmt.Sprintf("LBPolicy(%d)", uint8(p))
	}
}

// pick selects a replica index among n instances for the given flow.
// producer is the calling thread's producer slot, used to keep the
// round-robin counter thread-local (no shared atomic on the fast path).
func (h *Host) pick(insts []*Instance, key packet.FlowKey, rrState *uint64) *Instance {
	n := len(insts)
	if n == 1 {
		return insts[0]
	}
	switch h.cfg.LoadBalancer {
	case LBQueueDepth:
		// Scan all replicas for the minimum backlog; the paper measures
		// this at ~15 ns for typical replica counts.
		best := insts[0]
		bestLen := best.backlog()
		for _, in := range insts[1:] {
			if l := in.backlog(); l < bestLen {
				best, bestLen = in, l
			}
		}
		return best
	case LBFlowHash:
		return insts[key.Hash()%uint64(n)]
	default:
		*rrState++
		return insts[*rrState%uint64(n)]
	}
}
