package dataplane

import (
	"testing"
	"time"

	"sdnfv/internal/control"
	"sdnfv/internal/flowtable"
	"sdnfv/internal/packet"
)

const (
	svcX flowtable.ServiceID = 31
	svcY flowtable.ServiceID = 32
)

// TestPerPortEgressBindings steers flows out two different ports and
// checks each lands only in its bound sink, with BindDefault catching
// the rest.
func TestPerPortEgressBindings(t *testing.T) {
	h := NewHost(Config{PoolSize: 256, TXThreads: 1})
	p1, p2, other := &collector{}, &collector{}, &collector{}
	h.BindPort(1, p1.fn)
	h.BindPort(2, p2.fn)
	h.BindDefault(other.fn)
	// Flows to dst port 80 exit port 1, dst 81 exit port 2, dst 82 exit
	// the unbound port 3 (default sink).
	for dst, out := range map[uint16]int{80: 1, 81: 2, 82: 3} {
		d := dst
		if _, err := h.Table().Add(flowtable.Rule{
			Scope: flowtable.Port(0), Match: flowtable.Match{DstPort: &d},
			Actions: []flowtable.Action{flowtable.Out(out)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Stop)

	frameTo := func(dst uint16) []byte {
		b := packet.Builder{
			SrcIP: packet.IPv4(10, 0, 0, 1), DstIP: packet.IPv4(10, 0, 0, 2),
			SrcPort: 5000, DstPort: dst, Proto: packet.ProtoUDP,
		}
		buf := make([]byte, 1024)
		n, err := b.Build(buf, nil)
		if err != nil {
			t.Fatal(err)
		}
		return buf[:n]
	}
	for i := 0; i < 5; i++ {
		for _, dst := range []uint16{80, 81, 82} {
			if err := h.Inject(0, frameTo(dst)); err != nil {
				t.Fatal(err)
			}
		}
	}
	waitFor(t, func() bool {
		return p1.count() == 5 && p2.count() == 5 && other.count() == 5
	}, "per-port deliveries")
	st := h.Stats()
	if st.TxPackets != 15 || st.TxDrops != 0 {
		t.Fatalf("tx=%d txdrops=%d", st.TxPackets, st.TxDrops)
	}
	for _, p := range p1.ports {
		if p != 1 {
			t.Fatalf("sink 1 saw port %d", p)
		}
	}
	for _, p := range p2.ports {
		if p != 2 {
			t.Fatalf("sink 2 saw port %d", p)
		}
	}
}

// TestTransmitUnboundCountsTxDrops is the regression for the transmit
// accounting bug: frames egressing a port with no bound sink used to
// count in TxPackets while the bytes vanished. They must count as
// TxDrops, keeping rx == tx + drops + overflows + txdrops exact.
func TestTransmitUnboundCountsTxDrops(t *testing.T) {
	h := NewHost(Config{PoolSize: 64, TXThreads: 1})
	if _, err := h.Table().Add(flowtable.Rule{
		Scope: flowtable.Port(0), Match: flowtable.MatchAll,
		Actions: []flowtable.Action{flowtable.Out(5)},
	}); err != nil {
		t.Fatal(err)
	}
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Stop)

	frame := buildFrame(t, 6000, nil)
	const n = 10
	for i := 0; i < n; i++ {
		if err := h.Inject(0, frame); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return h.Stats().TxDrops == n }, "tx drops")
	st := h.Stats()
	if st.TxPackets != 0 {
		t.Fatalf("unbound egress counted as transmitted: %+v", st)
	}
	if st.RxPackets != st.TxPackets+st.Drops+st.Overflows+st.TxDrops {
		t.Fatalf("accounting broken: %+v", st)
	}
	if !h.WaitIdle(5 * time.Second) {
		t.Fatalf("buffers leaked: %+v", h.Pool().Stats())
	}

	// Binding the port at runtime (atomically published) makes the same
	// flow deliverable.
	out := &collector{}
	h.BindPort(5, out.fn)
	if err := h.Inject(0, frame); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return out.count() == 1 }, "post-bind delivery")
	if st := h.Stats(); st.TxPackets != 1 || st.TxDrops != n {
		t.Fatalf("post-bind stats: %+v", st)
	}
}

// TestSkipMeWithExactOnlyRules is the regression for the lookupAnyRule
// bug: when the skipped service's scope holds only exact-match rules
// (per-flow compilation mode), the zero-key lookup finds nothing and
// SkipMe silently no-opped. The fallback scan must discover the
// service's default action and apply the bypass.
func TestSkipMeWithExactOnlyRules(t *testing.T) {
	h := NewHost(Config{PoolSize: 64, TXThreads: 1})
	key := packet.FlowKey{
		SrcIP: packet.IPv4(10, 0, 0, 1), DstIP: packet.IPv4(10, 0, 0, 2),
		SrcPort: 7000, DstPort: 80, Proto: packet.ProtoUDP,
	}
	// svcX forwards to svcY by default; svcY's ONLY rule is exact-match
	// (not the zero key), with default Out(1).
	mustAdd := func(r flowtable.Rule) {
		t.Helper()
		if _, err := h.Table().Add(r); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(flowtable.Rule{Scope: svcX, Match: flowtable.MatchAll,
		Actions: []flowtable.Action{flowtable.Forward(svcY), flowtable.Out(1)}})
	mustAdd(flowtable.Rule{Scope: svcY, Match: flowtable.ExactMatch(key),
		Actions: []flowtable.Action{flowtable.Out(1)}})

	msg, err := control.NewSkipMe(flowtable.ExactMatch(key), svcY)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.ApplyMessage(svcY, msg); err != nil {
		t.Fatal(err)
	}
	e, err := h.Table().Lookup(svcX, key)
	if err != nil {
		t.Fatal(err)
	}
	def, _ := e.Default()
	if def != flowtable.Out(1) {
		t.Fatalf("SkipMe no-opped: default at %s is %v, want %v", svcX, def, flowtable.Out(1))
	}
}
