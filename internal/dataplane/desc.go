// Package dataplane implements the SDNFV NF Manager as a real concurrent
// engine (§4.1–4.2): goroutine "threads" (RX, TX, Flow Controller, one per
// NF instance) connected only by lock-free SPSC rings; packets live in a
// shared mempool and only descriptors move.
//
// The engine reproduces the paper's systems optimizations:
//
//   - zero-copy packet exchange with per-buffer reference counts for
//     parallel dispatch;
//   - caching the flow-table lookup result inside the packet descriptor so
//     downstream TX processing skips the hash lookup;
//   - automatic load balancing across NF replicas (round-robin,
//     queue-depth, or flow-hash);
//   - action conflict resolution for parallel NFs (drop > out > forward,
//     then instance priority).
package dataplane

import (
	"sdnfv/internal/flowtable"
	"sdnfv/internal/mempool"
	"sdnfv/internal/nf"
	"sdnfv/internal/packet"
)

// Desc is the packet descriptor exchanged through rings. It carries the
// buffer handle plus everything the manager needs to avoid touching the
// packet bytes on the fast path: the parsed view, the 5-tuple, and (when
// lookup caching is enabled) the flow-table entry governing the current
// hop.
type Desc struct {
	H   mempool.Handle
	Key packet.FlowKey
	// View is the parsed header view (aliases the pool buffer).
	View packet.View
	// Scope is where the packet currently sits: an ingress port before
	// first dispatch, else the service that just processed it.
	Scope flowtable.ServiceID
	// Verb and Dest record the NF's requested action on the way back to
	// the TX thread.
	Verb nf.Verb
	Dest flowtable.ServiceID
	// Entry is the cached flow-table entry for Scope (nil when caching is
	// disabled or not yet resolved).
	Entry *flowtable.Entry
	// ArrivalNanos is the engine-clock RX timestamp.
	ArrivalNanos int64
	// parallel marks this descriptor as one copy of a parallel fan-out;
	// the join logic in the TX path runs only for such descriptors.
	parallel bool
}

// mergedAction packs a resolved flowtable.Action plus an instance priority
// into a uint64 for atomic max-merging during parallel joins. Higher packed
// value = higher priority outcome.
//
// Layout (most significant wins):
//
//	bits 48..63: action type rank (drop=3, out=2, forward=1)
//	bits 32..47: instance priority
//	bits 16..31: ^dest (so lower ServiceID wins ties deterministically)
//	bit 0:       valid
type mergedAction uint64

//sdnfv:hotpath
func packAction(a flowtable.Action, instPriority uint16) mergedAction {
	var rank uint64
	switch a.Type {
	case flowtable.ActionDrop:
		rank = 3
	case flowtable.ActionOut:
		rank = 2
	default:
		rank = 1
	}
	return mergedAction(rank<<48 | uint64(instPriority)<<32 | uint64(^uint16(a.Dest))<<16 | 1)
}

//sdnfv:hotpath
func (m mergedAction) valid() bool { return m&1 == 1 }

//sdnfv:hotpath
func (m mergedAction) action() flowtable.Action {
	rank := uint64(m) >> 48
	dest := flowtable.ServiceID(^uint16(uint64(m) >> 16))
	switch rank {
	case 3:
		return flowtable.Drop()
	case 2:
		return flowtable.Action{Type: flowtable.ActionOut, Dest: dest}
	default:
		return flowtable.Forward(dest)
	}
}
