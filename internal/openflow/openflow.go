// Package openflow implements the SDN control channel between the NF
// Manager's Flow Controller thread and the SDN controller. It is an
// OpenFlow-inspired binary protocol with the two extensions §3.3 calls
// for:
//
//  1. the match's "input port" field carries a Service ID (rules are
//     scoped to the NF the packet just left, not only to physical ports);
//  2. a rule carries a list of actions plus a flag marking the list as a
//     parallel fan-out, with the first action being the default.
//
// It also adds the NF_MESSAGE type used to carry cross-layer messages
// (SkipMe / RequestMe / ChangeDefault / Message) up to the SDNFV
// Application (§3.4 "NF–SDN Coordination").
//
// Framing: every message is an 8-byte header (version, type, length, xid)
// followed by a type-specific body, all big-endian, mirroring OpenFlow's
// header layout.
package openflow

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"sdnfv/internal/flowtable"
	"sdnfv/internal/nf"
	"sdnfv/internal/packet"
)

// Version is the protocol version carried in every header.
const Version = 0x90 // "SDNFV" experimental space

// MsgType discriminates protocol messages.
type MsgType uint8

// Protocol message types.
const (
	TypeHello MsgType = iota
	TypeEchoRequest
	TypeEchoReply
	TypeFeaturesRequest
	TypeFeaturesReply
	TypePacketIn  // data-path miss: header punted to controller
	TypeFlowMod   // rule installation
	TypeNFMessage // cross-layer NF message (SDNFV extension)
	TypeStatsRequest
	TypeStatsReply
	TypeBarrierRequest
	TypeBarrierReply
	TypeError
	TypeFlowRemoved // datapath-initiated timeout eviction report (batched)
)

// String names the message type.
func (t MsgType) String() string {
	names := [...]string{
		"HELLO", "ECHO_REQUEST", "ECHO_REPLY", "FEATURES_REQUEST",
		"FEATURES_REPLY", "PACKET_IN", "FLOW_MOD", "NF_MESSAGE",
		"STATS_REQUEST", "STATS_REPLY", "BARRIER_REQUEST", "BARRIER_REPLY",
		"ERROR", "FLOW_REMOVED",
	}
	if int(t) < len(names) {
		return names[t]
	}
	return fmt.Sprintf("MsgType(%d)", uint8(t))
}

// Header is the fixed 8-byte message prefix.
type Header struct {
	Version uint8
	Type    MsgType
	Length  uint16 // total message length including header
	XID     uint32 // transaction id
}

const headerLen = 8

// Errors returned by the codec.
var (
	ErrBadVersion = errors.New("openflow: bad protocol version")
	ErrTruncated  = errors.New("openflow: truncated message")
	ErrTooLarge   = errors.New("openflow: message exceeds 64KiB")
	ErrBadType    = errors.New("openflow: unknown message type")
)

// Message is any protocol message body.
type Message interface {
	// Type returns the wire type tag.
	Type() MsgType
	// encode appends the body encoding to dst.
	encode(dst []byte) []byte
}

// Hello opens a channel. A datapath (NF host) announces its identity in
// the greeting so the controller can register the session under it
// before the first PacketIn arrives — the multi-switch handshake OpenFlow
// performs with FEATURES, folded into the HELLO for our fixed feature
// set. Zero means the peer stays anonymous (a controller greeting, or a
// legacy single-host manager).
type Hello struct {
	DatapathID uint64
}

// Type implements Message.
func (Hello) Type() MsgType { return TypeHello }
func (m Hello) encode(dst []byte) []byte {
	if m.DatapathID == 0 {
		// Anonymous greetings stay body-less, byte-identical to the
		// pre-datapath frame.
		return dst
	}
	return binary.BigEndian.AppendUint64(dst, m.DatapathID)
}

// Echo carries opaque probe bytes.
type Echo struct {
	Reply bool
	Data  []byte
}

// Type implements Message.
func (e Echo) Type() MsgType {
	if e.Reply {
		return TypeEchoReply
	}
	return TypeEchoRequest
}
func (e Echo) encode(dst []byte) []byte { return append(dst, e.Data...) }

// FeaturesRequest asks a host for its identity.
type FeaturesRequest struct{}

// Type implements Message.
func (FeaturesRequest) Type() MsgType            { return TypeFeaturesRequest }
func (FeaturesRequest) encode(dst []byte) []byte { return dst }

// FeaturesReply advertises a host's datapath id, ports, and hosted
// services (NF instances register with the manager and are exposed here as
// logical ports, §4.1).
type FeaturesReply struct {
	DatapathID uint64
	NumPorts   uint16
	Services   []flowtable.ServiceID
}

// Type implements Message.
func (FeaturesReply) Type() MsgType { return TypeFeaturesReply }
func (f FeaturesReply) encode(dst []byte) []byte {
	dst = be64(dst, f.DatapathID)
	dst = be16(dst, f.NumPorts)
	dst = be16(dst, uint16(len(f.Services)))
	for _, s := range f.Services {
		dst = be16(dst, uint16(s))
	}
	return dst
}

// PacketIn punts a flow-table miss to the controller: the scope where the
// miss occurred, the extracted 5-tuple, and a truncated header snapshot.
type PacketIn struct {
	Scope  flowtable.ServiceID
	Key    packet.FlowKey
	Buffer []byte // first bytes of the packet (header snapshot)
}

// Type implements Message.
func (PacketIn) Type() MsgType { return TypePacketIn }
func (p PacketIn) encode(dst []byte) []byte {
	dst = be16(dst, uint16(p.Scope))
	dst = encodeKey(dst, p.Key)
	dst = be16(dst, uint16(len(p.Buffer)))
	return append(dst, p.Buffer...)
}

// FlowMod installs one rule in the host flow table. The rule's action list
// follows §3.3: first action is the default; Parallel marks a fan-out.
type FlowMod struct {
	Rule flowtable.Rule
}

// Type implements Message.
func (FlowMod) Type() MsgType { return TypeFlowMod }
func (m FlowMod) encode(dst []byte) []byte {
	dst = be16(dst, uint16(m.Rule.Scope))
	dst = encodeMatch(dst, m.Rule.Match)
	flags := byte(0)
	if m.Rule.Parallel {
		flags = 1
	}
	dst = append(dst, flags)
	dst = be16(dst, uint16(m.Rule.Priority))
	// OpenFlow-style lifecycle leases, millisecond granularity on the
	// wire, signed so the "never expire" opt-out (negative) survives the
	// round trip.
	dst = be32(dst, uint32(int32(m.Rule.IdleTimeout/time.Millisecond)))
	dst = be32(dst, uint32(int32(m.Rule.HardTimeout/time.Millisecond)))
	dst = append(dst, byte(len(m.Rule.Actions)))
	for _, a := range m.Rule.Actions {
		dst = append(dst, byte(a.Type))
		dst = be16(dst, uint16(a.Dest))
	}
	return dst
}

// FlowRemoved reports rules the datapath evicted by idle/hard timeout —
// the flow-removed notification of §3.3's OpenFlow lineage, batched per
// sweep so a mass expiry costs one frame, not one per flow. Sent
// datapath→controller; never solicited, never answered.
type FlowRemoved struct {
	Removals []FlowRemovedEntry
}

// FlowRemovedEntry is one evicted rule in a FlowRemoved batch. Reason is
// 0 for idle timeout, 1 for hard timeout (matching
// control.FlowRemovedReason).
type FlowRemovedEntry struct {
	Scope  flowtable.ServiceID
	Match  flowtable.Match
	RuleID uint64
	Reason uint8
}

// Type implements Message.
func (FlowRemoved) Type() MsgType { return TypeFlowRemoved }
func (m FlowRemoved) encode(dst []byte) []byte {
	dst = be16(dst, uint16(len(m.Removals)))
	for _, r := range m.Removals {
		dst = be16(dst, uint16(r.Scope))
		dst = encodeMatch(dst, r.Match)
		dst = be64(dst, r.RuleID)
		dst = append(dst, r.Reason)
	}
	return dst
}

// NFMessage carries a cross-layer message from an NF up through the NF
// Manager to the SDNFV Application.
type NFMessage struct {
	Src flowtable.ServiceID
	Msg nf.Message
}

// Type implements Message.
func (NFMessage) Type() MsgType { return TypeNFMessage }
func (m NFMessage) encode(dst []byte) []byte {
	dst = be16(dst, uint16(m.Src))
	dst = append(dst, byte(m.Msg.Kind))
	dst = encodeMatch(dst, m.Msg.Flows)
	dst = be16(dst, uint16(m.Msg.S))
	dst = be16(dst, uint16(m.Msg.T))
	dst = be16(dst, uint16(len(m.Msg.Key)))
	dst = append(dst, m.Msg.Key...)
	val := fmt.Sprint(m.Msg.Value)
	if m.Msg.Value == nil {
		val = ""
	}
	dst = be16(dst, uint16(len(val)))
	return append(dst, val...)
}

// StatsRequest asks for host counters.
type StatsRequest struct{}

// Type implements Message.
func (StatsRequest) Type() MsgType            { return TypeStatsRequest }
func (StatsRequest) encode(dst []byte) []byte { return dst }

// StatsReply reports host counters.
type StatsReply struct {
	RxPackets uint64
	TxPackets uint64
	Drops     uint64
	Misses    uint64
	Rules     uint32
}

// Type implements Message.
func (StatsReply) Type() MsgType { return TypeStatsReply }
func (s StatsReply) encode(dst []byte) []byte {
	dst = be64(dst, s.RxPackets)
	dst = be64(dst, s.TxPackets)
	dst = be64(dst, s.Drops)
	dst = be64(dst, s.Misses)
	return be32(dst, s.Rules)
}

// Barrier is a synchronization fence; Reply echoes the request XID.
type Barrier struct{ Reply bool }

// Type implements Message.
func (b Barrier) Type() MsgType {
	if b.Reply {
		return TypeBarrierReply
	}
	return TypeBarrierRequest
}
func (Barrier) encode(dst []byte) []byte { return dst }

// Error codes carried by ErrorMsg. Wire clients map these back onto the
// control package's sentinel error taxonomy so errors.Is behaves the
// same for in-process and remote controllers.
const (
	// ErrCodeResolve is a generic rule-compilation failure.
	ErrCodeResolve uint16 = iota + 1
	// ErrCodeUnexpected reports a message type the peer does not serve.
	ErrCodeUnexpected
	// ErrCodeQueueFull maps to control.ErrQueueFull.
	ErrCodeQueueFull
	// ErrCodeNoCompiler maps to control.ErrNoCompiler.
	ErrCodeNoCompiler
	// ErrCodeStopped maps to control.ErrStopped.
	ErrCodeStopped
	// ErrCodeRejected maps to control.ErrRejected (northbound policy
	// refused a cross-layer message).
	ErrCodeRejected
	// ErrCodeInvalid maps to control.ErrInvalidMessage.
	ErrCodeInvalid
)

// ErrorMsg reports a protocol-level failure.
type ErrorMsg struct {
	Code uint16
	Text string
}

// Type implements Message.
func (ErrorMsg) Type() MsgType { return TypeError }
func (e ErrorMsg) encode(dst []byte) []byte {
	dst = be16(dst, e.Code)
	dst = be16(dst, uint16(len(e.Text)))
	return append(dst, e.Text...)
}

// --- wire helpers ---

func be16(dst []byte, v uint16) []byte { return append(dst, byte(v>>8), byte(v)) }
func be32(dst []byte, v uint32) []byte {
	return append(dst, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}
func be64(dst []byte, v uint64) []byte {
	return append(dst,
		byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func encodeKey(dst []byte, k packet.FlowKey) []byte {
	dst = be32(dst, uint32(k.SrcIP))
	dst = be32(dst, uint32(k.DstIP))
	dst = be16(dst, k.SrcPort)
	dst = be16(dst, k.DstPort)
	return append(dst, k.Proto)
}

func decodeKey(b []byte) (packet.FlowKey, []byte, error) {
	if len(b) < 13 {
		return packet.FlowKey{}, nil, ErrTruncated
	}
	k := packet.FlowKey{
		SrcIP:   packet.IP(binary.BigEndian.Uint32(b)),
		DstIP:   packet.IP(binary.BigEndian.Uint32(b[4:])),
		SrcPort: binary.BigEndian.Uint16(b[8:]),
		DstPort: binary.BigEndian.Uint16(b[10:]),
		Proto:   b[12],
	}
	return k, b[13:], nil
}

// match wildcard bitmask bits.
const (
	wcSrcIP = 1 << iota
	wcDstIP
	wcSrcPort
	wcDstPort
	wcProto
)

func encodeMatch(dst []byte, m flowtable.Match) []byte {
	var mask byte
	var srcIP, dstIP uint32
	var srcPort, dstPort uint16
	var proto uint8
	if m.SrcIP != nil {
		mask |= wcSrcIP
		srcIP = uint32(*m.SrcIP)
	}
	if m.DstIP != nil {
		mask |= wcDstIP
		dstIP = uint32(*m.DstIP)
	}
	if m.SrcPort != nil {
		mask |= wcSrcPort
		srcPort = *m.SrcPort
	}
	if m.DstPort != nil {
		mask |= wcDstPort
		dstPort = *m.DstPort
	}
	if m.Proto != nil {
		mask |= wcProto
		proto = *m.Proto
	}
	dst = append(dst, mask)
	dst = be32(dst, srcIP)
	dst = be32(dst, dstIP)
	dst = be16(dst, srcPort)
	dst = be16(dst, dstPort)
	return append(dst, proto)
}

func decodeMatch(b []byte) (flowtable.Match, []byte, error) {
	if len(b) < 14 {
		return flowtable.Match{}, nil, ErrTruncated
	}
	mask := b[0]
	var m flowtable.Match
	if mask&wcSrcIP != 0 {
		v := packet.IP(binary.BigEndian.Uint32(b[1:]))
		m.SrcIP = &v
	}
	if mask&wcDstIP != 0 {
		v := packet.IP(binary.BigEndian.Uint32(b[5:]))
		m.DstIP = &v
	}
	if mask&wcSrcPort != 0 {
		v := binary.BigEndian.Uint16(b[9:])
		m.SrcPort = &v
	}
	if mask&wcDstPort != 0 {
		v := binary.BigEndian.Uint16(b[11:])
		m.DstPort = &v
	}
	if mask&wcProto != 0 {
		v := b[13]
		m.Proto = &v
	}
	return m, b[14:], nil
}

// Encode serializes msg with the given transaction id into a wire frame.
func Encode(msg Message, xid uint32) ([]byte, error) {
	body := msg.encode(make([]byte, 0, 64))
	total := headerLen + len(body)
	if total > 0xffff {
		return nil, ErrTooLarge
	}
	frame := make([]byte, 0, total)
	frame = append(frame, Version, byte(msg.Type()))
	frame = be16(frame, uint16(total))
	frame = be32(frame, xid)
	return append(frame, body...), nil
}

// Decode parses one complete frame produced by Encode.
func Decode(frame []byte) (Message, Header, error) {
	var h Header
	if len(frame) < headerLen {
		return nil, h, ErrTruncated
	}
	h.Version = frame[0]
	h.Type = MsgType(frame[1])
	h.Length = binary.BigEndian.Uint16(frame[2:])
	h.XID = binary.BigEndian.Uint32(frame[4:])
	if h.Version != Version {
		return nil, h, ErrBadVersion
	}
	if int(h.Length) != len(frame) {
		return nil, h, ErrTruncated
	}
	b := frame[headerLen:]
	switch h.Type {
	case TypeHello:
		var hello Hello
		if len(b) >= 8 {
			hello.DatapathID = binary.BigEndian.Uint64(b)
		}
		return hello, h, nil
	case TypeEchoRequest:
		return Echo{Data: append([]byte(nil), b...)}, h, nil
	case TypeEchoReply:
		return Echo{Reply: true, Data: append([]byte(nil), b...)}, h, nil
	case TypeFeaturesRequest:
		return FeaturesRequest{}, h, nil
	case TypeFeaturesReply:
		return decodeFeaturesReply(b, h)
	case TypePacketIn:
		return decodePacketIn(b, h)
	case TypeFlowMod:
		return decodeFlowMod(b, h)
	case TypeNFMessage:
		return decodeNFMessage(b, h)
	case TypeStatsRequest:
		return StatsRequest{}, h, nil
	case TypeStatsReply:
		return decodeStatsReply(b, h)
	case TypeBarrierRequest:
		return Barrier{}, h, nil
	case TypeBarrierReply:
		return Barrier{Reply: true}, h, nil
	case TypeError:
		return decodeError(b, h)
	case TypeFlowRemoved:
		return decodeFlowRemoved(b, h)
	default:
		return nil, h, ErrBadType
	}
}

func decodeFlowRemoved(b []byte, h Header) (Message, Header, error) {
	if len(b) < 2 {
		return nil, h, ErrTruncated
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	var m FlowRemoved
	for i := 0; i < n; i++ {
		if len(b) < 2 {
			return nil, h, ErrTruncated
		}
		var e FlowRemovedEntry
		e.Scope = flowtable.ServiceID(binary.BigEndian.Uint16(b))
		var err error
		e.Match, b, err = decodeMatch(b[2:])
		if err != nil {
			return nil, h, err
		}
		if len(b) < 9 {
			return nil, h, ErrTruncated
		}
		e.RuleID = binary.BigEndian.Uint64(b)
		e.Reason = b[8]
		b = b[9:]
		m.Removals = append(m.Removals, e)
	}
	return m, h, nil
}

func decodeFeaturesReply(b []byte, h Header) (Message, Header, error) {
	if len(b) < 12 {
		return nil, h, ErrTruncated
	}
	f := FeaturesReply{
		DatapathID: binary.BigEndian.Uint64(b),
		NumPorts:   binary.BigEndian.Uint16(b[8:]),
	}
	n := int(binary.BigEndian.Uint16(b[10:]))
	b = b[12:]
	if len(b) < 2*n {
		return nil, h, ErrTruncated
	}
	for i := 0; i < n; i++ {
		f.Services = append(f.Services, flowtable.ServiceID(binary.BigEndian.Uint16(b[2*i:])))
	}
	return f, h, nil
}

func decodePacketIn(b []byte, h Header) (Message, Header, error) {
	if len(b) < 2 {
		return nil, h, ErrTruncated
	}
	p := PacketIn{Scope: flowtable.ServiceID(binary.BigEndian.Uint16(b))}
	var err error
	p.Key, b, err = decodeKey(b[2:])
	if err != nil {
		return nil, h, err
	}
	if len(b) < 2 {
		return nil, h, ErrTruncated
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if len(b) < n {
		return nil, h, ErrTruncated
	}
	p.Buffer = append([]byte(nil), b[:n]...)
	return p, h, nil
}

func decodeFlowMod(b []byte, h Header) (Message, Header, error) {
	if len(b) < 2 {
		return nil, h, ErrTruncated
	}
	var m FlowMod
	m.Rule.Scope = flowtable.ServiceID(binary.BigEndian.Uint16(b))
	var err error
	m.Rule.Match, b, err = decodeMatch(b[2:])
	if err != nil {
		return nil, h, err
	}
	if len(b) < 12 {
		return nil, h, ErrTruncated
	}
	m.Rule.Parallel = b[0]&1 == 1
	m.Rule.Priority = int(binary.BigEndian.Uint16(b[1:]))
	m.Rule.IdleTimeout = time.Duration(int32(binary.BigEndian.Uint32(b[3:]))) * time.Millisecond
	m.Rule.HardTimeout = time.Duration(int32(binary.BigEndian.Uint32(b[7:]))) * time.Millisecond
	n := int(b[11])
	b = b[12:]
	if len(b) < 3*n {
		return nil, h, ErrTruncated
	}
	for i := 0; i < n; i++ {
		m.Rule.Actions = append(m.Rule.Actions, flowtable.Action{
			Type: flowtable.ActionType(b[3*i]),
			Dest: flowtable.ServiceID(binary.BigEndian.Uint16(b[3*i+1:])),
		})
	}
	return m, h, nil
}

func decodeNFMessage(b []byte, h Header) (Message, Header, error) {
	if len(b) < 3 {
		return nil, h, ErrTruncated
	}
	var m NFMessage
	m.Src = flowtable.ServiceID(binary.BigEndian.Uint16(b))
	m.Msg.Kind = nf.MsgKind(b[2])
	var err error
	m.Msg.Flows, b, err = decodeMatch(b[3:])
	if err != nil {
		return nil, h, err
	}
	if len(b) < 6 {
		return nil, h, ErrTruncated
	}
	m.Msg.S = flowtable.ServiceID(binary.BigEndian.Uint16(b))
	m.Msg.T = flowtable.ServiceID(binary.BigEndian.Uint16(b[2:]))
	klen := int(binary.BigEndian.Uint16(b[4:]))
	b = b[6:]
	if len(b) < klen+2 {
		return nil, h, ErrTruncated
	}
	m.Msg.Key = string(b[:klen])
	b = b[klen:]
	vlen := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if len(b) < vlen {
		return nil, h, ErrTruncated
	}
	if vlen > 0 {
		m.Msg.Value = string(b[:vlen])
	}
	return m, h, nil
}

func decodeStatsReply(b []byte, h Header) (Message, Header, error) {
	if len(b) < 36 {
		return nil, h, ErrTruncated
	}
	return StatsReply{
		RxPackets: binary.BigEndian.Uint64(b),
		TxPackets: binary.BigEndian.Uint64(b[8:]),
		Drops:     binary.BigEndian.Uint64(b[16:]),
		Misses:    binary.BigEndian.Uint64(b[24:]),
		Rules:     binary.BigEndian.Uint32(b[32:]),
	}, h, nil
}

func decodeError(b []byte, h Header) (Message, Header, error) {
	if len(b) < 4 {
		return nil, h, ErrTruncated
	}
	n := int(binary.BigEndian.Uint16(b[2:]))
	if len(b) < 4+n {
		return nil, h, ErrTruncated
	}
	return ErrorMsg{Code: binary.BigEndian.Uint16(b), Text: string(b[4 : 4+n])}, h, nil
}

// Conn frames messages over an io.ReadWriter (normally a net.Conn). It is
// not safe for concurrent writers; callers serialize sends.
type Conn struct {
	rw   io.ReadWriter
	xid  uint32
	rbuf []byte
}

// NewConn wraps rw.
func NewConn(rw io.ReadWriter) *Conn {
	return &Conn{rw: rw, rbuf: make([]byte, 0xffff)}
}

// Send encodes and writes msg, returning the transaction id used.
func (c *Conn) Send(msg Message) (uint32, error) {
	c.xid++
	frame, err := Encode(msg, c.xid)
	if err != nil {
		return 0, err
	}
	_, err = c.rw.Write(frame)
	return c.xid, err
}

// SendXID encodes and writes msg with an explicit transaction id (used for
// replies that must echo the request XID).
func (c *Conn) SendXID(msg Message, xid uint32) error {
	frame, err := Encode(msg, xid)
	if err != nil {
		return err
	}
	_, err = c.rw.Write(frame)
	return err
}

// Recv reads and decodes the next message.
func (c *Conn) Recv() (Message, Header, error) {
	hdr := c.rbuf[:headerLen]
	if _, err := io.ReadFull(c.rw, hdr); err != nil {
		return nil, Header{}, err
	}
	length := int(binary.BigEndian.Uint16(hdr[2:]))
	if length < headerLen {
		return nil, Header{}, ErrTruncated
	}
	frame := c.rbuf[:length]
	if _, err := io.ReadFull(c.rw, frame[headerLen:]); err != nil {
		return nil, Header{}, err
	}
	return Decode(frame)
}
