package openflow

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"sdnfv/internal/flowtable"
	"sdnfv/internal/nf"
	"sdnfv/internal/packet"
)

func roundtrip(t *testing.T, msg Message) Message {
	t.Helper()
	frame, err := Encode(msg, 7)
	if err != nil {
		t.Fatalf("Encode(%v): %v", msg, err)
	}
	got, hdr, err := Decode(frame)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if hdr.XID != 7 || hdr.Type != msg.Type() || int(hdr.Length) != len(frame) {
		t.Fatalf("header = %+v", hdr)
	}
	return got
}

func TestRoundtripSimpleMessages(t *testing.T) {
	for _, msg := range []Message{
		Hello{},
		Hello{DatapathID: 0xabc}, // datapath-announcing greeting
		Echo{Data: []byte("ping")},
		Echo{Reply: true, Data: []byte("pong")},
		FeaturesRequest{},
		StatsRequest{},
		Barrier{},
		Barrier{Reply: true},
		ErrorMsg{Code: 3, Text: "boom"},
		StatsReply{RxPackets: 1, TxPackets: 2, Drops: 3, Misses: 4, Rules: 5},
		FeaturesReply{DatapathID: 0xdead, NumPorts: 2, Services: []flowtable.ServiceID{10, 11}},
	} {
		got := roundtrip(t, msg)
		if !reflect.DeepEqual(got, msg) {
			t.Errorf("roundtrip %T: got %+v want %+v", msg, got, msg)
		}
	}
}

func TestRoundtripPacketIn(t *testing.T) {
	msg := PacketIn{
		Scope: flowtable.Port(1),
		Key: packet.FlowKey{
			SrcIP: packet.IPv4(1, 2, 3, 4), DstIP: packet.IPv4(5, 6, 7, 8),
			SrcPort: 1234, DstPort: 80, Proto: 17,
		},
		Buffer: []byte{0xde, 0xad, 0xbe, 0xef},
	}
	got := roundtrip(t, msg).(PacketIn)
	if got.Scope != msg.Scope || got.Key != msg.Key || !bytes.Equal(got.Buffer, msg.Buffer) {
		t.Fatalf("got %+v", got)
	}
}

func TestRoundtripFlowMod(t *testing.T) {
	src := packet.IPv4(9, 9, 9, 9)
	msg := FlowMod{Rule: flowtable.Rule{
		Scope:       flowtable.ServiceID(12),
		Match:       flowtable.Match{SrcIP: &src},
		Actions:     []flowtable.Action{flowtable.Forward(13), flowtable.Out(1), flowtable.Drop()},
		Parallel:    true,
		Priority:    42,
		IdleTimeout: 1500 * time.Millisecond,
		HardTimeout: time.Minute,
	}}
	got := roundtrip(t, msg).(FlowMod)
	if got.Rule.Scope != msg.Rule.Scope || !got.Rule.Parallel || got.Rule.Priority != 42 {
		t.Fatalf("got %+v", got.Rule)
	}
	if len(got.Rule.Actions) != 3 || got.Rule.Actions[1] != flowtable.Out(1) {
		t.Fatalf("actions = %v", got.Rule.Actions)
	}
	if got.Rule.Match.SrcIP == nil || *got.Rule.Match.SrcIP != src || got.Rule.Match.DstIP != nil {
		t.Fatalf("match = %+v", got.Rule.Match)
	}
	if got.Rule.IdleTimeout != msg.Rule.IdleTimeout || got.Rule.HardTimeout != msg.Rule.HardTimeout {
		t.Fatalf("timeouts = %v/%v", got.Rule.IdleTimeout, got.Rule.HardTimeout)
	}
}

// TestFlowModTimeoutOptOutSurvivesWire: the negative never-expire
// opt-out must round-trip (millisecond precision, signed on the wire).
func TestFlowModTimeoutOptOutSurvivesWire(t *testing.T) {
	msg := FlowMod{Rule: flowtable.Rule{
		Scope:       3,
		Actions:     []flowtable.Action{flowtable.Drop()},
		IdleTimeout: -time.Millisecond,
		HardTimeout: -time.Millisecond,
	}}
	got := roundtrip(t, msg).(FlowMod)
	if got.Rule.IdleTimeout >= 0 || got.Rule.HardTimeout >= 0 {
		t.Fatalf("opt-out lost: %v/%v", got.Rule.IdleTimeout, got.Rule.HardTimeout)
	}
}

func TestRoundtripFlowRemoved(t *testing.T) {
	key := packet.FlowKey{
		SrcIP: packet.IPv4(1, 2, 3, 4), DstIP: packet.IPv4(5, 6, 7, 8),
		SrcPort: 1234, DstPort: 80, Proto: 17,
	}
	msg := FlowRemoved{Removals: []FlowRemovedEntry{
		{Scope: 9, Match: flowtable.ExactMatch(key), RuleID: 0xdeadbeefcafe, Reason: 0},
		{Scope: flowtable.Port(1), Match: flowtable.MatchSrcIP(key.SrcIP), RuleID: 7, Reason: 1},
	}}
	got := roundtrip(t, msg).(FlowRemoved)
	if !reflect.DeepEqual(got, msg) {
		t.Fatalf("got %+v want %+v", got, msg)
	}
}

func TestRoundtripNFMessage(t *testing.T) {
	msg := NFMessage{
		Src: 50,
		Msg: nf.Message{
			Kind:  nf.MsgChangeDefault,
			Flows: flowtable.MatchSrcIP(packet.IPv4(10, 0, 0, 1)),
			S:     50, T: 51,
			Key: "alarm", Value: "high",
		},
	}
	got := roundtrip(t, msg).(NFMessage)
	if got.Src != 50 || got.Msg.Kind != nf.MsgChangeDefault || got.Msg.S != 50 || got.Msg.T != 51 {
		t.Fatalf("got %+v", got)
	}
	if got.Msg.Key != "alarm" || got.Msg.Value != "high" {
		t.Fatalf("kv = %q %v", got.Msg.Key, got.Msg.Value)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode([]byte{1, 2, 3}); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short frame: %v", err)
	}
	frame, _ := Encode(Hello{}, 1)
	frame[0] = 0x01 // wrong version
	if _, _, err := Decode(frame); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("bad version: %v", err)
	}
	frame, _ = Encode(Hello{}, 1)
	frame[1] = 0xEE // unknown type
	if _, _, err := Decode(frame); !errors.Is(err, ErrBadType) {
		t.Fatalf("bad type: %v", err)
	}
	frame, _ = Encode(Echo{Data: []byte("abc")}, 1)
	if _, _, err := Decode(frame[:len(frame)-1]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated body: %v", err)
	}
}

func TestConnFraming(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	if _, err := c.Send(Echo{Data: []byte("a")}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Send(Barrier{}); err != nil {
		t.Fatal(err)
	}
	r := NewConn(&buf)
	m1, h1, err := r.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m1.(Echo); !ok || h1.XID != 1 {
		t.Fatalf("first = %T xid=%d", m1, h1.XID)
	}
	m2, h2, err := r.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m2.(Barrier); !ok || h2.XID != 2 {
		t.Fatalf("second = %T xid=%d", m2, h2.XID)
	}
}

// Property: FlowMod roundtrips preserve every action and wildcard shape.
func TestFlowModRoundtripProperty(t *testing.T) {
	f := func(scope uint16, nActs uint8, prio uint8, parallel bool, wildMask uint8, idleMs int32, hardMs int32) bool {
		r := flowtable.Rule{
			Scope:       flowtable.ServiceID(scope),
			Parallel:    parallel,
			Priority:    int(prio),
			IdleTimeout: time.Duration(idleMs) * time.Millisecond,
			HardTimeout: time.Duration(hardMs) * time.Millisecond,
		}
		if wildMask&1 != 0 {
			ip := packet.IPv4(1, 2, 3, 4)
			r.Match.SrcIP = &ip
		}
		if wildMask&2 != 0 {
			p := uint16(99)
			r.Match.DstPort = &p
		}
		n := int(nActs%5) + 1
		for i := 0; i < n; i++ {
			r.Actions = append(r.Actions, flowtable.Forward(flowtable.ServiceID(i+1)))
		}
		frame, err := Encode(FlowMod{Rule: r}, 1)
		if err != nil {
			return false
		}
		got, _, err := Decode(frame)
		if err != nil {
			return false
		}
		fm := got.(FlowMod)
		if fm.Rule.Scope != r.Scope || fm.Rule.Parallel != r.Parallel || len(fm.Rule.Actions) != n {
			return false
		}
		if fm.Rule.IdleTimeout != r.IdleTimeout || fm.Rule.HardTimeout != r.HardTimeout {
			return false
		}
		return fm.Rule.Match.Specificity() == r.Match.Specificity()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// exemplarFor returns a representative non-trivial message for every
// wire type; TestRoundtripEveryMessageType fails when a new MsgType has
// no exemplar, so coverage cannot silently rot.
func exemplarFor(t MsgType) Message {
	key := packet.FlowKey{
		SrcIP: packet.IPv4(1, 2, 3, 4), DstIP: packet.IPv4(5, 6, 7, 8),
		SrcPort: 1234, DstPort: 80, Proto: 17,
	}
	switch t {
	case TypeHello:
		return Hello{DatapathID: 0x42}
	case TypeEchoRequest:
		return Echo{Data: []byte("ping")}
	case TypeEchoReply:
		return Echo{Reply: true, Data: []byte("pong")}
	case TypeFeaturesRequest:
		return FeaturesRequest{}
	case TypeFeaturesReply:
		return FeaturesReply{DatapathID: 0xfeedface, NumPorts: 4, Services: []flowtable.ServiceID{1, 2, 3}}
	case TypePacketIn:
		return PacketIn{Scope: flowtable.Port(2), Key: key, Buffer: []byte{1, 2, 3}}
	case TypeFlowMod:
		return FlowMod{Rule: flowtable.Rule{
			Scope:    9,
			Match:    flowtable.ExactMatch(key),
			Actions:  []flowtable.Action{flowtable.Forward(10), flowtable.Drop()},
			Parallel: true,
			Priority: 3,
		}}
	case TypeNFMessage:
		return NFMessage{Src: 7, Msg: nf.Message{
			Kind: nf.MsgChangeDefault, Flows: flowtable.ExactMatch(key), S: 7, T: 8,
			Key: "k", Value: "v",
		}}
	case TypeStatsRequest:
		return StatsRequest{}
	case TypeStatsReply:
		return StatsReply{RxPackets: 1, TxPackets: 2, Drops: 3, Misses: 4, Rules: 5}
	case TypeBarrierRequest:
		return Barrier{}
	case TypeBarrierReply:
		return Barrier{Reply: true}
	case TypeError:
		return ErrorMsg{Code: ErrCodeQueueFull, Text: "full"}
	case TypeFlowRemoved:
		return FlowRemoved{Removals: []FlowRemovedEntry{
			{Scope: 9, Match: flowtable.ExactMatch(key), RuleID: 0xbeef, Reason: 1},
		}}
	default:
		return nil
	}
}

// TestRoundtripEveryMessageType encode/decodes one exemplar per wire
// type and requires structural equality.
func TestRoundtripEveryMessageType(t *testing.T) {
	for mt := TypeHello; mt <= TypeFlowRemoved; mt++ {
		msg := exemplarFor(mt)
		if msg == nil {
			t.Fatalf("no exemplar for %s — extend exemplarFor alongside the protocol", mt)
		}
		if msg.Type() != mt {
			t.Fatalf("exemplar for %s reports type %s", mt, msg.Type())
		}
		got := roundtrip(t, msg)
		if !reflect.DeepEqual(got, msg) {
			t.Errorf("roundtrip %s: got %+v want %+v", mt, got, msg)
		}
	}
}

// readerConn adapts a read-only byte stream to the Conn's ReadWriter.
type readerConn struct {
	r io.Reader
}

func (c readerConn) Read(p []byte) (int, error)  { return c.r.Read(p) }
func (c readerConn) Write(p []byte) (int, error) { return len(p), nil }

// FuzzConnRecv throws arbitrary byte streams at the framing layer: Recv
// must terminate with a clean error — never panic, hang, or read past
// the declared frame — on truncated headers, lying length fields, and
// unknown types.
func FuzzConnRecv(f *testing.F) {
	valid, _ := Encode(PacketIn{Scope: flowtable.Port(1), Buffer: []byte{1}}, 3)
	f.Add(valid)
	f.Add(valid[:3])                                              // truncated header
	f.Add(append(valid, 0xff))                                    // trailing garbage
	f.Add([]byte{Version, 0xEE, 0x00, 0x08, 0, 0, 0, 1})          // unknown type
	f.Add([]byte{Version, 0x00, 0xff, 0xff, 0, 0, 0, 1})          // length says 64KiB, body absent
	f.Add([]byte{Version, 0x05, 0x00, 0x04, 0, 0, 0, 1, 9, 9, 9}) // length < header size
	two := append(append([]byte{}, valid...), valid...)
	f.Add(two) // back-to-back frames
	removed, _ := Encode(FlowRemoved{Removals: []FlowRemovedEntry{
		{Scope: flowtable.Port(2), RuleID: 99, Reason: 1},
	}}, 5)
	f.Add(removed)
	f.Add(removed[:len(removed)-4]) // removal entry cut mid-ruleID
	f.Fuzz(func(t *testing.T, data []byte) {
		c := NewConn(readerConn{r: bytes.NewReader(data)})
		for i := 0; i < 64; i++ {
			msg, hdr, err := c.Recv()
			if err != nil {
				return // clean termination
			}
			if msg == nil {
				t.Fatalf("nil message with nil error (hdr %+v)", hdr)
			}
			if int(hdr.Length) < 8 {
				t.Fatalf("accepted frame with impossible length %d", hdr.Length)
			}
			// A decoded message must re-encode within the wire limit.
			if _, err := Encode(msg, hdr.XID); err != nil {
				t.Fatalf("decoded message fails to re-encode: %v", err)
			}
		}
	})
}

func BenchmarkEncodeDecodeFlowMod(b *testing.B) {
	msg := FlowMod{Rule: flowtable.Rule{
		Scope:   flowtable.ServiceID(12),
		Actions: []flowtable.Action{flowtable.Forward(13), flowtable.Out(1)},
	}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		frame, _ := Encode(msg, uint32(i))
		if _, _, err := Decode(frame); err != nil {
			b.Fatal(err)
		}
	}
}
