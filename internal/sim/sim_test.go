package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	env := NewEnv(1)
	var order []int
	env.Schedule(3, func() { order = append(order, 3) })
	env.Schedule(1, func() { order = append(order, 1) })
	env.Schedule(2, func() { order = append(order, 2) })
	env.Run(10)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if env.Now() != 10 {
		t.Fatalf("Now = %v", env.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	env := NewEnv(1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		env.Schedule(1, func() { order = append(order, i) })
	}
	env.Run(2)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events reordered: %v", order)
		}
	}
}

func TestRunUntilBoundary(t *testing.T) {
	env := NewEnv(1)
	fired := 0
	env.Schedule(5, func() { fired++ })
	env.Schedule(15, func() { fired++ })
	n := env.Run(10)
	if n != 1 || fired != 1 {
		t.Fatalf("processed %d fired %d", n, fired)
	}
	if env.Pending() != 1 {
		t.Fatalf("pending = %d", env.Pending())
	}
	env.Run(20)
	if fired != 2 {
		t.Fatal("second event never fired")
	}
}

func TestNestedScheduling(t *testing.T) {
	env := NewEnv(1)
	var times []Time
	env.Schedule(1, func() {
		times = append(times, env.Now())
		env.Schedule(1, func() {
			times = append(times, env.Now())
		})
	})
	env.Run(5)
	if len(times) != 2 || times[0] != 1 || times[1] != 2 {
		t.Fatalf("times = %v", times)
	}
}

func TestEvery(t *testing.T) {
	env := NewEnv(1)
	count := 0
	env.Every(1, func() bool {
		count++
		return count < 5
	})
	env.Run(100)
	if count != 5 {
		t.Fatalf("count = %d", count)
	}
}

func TestStop(t *testing.T) {
	env := NewEnv(1)
	count := 0
	env.Every(1, func() bool { count++; return true })
	env.Schedule(3.5, env.Stop)
	env.Run(100)
	if count != 3 {
		t.Fatalf("count = %d, want 3 (stopped at 3.5)", count)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []float64 {
		env := NewEnv(42)
		var samples []float64
		for i := 0; i < 100; i++ {
			env.Schedule(env.Exp(1.0), func() {
				samples = append(samples, env.Now())
			})
		}
		env.Run(1000)
		return samples
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different event counts")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: events always fire in nondecreasing time order.
func TestMonotoneProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		env := NewEnv(7)
		last := -1.0
		okOrder := true
		for _, d := range delays {
			env.Schedule(float64(d)/100, func() {
				if env.Now() < last {
					okOrder = false
				}
				last = env.Now()
			})
		}
		env.Run(1e6)
		return okOrder
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQueueFIFOAndUtilization(t *testing.T) {
	env := NewEnv(1)
	q := NewQueue(env, 0)
	var done []int
	for i := 0; i < 3; i++ {
		i := i
		q.Offer(1.0, func() { done = append(done, i) })
	}
	env.Run(10)
	if len(done) != 3 || done[0] != 0 || done[2] != 2 {
		t.Fatalf("done = %v", done)
	}
	// 3 seconds busy out of 10.
	if u := q.Utilization(); math.Abs(u-0.3) > 1e-9 {
		t.Fatalf("utilization = %v", u)
	}
	if q.Served != 3 {
		t.Fatalf("served = %d", q.Served)
	}
}

func TestQueueCapacityDrops(t *testing.T) {
	env := NewEnv(1)
	q := NewQueue(env, 2)
	accepted := 0
	for i := 0; i < 5; i++ {
		if q.Offer(1.0, nil) {
			accepted++
		}
	}
	// 1 in service + 2 waiting = 3 accepted.
	if accepted != 3 || q.Dropped != 2 {
		t.Fatalf("accepted=%d dropped=%d", accepted, q.Dropped)
	}
	env.Run(10)
	if q.Served != 3 {
		t.Fatalf("served = %d", q.Served)
	}
}

func TestQueueBackToBackServes(t *testing.T) {
	// Jobs offered while busy must start exactly when the server frees.
	env := NewEnv(1)
	q := NewQueue(env, 0)
	var t2 Time
	q.Offer(2.0, nil)
	q.Offer(3.0, func() { t2 = env.Now() })
	env.Run(10)
	if t2 != 5.0 {
		t.Fatalf("second completion at %v, want 5", t2)
	}
}

func TestRandHelpers(t *testing.T) {
	env := NewEnv(3)
	if v := env.Exp(0); v != 0 {
		t.Fatal("Exp(0) should be 0")
	}
	for i := 0; i < 100; i++ {
		u := env.Uniform(2, 5)
		if u < 2 || u >= 5 {
			t.Fatalf("Uniform out of range: %v", u)
		}
		z := env.Zipf(1.2, 100)
		if z >= 100 {
			t.Fatalf("Zipf out of range: %v", z)
		}
	}
	if env.Uniform(5, 2) != 5 {
		t.Fatal("degenerate Uniform should return lo")
	}
}
