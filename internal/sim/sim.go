// Package sim is a deterministic discrete-event simulation core. The
// time-series and saturation experiments of the paper (Figs. 1, 8–12) run
// minutes of traffic through multi-host topologies; replaying them in
// virtual time keeps the reproduction fast and bit-for-bit repeatable
// under a fixed seed.
//
// The core is a binary-heap event queue with a virtual clock. Events
// scheduled for the same instant fire in scheduling order (a monotone
// sequence number breaks ties), which the determinism property tests rely
// on.
package sim

import (
	"container/heap"
	"math"
	"math/rand"
)

// Time is simulation time in seconds.
type Time = float64

// Event is a scheduled callback.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Env is a simulation environment: a virtual clock, an event queue, and a
// seeded random source. Not safe for concurrent use — the simulation is
// single-threaded by design (determinism).
type Env struct {
	now    Time
	seq    uint64
	events eventHeap
	rng    *rand.Rand

	processed uint64
	stopped   bool
}

// NewEnv returns an environment starting at t=0 with the given RNG seed.
func NewEnv(seed int64) *Env {
	return &Env{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time in seconds.
func (e *Env) Now() Time { return e.now }

// Rand returns the environment's seeded random source.
func (e *Env) Rand() *rand.Rand { return e.rng }

// Schedule runs fn after delay seconds (delay < 0 is clamped to 0).
func (e *Env) Schedule(delay Time, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.seq++
	heap.Push(&e.events, &event{at: e.now + delay, seq: e.seq, fn: fn})
}

// At runs fn at absolute time t (clamped to now).
func (e *Env) At(t Time, fn func()) {
	e.Schedule(t-e.now, fn)
}

// Every runs fn at the given period starting after one period, until the
// simulation ends or fn returns false.
func (e *Env) Every(period Time, fn func() bool) {
	if period <= 0 {
		return
	}
	var tick func()
	tick = func() {
		if e.stopped {
			return
		}
		if fn() {
			e.Schedule(period, tick)
		}
	}
	e.Schedule(period, tick)
}

// Stop halts the run loop after the current event.
func (e *Env) Stop() { e.stopped = true }

// Run processes events until the queue is empty or virtual time would
// exceed until. It returns the number of events processed.
func (e *Env) Run(until Time) uint64 {
	e.stopped = false
	start := e.processed
	for len(e.events) > 0 && !e.stopped {
		next := e.events[0]
		if next.at > until {
			break
		}
		heap.Pop(&e.events)
		if next.at > e.now {
			e.now = next.at
		}
		next.fn()
		e.processed++
	}
	if e.now < until && !e.stopped {
		e.now = until
	}
	return e.processed - start
}

// Pending returns the number of queued events.
func (e *Env) Pending() int { return len(e.events) }

// Processed returns the total number of events processed.
func (e *Env) Processed() uint64 { return e.processed }

// Exp draws an exponentially distributed delay with the given mean.
func (e *Env) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return e.rng.ExpFloat64() * mean
}

// Uniform draws uniformly from [lo, hi).
func (e *Env) Uniform(lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	return lo + e.rng.Float64()*(hi-lo)
}

// Zipf draws from a Zipf distribution over [0, n) with skew s (s > 1).
func (e *Env) Zipf(s float64, n uint64) uint64 {
	if s <= 1 {
		s = 1.01
	}
	z := rand.NewZipf(e.rng, s, 1, n-1)
	return z.Uint64()
}

// Queue is a FIFO server with a fixed service rate, modeling an NF or link
// as a fluid/packet hybrid: jobs are discrete, service times deterministic
// or caller-supplied. It reports utilization, queue length, and drops when
// bounded.
type Queue struct {
	env *Env
	// Capacity is the maximum number of queued jobs (0 = unbounded).
	Capacity int
	// busy marks the server occupied.
	busy bool
	wait []*job

	// Served and Dropped count completed and rejected jobs.
	Served  uint64
	Dropped uint64

	busySince Time
	busyTotal Time
}

type job struct {
	service Time
	done    func()
}

// NewQueue returns a queue bound to env.
func NewQueue(env *Env, capacity int) *Queue {
	return &Queue{env: env, Capacity: capacity}
}

// Offer submits a job with the given service time; done (may be nil) runs
// at completion. It returns false when the queue is full (job dropped).
func (q *Queue) Offer(service Time, done func()) bool {
	if q.Capacity > 0 && len(q.wait) >= q.Capacity {
		q.Dropped++
		return false
	}
	j := &job{service: service, done: done}
	if !q.busy {
		q.start(j)
	} else {
		q.wait = append(q.wait, j)
	}
	return true
}

// Len returns the number of waiting jobs (excluding the one in service).
func (q *Queue) Len() int { return len(q.wait) }

// Busy reports whether the server is occupied.
func (q *Queue) Busy() bool { return q.busy }

// Utilization returns the fraction of time busy since the start.
func (q *Queue) Utilization() float64 {
	t := q.env.Now()
	if t == 0 {
		return 0
	}
	total := q.busyTotal
	if q.busy {
		total += t - q.busySince
	}
	u := total / t
	return math.Min(u, 1)
}

func (q *Queue) start(j *job) {
	q.busy = true
	q.busySince = q.env.Now()
	q.env.Schedule(j.service, func() {
		q.busyTotal += q.env.Now() - q.busySince
		q.Served++
		if j.done != nil {
			j.done()
		}
		if len(q.wait) > 0 {
			next := q.wait[0]
			copy(q.wait, q.wait[1:])
			q.wait = q.wait[:len(q.wait)-1]
			q.start(next)
		} else {
			q.busy = false
		}
	})
}
