package app

// This file is the multi-host half of the SDNFV Application: compiling
// the *global* service graph plus a placement assignment into per-host
// flow tables (Fig. 2, §3.2 — one controller managing a set of NF
// hosts). A hop between services on the same host compiles to the usual
// Forward action; a hop that crosses hosts compiles to an ActionOut onto
// the fabric link port wired toward the destination host, paired with a
// port-scoped ingress rule on that host that resumes the chain at the
// right Service-ID scope. Service-ID scoping therefore stays correct at
// every hop even though the packet changed machines in between.

import (
	"errors"
	"fmt"
	"sort"

	"sdnfv/internal/control"
	"sdnfv/internal/flowtable"
	"sdnfv/internal/graph"
)

// Errors returned by deployment compilation.
var (
	ErrUnknownDatapath = errors.New("app: datapath not in deployment")
	ErrUnassigned      = errors.New("app: service not assigned to a host")
	ErrNoChannel       = errors.New("app: no fabric channel between hosts")
	ErrNoEdge          = errors.New("app: graph has no such edge")
)

// Channel is one unidirectional inter-host conduit: frames the source
// host transmits out port Out arrive on the destination host's NIC port
// In. The cluster fabric realizes channels as links; the compiler
// consumes one channel per graph edge that crosses the host pair, so a
// flow that visits the same host twice still enters by a distinct port
// each time and lands at the correct Service-ID scope.
type Channel struct {
	Out int
	In  int
}

// HostPair is an ordered (source, destination) datapath pair.
type HostPair struct {
	Src, Dst control.DatapathID
}

// Deployment maps a validated service graph onto a set of hosts: the
// placement assignment (which host runs each service — typically from
// the placement engine, §3.5), the traffic entry point, and the fabric
// channels available between host pairs. Compile turns it into per-host
// flow tables. A Deployment is immutable once compiled.
type Deployment struct {
	// Graph is the global service graph spanning all hosts.
	Graph *graph.Graph
	// Assign maps every service vertex to the datapath hosting it.
	Assign map[flowtable.ServiceID]control.DatapathID
	// Ingress is the host where traffic enters the deployment, on NIC
	// port IngressPort (the graph's Source pseudo-vertex lives there).
	Ingress     control.DatapathID
	IngressPort int
	// EgressPort is the local NIC port a host transmits on when a chain
	// reaches Sink on it (the same port number on every host; each
	// host's egress binding decides where those frames go).
	EgressPort int
	// Channels lists the fabric conduits available per ordered host
	// pair, consumed in order by Compile — one per crossing graph edge.
	Channels map[HostPair][]Channel

	// edgeCh records the channel Compile allocated to each crossing
	// edge, for ChangeDefault translation at runtime.
	edgeCh map[[2]flowtable.ServiceID]Channel
}

// HostOf returns the datapath hosting service s (the Ingress host for
// the Source pseudo-vertex). Sink has no host — chains exit wherever
// their last service runs.
func (d *Deployment) HostOf(s flowtable.ServiceID) (control.DatapathID, bool) {
	if s == graph.Source {
		return d.Ingress, true
	}
	dp, ok := d.Assign[s]
	return dp, ok
}

// Hosts returns every datapath the deployment touches, ascending.
func (d *Deployment) Hosts() []control.DatapathID {
	seen := map[control.DatapathID]bool{d.Ingress: true}
	for _, dp := range d.Assign {
		seen[dp] = true
	}
	out := make([]control.DatapathID, 0, len(seen))
	for dp := range seen {
		out = append(out, dp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Compile validates the deployment and produces each host's flow table.
// Every graph edge is compiled — the default edge first (it becomes the
// rule's default action) and the alternatives after it, so runtime
// steering (ChangeDefault, Send-to) finds its target action already in
// the list, exactly as on a single host. Cross-host edges additionally
// emit the destination host's port-scoped ingress rule. Parallel
// segments are not collapsed across a deployment: fan-out sharing one
// packet copy is a single-host memory optimization (§4.2) with no
// cross-machine analogue, so deployed graphs dispatch sequentially.
func (d *Deployment) Compile() (map[control.DatapathID][]flowtable.Rule, error) {
	return d.compile(nil)
}

// compile is the shared compiler body. The channel-allocation pass
// always runs over the whole graph (allocation is deterministic in
// vertex-then-edge order, so a host's rules depend only on the global
// assignment, never on which hosts are being regenerated); the rule-gen
// pass emits rules only for hosts in `only` when it is non-nil.
func (d *Deployment) compile(only map[control.DatapathID]bool) (map[control.DatapathID][]flowtable.Rule, error) {
	if d.Graph == nil {
		return nil, errors.New("app: deployment has no graph")
	}
	if err := d.Graph.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrGraphInvalid, err)
	}
	// Deterministic vertex order: Source, then services ascending.
	ids := []flowtable.ServiceID{graph.Source}
	for _, v := range d.Graph.Vertices() {
		ids = append(ids, v.Service)
		if _, ok := d.Assign[v.Service]; !ok {
			return nil, fmt.Errorf("%w: %s", ErrUnassigned, v.Service)
		}
	}

	// Allocate one channel per crossing edge, in vertex-then-edge order
	// (default edge first — the same order the action lists use).
	used := map[HostPair]int{}
	d.edgeCh = map[[2]flowtable.ServiceID]Channel{}
	for _, u := range ids {
		src, _ := d.HostOf(u)
		for _, e := range d.Graph.Out(u) {
			if e.To == graph.Sink {
				continue
			}
			dst, _ := d.HostOf(e.To)
			if dst == src {
				continue
			}
			pair := HostPair{Src: src, Dst: dst}
			avail := d.Channels[pair]
			if used[pair] >= len(avail) {
				return nil, fmt.Errorf("%w: edge %s->%s needs channel %d of %s->%s but only %d exist",
					ErrNoChannel, u, e.To, used[pair]+1, src, dst, len(avail))
			}
			d.edgeCh[[2]flowtable.ServiceID{u, e.To}] = avail[used[pair]]
			used[pair]++
		}
	}

	want := func(dp control.DatapathID) bool { return only == nil || only[dp] }
	tables := make(map[control.DatapathID][]flowtable.Rule)
	for _, dp := range d.Hosts() {
		if want(dp) {
			tables[dp] = nil
		}
	}
	for _, u := range ids {
		src, _ := d.HostOf(u)
		scope := u
		if u == graph.Source {
			scope = flowtable.Port(d.IngressPort)
		}
		edges := d.Graph.Out(u)
		if len(edges) == 0 {
			continue
		}
		acts := make([]flowtable.Action, 0, len(edges))
		for _, e := range edges {
			act, err := d.EdgeAction(u, e.To)
			if err != nil {
				return nil, err
			}
			acts = append(acts, act)
			if e.To != graph.Sink {
				if dst, _ := d.HostOf(e.To); dst != src && want(dst) {
					// The matching ingress rule: the frame arriving on the
					// channel's In port resumes the chain at e.To's scope.
					ch := d.edgeCh[[2]flowtable.ServiceID{u, e.To}]
					tables[dst] = append(tables[dst], flowtable.Rule{
						Scope:   flowtable.Port(ch.In),
						Match:   flowtable.MatchAll,
						Actions: []flowtable.Action{flowtable.Forward(e.To)},
					})
				}
			}
		}
		if want(src) {
			tables[src] = append(tables[src], flowtable.Rule{
				Scope:   scope,
				Match:   flowtable.MatchAll,
				Actions: acts,
			})
		}
	}
	return tables, nil
}

// sameChannels reports whether two channel maps offer identical conduits
// per host pair, in the same order (order matters: the compiler consumes
// them positionally).
func sameChannels(a, b map[HostPair][]Channel) bool {
	if len(a) != len(b) {
		return false
	}
	for pair, chans := range a {
		other, ok := b[pair]
		if !ok || len(other) != len(chans) {
			return false
		}
		for i := range chans {
			if chans[i] != other[i] {
				return false
			}
		}
	}
	return true
}

// CompileDelta recompiles this deployment incrementally against a
// previous generation: only hosts whose rules can differ are
// regenerated; every other host reuses its previous table verbatim. The
// affected set is the old and new hosts of every moved service plus the
// old and new hosts of both endpoints of every edge incident to a moved
// service — any rule not on one of those hosts compiles byte-identical
// to a full compile, because channel allocation is deterministic and a
// channel assignment can only change when one of the pair's endpoints
// moved. Anything structural (different graph, ingress, ports, or
// channel inventory) falls back to a full compile.
//
// It returns the complete merged per-host tables for the new deployment
// and the sorted list of datapaths whose rules must be reinstalled —
// including hosts the new deployment no longer uses (their entry in the
// returned tables is absent; callers clear them).
func (d *Deployment) CompileDelta(prev *Deployment, prevTables map[control.DatapathID][]flowtable.Rule) (map[control.DatapathID][]flowtable.Rule, []control.DatapathID, error) {
	full := prev == nil || prevTables == nil ||
		prev.Graph != d.Graph ||
		prev.Ingress != d.Ingress ||
		prev.IngressPort != d.IngressPort ||
		prev.EgressPort != d.EgressPort ||
		!sameChannels(prev.Channels, d.Channels)
	if full {
		tables, err := d.compile(nil)
		if err != nil {
			return nil, nil, err
		}
		changed := d.Hosts()
		if prev != nil {
			seen := map[control.DatapathID]bool{}
			for _, dp := range changed {
				seen[dp] = true
			}
			for _, dp := range prev.Hosts() {
				if !seen[dp] {
					changed = append(changed, dp)
				}
			}
			sort.Slice(changed, func(i, j int) bool { return changed[i] < changed[j] })
		}
		return tables, changed, nil
	}

	// Moved services: assignment changed, appeared, or disappeared.
	moved := map[flowtable.ServiceID]bool{}
	for s, dp := range d.Assign {
		if old, ok := prev.Assign[s]; !ok || old != dp {
			moved[s] = true
		}
	}
	for s := range prev.Assign {
		if _, ok := d.Assign[s]; !ok {
			moved[s] = true
		}
	}
	if len(moved) == 0 {
		return prevTables, nil, nil
	}

	affected := map[control.DatapathID]bool{}
	touch := func(s flowtable.ServiceID) {
		if dp, ok := prev.HostOf(s); ok {
			affected[dp] = true
		}
		if dp, ok := d.HostOf(s); ok {
			affected[dp] = true
		}
	}
	for s := range moved {
		touch(s)
	}
	ids := []flowtable.ServiceID{graph.Source}
	for _, v := range d.Graph.Vertices() {
		ids = append(ids, v.Service)
	}
	for _, u := range ids {
		for _, e := range d.Graph.Out(u) {
			if e.To == graph.Sink {
				continue
			}
			if moved[u] || moved[e.To] {
				touch(u)
				touch(e.To)
			}
		}
	}

	fresh, err := d.compile(affected)
	if err != nil {
		return nil, nil, err
	}
	tables := make(map[control.DatapathID][]flowtable.Rule, len(fresh))
	for _, dp := range d.Hosts() {
		if affected[dp] {
			tables[dp] = fresh[dp]
		} else {
			tables[dp] = prevTables[dp]
		}
	}
	changed := make([]control.DatapathID, 0, len(affected))
	for dp := range affected {
		changed = append(changed, dp)
	}
	sort.Slice(changed, func(i, j int) bool { return changed[i] < changed[j] })
	return tables, changed, nil
}

// EdgeAction returns the action that implements graph edge from→to in
// from's host table: Out(EgressPort) when to is Sink, Forward(to) when
// the hosts coincide, and Out onto the allocated channel's egress port
// when the edge crosses hosts. Valid after Compile.
func (d *Deployment) EdgeAction(from, to flowtable.ServiceID) (flowtable.Action, error) {
	if to == graph.Sink {
		return flowtable.Out(d.EgressPort), nil
	}
	src, ok := d.HostOf(from)
	if !ok {
		return flowtable.Action{}, fmt.Errorf("%w: %s", ErrUnassigned, from)
	}
	dst, ok := d.HostOf(to)
	if !ok {
		return flowtable.Action{}, fmt.Errorf("%w: %s", ErrUnassigned, to)
	}
	if src == dst {
		return flowtable.Forward(to), nil
	}
	ch, ok := d.edgeCh[[2]flowtable.ServiceID{from, to}]
	if !ok {
		return flowtable.Action{}, fmt.Errorf("%w: %s->%s", ErrNoEdge, from, to)
	}
	return flowtable.Out(ch.Out), nil
}

// Downstream is the application's path back down to the data plane: a
// scoped rule update applied on one datapath's flow table. The cluster
// fabric implements it for in-process hosts; a wire implementation would
// ship a FLOW_MOD on the host's control channel.
type Downstream interface {
	// UpdateDefault rewrites the default action of the rules at scope
	// matching flows on datapath dp, constrained to actions the rules
	// already list (§3.4: only edges of the original service graph).
	UpdateDefault(dp control.DatapathID, scope flowtable.ServiceID, flows flowtable.Match, def flowtable.Action) error
}

// SetDeployment installs (and compiles) the multi-host deployment,
// switching CompileFlow to per-datapath answers. The compiled wildcard
// tables are cached; per-flow mode specializes them per request.
func (a *App) SetDeployment(d *Deployment) error {
	tables, err := d.Compile()
	if err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.deployment = d
	a.deployed = tables
	return nil
}

// UpdateDeployment swaps the installed deployment for d, recompiling
// incrementally against the current generation (CompileDelta). It
// returns the complete new per-host tables plus the datapaths whose
// rules actually changed — the reconciler reinstalls only those. From
// the moment it returns, CompileFlow answers and steering track d.
func (a *App) UpdateDeployment(d *Deployment) (map[control.DatapathID][]flowtable.Rule, []control.DatapathID, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	tables, changed, err := d.CompileDelta(a.deployment, a.deployed)
	if err != nil {
		return nil, nil, err
	}
	a.deployment = d
	a.deployed = tables
	return tables, changed, nil
}

// Deployment returns the installed deployment (nil in single-host mode).
func (a *App) Deployment() *Deployment {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.deployment
}

// SetDownstream installs the applier used to push translated rule
// updates down to the data plane when cross-layer messages re-route a
// deployed chain.
func (a *App) SetDownstream(ds Downstream) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.downstream = ds
}

// CompileDeployment returns the cached per-host wildcard tables of the
// installed deployment (for bootstrapping hosts before traffic flows).
func (a *App) CompileDeployment() (map[control.DatapathID][]flowtable.Rule, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.deployed == nil {
		return nil, errors.New("app: no deployment installed")
	}
	return a.deployed, nil
}

// steerDeployment applies an accepted ChangeDefault to the deployment:
// the new default of Service's rule on Service's host becomes the
// action that implements the requested edge — Forward for a co-located
// target, Out onto the fabric channel for a remote one (this is how a
// chain hop moves to another host at runtime), Out on the local egress
// port for a port target. The update is constrained to listed actions,
// so a translation the compiled table does not already allow cannot
// take effect.
func (a *App) steerDeployment(dep *Deployment, ds Downstream, cd control.ChangeDefault) error {
	var act flowtable.Action
	if cd.Target.IsPort() {
		act = flowtable.Action{Type: flowtable.ActionOut, Dest: cd.Target}
	} else {
		var err error
		act, err = dep.EdgeAction(cd.Service, cd.Target)
		if err != nil {
			return err
		}
	}
	dp, ok := dep.HostOf(cd.Service)
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnassigned, cd.Service)
	}
	return ds.UpdateDefault(dp, cd.Service, cd.Flows, act)
}
