// Package app implements the SDNFV Application — the top tier of the
// control hierarchy (Fig. 2). It owns the service-graph registry and the
// mapping of flow classes to graphs, drives the SDN Controller (rule
// compilation for new flows) and the NFV Orchestrator (instantiating NFs),
// and validates cross-layer messages arriving from NF Managers before
// they are allowed to affect other hosts (§3.4 "Cross-Layer Control").
//
// App implements control.Northbound, so attaching the application tier
// to a controller is one typed call:
//
//	ctl.SetNorthbound(app.New(app.Config{...}))
package app

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"sdnfv/internal/control"
	"sdnfv/internal/flowtable"
	"sdnfv/internal/graph"
	"sdnfv/internal/packet"
)

// GraphSelector maps a new flow to the name of the service graph that
// should process it. Empty string selects the registry's default graph.
type GraphSelector func(scope flowtable.ServiceID, key packet.FlowKey) string

// Config tunes the application.
type Config struct {
	// IngressPort / EgressPort are used when compiling graphs to rules.
	IngressPort int
	EgressPort  int
	// Selector routes flows to graphs; nil always selects the default.
	Selector GraphSelector
	// TrustNFs disables validation of cross-layer messages (trusted NFs
	// may rewrite anything the graph allows; untrusted ones are checked
	// against the graph's edge set, §3.4).
	TrustNFs bool
	// WildcardRules selects the paper's pre-population mode: compiled
	// rules match all flows. The default (false) is per-flow mode,
	// specializing every rule to the requesting flow's exact 5-tuple.
	WildcardRules bool
}

// App is the SDNFV Application.
type App struct {
	cfg Config

	mu           sync.Mutex
	graphs       map[string]*graph.Graph
	defGraph     string
	msgLog       []LoggedMessage
	policyKV     map[string]any
	listeners    []func(dp control.DatapathID, src flowtable.ServiceID, m control.Message)
	flowsRemoved uint64
	removedSubs  []func(dp control.DatapathID, removals []control.FlowRemoved)

	// deployment, when set, switches the application to multi-host mode:
	// CompileFlow answers with the requesting datapath's slice of the
	// compiled deployment, and accepted ChangeDefault messages are
	// translated to per-host actions and pushed through downstream.
	deployment *Deployment
	deployed   map[control.DatapathID][]flowtable.Rule
	downstream Downstream
}

// LoggedMessage is one validated cross-layer message.
type LoggedMessage struct {
	// Host is the datapath whose NF Manager forwarded the message (zero
	// for anonymous single-host deployments).
	Host control.DatapathID
	Src  flowtable.ServiceID
	Msg  control.Message
	// Accepted reports whether validation allowed the message.
	Accepted bool
	// Reason explains a rejection.
	Reason string
}

// New builds an application.
func New(cfg Config) *App {
	return &App{
		cfg:      cfg,
		graphs:   make(map[string]*graph.Graph),
		policyKV: make(map[string]any),
	}
}

// Errors returned by App operations.
var (
	ErrNoGraph        = errors.New("app: no such service graph")
	ErrGraphInvalid   = errors.New("app: service graph failed validation")
	ErrDuplicateGraph = errors.New("app: duplicate graph name")
)

// RegisterGraph validates and registers g; the first registered graph
// becomes the default.
func (a *App) RegisterGraph(g *graph.Graph) error {
	if err := g.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrGraphInvalid, err)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.graphs[g.Name]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateGraph, g.Name)
	}
	a.graphs[g.Name] = g
	if a.defGraph == "" {
		a.defGraph = g.Name
	}
	return nil
}

// Graph returns the named graph ("" = default).
func (a *App) Graph(name string) (*graph.Graph, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if name == "" {
		name = a.defGraph
	}
	g, ok := a.graphs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoGraph, name)
	}
	return g, nil
}

// GraphNames lists registered graphs.
func (a *App) GraphNames() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	names := make([]string, 0, len(a.graphs))
	for n := range a.graphs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CompileRules picks the graph for the flow and compiles it to host
// rules. The compiled rules match all flows (wildcard) — the paper's
// pre-population mode — unless exact is true, in which case they are
// specialized to the flow's exact 5-tuple (per-flow mode).
func (a *App) CompileRules(scope flowtable.ServiceID, key packet.FlowKey, exact bool) ([]flowtable.Rule, error) {
	name := ""
	if a.cfg.Selector != nil {
		name = a.cfg.Selector(scope, key)
	}
	g, err := a.Graph(name)
	if err != nil {
		return nil, err
	}
	rules, err := g.Rules(a.cfg.IngressPort, a.cfg.EgressPort)
	if err != nil {
		return nil, err
	}
	if exact {
		m := flowtable.ExactMatch(key)
		for i := range rules {
			rules[i].Match = m
		}
	}
	return rules, nil
}

// CompileFlow implements control.Northbound: the rule compiler the SDN
// controller invokes per admitted PacketIn, in the specialization mode
// selected by Config.WildcardRules. With a deployment installed the
// compilation is scoped to the requesting datapath: the host receives
// its own slice of the global service graph (cross-host hops as egress
// actions onto fabric link ports), never another host's rules.
func (a *App) CompileFlow(_ context.Context, dp control.DatapathID, scope flowtable.ServiceID, key packet.FlowKey) ([]flowtable.Rule, error) {
	a.mu.Lock()
	deployed := a.deployed
	a.mu.Unlock()
	if deployed != nil {
		rules, ok := deployed[dp]
		if !ok {
			return nil, fmt.Errorf("%w: %s not in deployment", ErrUnknownDatapath, dp)
		}
		if a.cfg.WildcardRules {
			return rules, nil
		}
		exact := make([]flowtable.Rule, len(rules))
		m := flowtable.ExactMatch(key)
		for i, r := range rules {
			r.Match = m
			exact[i] = r
		}
		return exact, nil
	}
	return a.CompileRules(scope, key, !a.cfg.WildcardRules)
}

// Subscribe registers a listener for accepted cross-layer messages; dp
// is the datapath whose manager forwarded the message.
func (a *App) Subscribe(fn func(dp control.DatapathID, src flowtable.ServiceID, m control.Message)) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.listeners = append(a.listeners, fn)
}

// HandleNFMessage implements control.Northbound: it validates a
// cross-layer message against the service graphs and records it with
// the emitting host's identity. Refusals are reported as errors
// wrapping control.ErrRejected with the reason, and every verdict lands
// in the message log. Validation enforces the §3.4 constraint that NFs
// may only steer flows along edges defined in the original service
// graph; with a deployment installed it additionally checks that the
// emitting service is actually placed on the reporting host, and an
// accepted ChangeDefault is translated to its per-host actions and
// pushed to the affected datapath through the downstream applier (the
// cross-host reroute path).
func (a *App) HandleNFMessage(_ context.Context, dp control.DatapathID, src flowtable.ServiceID, m control.Message) error {
	accepted, reason := a.validate(dp, src, m)
	a.mu.Lock()
	dep, ds := a.deployment, a.downstream
	a.mu.Unlock()
	if cd, ok := m.(control.ChangeDefault); accepted && ok && dep != nil && ds != nil {
		// Steer BEFORE recording the verdict: a translated update the
		// data plane refuses means the reroute did not take effect, and
		// the log must not claim otherwise (nor may subscribers be told
		// it happened).
		if err := a.steerDeployment(dep, ds, cd); err != nil {
			accepted, reason = false, fmt.Sprintf("steering failed: %v", err)
		}
	}
	a.mu.Lock()
	a.msgLog = append(a.msgLog, LoggedMessage{Host: dp, Src: src, Msg: m, Accepted: accepted, Reason: reason})
	if ad, ok := m.(control.AppData); accepted && ok {
		a.policyKV[ad.Key] = ad.Value
	}
	listeners := make([]func(control.DatapathID, flowtable.ServiceID, control.Message), len(a.listeners))
	copy(listeners, a.listeners)
	a.mu.Unlock()
	if !accepted {
		return fmt.Errorf("%w: %s", control.ErrRejected, reason)
	}
	for _, fn := range listeners {
		fn(dp, src, m)
	}
	return nil
}

func (a *App) validate(dp control.DatapathID, src flowtable.ServiceID, m control.Message) (bool, string) {
	if err := m.Validate(); err != nil {
		return false, fmt.Sprintf("invalid message from %s: %v", src, err)
	}
	a.mu.Lock()
	dep := a.deployment
	a.mu.Unlock()
	if dep != nil && !src.IsPort() {
		// Host attribution check: an NF Manager may only speak for
		// services the placement put on it — a message claiming to come
		// from a service hosted elsewhere is spoofed or misrouted.
		if home, ok := dep.HostOf(src); !ok || home != dp {
			return false, fmt.Sprintf("service %s is not placed on %s", src, dp)
		}
	}
	if _, isData := m.(control.AppData); a.cfg.TrustNFs || isData {
		return true, ""
	}
	a.mu.Lock()
	graphs := make([]*graph.Graph, 0, len(a.graphs))
	for _, g := range a.graphs {
		graphs = append(graphs, g)
	}
	a.mu.Unlock()
	switch v := m.(type) {
	case control.ChangeDefault:
		// The new default Service->Target must be an edge in some
		// registered graph. A port-encoded Target is an egress link
		// (the Fig. 8 reroute case); graphs model egress as the Sink
		// pseudo-vertex, so it is legal iff Service may exit the graph.
		want := v.Target
		if v.Target.IsPort() {
			want = graph.Sink
		}
		for _, g := range graphs {
			for _, e := range g.Out(v.Service) {
				if e.To == want {
					return true, ""
				}
			}
		}
		return false, fmt.Sprintf("no graph defines edge %s->%s", v.Service, v.Target)
	case control.SkipMe:
		return a.validateVertex(graphs, v.Service)
	case control.RequestMe:
		return a.validateVertex(graphs, v.Service)
	default:
		return false, fmt.Sprintf("unhandled message %s from %s", m, src)
	}
}

func (a *App) validateVertex(graphs []*graph.Graph, s flowtable.ServiceID) (bool, string) {
	for _, g := range graphs {
		if _, ok := g.Vertex(s); ok {
			return true, ""
		}
	}
	return false, fmt.Sprintf("service %s not in any graph", s)
}

// SubscribeFlowRemoved registers a listener for flow-removed
// notifications forwarded by NF hosts when the data plane evicts
// expired rules.
func (a *App) SubscribeFlowRemoved(fn func(dp control.DatapathID, removals []control.FlowRemoved)) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.removedSubs = append(a.removedSubs, fn)
}

// HandleFlowRemoved implements control.Northbound: the application tier
// records eviction notices so the global flow→graph view stays honest —
// a removed flow will raise a fresh PacketIn (and recompilation) if it
// returns. Notices are advisory, so this never fails.
func (a *App) HandleFlowRemoved(_ context.Context, dp control.DatapathID, removals []control.FlowRemoved) error {
	a.mu.Lock()
	a.flowsRemoved += uint64(len(removals))
	subs := make([]func(control.DatapathID, []control.FlowRemoved), len(a.removedSubs))
	copy(subs, a.removedSubs)
	a.mu.Unlock()
	for _, fn := range subs {
		fn(dp, removals)
	}
	return nil
}

// FlowsRemoved returns the total number of flow-removed notices
// accepted from all hosts.
func (a *App) FlowsRemoved() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.flowsRemoved
}

// Messages returns a copy of the validated-message log.
func (a *App) Messages() []LoggedMessage {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]LoggedMessage(nil), a.msgLog...)
}

// Policy implements control.Northbound: the value stored for key by
// AppData messages, if any.
func (a *App) Policy(key string) (any, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	v, ok := a.policyKV[key]
	return v, ok
}

var _ control.Northbound = (*App)(nil)
