// Package app implements the SDNFV Application — the top tier of the
// control hierarchy (Fig. 2). It owns the service-graph registry and the
// mapping of flow classes to graphs, drives the SDN Controller (rule
// compilation for new flows) and the NFV Orchestrator (instantiating NFs),
// and validates cross-layer messages arriving from NF Managers before
// they are allowed to affect other hosts (§3.4 "Cross-Layer Control").
package app

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"sdnfv/internal/flowtable"
	"sdnfv/internal/graph"
	"sdnfv/internal/nf"
	"sdnfv/internal/packet"
)

// GraphSelector maps a new flow to the name of the service graph that
// should process it. Empty string selects the registry's default graph.
type GraphSelector func(scope flowtable.ServiceID, key packet.FlowKey) string

// Config tunes the application.
type Config struct {
	// IngressPort / EgressPort are used when compiling graphs to rules.
	IngressPort int
	EgressPort  int
	// Selector routes flows to graphs; nil always selects the default.
	Selector GraphSelector
	// TrustNFs disables validation of cross-layer messages (trusted NFs
	// may rewrite anything the graph allows; untrusted ones are checked
	// against the graph's edge set, §3.4).
	TrustNFs bool
}

// App is the SDNFV Application.
type App struct {
	cfg Config

	mu        sync.Mutex
	graphs    map[string]*graph.Graph
	defGraph  string
	msgLog    []LoggedMessage
	policyKV  map[string]any
	listeners []func(src flowtable.ServiceID, m nf.Message)
}

// LoggedMessage is one validated cross-layer message.
type LoggedMessage struct {
	Src flowtable.ServiceID
	Msg nf.Message
	// Accepted reports whether validation allowed the message.
	Accepted bool
	// Reason explains a rejection.
	Reason string
}

// New builds an application.
func New(cfg Config) *App {
	return &App{
		cfg:      cfg,
		graphs:   make(map[string]*graph.Graph),
		policyKV: make(map[string]any),
	}
}

// Errors returned by App operations.
var (
	ErrNoGraph        = errors.New("app: no such service graph")
	ErrGraphInvalid   = errors.New("app: service graph failed validation")
	ErrDuplicateGraph = errors.New("app: duplicate graph name")
)

// RegisterGraph validates and registers g; the first registered graph
// becomes the default.
func (a *App) RegisterGraph(g *graph.Graph) error {
	if err := g.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrGraphInvalid, err)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.graphs[g.Name]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateGraph, g.Name)
	}
	a.graphs[g.Name] = g
	if a.defGraph == "" {
		a.defGraph = g.Name
	}
	return nil
}

// Graph returns the named graph ("" = default).
func (a *App) Graph(name string) (*graph.Graph, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if name == "" {
		name = a.defGraph
	}
	g, ok := a.graphs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoGraph, name)
	}
	return g, nil
}

// GraphNames lists registered graphs.
func (a *App) GraphNames() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	names := make([]string, 0, len(a.graphs))
	for n := range a.graphs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CompileRules is the northbound RuleCompiler handed to the SDN
// controller: it picks the graph for the flow and compiles it to host
// rules. The compiled rules match all flows (wildcard) — the paper's
// pre-population mode — unless exact is true, in which case they are
// specialized to the flow's exact 5-tuple (per-flow mode).
func (a *App) CompileRules(scope flowtable.ServiceID, key packet.FlowKey, exact bool) ([]flowtable.Rule, error) {
	name := ""
	if a.cfg.Selector != nil {
		name = a.cfg.Selector(scope, key)
	}
	g, err := a.Graph(name)
	if err != nil {
		return nil, err
	}
	rules, err := g.Rules(a.cfg.IngressPort, a.cfg.EgressPort)
	if err != nil {
		return nil, err
	}
	if exact {
		m := flowtable.ExactMatch(key)
		for i := range rules {
			rules[i].Match = m
		}
	}
	return rules, nil
}

// Compiler adapts CompileRules to the controller.RuleCompiler signature
// with the given specialization mode.
func (a *App) Compiler(exact bool) func(flowtable.ServiceID, packet.FlowKey) ([]flowtable.Rule, error) {
	return func(scope flowtable.ServiceID, key packet.FlowKey) ([]flowtable.Rule, error) {
		return a.CompileRules(scope, key, exact)
	}
}

// Subscribe registers a listener for accepted cross-layer messages.
func (a *App) Subscribe(fn func(src flowtable.ServiceID, m nf.Message)) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.listeners = append(a.listeners, fn)
}

// HandleNFMessage validates a cross-layer message against the service
// graphs and records it. It returns whether the message was accepted.
// Validation enforces the §3.4 constraint that NFs may only steer flows
// along edges defined in the original service graph.
func (a *App) HandleNFMessage(src flowtable.ServiceID, m nf.Message) bool {
	accepted, reason := a.validate(src, m)
	a.mu.Lock()
	a.msgLog = append(a.msgLog, LoggedMessage{Src: src, Msg: m, Accepted: accepted, Reason: reason})
	if accepted && m.Kind == nf.MsgData {
		a.policyKV[m.Key] = m.Value
	}
	listeners := make([]func(flowtable.ServiceID, nf.Message), len(a.listeners))
	copy(listeners, a.listeners)
	a.mu.Unlock()
	if accepted {
		for _, fn := range listeners {
			fn(src, m)
		}
	}
	return accepted
}

func (a *App) validate(src flowtable.ServiceID, m nf.Message) (bool, string) {
	if a.cfg.TrustNFs || m.Kind == nf.MsgData {
		return true, ""
	}
	a.mu.Lock()
	graphs := make([]*graph.Graph, 0, len(a.graphs))
	for _, g := range a.graphs {
		graphs = append(graphs, g)
	}
	a.mu.Unlock()
	switch m.Kind {
	case nf.MsgChangeDefault:
		// The new default S->T must be an edge in some registered graph.
		for _, g := range graphs {
			for _, e := range g.Out(m.S) {
				if e.To == m.T {
					return true, ""
				}
			}
		}
		return false, fmt.Sprintf("no graph defines edge %s->%s", m.S, m.T)
	case nf.MsgSkipMe, nf.MsgRequestMe:
		// S must exist in some registered graph.
		for _, g := range graphs {
			if _, ok := g.Vertex(m.S); ok {
				return true, ""
			}
		}
		return false, fmt.Sprintf("service %s not in any graph", m.S)
	default:
		return false, fmt.Sprintf("unknown message kind %d from %s", m.Kind, src)
	}
}

// Messages returns a copy of the validated-message log.
func (a *App) Messages() []LoggedMessage {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]LoggedMessage(nil), a.msgLog...)
}

// Policy returns the value stored for key by NF Message data, if any.
func (a *App) Policy(key string) (any, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	v, ok := a.policyKV[key]
	return v, ok
}
