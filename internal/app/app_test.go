package app

import (
	"context"
	"errors"
	"testing"

	"sdnfv/internal/control"
	"sdnfv/internal/flowtable"
	"sdnfv/internal/graph"
	"sdnfv/internal/packet"
)

func testGraph(t *testing.T, name string) *graph.Graph {
	t.Helper()
	g, err := graph.Chain(name,
		graph.Vertex{Service: 10, Name: "fw", ReadOnly: true},
		graph.Vertex{Service: 11, Name: "mon", ReadOnly: false},
	)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func testKey() packet.FlowKey {
	return packet.FlowKey{
		SrcIP: packet.IPv4(10, 0, 0, 1), DstIP: packet.IPv4(10, 0, 0, 2),
		SrcPort: 1000, DstPort: 80, Proto: packet.ProtoUDP,
	}
}

func TestRegisterAndDefaultGraph(t *testing.T) {
	a := New(Config{IngressPort: 0, EgressPort: 1})
	if err := a.RegisterGraph(testGraph(t, "g1")); err != nil {
		t.Fatal(err)
	}
	if err := a.RegisterGraph(testGraph(t, "g1")); !errors.Is(err, ErrDuplicateGraph) {
		t.Fatalf("dup: %v", err)
	}
	g, err := a.Graph("")
	if err != nil || g.Name != "g1" {
		t.Fatalf("default graph = %v err=%v", g, err)
	}
	if _, err := a.Graph("nope"); !errors.Is(err, ErrNoGraph) {
		t.Fatalf("unknown: %v", err)
	}
	if names := a.GraphNames(); len(names) != 1 || names[0] != "g1" {
		t.Fatalf("names = %v", names)
	}
}

func TestRegisterRejectsInvalidGraph(t *testing.T) {
	a := New(Config{})
	bad := graph.New("bad")
	_ = bad.AddVertex(graph.Vertex{Service: 5})
	_ = bad.AddEdge(graph.Source, 5, true)
	// 5 has no default to sink -> invalid.
	if err := a.RegisterGraph(bad); !errors.Is(err, ErrGraphInvalid) {
		t.Fatalf("err = %v", err)
	}
}

func TestCompileRulesWildcardAndExact(t *testing.T) {
	a := New(Config{IngressPort: 0, EgressPort: 1})
	_ = a.RegisterGraph(testGraph(t, "g1"))
	rules, err := a.CompileRules(flowtable.Port(0), testKey(), false)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rules {
		if r.Match.Specificity() != 0 {
			t.Fatalf("wildcard mode produced specific match: %v", r.Match)
		}
	}
	rules, err = a.CompileRules(flowtable.Port(0), testKey(), true)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rules {
		if !r.Match.IsExact() {
			t.Fatalf("exact mode produced wildcard: %v", r.Match)
		}
	}
	// CompileFlow (the control.Northbound surface) honours the
	// configured specialization mode.
	exactApp := New(Config{IngressPort: 0, EgressPort: 1})
	_ = exactApp.RegisterGraph(testGraph(t, "g1"))
	rules, err = exactApp.CompileFlow(context.Background(), 0, flowtable.Port(0), testKey())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rules {
		if !r.Match.IsExact() {
			t.Fatalf("default mode should compile exact rules: %v", r.Match)
		}
	}
}

func TestSelectorPicksGraph(t *testing.T) {
	sel := func(scope flowtable.ServiceID, key packet.FlowKey) string {
		if key.DstPort == 80 {
			return "web"
		}
		return "other"
	}
	a := New(Config{Selector: sel})
	web, _ := graph.Chain("web", graph.Vertex{Service: 20})
	other, _ := graph.Chain("other", graph.Vertex{Service: 30})
	_ = a.RegisterGraph(web)
	_ = a.RegisterGraph(other)
	rules, err := a.CompileRules(flowtable.Port(0), testKey(), false)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range rules {
		for _, act := range r.Actions {
			if act == flowtable.Forward(20) {
				found = true
			}
			if act == flowtable.Forward(30) {
				t.Fatal("selector picked the wrong graph")
			}
		}
	}
	if !found {
		t.Fatal("web graph not compiled")
	}
}

func TestMessageValidation(t *testing.T) {
	a := New(Config{})
	_ = a.RegisterGraph(testGraph(t, "g1")) // edges: src->10->11->sink
	ctx := context.Background()

	// ChangeDefault along an existing edge: accepted.
	if err := a.HandleNFMessage(ctx, 0, 10, control.ChangeDefault{Service: 10, Target: 11}); err != nil {
		t.Fatalf("valid ChangeDefault rejected: %v", err)
	}
	// ChangeDefault along a non-edge: rejected with the typed sentinel.
	if err := a.HandleNFMessage(ctx, 0, 10, control.ChangeDefault{Service: 11, Target: 10}); !errors.Is(err, control.ErrRejected) {
		t.Fatalf("reverse edge: %v", err)
	}
	// ChangeDefault to an egress port: legal iff the service may exit
	// the graph (11 -> sink exists; 10 -> sink does not).
	if err := a.HandleNFMessage(ctx, 0, 11, control.ChangeDefault{Service: 11, Target: flowtable.Port(1)}); err != nil {
		t.Fatalf("egress reroute rejected: %v", err)
	}
	if err := a.HandleNFMessage(ctx, 0, 10, control.ChangeDefault{Service: 10, Target: flowtable.Port(1)}); !errors.Is(err, control.ErrRejected) {
		t.Fatalf("non-egress service rerouted to port: %v", err)
	}
	// SkipMe for a known service: accepted.
	if err := a.HandleNFMessage(ctx, 0, 11, control.SkipMe{Service: 11}); err != nil {
		t.Fatalf("valid SkipMe rejected: %v", err)
	}
	// RequestMe for an unknown service: rejected.
	if err := a.HandleNFMessage(ctx, 0, 99, control.RequestMe{Service: 99}); !errors.Is(err, control.ErrRejected) {
		t.Fatalf("unknown service: %v", err)
	}
	// Data messages always pass and update the policy store.
	if err := a.HandleNFMessage(ctx, 0, 10, control.AppData{Key: "alarm", Value: "on"}); err != nil {
		t.Fatalf("data message rejected: %v", err)
	}
	if v, ok := a.Policy("alarm"); !ok || v != "on" {
		t.Fatalf("policy = %v %v", v, ok)
	}
	log := a.Messages()
	if len(log) != 7 {
		t.Fatalf("log = %d entries", len(log))
	}
	accepted := 0
	for _, e := range log {
		if e.Accepted {
			accepted++
		}
	}
	if accepted != 4 {
		t.Fatalf("accepted = %d", accepted)
	}
}

func TestTrustedNFsSkipValidation(t *testing.T) {
	a := New(Config{TrustNFs: true})
	if err := a.HandleNFMessage(context.Background(), 0, 99, control.ChangeDefault{Service: 1, Target: 2}); err != nil {
		t.Fatalf("trusted message rejected: %v", err)
	}
}

func TestStructurallyInvalidMessageRejected(t *testing.T) {
	// Even with trusted NFs, per-variant validation still applies: an
	// AppData with no key is malformed, not merely unauthorized.
	a := New(Config{TrustNFs: true})
	if err := a.HandleNFMessage(context.Background(), 0, 1, control.AppData{}); !errors.Is(err, control.ErrRejected) {
		t.Fatalf("invalid message: %v", err)
	}
}

func TestSubscribe(t *testing.T) {
	a := New(Config{TrustNFs: true})
	var got []control.Message
	a.Subscribe(func(_ control.DatapathID, _ flowtable.ServiceID, m control.Message) { got = append(got, m) })
	_ = a.HandleNFMessage(context.Background(), 0, 1, control.AppData{Key: "k"})
	if len(got) != 1 {
		t.Fatal("listener not invoked")
	}
}
