package app

import (
	"errors"
	"testing"

	"sdnfv/internal/flowtable"
	"sdnfv/internal/graph"
	"sdnfv/internal/nf"
	"sdnfv/internal/packet"
)

func testGraph(t *testing.T, name string) *graph.Graph {
	t.Helper()
	g, err := graph.Chain(name,
		graph.Vertex{Service: 10, Name: "fw", ReadOnly: true},
		graph.Vertex{Service: 11, Name: "mon", ReadOnly: false},
	)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func testKey() packet.FlowKey {
	return packet.FlowKey{
		SrcIP: packet.IPv4(10, 0, 0, 1), DstIP: packet.IPv4(10, 0, 0, 2),
		SrcPort: 1000, DstPort: 80, Proto: packet.ProtoUDP,
	}
}

func TestRegisterAndDefaultGraph(t *testing.T) {
	a := New(Config{IngressPort: 0, EgressPort: 1})
	if err := a.RegisterGraph(testGraph(t, "g1")); err != nil {
		t.Fatal(err)
	}
	if err := a.RegisterGraph(testGraph(t, "g1")); !errors.Is(err, ErrDuplicateGraph) {
		t.Fatalf("dup: %v", err)
	}
	g, err := a.Graph("")
	if err != nil || g.Name != "g1" {
		t.Fatalf("default graph = %v err=%v", g, err)
	}
	if _, err := a.Graph("nope"); !errors.Is(err, ErrNoGraph) {
		t.Fatalf("unknown: %v", err)
	}
	if names := a.GraphNames(); len(names) != 1 || names[0] != "g1" {
		t.Fatalf("names = %v", names)
	}
}

func TestRegisterRejectsInvalidGraph(t *testing.T) {
	a := New(Config{})
	bad := graph.New("bad")
	_ = bad.AddVertex(graph.Vertex{Service: 5})
	_ = bad.AddEdge(graph.Source, 5, true)
	// 5 has no default to sink -> invalid.
	if err := a.RegisterGraph(bad); !errors.Is(err, ErrGraphInvalid) {
		t.Fatalf("err = %v", err)
	}
}

func TestCompileRulesWildcardAndExact(t *testing.T) {
	a := New(Config{IngressPort: 0, EgressPort: 1})
	_ = a.RegisterGraph(testGraph(t, "g1"))
	rules, err := a.CompileRules(flowtable.Port(0), testKey(), false)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rules {
		if r.Match.Specificity() != 0 {
			t.Fatalf("wildcard mode produced specific match: %v", r.Match)
		}
	}
	rules, err = a.CompileRules(flowtable.Port(0), testKey(), true)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rules {
		if !r.Match.IsExact() {
			t.Fatalf("exact mode produced wildcard: %v", r.Match)
		}
	}
	// The Compiler adapter matches the controller's signature.
	rc := a.Compiler(true)
	if _, err := rc(flowtable.Port(0), testKey()); err != nil {
		t.Fatal(err)
	}
}

func TestSelectorPicksGraph(t *testing.T) {
	sel := func(scope flowtable.ServiceID, key packet.FlowKey) string {
		if key.DstPort == 80 {
			return "web"
		}
		return "other"
	}
	a := New(Config{Selector: sel})
	web, _ := graph.Chain("web", graph.Vertex{Service: 20})
	other, _ := graph.Chain("other", graph.Vertex{Service: 30})
	_ = a.RegisterGraph(web)
	_ = a.RegisterGraph(other)
	rules, err := a.CompileRules(flowtable.Port(0), testKey(), false)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range rules {
		for _, act := range r.Actions {
			if act == flowtable.Forward(20) {
				found = true
			}
			if act == flowtable.Forward(30) {
				t.Fatal("selector picked the wrong graph")
			}
		}
	}
	if !found {
		t.Fatal("web graph not compiled")
	}
}

func TestMessageValidation(t *testing.T) {
	a := New(Config{})
	_ = a.RegisterGraph(testGraph(t, "g1")) // edges: src->10->11->sink

	// ChangeDefault along an existing edge: accepted.
	if !a.HandleNFMessage(10, nf.Message{Kind: nf.MsgChangeDefault, S: 10, T: 11}) {
		t.Fatal("valid ChangeDefault rejected")
	}
	// ChangeDefault along a non-edge: rejected.
	if a.HandleNFMessage(10, nf.Message{Kind: nf.MsgChangeDefault, S: 11, T: 10}) {
		t.Fatal("reverse edge accepted")
	}
	// SkipMe for a known service: accepted.
	if !a.HandleNFMessage(11, nf.Message{Kind: nf.MsgSkipMe, S: 11}) {
		t.Fatal("valid SkipMe rejected")
	}
	// RequestMe for an unknown service: rejected.
	if a.HandleNFMessage(99, nf.Message{Kind: nf.MsgRequestMe, S: 99}) {
		t.Fatal("unknown service accepted")
	}
	// Data messages always pass and update the policy store.
	if !a.HandleNFMessage(10, nf.Message{Kind: nf.MsgData, Key: "alarm", Value: "on"}) {
		t.Fatal("data message rejected")
	}
	if v, ok := a.Policy("alarm"); !ok || v != "on" {
		t.Fatalf("policy = %v %v", v, ok)
	}
	log := a.Messages()
	if len(log) != 5 {
		t.Fatalf("log = %d entries", len(log))
	}
	accepted := 0
	for _, e := range log {
		if e.Accepted {
			accepted++
		}
	}
	if accepted != 3 {
		t.Fatalf("accepted = %d", accepted)
	}
}

func TestTrustedNFsSkipValidation(t *testing.T) {
	a := New(Config{TrustNFs: true})
	if !a.HandleNFMessage(99, nf.Message{Kind: nf.MsgChangeDefault, S: 1, T: 2}) {
		t.Fatal("trusted message rejected")
	}
}

func TestSubscribe(t *testing.T) {
	a := New(Config{TrustNFs: true})
	var got []nf.Message
	a.Subscribe(func(_ flowtable.ServiceID, m nf.Message) { got = append(got, m) })
	a.HandleNFMessage(1, nf.Message{Kind: nf.MsgData, Key: "k"})
	if len(got) != 1 {
		t.Fatal("listener not invoked")
	}
}
