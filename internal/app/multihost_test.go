package app

import (
	"context"
	"errors"
	"testing"

	"sdnfv/internal/control"
	"sdnfv/internal/flowtable"
	"sdnfv/internal/graph"
	"sdnfv/internal/packet"
)

const (
	dpA control.DatapathID  = 1
	dpB control.DatapathID  = 2
	s1  flowtable.ServiceID = 10
	s2  flowtable.ServiceID = 11
	s3  flowtable.ServiceID = 12
)

// deployGraph: src -> s1 -> s2 -> sink, with the alternative edge
// s1 -> s3 -> sink. s1,s3 on host A; s2 on host B.
func deployGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New("dep")
	for _, v := range []graph.Vertex{{Service: s1}, {Service: s2}, {Service: s3}} {
		if err := g.AddVertex(v); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range []struct {
		from, to flowtable.ServiceID
		def      bool
	}{
		{graph.Source, s1, true},
		{s1, s2, true},
		{s1, s3, false},
		{s2, graph.Sink, true},
		{s3, graph.Sink, true},
	} {
		if err := g.AddEdge(e.from, e.to, e.def); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func testDeployment(t *testing.T) *Deployment {
	t.Helper()
	return &Deployment{
		Graph:   deployGraph(t),
		Assign:  map[flowtable.ServiceID]control.DatapathID{s1: dpA, s2: dpB, s3: dpA},
		Ingress: dpA, IngressPort: 0, EgressPort: 1,
		Channels: map[HostPair][]Channel{
			{Src: dpA, Dst: dpB}: {{Out: 2, In: 2}},
		},
	}
}

// findRule returns the rule at scope in rules, failing on absence.
func findRule(t *testing.T, rules []flowtable.Rule, scope flowtable.ServiceID) flowtable.Rule {
	t.Helper()
	for _, r := range rules {
		if r.Scope == scope {
			return r
		}
	}
	t.Fatalf("no rule at scope %s in %v", scope, rules)
	return flowtable.Rule{}
}

func TestDeploymentCompile(t *testing.T) {
	d := testDeployment(t)
	tables, err := d.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("tables for %d hosts", len(tables))
	}
	a, b := tables[dpA], tables[dpB]

	// Host A: ingress rule forwards to the local s1.
	ing := findRule(t, a, flowtable.Port(0))
	if def, _ := ing.Default(); def != flowtable.Forward(s1) {
		t.Fatalf("ingress default = %v", def)
	}
	// s1's rule: default crosses to host B via the channel's out port;
	// the alternative stays local.
	r1 := findRule(t, a, s1)
	if def, _ := r1.Default(); def != flowtable.Out(2) {
		t.Fatalf("s1 default = %v (want link egress)", def)
	}
	if !r1.Allows(flowtable.Forward(s3)) {
		t.Fatalf("s1 lost its local alternative: %v", r1.Actions)
	}
	// s3 exits locally.
	r3 := findRule(t, a, s3)
	if def, _ := r3.Default(); def != flowtable.Out(1) {
		t.Fatalf("s3 default = %v", def)
	}

	// Host B: the channel's ingress rule resumes the chain at s2's
	// scope; s2 then exits on B's egress port.
	ingB := findRule(t, b, flowtable.Port(2))
	if def, _ := ingB.Default(); def != flowtable.Forward(s2) {
		t.Fatalf("B ingress default = %v", def)
	}
	r2 := findRule(t, b, s2)
	if def, _ := r2.Default(); def != flowtable.Out(1) {
		t.Fatalf("s2 default = %v", def)
	}
	// No host sees another host's service scopes.
	for _, r := range a {
		if r.Scope == s2 {
			t.Fatal("host A received host B's rule")
		}
	}
	for _, r := range b {
		if r.Scope == s1 || r.Scope == s3 || r.Scope == flowtable.Port(0) {
			t.Fatalf("host B received host A's rule at %s", r.Scope)
		}
	}
}

func TestDeploymentCompileErrors(t *testing.T) {
	// Unassigned service.
	d := testDeployment(t)
	delete(d.Assign, s2)
	if _, err := d.Compile(); !errors.Is(err, ErrUnassigned) {
		t.Fatalf("unassigned: %v", err)
	}
	// Not enough channels for the crossing edges.
	d = testDeployment(t)
	d.Channels = nil
	if _, err := d.Compile(); !errors.Is(err, ErrNoChannel) {
		t.Fatalf("no channels: %v", err)
	}
}

func TestCompileFlowScopedPerDatapath(t *testing.T) {
	a := New(Config{WildcardRules: true})
	if err := a.RegisterGraph(deployGraph(t)); err != nil {
		t.Fatal(err)
	}
	if err := a.SetDeployment(testDeployment(t)); err != nil {
		t.Fatal(err)
	}
	key := packet.FlowKey{SrcIP: packet.IPv4(10, 0, 0, 1), DstIP: packet.IPv4(10, 0, 0, 2),
		SrcPort: 1, DstPort: 2, Proto: packet.ProtoUDP}

	rulesA, err := a.CompileFlow(context.Background(), dpA, flowtable.Port(0), key)
	if err != nil {
		t.Fatal(err)
	}
	rulesB, err := a.CompileFlow(context.Background(), dpB, flowtable.Port(2), key)
	if err != nil {
		t.Fatal(err)
	}
	findRule(t, rulesA, s1)
	findRule(t, rulesB, s2)
	for _, r := range rulesB {
		if r.Scope == s1 {
			t.Fatal("host B compiled host A's scope")
		}
	}
	// Unknown datapath is refused.
	if _, err := a.CompileFlow(context.Background(), 99, flowtable.Port(0), key); !errors.Is(err, ErrUnknownDatapath) {
		t.Fatalf("unknown dp: %v", err)
	}

	// Per-flow mode specializes the deployed rules to the 5-tuple.
	ex := New(Config{})
	if err := ex.RegisterGraph(deployGraph(t)); err != nil {
		t.Fatal(err)
	}
	if err := ex.SetDeployment(testDeployment(t)); err != nil {
		t.Fatal(err)
	}
	exact, err := ex.CompileFlow(context.Background(), dpA, flowtable.Port(0), key)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range exact {
		if !r.Match.IsExact() {
			t.Fatalf("deployment per-flow mode produced wildcard: %v", r.Match)
		}
	}
}

// recordingDownstream captures translated updates.
type recordingDownstream struct {
	dp    control.DatapathID
	scope flowtable.ServiceID
	def   flowtable.Action
	n     int
	fail  error
}

func (r *recordingDownstream) UpdateDefault(dp control.DatapathID, scope flowtable.ServiceID, _ flowtable.Match, def flowtable.Action) error {
	if r.fail != nil {
		return r.fail
	}
	r.dp, r.scope, r.def = dp, scope, def
	r.n++
	return nil
}

func TestChangeDefaultSteersDeployment(t *testing.T) {
	a := New(Config{WildcardRules: true})
	if err := a.RegisterGraph(deployGraph(t)); err != nil {
		t.Fatal(err)
	}
	d := testDeployment(t)
	if err := a.SetDeployment(d); err != nil {
		t.Fatal(err)
	}
	ds := &recordingDownstream{}
	a.SetDownstream(ds)
	ctx := context.Background()

	// Reroute s1's default from the remote s2 to the local s3: the
	// translated action is a plain Forward on host A.
	if err := a.HandleNFMessage(ctx, dpA, s1, control.ChangeDefault{Flows: flowtable.MatchAll, Service: s1, Target: s3}); err != nil {
		t.Fatal(err)
	}
	if ds.n != 1 || ds.dp != dpA || ds.scope != s1 || ds.def != flowtable.Forward(s3) {
		t.Fatalf("translated update = %+v", ds)
	}
	// Back to the remote default: translated to the channel egress.
	if err := a.HandleNFMessage(ctx, dpA, s1, control.ChangeDefault{Flows: flowtable.MatchAll, Service: s1, Target: s2}); err != nil {
		t.Fatal(err)
	}
	if ds.n != 2 || ds.dp != dpA || ds.def != flowtable.Out(2) {
		t.Fatalf("translated update = %+v", ds)
	}

	// Host attribution: a message claiming to come from a service the
	// placement put elsewhere is rejected before any effect.
	if err := a.HandleNFMessage(ctx, dpB, s1, control.ChangeDefault{Flows: flowtable.MatchAll, Service: s1, Target: s3}); !errors.Is(err, control.ErrRejected) {
		t.Fatalf("spoofed host accepted: %v", err)
	}
	if ds.n != 2 {
		t.Fatal("rejected message reached downstream")
	}

	// A reroute the data plane refuses must not be recorded as accepted:
	// the caller sees ErrRejected and the audit log tells the truth.
	ds.fail = errors.New("no rule allows that action")
	if err := a.HandleNFMessage(ctx, dpA, s1, control.ChangeDefault{Flows: flowtable.MatchAll, Service: s1, Target: s3}); !errors.Is(err, control.ErrRejected) {
		t.Fatalf("failed steering not surfaced as rejection: %v", err)
	}
	log := a.Messages()
	last := log[len(log)-1]
	if last.Accepted || last.Reason == "" {
		t.Fatalf("failed steering logged as accepted: %+v", last)
	}
}

// chainGraph: src -> s1 -> s2 -> s3 -> sink, all default edges.
func chainGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New("chain")
	for _, v := range []graph.Vertex{{Service: s1}, {Service: s2}, {Service: s3}} {
		if err := g.AddVertex(v); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range [][2]flowtable.ServiceID{
		{graph.Source, s1}, {s1, s2}, {s2, s3}, {s3, graph.Sink},
	} {
		if err := g.AddEdge(e[0], e[1], true); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// TestCompileDeltaEquivalence proves the incremental-recompile
// contract: recompiling a one-host placement delta produces tables
// identical to a full compile of the new deployment, regenerates only
// the affected hosts, and reuses the untouched host's table verbatim.
func TestCompileDeltaEquivalence(t *testing.T) {
	const dpC control.DatapathID = 3
	g := chainGraph(t)
	channels := map[HostPair][]Channel{
		{Src: dpA, Dst: dpB}: {{Out: 2, In: 2}},
		{Src: dpB, Dst: dpC}: {{Out: 3, In: 2}},
		{Src: dpB, Dst: dpA}: {{Out: 4, In: 3}},
	}
	mk := func(assign map[flowtable.ServiceID]control.DatapathID) *Deployment {
		return &Deployment{
			Graph: g, Assign: assign,
			Ingress: dpA, IngressPort: 0, EgressPort: 1,
			Channels: channels,
		}
	}
	prev := mk(map[flowtable.ServiceID]control.DatapathID{s1: dpA, s2: dpB, s3: dpC})
	prevTables, err := prev.Compile()
	if err != nil {
		t.Fatal(err)
	}

	// Move s3 from C to B: affected hosts are B (new) and C (old); A's
	// rules cannot change and must be reused, not regenerated.
	next := mk(map[flowtable.ServiceID]control.DatapathID{s1: dpA, s2: dpB, s3: dpB})
	got, changed, err := next.CompileDelta(prev, prevTables)
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) != 2 || changed[0] != dpB || changed[1] != dpC {
		t.Fatalf("changed = %v, want [B C]", changed)
	}

	full, err := mk(map[flowtable.ServiceID]control.DatapathID{s1: dpA, s2: dpB, s3: dpB}).Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(full) {
		t.Fatalf("delta tables cover %d hosts, full compile %d", len(got), len(full))
	}
	for dp, want := range full {
		gotRules := got[dp]
		if len(gotRules) != len(want) {
			t.Fatalf("host %d: delta %v, full %v", dp, gotRules, want)
		}
		for i := range want {
			if gotRules[i].Scope != want[i].Scope || !gotRules[i].Match.Equal(want[i].Match) ||
				len(gotRules[i].Actions) != len(want[i].Actions) {
				t.Fatalf("host %d rule %d: delta %v, full %v", dp, i, gotRules[i], want[i])
			}
			for j := range want[i].Actions {
				if gotRules[i].Actions[j] != want[i].Actions[j] {
					t.Fatalf("host %d rule %d: delta %v, full %v", dp, i, gotRules[i], want[i])
				}
			}
		}
	}
	// The unaffected host reuses the previous slice, not a copy.
	if len(got[dpA]) > 0 && &got[dpA][0] != &prevTables[dpA][0] {
		t.Fatal("unaffected host A was regenerated instead of reused")
	}

	// No movement: previous tables come back untouched with no change.
	same := mk(map[flowtable.ServiceID]control.DatapathID{s1: dpA, s2: dpB, s3: dpC})
	got, changed, err = same.CompileDelta(prev, prevTables)
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) != 0 {
		t.Fatalf("no-op delta changed %v", changed)
	}
	if &got[dpA][0] != &prevTables[dpA][0] {
		t.Fatal("no-op delta rebuilt tables")
	}

	// A structural change (different graph identity) falls back to a
	// full compile: every host of either generation is listed changed.
	structural := mk(map[flowtable.ServiceID]control.DatapathID{s1: dpA, s2: dpB, s3: dpC})
	structural.Graph = chainGraph(t)
	_, changed, err = structural.CompileDelta(prev, prevTables)
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) != 3 {
		t.Fatalf("structural fallback changed %v, want all hosts", changed)
	}
}

// TestUpdateDeployment swaps the installed deployment through the
// incremental path and reports the hosts needing reinstall.
func TestUpdateDeployment(t *testing.T) {
	const dpC control.DatapathID = 3
	g := chainGraph(t)
	channels := map[HostPair][]Channel{
		{Src: dpA, Dst: dpB}: {{Out: 2, In: 2}},
		{Src: dpB, Dst: dpC}: {{Out: 3, In: 2}},
	}
	a := New(Config{})
	prev := &Deployment{
		Graph: g, Assign: map[flowtable.ServiceID]control.DatapathID{s1: dpA, s2: dpB, s3: dpC},
		Ingress: dpA, IngressPort: 0, EgressPort: 1, Channels: channels,
	}
	if err := a.SetDeployment(prev); err != nil {
		t.Fatal(err)
	}
	next := &Deployment{
		Graph: g, Assign: map[flowtable.ServiceID]control.DatapathID{s1: dpA, s2: dpB, s3: dpB},
		Ingress: dpA, IngressPort: 0, EgressPort: 1, Channels: channels,
	}
	tables, changed, err := a.UpdateDeployment(next)
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) != 2 || changed[0] != dpB || changed[1] != dpC {
		t.Fatalf("changed = %v, want [B C]", changed)
	}
	if _, ok := tables[dpC]; ok {
		t.Fatal("host C still tabled after losing its only service")
	}
	if a.Deployment() != next {
		t.Fatal("deployment not swapped")
	}
	// Steering answers now track the new generation: s2 -> s3 is local.
	act, err := next.EdgeAction(s2, s3)
	if err != nil {
		t.Fatal(err)
	}
	if act != flowtable.Forward(s3) {
		t.Fatalf("s2->s3 action after move = %v, want local forward", act)
	}
}
