// Package netem provides discrete-event models of the network elements
// surrounding the SDNFV data plane: links with serialization and
// propagation delay, NF processing stages, an OVS-like software switch
// that punts flow-table misses to the controller, and a single-threaded
// SDN controller model. The time-series and saturation experiments
// (Figs. 1, 8–12) compose these on a sim.Env.
//
// Packets here are lightweight records (SimPacket); the byte-accurate
// packet path lives in internal/dataplane. Service-time parameters are
// calibrated from the real engine's micro-benchmarks so relative costs
// match (see EXPERIMENTS.md).
package netem

import (
	"sdnfv/internal/control"
	"sdnfv/internal/metrics"
	"sdnfv/internal/packet"
	"sdnfv/internal/sim"
)

// SimPacket is the simulator's packet record.
type SimPacket struct {
	Key   packet.FlowKey
	Bytes int
	// Born is the packet's creation time (for latency measurement).
	Born sim.Time
	// Mark carries experiment-specific state (e.g. "malicious").
	Mark int
}

// Stage is anything that can accept a packet in the simulated pipeline.
type Stage interface {
	Accept(p *SimPacket)
}

// StageFunc adapts a function to Stage.
type StageFunc func(p *SimPacket)

// Accept implements Stage.
func (f StageFunc) Accept(p *SimPacket) { f(p) }

// Link models a store-and-forward link: serialization at RateBps, then
// propagation DelaySec, then delivery to Next. Packets queue behind one
// another (the queueing delay that separates slow and fast paths in
// Fig. 8).
type Link struct {
	env  *sim.Env
	q    *sim.Queue
	Next Stage
	// RateBps is the link speed; DelaySec the propagation delay.
	RateBps  float64
	DelaySec float64

	TxBytes   *metrics.Counter
	TxPackets *metrics.Counter
}

// NewLink builds a link in env. queueCap bounds the transmit queue
// (0 = unbounded).
func NewLink(env *sim.Env, rateBps, delaySec float64, queueCap int, next Stage) *Link {
	return &Link{
		env:       env,
		q:         sim.NewQueue(env, queueCap),
		Next:      next,
		RateBps:   rateBps,
		DelaySec:  delaySec,
		TxBytes:   &metrics.Counter{},
		TxPackets: &metrics.Counter{},
	}
}

// Accept implements Stage.
func (l *Link) Accept(p *SimPacket) {
	ser := float64(p.Bytes*8) / l.RateBps
	l.q.Offer(ser, func() {
		l.TxBytes.Add(uint64(p.Bytes))
		l.TxPackets.Add(1)
		l.env.Schedule(l.DelaySec, func() {
			if l.Next != nil {
				l.Next.Accept(p)
			}
		})
	})
}

// Dropped returns packets rejected by a bounded transmit queue.
func (l *Link) Dropped() uint64 { return l.q.Dropped }

// QueueLen returns the current transmit backlog.
func (l *Link) QueueLen() int { return l.q.Len() }

// NFStage models one network function's processing: a single-server queue
// with a per-packet service-time function, after which Handle decides the
// packet's fate and the stage forwards it (or drops it).
type NFStage struct {
	env *sim.Env
	q   *sim.Queue
	// Service returns the processing time for p.
	Service func(p *SimPacket) sim.Time
	// Handle returns the next stage (nil = drop).
	Handle func(p *SimPacket) Stage

	Processed *metrics.Counter
	Drops     *metrics.Counter
}

// NewNFStage builds an NF stage. queueCap bounds its input queue.
func NewNFStage(env *sim.Env, queueCap int, service func(p *SimPacket) sim.Time, handle func(p *SimPacket) Stage) *NFStage {
	return &NFStage{
		env:       env,
		q:         sim.NewQueue(env, queueCap),
		Service:   service,
		Handle:    handle,
		Processed: &metrics.Counter{},
		Drops:     &metrics.Counter{},
	}
}

// Accept implements Stage.
func (s *NFStage) Accept(p *SimPacket) {
	svc := sim.Time(0)
	if s.Service != nil {
		svc = s.Service(p)
	}
	if !s.q.Offer(svc, func() {
		s.Processed.Add(1)
		next := s.Handle(p)
		if next == nil {
			s.Drops.Add(1)
			return
		}
		next.Accept(p)
	}) {
		s.Drops.Add(1)
	}
}

// QueueLen returns the stage's backlog.
func (s *NFStage) QueueLen() int { return s.q.Len() }

// Sink counts delivered packets and records latency.
type Sink struct {
	env     *sim.Env
	Packets *metrics.Counter
	Bytes   *metrics.Counter
	Latency *metrics.Histogram
	// OnPacket, when set, observes deliveries.
	OnPacket func(p *SimPacket)
}

// NewSink builds a sink.
func NewSink(env *sim.Env) *Sink {
	return &Sink{
		env:     env,
		Packets: &metrics.Counter{},
		Bytes:   &metrics.Counter{},
		Latency: metrics.NewHistogram(),
	}
}

// Accept implements Stage.
func (s *Sink) Accept(p *SimPacket) {
	s.Packets.Add(1)
	s.Bytes.Add(uint64(p.Bytes))
	s.Latency.Observe((s.env.Now() - p.Born) * 1e9) // ns
	if s.OnPacket != nil {
		s.OnPacket(p)
	}
}

// ControllerModel is the single-threaded SDN controller (POX in the
// paper): one server, fixed per-request service time, bounded queue.
// Saturating it is the essence of Figs. 1 and 10.
type ControllerModel struct {
	env *sim.Env
	q   *sim.Queue
	// ServiceSec is the per-request processing time.
	ServiceSec float64
	// RTTSec is the control-channel round trip added outside the queue.
	RTTSec float64

	Requests *metrics.Counter
	Rejected *metrics.Counter
}

// NewControllerModel builds the model; queueCap bounds pending requests.
func NewControllerModel(env *sim.Env, serviceSec, rttSec float64, queueCap int) *ControllerModel {
	return &ControllerModel{
		env:        env,
		q:          sim.NewQueue(env, queueCap),
		ServiceSec: serviceSec,
		RTTSec:     rttSec,
		Requests:   &metrics.Counter{},
		Rejected:   &metrics.Counter{},
	}
}

// Submit requests a flow decision; done runs when the controller has
// answered (after queueing, service, and RTT). Admission control speaks
// the control package's error taxonomy: a full queue refuses with
// control.ErrQueueFull (request dropped, counted in Rejected only —
// mirroring control.Stats semantics, Requests counts admitted requests).
func (c *ControllerModel) Submit(done func()) error {
	ok := c.q.Offer(c.ServiceSec, func() {
		c.env.Schedule(c.RTTSec, done)
	})
	if !ok {
		c.Rejected.Add(1)
		return control.ErrQueueFull
	}
	c.Requests.Add(1)
	return nil
}

// QueueLen returns pending control requests.
func (c *ControllerModel) QueueLen() int { return c.q.Len() }

// OVSSwitch models the Fig. 1 setup: a software switch with a flow table.
// A configurable fraction of packets miss the table and must wait for the
// controller before being forwarded; the rest forward at the switch's
// capacity. Missed packets are buffered per flow decision; if the
// controller rejects (queue full), the packet is dropped.
type OVSSwitch struct {
	env *sim.Env
	// FwdRatePps is the switch's forwarding capacity in packets/second.
	FwdRatePps float64
	// MissFraction is the share of packets punted to the controller.
	MissFraction float64
	Controller   *ControllerModel
	Next         Stage

	q        *sim.Queue
	Forwards *metrics.Counter
	Punts    *metrics.Counter
	Drops    *metrics.Counter
}

// NewOVSSwitch builds the switch model.
func NewOVSSwitch(env *sim.Env, fwdRatePps, missFraction float64, ctrl *ControllerModel, next Stage) *OVSSwitch {
	return &OVSSwitch{
		env:          env,
		FwdRatePps:   fwdRatePps,
		MissFraction: missFraction,
		Controller:   ctrl,
		Next:         next,
		q:            sim.NewQueue(env, 4096),
		Forwards:     &metrics.Counter{},
		Punts:        &metrics.Counter{},
		Drops:        &metrics.Counter{},
	}
}

// Accept implements Stage.
func (s *OVSSwitch) Accept(p *SimPacket) {
	forward := func() {
		if !s.q.Offer(1/s.FwdRatePps, func() {
			s.Forwards.Add(1)
			if s.Next != nil {
				s.Next.Accept(p)
			}
		}) {
			s.Drops.Add(1)
		}
	}
	if s.env.Rand().Float64() < s.MissFraction {
		s.Punts.Add(1)
		if s.Controller.Submit(forward) != nil {
			s.Drops.Add(1)
		}
		return
	}
	forward()
}

// CBRSource emits fixed-size packets for a flow at a (possibly
// time-varying) rate into a stage. Rate changes take effect at the next
// emission.
type CBRSource struct {
	env   *sim.Env
	Spec  packet.FlowKey
	Bytes int
	// RateBps returns the offered rate at time t; zero pauses emission
	// (the source re-polls at PollSec).
	RateBps func(t sim.Time) float64
	// PollSec is the re-poll interval while paused (default 0.1 s).
	PollSec float64
	Dest    Stage
	// Mark is stamped on emitted packets.
	Mark int

	Emitted *metrics.Counter
	stopped bool
}

// NewCBRSource builds a source; call Start to begin emitting.
func NewCBRSource(env *sim.Env, key packet.FlowKey, bytes int, rate func(t sim.Time) float64, dest Stage) *CBRSource {
	return &CBRSource{
		env: env, Spec: key, Bytes: bytes, RateBps: rate, Dest: dest,
		PollSec: 0.1,
		Emitted: &metrics.Counter{},
	}
}

// Start schedules the first emission.
func (s *CBRSource) Start() { s.emit() }

// Stop halts the source permanently.
func (s *CBRSource) Stop() { s.stopped = true }

func (s *CBRSource) emit() {
	if s.stopped {
		return
	}
	rate := s.RateBps(s.env.Now())
	if rate <= 0 {
		s.env.Schedule(s.PollSec, s.emit)
		return
	}
	p := &SimPacket{Key: s.Spec, Bytes: s.Bytes, Born: s.env.Now(), Mark: s.Mark}
	s.Dest.Accept(p)
	s.Emitted.Add(1)
	s.env.Schedule(float64(s.Bytes*8)/rate, s.emit)
}

// Demux routes packets by a classifier function — the simulator's stand-in
// for a flow table whose defaults cross-layer messages rewrite.
type Demux struct {
	// Classify returns the next stage for p (nil = drop).
	Classify func(p *SimPacket) Stage
	Drops    *metrics.Counter
}

// NewDemux builds a demux.
func NewDemux(classify func(p *SimPacket) Stage) *Demux {
	return &Demux{Classify: classify, Drops: &metrics.Counter{}}
}

// Accept implements Stage.
func (d *Demux) Accept(p *SimPacket) {
	next := d.Classify(p)
	if next == nil {
		d.Drops.Add(1)
		return
	}
	next.Accept(p)
}

// FlowTableStage is a small per-flow default-action table driven by
// ServiceID, mirroring the NF Manager's table in the simulator. Cross-layer
// messages rewrite entries.
type FlowTableStage struct {
	// Defaults maps a flow key to its next stage; Fallback handles
	// unmatched flows.
	Defaults map[packet.FlowKey]Stage
	Fallback Stage
}

// NewFlowTableStage builds the stage.
func NewFlowTableStage(fallback Stage) *FlowTableStage {
	return &FlowTableStage{Defaults: make(map[packet.FlowKey]Stage), Fallback: fallback}
}

// Accept implements Stage.
func (f *FlowTableStage) Accept(p *SimPacket) {
	if s, ok := f.Defaults[p.Key]; ok {
		s.Accept(p)
		return
	}
	if f.Fallback != nil {
		f.Fallback.Accept(p)
	}
}

// SetDefault rewrites the flow's default next stage (the simulator-side
// effect of a ChangeDefault message).
func (f *FlowTableStage) SetDefault(k packet.FlowKey, s Stage) { f.Defaults[k] = s }

// ClearDefault removes a flow-specific default.
func (f *FlowTableStage) ClearDefault(k packet.FlowKey) { delete(f.Defaults, k) }

// ServiceTimes groups the calibrated per-packet costs used across
// experiments; values are seconds. Defaults come from the real engine's
// measured micro-costs (§5.1: flow-table lookup ≈30 ns, min-queue pick
// ≈15 ns) plus per-hop descriptor movement.
type ServiceTimes struct {
	// Lookup is one flow-table lookup.
	Lookup float64
	// HopOverhead is manager descriptor handling per NF hop.
	HopOverhead float64
	// NFBase is a no-op NF's processing time.
	NFBase float64
}

// DefaultServiceTimes returns the calibrated defaults.
func DefaultServiceTimes() ServiceTimes {
	return ServiceTimes{
		Lookup:      30e-9,
		HopOverhead: 550e-9, // ring transfer + wakeup per hop
		NFBase:      100e-9,
	}
}

var (
	_ Stage = (*Link)(nil)
	_ Stage = (*NFStage)(nil)
	_ Stage = (*Sink)(nil)
	_ Stage = (*OVSSwitch)(nil)
	_ Stage = (*Demux)(nil)
	_ Stage = (*FlowTableStage)(nil)
)
