package netem

import (
	"math"
	"testing"

	"sdnfv/internal/packet"
	"sdnfv/internal/sim"
)

func testKey() packet.FlowKey {
	return packet.FlowKey{SrcIP: packet.IPv4(1, 1, 1, 1), DstIP: packet.IPv4(2, 2, 2, 2), SrcPort: 1, DstPort: 2, Proto: 17}
}

func TestLinkSerializationAndDelay(t *testing.T) {
	env := sim.NewEnv(1)
	sink := NewSink(env)
	// 1 Mbps link, 10 ms propagation: a 1250-byte packet serializes in
	// 10 ms, arrives at 20 ms.
	l := NewLink(env, 1e6, 0.010, 0, sink)
	l.Accept(&SimPacket{Key: testKey(), Bytes: 1250, Born: 0})
	env.Run(1)
	if sink.Packets.Value() != 1 {
		t.Fatal("packet lost")
	}
	lat := sink.Latency.Mean() / 1e9 // ns -> s
	if math.Abs(lat-0.020) > 1e-6 {
		t.Fatalf("latency = %v, want 0.020", lat)
	}
	if l.TxBytes.Value() != 1250 {
		t.Fatalf("tx bytes = %d", l.TxBytes.Value())
	}
}

func TestLinkQueueing(t *testing.T) {
	env := sim.NewEnv(1)
	sink := NewSink(env)
	l := NewLink(env, 1e6, 0, 0, sink)
	// Two packets back to back: the second queues behind the first.
	l.Accept(&SimPacket{Key: testKey(), Bytes: 1250, Born: 0})
	l.Accept(&SimPacket{Key: testKey(), Bytes: 1250, Born: 0})
	env.Run(1)
	if sink.Packets.Value() != 2 {
		t.Fatal("packets lost")
	}
	if max := sink.Latency.Max() / 1e9; math.Abs(max-0.020) > 1e-6 {
		t.Fatalf("queued latency = %v, want 0.020", max)
	}
}

func TestLinkDropWhenBounded(t *testing.T) {
	env := sim.NewEnv(1)
	sink := NewSink(env)
	l := NewLink(env, 1e3, 0, 1, sink) // 1 kbps, queue of 1
	for i := 0; i < 5; i++ {
		l.Accept(&SimPacket{Key: testKey(), Bytes: 125, Born: 0})
	}
	env.Run(10)
	if l.Dropped() == 0 {
		t.Fatal("bounded link never dropped")
	}
	if sink.Packets.Value()+l.Dropped() != 5 {
		t.Fatalf("conservation: %d delivered + %d dropped != 5", sink.Packets.Value(), l.Dropped())
	}
}

func TestNFStageProcessAndDrop(t *testing.T) {
	env := sim.NewEnv(1)
	sink := NewSink(env)
	stage := NewNFStage(env, 0, func(*SimPacket) sim.Time { return 0.001 }, func(p *SimPacket) Stage {
		if p.Mark == 1 {
			return nil // drop marked packets
		}
		return sink
	})
	stage.Accept(&SimPacket{Key: testKey(), Bytes: 100, Mark: 1})
	stage.Accept(&SimPacket{Key: testKey(), Bytes: 100})
	env.Run(1)
	if sink.Packets.Value() != 1 || stage.Drops.Value() != 1 || stage.Processed.Value() != 2 {
		t.Fatalf("sink=%d drops=%d processed=%d", sink.Packets.Value(), stage.Drops.Value(), stage.Processed.Value())
	}
}

func TestControllerModelSaturation(t *testing.T) {
	env := sim.NewEnv(1)
	c := NewControllerModel(env, 0.001, 0, 2) // 1000 req/s capacity, queue 2
	served := 0
	// Offer 100 requests instantly: 1 in service + 2 queued accepted… the
	// rest rejected.
	accepted := 0
	for i := 0; i < 100; i++ {
		if c.Submit(func() { served++ }) == nil {
			accepted++
		}
	}
	env.Run(10)
	if accepted != 3 {
		t.Fatalf("accepted = %d, want 3", accepted)
	}
	if served != 3 {
		t.Fatalf("served = %d", served)
	}
	if c.Rejected.Value() != 97 {
		t.Fatalf("rejected = %d", c.Rejected.Value())
	}
	// Requests counts admitted submissions only (control.Stats
	// semantics): offered = Requests + Rejected.
	if c.Requests.Value() != 3 {
		t.Fatalf("requests = %d, want 3", c.Requests.Value())
	}
}

func TestOVSSwitchPuntPath(t *testing.T) {
	env := sim.NewEnv(3)
	sink := NewSink(env)
	ctrl := NewControllerModel(env, 0.0001, 0.0001, 1024)
	sw := NewOVSSwitch(env, 1e6, 0.5, ctrl, sink) // 50% punted
	src := NewCBRSource(env, testKey(), 100, func(sim.Time) float64 { return 8e5 }, sw)
	src.Start()
	env.Run(0.5)
	src.Stop()
	env.Run(1)
	if ctrl.Requests.Value() == 0 {
		t.Fatal("nothing punted")
	}
	frac := float64(sw.Punts.Value()) / float64(src.Emitted.Value())
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("punt fraction = %v, want ≈0.5", frac)
	}
	// Everything eventually forwards (controller fast enough here).
	if sink.Packets.Value() != src.Emitted.Value() {
		t.Fatalf("delivered %d of %d", sink.Packets.Value(), src.Emitted.Value())
	}
}

func TestCBRSourceRate(t *testing.T) {
	env := sim.NewEnv(1)
	sink := NewSink(env)
	src := NewCBRSource(env, testKey(), 1000, func(sim.Time) float64 { return 8e6 }, sink)
	src.Start()
	env.Run(1.0)
	src.Stop()
	// 8 Mbps at 8000 bits/pkt = 1000 pps.
	got := sink.Packets.Value()
	if got < 990 || got > 1010 {
		t.Fatalf("packets in 1s = %d, want ≈1000", got)
	}
}

func TestCBRSourcePausesAtZeroRate(t *testing.T) {
	env := sim.NewEnv(1)
	sink := NewSink(env)
	rate := func(t sim.Time) float64 {
		if t < 1 {
			return 0
		}
		return 8e6
	}
	src := NewCBRSource(env, testKey(), 1000, rate, sink)
	src.PollSec = 0.05
	src.Start()
	env.Run(0.9)
	if sink.Packets.Value() != 0 {
		t.Fatal("emitted while paused")
	}
	env.Run(2)
	if sink.Packets.Value() == 0 {
		t.Fatal("never resumed")
	}
}

func TestFlowTableStage(t *testing.T) {
	env := sim.NewEnv(1)
	a := NewSink(env)
	b := NewSink(env)
	ft := NewFlowTableStage(a)
	k := testKey()
	ft.Accept(&SimPacket{Key: k, Bytes: 10})
	ft.SetDefault(k, b)
	ft.Accept(&SimPacket{Key: k, Bytes: 10})
	ft.ClearDefault(k)
	ft.Accept(&SimPacket{Key: k, Bytes: 10})
	env.Run(1)
	if a.Packets.Value() != 2 || b.Packets.Value() != 1 {
		t.Fatalf("a=%d b=%d", a.Packets.Value(), b.Packets.Value())
	}
}

func TestDemux(t *testing.T) {
	env := sim.NewEnv(1)
	s := NewSink(env)
	d := NewDemux(func(p *SimPacket) Stage {
		if p.Mark == 1 {
			return nil
		}
		return s
	})
	d.Accept(&SimPacket{Mark: 1})
	d.Accept(&SimPacket{Mark: 0})
	if s.Packets.Value() != 1 || d.Drops.Value() != 1 {
		t.Fatalf("sink=%d drops=%d", s.Packets.Value(), d.Drops.Value())
	}
}

func TestDefaultServiceTimes(t *testing.T) {
	st := DefaultServiceTimes()
	if st.Lookup <= 0 || st.HopOverhead <= 0 || st.NFBase <= 0 {
		t.Fatalf("service times = %+v", st)
	}
}
