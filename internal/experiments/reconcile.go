package experiments

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"sdnfv/internal/acmatch"
	"sdnfv/internal/app"
	"sdnfv/internal/autoscale"
	"sdnfv/internal/cluster"
	"sdnfv/internal/controller"
	"sdnfv/internal/dataplane"
	"sdnfv/internal/nf"
	"sdnfv/internal/nfs"
	"sdnfv/internal/orchestrator"
	"sdnfv/internal/reconcile"
	"sdnfv/internal/spec"
	"sdnfv/internal/telemetry"
	"sdnfv/internal/traffic"
)

// reconcileSpecJSON is the declarative desired state driving the whole
// experiment — it enters the stack through telemetry's POST /apply/spec
// action exactly as `sdnfv-ctl apply` would deliver it. The video
// service lists host-C first and host-A as fallback, which is the knob
// the chaos phase turns: killing host-C makes host-A the first live
// placement candidate and the reconciler must converge onto it.
const reconcileSpecJSON = `{
  "version": 1,
  "name": "chaos-chain",
  "hosts": [
    {"name": "host-A", "datapath": 1},
    {"name": "host-B", "datapath": 2},
    {"name": "host-C", "datapath": 3}
  ],
  "services": [
    {"name": "firewall", "id": 1, "nf": "firewall", "placement": ["host-A"]},
    {"name": "ids", "id": 2, "nf": "ids", "read_only": true, "placement": ["host-B", "host-A"]},
    {"name": "video", "id": 3, "nf": "video", "read_only": true, "placement": ["host-C", "host-A"], "scale": {"min": 1, "max": 2}}
  ],
  "edges": [
    {"from": "ingress", "to": "firewall", "default": true},
    {"from": "firewall", "to": "ids", "default": true},
    {"from": "ids", "to": "video", "default": true},
    {"from": "video", "to": "egress", "default": true}
  ],
  "ingress": {"host": "host-A", "port": 0},
  "egress_port": 1,
  "links": [
    {"a": {"host": "host-A", "port": 2}, "b": {"host": "host-B", "port": 2}},
    {"a": {"host": "host-B", "port": 3}, "b": {"host": "host-C", "port": 2}},
    {"a": {"host": "host-B", "port": 4}, "b": {"host": "host-A", "port": 3}}
  ]
}`

// ReconcileResult is the declarative-orchestration chaos experiment:
// a spec is POSTed to /apply/spec, the reconcile loop converges an
// empty three-host cluster onto it (boots through the orchestrator,
// incremental recompile, tracked rule install), traffic proves the
// chain, then host-C is killed mid-run and the loop must re-place the
// video hop on its fallback host, reroute the chain around the corpse,
// and resume its autoscaler there — with exact packet accounting on
// every surviving host afterwards.
type ReconcileResult struct {
	Generation  uint64
	Converged   bool
	Drift       int
	DriftEvents uint64
	ActionsOK   uint64
	ActionsFail uint64

	// Ticks to converge from an empty cluster / after the host kill.
	TicksFromScratch int
	TicksAfterKill   int
	// ConvergeSec is the reconciler's own measure of the kill episode.
	ConvergeSec float64

	// Placement after convergence (service -> host) and where the video
	// autoscaler runs after failover.
	Placement  map[string]string
	VideoScale string

	// Phase 1: chain A→B→C with the spec's preferred placement.
	Phase1Sent      uint64
	Phase1Delivered uint64
	// Phase 2: after host-C died, the same chain must exit at host-A.
	Phase2Sent      uint64
	Phase2Delivered uint64

	// Survivor accounting: rx == tx+drops+overflows+txdrops+rxdrops and
	// a leak-free pool on every host still alive.
	HostNames    []string
	Rx, Tx       []uint64
	Drops        []uint64
	AccountingOK bool
}

// Name implements Result.
func (*ReconcileResult) Name() string { return "reconcile" }

// Render implements Result.
func (r *ReconcileResult) Render() string {
	var b strings.Builder
	b.WriteString("Declarative reconcile: spec applied via /apply/spec, host-C killed mid-run\n\n")
	b.WriteString(fmt.Sprintf("generation %d: converged in %d ticks from empty cluster\n",
		r.Generation, r.TicksFromScratch))
	b.WriteString(fmt.Sprintf("placement: %v\n", r.Placement))
	b.WriteString(fmt.Sprintf("phase 1 (firewall@A -> ids@B -> video@C): sent %d, delivered %d\n",
		r.Phase1Sent, r.Phase1Delivered))
	b.WriteString(fmt.Sprintf("host-C killed: reconverged in %d ticks (%.3f s), drift events %d, video autoscaler now on %s\n",
		r.TicksAfterKill, r.ConvergeSec, r.DriftEvents, r.VideoScale))
	b.WriteString(fmt.Sprintf("phase 2 (video re-placed on host-A): sent %d, delivered %d\n",
		r.Phase2Sent, r.Phase2Delivered))
	rows := make([][]string, len(r.HostNames))
	for i, n := range r.HostNames {
		rows[i] = []string{n, f0(float64(r.Rx[i])), f0(float64(r.Tx[i])), f0(float64(r.Drops[i]))}
	}
	b.WriteString("\n" + table([]string{"survivor", "rx", "tx", "drops"}, rows))
	b.WriteString(fmt.Sprintf("\nreconcile status: converged=%v drift=%d actions ok=%d failed=%d\n",
		r.Converged, r.Drift, r.ActionsOK, r.ActionsFail))
	b.WriteString(fmt.Sprintf("survivor accounting: ok=%v\n", r.AccountingOK))
	return b.String()
}

// Reconcile runs the experiment (~1 s wall time).
func Reconcile(seed int64) *ReconcileResult {
	const (
		flows      = 32
		frameBytes = 512
		phase1N    = 4000
		phase2N    = 4000
	)
	res := &ReconcileResult{}

	// --- NF registry: how the spec's binding names resolve to code.
	sigs := acmatch.New([]string{"ATTACK-SIGNATURE"})
	nfReg := spec.NewNFRegistry()
	mustReg := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	mustReg(nfReg.Register("firewall", func() nf.BatchFunction { return &nfs.Firewall{DefaultAllow: true} }))
	mustReg(nfReg.Register("ids", func() nf.BatchFunction { return &nfs.IDS{Matcher: sigs, Scrubber: 3} }))
	mustReg(nfReg.Register("video", func() nf.BatchFunction { return &nfs.VideoDetector{PolicyEngine: 3, Bypass: 3} }))

	// --- Parse the spec (the same bytes later go through /apply/spec).
	sp, err := spec.Parse([]byte(reconcileSpecJSON))
	if err != nil {
		panic(err)
	}
	if err := sp.BindCheck(nfReg); err != nil {
		panic(err)
	}
	dps := reconcile.DatapathsOf(sp)

	// --- Controller, hosts, fabric wired from the spec's links.
	ctl := controller.New(controller.Config{Workers: 2})
	ctl.Start()
	defer ctl.Stop()
	fab := cluster.New()
	hosts := map[string]*dataplane.Host{}
	for _, name := range sp.HostNames() {
		h := dataplane.NewHost(dataplane.Config{
			PoolSize: 4096, RingSize: 1024, TXThreads: 1,
			Control: ctl.Session(dps[name]),
		})
		hosts[name] = h
		if err := fab.AddHost(dps[name], name, h); err != nil {
			panic(err)
		}
	}
	if err := reconcile.WireLinks(fab, sp, cluster.LinkConfig{}); err != nil {
		panic(err)
	}

	// --- Application over the spec graph; the fabric is its downstream.
	g, err := sp.Graph()
	if err != nil {
		panic(err)
	}
	a := app.New(app.Config{IngressPort: sp.Ingress.Port, EgressPort: sp.EgressPort, WildcardRules: true})
	if err := a.RegisterGraph(g); err != nil {
		panic(err)
	}
	a.SetDownstream(fab)
	ctl.SetNorthbound(a)

	// --- Orchestrator + reconciler: observation from the fabric,
	// actuation through orchestrator boots, incremental recompiles, and
	// tracked rule replacement.
	clock := autoscale.NewRealClock()
	orch := orchestrator.New(orchestrator.Config{BootDelaySec: 0.005, StandbyDelaySec: 0.005, Standby: 1}, clock)
	for name, h := range hosts {
		orch.AddHost(dataplane.NamedHost{Name: name, Host: h})
	}
	act := &reconcile.ClusterActuators{
		Fabric: fab, App: a, Orch: orch, NFs: nfReg, Clock: clock,
		// Long interval + high thresholds: the loops exist (bounds are
		// live, failover moves them) but stay quiet during the short run.
		Scale:     autoscale.Config{IntervalSec: 3600, UpBacklog: 1 << 30, CooldownSec: 3600},
		Datapaths: dps,
	}
	defer act.Close()
	rec := reconcile.New(
		reconcile.Config{IntervalSec: 0.02, BackoffSec: 0.05, PendingSec: 0.5, QueueDepth: 16},
		reconcile.ClusterObserver{Fabric: fab, Datapaths: dps}, act, clock)

	// --- Telemetry: the spec enters through the action surface, status
	// leaves through /state/reconcile — the operator's view.
	reg := telemetry.NewRegistry()
	telemetry.RegisterReconcile(reg, rec)
	if _, err := reg.Apply(context.Background(), telemetry.PathApplySpec, []byte(reconcileSpecJSON)); err != nil {
		panic(err)
	}

	// --- Egress sinks on both hosts that can terminate the chain.
	var deliveredA, deliveredC atomic.Uint64
	hosts["host-A"].BindPort(sp.EgressPort, func(_ int, _ []byte, _ *dataplane.Desc) { deliveredA.Add(1) })
	hosts["host-C"].BindPort(sp.EgressPort, func(_ int, _ []byte, _ *dataplane.Desc) { deliveredC.Add(1) })

	if err := fab.Start(); err != nil {
		panic(err)
	}
	defer fab.Stop()

	// --- Converge from an empty cluster. Ticks are driven manually so
	// the tick count is part of the result; the wall-clock sleeps let the
	// orchestrator's async boots land between observations.
	converge := func(max int) int {
		for i := 1; i <= max; i++ {
			rec.TickNow()
			if rec.Status().Converged {
				return i
			}
			time.Sleep(20 * time.Millisecond)
		}
		panic(fmt.Sprintf("reconcile: no convergence after %d ticks: %+v", max, rec.Status()))
	}
	res.TicksFromScratch = converge(100)

	// --- Phase 1 traffic through the spec's preferred placement.
	factory := traffic.NewFactory()
	inject := func(n int) uint64 {
		var sent uint64
		for i := 0; i < n; i++ {
			fs := traffic.Flow(int(seed)*flows+i%flows, frameBytes, 0)
			frame, err := factory.Frame(fs, time.Now().UnixNano())
			if err != nil {
				panic(err)
			}
			for {
				if err := hosts["host-A"].Inject(sp.Ingress.Port, frame); err == nil {
					sent++
					break
				}
				time.Sleep(2 * time.Microsecond)
			}
			if i%8 == 7 {
				time.Sleep(30 * time.Microsecond)
			}
		}
		return sent
	}
	res.Phase1Sent = inject(phase1N)
	if !fab.WaitIdle(20 * time.Second) {
		panic("reconcile: phase 1 never drained")
	}
	res.Phase1Delivered = deliveredC.Load()

	// --- Chaos: kill host-C mid-run. The reconciler must observe the
	// death as drift, boot a replacement video replica on host-A, move
	// the autoscaler with it, and reroute the chain B→A.
	if err := fab.KillHost(dps["host-C"]); err != nil {
		panic(err)
	}
	res.TicksAfterKill = converge(200)

	// --- Phase 2: same ingress, chain now exits at host-A.
	before := deliveredA.Load()
	res.Phase2Sent = inject(phase2N)
	if !fab.WaitIdle(20 * time.Second) {
		panic("reconcile: phase 2 never drained")
	}
	res.Phase2Delivered = deliveredA.Load() - before

	// --- Final status through the show surface, like sdnfv-ctl show.
	v, err := reg.Show(context.Background(), telemetry.PathReconcile)
	if err != nil {
		panic(err)
	}
	st := v.(reconcile.Status)
	res.Generation = st.Generation
	res.Converged = st.Converged
	res.Drift = len(st.Drift)
	res.DriftEvents = st.DriftEvents
	res.ActionsOK = st.ActionsOK
	res.ActionsFail = st.ActionsFailed
	res.ConvergeSec = st.LastConvergeSec
	res.Placement = st.Placement
	if _, host := act.Scaler("video"); host != "" {
		res.VideoScale = host
	}

	// --- Survivor accounting: the exact identity on every live host.
	res.AccountingOK = true
	for _, name := range sp.HostNames() {
		if !fab.Alive(dps[name]) {
			continue
		}
		st := hosts[name].Stats()
		res.HostNames = append(res.HostNames, name)
		res.Rx = append(res.Rx, st.RxPackets)
		res.Tx = append(res.Tx, st.TxPackets)
		res.Drops = append(res.Drops, st.Drops+st.Overflows+st.TxDrops+st.RxDrops)
		if st.RxPackets != st.TxPackets+st.Drops+st.Overflows+st.TxDrops+st.RxDrops ||
			st.Pool.InUse != 0 {
			res.AccountingOK = false
		}
	}
	return res
}

func init() {
	register("reconcile", func(seed int64) Result { return Reconcile(seed) })
}
