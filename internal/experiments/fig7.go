package experiments

import (
	"strings"

	"sdnfv/internal/netem"
	"sdnfv/internal/sim"
	"sdnfv/internal/traffic"
)

// Fig7Result is the throughput-vs-packet-size experiment (Fig. 7): one CPU
// socket, chains of no-op VMs composed sequentially or in parallel,
// compared with a plain DPDK forwarder.
type Fig7Result struct {
	Sizes []int
	// Mbps per configuration, indexed like Sizes.
	DPDK, OneVM, TwoPar, TwoSeq []float64
}

// Name implements Result.
func (*Fig7Result) Name() string { return "fig7" }

// Render implements Result.
func (r *Fig7Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 7: throughput vs packet size (Mbps, single socket)\n")
	rows := make([][]string, len(r.Sizes))
	for i := range r.Sizes {
		rows[i] = []string{
			f0(float64(r.Sizes[i])),
			f0(r.DPDK[i]), f0(r.OneVM[i]), f0(r.TwoPar[i]), f0(r.TwoSeq[i]),
		}
	}
	b.WriteString(table([]string{"pkt size", "0VM(dpdk)", "1VM", "2VMs(parallel)", "2VMs(sequential)"}, rows))
	return b.String()
}

// fig7Pipeline describes the stage capacities of one configuration.
// Calibration (single socket, §5.1): the RX core sustains ~15 Mpps of
// simple forwarding; one NF core sustains ~9.8 Mpps of no-op processing
// through its rings; the two TX cores spend ~128 ns per dispatch hop, so
// sequential chains multiply TX work while parallel chains add only the
// cheaper join (~109 ns per member).
type fig7Pipeline struct {
	rxNsPerPkt float64
	// nfNsPerPkt is the per-NF-core cost; every NF in the chain sees every
	// packet.
	nfNsPerPkt float64
	nfCount    int
	parallel   bool
	// txNsPerHop is TX-thread work per dispatch/join; two TX cores share
	// it.
	txNsPerHop float64
}

func fig7Config(kind string) fig7Pipeline {
	p := fig7Pipeline{rxNsPerPkt: 67, nfNsPerPkt: 102, txNsPerHop: 128}
	switch kind {
	case "dpdk":
		p.nfCount = 0
	case "1vm":
		p.nfCount = 1
	case "2par":
		p.nfCount = 2
		p.parallel = true
		p.txNsPerHop = 109 // join is cheaper than a full dispatch
	case "2seq":
		p.nfCount = 2
	}
	return p
}

// run measures delivered Mbps at line-rate offered load for one packet
// size, by simulating the stage pipeline for a short horizon.
func (p fig7Pipeline) run(seed int64, pktBytes int) float64 {
	env := sim.NewEnv(seed)
	sink := netem.NewSink(env)

	// Build the pipeline back to front.
	var next netem.Stage = sink
	// TX pool: two cores share per-packet hop work; model as one server
	// with half the per-packet cost.
	hops := float64(p.nfCount)
	if p.nfCount == 0 {
		hops = 0
	}
	if hops > 0 {
		txNs := hops * p.txNsPerHop / 2
		txNext := next
		tx := netem.NewNFStage(env, 512, func(*netem.SimPacket) sim.Time {
			return txNs * 1e-9
		}, func(*netem.SimPacket) netem.Stage { return txNext })
		next = tx
	}
	// NF cores: sequential chains traverse each NF in turn; parallel
	// chains also have every member process every packet (same shared
	// copy), so the per-packet NF cost is identical — the savings are in
	// TX hop work and latency, not NF cycles.
	for i := 0; i < p.nfCount; i++ {
		stageNext := next
		nfStage := netem.NewNFStage(env, 512, func(*netem.SimPacket) sim.Time {
			return p.nfNsPerPkt * 1e-9
		}, func(*netem.SimPacket) netem.Stage { return stageNext })
		next = nfStage
	}
	rxNext := next
	rx := netem.NewNFStage(env, 512, func(*netem.SimPacket) sim.Time {
		return p.rxNsPerPkt * 1e-9
	}, func(*netem.SimPacket) netem.Stage { return rxNext })

	// Offered load: 10 GbE line rate for the frame size (incl. 20 B
	// Ethernet overhead per frame on the wire).
	wireBits := float64((pktBytes + 20) * 8)
	offeredPps := 10e9 / wireBits
	key := traffic.Flow(0, pktBytes, 0).Key
	src := netem.NewCBRSource(env, key, pktBytes, func(sim.Time) float64 {
		return offeredPps * float64(pktBytes*8)
	}, rx)
	src.Start()
	const horizon = 0.02
	env.Run(horizon)
	src.Stop()
	env.Run(horizon + 0.01)
	delivered := float64(sink.Bytes.Value()) * 8 / horizon
	return delivered / 1e6
}

// Fig7 runs the sweep.
func Fig7(seed int64) *Fig7Result {
	res := &Fig7Result{Sizes: []int{64, 128, 256, 512, 1024}}
	for _, s := range res.Sizes {
		res.DPDK = append(res.DPDK, fig7Config("dpdk").run(seed, s))
		res.OneVM = append(res.OneVM, fig7Config("1vm").run(seed, s))
		res.TwoPar = append(res.TwoPar, fig7Config("2par").run(seed, s))
		res.TwoSeq = append(res.TwoSeq, fig7Config("2seq").run(seed, s))
	}
	return res
}

func init() {
	register("fig7", func(seed int64) Result { return Fig7(seed) })
}
