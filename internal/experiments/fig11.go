package experiments

import (
	"strings"

	"sdnfv/internal/sim"
)

// Fig11Result is the dynamic video policy experiment (§5.3, Fig. 11): 400
// concurrent video flows (mean lifetime 40 s); between t=60 s and t=240 s
// policy requires all video traffic to pass the transcoder, which halves
// each flow's rate. SDNFV rewrites the defaults of existing flows
// (RequestMe + ChangeDefault), so output drops to the target almost
// immediately; the SDN controller only influences new flows, so its output
// converges with the slow time constant of flow turnover — and lags again
// when the policy lifts.
type Fig11Result struct {
	Times    []float64
	SDNFVOut []float64 // packets/s
	SDNOut   []float64
}

// Name implements Result.
func (*Fig11Result) Name() string { return "fig11" }

// Render implements Result.
func (r *Fig11Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 11: output rate under a policy change at t=60..240 s (packets/s)\n")
	rows := make([][]string, 0)
	for i := range r.Times {
		if int(r.Times[i])%15 != 0 {
			continue
		}
		rows = append(rows, []string{f0(r.Times[i]), f0(r.SDNFVOut[i]), f0(r.SDNOut[i])})
	}
	b.WriteString(table([]string{"t (s)", "SDNFV", "SDN"}, rows))
	return b.String()
}

// fig11Flow is one video session.
type fig11Flow struct {
	rate float64 // packets/s
	// throttled routes the flow through the transcoder (drops half).
	throttled bool
}

// fig11Run simulates one control design.
func fig11Run(seed int64, sdnfv bool) (times, out []float64) {
	env := sim.NewEnv(seed)
	const (
		nFlows       = 400
		meanLifetime = 40.0
		pktPerSec    = 20.0 // per-flow packet rate (scaled from testbed)
		policyOn     = 60.0
		policyOff    = 240.0
		horizon      = 350.0
	)
	throttling := func() bool {
		t := env.Now()
		return t >= policyOn && t < policyOff
	}

	flows := make(map[int]*fig11Flow, nFlows)
	nextID := 0
	var birth func()
	birth = func() {
		id := nextID
		nextID++
		// A new flow's first packets traverse the policy path in both
		// designs, so its throttle state always matches current policy.
		f := &fig11Flow{rate: pktPerSec, throttled: throttling()}
		flows[id] = f
		life := env.Exp(meanLifetime)
		env.Schedule(life, func() {
			delete(flows, id)
			birth() // replaced by a fresh flow (constant population)
		})
	}
	for i := 0; i < nFlows; i++ {
		birth()
	}

	// Policy transitions: SDNFV pulls every active flow back through the
	// Policy Engine (RequestMe) and rewrites its default within one packet
	// round (~sub-second); the SDN design cannot touch established flows.
	applyAll := func(throttle bool) {
		for _, f := range flows {
			f.throttled = throttle
		}
	}
	if sdnfv {
		env.At(policyOn+0.5, func() { applyAll(true) })
		env.At(policyOff+0.5, func() { applyAll(false) })
	}

	env.Every(1.0, func() bool {
		rate := 0.0
		for _, f := range flows {
			r := f.rate
			if f.throttled {
				r /= 2 // transcoder drops every other packet
			}
			rate += r
		}
		times = append(times, env.Now())
		out = append(out, rate)
		return env.Now() < horizon
	})
	env.Run(horizon)
	return times, out
}

// Fig11 runs both designs on the same seed (same churn sequence).
func Fig11(seed int64) *Fig11Result {
	t1, sdnfvOut := fig11Run(seed, true)
	_, sdnOut := fig11Run(seed, false)
	return &Fig11Result{Times: t1, SDNFVOut: sdnfvOut, SDNOut: sdnOut}
}

func init() {
	register("fig11", func(seed int64) Result { return Fig11(seed) })
}
