package experiments

import (
	"strings"
	"time"

	"sdnfv/internal/flowtable"
	"sdnfv/internal/packet"
)

// MicroResult reproduces the §5.1 flow-management micro-costs: "a Flow
// Table lookup takes an average of 30 nanoseconds, and the NF Manager can
// determine the VM with minimum queue sizes in 15 nanoseconds. Performing
// an SDN lookup takes an average of 31 milliseconds" (the last is a
// controller round trip, deferred off the critical path).
//
// Lookup and min-queue costs are measured on the real implementations;
// the SDN lookup is the modeled controller round trip used across the
// simulator experiments.
type MicroResult struct {
	LookupNs float64
	// BatchLookupNs is the amortized per-packet cost of resolving a
	// 64-descriptor burst through LookupBatch (one snapshot load and one
	// counter update per burst) — the RX path's actual cost per packet.
	BatchLookupNs float64
	MinQueueNs    float64
	SDNLookupMs   float64
}

// Name implements Result.
func (*MicroResult) Name() string { return "micro" }

// Render implements Result.
func (r *MicroResult) Render() string {
	var b strings.Builder
	b.WriteString("§5.1 micro-costs\n")
	b.WriteString(table(
		[]string{"operation", "measured", "paper"},
		[][]string{
			{"flow table lookup", f2(r.LookupNs) + " ns", "30 ns"},
			{"batched lookup (64/burst)", f2(r.BatchLookupNs) + " ns", "-"},
			{"min-queue VM pick", f2(r.MinQueueNs) + " ns", "15 ns"},
			{"SDN lookup (modeled)", f2(r.SDNLookupMs) + " ms", "31 ms"},
		}))
	return b.String()
}

// Micro measures the real costs.
func Micro(seed int64) *MicroResult {
	res := &MicroResult{SDNLookupMs: 31}

	// Flow-table lookup over a populated table of exact-match rules.
	t := flowtable.New()
	keys := make([]packet.FlowKey, 1024)
	for i := range keys {
		keys[i] = packet.FlowKey{
			SrcIP:   packet.IPv4(10, 0, byte(i>>8), byte(i)),
			DstIP:   packet.IPv4(10, 1, 0, 1),
			SrcPort: uint16(1000 + i),
			DstPort: 80,
			Proto:   packet.ProtoUDP,
		}
		_, _ = t.Add(flowtable.Rule{
			Scope:   flowtable.Port(0),
			Match:   flowtable.ExactMatch(keys[i]),
			Actions: []flowtable.Action{flowtable.Forward(1)},
		})
	}
	const lookupIters = 2_000_000
	start := time.Now()
	for i := 0; i < lookupIters; i++ {
		_, _ = t.Lookup(flowtable.Port(0), keys[i&1023])
	}
	res.LookupNs = float64(time.Since(start).Nanoseconds()) / lookupIters

	// The same lookups resolved as 64-descriptor bursts (the RX loop's
	// actual path).
	const burst = 64
	scopes := make([]flowtable.ServiceID, burst)
	bkeys := make([]packet.FlowKey, burst)
	out := make([]*flowtable.Entry, burst)
	for i := range scopes {
		scopes[i] = flowtable.Port(0)
	}
	start = time.Now()
	for i := 0; i < lookupIters; i += burst {
		for j := 0; j < burst; j++ {
			bkeys[j] = keys[(i+j)&1023]
		}
		_ = t.LookupBatch(scopes, bkeys, out)
	}
	res.BatchLookupNs = float64(time.Since(start).Nanoseconds()) / lookupIters

	// Min-queue selection over a handful of replica backlogs (the scan the
	// queue-depth load balancer performs).
	lens := [4]int{int(seed&7) + 3, 7, 2, 9}
	const pickIters = 10_000_000
	sink := 0
	start = time.Now()
	for i := 0; i < pickIters; i++ {
		best, bestLen := 0, lens[0]
		for j := 1; j < len(lens); j++ {
			if lens[j] < bestLen {
				best, bestLen = j, lens[j]
			}
		}
		sink += best
		lens[i&3] = (lens[i&3] + i) & 15
	}
	res.MinQueueNs = float64(time.Since(start).Nanoseconds()) / pickIters
	_ = sink
	return res
}

func init() {
	register("micro", func(seed int64) Result { return Micro(seed) })
}
