package experiments

import (
	"strings"

	"sdnfv/internal/metrics"
	"sdnfv/internal/netem"
	"sdnfv/internal/sim"
	"sdnfv/internal/traffic"
)

// Fig8Result is the Ant Flow Detector experiment (§5.2, Fig. 8): two flows
// share a congested slow link; when Flow 1 drops its rate it is
// reclassified as an "ant" and its default path is changed to a fast link,
// cutting its latency — and relieving Flow 2 as well. When Flow 1 ramps
// back up it is reclassified as an elephant and returns to the slow link.
type Fig8Result struct {
	// Times (s) with per-second mean latency (µs) for each flow.
	Times []float64
	Flow1 []float64
	Flow2 []float64
	// AntWindow is [start, end) of the detected ant phase (reclassification
	// times observed in the run).
	AntWindow [2]float64
}

// Name implements Result.
func (*Fig8Result) Name() string { return "fig8" }

// Render implements Result.
func (r *Fig8Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 8: ant-flow reclassification and latency (µs)\n")
	rows := make([][]string, 0, len(r.Times))
	for i := range r.Times {
		if int(r.Times[i])%10 != 0 { // print every 10 s for readability
			continue
		}
		rows = append(rows, []string{f0(r.Times[i]), f2(r.Flow1[i]), f2(r.Flow2[i])})
	}
	b.WriteString(table([]string{"t (s)", "Flow1 (µs)", "Flow2 (µs)"}, rows))
	b.WriteString("ant phase: [")
	b.WriteString(f2(r.AntWindow[0]))
	b.WriteString(", ")
	b.WriteString(f2(r.AntWindow[1]))
	b.WriteString("] s\n")
	return b.String()
}

// Fig8 runs the experiment. Rates are scaled down ~100× from the paper's
// testbed (shape depends only on utilization ratios); the slow link runs
// near saturation when both flows are elephants.
func Fig8(seed int64) *Fig8Result {
	env := sim.NewEnv(seed)
	sink := netem.NewSink(env)

	// Slow link: 40 Mbps, 50 µs propagation. Fast link: 400 Mbps, 20 µs.
	slow := netem.NewLink(env, 40e6, 50e-6, 2048, sink)
	fast := netem.NewLink(env, 400e6, 20e-6, 2048, sink)

	// Flow 1: 64 B packets, high→low→high rate. Flow 2: 1024 B constant.
	f1 := traffic.Flow(1, 64, 0)
	f2k := traffic.Flow(2, 1024, 0)
	f1Profile := traffic.OnOffProfile{
		Times: []float64{0, 51, 105},
		Rates: []float64{12e6, 0.8e6, 12e6},
	}
	const f2Rate = 24e6

	// Ant Detector: windowed per-flow rate/size classification (the same
	// policy as nfs.AntDetector, §5.2) steering flows between links.
	type flowState struct {
		bytes, packets float64
		winStart       float64
		isAnt          bool
	}
	states := map[uint64]*flowState{}
	dests := map[uint64]netem.Stage{}
	var antStart, antEnd float64
	classify := func(p *netem.SimPacket) netem.Stage {
		id := p.Key.Hash()
		st, ok := states[id]
		if !ok {
			st = &flowState{winStart: env.Now()}
			states[id] = st
			dests[id] = slow
		}
		st.bytes += float64(p.Bytes)
		st.packets++
		const window = 2.0 // paper: two-second observation interval
		if env.Now()-st.winStart >= window {
			rate := st.bytes * 8 / (env.Now() - st.winStart)
			meanSize := st.bytes / st.packets
			ant := rate <= 2e6 && meanSize <= 256
			if ant != st.isAnt {
				st.isAnt = ant
				if ant {
					dests[id] = fast // ChangeDefault to the fast path
					if antStart == 0 {
						antStart = env.Now()
					}
				} else {
					dests[id] = slow
					if antStart > 0 && antEnd == 0 {
						antEnd = env.Now()
					}
				}
			}
			st.winStart = env.Now()
			st.bytes, st.packets = 0, 0
		}
		return dests[id]
	}
	detector := netem.NewNFStage(env, 4096, func(*netem.SimPacket) sim.Time {
		return 200e-9
	}, classify)

	src1 := netem.NewCBRSource(env, f1.Key, 64, f1Profile.RateAt, detector)
	src2 := netem.NewCBRSource(env, f2k.Key, 1024, func(sim.Time) float64 { return f2Rate }, detector)
	src1.Start()
	src2.Start()

	// Per-second latency sampling.
	res := &Fig8Result{}
	lat1 := metrics.NewHistogram()
	lat2 := metrics.NewHistogram()
	sink.OnPacket = func(p *netem.SimPacket) {
		us := (env.Now() - p.Born) * 1e6
		if p.Key == f1.Key {
			lat1.Observe(us)
		} else {
			lat2.Observe(us)
		}
	}
	env.Every(1.0, func() bool {
		res.Times = append(res.Times, env.Now())
		res.Flow1 = append(res.Flow1, lat1.Mean())
		res.Flow2 = append(res.Flow2, lat2.Mean())
		lat1 = metrics.NewHistogram()
		lat2 = metrics.NewHistogram()
		return true
	})

	env.Run(180)
	src1.Stop()
	src2.Stop()
	if antEnd == 0 {
		antEnd = 180
	}
	res.AntWindow = [2]float64{antStart, antEnd}
	return res
}

func init() {
	register("fig8", func(seed int64) Result { return Fig8(seed) })
}
