package experiments

import (
	"math/rand"
	"strings"

	"sdnfv/internal/metrics"
)

// chainKind distinguishes the measured configurations of Table 2 / Fig. 6.
type chainKind int

const (
	chainDPDK chainKind = iota // simple forwarder, no VMs
	chainSeq
	chainPar
)

// latencyModel is the calibrated per-packet latency model of the real
// engine (§4–5.1). Costs are microseconds.
//
// Calibration: the paper's Table 2 deltas over the DPDK baseline give
// ≈1.1 µs per sequential VM hop (ring enqueue + NF wakeup + ring dequeue +
// TX processing) and ≈0.3 µs per additional parallel member (descriptor
// copy + reference-count join). The wire+NIC+generator baseline is
// 26.66 µs average (23–29 µs spread). Rare scheduler interference adds a
// long tail, visible in the paper's Max column.
type latencyModel struct {
	baseMinUs, baseMaxUs float64
	hopUs                float64
	hopJitterUs          float64
	parMemberUs          float64
	spikeProb            float64
	spikeMinUs           float64
	spikeMaxUs           float64
	// computeUs draws the NF's per-packet processing time (Fig. 6 uses a
	// heavy distribution; Table 2 uses zero).
	computeUs func(rng *rand.Rand) float64
}

func defaultLatencyModel() latencyModel {
	return latencyModel{
		baseMinUs: 23, baseMaxUs: 29.5,
		hopUs: 1.02, hopJitterUs: 0.25,
		parMemberUs: 0.31,
		spikeProb:   0.004, spikeMinUs: 4, spikeMaxUs: 19,
		computeUs: func(*rand.Rand) float64 { return 0 },
	}
}

// sample draws one round-trip latency in µs for the given chain.
func (m latencyModel) sample(rng *rand.Rand, kind chainKind, vms int) float64 {
	lat := m.baseMinUs + rng.Float64()*(m.baseMaxUs-m.baseMinUs)
	spike := func() {
		if rng.Float64() < m.spikeProb {
			lat += m.spikeMinUs + rng.Float64()*(m.spikeMaxUs-m.spikeMinUs)
		}
	}
	switch kind {
	case chainDPDK:
		spike()
	case chainSeq:
		for v := 0; v < vms; v++ {
			lat += m.hopUs + rng.Float64()*m.hopJitterUs + m.computeUs(rng)
			spike()
		}
	case chainPar:
		// One dispatch hop; members process concurrently, so compute
		// contributes its maximum; each extra member adds join overhead.
		lat += m.hopUs + rng.Float64()*m.hopJitterUs
		maxCompute := 0.0
		for v := 0; v < vms; v++ {
			if c := m.computeUs(rng); c > maxCompute {
				maxCompute = c
			}
			if v > 0 {
				lat += m.parMemberUs + rng.Float64()*0.1
			}
		}
		lat += maxCompute
		spike()
	}
	return lat
}

// Table2Result reproduces Table 2: average/min/max round-trip latency for
// no-op NF chains.
type Table2Result struct {
	Rows []Table2Row
}

// Table2Row is one configuration's latency summary (µs).
type Table2Row struct {
	Label         string
	Avg, Min, Max float64
}

// Name implements Result.
func (*Table2Result) Name() string { return "table2" }

// Render implements Result.
func (r *Table2Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 2: roundtrip latency for no-op NFs (µs)\n")
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{row.Label, f2(row.Avg), f2(row.Min), f2(row.Max)}
	}
	b.WriteString(table([]string{"#VM", "Avg", "Min", "Max"}, rows))
	return b.String()
}

// table2Configs lists the measured rows in the paper's order.
type table2Config struct {
	label string
	kind  chainKind
	vms   int
}

func table2Configs() []table2Config {
	return []table2Config{
		{"0VM (dpdk)", chainDPDK, 0},
		{"1VM", chainSeq, 1},
		{"2VM (parallel)", chainPar, 2},
		{"3VM (parallel)", chainPar, 3},
		{"2VM (sequential)", chainSeq, 2},
		{"3VM (sequential)", chainSeq, 3},
	}
}

// Table2 runs the latency measurement: 3 runs × 10k packets each (the
// paper sends 1000-byte packets at 100 Mbps and averages across runs).
func Table2(seed int64) *Table2Result {
	m := defaultLatencyModel()
	res := &Table2Result{}
	for _, cfg := range table2Configs() {
		h := metrics.NewHistogram()
		for run := 0; run < 3; run++ {
			rng := rand.New(rand.NewSource(seed + int64(run)))
			for i := 0; i < 10_000; i++ {
				h.Observe(m.sample(rng, cfg.kind, cfg.vms))
			}
		}
		res.Rows = append(res.Rows, Table2Row{
			Label: cfg.label, Avg: h.Mean(), Min: h.Min(), Max: h.Max(),
		})
	}
	return res
}

// Fig6Result is the latency CDF with compute-intensive NFs.
type Fig6Result struct {
	// Labels index the five measured configurations; CDFs[i] holds
	// latency (µs) at each of the shared Fractions.
	Labels    []string
	Fractions []float64
	CDFs      [][]float64
}

// Name implements Result.
func (*Fig6Result) Name() string { return "fig6" }

// Render implements Result.
func (r *Fig6Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 6: latency CDF with compute-intensive NFs (µs at CDF fraction)\n")
	header := append([]string{"CDF"}, r.Labels...)
	rows := make([][]string, len(r.Fractions))
	for i, f := range r.Fractions {
		row := []string{f2(f)}
		for c := range r.CDFs {
			row = append(row, f2(r.CDFs[c][i]))
		}
		rows[i] = row
	}
	b.WriteString(table(header, rows))
	return b.String()
}

// Fig6 runs the compute-intensive latency CDFs (paper: each VM performs
// intensive computation per packet; parallelism cuts the latency of long
// chains).
func Fig6(seed int64) *Fig6Result {
	m := defaultLatencyModel()
	// Intensive computation: 20–60 µs per packet per NF.
	m.computeUs = func(rng *rand.Rand) float64 { return 20 + rng.Float64()*40 }
	configs := []table2Config{
		{"1VM", chainSeq, 1},
		{"2VM(parallel)", chainPar, 2},
		{"3VM(parallel)", chainPar, 3},
		{"2VM(sequential)", chainSeq, 2},
		{"3VM(sequential)", chainSeq, 3},
	}
	fractions := []float64{0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}
	res := &Fig6Result{Fractions: fractions}
	for _, cfg := range configs {
		h := metrics.NewHistogram()
		for run := 0; run < 3; run++ {
			rng := rand.New(rand.NewSource(seed + int64(run)))
			for i := 0; i < 10_000; i++ {
				h.Observe(m.sample(rng, cfg.kind, cfg.vms))
			}
		}
		var cdf []float64
		for _, f := range fractions {
			cdf = append(cdf, h.Quantile(f))
		}
		res.Labels = append(res.Labels, cfg.label)
		res.CDFs = append(res.CDFs, cdf)
	}
	return res
}

func init() {
	register("table2", func(seed int64) Result { return Table2(seed) })
	register("fig6", func(seed int64) Result { return Fig6(seed) })
}
