package experiments

import (
	"strings"

	"sdnfv/internal/netem"
	"sdnfv/internal/sim"
	"sdnfv/internal/traffic"
)

// Fig1Result is the OVS + controller bottleneck experiment (Fig. 1):
// maximum lossless throughput vs the percentage of packets that must
// consult the SDN controller, for 256 B and 1000 B packets.
type Fig1Result struct {
	// Pcts is the x axis (percent of packets punted).
	Pcts []float64
	// Gbps1000 and Gbps256 are the measured max throughputs.
	Gbps1000 []float64
	Gbps256  []float64
}

// Name implements Result.
func (*Fig1Result) Name() string { return "fig1" }

// Render implements Result.
func (r *Fig1Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 1: max throughput vs % packets to SDN controller\n")
	rows := make([][]string, len(r.Pcts))
	for i := range r.Pcts {
		rows[i] = []string{f0(r.Pcts[i]), f2(r.Gbps1000[i]), f2(r.Gbps256[i])}
	}
	b.WriteString(table([]string{"% to ctrl", "1000B (Gbps)", "256B (Gbps)"}, rows))
	return b.String()
}

// fig1Config mirrors the paper's testbed: a 10 GbE port, an OVS-class
// software switch, and a single-threaded POX-class controller.
type fig1Config struct {
	lineRateGbps float64
	// switchPps is the software switch's forwarding capacity.
	switchPps float64
	// ctrlService is the controller's per-request processing time
	// (POX, single python thread: O(10⁻⁴) s).
	ctrlService float64
	ctrlRTT     float64
}

func defaultFig1Config() fig1Config {
	return fig1Config{
		lineRateGbps: 10,
		switchPps:    4.8e6, // OVS kernel path, single box
		ctrlService:  180e-6,
		ctrlRTT:      200e-6,
	}
}

// fig1MaxThroughput finds, by bisection on offered load, the highest
// throughput sustained with <1% loss for the given packet size and punt
// fraction.
func fig1MaxThroughput(cfg fig1Config, seed int64, pktBytes int, missFrac float64) float64 {
	lossAt := func(offeredGbps float64) float64 {
		env := sim.NewEnv(seed)
		sink := netem.NewSink(env)
		ctrl := netem.NewControllerModel(env, cfg.ctrlService, cfg.ctrlRTT, 512)
		sw := netem.NewOVSSwitch(env, cfg.switchPps, missFrac, ctrl, sink)
		key := traffic.Flow(0, pktBytes, 0).Key
		src := netem.NewCBRSource(env, key, pktBytes, func(sim.Time) float64 {
			return offeredGbps * 1e9
		}, sw)
		src.Start()
		const horizon = 0.12 // seconds of simulated traffic
		env.Run(horizon)
		src.Stop()
		env.Run(horizon + 0.05) // drain
		sent := float64(src.Emitted.Value())
		got := float64(sink.Packets.Value())
		if sent == 0 {
			return 0
		}
		return 1 - got/sent
	}
	// "Max throughput" is the highest offered rate the system sustains
	// near-losslessly (0.2% tolerance covers drain-window edge effects).
	lo, hi := 0.0, cfg.lineRateGbps
	for iter := 0; iter < 9; iter++ {
		mid := (lo + hi) / 2
		if lossAt(mid) < 0.002 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// Fig1 runs the experiment.
func Fig1(seed int64) *Fig1Result {
	cfg := defaultFig1Config()
	pcts := []float64{0, 1, 2, 5, 10, 15, 20, 25}
	res := &Fig1Result{Pcts: pcts}
	for _, p := range pcts {
		res.Gbps1000 = append(res.Gbps1000, fig1MaxThroughput(cfg, seed, 1000, p/100))
		res.Gbps256 = append(res.Gbps256, fig1MaxThroughput(cfg, seed, 256, p/100))
	}
	return res
}

func init() {
	register("fig1", func(seed int64) Result { return Fig1(seed) })
}
