package experiments

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"sync/atomic"
	"time"

	"sdnfv/internal/acmatch"
	"sdnfv/internal/dataplane"
	"sdnfv/internal/flowtable"
	"sdnfv/internal/metrics"
	"sdnfv/internal/nfs"
	"sdnfv/internal/portio"
	"sdnfv/internal/telemetry"
	"sdnfv/internal/traffic"
)

// WireResult is the real-socket cross-host experiment: the firewall→IDS
// service chain split across two NF hosts linked by UDP loopback wires
// (internal/portio drivers) instead of in-process fabric channels. Host
// A runs the firewall and injects; its chain egresses port 2 onto a UDP
// socket, host B ingests on port 2, runs the IDS, and egresses port 3
// back over a second UDP socket to host A, where the frames exit port 1
// into the latency sink. With SDNFV_WIRE_EXEC set (the sdnfv-experiments
// binary sets it to itself), host B runs in a separate OS process and
// the endpoints handshake over the child's stdio — the same chain, two
// address spaces, real datagrams in between.
type WireResult struct {
	// Mode is "in-process" or "two-process".
	Mode string
	// Sent/Delivered count frames injected at A and frames that returned
	// through the full A→wire→B→wire→A chain.
	Sent, Delivered uint64
	// P50Us/P95Us is the end-to-end chain latency across both wire
	// crossings, from the generator timestamp embedded in the payload.
	P50Us, P95Us float64
	// A and B are the final host stats, wire driver counters included.
	A, B dataplane.HostStats
	// WireABExact/WireBAExact report that every frame the sending driver
	// put on the wire was read off it by the receiving driver.
	WireABExact, WireBAExact bool
	// AccountingOK reports the extended conservation identity
	// rx == tx+drops+overflows+txdrops+rxdrops and a leak-free pool on
	// both hosts.
	AccountingOK bool
	// TelemetryScrapes counts the /metrics scrapes taken over a live
	// telemetry HTTP server during the run (baseline, mid-injection,
	// final). TelemetryOK reports that every scrape passed the
	// conformance parser, no counter regressed between scrapes, and the
	// final scrape satisfies the accounting identity from scraped
	// values alone — the exporter reconciles with HostStats.
	TelemetryScrapes int
	TelemetryOK      bool
}

// Name implements Result.
func (*WireResult) Name() string { return "wire" }

// Render implements Result.
func (r *WireResult) Render() string {
	var b strings.Builder
	b.WriteString(fmt.Sprintf("Cross-host chain over real sockets (%s): firewall@A -> UDP -> IDS@B -> UDP -> A\n\n", r.Mode))
	hostRow := func(name string, st dataplane.HostStats) []string {
		return []string{name, f0(float64(st.RxPackets)), f0(float64(st.TxPackets)),
			f0(float64(st.Drops)), f0(float64(st.Overflows)),
			f0(float64(st.TxDrops)), f0(float64(st.RxDrops))}
	}
	b.WriteString(table(
		[]string{"host", "rx", "tx", "drops", "overflows", "txdrops", "rxdrops"},
		[][]string{hostRow("A", r.A), hostRow("B", r.B)}))
	b.WriteString("\nwire drivers:\n")
	for _, h := range []struct {
		name string
		st   dataplane.HostStats
	}{{"A", r.A}, {"B", r.B}} {
		for _, ps := range h.st.Ports {
			b.WriteString(fmt.Sprintf("  %s port %d (%s): rx=%d tx=%d oversize=%d truncated=%d refused=%d txdrops=%d\n",
				h.name, ps.Port, ps.Driver, ps.RxFrames, ps.TxFrames,
				ps.RxOversize, ps.RxTruncated, ps.RxRefused, ps.TxDrops))
		}
	}
	b.WriteString(fmt.Sprintf("\nsent %d, delivered %d through both socket crossings\n", r.Sent, r.Delivered))
	b.WriteString(fmt.Sprintf("chain latency across two UDP hops: p50 %.1f us / p95 %.1f us\n", r.P50Us, r.P95Us))
	b.WriteString(fmt.Sprintf("wire exactness: A->B=%v B->A=%v; per-host accounting: ok=%v\n",
		r.WireABExact, r.WireBAExact, r.AccountingOK))
	b.WriteString(fmt.Sprintf("telemetry: scrapes=%d ok=%v\n", r.TelemetryScrapes, r.TelemetryOK))
	return b.String()
}

// Wire chain constants: frames enter A on port 0, cross to B via port
// 2, come back via port 3, and exit A on port 1.
const (
	wireSvcFW  flowtable.ServiceID = 1
	wireSvcIDS flowtable.ServiceID = 2
	wireN                          = 6000
	wireFlows                      = 32
)

// wireEnd is one host plus its two UDP wire sockets.
type wireEnd struct {
	host       *dataplane.Host
	drv2, drv3 *portio.UDPDriver
	b2, b3     *portio.Binding
}

// close tears the end down in drain order: host first, then drivers.
func (w *wireEnd) close() {
	w.host.Stop()
	_ = w.b2.Close()
	_ = w.b3.Close()
}

func wireHostConfig() dataplane.Config {
	return dataplane.Config{PoolSize: 4096, RingSize: 1024, TXThreads: 1}
}

// bindWirePorts opens both UDP sockets on ephemeral loopback ports and
// binds them behind ports 2 and 3.
func (w *wireEnd) bindWirePorts() error {
	w.drv2 = portio.NewUDP(portio.UDPConfig{Listen: "127.0.0.1:0", QueueDepth: 1024})
	w.drv3 = portio.NewUDP(portio.UDPConfig{Listen: "127.0.0.1:0", QueueDepth: 1024})
	var err error
	if w.b2, err = portio.Bind(w.host, 2, w.drv2); err != nil {
		return err
	}
	if w.b3, err = portio.Bind(w.host, 3, w.drv3); err != nil {
		return err
	}
	return nil
}

// newWireA builds host A: firewall chain egressing onto the wire, and
// the port-1 latency sink for frames returning from B.
func newWireA() (*wireEnd, *metrics.Histogram, *atomic.Uint64, error) {
	w := &wireEnd{host: dataplane.NewHost(wireHostConfig())}
	if _, err := w.host.AddNF(wireSvcFW, &nfs.Firewall{DefaultAllow: true}, 0); err != nil {
		return nil, nil, nil, err
	}
	rules := []flowtable.Rule{
		{Scope: flowtable.Port(0), Match: flowtable.MatchAll,
			Actions: []flowtable.Action{flowtable.Forward(wireSvcFW)}},
		{Scope: wireSvcFW, Match: flowtable.MatchAll,
			Actions: []flowtable.Action{flowtable.Out(2)}},
		{Scope: flowtable.Port(3), Match: flowtable.MatchAll,
			Actions: []flowtable.Action{flowtable.Out(1)}},
	}
	for _, r := range rules {
		if _, err := w.host.Table().Add(r); err != nil {
			return nil, nil, nil, err
		}
	}
	hist := metrics.NewHistogram()
	var delivered atomic.Uint64
	w.host.BindPort(1, func(_ int, data []byte, _ *dataplane.Desc) {
		delivered.Add(1)
		if ts, ok := traffic.ExtractTimestamp(data); ok {
			hist.Observe(float64(time.Now().UnixNano() - ts))
		}
	})
	if err := w.host.Start(); err != nil {
		return nil, nil, nil, err
	}
	if err := w.bindWirePorts(); err != nil {
		return nil, nil, nil, err
	}
	return w, hist, &delivered, nil
}

// newWireB builds host B: wire ingress on port 2, IDS, wire egress on
// port 3.
func newWireB() (*wireEnd, error) {
	w := &wireEnd{host: dataplane.NewHost(wireHostConfig())}
	sigs := acmatch.New([]string{"ATTACK-SIGNATURE"})
	if _, err := w.host.AddNF(wireSvcIDS, &nfs.IDS{Matcher: sigs, Scrubber: wireSvcIDS}, 0); err != nil {
		return nil, err
	}
	rules := []flowtable.Rule{
		{Scope: flowtable.Port(2), Match: flowtable.MatchAll,
			Actions: []flowtable.Action{flowtable.Forward(wireSvcIDS)}},
		{Scope: wireSvcIDS, Match: flowtable.MatchAll,
			Actions: []flowtable.Action{flowtable.Out(3)}},
	}
	for _, r := range rules {
		if _, err := w.host.Table().Add(r); err != nil {
			return nil, err
		}
	}
	if err := w.host.Start(); err != nil {
		return nil, err
	}
	if err := w.bindWirePorts(); err != nil {
		return nil, err
	}
	return w, nil
}

// wireInject pushes paced traffic into A port 0. The pacing (~40 kpps)
// keeps the offered load under the UDP writer's syscall rate so the
// latency histogram measures the chain and the wire crossings, not a
// standing queue the generator built itself.
func wireInject(a *wireEnd, seed int64, n int) uint64 {
	factory := traffic.NewFactory()
	var sent uint64
	for i := 0; i < n; i++ {
		spec := traffic.Flow(int(seed)*wireFlows+i%wireFlows, 512, 0)
		frame, err := factory.Frame(spec, time.Now().UnixNano())
		if err != nil {
			panic(err)
		}
		for {
			if err := a.host.Inject(0, frame); err == nil {
				sent++
				break
			}
			time.Sleep(2 * time.Microsecond)
		}
		if i%2 == 1 {
			time.Sleep(50 * time.Microsecond)
		}
	}
	return sent
}

// wireWaitDelivered waits for the full round trip to complete (or the
// timeout: wire loss is accounted, not fatal).
func wireWaitDelivered(delivered *atomic.Uint64, want uint64, timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) && delivered.Load() < want {
		time.Sleep(time.Millisecond)
	}
}

// wireFinish computes the cross-checks once both hosts' final stats are
// in hand.
func (r *WireResult) wireFinish() {
	port := func(st dataplane.HostStats, p int) dataplane.PortDriverStats {
		for _, ps := range st.Ports {
			if ps.Port == p {
				return ps
			}
		}
		return dataplane.PortDriverStats{}
	}
	r.WireABExact = port(r.A, 2).TxFrames == port(r.B, 2).RxFrames
	r.WireBAExact = port(r.B, 3).TxFrames == port(r.A, 3).RxFrames
	identity := func(st dataplane.HostStats) bool {
		return st.RxPackets == st.TxPackets+st.Drops+st.Overflows+st.TxDrops+st.RxDrops &&
			st.Pool.InUse == 0
	}
	r.AccountingOK = identity(r.A) && identity(r.B)
}

// wireTelemetry scrapes a live telemetry server over HTTP during the
// run and accumulates conformance evidence: every scrape must parse,
// counters must be monotonic across scrapes, and the final scrape must
// satisfy the host accounting identity from scraped values alone.
type wireTelemetry struct {
	srv     *telemetry.Server
	scrapes []*telemetry.Parsed
	errs    []string
}

func newWireTelemetry(reg *telemetry.Registry) *wireTelemetry {
	srv, err := telemetry.Serve("127.0.0.1:0", reg)
	if err != nil {
		panic(err)
	}
	return &wireTelemetry{srv: srv}
}

func (wt *wireTelemetry) scrape() {
	resp, err := http.Get("http://" + wt.srv.Addr() + "/metrics")
	if err != nil {
		wt.errs = append(wt.errs, fmt.Sprintf("scrape: %v", err))
		return
	}
	defer resp.Body.Close()
	p, err := telemetry.ParseText(resp.Body)
	if err != nil {
		wt.errs = append(wt.errs, fmt.Sprintf("conformance: %v", err))
		return
	}
	if len(wt.scrapes) > 0 {
		if regs := telemetry.CounterRegressions(wt.scrapes[len(wt.scrapes)-1], p); len(regs) > 0 {
			wt.errs = append(wt.errs, "counter regressions: "+strings.Join(regs, "; "))
		}
	}
	wt.scrapes = append(wt.scrapes, p)
}

// finish takes the final scrape (hosts drained, counters frozen),
// verifies the accounting identity for every host label present, and
// folds the verdict into res.
func (wt *wireTelemetry) finish(res *WireResult) {
	wt.scrape()
	_ = wt.srv.Close()
	res.TelemetryScrapes = len(wt.scrapes)
	if len(wt.scrapes) == 0 {
		return
	}
	final := wt.scrapes[len(wt.scrapes)-1]
	rxs := final.Find("sdnfv_host_rx_packets_total", nil)
	identityOK := len(rxs) > 0
	for _, rx := range rxs {
		sel := map[string]string{"host": rx.Labels["host"], "datapath": rx.Labels["datapath"]}
		var sum float64
		for _, name := range []string{
			"sdnfv_host_tx_packets_total", "sdnfv_host_drops_total",
			"sdnfv_host_overflows_total", "sdnfv_host_tx_drops_total",
			"sdnfv_host_rx_drops_total",
		} {
			v, ok := final.Value(name, sel)
			if !ok {
				identityOK = false
			}
			sum += v
		}
		if rx.Value != sum {
			identityOK = false
		}
	}
	res.TelemetryOK = len(wt.errs) == 0 && identityOK
}

// Wire runs the experiment: two-process when SDNFV_WIRE_EXEC names a
// peer binary (cmd/sdnfv-experiments sets it to itself), in-process
// otherwise (both hosts in this process, still over real UDP sockets).
func Wire(seed int64) *WireResult {
	if exe := os.Getenv("SDNFV_WIRE_EXEC"); exe != "" {
		return wireTwoProcess(seed, exe)
	}
	return wireInProcess(seed)
}

func wireInProcess(seed int64) *WireResult {
	res := &WireResult{Mode: "in-process"}
	a, hist, delivered, err := newWireA()
	if err != nil {
		panic(err)
	}
	b, err := newWireB()
	if err != nil {
		panic(err)
	}
	// Cross-wire the endpoints: A's chain egress feeds B's port-2
	// socket, B's chain egress feeds A's port-3 socket.
	if err := a.drv2.SetPeer(b.drv2.LocalAddr().String()); err != nil {
		panic(err)
	}
	if err := b.drv3.SetPeer(a.drv3.LocalAddr().String()); err != nil {
		panic(err)
	}

	reg := telemetry.NewRegistry()
	telemetry.RegisterHost(reg, "A", 0xa, a.host)
	telemetry.RegisterHost(reg, "B", 0xb, b.host)
	reg.MustRegister(telemetry.NewHistogramCollector(
		"sdnfv_wire_latency_ns", "End-to-end wire chain latency.",
		nil, hist, telemetry.DefaultLatencyBoundsNs))
	wt := newWireTelemetry(reg)
	wt.scrape() // baseline

	half := wireN / 2
	res.Sent = wireInject(a, seed, half)
	wt.scrape() // mid-run, traffic in flight
	res.Sent += wireInject(a, seed, wireN-half)
	wireWaitDelivered(delivered, res.Sent, 20*time.Second)
	a.host.WaitIdle(10 * time.Second)
	b.host.WaitIdle(10 * time.Second)
	b.close()
	a.close()

	res.Delivered = delivered.Load()
	res.P50Us = hist.Quantile(0.50) / 1e3
	res.P95Us = hist.Quantile(0.95) / 1e3
	res.A = a.host.Stats()
	res.B = b.host.Stats()
	res.wireFinish()
	wt.finish(res) // final scrape: hosts stopped, counters frozen
	return res
}

// wireTwoProcess runs host B in a child process (the same binary with
// SDNFV_WIRE_ROLE=peer, see RunWirePeer) and handshakes the ephemeral
// socket addresses over the child's stdio: child prints
// "READY <b2> <b3>", parent answers "PEER <a3>", child confirms "GO".
// Closing the child's stdin asks it to drain and print "STATS <json>".
func wireTwoProcess(seed int64, exe string) *WireResult {
	res := &WireResult{Mode: "two-process"}
	a, hist, delivered, err := newWireA()
	if err != nil {
		panic(err)
	}

	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), "SDNFV_WIRE_ROLE=peer")
	cmd.Stderr = os.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		panic(err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		panic(err)
	}
	if err := cmd.Start(); err != nil {
		panic(fmt.Sprintf("wire: spawn peer %s: %v", exe, err))
	}
	lines := bufio.NewScanner(stdout)
	readLine := func(prefix string) string {
		for lines.Scan() {
			line := strings.TrimSpace(lines.Text())
			if strings.HasPrefix(line, prefix) {
				return strings.TrimSpace(strings.TrimPrefix(line, prefix))
			}
		}
		panic(fmt.Sprintf("wire: peer exited before %q (scan err %v)", prefix, lines.Err()))
	}

	ready := strings.Fields(readLine("READY"))
	if len(ready) != 2 {
		panic(fmt.Sprintf("wire: bad READY %q", ready))
	}
	if err := a.drv2.SetPeer(ready[0]); err != nil {
		panic(err)
	}
	fmt.Fprintf(stdin, "PEER %s\n", a.drv3.LocalAddr())
	readLine("GO")

	// Host B lives in the peer process; only A is scrapeable here. Its
	// identity still closes over the full round trip once drained.
	reg := telemetry.NewRegistry()
	telemetry.RegisterHost(reg, "A", 0xa, a.host)
	reg.MustRegister(telemetry.NewHistogramCollector(
		"sdnfv_wire_latency_ns", "End-to-end wire chain latency.",
		nil, hist, telemetry.DefaultLatencyBoundsNs))
	wt := newWireTelemetry(reg)
	wt.scrape() // baseline

	half := wireN / 2
	res.Sent = wireInject(a, seed, half)
	wt.scrape() // mid-run, traffic in flight
	res.Sent += wireInject(a, seed, wireN-half)
	wireWaitDelivered(delivered, res.Sent, 20*time.Second)
	a.host.WaitIdle(10 * time.Second)

	// Ask the peer to drain and report, then collect its final stats.
	stdin.Close()
	var bstats dataplane.HostStats
	if err := json.Unmarshal([]byte(readLine("STATS")), &bstats); err != nil {
		panic(fmt.Sprintf("wire: peer stats: %v", err))
	}
	if err := cmd.Wait(); err != nil {
		panic(fmt.Sprintf("wire: peer exit: %v", err))
	}
	a.close()

	res.Delivered = delivered.Load()
	res.P50Us = hist.Quantile(0.50) / 1e3
	res.P95Us = hist.Quantile(0.95) / 1e3
	res.A = a.host.Stats()
	res.B = bstats
	res.wireFinish()
	wt.finish(res) // final scrape: host A stopped, counters frozen
	return res
}

// RunWirePeer is the child side of the two-process wire experiment: it
// serves host B until stdin closes, then drains and prints its stats.
// cmd/sdnfv-experiments calls it when SDNFV_WIRE_ROLE=peer.
func RunWirePeer() error {
	b, err := newWireB()
	if err != nil {
		return err
	}
	fmt.Printf("READY %s %s\n", b.drv2.LocalAddr(), b.drv3.LocalAddr())
	in := bufio.NewScanner(os.Stdin)
	for in.Scan() {
		line := strings.TrimSpace(in.Text())
		if addr, ok := strings.CutPrefix(line, "PEER "); ok {
			if err := b.drv3.SetPeer(strings.TrimSpace(addr)); err != nil {
				return err
			}
			fmt.Println("GO")
		}
	}
	// Stdin closed: the parent is done injecting. Drain and report.
	b.host.WaitIdle(10 * time.Second)
	b.close()
	st := b.host.Stats()
	j, err := json.Marshal(st)
	if err != nil {
		return err
	}
	fmt.Printf("STATS %s\n", j)
	return nil
}

func init() {
	register("wire", func(seed int64) Result { return Wire(seed) })
}
