package experiments

import (
	"strings"

	"sdnfv/internal/netem"
	"sdnfv/internal/sim"
)

// Fig10Result is the flow-setup scalability comparison (§5.3, Fig. 10):
// completed flow setups per second versus offered new-flow rate. In the
// SDN design the controller must see the first two packets of every flow
// (connection ACK + HTTP reply) before installing a rule; in SDNFV only
// the first packet's header goes to the controller while the Video
// Detector and Policy Engine decide locally.
type Fig10Result struct {
	OfferedPerSec []float64
	SDNFVOut      []float64
	SDNOut        []float64
}

// Name implements Result.
func (*Fig10Result) Name() string { return "fig10" }

// Render implements Result.
func (r *Fig10Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 10: completed flow setups/s vs offered new flows/s\n")
	rows := make([][]string, len(r.OfferedPerSec))
	for i := range r.OfferedPerSec {
		rows[i] = []string{f0(r.OfferedPerSec[i]), f0(r.SDNFVOut[i]), f0(r.SDNOut[i])}
	}
	b.WriteString(table([]string{"new flows/s", "SDNFV", "SDN"}, rows))
	return b.String()
}

// fig10Run measures completed setups/s at one offered rate.
//
// SDN mode: every new flow costs the single-threaded controller one unit
// of work covering its first two packets (the connection ACK and the HTTP
// reply both traverse the controller, which hosts the Video Detector and
// Policy Engine); flows arriving to a full controller queue are lost. The
// controller therefore plateaus near 1/serviceTime ≈ 1100 flows/s. SDNFV
// mode: flow decisions are made by local NFs at data-plane speed, so the
// pipeline sustains ≈9× that rate (the paper's measured gap) before the
// controller becomes the next bottleneck.
func fig10Run(seed int64, offered float64, sdnfv bool) float64 {
	env := sim.NewEnv(seed)
	completed := 0

	// POX-class controller: ~0.9 ms of work per new flow, single server.
	ctrl := netem.NewControllerModel(env, 900e-6, 200e-6, 256)
	// Local NF pipeline: Video Detector + Policy Engine at data-plane
	// speed.
	nfPipeline := sim.NewQueue(env, 4096)
	const nfSetupCost = 100e-6 // two local NF decisions per flow

	const horizon = 4.0
	count := func() {
		if env.Now() <= horizon {
			completed++
		}
	}
	arrive := func() {
		if sdnfv {
			nfPipeline.Offer(nfSetupCost, count)
			return
		}
		// A full controller queue loses the flow (control.ErrQueueFull).
		_ = ctrl.Submit(count)
	}

	interval := 1 / offered
	var schedule func()
	t := 0.0
	schedule = func() {
		arrive()
		t += interval
		if t < horizon {
			env.Schedule(interval, schedule)
		}
	}
	env.Schedule(0, schedule)
	env.Run(horizon + 1) // drain
	return float64(completed) / horizon
}

// Fig10 runs the sweep.
func Fig10(seed int64) *Fig10Result {
	res := &Fig10Result{
		OfferedPerSec: []float64{250, 500, 1000, 2000, 4000, 6000, 8000, 10000, 12000},
	}
	for _, r := range res.OfferedPerSec {
		res.SDNFVOut = append(res.SDNFVOut, fig10Run(seed, r, true))
		res.SDNOut = append(res.SDNOut, fig10Run(seed, r, false))
	}
	return res
}

func init() {
	register("fig10", func(seed int64) Result { return Fig10(seed) })
}
