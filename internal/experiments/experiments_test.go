package experiments

import (
	"strings"
	"testing"
)

// The experiment tests assert the paper's qualitative shapes, not absolute
// numbers — who wins, by roughly what factor, and where crossovers fall.

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig1", "fig5", "table2", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "micro", "scale", "cluster", "churn"}
	have := map[string]bool{}
	for _, n := range Names() {
		have[n] = true
	}
	for _, n := range want {
		if !have[n] {
			t.Errorf("experiment %q not registered", n)
		}
	}
	if _, err := Run("nope", 1); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestFig1Shape(t *testing.T) {
	r := Fig1(42)
	if len(r.Pcts) == 0 || r.Pcts[0] != 0 {
		t.Fatalf("pcts = %v", r.Pcts)
	}
	// At 0%: near line rate. At 25%: a small fraction of it.
	if r.Gbps1000[0] < 8 {
		t.Fatalf("0%% throughput = %v, want near 10", r.Gbps1000[0])
	}
	last := len(r.Pcts) - 1
	if r.Gbps1000[last] > r.Gbps1000[0]/5 {
		t.Fatalf("throughput did not collapse: %v -> %v", r.Gbps1000[0], r.Gbps1000[last])
	}
	// 1000B packets always sustain at least as much as 256B (same punt
	// fraction means the controller limit binds at the packet level).
	for i := range r.Pcts {
		if r.Gbps256[i] > r.Gbps1000[i]+0.5 {
			t.Fatalf("256B above 1000B at %v%%: %v vs %v", r.Pcts[i], r.Gbps256[i], r.Gbps1000[i])
		}
	}
	if !strings.Contains(r.Render(), "Figure 1") {
		t.Fatal("render missing title")
	}
}

func TestTable2Shape(t *testing.T) {
	r := Table2(42)
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	get := func(label string) Table2Row {
		for _, row := range r.Rows {
			if row.Label == label {
				return row
			}
		}
		t.Fatalf("row %q missing", label)
		return Table2Row{}
	}
	dpdk := get("0VM (dpdk)")
	one := get("1VM")
	par3 := get("3VM (parallel)")
	seq2 := get("2VM (sequential)")
	seq3 := get("3VM (sequential)")
	// Ordering: dpdk < 1VM < 3VM par < 2VM seq < 3VM seq (paper Table 2).
	if !(dpdk.Avg < one.Avg && one.Avg < par3.Avg && par3.Avg < seq2.Avg && seq2.Avg < seq3.Avg) {
		t.Fatalf("ordering violated: %v", r.Rows)
	}
	// Magnitudes: base ≈26.7 µs, 3VM seq ≈30 µs.
	if dpdk.Avg < 24 || dpdk.Avg > 29 {
		t.Fatalf("dpdk avg = %v, want ≈26.7", dpdk.Avg)
	}
	if seq3.Avg-dpdk.Avg < 2 || seq3.Avg-dpdk.Avg > 5 {
		t.Fatalf("3VM seq delta = %v, want ≈3.3", seq3.Avg-dpdk.Avg)
	}
}

func TestFig6ParallelBeatsSequential(t *testing.T) {
	r := Fig6(42)
	idx := map[string]int{}
	for i, l := range r.Labels {
		idx[l] = i
	}
	median := func(label string) float64 {
		for i, f := range r.Fractions {
			if f == 0.5 {
				return r.CDFs[idx[label]][i]
			}
		}
		t.Fatal("no median fraction")
		return 0
	}
	if !(median("3VM(parallel)") < median("2VM(sequential)")) {
		t.Fatalf("3 parallel VMs (%.1f) not faster than 2 sequential (%.1f)",
			median("3VM(parallel)"), median("2VM(sequential)"))
	}
	if !(median("1VM") < median("3VM(sequential)")) {
		t.Fatal("chain latency not increasing")
	}
}

func TestFig7Shape(t *testing.T) {
	r := Fig7(42)
	// At 64B: dpdk > 1VM > 2par > 2seq; 1VM ≈ 5 Gbps.
	if !(r.DPDK[0] > r.OneVM[0] && r.OneVM[0] >= r.TwoPar[0] && r.TwoPar[0] > r.TwoSeq[0]) {
		t.Fatalf("64B ordering: dpdk=%v 1vm=%v 2par=%v 2seq=%v", r.DPDK[0], r.OneVM[0], r.TwoPar[0], r.TwoSeq[0])
	}
	if r.OneVM[0] < 4000 || r.OneVM[0] > 6500 {
		t.Fatalf("1VM at 64B = %v Mbps, want ≈5000", r.OneVM[0])
	}
	// At 1024B everything converges near 10 Gbps.
	last := len(r.Sizes) - 1
	for _, v := range []float64{r.DPDK[last], r.OneVM[last], r.TwoPar[last], r.TwoSeq[last]} {
		if v < 9000 {
			t.Fatalf("1024B throughput = %v, want ≈9800", v)
		}
	}
}

func TestFig8AntPhase(t *testing.T) {
	r := Fig8(42)
	if r.AntWindow[0] < 50 || r.AntWindow[0] > 60 {
		t.Fatalf("ant phase started at %v, want ≈51-56", r.AntWindow[0])
	}
	if r.AntWindow[1] < 105 || r.AntWindow[1] > 115 {
		t.Fatalf("ant phase ended at %v, want ≈105-110", r.AntWindow[1])
	}
	at := func(tm float64) (f1, f2 float64) {
		for i, tt := range r.Times {
			if tt >= tm {
				return r.Flow1[i], r.Flow2[i]
			}
		}
		t.Fatalf("no sample at %v", tm)
		return 0, 0
	}
	beforeF1, _ := at(40)
	duringF1, _ := at(80)
	afterF1, _ := at(160)
	// The ant phase slashes Flow 1's latency; it rises back afterwards.
	if duringF1 > beforeF1/2 {
		t.Fatalf("ant reroute ineffective: %v -> %v", beforeF1, duringF1)
	}
	if afterF1 < beforeF1*0.7 {
		t.Fatalf("latency did not rise back: %v vs %v", afterF1, beforeF1)
	}
}

func TestFig9Mitigation(t *testing.T) {
	r := Fig9(42)
	if r.DetectedAt == 0 || r.ScrubberAt == 0 {
		t.Fatal("attack never detected")
	}
	// VM boot delay ≈ 7.75 s after detection.
	boot := r.ScrubberAt - r.DetectedAt
	if boot < 7.5 || boot > 8.5 {
		t.Fatalf("boot delay = %v, want ≈7.75", boot)
	}
	at := func(series []float64, tm float64) float64 {
		for i, tt := range r.Times {
			if tt >= tm {
				return series[i]
			}
		}
		return series[len(series)-1]
	}
	// Incoming keeps rising after mitigation; outgoing returns to ≈0.5.
	lateIn := at(r.Incoming, r.ScrubberAt+30)
	lateOut := at(r.Outgoing, r.ScrubberAt+30)
	if lateIn < 3 {
		t.Fatalf("incoming = %v, want still rising", lateIn)
	}
	if lateOut > 0.8 {
		t.Fatalf("outgoing = %v, want ≈0.5 after scrubbing", lateOut)
	}
	// Detection near the 3.2 Gbps threshold crossing.
	detIn := at(r.Incoming, r.DetectedAt)
	if detIn < 2.5 || detIn > 4 {
		t.Fatalf("incoming at detection = %v, want ≈3.2", detIn)
	}
}

func TestFig10NineTimes(t *testing.T) {
	r := Fig10(42)
	maxSDN, maxSDNFV := 0.0, 0.0
	for i := range r.OfferedPerSec {
		if r.SDNOut[i] > maxSDN {
			maxSDN = r.SDNOut[i]
		}
		if r.SDNFVOut[i] > maxSDNFV {
			maxSDNFV = r.SDNFVOut[i]
		}
	}
	ratio := maxSDNFV / maxSDN
	if ratio < 7 || ratio > 11 {
		t.Fatalf("SDNFV/SDN max ratio = %v, want ≈9", ratio)
	}
	// SDN saturates near 1000/s.
	if maxSDN < 800 || maxSDN > 1500 {
		t.Fatalf("SDN max = %v, want ≈1000-1100", maxSDN)
	}
	// SDNFV tracks offered load until its own cap.
	if r.SDNFVOut[2] != r.OfferedPerSec[2] {
		t.Fatalf("SDNFV not linear at %v flows/s", r.OfferedPerSec[2])
	}
}

func TestFig11PolicyLag(t *testing.T) {
	r := Fig11(42)
	at := func(series []float64, tm float64) float64 {
		for i, tt := range r.Times {
			if tt >= tm {
				return series[i]
			}
		}
		return series[len(series)-1]
	}
	base := at(r.SDNFVOut, 30)
	target := base / 2
	// Shortly after the policy starts, SDNFV is at target; SDN lags well
	// above it.
	sdnfvAt70 := at(r.SDNFVOut, 70)
	sdnAt70 := at(r.SDNOut, 70)
	if sdnfvAt70 > target*1.1 {
		t.Fatalf("SDNFV at t=70: %v, want ≈%v", sdnfvAt70, target)
	}
	if sdnAt70 < target*1.2 {
		t.Fatalf("SDN at t=70: %v — should lag above target %v", sdnAt70, target)
	}
	// By the end of the policy window the SDN system has converged.
	if at(r.SDNOut, 235) > target*1.15 {
		t.Fatalf("SDN never converged: %v", at(r.SDNOut, 235))
	}
	// After the policy lifts, SDNFV snaps back; SDN again lags below.
	if at(r.SDNFVOut, 260) < base*0.95 {
		t.Fatalf("SDNFV did not recover: %v", at(r.SDNFVOut, 260))
	}
	if at(r.SDNOut, 260) > base*0.9 {
		t.Fatalf("SDN recovered too fast: %v", at(r.SDNOut, 260))
	}
}

func TestFig12HundredfoldGap(t *testing.T) {
	r := Fig12(42)
	// TwemProxy overloads between 90k and 120k req/s.
	var twemMax float64
	for i, rate := range r.RatePerSec {
		if r.TwemRTTus[i] > 0 {
			twemMax = rate
		}
	}
	if twemMax < 60e3 || twemMax > 120e3 {
		t.Fatalf("TwemProxy max rate = %v, want ≈90k", twemMax)
	}
	// SDNFV sustains 9.2M req/s.
	var sdnfvMax float64
	for i, rate := range r.RatePerSec {
		if r.SDNFVRTTus[i] > 0 {
			sdnfvMax = rate
		}
	}
	if sdnfvMax < 9e6 {
		t.Fatalf("SDNFV max rate = %v, want ≥9.2M", sdnfvMax)
	}
	gap := sdnfvMax / twemMax
	if gap < 50 || gap > 150 {
		t.Fatalf("gap = %vx, want ≈102x", gap)
	}
	// At low rate SDNFV's RTT is lower than TwemProxy's.
	if r.SDNFVRTTus[0] >= r.TwemRTTus[0] {
		t.Fatalf("low-rate RTTs: sdnfv=%v twem=%v", r.SDNFVRTTus[0], r.TwemRTTus[0])
	}
}

func TestMicroCosts(t *testing.T) {
	r := Micro(42)
	// Same order of magnitude as the paper's 30 ns / 15 ns. Race-detector
	// instrumentation slows the atomic-heavy lookup path by well over an
	// order of magnitude, so scale the ceilings under -race.
	lookupMax, minQueueMax := 500.0, 100.0
	if raceEnabled {
		lookupMax *= 50
		minQueueMax *= 50
	}
	if r.LookupNs <= 0 || r.LookupNs > lookupMax {
		t.Fatalf("lookup = %v ns", r.LookupNs)
	}
	if r.BatchLookupNs <= 0 || r.BatchLookupNs > lookupMax {
		t.Fatalf("batched lookup = %v ns", r.BatchLookupNs)
	}
	if r.MinQueueNs <= 0 || r.MinQueueNs > minQueueMax {
		t.Fatalf("min-queue = %v ns", r.MinQueueNs)
	}
	if r.SDNLookupMs != 31 {
		t.Fatalf("sdn lookup = %v ms", r.SDNLookupMs)
	}
}

func TestFig5Shape(t *testing.T) {
	r := Fig5(42)
	// The division heuristic must accommodate strictly more flows than
	// greedy at base capacity (the paper's ≈3× claim).
	if r.ILPFlows[0] <= r.GreedyFlows[0] {
		t.Fatalf("division (%d flows) not better than greedy (%d)", r.ILPFlows[0], r.GreedyFlows[0])
	}
	if float64(r.ILPFlows[0])/float64(r.GreedyFlows[0]) < 1.5 {
		t.Fatalf("gap too small: %d vs %d", r.ILPFlows[0], r.GreedyFlows[0])
	}
	// Capacity scaling helps both.
	last := len(r.CapScales) - 1
	if r.GreedyFlows[last] <= r.GreedyFlows[0] || r.ILPFlows[last] <= r.ILPFlows[0] {
		t.Fatal("capacity scaling had no effect")
	}
	// Greedy exhausts cores quickly in the left sweep: at its largest
	// feasible flow count the core utilization exceeds the ILP's at the
	// same count.
	if r.GreedyCore[0] <= 0 || r.ILPCore[0] <= 0 {
		t.Fatal("left sweep empty")
	}
}

func TestRenderAll(t *testing.T) {
	// Rendering must be non-empty and name-stable for every runner.
	for _, n := range []string{"table2", "fig6", "micro"} {
		res, err := Run(n, 7)
		if err != nil {
			t.Fatal(err)
		}
		if res.Name() != n || res.Render() == "" {
			t.Fatalf("runner %q render broken", n)
		}
	}
}

func TestScaleShape(t *testing.T) {
	// Real-engine, wall-clock experiment: assert the qualitative §5
	// elasticity shape, not exact series. Race instrumentation slows the
	// engine enough that the fixed ramp/tail windows stop being meaningful
	// on loaded runners; CI drives the non-race binary in its own smoke
	// step instead.
	if raceEnabled {
		t.Skip("wall-clock autoscaling shape is not meaningful under -race")
	}
	r := Scale(1)
	if r.PeakReplicas < 2 {
		t.Fatalf("autoscaler never scaled up: peak = %d", r.PeakReplicas)
	}
	if r.FinalReplicas != 1 {
		t.Fatalf("autoscaler did not scale back down: final = %d", r.FinalReplicas)
	}
	if r.UpAt <= 0 || r.DownAt <= r.UpAt {
		t.Fatalf("scaling timeline broken: up at %v, last down at %v", r.UpAt, r.DownAt)
	}
	// Per-flow NF state must survive both transitions.
	if r.FlowsTracked != r.FlowsTotal {
		t.Fatalf("flow state lost: %d/%d flows tracked", r.FlowsTracked, r.FlowsTotal)
	}
	if r.StateCoverage < 0.9 {
		t.Fatalf("state coverage %.2f, want >= 0.9 of delivered", r.StateCoverage)
	}
	if !strings.Contains(r.Render(), "Dynamic NF scaling") {
		t.Fatal("render missing title")
	}
}

func TestClusterShape(t *testing.T) {
	// Real-engine multi-host run. The assertions are timing-independent
	// (deliveries and accounting identities), so it runs under -race too.
	r := Cluster(3)
	// The chain spread across three hosts, one position per node.
	if len(r.PlacementNodes) != 3 ||
		r.PlacementNodes[0] == r.PlacementNodes[1] || r.PlacementNodes[1] == r.PlacementNodes[2] {
		t.Fatalf("placement did not spread the chain: %v", r.PlacementNodes)
	}
	// Phase 1 traverses all three hosts and exits at C. A loaded runner
	// may legitimately shed a little under -race (NF ring overflow); the
	// accounting check below still has to balance exactly.
	if r.Phase1DeliveredC < r.Phase1Sent*9/10 || r.Phase1DeliveredC > r.Phase1Sent {
		t.Fatalf("phase 1: delivered %d of %d at C", r.Phase1DeliveredC, r.Phase1Sent)
	}
	for i, rx := range r.Rx {
		if rx == 0 {
			t.Fatalf("host %s saw no traffic", r.HostNames[i])
		}
	}
	// The runtime ChangeDefault moved the hop: phase 2 exits at A, and C
	// sees no new deliveries.
	if r.Phase2DeliveredA < r.Phase2Sent*9/10 || r.Phase2DeliveredA > r.Phase2Sent {
		t.Fatalf("phase 2: delivered %d of %d at A", r.Phase2DeliveredA, r.Phase2Sent)
	}
	if r.Phase2DeliveredC != 0 {
		t.Fatalf("phase 2: %d packets still reached C after the reroute", r.Phase2DeliveredC)
	}
	// Per-host packet conservation and leak-free pools.
	if !r.AccountingOK {
		t.Fatalf("packet accounting broken: rx=%v tx=%v drops=%v overflows=%v txdrops=%v",
			r.Rx, r.Tx, r.Drops, r.Overflows, r.TxDrops)
	}
	// Unshaped links only drop when the peer refuses the inject; that
	// would surface as missing deliveries above, so just report it.
	if r.LinkDrops > r.Phase1Sent/10 {
		t.Fatalf("fabric dropped %d frames", r.LinkDrops)
	}
	// Misses resolved per host: every host pulled its own table.
	for i, m := range r.Misses {
		if m == 0 {
			t.Fatalf("host %s never used its controller session", r.HostNames[i])
		}
	}
	if !strings.Contains(r.Render(), "Multi-host service chain") {
		t.Fatal("render missing title")
	}
}

func TestWireShape(t *testing.T) {
	// Real sockets on loopback, both hosts in this process (the
	// two-process mode is exercised by the CLI smoke in CI). Assertions
	// are timing-independent: delivery floor and exact wire accounting.
	t.Setenv("SDNFV_WIRE_EXEC", "")
	r := Wire(7)
	if r.Mode != "in-process" {
		t.Fatalf("mode = %q", r.Mode)
	}
	if r.Sent == 0 {
		t.Fatal("nothing sent")
	}
	// UDP may legitimately shed under a loaded -race runner; the wire
	// exactness checks below still have to balance whatever arrived.
	if r.Delivered < r.Sent*9/10 || r.Delivered > r.Sent {
		t.Fatalf("delivered %d of %d", r.Delivered, r.Sent)
	}
	if !r.WireABExact || !r.WireBAExact {
		t.Fatalf("wire accounting not exact: A->B=%v B->A=%v", r.WireABExact, r.WireBAExact)
	}
	if !r.AccountingOK {
		t.Fatalf("host accounting broken: A=%+v B=%+v", r.A, r.B)
	}
	if r.P50Us <= 0 || r.P95Us < r.P50Us {
		t.Fatalf("latency percentiles malformed: p50=%v p95=%v", r.P50Us, r.P95Us)
	}
	// The run scrapes its own live telemetry server (baseline, mid-run,
	// final): every scrape must parse, counters must be monotonic, and
	// the final scrape must reconcile with the accounting identity.
	if r.TelemetryScrapes < 3 {
		t.Fatalf("telemetry scrapes = %d, want >= 3", r.TelemetryScrapes)
	}
	if !r.TelemetryOK {
		t.Fatal("scraped telemetry failed conformance or did not reconcile with host accounting")
	}
	for _, want := range []string{"Cross-host chain over real sockets", "chain latency", "telemetry: scrapes="} {
		if !strings.Contains(r.Render(), want) {
			t.Fatalf("render missing %q", want)
		}
	}
	t.Logf("in-process wire: %d/%d delivered, p50 %.0fus p95 %.0fus", r.Delivered, r.Sent, r.P50Us, r.P95Us)
}

func TestChurnShape(t *testing.T) {
	r := Churn(1)
	if !r.PlateauOK {
		t.Fatalf("live rules did not plateau: peak=%d cap=%d", r.PeakLive, r.LiveCap)
	}
	if r.PeakLive >= r.TotalFlows {
		t.Fatalf("peak live rules %d not below total distinct flows %d", r.PeakLive, r.TotalFlows)
	}
	if !r.DrainOK {
		t.Fatalf("drain left rules=%d state=%d", r.FinalRules, r.FinalState)
	}
	if !r.IdentityOK {
		t.Fatalf("lifecycle identity broken: adds=%d deleted=%d evicted=%d+%d rules=%d",
			r.Adds, r.Deleted, r.EvictedIdle, r.EvictedHard, r.FinalRules)
	}
	if !r.NoticesOK {
		t.Fatalf("flow-removed notices %d != evictions %d", r.Notices, r.EvictedIdle+r.EvictedHard)
	}
	if r.EvictedHard != 0 {
		t.Fatalf("hard evictions %d with only idle timeouts armed", r.EvictedHard)
	}
	for _, want := range []string{"plateau: ", "drain: ", "accounting: ", "ok=true"} {
		if !strings.Contains(r.Render(), want) {
			t.Fatalf("render missing %q", want)
		}
	}
}
