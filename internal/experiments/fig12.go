package experiments

import (
	"strings"

	"sdnfv/internal/sim"
)

// Fig12Result is the memcached proxy comparison (§5.4, Fig. 12): average
// request round-trip time versus offered request rate for the kernel-stack
// TwemProxy baseline and the SDNFV NF proxy.
//
// The two designs differ architecturally, and the model charges exactly
// those differences:
//
//   - TwemProxy: interrupt-driven socket I/O, two kernel/user copies per
//     direction, and two-sided proxying (it relays the response too).
//     Per-request service ≈ 11 µs → saturation near 90 k req/s.
//   - SDNFV proxy: zero-copy poll-mode pipeline; parse + hash + header
//     rewrite ≈ 108 ns per request (the real NF's measured cost — see
//     BenchmarkMemcachedProxyNF), one-sided (responses bypass it)
//     → ≈9.2 M req/s.
type Fig12Result struct {
	RatePerSec []float64
	TwemRTTus  []float64
	SDNFVRTTus []float64
}

// Name implements Result.
func (*Fig12Result) Name() string { return "fig12" }

// Render implements Result.
func (r *Fig12Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 12: memcached RTT vs request rate (µs; '-' = overloaded)\n")
	rows := make([][]string, len(r.RatePerSec))
	fmtRTT := func(v float64) string {
		if v < 0 {
			return "-"
		}
		return f2(v)
	}
	for i := range r.RatePerSec {
		rows[i] = []string{f0(r.RatePerSec[i] / 1000), fmtRTT(r.TwemRTTus[i]), fmtRTT(r.SDNFVRTTus[i])}
	}
	b.WriteString(table([]string{"k req/s", "TwemProxy (µs)", "SDNFV (µs)"}, rows))
	return b.String()
}

// proxyModel is an open-loop single-server queueing model of a proxy.
type proxyModel struct {
	// serviceSec is the per-request proxy cost.
	serviceSec float64
	// baseRTTus is the no-load round trip (network + server).
	baseRTTus float64
	// queueCap bounds the proxy backlog; overload reports RTT = -1.
	queueCap int
}

// measure returns the average RTT in µs at the offered rate, simulated for
// enough requests to reach steady state. Rates are scaled down 1000× (the
// queueing behaviour is invariant to the time rescaling).
func (m proxyModel) measure(seed int64, ratePerSec float64) float64 {
	const scale = 1000.0
	rate := ratePerSec / scale
	service := m.serviceSec * scale
	env := sim.NewEnv(seed)
	q := sim.NewQueue(env, m.queueCap)
	var totalRTT float64
	var served int
	const n = 20000
	// Poisson arrivals: independent clients issuing requests.
	at := 0.0
	for i := 0; i < n; i++ {
		at += env.Exp(1 / rate)
		start := at
		env.At(start, func() {
			q.Offer(service, func() {
				totalRTT += env.Now() - start
				served++
			})
		})
	}
	env.Run(at + 1000*service)
	if served < n*99/100 {
		return -1 // >1% loss: overloaded
	}
	// Convert queueing delay back to unscaled time and add the base RTT.
	return (totalRTT/float64(served))/scale*1e6 + m.baseRTTus
}

// Fig12 runs the sweep.
func Fig12(seed int64) *Fig12Result {
	twem := proxyModel{
		serviceSec: 11e-6, // interrupt I/O + 4 copies + 2-sided relay
		baseRTTus:  190,
		queueCap:   1024,
	}
	sdnfv := proxyModel{
		serviceSec: 108e-9, // measured NF proxy cost
		baseRTTus:  95,     // one-sided path, no kernel stack
		queueCap:   4096,
	}
	res := &Fig12Result{RatePerSec: []float64{
		10e3, 30e3, 60e3, 90e3, 120e3,
		1e6, 3e6, 6e6, 9.2e6, 12e6,
	}}
	for _, r := range res.RatePerSec {
		res.TwemRTTus = append(res.TwemRTTus, twem.measure(seed, r))
		res.SDNFVRTTus = append(res.SDNFVRTTus, sdnfv.measure(seed, r))
	}
	return res
}

func init() {
	register("fig12", func(seed int64) Result { return Fig12(seed) })
}
