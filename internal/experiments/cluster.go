package experiments

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"sdnfv/internal/acmatch"
	"sdnfv/internal/app"
	"sdnfv/internal/autoscale"
	"sdnfv/internal/cluster"
	"sdnfv/internal/control"
	"sdnfv/internal/controller"
	"sdnfv/internal/dataplane"
	"sdnfv/internal/flowtable"
	"sdnfv/internal/graph"
	"sdnfv/internal/metrics"
	"sdnfv/internal/nfs"
	"sdnfv/internal/orchestrator"
	"sdnfv/internal/placement"
	"sdnfv/internal/topo"
	"sdnfv/internal/traffic"
)

// ClusterResult is the multi-host service-chain experiment: the full
// SDNFV hierarchy (Fig. 2) with one controller managing THREE NF hosts.
// The placement engine (§3.5) assigns a firewall → IDS → video-detector
// chain across the hosts, the orchestrator boots each NF on the host
// the placement chose, and the application compiles the global service
// graph into per-host flow tables — cross-host hops egress onto fabric
// links and resume at the correct Service-ID scope on the peer. Every
// host resolves its own flow-table misses through its per-datapath
// controller session, so the first packet at each host pulls exactly
// that host's rules. Mid-run a ChangeDefault re-routes the video hop
// from host C to a standby detector on host A, demonstrating runtime
// cross-host chain steering; end-to-end latency is compared against the
// identical chain on a single host.
type ClusterResult struct {
	// HostNames/Rx/Tx/... are per-host counters after the run, in
	// datapath order (A, B, C).
	HostNames []string
	Rx, Tx    []uint64
	Drops     []uint64
	Overflows []uint64
	TxDrops   []uint64
	Misses    []uint64

	// PlacementNodes is the topology node each chain position landed on.
	PlacementNodes []int

	// Phase 1: chain A→B→C.
	Phase1Sent       uint64
	Phase1DeliveredC uint64
	// Phase 2 (after the reroute): chain A→B→A.
	Phase2Sent       uint64
	Phase2DeliveredA uint64
	Phase2DeliveredC uint64

	// Latency (µs) of the cross-host chain vs the same chain single-host.
	ClusterP50Us, ClusterP95Us float64
	SingleP50Us, SingleP95Us   float64

	// LinkFrames/LinkDrops aggregate the fabric links.
	LinkFrames, LinkDrops uint64

	// AccountingOK reports rx == tx+drops+overflows+txdrops and a
	// leak-free pool on every host after the cluster went idle.
	AccountingOK bool
}

// Name implements Result.
func (*ClusterResult) Name() string { return "cluster" }

// Render implements Result.
func (r *ClusterResult) Render() string {
	var b strings.Builder
	b.WriteString("Multi-host service chain: firewall@A -> IDS@B -> video@C, rerouted to video'@A at runtime\n")
	b.WriteString(fmt.Sprintf("placement (line topology, 1 core/node): chain positions on nodes %v\n\n", r.PlacementNodes))
	rows := make([][]string, len(r.HostNames))
	for i, n := range r.HostNames {
		rows[i] = []string{
			n, f0(float64(r.Rx[i])), f0(float64(r.Tx[i])), f0(float64(r.Drops[i])),
			f0(float64(r.Overflows[i])), f0(float64(r.TxDrops[i])), f0(float64(r.Misses[i])),
		}
	}
	b.WriteString(table([]string{"host", "rx", "tx", "drops", "overflows", "txdrops", "misses"}, rows))
	b.WriteString(fmt.Sprintf("\nphase 1 (A->B->C): sent %d, delivered at C egress %d\n",
		r.Phase1Sent, r.Phase1DeliveredC))
	b.WriteString(fmt.Sprintf("phase 2 (ChangeDefault ids->video'): sent %d, delivered at A egress %d (C egress +%d)\n",
		r.Phase2Sent, r.Phase2DeliveredA, r.Phase2DeliveredC))
	b.WriteString(fmt.Sprintf("fabric links: %d frames forwarded, %d dropped\n", r.LinkFrames, r.LinkDrops))
	b.WriteString(fmt.Sprintf("end-to-end latency: cluster p50 %.1f us / p95 %.1f us; single-host p50 %.1f us / p95 %.1f us\n",
		r.ClusterP50Us, r.ClusterP95Us, r.SingleP50Us, r.SingleP95Us))
	b.WriteString(fmt.Sprintf("packet accounting across hosts: ok=%v\n", r.AccountingOK))
	return b.String()
}

// Cluster chain services.
const (
	svcFW     flowtable.ServiceID = 1
	svcIDS    flowtable.ServiceID = 2
	svcVideo  flowtable.ServiceID = 3
	svcVideoB flowtable.ServiceID = 4 // standby detector on host A
)

// clusterGraph builds the global service graph: the linear chain plus
// the alternative edge IDS -> video' that the runtime reroute selects.
func clusterGraph() (*graph.Graph, error) {
	g := graph.New("cluster-chain")
	for _, v := range []graph.Vertex{
		{Service: svcFW, Name: "firewall"},
		{Service: svcIDS, Name: "ids", ReadOnly: true},
		{Service: svcVideo, Name: "video", ReadOnly: true},
		{Service: svcVideoB, Name: "video-standby", ReadOnly: true},
	} {
		if err := g.AddVertex(v); err != nil {
			return nil, err
		}
	}
	type e struct {
		from, to flowtable.ServiceID
		def      bool
	}
	for _, ed := range []e{
		{graph.Source, svcFW, true},
		{svcFW, svcIDS, true},
		{svcIDS, svcVideo, true},
		{svcIDS, svcVideoB, false},
		{svcVideo, graph.Sink, true},
		{svcVideoB, graph.Sink, true},
	} {
		if err := g.AddEdge(ed.from, ed.to, ed.def); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Cluster runs the experiment (~1-2 s wall time).
func Cluster(seed int64) *ClusterResult {
	const (
		flows      = 32
		frameBytes = 512
		phase1N    = 8000
		phase2N    = 6000
		baselineN  = 8000
		ingressPt  = 0
		egressPt   = 1
	)
	res := &ClusterResult{}

	// --- Placement (§3.5) decides which host runs which chain hop: a
	// 3-node line with one core each forces the chain to spread, exactly
	// the multi-node placements the engine computes.
	tp := topo.Line(3, 1, 10e9, 50e-6)
	spec := placement.Spec{FlowsPerCore: map[placement.Service]int{1: 1, 2: 1, 3: 1}}
	asg, err := placement.SolveGreedy(tp, []placement.Flow{{
		Ingress: 0, Egress: 2, Chain: []placement.Service{1, 2, 3}, BandwidthBps: 1e9,
	}}, spec)
	if err != nil || !asg.Accepted[0] {
		panic(fmt.Sprintf("cluster placement failed: %v", err))
	}
	dpOf := func(n topo.NodeID) control.DatapathID { return control.DatapathID(n) + 1 }
	for _, n := range asg.Nodes[0] {
		res.PlacementNodes = append(res.PlacementNodes, int(n))
	}
	dpA := dpOf(asg.Nodes[0][0]) // firewall's host is also the ingress
	dpB := dpOf(asg.Nodes[0][1])
	dpC := dpOf(asg.Nodes[0][2])

	// --- Controller first: each host's Config.Control is its own
	// per-datapath session, so misses resolve host-scoped.
	ctl := controller.New(controller.Config{Workers: 2})
	ctl.Start()
	defer ctl.Stop()

	// --- Hosts and fabric.
	fab := cluster.New()
	names := map[control.DatapathID]string{dpA: "host-A", dpB: "host-B", dpC: "host-C"}
	hosts := map[control.DatapathID]*dataplane.Host{}
	for _, dp := range []control.DatapathID{dpA, dpB, dpC} {
		h := dataplane.NewHost(dataplane.Config{
			PoolSize: 4096, RingSize: 1024, TXThreads: 1,
			Control: ctl.Session(dp),
		})
		hosts[dp] = h
		if err := fab.AddHost(dp, names[dp], h); err != nil {
			panic(err)
		}
	}
	// One unidirectional channel per crossing graph edge, ports ≥ 2 so
	// ingress (0) and egress (1) stay free: A→B for fw→ids, B→C for
	// ids→video, B→A for the reroute edge ids→video'.
	mustConn := func(src control.DatapathID, out int, dst control.DatapathID, in int) *cluster.Link {
		l, err := fab.Connect(src, out, dst, in, cluster.LinkConfig{})
		if err != nil {
			panic(err)
		}
		return l
	}
	lAB := mustConn(dpA, 2, dpB, 2)
	lBC := mustConn(dpB, 3, dpC, 2)
	lBA := mustConn(dpB, 4, dpA, 3)

	// --- Application: global graph + placement assignment = per-host
	// tables; the fabric is its downstream for runtime steering.
	g, err := clusterGraph()
	if err != nil {
		panic(err)
	}
	a := app.New(app.Config{IngressPort: ingressPt, EgressPort: egressPt, WildcardRules: true})
	if err := a.RegisterGraph(g); err != nil {
		panic(err)
	}
	dep := &app.Deployment{
		Graph: g,
		Assign: map[flowtable.ServiceID]control.DatapathID{
			svcFW: dpA, svcIDS: dpB, svcVideo: dpC, svcVideoB: dpA,
		},
		Ingress: dpA, IngressPort: ingressPt, EgressPort: egressPt,
		Channels: map[app.HostPair][]app.Channel{
			{Src: dpA, Dst: dpB}: {lAB.Channel()},
			{Src: dpB, Dst: dpC}: {lBC.Channel()},
			{Src: dpB, Dst: dpA}: {lBA.Channel()},
		},
	}
	if err := a.SetDeployment(dep); err != nil {
		panic(err)
	}
	a.SetDownstream(fab)
	ctl.SetNorthbound(a)

	// --- NFs boot through the orchestrator on the hosts the placement
	// chose.
	clock := autoscale.NewRealClock()
	orch := orchestrator.New(orchestrator.Config{BootDelaySec: 0.01, StandbyDelaySec: 0.01, Standby: 1}, clock)
	for dp, h := range hosts {
		orch.AddHost(dataplane.NamedHost{Name: names[dp], Host: h})
	}
	sigs := acmatch.New([]string{"ATTACK-SIGNATURE"})
	deployCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	_, err = orch.Deploy(deployCtx, []orchestrator.Placement{
		{Host: names[dpA], Service: svcFW, NF: &nfs.Firewall{DefaultAllow: true}},
		{Host: names[dpB], Service: svcIDS, NF: &nfs.IDS{Matcher: sigs, Scrubber: svcVideoB}},
		{Host: names[dpC], Service: svcVideo, NF: &nfs.VideoDetector{PolicyEngine: svcVideo, Bypass: svcVideo}},
		{Host: names[dpA], Service: svcVideoB, NF: &nfs.VideoDetector{PolicyEngine: svcVideoB, Bypass: svcVideoB}},
	})
	cancel()
	if err != nil {
		panic(err)
	}

	// --- Egress sinks: end-to-end latency comes from the timestamp the
	// generator embedded in the payload (it survives host crossings;
	// per-host arrival stamps do not). Each phase has exactly one
	// delivering host, so each histogram has a single writer.
	var deliveredA, deliveredC atomic.Uint64
	histC := metrics.NewHistogram()
	hosts[dpA].BindPort(egressPt, func(_ int, _ []byte, _ *dataplane.Desc) {
		deliveredA.Add(1)
	})
	hosts[dpC].BindPort(egressPt, func(_ int, data []byte, _ *dataplane.Desc) {
		deliveredC.Add(1)
		if ts, ok := traffic.ExtractTimestamp(data); ok {
			histC.Observe(float64(time.Now().UnixNano() - ts))
		}
	})

	if err := fab.Start(); err != nil {
		panic(err)
	}
	defer fab.Stop()

	factory := traffic.NewFactory()
	inject := func(n int) uint64 {
		var sent uint64
		for i := 0; i < n; i++ {
			spec := traffic.Flow(int(seed)*flows+i%flows, frameBytes, 0)
			frame, err := factory.Frame(spec, time.Now().UnixNano())
			if err != nil {
				panic(err)
			}
			for {
				if err := hosts[dpA].Inject(ingressPt, frame); err == nil {
					sent++
					break
				}
				time.Sleep(2 * time.Microsecond)
			}
			if i%8 == 7 {
				// Pace to ~150 kpps so the measurement captures per-hop
				// chain latency, not self-inflicted queueing.
				time.Sleep(50 * time.Microsecond)
			}
		}
		return sent
	}

	// --- Phase 1: the chain spans all three hosts. The first packet at
	// each host misses and pulls that host's table through its session.
	res.Phase1Sent = inject(phase1N)
	if !fab.WaitIdle(20 * time.Second) {
		panic("cluster: phase 1 never drained — packets still in flight")
	}
	res.Phase1DeliveredC = deliveredC.Load()
	res.ClusterP50Us = histC.Quantile(0.50) / 1e3
	res.ClusterP95Us = histC.Quantile(0.95) / 1e3

	// --- Reroute: as if the IDS on host B asked for the video hop to
	// move — the app validates the edge, translates it per host, and the
	// fabric applies the constrained default rewrite on host B.
	cd, err := control.NewChangeDefault(flowtable.MatchAll, svcIDS, svcVideoB)
	if err != nil {
		panic(err)
	}
	if err := a.HandleNFMessage(context.Background(), dpB, svcIDS, cd); err != nil {
		panic(fmt.Sprintf("reroute rejected: %v", err))
	}

	// --- Phase 2: the chain is now A→B→A.
	beforeC := deliveredC.Load()
	res.Phase2Sent = inject(phase2N)
	if !fab.WaitIdle(20 * time.Second) {
		panic("cluster: phase 2 never drained — packets still in flight")
	}
	res.Phase2DeliveredA = deliveredA.Load()
	res.Phase2DeliveredC = deliveredC.Load() - beforeC

	// --- Accounting across all hosts: nothing vanished, nothing leaked.
	res.AccountingOK = true
	for _, dp := range []control.DatapathID{dpA, dpB, dpC} {
		st := hosts[dp].Stats()
		res.HostNames = append(res.HostNames, fmt.Sprintf("%s(%s)", names[dp], dp))
		res.Rx = append(res.Rx, st.RxPackets)
		res.Tx = append(res.Tx, st.TxPackets)
		res.Drops = append(res.Drops, st.Drops)
		res.Overflows = append(res.Overflows, st.Overflows)
		res.TxDrops = append(res.TxDrops, st.TxDrops)
		res.Misses = append(res.Misses, st.Misses)
		if st.RxPackets != st.TxPackets+st.Drops+st.Overflows+st.TxDrops+st.RxDrops ||
			st.Pool.InUse != 0 {
			res.AccountingOK = false
		}
	}
	for _, l := range fab.Links() {
		ls := l.Stats()
		res.LinkFrames += ls.TxFrames
		res.LinkDrops += ls.Drops
	}

	// --- Baseline: the identical chain entirely on one host.
	res.SingleP50Us, res.SingleP95Us = clusterBaseline(seed, sigs, flows, frameBytes, baselineN)
	return res
}

// clusterBaseline runs the same firewall→IDS→video chain on a single
// host and returns its p50/p95 end-to-end latency in µs.
func clusterBaseline(seed int64, sigs *acmatch.Matcher, flows, frameBytes, n int) (p50, p95 float64) {
	g, err := clusterGraph()
	if err != nil {
		panic(err)
	}
	h := dataplane.NewHost(dataplane.Config{PoolSize: 4096, RingSize: 1024, TXThreads: 1})
	if _, err := h.AddNF(svcFW, &nfs.Firewall{DefaultAllow: true}, 0); err != nil {
		panic(err)
	}
	if _, err := h.AddNF(svcIDS, &nfs.IDS{Matcher: sigs, Scrubber: svcVideoB}, 0); err != nil {
		panic(err)
	}
	if _, err := h.AddNF(svcVideo, &nfs.VideoDetector{PolicyEngine: svcVideo, Bypass: svcVideo}, 0); err != nil {
		panic(err)
	}
	if _, err := h.AddNF(svcVideoB, &nfs.VideoDetector{PolicyEngine: svcVideoB, Bypass: svcVideoB}, 0); err != nil {
		panic(err)
	}
	if err := h.InstallGraph(g, 0, 1); err != nil {
		panic(err)
	}
	hist := metrics.NewHistogram()
	h.BindDefault(func(_ int, data []byte, _ *dataplane.Desc) {
		if ts, ok := traffic.ExtractTimestamp(data); ok {
			hist.Observe(float64(time.Now().UnixNano() - ts))
		}
	})
	if err := h.Start(); err != nil {
		panic(err)
	}
	defer h.Stop()
	factory := traffic.NewFactory()
	for i := 0; i < n; i++ {
		spec := traffic.Flow(int(seed)*flows+i%flows, frameBytes, 0)
		frame, err := factory.Frame(spec, time.Now().UnixNano())
		if err != nil {
			panic(err)
		}
		for {
			if err := h.Inject(0, frame); err == nil {
				break
			}
			time.Sleep(2 * time.Microsecond)
		}
		if i%8 == 7 {
			time.Sleep(50 * time.Microsecond) // same pacing as the cluster run
		}
	}
	if !h.WaitIdle(20 * time.Second) {
		panic("cluster: baseline never drained — packets still in flight")
	}
	return hist.Quantile(0.50) / 1e3, hist.Quantile(0.95) / 1e3
}

func init() {
	register("cluster", func(seed int64) Result { return Cluster(seed) })
}
