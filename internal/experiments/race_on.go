//go:build race

package experiments

// raceEnabled reports whether the binary was built with the race
// detector, whose instrumentation inflates the absolute wall-clock costs
// the micro experiments assert on.
const raceEnabled = true
