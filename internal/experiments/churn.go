package experiments

import (
	"strings"
	"time"

	"sdnfv/internal/app"
	"sdnfv/internal/controller"
	"sdnfv/internal/dataplane"
	"sdnfv/internal/flowtable"
	"sdnfv/internal/graph"
	"sdnfv/internal/nf"
	"sdnfv/internal/traffic"
)

// ChurnResult is the flow-lifecycle experiment on the real engine: a
// long run of short-lived flows (plus a small persistent hot set)
// streams through the full app → controller → host hierarchy with idle
// timeouts armed. Per-flow exact rules install on first packet and are
// reaped by the background sweeper once each flow goes quiet, so the
// live rule count plateaus far below the total number of distinct
// flows offered — the table is sized for concurrency, not history.
// After the drain the eviction accounting must be exact: the add/
// delete/evict identity holds, the engine-owned per-flow NF state is
// empty, and the app saw exactly one flow-removed notice per eviction.
type ChurnResult struct {
	Waves         []int
	DistinctSoFar []int
	LiveRules     []int
	EvictedSoFar  []uint64

	TotalFlows int
	HotFlows   int
	PeakLive   int
	LiveCap    int

	Adds        uint64
	Deleted     uint64
	EvictedIdle uint64
	EvictedHard uint64
	Notices     uint64
	FinalRules  int
	FinalState  int
	IdentityOK  bool
	NoticesOK   bool
	PlateauOK   bool
	DrainOK     bool
}

// Name implements Result.
func (*ChurnResult) Name() string { return "churn" }

// Render implements Result.
func (r *ChurnResult) Render() string {
	var b strings.Builder
	b.WriteString("Flow churn: per-flow rules vs idle eviction through the real engine\n")
	rows := make([][]string, 0, len(r.Waves))
	for i := range r.Waves {
		rows = append(rows, []string{
			f0(float64(r.Waves[i])), f0(float64(r.DistinctSoFar[i])),
			f0(float64(r.LiveRules[i])), f0(float64(r.EvictedSoFar[i])),
		})
	}
	b.WriteString(table([]string{"wave", "distinct flows", "live rules", "evicted"}, rows))
	b.WriteString("plateau: total-flows=" + f0(float64(r.TotalFlows)) +
		" hot=" + f0(float64(r.HotFlows)) +
		" peak-live-rules=" + f0(float64(r.PeakLive)) +
		" cap=" + f0(float64(r.LiveCap)) +
		" ok=" + boolStr(r.PlateauOK) + "\n")
	b.WriteString("drain: rules=" + f0(float64(r.FinalRules)) +
		" state=" + f0(float64(r.FinalState)) +
		" ok=" + boolStr(r.DrainOK) + "\n")
	b.WriteString("accounting: adds=" + f0(float64(r.Adds)) +
		" deleted=" + f0(float64(r.Deleted)) +
		" evicted-idle=" + f0(float64(r.EvictedIdle)) +
		" evicted-hard=" + f0(float64(r.EvictedHard)) +
		" notices=" + f0(float64(r.Notices)) +
		" identity=" + boolStr(r.IdentityOK) +
		" notices-match=" + boolStr(r.NoticesOK) +
		" ok=" + boolStr(r.IdentityOK && r.NoticesOK) + "\n")
	return b.String()
}

func boolStr(v bool) string {
	if v {
		return "true"
	}
	return "false"
}

// Churn runs the experiment (~1 s wall time). Seed varies the flow key
// population; the qualitative shape — bounded live rules, exact
// lifecycle accounting — is seed-independent.
func Churn(seed int64) *ChurnResult {
	const (
		svcMon    flowtable.ServiceID = 31
		hot                           = 16  // persistent flows re-offered every wave
		waves                         = 30  // one-shot flow generations
		perWave                       = 200 // fresh flows per wave
		idle                          = 60 * time.Millisecond
		sweepTick                     = 5 * time.Millisecond
		waveGap                       = 15 * time.Millisecond
	)

	g, err := graph.Chain("churn", graph.Vertex{Service: svcMon, Name: "mon", ReadOnly: true})
	if err != nil {
		panic(err)
	}
	a := app.New(app.Config{IngressPort: 0, EgressPort: 1})
	if err := a.RegisterGraph(g); err != nil {
		panic(err)
	}
	ctl := controller.New(controller.Config{Workers: 4})
	ctl.SetNorthbound(a)
	ctl.Start()
	defer ctl.Stop()

	host := dataplane.NewHost(dataplane.Config{
		PoolSize: 2048, TXThreads: 1, Control: ctl,
		FlowIdleTimeout: idle, FlowSweepInterval: sweepTick,
	})
	// The monitor pins per-flow state, making state leaks observable.
	mon := &nf.BatchAdapter{FnName: "mon", RO: true,
		ProcessBatchF: func(ctx *nf.Context, batch []nf.Packet, _ []nf.Decision) {
			for i := range batch {
				ctx.FlowState().Set(batch[i].Key, struct{}{})
			}
		}}
	if _, err := host.AddNF(svcMon, mon, 0); err != nil {
		panic(err)
	}
	host.BindDefault(func(int, []byte, *dataplane.Desc) {})
	if err := host.Start(); err != nil {
		panic(err)
	}
	defer host.Stop()

	factory := traffic.NewFactory()
	inject := func(id int) {
		frame, err := factory.Frame(traffic.Flow(id, 128, 0), 0)
		if err != nil {
			panic(err)
		}
		for host.Inject(0, frame) != nil {
			time.Sleep(5 * time.Microsecond)
		}
	}

	res := &ChurnResult{HotFlows: hot, TotalFlows: hot + waves*perWave}
	base := int(seed) * 1_000_000
	for w := 0; w < waves; w++ {
		for h := 0; h < hot; h++ {
			inject(base + h)
		}
		for i := 0; i < perWave; i++ {
			inject(base + hot + w*perWave + i)
		}
		time.Sleep(waveGap)
		st := host.Stats().Table
		res.Waves = append(res.Waves, w)
		res.DistinctSoFar = append(res.DistinctSoFar, hot+(w+1)*perWave)
		res.LiveRules = append(res.LiveRules, st.Rules)
		res.EvictedSoFar = append(res.EvictedSoFar, st.Evicted())
		if st.Rules > res.PeakLive {
			res.PeakLive = st.Rules
		}
	}

	// The app compiles a handful of rules per flow (port scope + service
	// scope); a flow stays live for roughly idle/waveGap waves after its
	// last packet. The cap leaves generous slack for slow CI machines —
	// what matters is that it is far below rules-for-every-flow-ever.
	wavesInFlight := int(idle/waveGap) + 4
	res.LiveCap = 4 * (hot + wavesInFlight*perWave)
	res.PlateauOK = res.PeakLive > 0 && res.PeakLive <= res.LiveCap

	// Quiesce: every flow (hot set included) idles out; the sweeper must
	// reap every rule and release every byte of per-flow NF state.
	host.WaitIdle(5 * time.Second)
	fs := host.FlowState(svcMon, 0)
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if host.Stats().Table.Rules == 0 && fs.Len() == 0 &&
			a.FlowsRemoved() == host.Stats().Table.Evicted() {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	st := host.Stats().Table
	res.Adds, res.Deleted = st.Adds, st.Deleted
	res.EvictedIdle, res.EvictedHard = st.EvictedIdle, st.EvictedHard
	res.Notices = a.FlowsRemoved()
	res.FinalRules, res.FinalState = st.Rules, fs.Len()
	res.DrainOK = res.FinalRules == 0 && res.FinalState == 0
	res.IdentityOK = st.Adds == uint64(st.Rules)+st.Deleted+st.Evicted()
	res.NoticesOK = res.Notices == st.Evicted() && st.Evicted() > 0
	return res
}

func init() {
	register("churn", func(seed int64) Result { return Churn(seed) })
}
