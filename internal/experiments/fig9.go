package experiments

import (
	"context"
	"strings"

	"sdnfv/internal/flowtable"
	"sdnfv/internal/netem"
	"sdnfv/internal/nf"
	"sdnfv/internal/orchestrator"
	"sdnfv/internal/sim"
	"sdnfv/internal/traffic"
)

// Fig9Result is the DDoS detection and mitigation experiment (§5.2,
// Fig. 9): a detector VM aggregates traffic across flows; when incoming
// volume crosses the threshold it alarms through the Message channel, the
// orchestrator boots a Scrubber VM (≈7.75 s), the scrubber issues
// RequestMe, and outgoing traffic returns to the normal level while the
// attack keeps rising.
type Fig9Result struct {
	Times    []float64
	Incoming []float64 // Gbps
	Outgoing []float64 // Gbps
	// DetectedAt is when the alarm fired; ScrubberAt when the new VM came
	// online.
	DetectedAt, ScrubberAt float64
}

// Name implements Result.
func (*Fig9Result) Name() string { return "fig9" }

// Render implements Result.
func (r *Fig9Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 9: DDoS detection and scrubbing (Gbps)\n")
	rows := make([][]string, 0)
	for i := range r.Times {
		if int(r.Times[i])%10 != 0 {
			continue
		}
		rows = append(rows, []string{f0(r.Times[i]), f2(r.Incoming[i]), f2(r.Outgoing[i])})
	}
	b.WriteString(table([]string{"t (s)", "Incoming", "Outgoing"}, rows))
	b.WriteString("detected at " + f2(r.DetectedAt) + " s; scrubber online at " + f2(r.ScrubberAt) + " s\n")
	return b.String()
}

// fig9 marks.
const (
	markNormal = 0
	markAttack = 1
)

// Fig9 runs the experiment. Rates are scaled 1:100 against the paper's
// Gbps axis (reported values are scaled back), preserving the threshold
// crossing time and the mitigation shape.
func Fig9(seed int64) *Fig9Result {
	const scale = 100.0 // sim bps × scale = reported bps
	env := sim.NewEnv(seed)
	sink := netem.NewSink(env)

	inMeter := &rateAccum{}
	outMeter := &rateAccum{}

	// Scrubber stage (exists once booted): drops attack-marked traffic.
	var scrubberOnline bool
	scrub := netem.NewNFStage(env, 8192, func(*netem.SimPacket) sim.Time {
		return 500e-9
	}, func(p *netem.SimPacket) netem.Stage {
		if p.Mark == markAttack {
			return nil // cleaned
		}
		return netem.StageFunc(func(p *netem.SimPacket) {
			outMeter.add(env.Now(), p.Bytes)
			sink.Accept(p)
		})
	})

	// Egress: default action forwards straight out; after RequestMe the
	// default is the scrubber.
	egress := netem.StageFunc(func(p *netem.SimPacket) {
		if scrubberOnline {
			scrub.Accept(p)
			return
		}
		outMeter.add(env.Now(), p.Bytes)
		sink.Accept(p)
	})

	// Orchestrator with the paper's measured 7.75 s VM boot delay.
	res := &Fig9Result{}
	orch := orchestrator.New(orchestrator.Config{BootDelaySec: 7.75}, simClock{env})
	orch.AddHost(simHostHandle{name: "host1", onLaunch: func() {
		scrubberOnline = true // Scrubber sends RequestMe; defaults rerouted
		res.ScrubberAt = env.Now()
	}})

	// DDoS detector VM: monitors aggregate incoming volume in a window;
	// one alarm at the threshold (3.2 Gbps in paper units).
	const thresholdBps = 3.2e9 / scale
	var alarmed bool
	var winBytes float64
	var winStart float64
	detector := netem.NewNFStage(env, 8192, func(*netem.SimPacket) sim.Time {
		return 300e-9
	}, func(p *netem.SimPacket) netem.Stage {
		inMeter.add(env.Now(), p.Bytes)
		winBytes += float64(p.Bytes)
		const window = 1.0
		if env.Now()-winStart >= window {
			rate := winBytes * 8 / (env.Now() - winStart)
			if rate >= thresholdBps && !alarmed {
				alarmed = true
				res.DetectedAt = env.Now()
				// Message → NF Manager → SDNFV Application → orchestrator
				// boots the scrubber (Fig. 2 step 5).
				_ = orch.Instantiate(context.Background(), "host1", flowtable.ServiceID(99), noopNF{}, nil)
			}
			winStart = env.Now()
			winBytes = 0
		}
		return egress
	})

	// Normal traffic: constant 500 Mbps (paper units). Attack: starts low
	// at t=30 s and ramps up steadily past the threshold.
	normal := traffic.Flow(1, 1000, 0)
	attack := traffic.Flow(2, 1000, 0)
	normSrc := netem.NewCBRSource(env, normal.Key, 1000, func(sim.Time) float64 {
		return 500e6 / scale
	}, detector)
	ramp := traffic.RampProfile{
		Times: []float64{30, 200},
		Rates: []float64{0.2e9 / scale, 4.5e9 / scale},
	}
	attackSrc := netem.NewCBRSource(env, attack.Key, 1000, func(t sim.Time) float64 {
		if t < 30 {
			return 0
		}
		return ramp.RateAt(t)
	}, detector)
	attackSrc.Mark = markAttack
	normSrc.Start()
	attackSrc.Start()

	env.Every(1.0, func() bool {
		res.Times = append(res.Times, env.Now())
		res.Incoming = append(res.Incoming, inMeter.takeRate(env.Now())*scale/1e9)
		res.Outgoing = append(res.Outgoing, outMeter.takeRate(env.Now())*scale/1e9)
		return true
	})
	env.Run(200)
	normSrc.Stop()
	attackSrc.Stop()
	return res
}

// rateAccum integrates bytes between samples.
type rateAccum struct {
	bytes float64
	last  float64
}

func (r *rateAccum) add(_ float64, b int) { r.bytes += float64(b) }

// takeRate returns bits/s since the previous sample and resets.
func (r *rateAccum) takeRate(now float64) float64 {
	dt := now - r.last
	if dt <= 0 {
		return 0
	}
	bps := r.bytes * 8 / dt
	r.bytes = 0
	r.last = now
	return bps
}

// simClock adapts sim.Env to orchestrator.Clock.
type simClock struct{ env *sim.Env }

// After implements orchestrator.Clock.
func (c simClock) After(delay float64, fn func()) { c.env.Schedule(delay, fn) }

// Now implements orchestrator.Clock.
func (c simClock) Now() float64 { return c.env.Now() }

// simHostHandle adapts a callback to orchestrator.HostHandle.
type simHostHandle struct {
	name     string
	onLaunch func()
}

// HostName implements orchestrator.HostHandle.
func (h simHostHandle) HostName() string { return h.name }

// Launch implements orchestrator.HostHandle.
func (h simHostHandle) Launch(context.Context, flowtable.ServiceID, nf.BatchFunction) error {
	if h.onLaunch != nil {
		h.onLaunch()
	}
	return nil
}

// noopNF is a minimal nf.BatchFunction for orchestrator launches in
// simulation.
type noopNF struct{}

// Name implements nf.BatchFunction.
func (noopNF) Name() string { return "sim-noop" }

// ReadOnly implements nf.BatchFunction.
func (noopNF) ReadOnly() bool { return true }

// ProcessBatch implements nf.BatchFunction.
func (noopNF) ProcessBatch(*nf.Context, []nf.Packet, []nf.Decision) {}

func init() {
	register("fig9", func(seed int64) Result { return Fig9(seed) })
}
