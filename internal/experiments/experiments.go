// Package experiments contains one runner per table and figure of the
// paper's evaluation (§5), plus the §5.1 micro-cost measurements and the
// ablation studies called out in DESIGN.md. Each runner is deterministic
// under a fixed seed and returns a Result whose Render() prints the same
// rows/series the paper reports.
//
// The saturation and time-series experiments run on the discrete-event
// simulator with service times calibrated from the real engine's
// micro-benchmarks; EXPERIMENTS.md records paper-vs-measured values and
// the calibration notes.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Result is a rendered experiment outcome.
type Result interface {
	// Name returns the experiment identifier (e.g. "fig1").
	Name() string
	// Render prints the paper-comparable rows/series.
	Render() string
}

// Runner produces a Result.
type Runner func(seed int64) Result

var registry = map[string]Runner{}
var registryOrder []string

func register(name string, r Runner) {
	if _, dup := registry[name]; dup {
		panic("experiments: duplicate runner " + name)
	}
	registry[name] = r
	registryOrder = append(registryOrder, name)
}

// Names lists registered experiments in registration order.
func Names() []string {
	out := make([]string, len(registryOrder))
	copy(out, registryOrder)
	return out
}

// Run executes the named experiment with the given seed.
func Run(name string, seed int64) (Result, error) {
	r, ok := registry[name]
	if !ok {
		var known []string
		for n := range registry {
			known = append(known, n)
		}
		sort.Strings(known)
		return nil, fmt.Errorf("experiments: unknown %q (have %s)", name, strings.Join(known, ", "))
	}
	return r(seed), nil
}

// table renders rows of columns with a header, aligned.
func table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

// f2 formats a float with 2 decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// f0 formats a float with no decimals.
func f0(v float64) string { return fmt.Sprintf("%.0f", v) }
