package experiments

import (
	"strings"
	"sync/atomic"
	"time"

	"sdnfv/internal/autoscale"
	"sdnfv/internal/dataplane"
	"sdnfv/internal/flowtable"
	"sdnfv/internal/metrics"
	"sdnfv/internal/nf"
	"sdnfv/internal/orchestrator"
	"sdnfv/internal/packet"
	"sdnfv/internal/traffic"
)

// ScaleResult is the dynamic NF scaling experiment: a load ramp against
// the REAL engine (not the simulator) with the autoscale policy loop
// closed over the manager's per-replica telemetry. The offered rate
// triples past a single replica's capacity, the controller boots
// replicas through the orchestrator (standby fast path), latency
// recovers, and once the ramp subsides the controller retires the extra
// replicas through the flow-state-safe drain. Because it runs in wall
// time its series are not bit-repeatable, but its qualitative shape —
// scale-up under pressure, scale-down after, per-flow state intact — is
// what the paper's §5 scenarios claim and what the test asserts.
type ScaleResult struct {
	Times      []float64
	OfferedPps []float64
	Replicas   []int
	Backlog    []int
	P95Us      []float64

	// UpAt is the first scale-up decision, DownAt the last scale-down.
	UpAt, DownAt float64
	// PeakReplicas/FinalReplicas bracket the elasticity excursion.
	PeakReplicas, FinalReplicas int
	// Delivered counts packets that exited; Overflows counts packets
	// shed while under-provisioned.
	Delivered, Overflows uint64
	// FlowsTracked/FlowsTotal report per-flow NF state surviving the
	// transitions; StateCoverage is (state-counted packets)/Delivered.
	FlowsTracked, FlowsTotal int
	StateCoverage            float64
	// HighP95Before/HighP95After compare p95 latency in the overloaded
	// window right after the ramp starts vs right before it ends (µs).
	HighP95Before, HighP95After float64
}

// Name implements Result.
func (*ScaleResult) Name() string { return "scale" }

// Render implements Result.
func (r *ScaleResult) Render() string {
	var b strings.Builder
	b.WriteString("Dynamic NF scaling: load ramp vs replica count and p95 latency (real engine)\n")
	rows := make([][]string, 0, len(r.Times))
	for i := range r.Times {
		rows = append(rows, []string{
			f2(r.Times[i]), f0(r.OfferedPps[i] / 1e3), f0(float64(r.Replicas[i])),
			f0(float64(r.Backlog[i])), f0(r.P95Us[i]),
		})
	}
	b.WriteString(table([]string{"t (s)", "offered (kpps)", "replicas", "backlog", "p95 (us)"}, rows))
	b.WriteString("scale-up at " + f2(r.UpAt) + " s, last scale-down at " + f2(r.DownAt) +
		" s; peak replicas " + f0(float64(r.PeakReplicas)) +
		", final " + f0(float64(r.FinalReplicas)) + "\n")
	b.WriteString("overload p95: " + f0(r.HighP95Before) + " us before scaling, " +
		f0(r.HighP95After) + " us after\n")
	b.WriteString("flow state after both transitions: " + f0(float64(r.FlowsTracked)) + "/" +
		f0(float64(r.FlowsTotal)) + " flows tracked, coverage " +
		f2(r.StateCoverage*100) + "% of delivered\n")
	return b.String()
}

// scaleWorker is the scaled NF: it blocks for a fixed per-packet service
// time (one sleep per burst, so replica capacity is known and replicas
// genuinely parallelize even on a single-core machine — sleeping
// replicas overlap, spinning ones would just timeshare) and counts
// packets per flow in the engine-owned store (so state survival across
// scaling is observable).
type scaleWorker struct{ serviceNs int64 }

// Name implements nf.BatchFunction.
func (*scaleWorker) Name() string { return "scale-worker" }

// ReadOnly implements nf.BatchFunction.
func (*scaleWorker) ReadOnly() bool { return true }

// ProcessBatch implements nf.BatchFunction.
func (w *scaleWorker) ProcessBatch(ctx *nf.Context, batch []nf.Packet, _ []nf.Decision) {
	fs := ctx.FlowState()
	for i := range batch {
		prev, _ := fs.Get(batch[i].Key)
		n, _ := prev.(uint64)
		fs.Set(batch[i].Key, n+1)
	}
	time.Sleep(time.Duration(int64(len(batch)) * w.serviceNs))
}

// Scale runs the experiment (~2 s wall time).
func Scale(seed int64) *ScaleResult {
	const (
		svcWorker   flowtable.ServiceID = 1
		flows                           = 32
		serviceNs                       = 100_000 // ~10k pps per replica at full bursts
		lowPps                          = 2_000
		highPps                         = 30_000 // needs ~3-4 replicas
		phaseLow1                       = 0.25
		phaseHigh                       = 0.80
		phaseLow2                       = 0.70
		maxReplicas                     = 4
		sampleEvery                     = 0.05
	)

	host := dataplane.NewHost(dataplane.Config{
		PoolSize: 8192, RingSize: 512, TXThreads: 1,
		LoadBalancer: dataplane.LBFlowHash,
	})
	var delivered atomic.Uint64
	var winHist atomic.Pointer[metrics.Histogram]
	winHist.Store(metrics.NewHistogram())
	host.BindDefault(func(_ int, _ []byte, d *dataplane.Desc) {
		delivered.Add(1)
		winHist.Load().Observe(float64(time.Now().UnixNano() - d.ArrivalNanos))
	})
	mustRule := func(r flowtable.Rule) {
		if _, err := host.Table().Add(r); err != nil {
			panic(err)
		}
	}
	mustRule(flowtable.Rule{Scope: flowtable.Port(0), Match: flowtable.MatchAll,
		Actions: []flowtable.Action{flowtable.Forward(svcWorker)}})
	mustRule(flowtable.Rule{Scope: svcWorker, Match: flowtable.MatchAll,
		Actions: []flowtable.Action{flowtable.Out(1)}})
	if _, err := host.AddNF(svcWorker, &scaleWorker{serviceNs: serviceNs}, 0); err != nil {
		panic(err)
	}
	if err := host.Start(); err != nil {
		panic(err)
	}
	defer host.Stop()

	// Control hierarchy: orchestrator with a standby pool (fast boots,
	// §5.2), autoscale policy loop over the manager's telemetry.
	clock := autoscale.NewRealClock()
	orch := orchestrator.New(orchestrator.Config{
		BootDelaySec: 0.5, StandbyDelaySec: 0.01, Standby: maxReplicas,
	}, clock)
	orch.AddHost(dataplane.NamedHost{Name: "host1", Host: host})
	ctrl := autoscale.New(autoscale.Config{
		Min: 1, Max: maxReplicas,
		UpBacklog: 64, DownBacklog: 8,
		UpStreak: 1, DownStreak: 4,
		IntervalSec: 0.01, CooldownSec: 0.05,
	},
		autoscale.ServiceSource{Host: host, Service: svcWorker, Orch: orch},
		autoscale.OrchestratorActuator{
			Orch: orch, HostName: "host1", Host: host, Service: svcWorker,
			NewNF: func() nf.BatchFunction { return &scaleWorker{serviceNs: serviceNs} },
		}, clock)
	ctrl.Start()
	defer ctrl.Stop()

	// Pre-built frames, one per flow (seed varies the flow keys).
	factory := traffic.NewFactory()
	frames := make([][]byte, flows)
	for f := range frames {
		spec := traffic.Flow(int(seed)*flows+f, 512, 0)
		raw, err := factory.Frame(spec, 0)
		if err != nil {
			panic(err)
		}
		frames[f] = append([]byte(nil), raw...)
	}

	res := &ScaleResult{FlowsTotal: flows, PeakReplicas: 1, FinalReplicas: 1}
	rateAt := func(t float64) float64 {
		switch {
		case t < phaseLow1:
			return lowPps
		case t < phaseLow1+phaseHigh:
			return highPps
		case t < phaseLow1+phaseHigh+phaseLow2:
			return lowPps
		default:
			return 0
		}
	}
	sample := func(now float64) {
		reps := host.ReplicaStats(svcWorker)
		backlog := 0
		for _, r := range reps {
			backlog += r.QueueDepth
		}
		h := winHist.Swap(metrics.NewHistogram())
		res.Times = append(res.Times, now)
		res.OfferedPps = append(res.OfferedPps, rateAt(now))
		res.Replicas = append(res.Replicas, len(reps))
		res.Backlog = append(res.Backlog, backlog)
		res.P95Us = append(res.P95Us, h.Quantile(0.95)/1e3)
		if len(reps) > res.PeakReplicas {
			res.PeakReplicas = len(reps)
		}
	}

	// Drive the ramp: keep cumulative injections on the rate integral,
	// sampling telemetry every 50 ms.
	start := time.Now()
	var sent, cum float64
	nextSample := sampleEvery
	lastT := 0.0
	for {
		now := time.Since(start).Seconds()
		if now >= phaseLow1+phaseHigh+phaseLow2 {
			break
		}
		cum += rateAt(lastT) * (now - lastT)
		lastT = now
		for sent < cum {
			f := int(sent) % flows
			_ = host.Inject(0, frames[f]) // failures count as shed load
			sent++
		}
		for now >= nextSample {
			sample(now)
			nextSample += sampleEvery
		}
		time.Sleep(200 * time.Microsecond)
	}

	// Tail: let the queue drain and the controller shrink back to Min.
	host.WaitIdle(5 * time.Second)
	tailDeadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(tailDeadline) {
		now := time.Since(start).Seconds()
		if now >= nextSample {
			sample(now)
			nextSample += sampleEvery
		}
		if len(host.ReplicaStats(svcWorker)) == 1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	sample(time.Since(start).Seconds())
	ctrl.Stop()

	res.FinalReplicas = len(host.ReplicaStats(svcWorker))
	res.Delivered = delivered.Load()
	res.Overflows = host.Stats().Overflows
	for _, ev := range ctrl.Events() {
		switch ev.Decision {
		case autoscale.Up:
			if res.UpAt == 0 {
				res.UpAt = ev.At
			}
		case autoscale.Down:
			res.DownAt = ev.At
		}
	}

	// Per-flow state after both transitions: every flow tracked, counts
	// covering (nearly) all delivered packets. Live transitions may lose
	// a handful of counts in the copy window (see README); quiesced
	// transitions are exact.
	var stateSum uint64
	seen := map[packet.FlowKey]bool{}
	for _, rs := range host.ReplicaStats(svcWorker) {
		host.FlowState(svcWorker, rs.Index).Range(func(k packet.FlowKey, v any) bool {
			stateSum += v.(uint64)
			seen[k] = true
			return true
		})
	}
	res.FlowsTracked = len(seen)
	if res.Delivered > 0 {
		res.StateCoverage = float64(stateSum) / float64(res.Delivered)
	}

	// Overload p95 before vs after the replicas came online: first and
	// last sampled windows inside the high phase.
	for i, tm := range res.Times {
		if tm >= phaseLow1+2*sampleEvery && tm < phaseLow1+phaseHigh {
			if res.HighP95Before == 0 {
				res.HighP95Before = res.P95Us[i]
			}
			res.HighP95After = res.P95Us[i]
		}
	}
	return res
}

func init() {
	register("scale", func(seed int64) Result { return Scale(seed) })
}
