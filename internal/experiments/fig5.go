package experiments

import (
	"math"
	"math/rand"
	"strings"
	"time"

	"sdnfv/internal/placement"
	"sdnfv/internal/topo"
)

// Fig5Result is the placement comparison (§3.5, Fig. 5): maximum link and
// core utilization versus number of flows for the greedy heuristic and the
// ILP-based division heuristic on the Rocketfuel-scale topology, plus the
// right-hand capacity-scaling sweep (flows accommodated at 1–100× link and
// CPU capacity).
type Fig5Result struct {
	Flows []int
	// Utilizations per flow count (NaN = flow set not fully placeable).
	GreedyLink, GreedyCore []float64
	ILPLink, ILPCore       []float64
	// Capacity sweep: flows accommodated (U ≤ 1, all flows accepted) at
	// each capacity multiplier.
	CapScales   []float64
	GreedyFlows []int
	ILPFlows    []int
}

// Name implements Result.
func (*Fig5Result) Name() string { return "fig5" }

// Render implements Result.
func (r *Fig5Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 5 (left): max utilization vs number of flows (AS-16631-scale topology)\n")
	rows := make([][]string, len(r.Flows))
	fmtU := func(v float64) string {
		if math.IsNaN(v) {
			return "-"
		}
		return f2(v)
	}
	for i := range r.Flows {
		rows[i] = []string{
			f0(float64(r.Flows[i])),
			fmtU(r.GreedyLink[i]), fmtU(r.GreedyCore[i]),
			fmtU(r.ILPLink[i]), fmtU(r.ILPCore[i]),
		}
	}
	b.WriteString(table(
		[]string{"flows", "Greedy-Link", "Greedy-Core", "ILP-Link", "ILP-Core"}, rows))
	b.WriteString("\nFigure 5 (right): flows accommodated vs capacity multiplier\n")
	rows = rows[:0]
	for i := range r.CapScales {
		rows = append(rows, []string{
			f0(r.CapScales[i]),
			f0(float64(r.GreedyFlows[i])),
			f0(float64(r.ILPFlows[i])),
		})
	}
	b.WriteString(table([]string{"capacity x", "Greedy flows", "Division flows"}, rows))
	return b.String()
}

// fig5Spec reproduces the paper's parameters: chains J1–J5, each core
// supports 10 flows for J1–J4 and 4 flows for J5, 2 cores per node.
func fig5Spec() placement.Spec {
	return placement.Spec{FlowsPerCore: map[placement.Service]int{
		1: 10, 2: 10, 3: 10, 4: 10, 5: 4,
	}}
}

// fig5Flows draws n random ingress/egress demands with the J1–J5 chain.
func fig5Flows(rng *rand.Rand, t *topo.Topology, n int, bwBps float64) []placement.Flow {
	flows := make([]placement.Flow, n)
	for i := range flows {
		in := topo.NodeID(rng.Intn(t.N()))
		out := topo.NodeID(rng.Intn(t.N()))
		for out == in {
			out = topo.NodeID(rng.Intn(t.N()))
		}
		flows[i] = placement.Flow{
			Ingress: in, Egress: out,
			Chain:        []placement.Service{1, 2, 3, 4, 5},
			BandwidthBps: bwBps,
		}
	}
	return flows
}

// divisionOpts bounds each subproblem so the heuristic stays "less than a
// minute of computation" (§3.5) even in this pure-Go solver: each batch
// solves one LP relaxation of Eqs. (1)–(9) and rounds it (RoundLP); the
// exact branch-and-bound solver is exercised on small instances by the
// placement package's tests.
func divisionOpts() placement.DivisionOptions {
	return placement.DivisionOptions{
		BatchSize: 5,
		MILP: placement.MILPOptions{
			RoundLP:       true,
			SkipRouting:   true,
			TimeLimit:     5 * time.Second,
			SlackHops:     1,
			MaxCandidates: 8,
		},
	}
}

// Fig5 runs both sweeps.
func Fig5(seed int64) *Fig5Result {
	rng := rand.New(rand.NewSource(seed))
	t := topo.Rocketfuel22(seed, 1e9, 1e-3)
	spec := fig5Spec()
	const bw = 5e7 // 50 Mbps per flow on 1 Gbps links (core-constrained regime)

	res := &Fig5Result{Flows: []int{5, 10, 15, 20, 25, 30}}
	allFlows := fig5Flows(rng, t, 30, bw)
	for _, n := range res.Flows {
		flows := allFlows[:n]
		g, err := placement.SolveGreedy(t, flows, spec)
		if err == nil && g.NumAccepted() == n {
			res.GreedyLink = append(res.GreedyLink, g.LinkUtil)
			res.GreedyCore = append(res.GreedyCore, g.CoreUtil)
		} else {
			res.GreedyLink = append(res.GreedyLink, math.NaN())
			res.GreedyCore = append(res.GreedyCore, math.NaN())
		}
		d, err := placement.SolveDivision(t, flows, spec, divisionOpts())
		if err == nil && d.NumAccepted() == n {
			res.ILPLink = append(res.ILPLink, d.LinkUtil)
			res.ILPCore = append(res.ILPCore, d.CoreUtil)
		} else {
			res.ILPLink = append(res.ILPLink, math.NaN())
			res.ILPCore = append(res.ILPCore, math.NaN())
		}
	}

	// Right-hand sweep: at each capacity multiplier, count how many flows
	// of a fixed random demand sequence fit (all accepted, U ≤ 1), read
	// from the solvers' incremental progression.
	res.CapScales = []float64{1, 2, 5, 10}
	maxDemand := 120
	demand := fig5Flows(rng, t, maxDemand, bw)
	// "Flows accommodated" = the largest accepted count reached while
	// total utilization stayed within capacity.
	lastFit := func(a *placement.Assignment) int {
		best := 0
		for _, pt := range a.Progress {
			if pt.U <= 1+1e-9 && pt.Accepted > best {
				best = pt.Accepted
			}
		}
		return best
	}
	for _, scale := range res.CapScales {
		st := topo.Rocketfuel22(seed, 1e9*scale, 1e-3)
		for i := 0; i < st.N(); i++ {
			st.SetCores(topo.NodeID(i), int(2*scale))
		}
		gfit := 0
		if a, err := placement.SolveGreedy(st, demand, spec); err == nil {
			gfit = lastFit(a)
		}
		ifit := 0
		if a, err := placement.SolveDivision(st, demand, spec, divisionOpts()); err == nil {
			ifit = lastFit(a)
		}
		res.GreedyFlows = append(res.GreedyFlows, gfit)
		res.ILPFlows = append(res.ILPFlows, ifit)
	}
	return res
}

func init() {
	register("fig5", func(seed int64) Result { return Fig5(seed) })
}
