package topo

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

func TestLineShortestPath(t *testing.T) {
	l := Line(5, 2, 1e9, 0.001)
	path, d, ok := l.ShortestPath(0, 4)
	if !ok {
		t.Fatal("unreachable")
	}
	if len(path) != 5 || path[0] != 0 || path[4] != 4 {
		t.Fatalf("path = %v", path)
	}
	if math.Abs(d-0.004) > 1e-12 {
		t.Fatalf("delay = %v, want 0.004", d)
	}
}

func TestStarShortestPath(t *testing.T) {
	s := Star(6, 2, 1e9, 0.002)
	path, d, ok := s.ShortestPath(1, 5)
	if !ok || len(path) != 3 || path[1] != 0 {
		t.Fatalf("path=%v ok=%v", path, ok)
	}
	if math.Abs(d-0.004) > 1e-12 {
		t.Fatalf("delay = %v", d)
	}
}

func TestShortestPathSameNode(t *testing.T) {
	l := Line(3, 1, 1e9, 0.001)
	path, d, ok := l.ShortestPath(1, 1)
	if !ok || len(path) != 1 || path[0] != 1 || d != 0 {
		t.Fatalf("path=%v d=%v ok=%v", path, d, ok)
	}
}

func TestUnreachable(t *testing.T) {
	tt := New(3, 1)
	tt.AddLink(0, 1, 1e9, 0.001)
	if _, _, ok := tt.ShortestPath(0, 2); ok {
		t.Fatal("node 2 should be unreachable")
	}
	d := tt.HopDistances(0)
	if d[2] != -1 || d[1] != 1 || d[0] != 0 {
		t.Fatalf("hop distances = %v", d)
	}
}

func TestRocketfuel22Shape(t *testing.T) {
	r := Rocketfuel22(1, 1e9, 0.001)
	if r.N() != 22 {
		t.Fatalf("N = %d, want 22", r.N())
	}
	if r.NumEdges() != 64 {
		t.Fatalf("edges = %d, want 64", r.NumEdges())
	}
	// Connected: all reachable from 0.
	d := r.HopDistances(0)
	for i, h := range d {
		if h < 0 {
			t.Fatalf("node %d unreachable", i)
		}
	}
	// Deterministic for a fixed seed.
	r2 := Rocketfuel22(1, 1e9, 0.001)
	for i := 0; i < r.N(); i++ {
		if len(r.Neighbors(NodeID(i))) != len(r2.Neighbors(NodeID(i))) {
			t.Fatal("topology not deterministic under fixed seed")
		}
	}
	// Every node has 2 cores per the paper's setup.
	for i := 0; i < r.N(); i++ {
		if r.Cores(NodeID(i)) != 2 {
			t.Fatalf("node %d cores = %d", i, r.Cores(NodeID(i)))
		}
	}
}

func TestScaleCapacity(t *testing.T) {
	l := Line(2, 1, 100, 0.001)
	l.ScaleCapacity(10)
	e, ok := l.EdgeBetween(0, 1)
	if !ok || e.CapBps != 1000 {
		t.Fatalf("cap = %v", e.CapBps)
	}
}

// TestRocketfuel22Deterministic requires full structural identity under
// a fixed seed — node count, cores, and the exact edge set with
// capacities and delays — not merely matching degree counts.
func TestRocketfuel22Deterministic(t *testing.T) {
	a := Rocketfuel22(7, 1e9, 0.001)
	b := Rocketfuel22(7, 1e9, 0.001)
	if a.N() != b.N() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("sizes differ: %d/%d vs %d/%d", a.N(), a.NumEdges(), b.N(), b.NumEdges())
	}
	if edgeSig(a) != edgeSig(b) {
		t.Fatal("same seed produced different topologies")
	}
	for i := 0; i < a.N(); i++ {
		if a.Cores(NodeID(i)) != b.Cores(NodeID(i)) {
			t.Fatalf("node %d cores differ", i)
		}
	}
	// A different seed rewires the preferential-attachment tail.
	c := Rocketfuel22(8, 1e9, 0.001)
	if edgeSig(a) == edgeSig(c) {
		t.Fatal("different seeds produced identical topologies")
	}
}

// edgeSig renders the full adjacency (ordered neighbor lists with
// capacity and delay) as a comparable string.
func edgeSig(t *Topology) string {
	var b strings.Builder
	for i := 0; i < t.N(); i++ {
		fmt.Fprintf(&b, "%d:", i)
		for _, e := range t.Neighbors(NodeID(i)) {
			fmt.Fprintf(&b, " %d/%g/%g", e.To, e.CapBps, e.DelaySec)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
