// Package topo provides network topologies for the placement engine
// (§3.5). The paper evaluates on Rocketfuel AS-16631 (22 nodes, 64 edges);
// that dataset is not redistributable, so Rocketfuel22 synthesizes a
// deterministic topology with the same node and edge counts and a similar
// skewed degree distribution (preferential attachment), which is all the
// placement experiment depends on.
package topo

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
)

// NodeID identifies a switch/NF host in a topology.
type NodeID int

// Edge is one directed adjacency (topologies are built undirected; both
// directions are materialized).
type Edge struct {
	To NodeID
	// CapBps is the link capacity in bits/second.
	CapBps float64
	// DelaySec is the propagation delay in seconds.
	DelaySec float64
}

// Topology is a network of NFV-capable switches.
type Topology struct {
	cores []int
	adj   [][]Edge
}

// New returns a topology with n isolated nodes, each with the given number
// of CPU cores (the paper's evaluation uses 2 per node).
func New(n, coresPerNode int) *Topology {
	t := &Topology{
		cores: make([]int, n),
		adj:   make([][]Edge, n),
	}
	for i := range t.cores {
		t.cores[i] = coresPerNode
	}
	return t
}

// N returns the number of nodes.
func (t *Topology) N() int { return len(t.adj) }

// Cores returns the core count of node i.
func (t *Topology) Cores(i NodeID) int { return t.cores[i] }

// SetCores overrides node i's core count.
func (t *Topology) SetCores(i NodeID, c int) { t.cores[i] = c }

// AddLink adds an undirected link with the given capacity and delay.
func (t *Topology) AddLink(a, b NodeID, capBps, delaySec float64) {
	t.adj[a] = append(t.adj[a], Edge{To: b, CapBps: capBps, DelaySec: delaySec})
	t.adj[b] = append(t.adj[b], Edge{To: a, CapBps: capBps, DelaySec: delaySec})
}

// Neighbors returns the outgoing edges of i.
func (t *Topology) Neighbors(i NodeID) []Edge { return t.adj[i] }

// NumEdges returns the number of undirected links.
func (t *Topology) NumEdges() int {
	n := 0
	for _, es := range t.adj {
		n += len(es)
	}
	return n / 2
}

// EdgeBetween returns the edge a→b if present.
func (t *Topology) EdgeBetween(a, b NodeID) (Edge, bool) {
	for _, e := range t.adj[a] {
		if e.To == b {
			return e, true
		}
	}
	return Edge{}, false
}

// ScaleCapacity multiplies all link capacities by f (the Fig. 5 right-hand
// sweep scales CPU and link capacity 1–100×).
func (t *Topology) ScaleCapacity(f float64) {
	for i := range t.adj {
		for j := range t.adj[i] {
			t.adj[i][j].CapBps *= f
		}
	}
}

// pqItem is a Dijkstra heap entry.
type pqItem struct {
	node NodeID
	dist float64
}
type pq []pqItem

func (q pq) Len() int           { return len(q) }
func (q pq) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x any)        { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() any          { old := *q; it := old[len(old)-1]; *q = old[:len(old)-1]; return it }

// ShortestPath returns the minimum-delay path from a to b (inclusive) and
// its total delay. ok is false when b is unreachable.
func (t *Topology) ShortestPath(a, b NodeID) (path []NodeID, delay float64, ok bool) {
	n := t.N()
	dist := make([]float64, n)
	prev := make([]NodeID, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[a] = 0
	q := &pq{{node: a}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if it.dist > dist[it.node] {
			continue
		}
		if it.node == b {
			break
		}
		for _, e := range t.adj[it.node] {
			nd := it.dist + e.DelaySec
			if nd < dist[e.To] {
				dist[e.To] = nd
				prev[e.To] = it.node
				heap.Push(q, pqItem{node: e.To, dist: nd})
			}
		}
	}
	if math.IsInf(dist[b], 1) {
		return nil, 0, false
	}
	for at := b; at != -1; at = prev[at] {
		path = append(path, at)
		if at == a {
			break
		}
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, dist[b], true
}

// HopDistances returns BFS hop counts from src to every node (-1 =
// unreachable); used for candidate-set pruning in the placement MILP.
func (t *Topology) HopDistances(src NodeID) []int {
	d := make([]int, t.N())
	for i := range d {
		d[i] = -1
	}
	d[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, e := range t.adj[u] {
			if d[e.To] < 0 {
				d[e.To] = d[u] + 1
				queue = append(queue, e.To)
			}
		}
	}
	return d
}

// Line builds a linear chain of n nodes.
func Line(n, cores int, capBps, delaySec float64) *Topology {
	t := New(n, cores)
	for i := 0; i < n-1; i++ {
		t.AddLink(NodeID(i), NodeID(i+1), capBps, delaySec)
	}
	return t
}

// Star builds a hub-and-spoke topology with node 0 as hub.
func Star(n, cores int, capBps, delaySec float64) *Topology {
	t := New(n, cores)
	for i := 1; i < n; i++ {
		t.AddLink(0, NodeID(i), capBps, delaySec)
	}
	return t
}

// Rocketfuel22 synthesizes the AS-16631-scale topology used in §3.5: 22
// nodes, 64 undirected edges, preferential-attachment degree skew,
// deterministic for a given seed. Link capacity and delay are uniform, as
// the paper's experiment assumes homogeneous links.
func Rocketfuel22(seed int64, capBps, delaySec float64) *Topology {
	const n, targetEdges = 22, 64
	rng := rand.New(rand.NewSource(seed))
	t := New(n, 2)
	type pair struct{ a, b NodeID }
	have := map[pair]bool{}
	addUnique := func(a, b NodeID) bool {
		if a == b {
			return false
		}
		if a > b {
			a, b = b, a
		}
		if have[pair{a, b}] {
			return false
		}
		have[pair{a, b}] = true
		t.AddLink(a, b, capBps, delaySec)
		return true
	}
	// Seed with a ring so the graph is connected.
	for i := 0; i < n; i++ {
		addUnique(NodeID(i), NodeID((i+1)%n))
	}
	// Preferential attachment for the remaining edges.
	degree := make([]int, n)
	for i := range degree {
		degree[i] = 2
	}
	edges := n
	for edges < targetEdges {
		a := NodeID(rng.Intn(n))
		// Pick b proportionally to degree.
		total := 0
		for _, d := range degree {
			total += d
		}
		r := rng.Intn(total)
		b := NodeID(0)
		for i, d := range degree {
			if r < d {
				b = NodeID(i)
				break
			}
			r -= d
		}
		if addUnique(a, b) {
			degree[a]++
			degree[b]++
			edges++
		}
	}
	return t
}

// String summarizes the topology.
func (t *Topology) String() string {
	return fmt.Sprintf("topology(%d nodes, %d edges)", t.N(), t.NumEdges())
}
