// Package nf defines the SDNFV-User library surface (§4.3) — SDK v2: the
// batch-first interface a network function implements, the per-packet
// actions it may request, the lifecycle hooks the engine drives, the
// engine-owned per-flow state store, and the longer-lived cross-layer
// messages an NF can send up to the NF Manager and SDNFV Application
// (§3.4).
//
// # SDK v2 in one paragraph
//
// An NF implements BatchFunction: the engine hands it a whole burst of
// packets and a decision array, mirroring the burst-oriented layers below
// it (flow-table LookupBatch, SPSC DequeueBatch/EnqueueBatch). Optional
// lifecycle hooks Init/Close bracket the instance's life so state lives
// on the nf.Context instead of package globals: Context.FlowState() is a
// sharded per-flow store owned by the engine, surviving NF restarts and
// inspectable by the manager for §3.4-style per-flow decisions. Cross-
// layer messages sent during a burst are buffered and flushed once per
// burst with duplicate steering messages collapsed. Existing per-packet
// NFs keep working through the PerPacket shim.
package nf

import (
	"fmt"

	"sdnfv/internal/flowtable"
	"sdnfv/internal/mempool"
	"sdnfv/internal/packet"
)

// Verb is the per-packet action kind an NF returns (§3.4 "NF Packet
// Actions"): Default follows the flow table's default edge, SendTo picks a
// specific allowed next hop, Discard drops, and Out transmits directly.
type Verb uint8

// Per-packet verbs.
const (
	VerbDefault Verb = iota
	VerbSendTo
	VerbDiscard
	VerbOut
)

// Decision is what an NF returns for a processed packet. NFs never forward
// packets themselves — they record a decision and return the batch to the
// NF Manager, which validates and performs it. The zero value is Default.
type Decision struct {
	Verb Verb
	// Dest is the target service for VerbSendTo or the NIC port
	// (flowtable.Port-encoded) for VerbOut.
	Dest flowtable.ServiceID
}

// Default follows the flow table's default action.
func Default() Decision { return Decision{Verb: VerbDefault} }

// SendTo requests delivery to service s (must be an allowed next hop).
func SendTo(s flowtable.ServiceID) Decision { return Decision{Verb: VerbSendTo, Dest: s} }

// Discard drops the packet.
func Discard() Decision { return Decision{Verb: VerbDiscard} }

// Out transmits the packet out NIC port n.
func Out(n int) Decision { return Decision{Verb: VerbOut, Dest: flowtable.Port(n)} }

// String renders the decision.
func (d Decision) String() string {
	switch d.Verb {
	case VerbSendTo:
		return "sendto(" + d.Dest.String() + ")"
	case VerbDiscard:
		return "discard"
	case VerbOut:
		return fmt.Sprintf("out(port:%d)", d.Dest.PortNum())
	default:
		return "default"
	}
}

// Packet is the zero-copy view handed to an NF for each descriptor. It
// bundles the parsed header view with the pool handle so helpers can reach
// descriptor metadata.
type Packet struct {
	Handle mempool.Handle
	View   *packet.View
	Key    packet.FlowKey
	// ArrivalNanos is the host RX timestamp (engine clock).
	ArrivalNanos int64
}

// Context is the per-instance environment the engine provides to an NF:
// identity, the engine-owned flow-state store, and the side channel for
// cross-layer messages. A Context belongs to one NF goroutine; only that
// goroutine may call Send during processing.
type Context struct {
	// Service is the abstract service this instance implements.
	Service flowtable.ServiceID
	// Instance distinguishes replicas of the same service on one host.
	Instance int
	// Flows is the engine-owned per-flow state store for this instance.
	// It outlives the NF: replacing or restarting the function behind a
	// service keeps its flow state, and the manager may inspect it for
	// per-flow decisions (§3.4). Prefer the FlowState accessor, which
	// lazily allocates a private store outside the engine.
	Flows *FlowState
	// Emit delivers one cross-layer message to the NF Manager. It may be
	// nil in unit tests; use Context.Send which tolerates that.
	Emit func(Message)

	// buffered switches Send into per-burst batching (engine mode).
	buffered bool
	pending  []Message
}

// FlowState returns the per-instance flow-state store, allocating a
// private one on first use when no engine attached one (unit tests,
// standalone NF drivers).
func (c *Context) FlowState() *FlowState {
	if c.Flows == nil {
		c.Flows = NewFlowState()
	}
	return c.Flows
}

// BufferEmits switches Send into batch mode: messages accumulate until
// FlushEmits. The engine enables this so a burst's messages are deduped
// and delivered once per burst instead of once per packet.
func (c *Context) BufferEmits(on bool) { c.buffered = on }

// Send emits m — immediately when unbuffered (and a manager channel is
// attached), otherwise into the current burst's buffer.
func (c *Context) Send(m Message) {
	if c.buffered {
		c.pending = append(c.pending, m)
		return
	}
	if c.Emit != nil {
		c.Emit(m)
	}
}

// FlushEmits delivers the messages buffered during the current burst and
// returns the number delivered. Duplicate steering messages (SkipMe,
// RequestMe, ChangeDefault with identical fields) collapse to the first
// occurrence — applying them is idempotent, so a burst of packets from one
// newly-flagged flow costs one manager message, mirroring the miss-burst
// dedupe on the controller side. MsgData records are events and are never
// collapsed. The engine calls this once per burst; tests may call it
// directly.
func (c *Context) FlushEmits() int {
	if len(c.pending) == 0 {
		return 0
	}
	sent := 0
	for i := range c.pending {
		if c.pending[i].Kind != MsgData && hasEarlierDuplicate(c.pending[:i], c.pending[i]) {
			continue
		}
		if c.Emit != nil {
			c.Emit(c.pending[i])
			sent++
		}
	}
	clear(c.pending) // drop references (MsgData values can be large)
	c.pending = c.pending[:0]
	return sent
}

// DropEmits discards the messages buffered during the current burst
// without delivering them. The engine uses it to unwind a failed launch.
func (c *Context) DropEmits() {
	clear(c.pending)
	c.pending = c.pending[:0]
}

// hasEarlierDuplicate reports whether an equal steering message precedes m
// in the burst buffer. Value is intentionally ignored: steering kinds do
// not carry application data.
func hasEarlierDuplicate(earlier []Message, m Message) bool {
	for i := range earlier {
		e := &earlier[i]
		if e.Kind == m.Kind && e.S == m.S && e.T == m.T && e.Key == m.Key && e.Flows.Equal(m.Flows) {
			return true
		}
	}
	return false
}

// BatchFunction is a network function — the v2, batch-first interface.
// The engine calls ProcessBatch once per burst; batch[i] and out[i]
// correspond. The out slots arrive zeroed (Default), so an NF writes only
// the decisions it wants to change. Both slices alias engine-owned arrays
// that are reused after the call returns: an NF must not retain batch,
// out, or any Packet view/handle beyond the call.
//
// ReadOnly reports whether the function never mutates packet bytes; only
// read-only NFs are eligible for parallel dispatch (§3.3).
//
// An NF may additionally implement Initializer and Closer for lifecycle
// hooks.
type BatchFunction interface {
	// Name returns a short human-readable identifier.
	Name() string
	// ReadOnly reports whether the NF never writes to packet buffers.
	ReadOnly() bool
	// ProcessBatch handles one burst, recording one decision per packet.
	ProcessBatch(ctx *Context, batch []Packet, out []Decision)
}

// Initializer is the optional startup hook of a BatchFunction. The engine
// calls Init once before the instance processes any packet, with the same
// Context later passed to ProcessBatch; an error aborts the instance
// launch. Use it to validate configuration, allocate state, cache the
// flow-state store, or announce the NF with a cross-layer message.
type Initializer interface {
	Init(ctx *Context) error
}

// Closer is the optional teardown hook of a BatchFunction. The engine
// calls Close exactly once per successful Init, after the instance has
// stopped processing: on Host.Stop, during the unwind of a failed
// Host.Start, or when a still-open NF is replaced. An NF whose Init
// never ran (or already failed) is not closed.
type Closer interface {
	Close() error
}

// InitNF runs fn's Init hook if it has one.
func InitNF(fn BatchFunction, ctx *Context) error {
	if i, ok := fn.(Initializer); ok {
		return i.Init(ctx)
	}
	return nil
}

// CloseNF runs fn's Close hook if it has one.
func CloseNF(fn BatchFunction) error {
	if c, ok := fn.(Closer); ok {
		return c.Close()
	}
	return nil
}

// Function is the v1 per-packet NF interface, kept so third-party NFs
// written against SDK v1 still run: wrap one with PerPacket to obtain a
// BatchFunction. Process must not retain p.View or p.Handle beyond the
// call.
type Function interface {
	// Name returns a short human-readable identifier.
	Name() string
	// ReadOnly reports whether the NF never writes to packet buffers.
	ReadOnly() bool
	// Process handles one packet and returns the requested action.
	Process(ctx *Context, p *Packet) Decision
}

// PerPacket lifts a v1 per-packet Function into a BatchFunction. The shim
// forwards lifecycle hooks when the wrapped function implements them. It
// pays one interface call per packet; NFs on the hot path should
// implement BatchFunction natively.
func PerPacket(f Function) BatchFunction { return &perPacketShim{f: f} }

type perPacketShim struct{ f Function }

func (s *perPacketShim) Name() string   { return s.f.Name() }
func (s *perPacketShim) ReadOnly() bool { return s.f.ReadOnly() }

func (s *perPacketShim) ProcessBatch(ctx *Context, batch []Packet, out []Decision) {
	for i := range batch {
		out[i] = s.f.Process(ctx, &batch[i])
	}
}

func (s *perPacketShim) Init(ctx *Context) error {
	if i, ok := s.f.(Initializer); ok {
		return i.Init(ctx)
	}
	return nil
}

func (s *perPacketShim) Close() error {
	if c, ok := s.f.(Closer); ok {
		return c.Close()
	}
	return nil
}

// Unwrap exposes the wrapped per-packet function (tests, diagnostics).
func (s *perPacketShim) Unwrap() Function { return s.f }

var (
	_ BatchFunction = (*perPacketShim)(nil)
	_ Initializer   = (*perPacketShim)(nil)
	_ Closer        = (*perPacketShim)(nil)
)

// MsgKind discriminates cross-layer messages (§3.4).
type MsgKind uint8

// Cross-layer message kinds.
const (
	// MsgSkipMe: NFs whose default edge leads to S should bypass S.
	MsgSkipMe MsgKind = iota
	// MsgRequestMe: all nodes with an edge to S make S their default.
	MsgRequestMe
	// MsgChangeDefault: set the default rule for service S to T.
	MsgChangeDefault
	// MsgData: arbitrary (key, value) application data for the manager /
	// SDNFV Application.
	MsgData
)

// String names the kind.
func (k MsgKind) String() string {
	switch k {
	case MsgSkipMe:
		return "SkipMe"
	case MsgRequestMe:
		return "RequestMe"
	case MsgChangeDefault:
		return "ChangeDefault"
	case MsgData:
		return "Message"
	default:
		return fmt.Sprintf("MsgKind(%d)", uint8(k))
	}
}

// Message is a cross-layer control message from an NF. Flows selects which
// flows the change applies to (wildcards allowed); S and T are services as
// defined per kind in §3.4.
type Message struct {
	Kind  MsgKind
	Flows flowtable.Match
	S     flowtable.ServiceID
	T     flowtable.ServiceID
	// Key/Value carry application data for MsgData.
	Key   string
	Value any
}

// String renders the message for logs.
func (m Message) String() string {
	switch m.Kind {
	case MsgChangeDefault:
		return fmt.Sprintf("ChangeDefault(%s, %s -> %s)", m.Flows, m.S, m.T)
	case MsgData:
		return fmt.Sprintf("Message(%s, %q=%v)", m.S, m.Key, m.Value)
	default:
		return fmt.Sprintf("%s(%s, %s)", m.Kind, m.Flows, m.S)
	}
}

// FuncAdapter lifts a plain function into a v1 Function; handy in tests
// and simple examples (wrap with PerPacket to run it on the engine).
type FuncAdapter struct {
	FnName   string
	RO       bool
	ProcessF func(ctx *Context, p *Packet) Decision
}

// Name implements Function.
func (f *FuncAdapter) Name() string { return f.FnName }

// ReadOnly implements Function.
func (f *FuncAdapter) ReadOnly() bool { return f.RO }

// Process implements Function.
func (f *FuncAdapter) Process(ctx *Context, p *Packet) Decision {
	return f.ProcessF(ctx, p)
}

var _ Function = (*FuncAdapter)(nil)

// BatchAdapter lifts plain functions into a BatchFunction with optional
// lifecycle hooks; handy in tests and simple examples.
type BatchAdapter struct {
	FnName        string
	RO            bool
	ProcessBatchF func(ctx *Context, batch []Packet, out []Decision)
	InitF         func(ctx *Context) error
	CloseF        func() error
}

// Name implements BatchFunction.
func (a *BatchAdapter) Name() string { return a.FnName }

// ReadOnly implements BatchFunction.
func (a *BatchAdapter) ReadOnly() bool { return a.RO }

// ProcessBatch implements BatchFunction; a nil ProcessBatchF leaves every
// decision at Default.
func (a *BatchAdapter) ProcessBatch(ctx *Context, batch []Packet, out []Decision) {
	if a.ProcessBatchF != nil {
		a.ProcessBatchF(ctx, batch, out)
	}
}

// Init implements Initializer.
func (a *BatchAdapter) Init(ctx *Context) error {
	if a.InitF != nil {
		return a.InitF(ctx)
	}
	return nil
}

// Close implements Closer.
func (a *BatchAdapter) Close() error {
	if a.CloseF != nil {
		return a.CloseF()
	}
	return nil
}

var (
	_ BatchFunction = (*BatchAdapter)(nil)
	_ Initializer   = (*BatchAdapter)(nil)
	_ Closer        = (*BatchAdapter)(nil)
)
