// Package nf defines the SDNFV-User library surface (§4.3): the interface a
// network function implements, the per-packet actions it may request, and
// the longer-lived cross-layer messages it can send up to the NF Manager
// and SDNFV Application (§3.4).
package nf

import (
	"fmt"

	"sdnfv/internal/flowtable"
	"sdnfv/internal/mempool"
	"sdnfv/internal/packet"
)

// Verb is the per-packet action kind an NF returns (§3.4 "NF Packet
// Actions"): Default follows the flow table's default edge, SendTo picks a
// specific allowed next hop, Discard drops, and Out transmits directly.
type Verb uint8

// Per-packet verbs.
const (
	VerbDefault Verb = iota
	VerbSendTo
	VerbDiscard
	VerbOut
)

// Decision is what an NF returns for a processed packet. NFs never forward
// packets themselves — they set a decision on the descriptor and return it
// to the NF Manager, which validates and performs it.
type Decision struct {
	Verb Verb
	// Dest is the target service for VerbSendTo or the NIC port
	// (flowtable.Port-encoded) for VerbOut.
	Dest flowtable.ServiceID
}

// Default follows the flow table's default action.
func Default() Decision { return Decision{Verb: VerbDefault} }

// SendTo requests delivery to service s (must be an allowed next hop).
func SendTo(s flowtable.ServiceID) Decision { return Decision{Verb: VerbSendTo, Dest: s} }

// Discard drops the packet.
func Discard() Decision { return Decision{Verb: VerbDiscard} }

// Out transmits the packet out NIC port n.
func Out(n int) Decision { return Decision{Verb: VerbOut, Dest: flowtable.Port(n)} }

// String renders the decision.
func (d Decision) String() string {
	switch d.Verb {
	case VerbSendTo:
		return "sendto(" + d.Dest.String() + ")"
	case VerbDiscard:
		return "discard"
	case VerbOut:
		return fmt.Sprintf("out(port:%d)", d.Dest.PortNum())
	default:
		return "default"
	}
}

// Packet is the zero-copy view handed to an NF for each descriptor. It
// bundles the parsed header view with the pool handle so helpers can reach
// descriptor metadata.
type Packet struct {
	Handle mempool.Handle
	View   *packet.View
	Key    packet.FlowKey
	// ArrivalNanos is the host RX timestamp (engine clock).
	ArrivalNanos int64
}

// Context is the per-instance environment the engine provides to an NF:
// identity plus the side channel for cross-layer messages.
type Context struct {
	// Service is the abstract service this instance implements.
	Service flowtable.ServiceID
	// Instance distinguishes replicas of the same service on one host.
	Instance int
	// Emit sends a cross-layer message to the NF Manager. It may be nil in
	// unit tests; use Context.Send which tolerates that.
	Emit func(Message)
}

// Send emits m if a manager channel is attached.
func (c *Context) Send(m Message) {
	if c.Emit != nil {
		c.Emit(m)
	}
}

// Function is a network function. Process is called once per packet by the
// engine; it must not retain p.View or p.Handle beyond the call (the
// descriptor is returned to the manager when Process returns).
//
// ReadOnly reports whether the function never mutates packet bytes; only
// read-only NFs are eligible for parallel dispatch (§3.3).
type Function interface {
	// Name returns a short human-readable identifier.
	Name() string
	// ReadOnly reports whether the NF never writes to packet buffers.
	ReadOnly() bool
	// Process handles one packet and returns the requested action.
	Process(ctx *Context, p *Packet) Decision
}

// MsgKind discriminates cross-layer messages (§3.4).
type MsgKind uint8

// Cross-layer message kinds.
const (
	// MsgSkipMe: NFs whose default edge leads to S should bypass S.
	MsgSkipMe MsgKind = iota
	// MsgRequestMe: all nodes with an edge to S make S their default.
	MsgRequestMe
	// MsgChangeDefault: set the default rule for service S to T.
	MsgChangeDefault
	// MsgData: arbitrary (key, value) application data for the manager /
	// SDNFV Application.
	MsgData
)

// String names the kind.
func (k MsgKind) String() string {
	switch k {
	case MsgSkipMe:
		return "SkipMe"
	case MsgRequestMe:
		return "RequestMe"
	case MsgChangeDefault:
		return "ChangeDefault"
	case MsgData:
		return "Message"
	default:
		return fmt.Sprintf("MsgKind(%d)", uint8(k))
	}
}

// Message is a cross-layer control message from an NF. Flows selects which
// flows the change applies to (wildcards allowed); S and T are services as
// defined per kind in §3.4.
type Message struct {
	Kind  MsgKind
	Flows flowtable.Match
	S     flowtable.ServiceID
	T     flowtable.ServiceID
	// Key/Value carry application data for MsgData.
	Key   string
	Value any
}

// String renders the message for logs.
func (m Message) String() string {
	switch m.Kind {
	case MsgChangeDefault:
		return fmt.Sprintf("ChangeDefault(%s, %s -> %s)", m.Flows, m.S, m.T)
	case MsgData:
		return fmt.Sprintf("Message(%s, %q=%v)", m.S, m.Key, m.Value)
	default:
		return fmt.Sprintf("%s(%s, %s)", m.Kind, m.Flows, m.S)
	}
}

// FuncAdapter lifts a plain function into a Function; handy in tests and
// simple examples.
type FuncAdapter struct {
	FnName   string
	RO       bool
	ProcessF func(ctx *Context, p *Packet) Decision
}

// Name implements Function.
func (f *FuncAdapter) Name() string { return f.FnName }

// ReadOnly implements Function.
func (f *FuncAdapter) ReadOnly() bool { return f.RO }

// Process implements Function.
func (f *FuncAdapter) Process(ctx *Context, p *Packet) Decision {
	return f.ProcessF(ctx, p)
}

var _ Function = (*FuncAdapter)(nil)
