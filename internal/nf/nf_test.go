package nf

import (
	"fmt"
	"testing"

	"sdnfv/internal/flowtable"
	"sdnfv/internal/packet"
)

func TestDecisionConstructors(t *testing.T) {
	if d := Default(); d.Verb != VerbDefault {
		t.Fatalf("Default = %v", d)
	}
	if d := SendTo(7); d.Verb != VerbSendTo || d.Dest != 7 {
		t.Fatalf("SendTo = %v", d)
	}
	if d := Discard(); d.Verb != VerbDiscard {
		t.Fatalf("Discard = %v", d)
	}
	if d := Out(3); d.Verb != VerbOut || d.Dest.PortNum() != 3 {
		t.Fatalf("Out = %v", d)
	}
}

func TestDecisionString(t *testing.T) {
	cases := map[string]Decision{
		"default":       Default(),
		"sendto(svc:7)": SendTo(7),
		"discard":       Discard(),
		"out(port:3)":   Out(3),
	}
	for want, d := range cases {
		if got := d.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestMessageString(t *testing.T) {
	m := Message{Kind: MsgChangeDefault, S: 1, T: 2}
	if s := m.String(); s == "" {
		t.Fatal("empty string")
	}
	m = Message{Kind: MsgData, S: 1, Key: "k", Value: 3}
	if s := m.String(); s == "" {
		t.Fatal("empty data string")
	}
	for _, k := range []MsgKind{MsgSkipMe, MsgRequestMe, MsgChangeDefault, MsgData, MsgKind(99)} {
		if k.String() == "" {
			t.Fatalf("kind %d has empty name", k)
		}
	}
}

func TestContextSendNilSafe(t *testing.T) {
	var c Context
	c.Send(Message{Kind: MsgData}) // must not panic with nil Emit
	var got []Message
	c.Emit = func(m Message) { got = append(got, m) }
	c.Send(Message{Kind: MsgSkipMe, S: 5})
	if len(got) != 1 || got[0].S != flowtable.ServiceID(5) {
		t.Fatalf("got = %v", got)
	}
}

func TestFuncAdapter(t *testing.T) {
	called := false
	f := &FuncAdapter{FnName: "x", RO: true, ProcessF: func(ctx *Context, p *Packet) Decision {
		called = true
		return Discard()
	}}
	if f.Name() != "x" || !f.ReadOnly() {
		t.Fatal("adapter metadata wrong")
	}
	if d := f.Process(&Context{}, &Packet{}); d.Verb != VerbDiscard || !called {
		t.Fatal("adapter did not delegate")
	}
}

func TestPerPacketShim(t *testing.T) {
	var seen int
	fn := PerPacket(&FuncAdapter{FnName: "pp", RO: true,
		ProcessF: func(_ *Context, p *Packet) Decision {
			seen++
			if p.Key.SrcPort%2 == 0 {
				return Discard()
			}
			return Default()
		}})
	if fn.Name() != "pp" || !fn.ReadOnly() {
		t.Fatal("shim metadata wrong")
	}
	batch := make([]Packet, 5)
	for i := range batch {
		batch[i].Key.SrcPort = uint16(i)
	}
	out := make([]Decision, 5)
	fn.ProcessBatch(&Context{}, batch, out)
	if seen != 5 {
		t.Fatalf("shim called Process %d times, want 5", seen)
	}
	for i := range out {
		wantDiscard := i%2 == 0
		if (out[i].Verb == VerbDiscard) != wantDiscard {
			t.Fatalf("out[%d] = %v", i, out[i])
		}
	}
	// Shims of plain functions have pass-through lifecycle hooks.
	if err := InitNF(fn, &Context{}); err != nil {
		t.Fatalf("Init through shim = %v", err)
	}
	if err := CloseNF(fn); err != nil {
		t.Fatalf("Close through shim = %v", err)
	}
}

// lifecycleFn is a v1 Function with hooks, to prove the shim forwards them.
type lifecycleFn struct {
	FuncAdapter
	inits, closes int
	initErr       error
}

func (l *lifecycleFn) Init(*Context) error { l.inits++; return l.initErr }
func (l *lifecycleFn) Close() error        { l.closes++; return nil }

func TestPerPacketShimForwardsLifecycle(t *testing.T) {
	l := &lifecycleFn{FuncAdapter: FuncAdapter{FnName: "l", RO: true,
		ProcessF: func(*Context, *Packet) Decision { return Default() }}}
	fn := PerPacket(l)
	if err := InitNF(fn, &Context{}); err != nil || l.inits != 1 {
		t.Fatalf("Init not forwarded: err=%v inits=%d", err, l.inits)
	}
	if err := CloseNF(fn); err != nil || l.closes != 1 {
		t.Fatalf("Close not forwarded: err=%v closes=%d", err, l.closes)
	}
	l.initErr = errMock
	if err := InitNF(fn, &Context{}); err != errMock {
		t.Fatalf("Init error not forwarded: %v", err)
	}
}

var errMock = fmt.Errorf("mock failure")

func TestBatchAdapterLifecycle(t *testing.T) {
	inits, closes := 0, 0
	a := &BatchAdapter{
		FnName: "ba", RO: true,
		InitF:  func(*Context) error { inits++; return nil },
		CloseF: func() error { closes++; return nil },
	}
	if err := InitNF(a, &Context{}); err != nil || inits != 1 {
		t.Fatal("InitF not invoked")
	}
	if err := CloseNF(a); err != nil || closes != 1 {
		t.Fatal("CloseF not invoked")
	}
	// Nil ProcessBatchF leaves decisions untouched (Default).
	out := []Decision{Discard()}
	a.ProcessBatch(&Context{}, make([]Packet, 1), out)
	if out[0].Verb != VerbDiscard {
		t.Fatal("nil ProcessBatchF mutated out")
	}
	// NFs without hooks are fine too.
	plain := PerPacket(&FuncAdapter{FnName: "p", ProcessF: func(*Context, *Packet) Decision { return Default() }})
	if err := InitNF(plain, &Context{}); err != nil {
		t.Fatal(err)
	}
}

func TestBufferedEmitFlushDedupes(t *testing.T) {
	var got []Message
	c := Context{Service: 7, Emit: func(m Message) { got = append(got, m) }}
	c.BufferEmits(true)
	k := packet.FlowKey{SrcIP: packet.IPv4(10, 0, 0, 1), SrcPort: 1, DstPort: 2, Proto: 17}
	// A burst where one flow triggers the same ChangeDefault repeatedly,
	// interleaved with data records (never collapsed) and a distinct
	// steering message.
	cd := Message{Kind: MsgChangeDefault, Flows: flowtable.ExactMatch(k), S: 7, T: 9}
	for i := 0; i < 3; i++ {
		c.Send(cd)
		c.Send(Message{Kind: MsgData, S: 7, Key: "n", Value: i})
	}
	c.Send(Message{Kind: MsgRequestMe, Flows: flowtable.MatchAll, S: 7})
	c.Send(Message{Kind: MsgRequestMe, Flows: flowtable.MatchAll, S: 7})
	if len(got) != 0 {
		t.Fatalf("buffered Send delivered early: %v", got)
	}
	if n := c.FlushEmits(); n != 5 {
		t.Fatalf("FlushEmits = %d, want 5 (1 ChangeDefault + 3 data + 1 RequestMe)", n)
	}
	if len(got) != 5 {
		t.Fatalf("delivered %d messages: %v", len(got), got)
	}
	if got[0].Kind != MsgChangeDefault || got[1].Kind != MsgData || got[4].Kind != MsgRequestMe {
		t.Fatalf("order/dedupe wrong: %v", got)
	}
	// Buffer resets between bursts: the same message sends again next burst.
	c.Send(cd)
	if n := c.FlushEmits(); n != 1 {
		t.Fatalf("second-burst flush = %d, want 1", n)
	}
	// Unbuffered contexts deliver immediately (v1 behavior).
	c.BufferEmits(false)
	c.Send(cd)
	if len(got) != 7 {
		t.Fatalf("unbuffered Send not immediate: %d", len(got))
	}
}
