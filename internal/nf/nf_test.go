package nf

import (
	"testing"

	"sdnfv/internal/flowtable"
)

func TestDecisionConstructors(t *testing.T) {
	if d := Default(); d.Verb != VerbDefault {
		t.Fatalf("Default = %v", d)
	}
	if d := SendTo(7); d.Verb != VerbSendTo || d.Dest != 7 {
		t.Fatalf("SendTo = %v", d)
	}
	if d := Discard(); d.Verb != VerbDiscard {
		t.Fatalf("Discard = %v", d)
	}
	if d := Out(3); d.Verb != VerbOut || d.Dest.PortNum() != 3 {
		t.Fatalf("Out = %v", d)
	}
}

func TestDecisionString(t *testing.T) {
	cases := map[string]Decision{
		"default":       Default(),
		"sendto(svc:7)": SendTo(7),
		"discard":       Discard(),
		"out(port:3)":   Out(3),
	}
	for want, d := range cases {
		if got := d.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestMessageString(t *testing.T) {
	m := Message{Kind: MsgChangeDefault, S: 1, T: 2}
	if s := m.String(); s == "" {
		t.Fatal("empty string")
	}
	m = Message{Kind: MsgData, S: 1, Key: "k", Value: 3}
	if s := m.String(); s == "" {
		t.Fatal("empty data string")
	}
	for _, k := range []MsgKind{MsgSkipMe, MsgRequestMe, MsgChangeDefault, MsgData, MsgKind(99)} {
		if k.String() == "" {
			t.Fatalf("kind %d has empty name", k)
		}
	}
}

func TestContextSendNilSafe(t *testing.T) {
	var c Context
	c.Send(Message{Kind: MsgData}) // must not panic with nil Emit
	var got []Message
	c.Emit = func(m Message) { got = append(got, m) }
	c.Send(Message{Kind: MsgSkipMe, S: 5})
	if len(got) != 1 || got[0].S != flowtable.ServiceID(5) {
		t.Fatalf("got = %v", got)
	}
}

func TestFuncAdapter(t *testing.T) {
	called := false
	f := &FuncAdapter{FnName: "x", RO: true, ProcessF: func(ctx *Context, p *Packet) Decision {
		called = true
		return Discard()
	}}
	if f.Name() != "x" || !f.ReadOnly() {
		t.Fatal("adapter metadata wrong")
	}
	if d := f.Process(&Context{}, &Packet{}); d.Verb != VerbDiscard || !called {
		t.Fatal("adapter did not delegate")
	}
}
