package nf

import (
	"sync"
	"testing"

	"sdnfv/internal/packet"
)

func fsKey(n byte) packet.FlowKey {
	return packet.FlowKey{
		SrcIP: packet.IPv4(10, 0, 0, n), DstIP: packet.IPv4(10, 1, 0, 1),
		SrcPort: uint16(n), DstPort: 80, Proto: packet.ProtoUDP,
	}
}

func TestFlowStateBasics(t *testing.T) {
	s := NewFlowState()
	k := fsKey(1)
	if _, ok := s.Get(k); ok {
		t.Fatal("empty store had state")
	}
	s.Set(k, 42)
	if v, ok := s.Get(k); !ok || v.(int) != 42 {
		t.Fatalf("Get = %v,%v", v, ok)
	}
	s.Set(k, 43) // overwrite
	if v, _ := s.Get(k); v.(int) != 43 {
		t.Fatalf("overwrite lost: %v", v)
	}
	s.Set(fsKey(2), "x")
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	s.Delete(k)
	if _, ok := s.Get(k); ok || s.Len() != 1 {
		t.Fatal("Delete did not remove")
	}
	s.Clear()
	if s.Len() != 0 {
		t.Fatal("Clear left state")
	}
}

func TestFlowStateRange(t *testing.T) {
	s := NewFlowState()
	for i := byte(0); i < 50; i++ {
		s.Set(fsKey(i), int(i))
	}
	sum, visits := 0, 0
	s.Range(func(_ packet.FlowKey, v any) bool {
		sum += v.(int)
		visits++
		return true
	})
	if visits != 50 || sum != 49*50/2 {
		t.Fatalf("Range visited %d sum %d", visits, sum)
	}
	// Early stop.
	visits = 0
	s.Range(func(packet.FlowKey, any) bool { visits++; return false })
	if visits != 1 {
		t.Fatalf("Range ignored stop: %d visits", visits)
	}
}

// TestFlowStateConcurrentReaders models the engine contract: one writer
// (the NF goroutine) plus concurrent manager inspection. Run under -race.
func TestFlowStateConcurrentReaders(t *testing.T) {
	s := NewFlowState()
	done := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() { // writer: churn flows until told to stop
		defer writer.Done()
		i := 0
		for {
			select {
			case <-done:
				return
			default:
			}
			s.Set(fsKey(byte(i%64)), i)
			if i%3 == 0 {
				s.Delete(fsKey(byte((i + 1) % 64)))
			}
			i++
		}
	}()
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() { // readers: Get/Len/Range concurrently
			defer readers.Done()
			for i := 0; i < 5_000; i++ {
				s.Get(fsKey(byte(i % 64)))
				if i%100 == 0 {
					s.Len()
					s.Range(func(packet.FlowKey, any) bool { return true })
				}
			}
		}()
	}
	readers.Wait()
	close(done)
	writer.Wait()
}
