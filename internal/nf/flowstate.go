package nf

import (
	"sync"

	"sdnfv/internal/packet"
)

// flowStateShards is the shard count of a FlowState. Sharding keeps the
// NF goroutine's per-packet accesses and the manager's concurrent
// inspection off the same lock.
const flowStateShards = 16

// FlowState is a per-flow state store keyed by the packet 5-tuple. The
// engine owns one per NF instance and attaches it to the instance's
// Context, so state survives NF restarts and replacement and the manager
// can inspect it for §3.4-style per-flow decisions. It replaces the
// private ad-hoc maps NFs used to keep.
//
// Access is safe for one writer (the NF goroutine) plus any number of
// concurrent readers; all operations lock only the shard the key hashes
// to.
type FlowState struct {
	shards [flowStateShards]flowShard
}

type flowShard struct {
	mu sync.RWMutex
	m  map[packet.FlowKey]any
}

// NewFlowState returns an empty store.
func NewFlowState() *FlowState {
	s := &FlowState{}
	for i := range s.shards {
		s.shards[i].m = make(map[packet.FlowKey]any)
	}
	return s
}

func (s *FlowState) shard(k packet.FlowKey) *flowShard {
	return &s.shards[k.Hash()%flowStateShards]
}

// Get returns the state stored for flow k.
func (s *FlowState) Get(k packet.FlowKey) (any, bool) {
	sh := s.shard(k)
	sh.mu.RLock()
	v, ok := sh.m[k]
	sh.mu.RUnlock()
	return v, ok
}

// Set stores v as flow k's state.
func (s *FlowState) Set(k packet.FlowKey, v any) {
	sh := s.shard(k)
	sh.mu.Lock()
	sh.m[k] = v
	sh.mu.Unlock()
}

// Delete removes flow k's state.
func (s *FlowState) Delete(k packet.FlowKey) {
	sh := s.shard(k)
	sh.mu.Lock()
	delete(sh.m, k)
	sh.mu.Unlock()
}

// Len returns the number of flows with state.
func (s *FlowState) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// Range calls fn for every (flow, state) pair until fn returns false.
// fn must not mutate the store; snapshot keys first for that.
func (s *FlowState) Range(fn func(k packet.FlowKey, v any) bool) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k, v := range sh.m {
			if !fn(k, v) {
				sh.mu.RUnlock()
				return
			}
		}
		sh.mu.RUnlock()
	}
}

// Clear drops all per-flow state.
func (s *FlowState) Clear() {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		clear(sh.m)
		sh.mu.Unlock()
	}
}
