//go:build !race

package flowtable

// Memory-shape tests for the lifecycle sweeper. Excluded under the race
// detector, whose shadow memory makes HeapInuse comparisons meaningless.

import (
	"runtime"
	"testing"
	"time"

	"sdnfv/internal/packet"
)

// TestSweepShrinksShardMaps proves table memory is non-monotonic: after
// a mass expiry the rebuilt per-scope maps are right-sized, so heap in
// use drops back near the baseline instead of retaining the peak's
// buckets (Go maps never shrink in place).
func TestSweepShrinksShardMaps(t *testing.T) {
	if testing.Short() {
		t.Skip("allocates a large table")
	}
	tb := New()
	heap := func() uint64 {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapInuse
	}
	base := heap()
	const flows = 200_000
	const batch = 4096
	rules := make([]Rule, 0, batch)
	for i := 0; i < flows; i += batch {
		rules = rules[:0]
		for j := i; j < i+batch && j < flows; j++ {
			k := packet.FlowKey{
				SrcIP:   packet.IPv4(10, byte(j>>16), byte(j>>8), byte(j)),
				DstIP:   packet.IPv4(10, 0, 0, 1),
				SrcPort: uint16(j), DstPort: 80, Proto: packet.ProtoUDP,
			}
			rules = append(rules, Rule{Scope: Port(j % 8), Match: ExactMatch(k),
				Actions: []Action{Out(1)}, IdleTimeout: time.Second})
		}
		if _, err := tb.AddBatch(rules); err != nil {
			t.Fatal(err)
		}
	}
	peak := heap()
	tb.Advance(2 * time.Second)
	if got := len(tb.Sweep()); got != flows {
		t.Fatalf("swept %d, want %d", got, flows)
	}
	after := heap()
	grown, kept := int64(peak)-int64(base), int64(after)-int64(base)
	if kept > grown/4 {
		t.Fatalf("shard maps did not shrink: base=%d peak=+%d after=+%d (kept > 25%% of peak)",
			base, grown, kept)
	}
}
