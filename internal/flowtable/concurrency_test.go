package flowtable

import (
	"sync"
	"sync/atomic"
	"testing"

	"sdnfv/internal/packet"
)

// TestLookupBatch checks the batched resolver against the single-shot one
// across hits, misses, and scope changes mid-batch.
func TestLookupBatch(t *testing.T) {
	tb := New()
	k1, k2 := key(1), key(2)
	_, _ = tb.Add(Rule{Scope: Port(0), Match: ExactMatch(k1), Actions: []Action{Forward(10)}})
	_, _ = tb.Add(Rule{Scope: ServiceID(3), Match: MatchAll, Actions: []Action{Out(1)}})

	scopes := []ServiceID{Port(0), Port(0), ServiceID(3), ServiceID(7)}
	keys := []packet.FlowKey{k1, k2, k1, k1}
	out := make([]*Entry, len(scopes))
	hits := tb.LookupBatch(scopes, keys, out)
	if hits != 2 {
		t.Fatalf("hits = %d, want 2", hits)
	}
	if out[0] == nil || out[0].Actions[0] != Forward(10) {
		t.Fatalf("out[0] = %+v", out[0])
	}
	if out[1] != nil {
		t.Fatalf("out[1] should miss, got %+v", out[1])
	}
	if out[2] == nil || out[2].Actions[0] != Out(1) {
		t.Fatalf("out[2] = %+v", out[2])
	}
	if out[3] != nil {
		t.Fatalf("out[3] should miss, got %+v", out[3])
	}
	st := tb.Stats()
	if st.Lookups != 4 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want 4 lookups / 2 misses", st)
	}
}

// TestAddBatch checks multi-shard batch installation and the all-or-nothing
// validation.
func TestAddBatch(t *testing.T) {
	tb := New()
	rules := []Rule{
		{Scope: Port(0), Match: MatchAll, Actions: []Action{Forward(1)}},
		{Scope: ServiceID(1), Match: MatchAll, Actions: []Action{Forward(2)}},
		{Scope: ServiceID(2), Match: ExactMatch(key(1)), Actions: []Action{Out(1)}},
	}
	ids, err := tb.AddBatch(rules)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 {
		t.Fatalf("ids = %v", ids)
	}
	seen := map[uint64]bool{}
	for _, id := range ids {
		if id == 0 || seen[id] {
			t.Fatalf("bad/duplicate id in %v", ids)
		}
		seen[id] = true
	}
	if tb.Len() != 3 {
		t.Fatalf("Len = %d", tb.Len())
	}
	// A batch containing an invalid rule installs nothing.
	_, err = tb.AddBatch([]Rule{
		{Scope: ServiceID(5), Match: MatchAll, Actions: []Action{Forward(9)}},
		{Scope: ServiceID(6), Match: MatchAll},
	})
	if err == nil {
		t.Fatal("empty-action rule accepted")
	}
	if tb.Len() != 3 {
		t.Fatalf("partial batch installed: Len = %d", tb.Len())
	}
	// Deleting batch-installed rules works like singly-added ones.
	if err := tb.Delete(ids[2]); err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 2 {
		t.Fatalf("Len after delete = %d", tb.Len())
	}
}

// TestEntryImmutableAfterUpdate is the regression test for the seed's
// in-place mutation: UpdateDefault/RewriteDest must publish fresh entries,
// never rewrite an entry a lock-free reader may already hold.
func TestEntryImmutableAfterUpdate(t *testing.T) {
	tb := New()
	_, _ = tb.Add(Rule{Scope: ServiceID(1), Match: MatchAll,
		Actions: []Action{Forward(2), Forward(3)}})
	before, err := tb.Lookup(ServiceID(1), key(1))
	if err != nil {
		t.Fatal(err)
	}
	if n := tb.UpdateDefault(ServiceID(1), MatchAll, Forward(3), true); n != 1 {
		t.Fatalf("UpdateDefault = %d", n)
	}
	if d, _ := before.Default(); d != Forward(2) {
		t.Fatalf("held entry mutated in place: default now %v", d)
	}
	after, _ := tb.Lookup(ServiceID(1), key(1))
	if d, _ := after.Default(); d != Forward(3) {
		t.Fatalf("update not visible to new lookups: %v", d)
	}
	if before.ID != after.ID {
		t.Fatalf("rewrite changed the rule ID: %d -> %d", before.ID, after.ID)
	}

	if n := tb.RewriteDest(MatchAll, Forward(3), Forward(4)); n != 1 {
		t.Fatalf("RewriteDest = %d", n)
	}
	if d, _ := after.Default(); d != Forward(3) {
		t.Fatalf("RewriteDest mutated a published entry: %v", d)
	}
}

// TestSpecializeAtomicWithRewrite is the regression test for the seed's
// TOCTOU: specializeDefault dropped the lock between reading the governing
// wildcard and installing the exact rule, so a table rewrite landing in
// that window was silently lost — the exact rule resurrected the stale
// action list. Both valid serializations (rewrite→specialize and
// specialize→rewrite) end with the old destination gone from the
// specialized rule, so after both ops complete Forward(2) must never
// survive in it.
func TestSpecializeAtomicWithRewrite(t *testing.T) {
	k := key(3)
	for iter := 0; iter < 500; iter++ {
		tb := New()
		_, _ = tb.Add(Rule{Scope: ServiceID(1), Match: MatchAll,
			Actions: []Action{Forward(2), Forward(3), Forward(4)}})
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			tb.RewriteDest(MatchAll, Forward(2), Forward(5))
		}()
		go func() {
			defer wg.Done()
			tb.UpdateDefault(ServiceID(1), ExactMatch(k), Forward(3), true)
		}()
		wg.Wait()
		e, err := tb.Lookup(ServiceID(1), k)
		if err != nil {
			t.Fatal(err)
		}
		if !e.Match.IsExact() {
			t.Fatalf("iter %d: specialization lost, governing rule %v", iter, e.Match)
		}
		if d, _ := e.Default(); d != Forward(3) {
			t.Fatalf("iter %d: specialized default = %v", iter, d)
		}
		if e.Allows(Forward(2)) {
			t.Fatalf("iter %d: stale destination resurrected: %v", iter, e.Actions)
		}
		if !e.Allows(Forward(5)) {
			t.Fatalf("iter %d: rewrite lost: %v", iter, e.Actions)
		}
	}
}

// TestConcurrentTableChurn exercises every mutation primitive against a
// storm of lock-free lookups; run with -race. Readers assert snapshot
// consistency: every returned entry must actually match the key, and its
// action list must never be empty or torn.
func TestConcurrentTableChurn(t *testing.T) {
	tb := New()
	const scopeCount = 8
	for s := 0; s < scopeCount; s++ {
		_, _ = tb.Add(Rule{Scope: ServiceID(s), Match: MatchAll,
			Actions: []Action{Forward(100), Forward(101)}})
	}
	var stopFlag atomic.Bool
	var wg sync.WaitGroup

	// Lock-free readers: single lookups and batches.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			scopes := make([]ServiceID, 16)
			keys := make([]packet.FlowKey, 16)
			out := make([]*Entry, 16)
			for i := 0; !stopFlag.Load(); i++ {
				scope := ServiceID((i + r) % scopeCount)
				k := key(byte(i))
				if e, err := tb.Lookup(scope, k); err == nil {
					if len(e.Actions) == 0 || !e.Match.Matches(k) {
						t.Errorf("torn entry: %+v", e)
						return
					}
				}
				for j := range scopes {
					scopes[j] = ServiceID((i + j) % scopeCount)
					keys[j] = key(byte(i + j))
				}
				tb.LookupBatch(scopes, keys, out)
				for j, e := range out {
					if e != nil && !e.Match.Matches(keys[j]) {
						t.Errorf("batch returned non-matching entry %+v for %v", e, keys[j])
						return
					}
				}
			}
		}(r)
	}

	// Writers: add/delete exact rules, rewrite defaults, rewrite dests,
	// specialize flows.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var ids []uint64
			for i := 0; !stopFlag.Load(); i++ {
				scope := ServiceID((i + w) % scopeCount)
				k := key(byte(i ^ w))
				switch i % 5 {
				case 0:
					id, err := tb.Add(Rule{Scope: scope, Match: ExactMatch(k),
						Actions: []Action{Forward(100), Drop()}})
					if err == nil {
						ids = append(ids, id)
					}
				case 1:
					if len(ids) > 0 {
						_ = tb.Delete(ids[0])
						ids = ids[1:]
					}
				case 2:
					tb.UpdateDefault(scope, MatchAll, Forward(101), true)
				case 3:
					tb.UpdateDefault(scope, ExactMatch(k), Forward(101), true)
				case 4:
					tb.RewriteDest(MatchAll, Forward(101), Forward(100))
					tb.RewriteDest(MatchAll, Forward(100), Forward(101))
				}
				_ = tb.ScopesWithActionTo(MatchAll, ServiceID(100))
			}
		}(w)
	}

	// Observers: stats, dump, len.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stopFlag.Load() {
			st := tb.Stats()
			if st.Rules < 0 {
				t.Errorf("negative rule count: %+v", st)
				return
			}
			_ = tb.Dump()
			_ = tb.Len()
		}
	}()

	for i := 0; i < 2000; i++ {
		_, _ = tb.Lookup(ServiceID(i%scopeCount), key(byte(i)))
	}
	stopFlag.Store(true)
	wg.Wait()
}

// BenchmarkLookupParallel measures the lock-free lookup under reader
// parallelism (the seed's RWMutex serialized counter writes here).
func BenchmarkLookupParallel(b *testing.B) {
	tb := New()
	keys := make([]packet.FlowKey, 256)
	for i := range keys {
		keys[i] = key(byte(i))
		keys[i].SrcPort = uint16(i)
		_, _ = tb.Add(Rule{Scope: Port(0), Match: ExactMatch(keys[i]), Actions: []Action{Forward(1)}})
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := tb.Lookup(Port(0), keys[i&255]); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

// BenchmarkLookupBatch measures the amortized per-packet cost of the
// batched resolver over a 64-descriptor burst.
func BenchmarkLookupBatch(b *testing.B) {
	tb := New()
	keys := make([]packet.FlowKey, 256)
	for i := range keys {
		keys[i] = key(byte(i))
		keys[i].SrcPort = uint16(i)
		_, _ = tb.Add(Rule{Scope: Port(0), Match: ExactMatch(keys[i]), Actions: []Action{Forward(1)}})
	}
	const burst = 64
	scopes := make([]ServiceID, burst)
	bkeys := make([]packet.FlowKey, burst)
	out := make([]*Entry, burst)
	for i := range scopes {
		scopes[i] = Port(0)
		bkeys[i] = keys[i%256]
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += burst {
		if hits := tb.LookupBatch(scopes, bkeys, out); hits != burst {
			b.Fatalf("hits = %d", hits)
		}
	}
}
