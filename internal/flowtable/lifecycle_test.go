package flowtable

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"sdnfv/internal/packet"
)

func TestIdleTimeoutLazyMiss(t *testing.T) {
	tb := New()
	k := key(1)
	if _, err := tb.Add(Rule{Scope: Port(0), Match: ExactMatch(k),
		Actions: []Action{Out(1)}, IdleTimeout: time.Second}); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Lookup(Port(0), k); err != nil {
		t.Fatalf("fresh rule missed: %v", err)
	}
	tb.Advance(999 * time.Millisecond)
	if _, err := tb.Lookup(Port(0), k); err != nil {
		t.Fatalf("rule within idle window missed: %v", err)
	}
	// The hit above touched the idle clock, so a full window must elapse
	// again before expiry.
	tb.Advance(999 * time.Millisecond)
	if _, err := tb.Lookup(Port(0), k); err != nil {
		t.Fatalf("touch did not refresh idle clock: %v", err)
	}
	tb.Advance(time.Second)
	if _, err := tb.Lookup(Port(0), k); err == nil {
		t.Fatal("idle-expired rule still answers lookups")
	}
	st := tb.Stats()
	if st.ExpiredLookups == 0 {
		t.Fatal("lazy expiry not signalled in ExpiredLookups")
	}
	// The rule is expired but not yet reaped: only the sweeper removes.
	if st.Rules != 1 {
		t.Fatalf("lazy path deleted the rule: Rules=%d", st.Rules)
	}
	ev := tb.Sweep()
	if len(ev) != 1 || ev[0].Reason != EvictIdle || ev[0].Scope != Port(0) {
		t.Fatalf("sweep = %+v, want one idle eviction at port:0", ev)
	}
	if got, ok := ev[0].Match.ExactKey(); !ok || got != k {
		t.Fatalf("evicted key = %v ok=%v, want %v", got, ok, k)
	}
	if n := tb.Stats().Rules; n != 0 {
		t.Fatalf("rules after sweep = %d, want 0", n)
	}
	// Exactly-once: a second sweep finds nothing.
	if ev := tb.Sweep(); len(ev) != 0 {
		t.Fatalf("second sweep re-evicted: %+v", ev)
	}
}

func TestHardTimeoutIgnoresTraffic(t *testing.T) {
	tb := New()
	k := key(2)
	if _, err := tb.Add(Rule{Scope: Port(0), Match: ExactMatch(k),
		Actions: []Action{Out(1)}, HardTimeout: time.Second}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		tb.Advance(400 * time.Millisecond)
		_, _ = tb.Lookup(Port(0), k) // traffic cannot extend a hard lease
	}
	if _, err := tb.Lookup(Port(0), k); err == nil {
		t.Fatal("hard-expired rule still answers lookups")
	}
	ev := tb.Sweep()
	if len(ev) != 1 || ev[0].Reason != EvictHard {
		t.Fatalf("sweep = %+v, want one hard eviction", ev)
	}
	if st := tb.Stats(); st.EvictedHard != 1 || st.EvictedIdle != 0 {
		t.Fatalf("eviction counters = %+v", st)
	}
}

func TestExpiredExactFallsThroughToWildcard(t *testing.T) {
	tb := New()
	k := key(3)
	_, _ = tb.Add(Rule{Scope: Port(0), Match: MatchAll, Actions: []Action{Forward(10)}})
	_, _ = tb.Add(Rule{Scope: Port(0), Match: ExactMatch(k),
		Actions: []Action{Forward(20)}, IdleTimeout: time.Second})
	tb.Advance(2 * time.Second)
	e, err := tb.Lookup(Port(0), k)
	if err != nil {
		t.Fatalf("wildcard did not answer after exact expiry: %v", err)
	}
	if d, _ := e.Default(); d != Forward(10) {
		t.Fatalf("expired exact rule still shadows wildcard: %v", d)
	}
}

func TestDefaultTimeoutsExactOnly(t *testing.T) {
	tb := New()
	tb.SetDefaultTimeouts(time.Second, 0)
	k := key(4)
	_, _ = tb.Add(Rule{Scope: Port(0), Match: MatchAll, Actions: []Action{Forward(10)}})
	_, _ = tb.Add(Rule{Scope: Port(0), Match: ExactMatch(k), Actions: []Action{Forward(20)}})
	tb.Advance(2 * time.Second)
	if len(tb.Sweep()) != 1 {
		t.Fatal("exact rule did not inherit the table default idle timeout")
	}
	// The wildcard must survive: infrastructure rules never inherit.
	if tb.Stats().Rules != 1 {
		t.Fatal("wildcard rule inherited a default timeout")
	}
	e, err := tb.Lookup(Port(0), k)
	if err != nil {
		t.Fatal("wildcard gone after sweep")
	}
	if d, _ := e.Default(); d != Forward(10) {
		t.Fatalf("wrong survivor: %v", d)
	}
}

func TestScopeTimeoutOverrideAndNegativeOptOut(t *testing.T) {
	tb := New()
	tb.SetDefaultTimeouts(time.Second, 0)
	tb.SetScopeTimeouts(Port(1), 10*time.Second, 0)
	_, _ = tb.Add(Rule{Scope: Port(0), Match: ExactMatch(key(5)), Actions: []Action{Out(1)}})
	_, _ = tb.Add(Rule{Scope: Port(1), Match: ExactMatch(key(5)), Actions: []Action{Out(1)}})
	// Negative opts out of the default entirely: this rule never expires.
	_, _ = tb.Add(Rule{Scope: Port(2), Match: ExactMatch(key(5)),
		Actions: []Action{Out(1)}, IdleTimeout: -1})
	tb.Advance(2 * time.Second)
	ev := tb.Sweep()
	if len(ev) != 1 || ev[0].Scope != Port(0) {
		t.Fatalf("sweep = %+v, want only the port:0 rule (scope override 10s, opt-out never)", ev)
	}
	tb.Advance(20 * time.Second)
	ev = tb.Sweep()
	if len(ev) != 1 || ev[0].Scope != Port(1) {
		t.Fatalf("sweep = %+v, want the scope-override rule", ev)
	}
	if tb.Stats().Rules != 1 {
		t.Fatal("opt-out rule expired")
	}
}

func TestReplacementRefreshesLease(t *testing.T) {
	tb := New()
	k := key(6)
	r := Rule{Scope: Port(0), Match: ExactMatch(k), Actions: []Action{Out(1)}, IdleTimeout: time.Second}
	id1, _ := tb.Add(r)
	tb.Advance(900 * time.Millisecond)
	id2, _ := tb.Add(r) // re-install: same ID, fresh lease
	if id1 != id2 {
		t.Fatalf("replacement changed ID: %d -> %d", id1, id2)
	}
	tb.Advance(900 * time.Millisecond)
	if len(tb.Sweep()) != 0 {
		t.Fatal("replacement did not refresh the idle lease")
	}
	tb.Advance(200 * time.Millisecond)
	if len(tb.Sweep()) != 1 {
		t.Fatal("refreshed lease never expired")
	}
}

func TestDefaultRewriteKeepsIdleClock(t *testing.T) {
	tb := New()
	k := key(7)
	_, _ = tb.Add(Rule{Scope: Port(0), Match: ExactMatch(k),
		Actions: []Action{Forward(10), Forward(11)}, IdleTimeout: time.Second})
	tb.Advance(900 * time.Millisecond)
	// UpdateDefault rewrites the entry but must share the idle clock:
	// changing a default is not flow activity.
	if n := tb.UpdateDefault(Port(0), ExactMatch(k), Forward(11), true); n != 1 {
		t.Fatalf("UpdateDefault = %d", n)
	}
	tb.Advance(200 * time.Millisecond)
	if len(tb.Sweep()) != 1 {
		t.Fatal("default rewrite reset the idle clock")
	}
}

func TestStatsLifecycleIdentity(t *testing.T) {
	tb := New()
	tb.SetDefaultTimeouts(time.Second, 0)
	var ids []uint64
	for i := 0; i < 10; i++ {
		id, err := tb.Add(Rule{Scope: Port(0), Match: ExactMatch(key(byte(i))), Actions: []Action{Out(1)}})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	_, _ = tb.Add(Rule{Scope: Port(0), Match: MatchAll, Actions: []Action{Forward(10)}})
	// Replace one (no new ID, no add), delete two, expire the rest.
	_, _ = tb.Add(Rule{Scope: Port(0), Match: ExactMatch(key(0)), Actions: []Action{Out(2)}})
	for _, id := range ids[:2] {
		if err := tb.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	tb.Advance(2 * time.Second)
	tb.Sweep()
	st := tb.Stats()
	if st.Adds != 11 || st.Deleted != 2 || st.Evicted() != 8 || st.Rules != 1 {
		t.Fatalf("counters: adds=%d deleted=%d evicted=%d rules=%d", st.Adds, st.Deleted, st.Evicted(), st.Rules)
	}
	if st.Adds != uint64(st.Rules)+st.Deleted+st.Evicted() {
		t.Fatalf("identity violated: adds=%d != rules=%d + deleted=%d + evicted=%d",
			st.Adds, st.Rules, st.Deleted, st.Evicted())
	}
}

func TestSweeperBackgroundEvictsAndNotifiesOnce(t *testing.T) {
	tb := New()
	var mu sync.Mutex
	seen := map[uint64]int{}
	tb.StartSweeper(LifecycleConfig{
		SweepInterval: time.Millisecond,
		OnEvict: func(evs []Evicted) {
			mu.Lock()
			for _, ev := range evs {
				seen[ev.ID]++
			}
			mu.Unlock()
		},
	})
	defer tb.StopSweeper()
	const n = 100
	for i := 0; i < n; i++ {
		if _, err := tb.Add(Rule{Scope: Port(i % 4), Match: ExactMatch(key(byte(i))),
			Actions: []Action{Out(1)}, IdleTimeout: 5 * time.Millisecond}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for tb.Stats().Rules > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := tb.Stats().Rules; got != 0 {
		t.Fatalf("background sweeper left %d rules", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != n {
		t.Fatalf("OnEvict saw %d distinct rules, want %d", len(seen), n)
	}
	for id, c := range seen {
		if c != 1 {
			t.Fatalf("rule %d notified %d times, want exactly once", id, c)
		}
	}
}

// TestChurnConcurrent exercises concurrent lookup/add/expire/sweep under
// the race detector: data-path readers keep resolving while rules churn
// through install → idle-expire → reap.
func TestChurnConcurrent(t *testing.T) {
	tb := New()
	tb.SetDefaultTimeouts(5*time.Millisecond, 0)
	_, _ = tb.Add(Rule{Scope: Port(0), Match: MatchAll, Actions: []Action{Forward(10)}})
	tb.StartSweeper(LifecycleConfig{SweepInterval: time.Millisecond})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			scopes := make([]ServiceID, 32)
			keys := make([]packet.FlowKey, 32)
			out := make([]*Entry, 32)
			for i := range scopes {
				scopes[i] = Port(0)
				keys[i] = key(byte((w*32 + i) % 200))
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				tb.LookupBatch(scopes, keys, out)
				_, _ = tb.Lookup(Port(0), keys[0])
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			_, _ = tb.Add(Rule{Scope: Port(0), Match: ExactMatch(key(byte(i % 200))), Actions: []Action{Out(1)}})
			i++
			if i%64 == 0 {
				runtime.Gosched()
			}
		}
	}()
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
	tb.StopSweeper()
	st := tb.Stats()
	if st.Adds != uint64(st.Rules)+st.Deleted+st.Evicted() {
		t.Fatalf("identity violated after churn: adds=%d rules=%d deleted=%d evicted=%d",
			st.Adds, st.Rules, st.Deleted, st.Evicted())
	}
}
