// Package flowtable implements the per-host flow table of the SDNFV NF
// Manager (§3.3–3.4).
//
// A rule is scoped by where the packet currently is — either a NIC port
// (for packets entering the host) or the Service ID of the NF that just
// finished processing it. This mirrors the paper's repurposing of
// OpenFlow's "input port" field to carry Service IDs. Each rule matches a
// possibly-wildcarded 5-tuple and carries a list of actions:
//
//   - the FIRST action in the list is the default (taken when the NF
//     returns ActionDefault);
//   - when Parallel is set, the whole list is dispatched at once to a set
//     of read-only NFs (§3.3);
//   - otherwise the remaining actions are the alternative next hops the NF
//     may select with "Send to" (§3.4).
//
// Lookup resolution is most-specific-match-wins: an exact 5-tuple rule
// shadows a wildcard rule at the same scope, and among wildcard rules the
// one with the most concrete fields (then highest priority) wins.
package flowtable

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"sdnfv/internal/packet"
)

// ServiceID identifies an abstract network service (§3.2 "Service IDs").
// IDs below 0x8000 are services; IDs at or above PortBase are NIC ports.
type ServiceID uint16

// PortBase is the first ServiceID value denoting a physical NIC port
// rather than a network function.
const PortBase ServiceID = 0x8000

// Port returns the ServiceID encoding of NIC port n.
func Port(n int) ServiceID { return PortBase + ServiceID(n) }

// IsPort reports whether s denotes a NIC port.
func (s ServiceID) IsPort() bool { return s >= PortBase }

// PortNum returns the NIC port number for a port-typed ServiceID.
func (s ServiceID) PortNum() int { return int(s - PortBase) }

// String renders the ID as "svc:N" or "port:N".
func (s ServiceID) String() string {
	if s.IsPort() {
		return fmt.Sprintf("port:%d", s.PortNum())
	}
	return fmt.Sprintf("svc:%d", uint16(s))
}

// ActionType is what to do with a packet next.
type ActionType uint8

// Action types, in conflict-resolution priority order (§4.2): Drop beats
// Out beats Forward when parallel NFs disagree.
const (
	ActionForward ActionType = iota // deliver to a ServiceID (NF)
	ActionOut                       // transmit out a NIC port
	ActionDrop                      // discard
)

// Action is one entry in a rule's action list.
type Action struct {
	Type ActionType
	// Dest is the target ServiceID for ActionForward, or the NIC port
	// (Port-encoded) for ActionOut. Ignored for ActionDrop.
	Dest ServiceID
}

// String renders the action compactly.
func (a Action) String() string {
	switch a.Type {
	case ActionDrop:
		return "drop"
	case ActionOut:
		return "out(" + a.Dest.String() + ")"
	default:
		return "fwd(" + a.Dest.String() + ")"
	}
}

// Forward builds a forward-to-service action.
func Forward(s ServiceID) Action { return Action{Type: ActionForward, Dest: s} }

// Out builds a transmit-out-port action.
func Out(port int) Action { return Action{Type: ActionOut, Dest: Port(port)} }

// Drop builds a discard action.
func Drop() Action { return Action{Type: ActionDrop} }

// Match is a possibly-wildcarded 5-tuple. Nil fields are wildcards.
type Match struct {
	SrcIP   *packet.IP
	DstIP   *packet.IP
	SrcPort *uint16
	DstPort *uint16
	Proto   *uint8
}

// MatchAll is the fully wildcarded match.
var MatchAll = Match{}

// ExactMatch builds a Match that matches only k.
func ExactMatch(k packet.FlowKey) Match {
	src, dst := k.SrcIP, k.DstIP
	sp, dp, pr := k.SrcPort, k.DstPort, k.Proto
	return Match{SrcIP: &src, DstIP: &dst, SrcPort: &sp, DstPort: &dp, Proto: &pr}
}

// MatchSrcIP builds a Match on source IP only (used by e.g. the video
// policy rules in Fig. 4 of the paper: "srcIP=B").
func MatchSrcIP(ip packet.IP) Match { v := ip; return Match{SrcIP: &v} }

// MatchDstIP builds a Match on destination IP only.
func MatchDstIP(ip packet.IP) Match { v := ip; return Match{DstIP: &v} }

// Matches reports whether k satisfies m.
func (m Match) Matches(k packet.FlowKey) bool {
	if m.SrcIP != nil && *m.SrcIP != k.SrcIP {
		return false
	}
	if m.DstIP != nil && *m.DstIP != k.DstIP {
		return false
	}
	if m.SrcPort != nil && *m.SrcPort != k.SrcPort {
		return false
	}
	if m.DstPort != nil && *m.DstPort != k.DstPort {
		return false
	}
	if m.Proto != nil && *m.Proto != k.Proto {
		return false
	}
	return true
}

// Specificity counts concrete fields; higher wins at equal priority.
func (m Match) Specificity() int {
	n := 0
	if m.SrcIP != nil {
		n++
	}
	if m.DstIP != nil {
		n++
	}
	if m.SrcPort != nil {
		n++
	}
	if m.DstPort != nil {
		n++
	}
	if m.Proto != nil {
		n++
	}
	return n
}

// IsExact reports whether every field is concrete.
func (m Match) IsExact() bool { return m.Specificity() == 5 }

// exactKey converts an exact match to its FlowKey.
func (m Match) exactKey() packet.FlowKey {
	return packet.FlowKey{SrcIP: *m.SrcIP, DstIP: *m.DstIP, SrcPort: *m.SrcPort, DstPort: *m.DstPort, Proto: *m.Proto}
}

// String renders the match, "*" for fully wildcarded.
func (m Match) String() string {
	if m.Specificity() == 0 {
		return "*"
	}
	var parts []string
	if m.SrcIP != nil {
		parts = append(parts, "srcIP="+m.SrcIP.String())
	}
	if m.DstIP != nil {
		parts = append(parts, "dstIP="+m.DstIP.String())
	}
	if m.SrcPort != nil {
		parts = append(parts, fmt.Sprintf("srcPort=%d", *m.SrcPort))
	}
	if m.DstPort != nil {
		parts = append(parts, fmt.Sprintf("dstPort=%d", *m.DstPort))
	}
	if m.Proto != nil {
		parts = append(parts, fmt.Sprintf("proto=%d", *m.Proto))
	}
	return strings.Join(parts, ",")
}

// Rule is one flow-table entry.
type Rule struct {
	// Scope is where the packet currently is: a NIC port for fresh
	// arrivals, or the ServiceID of the NF that just released the packet.
	Scope ServiceID
	// Match restricts which flows this rule applies to.
	Match Match
	// Actions: first is the default; see the package comment.
	Actions []Action
	// Parallel marks the action list as a simultaneous read-only fan-out.
	Parallel bool
	// Priority breaks ties among equal-specificity wildcard rules.
	Priority int
}

// Entry is the immutable resolved form of a rule returned by lookups.
type Entry struct {
	Rule
	ID uint64 // table-assigned, stable for the rule's lifetime
}

// Default returns the rule's default action (the first in the list).
func (r Rule) Default() (Action, bool) {
	if len(r.Actions) == 0 {
		return Action{}, false
	}
	return r.Actions[0], true
}

// Allows reports whether a is one of the rule's listed next hops —
// "Send to … is only permitted if the destination is one of the allowable
// next hops listed in the flow table" (§3.4).
func (r Rule) Allows(a Action) bool {
	for _, x := range r.Actions {
		if x == a {
			return true
		}
	}
	return false
}

// Errors returned by Table operations.
var (
	ErrNoMatch  = errors.New("flowtable: no matching rule")
	ErrNoRule   = errors.New("flowtable: rule not found")
	ErrNoAction = errors.New("flowtable: rule has no actions")
)

// Table is a per-host flow table. Lookups on the data path take a read
// lock only; the exact-match fast path is a single map probe, keeping the
// ~30 ns budget reported in §5.1.
type Table struct {
	mu     sync.RWMutex
	nextID uint64
	// exact[scope][flowkey] -> entry
	exact map[ServiceID]map[packet.FlowKey]*Entry
	// wild[scope] -> wildcard entries, kept sorted most-specific-first
	wild map[ServiceID][]*Entry

	lookups  uint64
	misses   uint64
	modifies uint64
}

// New returns an empty table.
func New() *Table {
	return &Table{
		exact: make(map[ServiceID]map[packet.FlowKey]*Entry),
		wild:  make(map[ServiceID][]*Entry),
	}
}

// Add installs a rule and returns its stable ID. Adding an exact rule for a
// (scope, flow) that already has one replaces it — this is how FLOW_MOD
// updates and cross-layer messages rewrite defaults.
func (t *Table) Add(r Rule) (uint64, error) {
	if len(r.Actions) == 0 {
		return 0, ErrNoAction
	}
	acts := make([]Action, len(r.Actions))
	copy(acts, r.Actions)
	r.Actions = acts

	t.mu.Lock()
	defer t.mu.Unlock()
	t.modifies++
	t.nextID++
	e := &Entry{Rule: r, ID: t.nextID}
	if r.Match.IsExact() {
		k := r.Match.exactKey()
		em := t.exact[r.Scope]
		if em == nil {
			em = make(map[packet.FlowKey]*Entry)
			t.exact[r.Scope] = em
		}
		if old, ok := em[k]; ok {
			e.ID = old.ID // replacement keeps identity
			t.nextID--
		}
		em[k] = e
		return e.ID, nil
	}
	ws := t.wild[r.Scope]
	ws = append(ws, e)
	sort.SliceStable(ws, func(i, j int) bool {
		si, sj := ws[i].Match.Specificity(), ws[j].Match.Specificity()
		if si != sj {
			return si > sj
		}
		return ws[i].Priority > ws[j].Priority
	})
	t.wild[r.Scope] = ws
	return e.ID, nil
}

// Delete removes the rule with the given ID.
func (t *Table) Delete(id uint64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.modifies++
	for scope, em := range t.exact {
		for k, e := range em {
			if e.ID == id {
				delete(em, k)
				if len(em) == 0 {
					delete(t.exact, scope)
				}
				return nil
			}
		}
	}
	for scope, ws := range t.wild {
		for i, e := range ws {
			if e.ID == id {
				t.wild[scope] = append(ws[:i:i], ws[i+1:]...)
				return nil
			}
		}
	}
	return ErrNoRule
}

// Lookup resolves the entry governing a packet at scope with flow key k.
func (t *Table) Lookup(scope ServiceID, k packet.FlowKey) (*Entry, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.lookups++
	if em := t.exact[scope]; em != nil {
		if e, ok := em[k]; ok {
			return e, nil
		}
	}
	for _, e := range t.wild[scope] {
		if e.Match.Matches(k) {
			return e, nil
		}
	}
	t.misses++
	return nil, ErrNoMatch
}

// UpdateDefault rewrites the default (first) action of rules at scope that
// apply to flows matching f, constrained to actions already present in the
// rule's list when constrain is true. It returns the number of rules
// changed or created. This is the primitive beneath ChangeDefault (§3.4).
//
// When f is an exact flow and the governing rule at scope is a wildcard,
// the wildcard is left untouched and a flow-specific rule is created with
// the new default — the per-flow specialization of the paper's Fig. 4
// ("two additional flows ... are given distinct rules"), so other flows
// sharing the wildcard are unaffected.
func (t *Table) UpdateDefault(scope ServiceID, f Match, newDefault Action, constrain bool) int {
	if f.IsExact() {
		return t.specializeDefault(scope, f, newDefault, constrain)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.modifies++
	n := 0
	apply := func(e *Entry) {
		if !overlaps(e.Match, f) {
			return
		}
		if constrain && !e.Allows(newDefault) {
			return
		}
		acts := []Action{newDefault}
		for _, a := range e.Actions {
			if a != newDefault {
				acts = append(acts, a)
			}
		}
		e.Actions = acts
		n++
	}
	for _, e := range t.exact[scope] {
		apply(e)
	}
	for _, e := range t.wild[scope] {
		apply(e)
	}
	return n
}

// specializeDefault installs (or rewrites) the exact-flow rule for f at
// scope so its default becomes newDefault, inheriting the remaining action
// list from the rule currently governing the flow.
func (t *Table) specializeDefault(scope ServiceID, f Match, newDefault Action, constrain bool) int {
	key := f.exactKey()
	t.mu.Lock()
	var gov *Entry
	if em := t.exact[scope]; em != nil {
		gov = em[key]
	}
	if gov == nil {
		for _, e := range t.wild[scope] {
			if e.Match.Matches(key) {
				gov = e
				break
			}
		}
	}
	t.mu.Unlock()
	if gov == nil {
		return 0
	}
	if constrain && !gov.Allows(newDefault) {
		return 0
	}
	acts := []Action{newDefault}
	for _, a := range gov.Actions {
		if a != newDefault {
			acts = append(acts, a)
		}
	}
	rule := Rule{
		Scope:    scope,
		Match:    f,
		Actions:  acts,
		Parallel: gov.Parallel,
		Priority: gov.Priority,
	}
	if _, err := t.Add(rule); err != nil {
		return 0
	}
	return 1
}

// RewriteDest replaces every action targeting old with the same-typed
// action targeting new, across all scopes, for rules applying to flows
// matching f. Returns the count of rules changed. This is the primitive
// beneath SkipMe/RequestMe (§3.4).
func (t *Table) RewriteDest(f Match, old, new Action) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.modifies++
	n := 0
	apply := func(e *Entry) {
		if !overlaps(e.Match, f) {
			return
		}
		changed := false
		for i, a := range e.Actions {
			if a == old {
				e.Actions[i] = new
				changed = true
			}
		}
		if changed {
			n++
		}
	}
	for _, em := range t.exact {
		for _, e := range em {
			apply(e)
		}
	}
	for _, ws := range t.wild {
		for _, e := range ws {
			apply(e)
		}
	}
	return n
}

// ScopesWithDefault returns the scopes whose default action currently
// targets dest for flows matching f. Used by RequestMe to find "all nodes
// that have an edge to S".
func (t *Table) ScopesWithActionTo(f Match, dest ServiceID) []ServiceID {
	t.mu.RLock()
	defer t.mu.RUnlock()
	seen := map[ServiceID]bool{}
	consider := func(scope ServiceID, e *Entry) {
		if seen[scope] || !overlaps(e.Match, f) {
			return
		}
		for _, a := range e.Actions {
			if a.Type == ActionForward && a.Dest == dest {
				seen[scope] = true
				return
			}
		}
	}
	for scope, em := range t.exact {
		for _, e := range em {
			consider(scope, e)
		}
	}
	for scope, ws := range t.wild {
		for _, e := range ws {
			consider(scope, e)
		}
	}
	out := make([]ServiceID, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// overlaps reports whether the flow sets of a and b intersect (field-wise:
// disjoint only if some concrete field differs).
func overlaps(a, b Match) bool {
	if a.SrcIP != nil && b.SrcIP != nil && *a.SrcIP != *b.SrcIP {
		return false
	}
	if a.DstIP != nil && b.DstIP != nil && *a.DstIP != *b.DstIP {
		return false
	}
	if a.SrcPort != nil && b.SrcPort != nil && *a.SrcPort != *b.SrcPort {
		return false
	}
	if a.DstPort != nil && b.DstPort != nil && *a.DstPort != *b.DstPort {
		return false
	}
	if a.Proto != nil && b.Proto != nil && *a.Proto != *b.Proto {
		return false
	}
	return true
}

// Len returns the total number of installed rules.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := 0
	for _, em := range t.exact {
		n += len(em)
	}
	for _, ws := range t.wild {
		n += len(ws)
	}
	return n
}

// Stats reports cumulative table activity.
type Stats struct {
	Lookups  uint64
	Misses   uint64
	Modifies uint64
	Rules    int
}

// Stats returns a snapshot of table counters.
func (t *Table) Stats() Stats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := 0
	for _, em := range t.exact {
		n += len(em)
	}
	for _, ws := range t.wild {
		n += len(ws)
	}
	return Stats{Lookups: t.lookups, Misses: t.misses, Modifies: t.modifies, Rules: n}
}

// Dump renders the table for debugging, one rule per line, grouped and
// ordered deterministically.
func (t *Table) Dump() string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var lines []string
	for scope, em := range t.exact {
		for k, e := range em {
			lines = append(lines, fmt.Sprintf("%s %s -> %s", scope, k, actionsString(e)))
		}
	}
	for scope, ws := range t.wild {
		for _, e := range ws {
			lines = append(lines, fmt.Sprintf("%s %s -> %s", scope, e.Match, actionsString(e)))
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

func actionsString(e *Entry) string {
	parts := make([]string, len(e.Actions))
	for i, a := range e.Actions {
		parts[i] = a.String()
	}
	s := "(" + strings.Join(parts, ", ") + ")"
	if e.Parallel {
		s += " [parallel]"
	}
	return s
}
