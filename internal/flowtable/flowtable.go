// Package flowtable implements the per-host flow table of the SDNFV NF
// Manager (§3.3–3.4).
//
// A rule is scoped by where the packet currently is — either a NIC port
// (for packets entering the host) or the Service ID of the NF that just
// finished processing it. This mirrors the paper's repurposing of
// OpenFlow's "input port" field to carry Service IDs. Each rule matches a
// possibly-wildcarded 5-tuple and carries a list of actions:
//
//   - the FIRST action in the list is the default (taken when the NF
//     returns ActionDefault);
//   - when Parallel is set, the whole list is dispatched at once to a set
//     of read-only NFs (§3.3);
//   - otherwise the remaining actions are the alternative next hops the NF
//     may select with "Send to" (§3.4).
//
// Lookup resolution is most-specific-match-wins: an exact 5-tuple rule
// shadows a wildcard rule at the same scope, and among wildcard rules the
// one with the most concrete fields (then highest priority) wins.
//
// # Concurrency
//
// The paper forbids synchronization primitives on the packet path
// ("locks ... can take tens of nanoseconds to acquire", §4.1). The table
// is therefore sharded by scope, and each shard publishes an immutable
// snapshot through an atomic pointer: Lookup is one atomic load plus a map
// probe, with no locks and no allocation on the exact-match hit path.
// Entries are immutable after publication — mutations (Add, Delete,
// UpdateDefault, RewriteDest) build fresh entries and a fresh snapshot
// under a per-shard writer mutex, then publish it atomically. Readers
// always observe a consistent snapshot; a stale one at worst, never a torn
// one.
package flowtable

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sdnfv/internal/packet"
)

// ServiceID identifies an abstract network service (§3.2 "Service IDs").
// IDs below 0x8000 are services; IDs at or above PortBase are NIC ports.
type ServiceID uint16

// PortBase is the first ServiceID value denoting a physical NIC port
// rather than a network function.
const PortBase ServiceID = 0x8000

// Port returns the ServiceID encoding of NIC port n.
//
//sdnfv:hotpath
func Port(n int) ServiceID { return PortBase + ServiceID(n) }

// IsPort reports whether s denotes a NIC port.
//
//sdnfv:hotpath
func (s ServiceID) IsPort() bool { return s >= PortBase }

// PortNum returns the NIC port number for a port-typed ServiceID.
//
//sdnfv:hotpath
func (s ServiceID) PortNum() int { return int(s - PortBase) }

// String renders the ID as "svc:N" or "port:N".
func (s ServiceID) String() string {
	if s.IsPort() {
		return fmt.Sprintf("port:%d", s.PortNum())
	}
	return fmt.Sprintf("svc:%d", uint16(s))
}

// ActionType is what to do with a packet next.
type ActionType uint8

// Action types, in conflict-resolution priority order (§4.2): Drop beats
// Out beats Forward when parallel NFs disagree.
const (
	ActionForward ActionType = iota // deliver to a ServiceID (NF)
	ActionOut                       // transmit out a NIC port
	ActionDrop                      // discard
)

// Action is one entry in a rule's action list.
type Action struct {
	Type ActionType
	// Dest is the target ServiceID for ActionForward, or the NIC port
	// (Port-encoded) for ActionOut. Ignored for ActionDrop.
	Dest ServiceID
}

// String renders the action compactly.
func (a Action) String() string {
	switch a.Type {
	case ActionDrop:
		return "drop"
	case ActionOut:
		return "out(" + a.Dest.String() + ")"
	default:
		return "fwd(" + a.Dest.String() + ")"
	}
}

// Forward builds a forward-to-service action.
//
//sdnfv:hotpath
func Forward(s ServiceID) Action { return Action{Type: ActionForward, Dest: s} }

// Out builds a transmit-out-port action.
//
//sdnfv:hotpath
func Out(port int) Action { return Action{Type: ActionOut, Dest: Port(port)} }

// Drop builds a discard action.
//
//sdnfv:hotpath
func Drop() Action { return Action{Type: ActionDrop} }

// Match is a possibly-wildcarded 5-tuple. Nil fields are wildcards.
type Match struct {
	SrcIP   *packet.IP
	DstIP   *packet.IP
	SrcPort *uint16
	DstPort *uint16
	Proto   *uint8
}

// MatchAll is the fully wildcarded match.
var MatchAll = Match{}

// ExactMatch builds a Match that matches only k.
func ExactMatch(k packet.FlowKey) Match {
	src, dst := k.SrcIP, k.DstIP
	sp, dp, pr := k.SrcPort, k.DstPort, k.Proto
	return Match{SrcIP: &src, DstIP: &dst, SrcPort: &sp, DstPort: &dp, Proto: &pr}
}

// MatchSrcIP builds a Match on source IP only (used by e.g. the video
// policy rules in Fig. 4 of the paper: "srcIP=B").
func MatchSrcIP(ip packet.IP) Match { v := ip; return Match{SrcIP: &v} }

// MatchDstIP builds a Match on destination IP only.
func MatchDstIP(ip packet.IP) Match { v := ip; return Match{DstIP: &v} }

// Matches reports whether k satisfies m.
//
//sdnfv:hotpath
func (m Match) Matches(k packet.FlowKey) bool {
	if m.SrcIP != nil && *m.SrcIP != k.SrcIP {
		return false
	}
	if m.DstIP != nil && *m.DstIP != k.DstIP {
		return false
	}
	if m.SrcPort != nil && *m.SrcPort != k.SrcPort {
		return false
	}
	if m.DstPort != nil && *m.DstPort != k.DstPort {
		return false
	}
	if m.Proto != nil && *m.Proto != k.Proto {
		return false
	}
	return true
}

// Specificity counts concrete fields; higher wins at equal priority.
func (m Match) Specificity() int {
	n := 0
	if m.SrcIP != nil {
		n++
	}
	if m.DstIP != nil {
		n++
	}
	if m.SrcPort != nil {
		n++
	}
	if m.DstPort != nil {
		n++
	}
	if m.Proto != nil {
		n++
	}
	return n
}

// IsExact reports whether every field is concrete.
func (m Match) IsExact() bool { return m.Specificity() == 5 }

// Equal reports whether two matches select the same flows. Pointer fields
// compare by pointed-to value, not identity, so two ExactMatch results for
// the same key are equal.
func (m Match) Equal(o Match) bool {
	return eqField(m.SrcIP, o.SrcIP) && eqField(m.DstIP, o.DstIP) &&
		eqField(m.SrcPort, o.SrcPort) && eqField(m.DstPort, o.DstPort) &&
		eqField(m.Proto, o.Proto)
}

func eqField[T comparable](a, b *T) bool {
	if a == nil || b == nil {
		return a == b
	}
	return *a == *b
}

// ExactKey returns the single FlowKey an exact match selects, and false
// for a match with any wildcarded field. Consumers of eviction
// notifications use it to key per-flow state releases.
func (m Match) ExactKey() (packet.FlowKey, bool) {
	if !m.IsExact() {
		return packet.FlowKey{}, false
	}
	return m.exactKey(), true
}

// exactKey converts an exact match to its FlowKey.
func (m Match) exactKey() packet.FlowKey {
	return packet.FlowKey{SrcIP: *m.SrcIP, DstIP: *m.DstIP, SrcPort: *m.SrcPort, DstPort: *m.DstPort, Proto: *m.Proto}
}

// String renders the match, "*" for fully wildcarded.
func (m Match) String() string {
	if m.Specificity() == 0 {
		return "*"
	}
	var parts []string
	if m.SrcIP != nil {
		parts = append(parts, "srcIP="+m.SrcIP.String())
	}
	if m.DstIP != nil {
		parts = append(parts, "dstIP="+m.DstIP.String())
	}
	if m.SrcPort != nil {
		parts = append(parts, fmt.Sprintf("srcPort=%d", *m.SrcPort))
	}
	if m.DstPort != nil {
		parts = append(parts, fmt.Sprintf("dstPort=%d", *m.DstPort))
	}
	if m.Proto != nil {
		parts = append(parts, fmt.Sprintf("proto=%d", *m.Proto))
	}
	return strings.Join(parts, ",")
}

// Rule is one flow-table entry.
type Rule struct {
	// Scope is where the packet currently is: a NIC port for fresh
	// arrivals, or the ServiceID of the NF that just released the packet.
	Scope ServiceID
	// Match restricts which flows this rule applies to.
	Match Match
	// Actions: first is the default; see the package comment.
	Actions []Action
	// Parallel marks the action list as a simultaneous read-only fan-out.
	Parallel bool
	// Priority breaks ties among equal-specificity wildcard rules.
	Priority int
	// IdleTimeout evicts the rule once no packet has hit it for this
	// long (OpenFlow idle_timeout). Zero inherits the table default for
	// exact-match rules (wildcards inherit nothing); negative opts out of
	// any default — the rule never idles out.
	IdleTimeout time.Duration
	// HardTimeout evicts the rule this long after installation regardless
	// of traffic (OpenFlow hard_timeout). Zero/negative as for IdleTimeout.
	HardTimeout time.Duration
}

// Entry is the immutable resolved form of a rule returned by lookups.
// Entries are never mutated after publication: rewriting a rule installs a
// fresh Entry with the same ID, so a pointer obtained from Lookup remains
// a consistent (if stale) snapshot forever. The lifecycle fields are the
// one exception to full immutability: life.lastHit is an atomic the
// lookup path advances on every hit, shared across rewrites of the same
// rule so a default change does not reset the idle clock.
type Entry struct {
	Rule
	ID uint64 // table-assigned, stable for the rule's lifetime

	// idleNs / hardAt are the precomputed expiry parameters against the
	// table's coarse clock: idleNs is the idle window in nanoseconds and
	// hardAt the absolute coarse-clock deadline (install time + hard
	// timeout). Zero means "no such timeout" — the hot path rejects
	// expiry with one comparison and never loads the clock.
	idleNs int64
	hardAt int64
	// life holds the mutable last-hit clock; nil unless idleNs != 0.
	life *entryLife
}

// entryLife is the mutable half of an entry's lifecycle, held behind a
// pointer so entry rewrites (withDefault, RewriteDest) — which copy the
// Entry struct — keep sharing one idle clock, and so Entry itself stays
// copyable (no atomic embedded in a copied struct).
type entryLife struct {
	lastHit atomic.Int64
}

// Default returns the rule's default action (the first in the list).
//
//sdnfv:hotpath
func (r Rule) Default() (Action, bool) {
	if len(r.Actions) == 0 {
		return Action{}, false
	}
	return r.Actions[0], true
}

// Allows reports whether a is one of the rule's listed next hops —
// "Send to … is only permitted if the destination is one of the allowable
// next hops listed in the flow table" (§3.4).
//
//sdnfv:hotpath
func (r Rule) Allows(a Action) bool {
	for _, x := range r.Actions {
		if x == a {
			return true
		}
	}
	return false
}

// Errors returned by Table operations.
var (
	ErrNoMatch  = errors.New("flowtable: no matching rule")
	ErrNoRule   = errors.New("flowtable: rule not found")
	ErrNoAction = errors.New("flowtable: rule has no actions")
)

// numShards partitions scopes across independent snapshots so that
// writers to one scope never stall readers or writers of another. Must be
// a power of two.
const numShards = 16

// shardIndex maps a scope to its shard. Service IDs are small consecutive
// integers and ports are PortBase+n, so plain masking spreads both.
//
//sdnfv:hotpath
func shardIndex(s ServiceID) int { return int(s) & (numShards - 1) }

// snapshot is the immutable published state of one shard. Neither the
// maps nor anything reachable from them is mutated after publication;
// writers clone the containers they need to change and publish a fresh
// snapshot.
type snapshot struct {
	// exact[scope][flowkey] -> entry
	exact map[ServiceID]map[packet.FlowKey]*Entry
	// wild[scope] -> wildcard entries, kept sorted most-specific-first
	wild map[ServiceID][]*Entry

	// privateExact / privateWild track which per-scope containers this
	// (not-yet-published) snapshot already owns privately, so a batched
	// write clones each scope once instead of once per rule — without
	// this, installing a B-rule batch into an N-entry scope costs
	// O(B·N) map copies instead of O(B+N). Only the writer building the
	// snapshot touches these; readers never look at them.
	privateExact map[ServiceID]bool
	privateWild  map[ServiceID]bool
}

var emptySnapshot = &snapshot{}

// cloneTop shallow-copies the snapshot's top-level maps so per-scope
// containers can be swapped without touching the published snapshot. The
// per-scope containers themselves still alias the published ones until
// cloneExact/cloneWild replaces them.
func (s *snapshot) cloneTop() *snapshot {
	next := &snapshot{
		exact: make(map[ServiceID]map[packet.FlowKey]*Entry, len(s.exact)),
		wild:  make(map[ServiceID][]*Entry, len(s.wild)),
	}
	for sc, em := range s.exact {
		next.exact[sc] = em
	}
	for sc, ws := range s.wild {
		next.wild[sc] = ws
	}
	return next
}

// cloneExact replaces next's exact map for scope with a private copy and
// returns it, or returns the existing copy when this snapshot build
// already privatized the scope. next must already be a cloneTop result.
func (next *snapshot) cloneExact(scope ServiceID) map[packet.FlowKey]*Entry {
	if next.privateExact[scope] {
		return next.exact[scope]
	}
	em := make(map[packet.FlowKey]*Entry, len(next.exact[scope])+1)
	for k, e := range next.exact[scope] {
		em[k] = e
	}
	next.exact[scope] = em
	if next.privateExact == nil {
		next.privateExact = make(map[ServiceID]bool)
	}
	next.privateExact[scope] = true
	return em
}

// cloneWild replaces next's wildcard slice for scope with a private copy
// and returns it, or the existing copy when already privatized. next
// must already be a cloneTop result.
func (next *snapshot) cloneWild(scope ServiceID) []*Entry {
	if next.privateWild[scope] {
		return next.wild[scope]
	}
	ws := append([]*Entry(nil), next.wild[scope]...)
	next.wild[scope] = ws
	if next.privateWild == nil {
		next.privateWild = make(map[ServiceID]bool)
	}
	next.privateWild[scope] = true
	return ws
}

// shard is one copy-on-write partition of the table. The snapshot pointer
// is the only field the data path touches; mu serializes writers only.
// Counters are shard-local to spread hot-path atomic traffic.
type shard struct {
	snap    atomic.Pointer[snapshot]
	mu      sync.Mutex
	lookups atomic.Uint64
	misses  atomic.Uint64
	// expired counts lookups that found an entry but rejected it as
	// timed out (the lazy half of eviction): each bump marks an entry
	// queued for the sweeper to reap. Data-path threads never delete —
	// that would need the writer mutex — they only signal.
	expired atomic.Uint64
	_       [64]byte // keep neighbouring shards off this cache line
}

// Table is a per-host flow table. The data-path Lookup is lock-free: one
// atomic snapshot load plus a map probe, keeping the ~30 ns budget
// reported in §5.1 with zero allocation on the exact-match hit path.
// Mutations serialize per shard and never block readers.
type Table struct {
	shards   [numShards]shard
	nextID   atomic.Uint64
	modifies atomic.Uint64

	// now is the coarse lifecycle clock, in nanoseconds since the clock
	// started: 0 until a sweeper runs or Advance is called, advanced by
	// elapsed wall time per sweep tick. Expiry math on the lookup path is
	// one atomic load plus integer compares against it — never a
	// time.Now() syscall per packet.
	now atomic.Int64

	// Lifecycle counters (see Stats): rules created, explicitly deleted,
	// and evicted by timeout, plus sweeper activity.
	adds        atomic.Uint64
	deletes     atomic.Uint64
	evictedIdle atomic.Uint64
	evictedHard atomic.Uint64
	sweeps      atomic.Uint64
	sweepNanos  atomic.Uint64

	// Default timeouts applied at install time to exact-match rules that
	// do not carry their own; per-scope overrides win over the
	// table-wide pair. Guarded by defMu — only the writer path reads
	// them, never Lookup.
	defMu    sync.RWMutex
	defIdle  time.Duration
	defHard  time.Duration
	scopeTOs map[ServiceID]timeoutPair

	// sweeper goroutine state (see lifecycle.go).
	sweepMu   sync.Mutex
	sweepStop chan struct{}
	sweepDone chan struct{}
}

// timeoutPair is a per-scope default (idle, hard) timeout override.
type timeoutPair struct {
	idle time.Duration
	hard time.Duration
}

// New returns an empty table.
func New() *Table {
	t := &Table{}
	for i := range t.shards {
		t.shards[i].snap.Store(emptySnapshot)
	}
	return t
}

// Add installs a rule and returns its stable ID. Adding an exact rule for a
// (scope, flow) that already has one replaces it — this is how FLOW_MOD
// updates and cross-layer messages rewrite defaults.
func (t *Table) Add(r Rule) (uint64, error) {
	if len(r.Actions) == 0 {
		return 0, ErrNoAction
	}
	sh := &t.shards[shardIndex(r.Scope)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	next := sh.snap.Load().cloneTop()
	id := t.addLocked(next, r)
	sh.snap.Store(next)
	return id, nil
}

// AddBatch installs rules, publishing at most one new snapshot per shard
// — the batched writer API used when the Flow Controller installs a
// FLOW_MOD burst or a whole service graph at once. It returns the ID of
// every installed rule, in order. A rule with no actions fails the whole
// batch before any rule is installed.
func (t *Table) AddBatch(rules []Rule) ([]uint64, error) {
	if len(rules) == 0 {
		return nil, nil
	}
	for _, r := range rules {
		if len(r.Actions) == 0 {
			return nil, ErrNoAction
		}
	}
	ids := make([]uint64, len(rules))
	var byShard [numShards][]int
	for i, r := range rules {
		si := shardIndex(r.Scope)
		byShard[si] = append(byShard[si], i)
	}
	for si, idxs := range byShard {
		if len(idxs) == 0 {
			continue
		}
		sh := &t.shards[si]
		sh.mu.Lock()
		next := sh.snap.Load().cloneTop()
		for _, i := range idxs {
			ids[i] = t.addLocked(next, rules[i])
		}
		sh.snap.Store(next)
		sh.mu.Unlock()
	}
	return ids, nil
}

// addLocked installs r into next (a writable clone) and returns its ID.
// Caller holds the shard mutex for r.Scope.
func (t *Table) addLocked(next *snapshot, r Rule) uint64 {
	acts := make([]Action, len(r.Actions))
	copy(acts, r.Actions)
	r.Actions = acts
	t.modifies.Add(1)
	if r.Match.IsExact() {
		k := r.Match.exactKey()
		em := next.cloneExact(r.Scope)
		e := &Entry{Rule: r}
		if old, ok := em[k]; ok {
			e.ID = old.ID // replacement keeps identity
		} else {
			e.ID = t.nextID.Add(1)
			t.adds.Add(1)
		}
		// A replacement arms fresh timers — reinstalling a rule is how
		// OpenFlow flow-mods refresh a flow's lease.
		t.armLife(e)
		em[k] = e
		return e.ID
	}
	e := &Entry{Rule: r, ID: t.nextID.Add(1)}
	t.adds.Add(1)
	t.armLife(e)
	ws := append(next.cloneWild(r.Scope), e)
	sortWild(ws)
	next.wild[r.Scope] = ws
	return e.ID
}

// armLife precomputes e's expiry parameters from its rule timeouts,
// falling back to the table/scope defaults for exact-match rules. Called
// on the writer path (shard mutex held) before e is published.
func (t *Table) armLife(e *Entry) {
	idle, hard := e.IdleTimeout, e.HardTimeout
	if idle == 0 && hard == 0 && e.Match.IsExact() {
		idle, hard = t.defaultTimeouts(e.Scope)
	}
	if idle <= 0 && hard <= 0 {
		return
	}
	now := t.now.Load()
	if hard > 0 {
		e.hardAt = now + int64(hard)
	}
	if idle > 0 {
		e.idleNs = int64(idle)
		e.life = &entryLife{}
		e.life.lastHit.Store(now)
	}
}

// defaultTimeouts resolves the effective default (idle, hard) pair for
// scope: the per-scope override when set, else the table-wide default.
func (t *Table) defaultTimeouts(scope ServiceID) (idle, hard time.Duration) {
	t.defMu.RLock()
	defer t.defMu.RUnlock()
	if p, ok := t.scopeTOs[scope]; ok {
		return p.idle, p.hard
	}
	return t.defIdle, t.defHard
}

// sortWild keeps wildcard entries most-specific-first, ties broken by
// priority (highest wins).
func sortWild(ws []*Entry) {
	sort.SliceStable(ws, func(i, j int) bool {
		si, sj := ws[i].Match.Specificity(), ws[j].Match.Specificity()
		if si != sj {
			return si > sj
		}
		return ws[i].Priority > ws[j].Priority
	})
}

// Delete removes the rule with the given ID.
func (t *Table) Delete(id uint64) error {
	for si := range t.shards {
		sh := &t.shards[si]
		sh.mu.Lock()
		cur := sh.snap.Load()
		for scope, em := range cur.exact {
			for k, e := range em {
				if e.ID != id {
					continue
				}
				t.modifies.Add(1)
				t.deletes.Add(1)
				next := cur.cloneTop()
				nem := next.cloneExact(scope)
				delete(nem, k)
				if len(nem) == 0 {
					delete(next.exact, scope)
				}
				sh.snap.Store(next)
				sh.mu.Unlock()
				return nil
			}
		}
		for scope, ws := range cur.wild {
			for i, e := range ws {
				if e.ID != id {
					continue
				}
				t.modifies.Add(1)
				t.deletes.Add(1)
				next := cur.cloneTop()
				nws := next.cloneWild(scope)
				nws = append(nws[:i], nws[i+1:]...)
				if len(nws) == 0 {
					delete(next.wild, scope)
				} else {
					next.wild[scope] = nws
				}
				sh.snap.Store(next)
				sh.mu.Unlock()
				return nil
			}
		}
		sh.mu.Unlock()
	}
	return ErrNoRule
}

// lookupSnap resolves k against one published snapshot.
//
//sdnfv:hotpath
func lookupSnap(snap *snapshot, scope ServiceID, k packet.FlowKey) *Entry {
	if e, ok := snap.exact[scope][k]; ok {
		return e
	}
	return lookupWild(snap, scope, k)
}

// lookupWild scans the sorted wildcard entries for scope. Split out of
// lookupSnap/Lookup so the exact-match fast path stays inlinable (the
// range loop would otherwise push the whole lookup over the inline
// budget).
//
//sdnfv:hotpath
func lookupWild(snap *snapshot, scope ServiceID, k packet.FlowKey) *Entry {
	for _, e := range snap.wild[scope] {
		if e.Match.Matches(k) {
			return e
		}
	}
	return nil
}

// liveTouch reports whether e is still within its timeouts, advancing
// its idle clock on a hit. The overwhelmingly common case — an entry
// with no timeouts — costs two integer compares and never loads the
// clock. The touch stores the coarse now only when it changed, so a
// burst of hits within one tick writes the cache line once, not per
// packet; concurrent writers all store the same value.
//
//sdnfv:hotpath
func (t *Table) liveTouch(e *Entry) bool {
	if e.hardAt == 0 && e.idleNs == 0 {
		return true
	}
	now := t.now.Load()
	if e.hardAt != 0 && now >= e.hardAt {
		return false
	}
	if e.idleNs != 0 {
		last := e.life.lastHit.Load()
		if now-last >= e.idleNs {
			return false
		}
		if last != now {
			e.life.lastHit.Store(now)
		}
	}
	return true
}

// EntryLive reports whether a previously returned entry is still within
// its timeouts, touching its idle clock exactly as a table hit would.
// The data plane uses it to validate descriptor-cached entries: a cached
// pointer bypasses Lookup, so without this check an expired flow would
// keep forwarding on stale state forever.
//
//sdnfv:hotpath
func (t *Table) EntryLive(e *Entry) bool { return t.liveTouch(e) }

// lookupWildLive scans the sorted wildcard entries for scope, skipping
// expired ones so a dead specific rule falls through to the broader rule
// beneath it. The second result reports whether any expired entry was
// encountered (the lazy-eviction signal).
//
//sdnfv:hotpath
func (t *Table) lookupWildLive(snap *snapshot, scope ServiceID, k packet.FlowKey) (*Entry, bool) {
	sawExpired := false
	for _, e := range snap.wild[scope] {
		if !e.Match.Matches(k) {
			continue
		}
		if t.liveTouch(e) {
			return e, sawExpired
		}
		sawExpired = true
	}
	return nil, sawExpired
}

// Lookup resolves the entry governing a packet at scope with flow key k.
// It is lock-free and allocation-free: one atomic snapshot load plus a map
// probe on the exact-match hit path, safe for any number of concurrent
// data-path threads alongside writers. An entry past its idle or hard
// timeout is treated as a miss (and the expiry signalled to the sweeper);
// the data-path thread never deletes, so the path stays lock-free.
//
//sdnfv:hotpath
func (t *Table) Lookup(scope ServiceID, k packet.FlowKey) (*Entry, error) {
	sh := &t.shards[shardIndex(scope)]
	sh.lookups.Add(1)
	snap := sh.snap.Load()
	expired := false
	if e, ok := snap.exact[scope][k]; ok {
		if t.liveTouch(e) {
			return e, nil
		}
		expired = true
	}
	if e, exp := t.lookupWildLive(snap, scope, k); e != nil {
		if expired || exp {
			sh.expired.Add(1)
		}
		return e, nil
	} else if expired || exp {
		sh.expired.Add(1)
	}
	sh.misses.Add(1)
	return nil, ErrNoMatch
}

// LookupBatch resolves out[i] for every (scopes[i], keys[i]) pair, writing
// nil on a miss, and returns the number of hits. The three slices must
// have equal length. Consecutive descriptors sharing a scope — the common
// case for an RX burst from one port — reuse a single snapshot load, and
// the per-shard counters are updated once per batch rather than per
// packet, amortizing hot-path atomics across the burst (§4.1).
//
//sdnfv:hotpath
func (t *Table) LookupBatch(scopes []ServiceID, keys []packet.FlowKey, out []*Entry) int {
	var nLookups, nMisses, nExpired [numShards]uint32
	hits := 0
	var snap *snapshot
	var lastScope ServiceID
	var lastShard int
	for i, scope := range scopes {
		si := shardIndex(scope)
		if snap == nil || si != lastShard || scope != lastScope {
			snap = t.shards[si].snap.Load()
			lastShard, lastScope = si, scope
		}
		nLookups[si]++
		e, expired := t.lookupLive(snap, scope, keys[i])
		out[i] = e
		if expired {
			nExpired[si]++
		}
		if e != nil {
			hits++
		} else {
			nMisses[si]++
		}
	}
	for si := range nLookups {
		if nLookups[si] > 0 {
			t.shards[si].lookups.Add(uint64(nLookups[si]))
		}
		if nMisses[si] > 0 {
			t.shards[si].misses.Add(uint64(nMisses[si]))
		}
		if nExpired[si] > 0 {
			t.shards[si].expired.Add(uint64(nExpired[si]))
		}
	}
	return hits
}

// lookupLive is the expiry-aware form of lookupSnap: it resolves k
// against one published snapshot, rejecting timed-out entries and
// reporting whether any were encountered.
//
//sdnfv:hotpath
func (t *Table) lookupLive(snap *snapshot, scope ServiceID, k packet.FlowKey) (*Entry, bool) {
	expired := false
	if e, ok := snap.exact[scope][k]; ok {
		if t.liveTouch(e) {
			return e, false
		}
		expired = true
	}
	e, exp := t.lookupWildLive(snap, scope, k)
	return e, expired || exp
}

// UpdateDefault rewrites the default (first) action of rules at scope that
// apply to flows matching f, constrained to actions already present in the
// rule's list when constrain is true. It returns the number of rules
// changed or created. This is the primitive beneath ChangeDefault (§3.4).
//
// When f is an exact flow and the governing rule at scope is a wildcard,
// the wildcard is left untouched and a flow-specific rule is created with
// the new default — the per-flow specialization of the paper's Fig. 4
// ("two additional flows ... are given distinct rules"), so other flows
// sharing the wildcard are unaffected.
//
// Rewritten rules keep their IDs; the entries themselves are replaced, so
// previously returned pointers keep showing the pre-update actions.
func (t *Table) UpdateDefault(scope ServiceID, f Match, newDefault Action, constrain bool) int {
	sh := &t.shards[shardIndex(scope)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if f.IsExact() {
		return t.specializeDefaultLocked(sh, scope, f, newDefault, constrain)
	}
	cur := sh.snap.Load()
	var next *snapshot // cloned lazily, on the first entry actually changed
	n := 0
	rewrite := func(e *Entry) (*Entry, bool) {
		if !overlaps(e.Match, f) {
			return e, false
		}
		if constrain && !e.Allows(newDefault) {
			return e, false
		}
		n++
		return e.withDefault(newDefault), true
	}
	if em := cur.exact[scope]; em != nil {
		var nem map[packet.FlowKey]*Entry
		for k, e := range em {
			ne, changed := rewrite(e)
			if !changed {
				continue
			}
			if nem == nil {
				if next == nil {
					next = cur.cloneTop()
				}
				nem = next.cloneExact(scope)
			}
			nem[k] = ne
		}
	}
	if ws := cur.wild[scope]; ws != nil {
		var nws []*Entry
		for i, e := range ws {
			ne, changed := rewrite(e)
			if !changed {
				continue
			}
			if nws == nil {
				if next == nil {
					next = cur.cloneTop()
				}
				nws = next.cloneWild(scope)
			}
			nws[i] = ne
		}
	}
	if next == nil {
		return 0
	}
	t.modifies.Add(1)
	sh.snap.Store(next)
	return n
}

// withDefault returns a fresh entry (same ID) whose default is a, with the
// previous actions preserved as alternatives.
func (e *Entry) withDefault(a Action) *Entry {
	acts := make([]Action, 0, len(e.Actions)+1)
	acts = append(acts, a)
	for _, x := range e.Actions {
		if x != a {
			acts = append(acts, x)
		}
	}
	ne := *e
	ne.Actions = acts
	return &ne
}

// specializeDefaultLocked installs (or rewrites) the exact-flow rule for f
// at scope so its default becomes newDefault, inheriting the remaining
// action list from the rule currently governing the flow. The caller
// holds the shard mutex, so the read of the governing rule and the install
// are one atomic step — a concurrent UpdateDefault can land entirely
// before or entirely after, never in between (the seed version dropped the
// lock here and could lose such an update).
func (t *Table) specializeDefaultLocked(sh *shard, scope ServiceID, f Match, newDefault Action, constrain bool) int {
	key := f.exactKey()
	gov := lookupSnap(sh.snap.Load(), scope, key)
	if gov == nil {
		return 0
	}
	if constrain && !gov.Allows(newDefault) {
		return 0
	}
	spec := gov.withDefault(newDefault)
	next := sh.snap.Load().cloneTop()
	if gov.Match.IsExact() {
		// The governing rule IS the exact rule for f: rewrite it in
		// place, keeping its ID and — because withDefault copies the
		// entry — its lifecycle clock. A default change is not flow
		// activity, so it must not refresh the idle lease.
		t.modifies.Add(1)
		next.cloneExact(scope)[key] = spec
		sh.snap.Store(next)
		return 1
	}
	t.addLocked(next, Rule{
		Scope:       scope,
		Match:       f,
		Actions:     spec.Actions,
		Parallel:    gov.Parallel,
		Priority:    gov.Priority,
		IdleTimeout: gov.IdleTimeout,
		HardTimeout: gov.HardTimeout,
	})
	sh.snap.Store(next)
	return 1
}

// RewriteDest replaces every action targeting old with the same-typed
// action targeting new, across all scopes, for rules applying to flows
// matching f. Returns the count of rules changed. This is the primitive
// beneath SkipMe/RequestMe (§3.4).
func (t *Table) RewriteDest(f Match, old, new Action) int {
	n := 0
	for si := range t.shards {
		sh := &t.shards[si]
		sh.mu.Lock()
		cur := sh.snap.Load()
		var next *snapshot
		rewrite := func(e *Entry) (*Entry, bool) {
			if !overlaps(e.Match, f) {
				return e, false
			}
			changed := false
			for _, a := range e.Actions {
				if a == old {
					changed = true
					break
				}
			}
			if !changed {
				return e, false
			}
			ne := *e
			ne.Actions = append([]Action(nil), e.Actions...)
			for i, a := range ne.Actions {
				if a == old {
					ne.Actions[i] = new
				}
			}
			return &ne, true
		}
		for scope, em := range cur.exact {
			var nem map[packet.FlowKey]*Entry
			for k, e := range em {
				ne, changed := rewrite(e)
				if !changed {
					continue
				}
				if nem == nil {
					if next == nil {
						next = cur.cloneTop()
					}
					nem = next.cloneExact(scope)
				}
				nem[k] = ne
				n++
			}
		}
		for scope, ws := range cur.wild {
			var nws []*Entry
			for i, e := range ws {
				ne, changed := rewrite(e)
				if !changed {
					continue
				}
				if nws == nil {
					if next == nil {
						next = cur.cloneTop()
					}
					nws = next.cloneWild(scope)
				}
				nws[i] = ne
				n++
			}
		}
		if next != nil {
			t.modifies.Add(1)
			sh.snap.Store(next)
		}
		sh.mu.Unlock()
	}
	return n
}

// AnyEntry returns some entry installed at scope, or nil when the scope
// has no rules. Wildcard rules are preferred — the least specific one
// wins, since it is the scope-wide default that governs the most flows —
// and a scope holding only exact-match rules falls back to the
// exact-match entry with the lowest table id (deterministic across
// calls). Used to discover a scope's default action (SkipMe, §3.4)
// without knowing any concrete flow key. Lock-free: it reads the
// published snapshot.
func (t *Table) AnyEntry(scope ServiceID) *Entry {
	snap := t.shards[shardIndex(scope)].snap.Load()
	if ws := snap.wild[scope]; len(ws) > 0 {
		// Sorted most-specific-first, so the last entry is the most
		// general default at this scope.
		return ws[len(ws)-1]
	}
	var best *Entry
	for _, e := range snap.exact[scope] {
		if best == nil || e.ID < best.ID {
			best = e
		}
	}
	return best
}

// ScopesWithActionTo returns the scopes whose rules carry a forward action
// targeting dest for flows matching f. Used by RequestMe to find "all
// nodes that have an edge to S". Lock-free: it scans the published
// snapshots.
func (t *Table) ScopesWithActionTo(f Match, dest ServiceID) []ServiceID {
	seen := map[ServiceID]bool{}
	consider := func(scope ServiceID, e *Entry) {
		if seen[scope] || !overlaps(e.Match, f) {
			return
		}
		for _, a := range e.Actions {
			if a.Type == ActionForward && a.Dest == dest {
				seen[scope] = true
				return
			}
		}
	}
	for si := range t.shards {
		snap := t.shards[si].snap.Load()
		for scope, em := range snap.exact {
			for _, e := range em {
				consider(scope, e)
			}
		}
		for scope, ws := range snap.wild {
			for _, e := range ws {
				consider(scope, e)
			}
		}
	}
	out := make([]ServiceID, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// overlaps reports whether the flow sets of a and b intersect (field-wise:
// disjoint only if some concrete field differs).
func overlaps(a, b Match) bool {
	if a.SrcIP != nil && b.SrcIP != nil && *a.SrcIP != *b.SrcIP {
		return false
	}
	if a.DstIP != nil && b.DstIP != nil && *a.DstIP != *b.DstIP {
		return false
	}
	if a.SrcPort != nil && b.SrcPort != nil && *a.SrcPort != *b.SrcPort {
		return false
	}
	if a.DstPort != nil && b.DstPort != nil && *a.DstPort != *b.DstPort {
		return false
	}
	if a.Proto != nil && b.Proto != nil && *a.Proto != *b.Proto {
		return false
	}
	return true
}

// Len returns the total number of installed rules.
func (t *Table) Len() int {
	n := 0
	for si := range t.shards {
		snap := t.shards[si].snap.Load()
		for _, em := range snap.exact {
			n += len(em)
		}
		for _, ws := range snap.wild {
			n += len(ws)
		}
	}
	return n
}

// Stats reports cumulative table activity. The lifecycle counters
// satisfy the identity Adds == Rules + Deleted + Evicted: every rule
// ever created is either still installed, was explicitly deleted, or was
// evicted by a timeout — replacements keep their ID and count in
// Modifies only.
type Stats struct {
	Lookups  uint64
	Misses   uint64
	Modifies uint64
	Rules    int

	// Adds counts rules created (new IDs assigned); replacements of an
	// existing exact rule are not adds.
	Adds uint64
	// Deleted counts rules removed by an explicit Delete call.
	Deleted uint64
	// EvictedIdle / EvictedHard count rules reaped by the sweeper after
	// their idle / hard timeout. Evicted is the sum.
	EvictedIdle uint64
	EvictedHard uint64
	// ExpiredLookups counts lookups that observed (and rejected) a
	// timed-out entry before the sweeper reaped it — the lazy half of
	// eviction. These lookups also count in Misses unless a broader
	// live rule answered.
	ExpiredLookups uint64
	// Sweeps counts background sweep passes; SweepNanos is their total
	// duration, so SweepNanos/Sweeps is the mean sweep latency.
	Sweeps     uint64
	SweepNanos uint64
}

// Evicted returns the total number of timeout-evicted rules.
func (s Stats) Evicted() uint64 { return s.EvictedIdle + s.EvictedHard }

// Stats returns a snapshot of table counters.
func (t *Table) Stats() Stats {
	st := Stats{
		Modifies:    t.modifies.Load(),
		Rules:       t.Len(),
		Adds:        t.adds.Load(),
		Deleted:     t.deletes.Load(),
		EvictedIdle: t.evictedIdle.Load(),
		EvictedHard: t.evictedHard.Load(),
		Sweeps:      t.sweeps.Load(),
		SweepNanos:  t.sweepNanos.Load(),
	}
	for si := range t.shards {
		st.Lookups += t.shards[si].lookups.Load()
		st.Misses += t.shards[si].misses.Load()
		st.ExpiredLookups += t.shards[si].expired.Load()
	}
	return st
}

// Dump renders the table for debugging, one rule per line, grouped and
// ordered deterministically.
func (t *Table) Dump() string {
	var lines []string
	for si := range t.shards {
		snap := t.shards[si].snap.Load()
		for scope, em := range snap.exact {
			for k, e := range em {
				lines = append(lines, fmt.Sprintf("%s %s -> %s", scope, k, actionsString(e)))
			}
		}
		for scope, ws := range snap.wild {
			for _, e := range ws {
				lines = append(lines, fmt.Sprintf("%s %s -> %s", scope, e.Match, actionsString(e)))
			}
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

func actionsString(e *Entry) string {
	parts := make([]string, len(e.Actions))
	for i, a := range e.Actions {
		parts[i] = a.String()
	}
	s := "(" + strings.Join(parts, ", ") + ")"
	if e.Parallel {
		s += " [parallel]"
	}
	return s
}
