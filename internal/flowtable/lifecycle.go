// Flow lifecycle: idle/hard timeouts and two-stage eviction.
//
// Expiry is judged against a coarse clock (Table.now) that a background
// sweeper advances once per tick — the data path never reads wall time.
// Eviction is two-stage:
//
//  1. Lazy: a lookup that finds a timed-out entry treats it as a miss
//     and bumps the shard's expired counter. No locks, no deletes, no
//     notifications — the data-path thread only signals.
//  2. Sweep: a background goroutine (or an explicit Sweep call) walks
//     each shard, re-checks expiry under the shard writer mutex, and
//     removes the dead entries in one batch, rebuilding the surviving
//     per-scope maps right-sized so shard memory shrinks after a mass
//     expiry (Go maps never shrink in place). Only the sweeper removes
//     and only the sweeper notifies, so every eviction is observed
//     exactly once by OnEvict.
package flowtable

import (
	"time"

	"sdnfv/internal/packet"
)

// EvictReason says which timeout reaped a rule.
type EvictReason uint8

const (
	// EvictIdle means no packet hit the rule within its idle timeout.
	EvictIdle EvictReason = iota
	// EvictHard means the rule outlived its hard timeout.
	EvictHard
)

// String renders the reason as its OpenFlow-ish label.
func (r EvictReason) String() string {
	if r == EvictHard {
		return "hard"
	}
	return "idle"
}

// Evicted describes one rule removed by the sweeper.
type Evicted struct {
	ID     uint64
	Scope  ServiceID
	Match  Match
	Reason EvictReason
}

// LifecycleConfig configures the background sweeper.
type LifecycleConfig struct {
	// SweepInterval is the coarse clock tick and sweep period.
	// Defaults to 100ms.
	SweepInterval time.Duration
	// OnEvict, when non-nil, receives each sweep's eviction batch (only
	// non-empty batches). Called from the sweeper goroutine — it may
	// take locks and allocate, but must not call back into StopSweeper.
	OnEvict func([]Evicted)
}

// DefaultSweepInterval is the sweeper tick when none is configured.
const DefaultSweepInterval = 100 * time.Millisecond

// SetDefaultTimeouts sets the table-wide default idle/hard timeouts
// applied at install time to exact-match rules that carry none of their
// own. Zero disables the respective default. Wildcard rules never
// inherit defaults — infrastructure rules live until deleted unless
// explicitly given timeouts. Affects rules installed after the call.
func (t *Table) SetDefaultTimeouts(idle, hard time.Duration) {
	t.defMu.Lock()
	t.defIdle, t.defHard = idle, hard
	t.defMu.Unlock()
}

// SetScopeTimeouts overrides the default timeouts for exact-match rules
// installed at one scope, winning over the table-wide pair. A negative
// value pins the field to "no timeout" for that scope.
func (t *Table) SetScopeTimeouts(scope ServiceID, idle, hard time.Duration) {
	t.defMu.Lock()
	if t.scopeTOs == nil {
		t.scopeTOs = make(map[ServiceID]timeoutPair)
	}
	t.scopeTOs[scope] = timeoutPair{idle: idle, hard: hard}
	t.defMu.Unlock()
}

// NowNanos returns the coarse lifecycle clock (nanoseconds since the
// clock started running; 0 before any sweep or Advance).
func (t *Table) NowNanos() int64 { return t.now.Load() }

// Advance moves the coarse clock forward by d without sweeping. Tests
// and benchmarks use it to make expiry deterministic; production tables
// let the sweeper tick the clock from wall time.
func (t *Table) Advance(d time.Duration) {
	if d > 0 {
		t.now.Add(int64(d))
	}
}

// StartSweeper launches the background sweeper: each tick advances the
// coarse clock by elapsed wall time, sweeps expired entries, and hands
// the eviction batch to cfg.OnEvict. A second call before StopSweeper is
// a no-op.
func (t *Table) StartSweeper(cfg LifecycleConfig) {
	interval := cfg.SweepInterval
	if interval <= 0 {
		interval = DefaultSweepInterval
	}
	t.sweepMu.Lock()
	defer t.sweepMu.Unlock()
	if t.sweepStop != nil {
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	t.sweepStop, t.sweepDone = stop, done
	go t.sweepLoop(interval, cfg.OnEvict, stop, done)
}

// StopSweeper stops the background sweeper and waits for its in-flight
// sweep (including its OnEvict call) to finish. No-op when not running.
func (t *Table) StopSweeper() {
	t.sweepMu.Lock()
	stop, done := t.sweepStop, t.sweepDone
	t.sweepStop, t.sweepDone = nil, nil
	t.sweepMu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

func (t *Table) sweepLoop(interval time.Duration, onEvict func([]Evicted), stop, done chan struct{}) {
	defer close(done)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	last := time.Now()
	for {
		select {
		case <-stop:
			return
		case now := <-ticker.C:
			t.Advance(now.Sub(last))
			last = now
			if ev := t.Sweep(); len(ev) > 0 && onEvict != nil {
				onEvict(ev)
			}
		}
	}
}

// Sweep removes every expired entry and returns them. Each shard is
// first scanned lock-free against the published snapshot; only shards
// with candidates take the writer mutex, where expiry is re-checked
// against the then-current snapshot — an entry replaced (its lease
// refreshed) between scan and lock survives, and two concurrent sweeps
// can never both collect the same entry. Surviving per-scope maps are
// rebuilt right-sized, so shard memory shrinks after a mass expiry.
func (t *Table) Sweep() []Evicted {
	start := time.Now()
	now := t.now.Load()
	var evicted []Evicted
	for si := range t.shards {
		evicted = t.sweepShard(&t.shards[si], now, evicted)
	}
	var nIdle, nHard uint64
	for _, ev := range evicted {
		if ev.Reason == EvictHard {
			nHard++
		} else {
			nIdle++
		}
	}
	if nIdle > 0 {
		t.evictedIdle.Add(nIdle)
	}
	if nHard > 0 {
		t.evictedHard.Add(nHard)
	}
	t.sweeps.Add(1)
	t.sweepNanos.Add(uint64(time.Since(start)))
	return evicted
}

// expiredAt is the sweeper's non-touching expiry check. Hard wins when
// both apply: a rule at its end of life is reported hard-expired even if
// it also idled out.
func expiredAt(e *Entry, now int64) (EvictReason, bool) {
	if e.hardAt != 0 && now >= e.hardAt {
		return EvictHard, true
	}
	if e.idleNs != 0 && now-e.life.lastHit.Load() >= e.idleNs {
		return EvictIdle, true
	}
	return EvictIdle, false
}

func (t *Table) sweepShard(sh *shard, now int64, evicted []Evicted) []Evicted {
	// Lock-free pre-scan: most ticks, most shards have nothing expired
	// and the writer mutex is never taken.
	snap := sh.snap.Load()
	if !shardHasExpired(snap, now) {
		return evicted
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	cur := sh.snap.Load()
	var next *snapshot
	for scope, em := range cur.exact {
		dead := 0
		for _, e := range em {
			if _, exp := expiredAt(e, now); exp {
				dead++
			}
		}
		if dead == 0 {
			continue
		}
		if next == nil {
			next = cur.cloneTop()
		}
		if dead == len(em) {
			delete(next.exact, scope)
			for _, e := range em {
				reason, _ := expiredAt(e, now)
				evicted = append(evicted, Evicted{ID: e.ID, Scope: scope, Match: e.Match, Reason: reason})
			}
			continue
		}
		nem := make(map[packet.FlowKey]*Entry, len(em)-dead)
		for k, e := range em {
			if reason, exp := expiredAt(e, now); exp {
				evicted = append(evicted, Evicted{ID: e.ID, Scope: scope, Match: e.Match, Reason: reason})
				continue
			}
			nem[k] = e
		}
		next.exact[scope] = nem
	}
	for scope, ws := range cur.wild {
		dead := 0
		for _, e := range ws {
			if _, exp := expiredAt(e, now); exp {
				dead++
			}
		}
		if dead == 0 {
			continue
		}
		if next == nil {
			next = cur.cloneTop()
		}
		if dead == len(ws) {
			delete(next.wild, scope)
		} else {
			nws := make([]*Entry, 0, len(ws)-dead)
			for _, e := range ws {
				if _, exp := expiredAt(e, now); !exp {
					nws = append(nws, e)
				}
			}
			next.wild[scope] = nws
		}
		for _, e := range ws {
			if reason, exp := expiredAt(e, now); exp {
				evicted = append(evicted, Evicted{ID: e.ID, Scope: scope, Match: e.Match, Reason: reason})
			}
		}
	}
	if next != nil {
		t.modifies.Add(1)
		sh.snap.Store(next)
	}
	return evicted
}

// shardHasExpired reports whether any entry in the published snapshot is
// past its timeouts. Read-only; may race with writers, which is fine —
// the sweep re-checks under the shard mutex.
func shardHasExpired(snap *snapshot, now int64) bool {
	for _, em := range snap.exact {
		for _, e := range em {
			if _, exp := expiredAt(e, now); exp {
				return true
			}
		}
	}
	for _, ws := range snap.wild {
		for _, e := range ws {
			if _, exp := expiredAt(e, now); exp {
				return true
			}
		}
	}
	return false
}
