package flowtable

// BenchmarkFlowTableSnapshot runs the two headline lookup workloads and
// writes the measured per-op numbers to BENCH_flowtable.json in the
// package directory when the run completes. This is the start of the
// recorded perf trajectory ROADMAP asks for: every bench invocation
// (including the CI smoke run) leaves a machine-readable snapshot that
// later PRs can diff against instead of eyeballing -bench output.

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"sdnfv/internal/packet"
)

// benchResult is one workload's measurement in the snapshot file.
type benchResult struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
	Ops     int     `json:"ops"`
}

// benchSnapshot is the BENCH_flowtable.json schema.
type benchSnapshot struct {
	Package   string        `json:"package"`
	Timestamp time.Time     `json:"timestamp"`
	Results   []benchResult `json:"results"`
}

func benchKeys() []packet.FlowKey {
	keys := make([]packet.FlowKey, 256)
	for i := range keys {
		keys[i] = key(byte(i))
		keys[i].SrcPort = uint16(i)
	}
	return keys
}

func BenchmarkFlowTableSnapshot(b *testing.B) {
	tb := New()
	keys := benchKeys()
	for _, k := range keys {
		if _, err := tb.Add(Rule{Scope: Port(0), Match: ExactMatch(k), Actions: []Action{Forward(1)}}); err != nil {
			b.Fatal(err)
		}
	}

	// Sub-benchmarks rerun with growing b.N until stable; recording into
	// a map keeps only each workload's final (largest-N) measurement.
	results := map[string]benchResult{}

	b.Run("LookupExact", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := tb.Lookup(Port(0), keys[i&255]); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		results["LookupExact"] = benchResult{
			Name:    "LookupExact",
			NsPerOp: float64(b.Elapsed().Nanoseconds()) / float64(b.N),
			Ops:     b.N,
		}
	})

	b.Run("LookupBatch64PerPacket", func(b *testing.B) {
		const burst = 64
		scopes := make([]ServiceID, burst)
		bkeys := make([]packet.FlowKey, burst)
		out := make([]*Entry, burst)
		for i := range scopes {
			scopes[i] = Port(0)
			bkeys[i] = keys[i%len(keys)]
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tb.LookupBatch(scopes, bkeys, out)
		}
		b.StopTimer()
		results["LookupBatch64PerPacket"] = benchResult{
			Name:    "LookupBatch64PerPacket",
			NsPerOp: float64(b.Elapsed().Nanoseconds()) / float64(b.N*burst),
			Ops:     b.N * burst,
		}
	})

	snap := benchSnapshot{Package: "flowtable", Timestamp: time.Now().UTC()}
	for _, name := range []string{"LookupExact", "LookupBatch64PerPacket"} {
		if r, ok := results[name]; ok {
			snap.Results = append(snap.Results, r)
		}
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_flowtable.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}
