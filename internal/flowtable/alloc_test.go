//go:build !race

package flowtable

// Zero-allocation budget tests: the runtime teeth behind the hotpath
// analyzer's static rule. The analyzer proves Lookup/LookupBatch cannot
// contain an allocating construct; these tests measure that the compiled
// code really performs zero allocations per operation. Excluded under
// the race detector, whose instrumentation changes allocation behavior.

import (
	"testing"
	"time"

	"sdnfv/internal/packet"
)

func allocTestKey(i int) packet.FlowKey {
	return packet.FlowKey{
		SrcIP:   packet.IPv4(10, 0, 0, 1),
		DstIP:   packet.IPv4(10, 0, 0, 2),
		SrcPort: uint16(1000 + i),
		DstPort: 80,
		Proto:   packet.ProtoUDP,
	}
}

func TestLookupZeroAlloc(t *testing.T) {
	tb := New()
	const flows = 64
	keys := make([]packet.FlowKey, flows)
	scopes := make([]ServiceID, flows)
	entries := make([]*Entry, flows)
	for i := range keys {
		keys[i] = allocTestKey(i)
		scopes[i] = Port(0)
		if _, err := tb.Add(Rule{Scope: Port(0), Match: ExactMatch(keys[i]), Actions: []Action{Out(1)}}); err != nil {
			t.Fatal(err)
		}
	}
	if n := testing.AllocsPerRun(200, func() {
		e, err := tb.Lookup(Port(0), keys[0])
		if err != nil || e == nil {
			t.Fatal("lookup missed a rule that was added")
		}
	}); n != 0 {
		t.Errorf("Lookup allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		tb.LookupBatch(scopes, keys, entries)
	}); n != 0 {
		t.Errorf("LookupBatch allocates %.1f/op, want 0", n)
	}
}

// TestLookupWithExpiryZeroAlloc re-measures the budget with the flow
// lifecycle armed: every rule carries idle+hard timeouts, the coarse
// clock is running, and half the rules are already expired so the
// expiry-as-miss path is exercised too. Both the touch (hit) path and
// the expired (miss) path must stay allocation-free.
func TestLookupWithExpiryZeroAlloc(t *testing.T) {
	tb := New()
	const flows = 64
	keys := make([]packet.FlowKey, flows)
	scopes := make([]ServiceID, flows)
	entries := make([]*Entry, flows)
	for i := range keys {
		keys[i] = allocTestKey(i)
		scopes[i] = Port(0)
		idle := time.Hour
		if i%2 == 1 {
			idle = time.Millisecond // expired once the clock advances
		}
		if _, err := tb.Add(Rule{Scope: Port(0), Match: ExactMatch(keys[i]),
			Actions: []Action{Out(1)}, IdleTimeout: idle, HardTimeout: 24 * time.Hour}); err != nil {
			t.Fatal(err)
		}
	}
	tb.Advance(time.Second)
	if n := testing.AllocsPerRun(200, func() {
		e, err := tb.Lookup(Port(0), keys[0])
		if err != nil || e == nil {
			t.Fatal("live rule missed")
		}
		if _, err := tb.Lookup(Port(0), keys[1]); err == nil {
			t.Fatal("expired rule answered")
		}
	}); n != 0 {
		t.Errorf("Lookup with expiry checks allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		tb.LookupBatch(scopes, keys, entries)
	}); n != 0 {
		t.Errorf("LookupBatch with expiry checks allocates %.1f/op, want 0", n)
	}
}
